#!/usr/bin/env bash
# Sweep-supervisor chaos gate: run a 24-cell grid three ways —
#
#   reference  undisturbed sweep into its own directory
#   chaos      same grid while a killer loop SIGKILLs random workers,
#              and the supervisor itself is SIGKILLed once mid-sweep
#   recovery   re-invoke the supervisor over the chaos directory
#
# and require the recovered aggregate to be byte-identical to the
# reference (cmp, not diff: the claim is bytes). The provenance file
# must show at least one `resumed:` cell — proof the checkpoint-resume
# path actually fired rather than every cell surviving or restarting
# from scratch.
#
# Usage: scripts/ci_sweep_chaos.sh [path-to-emx_sweep] [path-to-emx_run]
set -euo pipefail

SWEEP=${1:-./build/tools/emx_sweep}
RUN=${2:-./build/tools/emx_run}
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# 24 cells: 2 apps x 2 P x 3 h x 2 seeds. Small sizes keep the gate
# fast; checkpoint-every is tuned low so even these short cells write
# several checkpoints for the resume path to pick up.
GRID=(--apps=sort,bfs --procs-list=4,8 --threads-list=1,2,4 --seeds=1,2
      --sizes-per-proc=64 --checkpoint-every=500 --jobs=4 --retries=6
      --emx-run="$RUN" --quiet)

echo "== reference sweep (undisturbed) =="
"$SWEEP" "${GRID[@]}" --out="$work/ref"

echo "== chaos sweep (worker SIGKILLs + supervisor SIGKILL) =="
# Killer loop: every few ms, SIGKILL one random live emx_run worker
# parented inside the chaos tree. Runs until told to stop.
kill_workers() {
  while [ ! -e "$work/stop-killing" ]; do
    # shellcheck disable=SC2009  # pgrep -f would match the supervisor too
    victim=$(pgrep -f "emx_run .*$work/chaos" | shuf -n 1 || true)
    [ -n "$victim" ] && kill -9 "$victim" 2>/dev/null || true
    sleep 0.02
  done
}
kill_workers &
killer=$!

"$SWEEP" "${GRID[@]}" --out="$work/chaos" > /dev/null 2>&1 &
sup=$!
sleep 0.6
kill -9 "$sup" 2>/dev/null || true
wait "$sup" 2>/dev/null || true
# Orphaned workers keep running after their supervisor dies; reap them
# so the recovery invocation owns the directory alone.
pkill -9 -f "emx_run .*$work/chaos" 2>/dev/null || true
sleep 0.1

echo "== recovery: re-invoke over the chaos directory =="
touch "$work/stop-killing"
wait "$killer" 2>/dev/null || true
"$SWEEP" "${GRID[@]}" --out="$work/chaos"

cmp "$work/ref/aggregate.json" "$work/chaos/aggregate.json" \
  || { echo "FAIL: recovered aggregate differs from the reference" >&2; exit 1; }
echo "ok: aggregate byte-identical to the undisturbed sweep"

if grep -q 'resumed:' "$work/chaos/provenance.json"; then
  grep -o '"status": "[a-z:0-9-]*"' "$work/chaos/provenance.json" \
    | sort | uniq -c | sed 's/^/  /'
  echo "ok: provenance shows checkpoint-resumed cells"
else
  echo "WARN: no cell resumed from a checkpoint this round (all cells" \
       "either survived or restarted from scratch); provenance follows:"
  grep -o '"status": "[a-z:0-9-]*"' "$work/chaos/provenance.json" \
    | sort | uniq -c | sed 's/^/  /'
fi

echo "sweep-chaos gate: all checks passed"
