#!/usr/bin/env bash
# Parallel-engine determinism gate.
#
# The contract (DESIGN.md §15): `--engine=par` is an execution knob, not
# a semantic one. Sharding the PEs across host threads under conservative
# time windows must leave every observable byte unchanged — the report,
# the trace digests, the final cycle count, and any checkpoint captured
# mid-run. CI-enforced here:
#   1. Every registry workload produces byte-identical stdout under
#      --engine=par at 1, 2 and 4 shards vs the sequential loop, with
#      periodic digests armed. (bfs and histsort declare
#      window_safe=false and are pinned to the sequential loop by the
#      runner — identical by construction, and this gate documents that
#      the flag stays accepted and harmless for them.)
#   2. The frozen paper-scale cycle counts survive the parallel engine.
#   3. Checkpoints captured under par are byte-identical to seq ones,
#      and a seq-captured checkpoint resumes under par (and vice versa).
#   4. Identity holds with the analysis checkers armed and under an
#      active fault plan.
#
# Usage: scripts/ci_parallel_determinism.sh [path-to-emx_run]
set -euo pipefail

RUN=${1:-./build/tools/emx_run}
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

APPS="sort fft fft-cyclic jacobi bfs spmv ptrchase histsort"
TINY="--procs=4 --size-per-proc=64 --threads=2 --digest-every=2000"

# --- 1. byte-identical stdout across shard counts ---------------------
for app in $APPS; do
  "$RUN" --app="$app" $TINY > "$work/$app-seq.txt"
  for shards in 1 2 4; do
    "$RUN" --app="$app" $TINY --engine=par --shards=$shards \
      > "$work/$app-par$shards.txt"
    diff "$work/$app-par$shards.txt" "$work/$app-seq.txt" \
      || { echo "FAIL: $app diverged under --engine=par --shards=$shards" >&2; exit 1; }
  done
  echo "ok: $app byte-identical at shards 1/2/4"
done

# --- 2. frozen cycle counts under the parallel engine -----------------
assert_cycles() { # app expected-cycles
  local app=$1 expected=$2 got
  got=$("$RUN" --app="$app" --engine=par --shards=4 \
    | grep -o 'cycles=[0-9]*' | head -1)
  if [ "$got" != "cycles=$expected" ]; then
    echo "FAIL: --app=$app --engine=par gave $got, frozen value is cycles=$expected" >&2
    exit 1
  fi
  echo "ok: $app par run reproduces cycles=$expected"
}
assert_cycles sort 472640
assert_cycles fft 1397612
assert_cycles bfs 38002
assert_cycles spmv 136245
assert_cycles ptrchase 34813
assert_cycles histsort 26498

# --- 3. checkpoints are engine-independent ----------------------------
"$RUN" --app=sort $TINY --checkpoint-every=2000 --checkpoint-dir="$work/ck-seq" \
  > /dev/null
"$RUN" --app=sort $TINY --checkpoint-every=2000 --checkpoint-dir="$work/ck-par" \
  --engine=par --shards=4 > /dev/null
for f in "$work"/ck-seq/*.emxsnap; do
  cmp "$f" "$work/ck-par/$(basename "$f")" \
    || { echo "FAIL: checkpoint $(basename "$f") differs between engines" >&2; exit 1; }
done
echo "ok: checkpoint bytes are engine-independent"

latest=$(ls "$work"/ck-seq/*.emxsnap | sort | tail -1)
"$RUN" --resume="$latest" > "$work/res-seq.txt"
"$RUN" --resume="$latest" --engine=par --shards=4 > "$work/res-par.txt"
diff "$work/res-par.txt" "$work/res-seq.txt" \
  || { echo "FAIL: resuming a seq checkpoint under par diverged" >&2; exit 1; }
echo "ok: a seq-captured checkpoint resumes identically under par"

# --- 4. checkers armed + fault plan active ----------------------------
crosscheck() { # tag flags...
  local tag=$1; shift
  "$RUN" "$@" > "$work/$tag-seq.txt"
  "$RUN" "$@" --engine=par --shards=4 > "$work/$tag-par.txt"
  diff "$work/$tag-par.txt" "$work/$tag-seq.txt" \
    || { echo "FAIL: $tag diverged under --engine=par" >&2; exit 1; }
  echo "ok: $tag byte-identical across engines"
}
crosscheck sort-checked --app=sort $TINY --check=all
crosscheck fft-fault --app=fft $TINY \
  --fault-drop-rate=0.01 --fault-dup-rate=0.01 --fault-seed=7
crosscheck spmv-fault --app=spmv $TINY \
  --fault-drop-rate=0.01 --fault-seed=7

echo "parallel-determinism gate: all checks passed"
