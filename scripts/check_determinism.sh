#!/usr/bin/env bash
# Determinism lint: the simulator's contract is that a (manifest, seed)
# pair replays byte-identically — snapshots are diffed across runs and
# across checkpoint/restore. Three classes of construct silently break
# that contract, and none of them is needed anywhere in src/:
#
#   1. wall-clock time   (std::chrono::system_clock / steady_clock::now,
#                         time(), gettimeofday, clock_gettime)
#   2. ambient randomness (rand(), srand(), std::random_device)
#   3. iterating an unordered container while producing saved state —
#      bucket order varies across libstdc++ versions and pointer layouts.
#
# Classes 1 and 2 are banned outright in src/. For class 3 a heuristic:
# any file that BOTH holds an unordered container AND participates in
# snapshotting (mentions save/save_state/snapshot) must also sort before
# walking (mention std::sort/sorted) or carry an explicit
# "determinism-ok:" comment explaining why bucket order cannot leak.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0

# grep -rn output is path:line:text — drop lines whose text is a comment
# so prose about "time (cycles)" does not trip the code patterns.
strip_comments() { grep -vE '^[^:]+:[0-9]+:[[:space:]]*(//|\*|;)' || true; }

# --- class 1: wall-clock time -------------------------------------------
clock_pattern='(system_clock|steady_clock|high_resolution_clock)::now|[^a-zA-Z_](time|gettimeofday|clock_gettime)[[:space:]]*\('
hits=$(grep -rnE "$clock_pattern" src --include='*.hpp' --include='*.cpp' \
  | strip_comments | grep -v 'determinism-ok:' || true)
if [[ -n "$hits" ]]; then
  echo "determinism lint: wall-clock time in src/ — simulated time is the"
  echo "only clock a deterministic run may read:"
  echo
  echo "$hits"
  echo
  fail=1
fi

# --- class 2: ambient randomness ----------------------------------------
rand_pattern='[^a-zA-Z_](rand|srand|random)[[:space:]]*\(|std::random_device'
hits=$(grep -rnE "$rand_pattern" src --include='*.hpp' --include='*.cpp' \
  | strip_comments | grep -v 'determinism-ok:' || true)
if [[ -n "$hits" ]]; then
  echo "determinism lint: ambient randomness in src/ — draw from the"
  echo "seeded common/rng.hpp stream instead:"
  echo
  echo "$hits"
  echo
  fail=1
fi

# --- class 3: unordered iteration near saved state ----------------------
for f in $(grep -rlE 'std::unordered_(map|set)' src --include='*.hpp' --include='*.cpp'); do
  if grep -qE 'save|snapshot' "$f"; then
    if ! grep -qE 'std::sort|sorted|determinism-ok:' "$f"; then
      echo "determinism lint: $f holds an unordered container and touches"
      echo "saved state, but neither sorts before walking nor carries a"
      echo "'determinism-ok:' comment justifying the bucket-order use."
      echo
      fail=1
    fi
  fi
done

if [[ "$fail" -ne 0 ]]; then
  echo "determinism lint FAILED"
  exit 1
fi
echo "determinism lint OK: no wall-clock, no ambient randomness, unordered walks near saved state are sorted or annotated"
