#!/usr/bin/env bash
# Layering check: the core simulation layers must not reach upward into
# the tooling layers.
#
#   lower  src/common src/sim src/network src/proc src/runtime
#   upper  src/snapshot src/analysis src/fault
#
# No file in a lower layer may DIRECTLY include an upper-layer header.
# (core/, trace/, isa/, apps/, model/ sit above both and are
# unrestricted; transitive includes are by construction impossible once
# no direct edge exists.) The dependency inversions this enforces are the
# hook interfaces: proc/channel_hooks.hpp (implemented by
# fault::ReliableChannel) and runtime/check_hooks.hpp (implemented by
# analysis::CheckContext).
set -euo pipefail
cd "$(dirname "$0")/.."

lower="src/common src/sim src/network src/proc src/runtime"
pattern='^[[:space:]]*#[[:space:]]*include[[:space:]]*"(snapshot|analysis|fault)/'

violations=$(grep -rnE "$pattern" $lower || true)
if [[ -n "$violations" ]]; then
  echo "layering violation: core layers (common/sim/network/proc/runtime)"
  echo "must not include snapshot/, analysis/ or fault/ headers:"
  echo
  echo "$violations"
  echo
  echo "Invert the dependency through a hook interface instead"
  echo "(see proc/channel_hooks.hpp and runtime/check_hooks.hpp)."
  exit 1
fi
echo "layering OK: no core-layer file includes snapshot/, analysis/ or fault/ headers"

# Workload plugins sit at the very top of src/: they may use the machine,
# runtime and app helpers, but nothing below them may know they exist —
# the registry is the only way in. The snapshot runner is the one
# sanctioned consumer (it builds workloads from manifests).
below_workloads="src/common src/sim src/network src/proc src/runtime \
src/core src/apps src/model src/isa src/trace src/fault src/analysis \
src/snapshot"
wl_pattern='^[[:space:]]*#[[:space:]]*include[[:space:]]*"workloads/'
violations=$(grep -rnE "$wl_pattern" $below_workloads \
  | grep -v '^src/snapshot/runner\.cpp:' || true)
if [[ -n "$violations" ]]; then
  echo "layering violation: only the snapshot runner may include"
  echo "workloads/ headers — everything else below src/workloads must"
  echo "stay ignorant of the plugin layer:"
  echo
  echo "$violations"
  echo
  echo "Register the workload and reach it through workloads::Registry."
  exit 1
fi

# And the plugins themselves must not reach sideways into the tooling
# layers: a workload is built *by* the snapshot runner and observed *by*
# analysis — depending on either would invert that relationship.
wl_up_pattern='^[[:space:]]*#[[:space:]]*include[[:space:]]*"(snapshot|analysis|fault)/'
violations=$(grep -rnE "$wl_up_pattern" src/workloads || true)
if [[ -n "$violations" ]]; then
  echo "layering violation: src/workloads must not include snapshot/,"
  echo "analysis/ or fault/ headers:"
  echo
  echo "$violations"
  exit 1
fi
echo "layering OK: workloads/ is included only by the snapshot runner and stays below the tooling layers"

# The static verifier reads isa::Program and nothing else: verify/ may
# include only isa/ and common/ (besides its own headers). Anything more
# would let "static" analysis grow runtime dependencies.
v_down_pattern='^[[:space:]]*#[[:space:]]*include[[:space:]]*"(sim|network|proc|runtime|core|apps|model|trace|fault|analysis|snapshot|workloads)/'
violations=$(grep -rnE "$v_down_pattern" src/verify || true)
if [[ -n "$violations" ]]; then
  echo "layering violation: src/verify may include only isa/, common/ and"
  echo "its own headers — it analyses programs, it does not run them:"
  echo
  echo "$violations"
  exit 1
fi

# And the core layers must not know the verifier exists; the snapshot
# runner is the one sanctioned consumer (the --verify-static gate), plus
# the tools that surface reports directly.
v_up_pattern='^[[:space:]]*#[[:space:]]*include[[:space:]]*"verify/'
violations=$(grep -rnE "$v_up_pattern" src \
  | grep -v '^src/verify/' \
  | grep -v '^src/snapshot/runner\.' || true)
if [[ -n "$violations" ]]; then
  echo "layering violation: inside src/ only the snapshot runner may"
  echo "include verify/ headers — core layers must not depend on the"
  echo "static verifier:"
  echo
  echo "$violations"
  exit 1
fi
echo "layering OK: verify/ sees only isa/ + common/, and only the snapshot runner sees verify/"

# The job engine orchestrates emx_run *processes*; inside src/ it may
# read recipes (snapshot/ manifests), registry defaults (workloads/) and
# common/ utilities — never the machine layers, which would tempt it to
# run cells in-process and lose the crash-isolation the fork/exec
# boundary provides. And nothing in src/ may include jobs/: the engine
# is a tools-facing layer, consumed only by emx_sweep.
j_down_pattern='^[[:space:]]*#[[:space:]]*include[[:space:]]*"(sim|network|proc|runtime|core|apps|model|isa|trace|fault|analysis|verify)/'
violations=$(grep -rnE "$j_down_pattern" src/jobs || true)
if [[ -n "$violations" ]]; then
  echo "layering violation: src/jobs may include only common/, snapshot/,"
  echo "workloads/ and its own headers — cells run in worker processes,"
  echo "never in the supervisor:"
  echo
  echo "$violations"
  exit 1
fi
j_up_pattern='^[[:space:]]*#[[:space:]]*include[[:space:]]*"jobs/'
violations=$(grep -rnE "$j_up_pattern" src \
  | grep -v '^src/jobs/' \
  | grep -v '^src/serve/' || true)
if [[ -n "$violations" ]]; then
  echo "layering violation: nothing in src/ outside src/jobs and"
  echo "src/serve may include jobs/ headers — the job engine is consumed"
  echo "by the serve daemon and the tools only:"
  echo
  echo "$violations"
  exit 1
fi
echo "layering OK: jobs/ sees only common/ + snapshot/ + workloads/, and only serve/ sees jobs/"

# The serve daemon sits on top of the job engine: it may use jobs/
# (pool, journal, cache, specs), snapshot/ (manifests, progress),
# workloads/ (via specs) and common/ — never the machine layers, for
# the same crash-isolation reason as jobs/. And nothing in src/ may
# include serve/: the daemon layer is consumed only by emx_serve and
# emx_client.
s_down_pattern='^[[:space:]]*#[[:space:]]*include[[:space:]]*"(sim|network|proc|runtime|core|apps|model|isa|trace|fault|analysis|verify)/'
violations=$(grep -rnE "$s_down_pattern" src/serve || true)
if [[ -n "$violations" ]]; then
  echo "layering violation: src/serve may include only common/, jobs/,"
  echo "snapshot/, workloads/ and its own headers — simulations run in"
  echo "worker processes, never in the daemon:"
  echo
  echo "$violations"
  exit 1
fi
s_up_pattern='^[[:space:]]*#[[:space:]]*include[[:space:]]*"serve/'
violations=$(grep -rnE "$s_up_pattern" src \
  | grep -v '^src/serve/' || true)
if [[ -n "$violations" ]]; then
  echo "layering violation: nothing in src/ outside src/serve may include"
  echo "serve/ headers — the daemon layer is consumed by tools only:"
  echo
  echo "$violations"
  exit 1
fi
echo "layering OK: serve/ sees only common/ + jobs/ + snapshot/ + workloads/, and src/ does not see serve/"

# The execution engines (sim/engine.hpp, sim/parallel_engine.hpp) sit at
# the top of the sim layer: the Machine selects one, the snapshot runner
# passes the spec through. No layer below the machine may know which
# engine runs it — PEs, networks and runtime code see only their own
# lane's SimContext, which is what keeps a lane's code engine-agnostic
# (the window protocol in sim/window.hpp is the sanctioned inversion,
# like channel_hooks).
e_pattern='^[[:space:]]*#[[:space:]]*include[[:space:]]*"sim/(engine|parallel_engine)\.hpp"'
violations=$(grep -rnE "$e_pattern" src/common src/network src/proc src/runtime || true)
if [[ -n "$violations" ]]; then
  echo "layering violation: src/common, src/network, src/proc and"
  echo "src/runtime must not include the engine headers — lane code is"
  echo "engine-agnostic; cross-lane effects go through sim/window.hpp:"
  echo
  echo "$violations"
  exit 1
fi

# And the simulation layers must not pull in the host thread pool: the
# parallel engine owns its worker threads directly, and any other host
# threading inside the machine layers would bypass the window protocol's
# determinism argument.
t_pattern='^[[:space:]]*#[[:space:]]*include[[:space:]]*"common/thread_pool\.hpp"'
violations=$(grep -rnE "$t_pattern" src/sim src/network src/proc src/runtime || true)
if [[ -n "$violations" ]]; then
  echo "layering violation: the machine layers (sim/network/proc/runtime)"
  echo "must not use common/thread_pool.hpp — host concurrency inside the"
  echo "simulation is the parallel engine's job alone:"
  echo
  echo "$violations"
  exit 1
fi
echo "layering OK: engine headers stay above the lane layers, and no machine layer uses the host thread pool"
