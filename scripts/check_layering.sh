#!/usr/bin/env bash
# Layering check: the core simulation layers must not reach upward into
# the tooling layers.
#
#   lower  src/common src/sim src/network src/proc src/runtime
#   upper  src/snapshot src/analysis src/fault
#
# No file in a lower layer may DIRECTLY include an upper-layer header.
# (core/, trace/, isa/, apps/, model/ sit above both and are
# unrestricted; transitive includes are by construction impossible once
# no direct edge exists.) The dependency inversions this enforces are the
# hook interfaces: proc/channel_hooks.hpp (implemented by
# fault::ReliableChannel) and runtime/check_hooks.hpp (implemented by
# analysis::CheckContext).
set -euo pipefail
cd "$(dirname "$0")/.."

lower="src/common src/sim src/network src/proc src/runtime"
pattern='^[[:space:]]*#[[:space:]]*include[[:space:]]*"(snapshot|analysis|fault)/'

violations=$(grep -rnE "$pattern" $lower || true)
if [[ -n "$violations" ]]; then
  echo "layering violation: core layers (common/sim/network/proc/runtime)"
  echo "must not include snapshot/, analysis/ or fault/ headers:"
  echo
  echo "$violations"
  echo
  echo "Invert the dependency through a hook interface instead"
  echo "(see proc/channel_hooks.hpp and runtime/check_hooks.hpp)."
  exit 1
fi
echo "layering OK: no core-layer file includes snapshot/, analysis/ or fault/ headers"
