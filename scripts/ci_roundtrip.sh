#!/usr/bin/env bash
# Checkpoint round-trip determinism gate.
#
# Three contracts, CI-enforced:
#   1. The paper-scale cycle counts are frozen: default flags must yield
#      exactly sort=472640 and fft=1397612 cycles. Any drift is a real
#      behaviour change and must be a conscious decision, not an accident.
#   2. Checkpointing is observationally free: a checkpointed run prints
#      byte-for-byte the report of an unchecked one, and resuming from a
#      checkpoint finishes with the identical report — fault-free AND
#      under an active fault plan.
#   3. Contradictory flag combinations exit 2 up front, never run wrong.
#
# Usage: scripts/ci_roundtrip.sh [path-to-emx_run]
set -euo pipefail

RUN=${1:-./build/tools/emx_run}
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# --- 1. frozen paper-scale cycle counts -------------------------------
assert_cycles() { # app expected-cycles
  local app=$1 expected=$2 got
  got=$("$RUN" --app="$app" | grep -o 'cycles=[0-9]*' | head -1)
  if [ "$got" != "cycles=$expected" ]; then
    echo "FAIL: --app=$app default run gave $got, frozen value is cycles=$expected" >&2
    exit 1
  fi
  echo "ok: $app default-flag run reproduces cycles=$expected"
}
assert_cycles sort 472640
assert_cycles fft 1397612

# --- 2. checkpoint round-trips ----------------------------------------
roundtrip() { # tag checkpoint-every flags...
  local tag=$1 every=$2; shift 2
  local dir="$work/$tag" base="$work/$tag-base.txt"
  "$RUN" "$@" > "$base"
  "$RUN" "$@" --checkpoint-every="$every" --checkpoint-dir="$dir" \
    > "$work/$tag-ck.txt"
  # The checkpointed run differs only by its trailing "checkpoints:" line.
  diff <(grep -v '^checkpoints:' "$work/$tag-ck.txt") "$base" \
    || { echo "FAIL: $tag — checkpointing perturbed the run" >&2; exit 1; }
  local count
  count=$(ls "$dir"/*.emxsnap | wc -l)
  [ "$count" -ge 3 ] || { echo "FAIL: $tag wrote $count checkpoints, want >=3" >&2; exit 1; }
  # Resume from the latest checkpoint: state verification passes (exit 0,
  # not 5) and the finished run's report is byte-identical.
  local latest
  latest=$(ls "$dir"/*.emxsnap | sort | tail -1)
  "$RUN" --resume="$latest" > "$work/$tag-res.txt"
  diff "$work/$tag-res.txt" "$base" \
    || { echo "FAIL: $tag — resume from $latest diverged" >&2; exit 1; }
  echo "ok: $tag round-trips through $(basename "$latest")"
}
roundtrip sort-clean 120000 --app=sort
roundtrip fft-clean  350000 --app=fft
roundtrip sort-fault 150000 --app=sort \
  --fault-drop-rate=0.01 --fault-dup-rate=0.01 --fault-seed=7
roundtrip fft-fault  400000 --app=fft \
  --fault-drop-rate=0.01 --fault-seed=7

# --- 3. contradictory flags are exit 2 --------------------------------
expect2() { # description flags...
  local what=$1; shift
  local code=0
  "$RUN" "$@" >/dev/null 2>&1 || code=$?
  [ "$code" = 2 ] || { echo "FAIL: $what exited $code, want 2" >&2; exit 1; }
  echo "ok: $what is exit 2"
}
ck=$(ls "$work"/sort-clean/*.emxsnap | head -1)
rr="$work/tiny.rr"
"$RUN" --app=sort --procs=4 --size-per-proc=64 --threads=2 \
  --record="$rr" --digest-every=20000 > /dev/null

expect2 "--checkpoint-every without --checkpoint-dir" \
  --app=sort --checkpoint-every=1000
expect2 "--replay with --record" --replay="$rr" --record="$work/x.rr"
expect2 "--replay with --resume" --replay="$rr" --resume="$ck"
expect2 "--replay with an explicit fault flag" \
  --replay="$rr" --fault-drop-rate=0.1
expect2 "--replay with a contradicting topology" --replay="$rr" --procs=8
expect2 "--resume with a contradicting topology" --resume="$ck" --procs=8
expect2 "--resume with a contradicting seed" --resume="$ck" --seed=999

# A clean replay of the recording still passes, proving the gate above
# rejected the flags and not the mechanism.
"$RUN" --replay="$rr" > /dev/null
echo "ok: clean replay of the recording passes"

echo "roundtrip gate: all checks passed"
