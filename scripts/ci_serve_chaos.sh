#!/usr/bin/env bash
# Serve-daemon chaos gate: push a mixed-priority, multi-tenant batch
# through emx_serve while a killer loop SIGKILLs random workers, then
# SIGKILL the daemon itself mid-flight, restart it over the same state
# directory and let it drain. Every job must finish with a result
# byte-identical to a clean serial emx_run of the same recipe (cmp, not
# diff: the claim is bytes), and a post-drain resubmit must come back
# `cached` — proof the dedup path against the result cache fires. A
# `resumed:` provenance token shows the checkpoint-preemption/resume
# path carried jobs across the kills. A final phase reruns part of the
# batch under a daemon started with --engine=par and cmp's the result
# bytes against the seq-engine results: the engine is an execution knob,
# so serving under the parallel engine must not move a single byte.
#
# Usage: scripts/ci_serve_chaos.sh [emx_serve] [emx_client] [emx_run]
set -euo pipefail

SERVE=${1:-./build/tools/emx_serve}
CLIENT=${2:-./build/tools/emx_client}
RUN=${3:-./build/tools/emx_run}
work=$(mktemp -d)
trap 'rm -rf "$work"; pkill -9 -f "emx_serve .*$work" 2>/dev/null || true' EXIT

SOCK="$work/emx.sock"
OUT="$work/out"
# Low checkpoint period + generous retries + tiny backoff: even short
# jobs write several checkpoints for the resume path, and the killer
# loop cannot exhaust anyone's budget.
DAEMON=("$SERVE" --socket="$SOCK" --out="$OUT" --jobs=2 --retries=10
        --backoff-ms=1 --checkpoint-every=500 --progress-every=500
        --preempt-grace-ms=2000 --quiet=true)

# The batch: 8 distinct recipes, two tenants, priorities spread 0..9.
# Kept small so the gate stays fast; the chaos, not the workload, is
# the point.
APPS=(sort bfs sort bfs sort bfs sort bfs)
PROCS=(4 4 8 8 4 4 8 8)
SIZES=(256 256 256 256 512 512 512 512)
SEEDS=(1 1 1 1 2 2 2 2)
PRIOS=(1 9 3 7 5 0 8 2)
TENANTS=(alice bob alice bob bob alice bob alice)
N=8

wait_for_socket() {
  # A stale socket file from a SIGKILLed daemon still exists, so probe
  # with a real round-trip, not a file test.
  for _ in $(seq 1 200); do
    "$CLIENT" list --socket="$SOCK" > /dev/null 2>&1 && return 0
    sleep 0.05
  done
  echo "FAIL: daemon never answered on its socket" >&2
  exit 1
}

echo "== phase 1: daemon under fire =="
"${DAEMON[@]}" &
daemon=$!
wait_for_socket

for i in $(seq 0 $((N - 1))); do
  "$CLIENT" submit --socket="$SOCK" \
    --app="${APPS[$i]}" --procs="${PROCS[$i]}" --threads=2 \
    --size-per-proc="${SIZES[$i]}" --seed="${SEEDS[$i]}" \
    --priority="${PRIOS[$i]}" --tenant="${TENANTS[$i]}" > /dev/null
done

# Killer loop: every few ms, SIGKILL one random live emx_run worker
# spawned under this daemon's state directory.
kill_workers() {
  while [ ! -e "$work/stop-killing" ]; do
    victim=$(pgrep -f "emx_run .*$OUT" | shuf -n 1 || true)
    [ -n "$victim" ] && kill -9 "$victim" 2>/dev/null || true
    sleep 0.03
  done
}
kill_workers &
killer=$!

sleep 1.2
echo "== phase 2: SIGKILL the daemon mid-flight =="
kill -9 "$daemon" 2>/dev/null || true
wait "$daemon" 2>/dev/null || true
# Orphaned workers keep running once the daemon dies; reap them so the
# restarted daemon owns the directory alone.
pkill -9 -f "emx_run .*$OUT" 2>/dev/null || true
touch "$work/stop-killing"
wait "$killer" 2>/dev/null || true
sleep 0.1

echo "== phase 3: restart over the same state directory and drain =="
"${DAEMON[@]}" &
daemon=$!
wait_for_socket
"$CLIENT" drain --socket="$SOCK" --wait=true > /dev/null
wait "$daemon" \
  || { echo "FAIL: restarted daemon did not drain cleanly" >&2; exit 1; }

echo "== phase 4: verify every result against a clean serial run =="
"${DAEMON[@]}" &
daemon=$!
wait_for_socket

resumed=0
for i in $(seq 0 $((N - 1))); do
  id="j$((i + 1))"
  "$CLIENT" result --socket="$SOCK" --id="$id" > "$work/served-$id.json" \
    || { echo "FAIL: $id has no result" >&2; exit 1; }
  "$RUN" --app="${APPS[$i]}" --procs="${PROCS[$i]}" --threads=2 \
    --size-per-proc="${SIZES[$i]}" --seed="${SEEDS[$i]}" \
    --result-json="$work/ref-$id.json" > /dev/null
  cmp "$work/served-$id.json" "$work/ref-$id.json" \
    || { echo "FAIL: $id result differs from the clean run" >&2; exit 1; }
  status=$("$CLIENT" status --socket="$SOCK" --id="$id")
  case "$status" in
    *'"status":"resumed:'*) resumed=$((resumed + 1)) ;;
  esac
done
echo "ok: all $N results byte-identical to clean serial runs"

# Resubmitting a finished recipe must be answered from the result cache
# without running anything: provenance `cached`.
cached=$("$CLIENT" submit --socket="$SOCK" \
  --app="${APPS[0]}" --procs="${PROCS[0]}" --threads=2 \
  --size-per-proc="${SIZES[0]}" --seed="${SEEDS[0]}")
case "$cached" in
  *'"status":"cached"'*) echo "ok: resubmit answered from the cache" ;;
  *) echo "FAIL: resubmit was not cached: $cached" >&2; exit 1 ;;
esac

if [ "$resumed" -gt 0 ]; then
  echo "ok: $resumed job(s) carried across kills via checkpoint resume"
else
  echo "WARN: no job resumed from a checkpoint this round (all attempts" \
       "either survived or restarted from scratch)"
fi

"$CLIENT" drain --socket="$SOCK" --wait=true > /dev/null
wait "$daemon" 2>/dev/null || true

echo "== phase 5: rerun under --engine=par, results must not move a byte =="
# Fresh state directory (no cache carry-over: these jobs must actually
# run under the parallel engine, not be answered from phase 1's cache).
# Two recipes cover both engine paths: sort shards its PEs for real,
# bfs declares window_safe=false and exercises the seq-pinning fallback.
OUT2="$work/out-par"
PAR_DAEMON=("$SERVE" --socket="$SOCK" --out="$OUT2" --jobs=2
            --checkpoint-every=500 --engine=par --shards=2 --quiet=true)
"${PAR_DAEMON[@]}" &
daemon=$!
wait_for_socket
for i in 0 1; do
  "$CLIENT" submit --socket="$SOCK" \
    --app="${APPS[$i]}" --procs="${PROCS[$i]}" --threads=2 \
    --size-per-proc="${SIZES[$i]}" --seed="${SEEDS[$i]}" > /dev/null
done
"$CLIENT" drain --socket="$SOCK" --wait=true > /dev/null
wait "$daemon" \
  || { echo "FAIL: par-engine daemon did not drain cleanly" >&2; exit 1; }
"${PAR_DAEMON[@]}" &
daemon=$!
wait_for_socket
for i in 0 1; do
  id="j$((i + 1))"
  "$CLIENT" result --socket="$SOCK" --id="$id" > "$work/par-$id.json" \
    || { echo "FAIL: par-engine $id has no result" >&2; exit 1; }
  cmp "$work/par-$id.json" "$work/ref-$id.json" \
    || { echo "FAIL: $id result differs between engines" >&2; exit 1; }
done
"$CLIENT" drain --socket="$SOCK" --wait=true > /dev/null
wait "$daemon" 2>/dev/null || true
echo "ok: par-engine results byte-identical to the seq-engine runs"

echo "serve-chaos gate: all checks passed"
