#!/usr/bin/env bash
# Crash-recovery gate: SIGKILL a checkpointing run mid-flight, resume
# from the latest surviving checkpoint, and require the finished run's
# report to be byte-identical to an uninterrupted one. This is the
# subsystem's reason to exist — a dead process loses nothing but the
# cycles since the last checkpoint.
#
# Usage: scripts/ci_kill_resume.sh [path-to-emx_run]
set -euo pipefail

RUN=${1:-./build/tools/emx_run}
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

kill_and_resume() { # tag checkpoint-every flags...
  local tag=$1 every=$2; shift 2
  local dir="$work/$tag-ck" base="$work/$tag-base.txt"
  "$RUN" "$@" > "$base"

  "$RUN" "$@" --checkpoint-every="$every" --checkpoint-dir="$dir" \
    > /dev/null 2>&1 &
  local pid=$!
  # SIGKILL — not SIGTERM, no cleanup — once three checkpoints exist.
  # If the run outraces the poll and exits, the checkpoints are still on
  # disk and the resume below is exercised all the same.
  for _ in $(seq 1 1200); do
    [ "$(ls "$dir" 2>/dev/null | wc -l)" -ge 3 ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.05
  done
  kill -9 "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true

  local count
  count=$(ls "$dir"/*.emxsnap 2>/dev/null | wc -l)
  [ "$count" -ge 1 ] || { echo "FAIL: $tag died with no checkpoints" >&2; exit 1; }
  local latest
  latest=$(ls "$dir"/*.emxsnap | sort | tail -1)
  echo "$tag: killed at $count checkpoints, resuming from $(basename "$latest")"

  "$RUN" --resume="$latest" > "$work/$tag-res.txt"
  diff "$work/$tag-res.txt" "$base" \
    || { echo "FAIL: $tag resume diverged from the uninterrupted run" >&2; exit 1; }
  echo "ok: $tag resumed byte-identically after SIGKILL"
}

kill_and_resume sort 100000 --app=sort
kill_and_resume fft  300000 --app=fft
kill_and_resume sort-fault 120000 --app=sort \
  --fault-drop-rate=0.01 --fault-seed=11

echo "kill-and-resume gate: all checks passed"
