#!/usr/bin/env bash
# Static-verification gate: emx_verify must pass every checked-in clean
# program and every registry workload, and must flag each golden buggy
# program with the finding it was written to demonstrate (exit code 6 +
# the kind token in the output).
#
#   usage: scripts/ci_verify.sh ./build/tools/emx_verify [./build/tools/emx_run]
set -uo pipefail
cd "$(dirname "$0")/.."

verify="${1:?usage: ci_verify.sh <emx_verify> [<emx_run>]}"
emx_run="${2:-}"

fail=0

# --- clean side: examples + every registry workload ----------------------
if ! "$verify" examples/isa/*.emx; then
  echo "FAIL: clean example programs did not verify clean"
  fail=1
fi
if ! "$verify" --apps; then
  echo "FAIL: a registry workload did not verify clean"
  fail=1
fi

# --- buggy side: each golden program names its finding and exits 6 -------
expect_finding() {
  local file="$1" token="$2" out code
  out=$("$verify" "tests/verify/golden/$file" 2>&1)
  code=$?
  if [[ "$code" -ne 6 ]]; then
    echo "FAIL: $file: expected exit 6, got $code"
    echo "$out"
    fail=1
  elif ! grep -q "$token" <<<"$out"; then
    echo "FAIL: $file: expected a '$token' finding, got:"
    echo "$out"
    fail=1
  else
    echo "ok: $file -> $token (exit 6)"
  fi
}

expect_finding use_before_def.emx   use-before-def
expect_finding frame_leak.emx       frame-leak
expect_finding barrier_mismatch.emx barrier-path-mismatch
expect_finding unreachable.emx      unreachable-code
expect_finding spin_loop.emx        spin-without-suspend

# --- gate plumbing through emx_run (optional second argument) ------------
if [[ -n "$emx_run" ]]; then
  "$emx_run" --app=sort --procs=4 --size-per-proc=64 --threads=2 \
    --verify-static=error >/dev/null || {
    echo "FAIL: --verify-static=error broke a clean run"
    fail=1
  }
  "$emx_run" --app=sort --verify-static=bogus >/dev/null 2>&1
  if [[ $? -ne 2 ]]; then
    echo "FAIL: --verify-static=bogus should be rejected with exit 2"
    fail=1
  fi
fi

if [[ "$fail" -ne 0 ]]; then
  echo "static verification gate FAILED"
  exit 1
fi
echo "static verification gate OK"
