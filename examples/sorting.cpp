// Multithreaded bitonic sorting on the EM-X — the paper's first workload.
//
//   $ ./sorting --procs=16 --size-per-proc=1024 --threads=4
//
// Sorts n random 32-bit integers distributed across P processors with h
// fine-grain threads per processor, verifies the result, and reports the
// paper's headline metrics.
#include <cstdio>

#include "apps/bitonic.hpp"
#include "apps/distribution.hpp"
#include "common/cli.hpp"
#include "core/experiment.hpp"
#include "core/machine.hpp"

using namespace emx;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("procs", "16", "processors (power of two)")
      .define("size-per-proc", "1024", "elements per processor")
      .define("threads", "4", "fine-grain threads per processor")
      .define("network", "fast", "network model: fast | detailed")
      .define("seed", "1", "workload seed");
  flags.parse(argc, argv);

  MachineConfig cfg;
  cfg.proc_count = static_cast<std::uint32_t>(flags.integer("procs"));
  cfg.network = flags.str("network") == "detailed" ? NetworkModel::kDetailed
                                                   : NetworkModel::kFast;
  const std::uint64_t n =
      cfg.proc_count * static_cast<std::uint64_t>(flags.integer("size-per-proc"));
  const auto h = static_cast<std::uint32_t>(flags.integer("threads"));

  Machine machine(cfg);
  apps::BitonicSortApp app(
      machine, apps::BitonicParams{
                   .n = n,
                   .threads = h,
                   .seed = static_cast<std::uint64_t>(flags.integer("seed"))});
  app.setup();
  machine.run();

  const bool ok = app.verify();
  const MachineReport report = machine.report();
  std::printf("bitonic sort: n=%s on P=%u with h=%u threads/PE — %s\n",
              size_label(n).c_str(), cfg.proc_count, h,
              ok ? "SORTED" : "WRONG RESULT");
  std::printf("%s\n", report.summary_text().c_str());
  std::printf("merge steps: %u, remote reads per PE: %llu\n",
              apps::bitonic_merge_steps(cfg.proc_count),
              static_cast<unsigned long long>(report.procs[0].reads_issued));
  const auto first = app.gather();
  std::printf("first elements: %u %u %u %u ...\n", first[0], first[1], first[2],
              first[3]);
  return ok ? 0 : 1;
}
