// Reproduces the paper's Figure 4 and Figure 5 execution timelines as
// ASCII Gantt charts.
//
//   $ ./timeline            # both figures
//   $ ./timeline --figure=4 # multithreaded bitonic sorting, 2 PEs x 2 thr
//   $ ./timeline --figure=5 # multithreaded FFT, P=4 n=16 h=2, iteration 0
#include <cstdio>

#include "apps/bitonic.hpp"
#include "apps/fft.hpp"
#include "common/cli.hpp"
#include "core/machine.hpp"
#include "trace/gantt.hpp"

using namespace emx;

namespace {

void figure4() {
  std::printf("Figure 4 — multithreaded bitonic sorting: Px=(2,5,6,7), "
              "Py=(1,3,4,8), two threads each, ascending merge\n");
  MachineConfig cfg;
  cfg.proc_count = 2;
  cfg.network = NetworkModel::kDetailed;
  trace::VectorTraceSink sink;
  Machine machine(cfg, &sink);
  apps::BitonicSortApp app(machine, apps::BitonicParams{.n = 8, .threads = 2});
  app.setup();
  const Word x[4] = {2, 5, 6, 7};
  const Word y[4] = {1, 3, 4, 8};
  for (int k = 0; k < 4; ++k) {
    machine.memory(0).write(app.buf_addr(0, k), x[k]);
    machine.memory(1).write(app.buf_addr(0, k), y[k]);
  }
  machine.run();
  std::printf("%s", trace::render_gantt(sink.events(), {.width = 110}).c_str());
  std::printf("result Px: ");
  for (int k = 0; k < 4; ++k)
    std::printf("%u ", machine.memory(0).read(app.buf_addr(1, k)));
  std::printf("  Py: ");
  for (int k = 0; k < 4; ++k)
    std::printf("%u ", machine.memory(1).read(app.buf_addr(1, k)));
  std::printf("\n\nevent log (first 40):\n%s",
              trace::render_event_log(sink.events(), 40).c_str());
}

void figure5() {
  std::printf("\nFigure 5 — multithreaded FFT, P=4, n=16, h=2, showing "
              "iteration 0 (reads go to the mate at distance P/2)\n");
  MachineConfig cfg;
  cfg.proc_count = 4;
  cfg.network = NetworkModel::kDetailed;
  trace::VectorTraceSink sink;
  Machine machine(cfg, &sink);
  apps::FftApp app(machine, apps::FftParams{.n = 16, .threads = 2});
  app.setup();
  machine.run();
  std::printf("%s", trace::render_gantt(sink.events(), {.width = 110}).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("figure", "both", "which figure: 4 | 5 | both");
  flags.parse(argc, argv);
  const std::string which = flags.str("figure");
  if (which == "4" || which == "both") figure4();
  if (which == "5" || which == "both") figure5();
  return 0;
}
