// Prints the circular Omega (shuffle) network topology and routing — the
// paper's Figure 2 structure — plus per-switch traffic for a sample
// all-to-all exchange.
//
//   $ ./topology --procs=16
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "network/omega_network.hpp"
#include "sim/sim_context.hpp"

using namespace emx;
using namespace emx::net;

namespace {
void drop(void*, const Packet&) {}
}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("procs", "16", "processor count (power of two)")
      .define("route-from", "1", "print the route from this PE")
      .define("route-to", "6", "...to this PE");
  flags.parse(argc, argv);
  const auto procs = static_cast<std::uint32_t>(flags.integer("procs"));

  std::printf("EM-X circular Omega network, P=%u switch boxes\n", procs);
  std::printf("each switch: 2 network in/out ports + processor port, 3x3 crossbar\n");
  std::printf("shuffle edges: switch i -> (2i) mod P and (2i+1) mod P\n\n");

  ShuffleRouting routing(procs);
  for (ProcId i = 0; i < std::min(procs, 16u); ++i) {
    std::printf("  switch %2u -> %2u, %2u\n", i, (2 * i) % procs,
                (2 * i + 1) % procs);
  }
  if (procs > 16) std::printf("  ... (%u more)\n", procs - 16);

  const auto from = static_cast<ProcId>(flags.integer("route-from"));
  const auto to = static_cast<ProcId>(flags.integer("route-to"));
  std::printf("\nroute %u -> %u (%u hops, %u+1 cycles uncontended): ", from, to,
              routing.hop_count(from, to), routing.hop_count(from, to));
  for (ProcId node : routing.route(from, to)) std::printf("%u ", node);
  std::printf("\n");

  // Sample all-to-all exchange; show the busiest switches.
  sim::SimContext sim;
  OmegaNetwork network(sim, procs);
  network.set_delivery(&drop, nullptr);
  for (ProcId s = 0; s < procs; ++s) {
    for (ProcId d = 0; d < procs; ++d) {
      if (s == d) continue;
      Packet p;
      p.kind = PacketKind::kRemoteWrite;
      p.src = s;
      p.dst = d;
      network.inject(p);
    }
  }
  sim.run_until_idle();
  std::printf("\nall-to-all exchange (%u packets): finished at cycle %llu, "
              "mean latency %.1f cycles, port wait total %llu cycles\n",
              procs * (procs - 1),
              static_cast<unsigned long long>(sim.now()),
              network.stats().latency.mean(),
              static_cast<unsigned long long>(network.total_port_wait()));
  Table table({"switch", "net0 fwd", "net1 fwd", "eject fwd", "wait cyc"});
  for (ProcId i = 0; i < std::min(procs, 8u); ++i) {
    const auto& sw = network.switch_box(i);
    table.add_row({std::to_string(i), Table::cell(sw.forwarded(0)),
                   Table::cell(sw.forwarded(1)), Table::cell(sw.forwarded(2)),
                   Table::cell(sw.total_wait())});
  }
  std::fputs(table.to_text().c_str(), stdout);
  return 0;
}
