// Quickstart: build a small EM-X, run a handful of fine-grain threads that
// exercise split-phase remote reads, and print the machine report plus a
// Figure-1-style multithreading timeline.
//
//   $ ./quickstart
#include <cstdio>

#include "core/machine.hpp"
#include "trace/gantt.hpp"

using namespace emx;

namespace {

// Three threads per processor, each doing the canonical fine-grain
// pattern: compute a little, remote-read from the neighbour, repeat.
// While one thread's read is outstanding, the FIFO scheduler runs the
// others — communication overlaps computation (paper Figure 1).
rt::ThreadBody worker(rt::ThreadApi api, Word thread_index) {
  const ProcId me = api.proc();
  const ProcId neighbour = (me + 1) % api.config().proc_count;
  Word acc = 0;
  for (int round = 0; round < 4; ++round) {
    co_await api.compute(10);  // 10 one-clock instructions of "work"
    const LocalAddr slot = rt::kReservedWords + thread_index * 4 + round;
    acc += co_await api.remote_read(rt::GlobalAddr{neighbour, slot});
  }
  // Publish the accumulated value for the host to inspect.
  api.local_write(rt::kReservedWords + 64 + thread_index, acc);
  co_await api.iteration_barrier();
}

}  // namespace

int main() {
  MachineConfig cfg;
  cfg.proc_count = 4;
  cfg.network = NetworkModel::kDetailed;  // per-hop Omega simulation

  trace::VectorTraceSink trace_sink;
  Machine machine(cfg, &trace_sink);

  constexpr std::uint32_t kThreads = 3;
  const std::uint32_t entry = machine.register_entry(worker);
  machine.configure_barrier(kThreads);

  // Seed each PE's memory with recognisable values for the remote reads.
  for (ProcId p = 0; p < cfg.proc_count; ++p) {
    for (LocalAddr a = 0; a < 16; ++a) {
      machine.memory(p).write(rt::kReservedWords + a, 100 * p + a);
    }
    for (std::uint32_t t = 0; t < kThreads; ++t) machine.spawn(p, entry, t);
  }

  machine.run();
  const MachineReport report = machine.report();

  std::printf("EM-X quickstart — %s\n", cfg.summary().c_str());
  std::printf("%s\n\n", report.summary_text().c_str());

  std::printf("per-thread accumulators (PE0): ");
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    std::printf("%u ", machine.memory(0).read(rt::kReservedWords + 64 + t));
  }
  std::printf("\n\nmultithreading timeline (paper Figure 1 style):\n%s",
              trace::render_gantt(trace_sink.events(), {.width = 100}).c_str());
  return 0;
}
