// Multithreaded FFT on the EM-X — the paper's second workload.
//
//   $ ./fft_demo --procs=8 --size-per-proc=512 --threads=3
//
// Transforms a random complex signal, verifies against the host
// reference, and shows why FFT overlaps so well: huge run length, no
// thread synchronisation.
#include <cstdio>

#include "apps/fft.hpp"
#include "common/cli.hpp"
#include "core/experiment.hpp"
#include "core/machine.hpp"

using namespace emx;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("procs", "8", "processors (power of two)")
      .define("size-per-proc", "512", "points per processor (power of two)")
      .define("threads", "3", "fine-grain threads per processor")
      .define("comm-only", "false",
              "run only the first log P iterations, as the paper times");
  flags.parse(argc, argv);

  MachineConfig cfg;
  cfg.proc_count = static_cast<std::uint32_t>(flags.integer("procs"));
  const std::uint64_t n =
      cfg.proc_count * static_cast<std::uint64_t>(flags.integer("size-per-proc"));
  const auto h = static_cast<std::uint32_t>(flags.integer("threads"));
  const bool comm_only = flags.boolean("comm-only");

  Machine machine(cfg);
  apps::FftApp app(machine,
                   apps::FftParams{.n = n,
                                   .threads = h,
                                   .include_local_phase = !comm_only});
  app.setup();
  machine.run();

  const MachineReport report = machine.report();
  std::printf("FFT: %s points on P=%u with h=%u threads/PE%s\n",
              size_label(n).c_str(), cfg.proc_count, h,
              comm_only ? " (communication iterations only)" : "");
  std::printf("%s\n", report.summary_text().c_str());
  if (!comm_only) {
    const double err = app.verify_error();
    std::printf("max relative error vs host reference: %.3g — %s\n", err,
                err < 1e-5 ? "OK" : "MISMATCH");
    if (err >= 1e-5) return 1;
  }
  std::printf("remote reads per PE: %llu (2 words per point per iteration, "
              "1 suspension per matched pair)\n",
              static_cast<unsigned long long>(report.procs[0].reads_issued));
  return 0;
}
