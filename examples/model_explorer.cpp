// Explores the Saavedra-Barrera multithreading model (paper ref. [16])
// the paper uses to frame its results: linear, transition and saturation
// regions of processor efficiency as threads are added.
//
//   $ ./model_explorer --run-length=12 --latency=30 --switch-cost=7
#include <cstdio>

#include "common/cli.hpp"
#include "model/saavedra.hpp"

using namespace emx;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("run-length", "12", "R: cycles between remote references")
      .define("latency", "30", "L: remote reference latency, cycles")
      .define("switch-cost", "7", "C: context switch cost, cycles")
      .define("max-threads", "16", "sweep 1..max threads");
  flags.parse(argc, argv);

  model::MultithreadingModel m{
      .run_length = flags.real("run-length"),
      .latency = flags.real("latency"),
      .switch_cost = flags.real("switch-cost")};

  std::printf("Saavedra-Barrera model: R=%.0f L=%.0f C=%.0f\n", m.run_length,
              m.latency, m.switch_cost);
  std::printf("saturation point: h = 1 + L/(R+C) = %.2f threads\n",
              m.saturation_threads());
  std::printf("saturated efficiency: R/(R+C) = %.3f\n\n",
              m.run_length / (m.run_length + m.switch_cost));

  std::printf("%7s  %10s  %14s  %-10s  %s\n", "threads", "efficiency",
              "exposed lat", "region", "bar");
  const auto max_h = static_cast<int>(flags.integer("max-threads"));
  for (int h = 1; h <= max_h; ++h) {
    const double e = m.efficiency(h);
    std::printf("%7d  %10.3f  %14.1f  %-10s  ", h, e, m.exposed_latency(h),
                model::MultithreadingModel::region_name(m.region(h)));
    const int bar = static_cast<int>(e * 50);
    for (int i = 0; i < bar; ++i) std::putchar('#');
    std::putchar('\n');
  }
  std::printf(
      "\nThe paper's sorting (R=12, L=20-40, C~7) saturates at 2-4 threads —\n"
      "exactly its observation that \"the best communication performance\n"
      "occurs when the number of threads is two to four\". FFT's R of\n"
      "hundreds of cycles saturates immediately at h=2.\n");
  return 0;
}
