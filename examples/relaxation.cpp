// Jacobi relaxation on the EM-X: the high computation-to-communication
// end of the paper's workload spectrum. Two halo words per processor per
// sweep — one split-phase suspension — against a whole block of cell
// updates: even a single thread overlaps essentially everything.
//
//   $ ./relaxation --procs=16 --cells-per-proc=2048 --iterations=8
#include <cstdio>

#include "apps/jacobi.hpp"
#include "common/cli.hpp"
#include "core/experiment.hpp"
#include "core/machine.hpp"

using namespace emx;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("procs", "16", "processor count")
      .define("cells-per-proc", "2048", "grid cells per processor")
      .define("iterations", "8", "Jacobi sweeps")
      .define("threads", "1", "fine-grain threads per processor");
  flags.parse(argc, argv);

  MachineConfig cfg;
  cfg.proc_count = static_cast<std::uint32_t>(flags.integer("procs"));
  const std::uint64_t n =
      cfg.proc_count * static_cast<std::uint64_t>(flags.integer("cells-per-proc"));
  const auto h = static_cast<std::uint32_t>(flags.integer("threads"));
  const auto iters = static_cast<std::uint32_t>(flags.integer("iterations"));

  Machine machine(cfg);
  apps::JacobiApp app(machine,
                      apps::JacobiParams{.n = n, .threads = h, .iterations = iters});
  app.setup();
  machine.run();

  const double err = app.verify_error();
  const MachineReport report = machine.report();
  const auto shares = report.shares();
  std::printf("Jacobi relaxation: %s cells on P=%u, h=%u, %u sweeps\n",
              size_label(n).c_str(), cfg.proc_count, h, iters);
  std::printf("%s\n", report.summary_text().c_str());
  std::printf("max error vs host sweeps: %.3g — %s\n", err,
              err < 1e-6 ? "OK" : "MISMATCH");
  std::printf(
      "computation-to-communication: %.1f%% compute vs %.1f%% comm — the\n"
      "opposite end of the spectrum from bitonic sorting (paper section 6:\n"
      "the ratio \"plays a critical role in tolerating latency\").\n",
      shares.compute, shares.comm);
  return err < 1e-6 ? 0 : 1;
}
