// Programs the EM-X at the instruction level: a distributed token-ring
// reduction written in EMC-Y assembly. Each PE owns one value; a token
// carrying a running sum is passed around the ring with remote reads,
// and the final total is broadcast with remote writes.
//
//   $ ./isa_demo --procs=8
#include <cstdio>

#include "common/cli.hpp"
#include "core/machine.hpp"
#include "isa/interpreter.hpp"
#include "runtime/barrier.hpp"

using namespace emx;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("procs", "8", "ring size (power of two for the network)");
  flags.parse(argc, argv);
  const auto procs = static_cast<std::uint32_t>(flags.integer("procs"));

  MachineConfig cfg;
  cfg.proc_count = procs;
  Machine m(cfg);

  // Memory map (word addresses): 16 = my value, 17 = token ready flag,
  // 18 = token value, 19 = final total.
  for (ProcId p = 0; p < procs; ++p) {
    m.memory(p).write(16, 10 * (p + 1));  // values 10, 20, 30, ...
  }
  m.memory(0).write(17, 1);  // PE 0 starts holding the token (sum = 0)

  // Every PE: spin until the token-ready flag is set locally, add own
  // value, pass the token (value then flag) to the next PE with remote
  // writes. PE 0 seeds the ring and, on the token's return, broadcasts
  // the total into word 19 of every PE.
  char src[2048];
  std::snprintf(src, sizeof src, R"(
      proc  r2              ; r2 = my pe
      li    r3, 17          ; flag addr
      li    r4, 18          ; token addr
      li    r5, 16          ; value addr
    wait:
      yield                 ; explicit switch: let queued packets dispatch
      load  r6, r3, 0       ; poll my token flag
      beq   r6, r0, wait
      load  r7, r4, 0       ; token value
      load  r8, r5, 0       ; my value
      add   r7, r7, r8      ; token += mine
      ; next = (pe + 1) mod P
      addi  r9, r2, 1
      li    r10, %u
      blt   r9, r10, nowrap
      li    r9, 0
    nowrap:
      beq   r9, r0, finish  ; token returning to PE 0: ring complete
      gaddr r11, r9, r4
      write r11, r7         ; token value to the next PE
      li    r12, 1
      gaddr r11, r9, r3
      write r11, r12        ; then its flag (non-overtaking keeps order)
      halt
    finish:
      ; I'm the last PE before PE 0: broadcast the total to everyone
      li    r13, 0
      li    r14, 19
    bcast:
      gaddr r11, r13, r14
      write r11, r7
      addi  r13, r13, 1
      blt   r13, r10, bcast
      halt
  )", procs);

  const auto entry = isa::register_source(m, src);
  for (ProcId p = 0; p < procs; ++p) m.spawn(p, entry, 0);
  m.run();

  const Word expect = 10 * procs * (procs + 1) / 2;
  std::printf("token-ring sum over %u PEs (EMC-Y assembly):\n", procs);
  bool ok = true;
  for (ProcId p = 0; p < procs; ++p) {
    const Word got = m.memory(p).read(19);
    ok = ok && got == expect;
    if (p < 8) std::printf("  PE %u sees total = %u\n", p, got);
  }
  std::printf("expected %u — %s\n", expect, ok ? "OK" : "WRONG");
  std::printf("%s\n", m.report().summary_text().c_str());
  return ok ? 0 : 1;
}
