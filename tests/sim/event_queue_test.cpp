#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace emx::sim {
namespace {

void record_handler(void* ctx, std::uint64_t a, std::uint64_t) {
  static_cast<std::vector<std::uint64_t>*>(ctx)->push_back(a);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<std::uint64_t> order;
  q.push(30, record_handler, &order, 3, 0);
  q.push(10, record_handler, &order, 1, 0);
  q.push(20, record_handler, &order, 2, 0);
  while (!q.empty()) {
    const Event e = q.pop();
    e.fn(e.ctx, e.a, e.b);
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<std::uint64_t> order;
  for (std::uint64_t i = 0; i < 50; ++i) q.push(7, record_handler, &order, i, 0);
  while (!q.empty()) {
    const Event e = q.pop();
    e.fn(e.ctx, e.a, e.b);
  }
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RandomizedHeapProperty) {
  EventQueue q;
  Rng rng(123);
  std::vector<std::uint64_t> dummy;
  for (int i = 0; i < 5000; ++i)
    q.push(rng.bounded(1000), record_handler, &dummy, 0, 0);
  Cycle last_time = 0;
  std::uint64_t last_seq = 0;
  bool first = true;
  while (!q.empty()) {
    const Event e = q.pop();
    if (!first) {
      ASSERT_TRUE(e.time > last_time ||
                  (e.time == last_time && e.seq > last_seq));
    }
    last_time = e.time;
    last_seq = e.seq;
    first = false;
  }
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  Rng rng(5);
  std::vector<std::uint64_t> dummy;
  Cycle watermark = 0;
  for (int round = 0; round < 1000; ++round) {
    q.push(watermark + rng.bounded(50), record_handler, &dummy, 0, 0);
    q.push(watermark + rng.bounded(50), record_handler, &dummy, 0, 0);
    const Event e = q.pop();
    ASSERT_GE(e.time, watermark);  // monotone despite interleaving
    watermark = e.time;
  }
}

TEST(EventQueue, ClearResets) {
  EventQueue q;
  std::vector<std::uint64_t> dummy;
  q.push(1, record_handler, &dummy, 0, 0);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.total_pushed(), 0u);
}

}  // namespace
}  // namespace emx::sim
