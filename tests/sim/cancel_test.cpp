// Event cancellation: the mechanism behind retransmit timers. A cancelled
// event must never run, never advance the clock, and never count as
// processed — otherwise every completed read would leave a ghost timer
// stretching the end-of-run time.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/sim_context.hpp"

namespace emx::sim {
namespace {

void record_handler(void* ctx, std::uint64_t a, std::uint64_t) {
  static_cast<std::vector<std::uint64_t>*>(ctx)->push_back(a);
}

TEST(EventCancel, CancelledEventNeverRuns) {
  EventQueue q;
  std::vector<std::uint64_t> ran;
  q.push(10, record_handler, &ran, 1, 0);
  const auto id = q.push(20, record_handler, &ran, 2, 0);
  q.push(30, record_handler, &ran, 3, 0);
  q.cancel(id);
  while (!q.empty()) {
    const Event e = q.pop();
    e.fn(e.ctx, e.a, e.b);
  }
  EXPECT_EQ(ran, (std::vector<std::uint64_t>{1, 3}));
}

TEST(EventCancel, EmptyAndSizeIgnoreCancelledRecords) {
  EventQueue q;
  std::vector<std::uint64_t> ran;
  const auto a = q.push(10, record_handler, &ran, 1, 0);
  const auto b = q.push(20, record_handler, &ran, 2, 0);
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
  q.cancel(b);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventCancel, CancellingTwiceIsANoOp) {
  EventQueue q;
  std::vector<std::uint64_t> ran;
  const auto id = q.push(10, record_handler, &ran, 1, 0);
  q.push(20, record_handler, &ran, 2, 0);
  q.cancel(id);
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop().a, 2u);
  EXPECT_TRUE(q.empty());
}

TEST(EventCancel, TopSkipsOverCancelledHead) {
  EventQueue q;
  std::vector<std::uint64_t> ran;
  const auto id = q.push(5, record_handler, &ran, 1, 0);
  q.push(10, record_handler, &ran, 2, 0);
  q.cancel(id);
  EXPECT_EQ(q.top().time, 10u);
  EXPECT_EQ(q.top().a, 2u);
}

TEST(EventCancel, ClockDoesNotAdvanceToCancelledEvents) {
  // The whole point: a pending-but-cancelled timer far in the future must
  // not stretch the run. The clock ends at the last *live* event.
  SimContext sim;
  std::vector<std::uint64_t> ran;
  sim.schedule(10, record_handler, &ran, 1, 0);
  const auto timer = sim.schedule(100000, record_handler, &ran, 2, 0);
  sim.cancel(timer);
  sim.run_until_idle();
  EXPECT_EQ(sim.now(), 10u);
  EXPECT_EQ(ran, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(EventCancel, CancelFromInsideAHandler) {
  // A reply arriving at cycle t cancels the timeout scheduled for t+k —
  // exactly how RetryAgent::on_reply uses the queue.
  SimContext sim;
  std::vector<std::uint64_t> ran;
  struct Rig {
    SimContext* sim;
    std::uint64_t timer_id;
    std::vector<std::uint64_t>* ran;
  } rig{&sim, 0, &ran};
  rig.timer_id = sim.schedule(50, record_handler, &ran, 99, 0);
  sim.schedule(10,
               [](void* ctx, std::uint64_t, std::uint64_t) {
                 auto* r = static_cast<Rig*>(ctx);
                 r->ran->push_back(1);
                 r->sim->cancel(r->timer_id);
               },
               &rig, 0, 0);
  sim.run_until_idle();
  EXPECT_EQ(ran, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(sim.now(), 10u);
}

TEST(EventCancel, TieOrderSurvivesInterleavedCancellation) {
  EventQueue q;
  std::vector<std::uint64_t> ran;
  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < 20; ++i)
    ids.push_back(q.push(7, record_handler, &ran, i, 0));
  for (std::size_t i = 0; i < 20; i += 2) q.cancel(ids[i]);  // evens die
  while (!q.empty()) {
    const Event e = q.pop();
    e.fn(e.ctx, e.a, e.b);
  }
  ASSERT_EQ(ran.size(), 10u);
  for (std::size_t i = 0; i + 1 < ran.size(); ++i)
    EXPECT_LT(ran[i], ran[i + 1]);  // insertion order among survivors
}

TEST(EventCancel, ClearForgetsCancellations) {
  EventQueue q;
  std::vector<std::uint64_t> ran;
  const auto id = q.push(10, record_handler, &ran, 1, 0);
  q.cancel(id);
  q.clear();
  EXPECT_TRUE(q.empty());
  q.push(5, record_handler, &ran, 7, 0);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop().a, 7u);
}

}  // namespace
}  // namespace emx::sim
