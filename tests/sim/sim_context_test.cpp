#include "sim/sim_context.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace emx::sim {
namespace {

struct Recorder {
  SimContext* sim = nullptr;
  std::vector<Cycle> times;
};

void note_time(void* ctx, std::uint64_t, std::uint64_t) {
  auto* r = static_cast<Recorder*>(ctx);
  r->times.push_back(r->sim->now());
}

void chain(void* ctx, std::uint64_t depth, std::uint64_t) {
  auto* r = static_cast<Recorder*>(ctx);
  r->times.push_back(r->sim->now());
  if (depth > 0) r->sim->schedule(5, chain, r, depth - 1, 0);
}

TEST(SimContext, ClockAdvancesToEventTimes) {
  SimContext sim;
  Recorder r{&sim, {}};
  sim.schedule(10, note_time, &r);
  sim.schedule(25, note_time, &r);
  sim.run_until_idle();
  EXPECT_EQ(r.times, (std::vector<Cycle>{10, 25}));
  EXPECT_EQ(sim.now(), 25u);
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(SimContext, EventsCanScheduleMoreEvents) {
  SimContext sim;
  Recorder r{&sim, {}};
  sim.schedule(0, chain, &r, 4, 0);
  sim.run_until_idle();
  EXPECT_EQ(r.times, (std::vector<Cycle>{0, 5, 10, 15, 20}));
}

TEST(SimContext, RunUntilStopsAtDeadline) {
  SimContext sim;
  Recorder r{&sim, {}};
  sim.schedule(10, note_time, &r);
  sim.schedule(100, note_time, &r);
  sim.run_until(50);
  EXPECT_EQ(r.times.size(), 1u);
  EXPECT_FALSE(sim.idle());
  sim.run_until_idle();
  EXPECT_EQ(r.times.size(), 2u);
}

TEST(SimContext, EventBudgetPanicsOnLivelock) {
  SimContext sim;
  Recorder r{&sim, {}};
  sim.schedule(0, chain, &r, 1000000, 0);
  EXPECT_DEATH(sim.run_until_idle(100), "event budget");
}

TEST(SimContext, ResetRestoresInitialState) {
  SimContext sim;
  Recorder r{&sim, {}};
  sim.schedule(10, note_time, &r);
  sim.run_until_idle();
  sim.reset();
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.events_processed(), 0u);
}

}  // namespace
}  // namespace emx::sim
