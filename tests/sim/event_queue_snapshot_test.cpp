// EventQueue save/load coverage: pending cancellable timers, same-cycle
// tie-break order, and a backoff-shaped timer pattern survive a snapshot
// round trip exactly.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "snapshot/serializer.hpp"

namespace emx::sim {
namespace {

struct Log {
  std::vector<std::uint64_t> entries;
};

void record(void* ctx, std::uint64_t a, std::uint64_t b) {
  static_cast<Log*>(ctx)->entries.push_back(a * 1000 + b);
}
void record_other(void* ctx, std::uint64_t a, std::uint64_t) {
  static_cast<Log*>(ctx)->entries.push_back(a);
}

/// Drains a queue, returning (time, payload) pairs in dispatch order.
std::vector<std::pair<Cycle, std::uint64_t>> drain(EventQueue& q, Log& log) {
  std::vector<std::pair<Cycle, std::uint64_t>> out;
  while (!q.empty()) {
    const Event e = q.pop();
    e.fn(e.ctx, e.a, e.b);
    out.emplace_back(e.time, log.entries.back());
  }
  return out;
}

TEST(EventQueueSnapshot, RoundTripsPendingEventsExactly) {
  EventFnTable table;
  Log log;
  table.register_fn(&record, &log);

  EventQueue q;
  q.push(30, &record, &log, 3, 0);
  q.push(10, &record, &log, 1, 0);
  q.push(20, &record, &log, 2, 0);

  snapshot::Serializer s;
  q.save(s, &table);

  EventQueue restored;
  snapshot::Deserializer d(s.data());
  ASSERT_TRUE(restored.load(d, table));
  EXPECT_TRUE(d.exhausted());
  EXPECT_EQ(restored.size(), q.size());
  EXPECT_EQ(restored.total_pushed(), q.total_pushed());

  Log log_a, log_b;
  // Both queues share handler+ctx identity via the table, so drain the
  // original first and compare payload orders.
  const auto a = drain(q, log);
  log.entries.clear();
  const auto b = drain(restored, log);
  EXPECT_EQ(a, b);
}

TEST(EventQueueSnapshot, SameCycleTieBreakOrderSurvives) {
  EventFnTable table;
  Log log;
  table.register_fn(&record, &log);

  EventQueue q;
  // Five same-cycle events: dispatch must follow insertion sequence,
  // before and after the round trip.
  for (std::uint64_t i = 0; i < 5; ++i) q.push(100, &record, &log, i, 7);

  snapshot::Serializer s;
  q.save(s, &table);
  EventQueue restored;
  snapshot::Deserializer d(s.data());
  ASSERT_TRUE(restored.load(d, table));

  const auto got = drain(restored, log);
  ASSERT_EQ(got.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(got[i].first, 100u);
    EXPECT_EQ(got[i].second, i * 1000 + 7);
  }
}

TEST(EventQueueSnapshot, CancelledTimersStayCancelled) {
  EventFnTable table;
  Log log;
  table.register_fn(&record, &log);

  // Backoff-shaped retransmit pattern: timers at t, 2t, 4t; the first
  // two were cancelled (replies arrived), the third is still pending.
  EventQueue q;
  const auto t1 = q.push(4096, &record, &log, 1, 0);
  const auto t2 = q.push(8192, &record, &log, 2, 0);
  q.push(16384, &record, &log, 3, 0);
  q.push(5000, &record, &log, 9, 0);
  q.cancel(t1);
  q.cancel(t2);
  ASSERT_EQ(q.size(), 2u);

  snapshot::Serializer s;
  q.save(s, &table);
  EventQueue restored;
  snapshot::Deserializer d(s.data());
  ASSERT_TRUE(restored.load(d, table));
  EXPECT_EQ(restored.size(), 2u);

  const auto got = drain(restored, log);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].second, 9000u);   // t=5000 dispatches first
  EXPECT_EQ(got[1].second, 3000u);   // live retransmit timer fires
}

TEST(EventQueueSnapshot, CancellingAfterRestoreWorks) {
  EventFnTable table;
  Log log;
  table.register_fn(&record, &log);

  EventQueue q;
  q.push(10, &record, &log, 1, 0);
  const auto pending = q.push(20, &record, &log, 2, 0);

  snapshot::Serializer s;
  q.save(s, &table);
  EventQueue restored;
  snapshot::Deserializer d(s.data());
  ASSERT_TRUE(restored.load(d, table));

  // Event ids (sequence numbers) are part of the snapshot, so a timer
  // handle taken before the save still cancels after the restore.
  restored.cancel(pending);
  const auto got = drain(restored, log);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].second, 1000u);
}

TEST(EventQueueSnapshot, LoadRejectsUnregisteredHandler) {
  EventFnTable table;
  Log log;
  table.register_fn(&record, &log);
  EventQueue q;
  q.push(1, &record, &log, 1, 1);
  snapshot::Serializer s;
  q.save(s, &table);

  EventFnTable other;  // lacks the handler registration
  EventQueue restored;
  snapshot::Deserializer d(s.data());
  EXPECT_FALSE(restored.load(d, other));
}

TEST(EventQueueSnapshot, SaveWithoutTableWritesZeroIds) {
  EventFnTable table;
  Log log;
  table.register_fn(&record, &log);
  table.register_fn(&record_other, &log);

  EventQueue q;
  q.push(5, &record, &log, 1, 2);
  snapshot::Serializer with_table, without;
  q.save(with_table, &table);
  q.save(without, nullptr);
  // Same length, different fn-id bytes: the no-table form still pins
  // times/seqs/payloads (the restore-verify path) but is not loadable.
  EXPECT_EQ(with_table.size(), without.size());
  EXPECT_NE(with_table.data(), without.data());

  EventQueue restored;
  snapshot::Deserializer d(without.data());
  EXPECT_FALSE(restored.load(d, table));
}

}  // namespace
}  // namespace emx::sim
