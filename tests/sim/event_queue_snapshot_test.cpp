// EventQueue save/load coverage: pending cancellable timers, same-cycle
// tie-break order, and a backoff-shaped timer pattern survive a snapshot
// round trip exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "sim/event_queue.hpp"
#include "common/serializer.hpp"

namespace emx::sim {
namespace {

struct Log {
  std::vector<std::uint64_t> entries;
};

void record(void* ctx, std::uint64_t a, std::uint64_t b) {
  static_cast<Log*>(ctx)->entries.push_back(a * 1000 + b);
}
void record_other(void* ctx, std::uint64_t a, std::uint64_t) {
  static_cast<Log*>(ctx)->entries.push_back(a);
}

/// Drains a queue, returning (time, payload) pairs in dispatch order.
std::vector<std::pair<Cycle, std::uint64_t>> drain(EventQueue& q, Log& log) {
  std::vector<std::pair<Cycle, std::uint64_t>> out;
  while (!q.empty()) {
    const Event e = q.pop();
    e.fn(e.ctx, e.a, e.b);
    out.emplace_back(e.time, log.entries.back());
  }
  return out;
}

TEST(EventQueueSnapshot, RoundTripsPendingEventsExactly) {
  EventFnTable table;
  Log log;
  table.register_fn(&record, &log);

  EventQueue q;
  q.push(30, &record, &log, 3, 0);
  q.push(10, &record, &log, 1, 0);
  q.push(20, &record, &log, 2, 0);

  snapshot::Serializer s;
  q.save(s, &table);

  EventQueue restored;
  snapshot::Deserializer d(s.data());
  ASSERT_TRUE(restored.load(d, table));
  EXPECT_TRUE(d.exhausted());
  EXPECT_EQ(restored.size(), q.size());
  EXPECT_EQ(restored.total_pushed(), q.total_pushed());

  Log log_a, log_b;
  // Both queues share handler+ctx identity via the table, so drain the
  // original first and compare payload orders.
  const auto a = drain(q, log);
  log.entries.clear();
  const auto b = drain(restored, log);
  EXPECT_EQ(a, b);
}

TEST(EventQueueSnapshot, SameCycleTieBreakOrderSurvives) {
  EventFnTable table;
  Log log;
  table.register_fn(&record, &log);

  EventQueue q;
  // Five same-cycle events: dispatch must follow insertion sequence,
  // before and after the round trip.
  for (std::uint64_t i = 0; i < 5; ++i) q.push(100, &record, &log, i, 7);

  snapshot::Serializer s;
  q.save(s, &table);
  EventQueue restored;
  snapshot::Deserializer d(s.data());
  ASSERT_TRUE(restored.load(d, table));

  const auto got = drain(restored, log);
  ASSERT_EQ(got.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(got[i].first, 100u);
    EXPECT_EQ(got[i].second, i * 1000 + 7);
  }
}

TEST(EventQueueSnapshot, CancelledTimersStayCancelled) {
  EventFnTable table;
  Log log;
  table.register_fn(&record, &log);

  // Backoff-shaped retransmit pattern: timers at t, 2t, 4t; the first
  // two were cancelled (replies arrived), the third is still pending.
  EventQueue q;
  const auto t1 = q.push(4096, &record, &log, 1, 0);
  const auto t2 = q.push(8192, &record, &log, 2, 0);
  q.push(16384, &record, &log, 3, 0);
  q.push(5000, &record, &log, 9, 0);
  q.cancel(t1);
  q.cancel(t2);
  ASSERT_EQ(q.size(), 2u);

  snapshot::Serializer s;
  q.save(s, &table);
  EventQueue restored;
  snapshot::Deserializer d(s.data());
  ASSERT_TRUE(restored.load(d, table));
  EXPECT_EQ(restored.size(), 2u);

  const auto got = drain(restored, log);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].second, 9000u);   // t=5000 dispatches first
  EXPECT_EQ(got[1].second, 3000u);   // live retransmit timer fires
}

TEST(EventQueueSnapshot, CancellingAfterRestoreWorks) {
  EventFnTable table;
  Log log;
  table.register_fn(&record, &log);

  EventQueue q;
  q.push(10, &record, &log, 1, 0);
  const auto pending = q.push(20, &record, &log, 2, 0);

  snapshot::Serializer s;
  q.save(s, &table);
  EventQueue restored;
  snapshot::Deserializer d(s.data());
  ASSERT_TRUE(restored.load(d, table));

  // Event ids (sequence numbers) are part of the snapshot, so a timer
  // handle taken before the save still cancels after the restore.
  restored.cancel(pending);
  const auto got = drain(restored, log);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].second, 1000u);
}

TEST(EventQueueSnapshot, LoadRejectsUnregisteredHandler) {
  EventFnTable table;
  Log log;
  table.register_fn(&record, &log);
  EventQueue q;
  q.push(1, &record, &log, 1, 1);
  snapshot::Serializer s;
  q.save(s, &table);

  EventFnTable other;  // lacks the handler registration
  EventQueue restored;
  snapshot::Deserializer d(s.data());
  EXPECT_FALSE(restored.load(d, other));
}

TEST(EventQueueSnapshot, SaveWithoutTableWritesZeroIds) {
  EventFnTable table;
  Log log;
  table.register_fn(&record, &log);
  table.register_fn(&record_other, &log);

  EventQueue q;
  q.push(5, &record, &log, 1, 2);
  snapshot::Serializer with_table, without;
  q.save(with_table, &table);
  q.save(without, nullptr);
  // Same length, different fn-id bytes: the no-table form still pins
  // times/seqs/payloads (the restore-verify path) but is not loadable.
  EXPECT_EQ(with_table.size(), without.size());
  EXPECT_NE(with_table.data(), without.data());

  EventQueue restored;
  snapshot::Deserializer d(without.data());
  EXPECT_FALSE(restored.load(d, table));
}

TEST(EventQueueSnapshot, RandomizedCancelPopSaveRoundTrip) {
  // Adversarial interleaving of push / cancel / pop, then a save/load
  // round trip. Two invariants under test: (1) tombstoned events are
  // never dispatched and never appear in the saved payload, and (2) the
  // canonical save is a pure function of logical state — a restored
  // queue drains in exactly the order the original does, whatever heap
  // layout the cancel/pop history left behind.
  std::mt19937 rng(20260805u);
  EventFnTable table;
  Log log;
  table.register_fn(&record, &log);

  for (int round = 0; round < 20; ++round) {
    EventQueue q;
    std::vector<std::uint64_t> live_ids;
    std::uint64_t payload = 0;
    const int ops = 200;
    for (int i = 0; i < ops; ++i) {
      const auto roll = rng() % 10;
      if (roll < 6 || live_ids.empty()) {
        const Cycle t = 1 + rng() % 50;  // dense times force seq tie-breaks
        live_ids.push_back(q.push(t, &record, &log, ++payload, 0));
      } else if (roll < 8) {
        const std::size_t at = rng() % live_ids.size();
        q.cancel(live_ids[at]);
        live_ids.erase(live_ids.begin() + static_cast<std::ptrdiff_t>(at));
      } else if (!q.empty()) {
        const Event e = q.pop();
        live_ids.erase(std::remove(live_ids.begin(), live_ids.end(), e.seq),
                       live_ids.end());
      }
    }
    ASSERT_EQ(q.size(), live_ids.size());

    snapshot::Serializer s;
    q.save(s, &table);
    EventQueue restored;
    snapshot::Deserializer d(s.data());
    ASSERT_TRUE(restored.load(d, table));
    EXPECT_TRUE(d.exhausted());
    ASSERT_EQ(restored.size(), q.size());
    EXPECT_EQ(restored.total_pushed(), q.total_pushed());

    // Canonical-form check: re-saving the restored queue reproduces the
    // original bytes even though its heap was built fresh by load().
    snapshot::Serializer s2;
    restored.save(s2, &table);
    EXPECT_EQ(s.data(), s2.data());

    // Identical drain order, and no cancelled payload ever surfaces.
    while (!q.empty()) {
      ASSERT_FALSE(restored.empty());
      const Event a = q.pop();
      const Event b = restored.pop();
      EXPECT_EQ(a.time, b.time);
      EXPECT_EQ(a.seq, b.seq);
      EXPECT_EQ(a.a, b.a);
    }
    EXPECT_TRUE(restored.empty());
  }
}

}  // namespace
}  // namespace emx::sim
