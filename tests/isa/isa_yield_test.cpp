// The yield opcode: explicit thread switching from assembly (§2.3).
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "isa/interpreter.hpp"
#include "runtime/barrier.hpp"

namespace emx::isa {
namespace {

TEST(IsaYield, AssemblesAndRoundRobinsTwoThreads) {
  // Two ISA threads alternate appending to a shared log via yield.
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  const auto entry = register_source(m, R"(
      li   r2, 0            ; round counter
      li   r3, 4            ; rounds
    loop:
      li   r4, 32           ; log count address
      load r5, r4, 0
      addi r6, r5, 1
      store r4, r6, 0       ; ++count
      li   r7, 33
      add  r7, r7, r5       ; slot = 33 + old count
      store r7, r1, 0       ; log my id (arg)
      yield
      addi r2, r2, 1
      blt  r2, r3, loop
      halt
  )");
  m.spawn(0, entry, 100);
  m.spawn(0, entry, 200);
  m.run();
  ASSERT_EQ(m.memory(0).read(32), 8u);
  // Strict alternation: 100, 200, 100, 200, ...
  for (Word i = 0; i < 8; ++i) {
    EXPECT_EQ(m.memory(0).read(33 + i), i % 2 == 0 ? 100u : 200u) << i;
  }
  EXPECT_EQ(m.engine(0).explicit_yields(), 8u);
}

TEST(IsaYield, PollingLoopObservesRemoteWrites) {
  // Producer on PE 1 writes a flag; an ISA consumer on PE 0 spins with
  // yield until the flag lands (the token-ring pattern from isa_demo).
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine m(cfg);
  const auto consumer = register_source(m, R"(
      li   r3, 40
    wait:
      yield
      load r4, r3, 0
      beq  r4, r0, wait
      li   r5, 41
      store r5, r4, 0
      halt
  )");
  const auto producer = m.register_entry([](rt::ThreadApi api, Word) -> rt::ThreadBody {
    co_await api.compute(500);  // make the consumer actually wait
    co_await api.remote_write(rt::GlobalAddr{0, 40}, 1234);
  });
  m.spawn(0, consumer, 0);
  m.spawn(1, producer, 0);
  m.run();
  EXPECT_EQ(m.memory(0).read(41), 1234u);
  EXPECT_GT(m.engine(0).explicit_yields(), 5u);  // it really spun
}

}  // namespace
}  // namespace emx::isa
