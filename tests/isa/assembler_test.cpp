#include "isa/assembler.hpp"

#include <gtest/gtest.h>

namespace emx::isa {
namespace {

TEST(Assembler, ParsesEveryShape) {
  const Program p = assemble(R"(
    start:
      li    r1, 42
      addi  r2, r1, -1
      add   r3, r1, r2
      load  r4, r3, 16
      store r3, r4, 8
      gaddr r5, r1, r2
      read  r6, r5
      readb r5, r4, 32
      write r5, r6
      spawn r1, r6, 7
      beq   r1, r2, done
      jmp   start
    done:
      proc  r9
      barrier
      halt
  )");
  ASSERT_EQ(p.code.size(), 15u);
  EXPECT_EQ(p.code[0].op, Opcode::kLi);
  EXPECT_EQ(p.code[0].rd, 1);
  EXPECT_EQ(p.code[0].imm, 42);
  EXPECT_EQ(p.code[1].imm, -1);
  EXPECT_EQ(p.code[7].op, Opcode::kReadB);
  EXPECT_EQ(p.code[7].imm, 32);
  EXPECT_EQ(p.code[9].op, Opcode::kSpawn);
  EXPECT_EQ(p.code[9].imm, 7);
  // Branch targets resolved: beq -> 12 (done), jmp -> 0 (start).
  EXPECT_EQ(p.code[10].imm, 12);
  EXPECT_EQ(p.code[11].imm, 0);
  EXPECT_EQ(p.code[14].op, Opcode::kHalt);
}

TEST(Assembler, CommentsAndBlankLines) {
  const Program p = assemble(R"(
    ; full-line comment
    li r1, 1   # trailing comment

    halt
  )");
  EXPECT_EQ(p.code.size(), 2u);
}

TEST(Assembler, ForwardAndBackwardLabels) {
  const Program p = assemble(R"(
      jmp fwd
    back:
      halt
    fwd:
      jmp back
  )");
  EXPECT_EQ(p.code[0].imm, 2);
  EXPECT_EQ(p.code[2].imm, 1);
}

TEST(Assembler, ListingRoundTrips) {
  const Program p = assemble("li r1, 5\nhalt\n");
  const std::string listing = p.listing();
  EXPECT_NE(listing.find("li"), std::string::npos);
  EXPECT_NE(listing.find("halt"), std::string::npos);
}

TEST(Assembler, Diagnostics) {
  EXPECT_DEATH(assemble("bogus r1, r2\nhalt"), "unknown opcode");
  EXPECT_DEATH(assemble("li r99, 1\nhalt"), "bad register");
  EXPECT_DEATH(assemble("li r1\nhalt"), "expects 2 operands");
  EXPECT_DEATH(assemble("jmp nowhere\nhalt"), "undefined label");
  EXPECT_DEATH(assemble("a:\na:\nhalt"), "duplicate label");
  EXPECT_DEATH(assemble("li r1, xyz\nhalt"), "bad immediate");
  EXPECT_DEATH(assemble("; nothing"), "empty program");
}

TEST(Instruction, SendClassification) {
  EXPECT_TRUE(is_send(Opcode::kRead));
  EXPECT_TRUE(is_send(Opcode::kReadB));
  EXPECT_TRUE(is_send(Opcode::kWrite));
  EXPECT_TRUE(is_send(Opcode::kSpawn));
  EXPECT_FALSE(is_send(Opcode::kAdd));
  EXPECT_FALSE(is_send(Opcode::kBarrier));
}

TEST(Instruction, CycleCosts) {
  Instruction add{.op = Opcode::kAdd};
  Instruction fdiv{.op = Opcode::kFdiv};
  EXPECT_EQ(instruction_cycles(add, 9), 1u);
  EXPECT_EQ(instruction_cycles(fdiv, 9), 9u);
}

}  // namespace
}  // namespace emx::isa
