// ISA programs are first-class EM-X threads: correct semantics, correct
// cycle charging, and full access to the split-phase machinery.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "isa/interpreter.hpp"
#include "runtime/barrier.hpp"

namespace emx::isa {
namespace {

Machine make_machine(std::uint32_t procs = 2) {
  MachineConfig cfg;
  cfg.proc_count = procs;
  return Machine(cfg);
}

TEST(Interpreter, ArithmeticAndMemory) {
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  const auto entry = register_source(m, R"(
    li    r1, 6
    li    r2, 7
    mul   r3, r1, r2      ; 42
    addi  r4, r3, 100     ; 142
    sub   r5, r4, r1      ; 136
    li    r6, 16
    store r6, r5, 0       ; mem[16] = 136
    load  r7, r6, 0
    addi  r7, r7, 1
    store r6, r7, 1       ; mem[17] = 137
    halt
  )");
  m.spawn(0, entry, 0);
  m.run();
  EXPECT_EQ(m.memory(0).read(16), 136u);
  EXPECT_EQ(m.memory(0).read(17), 137u);
}

TEST(Interpreter, LoopComputesTriangularNumber) {
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  const auto entry = register_source(m, R"(
      li   r2, 0         ; sum
      li   r3, 1         ; i
      li   r4, 101       ; bound
    loop:
      add  r2, r2, r3
      addi r3, r3, 1
      blt  r3, r4, loop
      li   r5, 20
      store r5, r2, 0
      halt
  )");
  m.spawn(0, entry, 0);
  m.run();
  EXPECT_EQ(m.memory(0).read(20), 5050u);
}

TEST(Interpreter, ArgumentArrivesInR1) {
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  const auto entry = register_source(m, R"(
    li    r2, 30
    store r2, r1, 0
    halt
  )");
  m.spawn(0, entry, 1234);
  m.run();
  EXPECT_EQ(m.memory(0).read(30), 1234u);
}

TEST(Interpreter, RemoteReadAndWriteAcrossProcessors) {
  Machine m = make_machine(2);
  m.memory(1).write(rt::kReservedWords, 777);
  const auto entry = register_source(m, R"(
    li    r2, 1           ; PE 1
    li    r3, 16          ; kReservedWords
    gaddr r4, r2, r3
    read  r5, r4          ; split-phase read from PE 1
    addi  r5, r5, 1
    li    r6, 17
    gaddr r7, r2, r6
    write r7, r5          ; remote write back to PE 1
    halt
  )");
  m.spawn(0, entry, 0);
  m.run();
  EXPECT_EQ(m.memory(1).read(17), 778u);
  EXPECT_EQ(m.report().procs[0].switches.remote_read, 1u);
}

TEST(Interpreter, BlockReadTransfersWords) {
  Machine m = make_machine(2);
  for (Word i = 0; i < 16; ++i) m.memory(1).write(rt::kReservedWords + i, 100 + i);
  const auto entry = register_source(m, R"(
    li    r2, 1
    li    r3, 16
    gaddr r4, r2, r3
    li    r5, 64          ; local destination
    readb r4, r5, 16
    halt
  )");
  m.spawn(0, entry, 0);
  m.run();
  for (Word i = 0; i < 16; ++i) EXPECT_EQ(m.memory(0).read(64 + i), 100 + i);
}

TEST(Interpreter, SpawnFansOutAcrossMachine) {
  Machine m = make_machine(4);
  // Child: store arg at mem[40] on its own PE.
  const auto child = register_source(m, R"(
    li    r2, 40
    store r2, r1, 0
    halt
  )");
  // Parent: spawn the child on PEs 1..3 with arg = 500 + pe.
  char src[256];
  std::snprintf(src, sizeof src, R"(
      li   r2, 1
      li   r3, 4
    loop:
      addi r4, r2, 500
      spawn r2, r4, %u
      addi r2, r2, 1
      blt  r2, r3, loop
      halt
  )", child);
  const auto parent = register_source(m, src);
  m.spawn(0, parent, 0);
  m.run();
  for (ProcId p = 1; p < 4; ++p) {
    EXPECT_EQ(m.memory(p).read(40), 500 + p);
  }
}

TEST(Interpreter, BarrierSynchronisesIsaThreads) {
  Machine m = make_machine(4);
  const auto entry = register_source(m, R"(
      proc  r2
      li    r3, 50
      store r3, r2, 0       ; mem[50] = my pe
      barrier
      li    r4, 51
      li    r5, 1
      store r4, r5, 0       ; mem[51] = 1 after the barrier
      halt
  )");
  m.configure_barrier(1);
  for (ProcId p = 0; p < 4; ++p) m.spawn(p, entry, 0);
  m.run();
  for (ProcId p = 0; p < 4; ++p) {
    EXPECT_EQ(m.memory(p).read(50), p);
    EXPECT_EQ(m.memory(p).read(51), 1u);
  }
}

TEST(Interpreter, FloatOpsUseBitPatterns) {
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  m.memory(0).write_f32(16, 6.0f);
  m.memory(0).write_f32(17, 1.5f);
  const auto entry = register_source(m, R"(
    li    r2, 16
    load  r3, r2, 0
    load  r4, r2, 1
    fadd  r5, r3, r4
    fmul  r6, r3, r4
    fdiv  r7, r3, r4
    fsub  r8, r3, r4
    store r2, r5, 2
    store r2, r6, 3
    store r2, r7, 4
    store r2, r8, 5
    halt
  )");
  m.spawn(0, entry, 0);
  m.run();
  EXPECT_EQ(m.memory(0).read_f32(18), 7.5f);
  EXPECT_EQ(m.memory(0).read_f32(19), 9.0f);
  EXPECT_EQ(m.memory(0).read_f32(20), 4.0f);
  EXPECT_EQ(m.memory(0).read_f32(21), 4.5f);
}

TEST(Interpreter, CycleChargingMatchesInstructionCount) {
  // 1 + 100 x 3 loop instructions + 2 tail + ... all one clock; the EXU
  // compute bucket must equal the executed instruction count.
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  const auto entry = register_source(m, R"(
      li   r2, 0
      li   r3, 10
    loop:
      addi r2, r2, 1
      bne  r2, r3, loop
      halt
  )");
  m.spawn(0, entry, 0);
  m.run();
  // li, li, then 10 iterations x (addi, bne) = 22 one-clock instructions.
  EXPECT_EQ(m.report().procs[0].compute, 22u);
}

TEST(Interpreter, FdivChargesMultipleClocks) {
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  const auto entry = register_program(m, assemble("fdiv r2, r3, r4\nhalt"),
                                      InterpreterOptions{.fdiv_cycles = 9});
  m.spawn(0, entry, 0);
  m.run();
  EXPECT_EQ(m.report().procs[0].compute, 9u);
}

TEST(Interpreter, RunawayProgramPanics) {
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  const auto entry = register_program(
      m, assemble("loop: jmp loop\nhalt"),
      InterpreterOptions{.max_instructions = 1000});
  m.spawn(0, entry, 0);
  EXPECT_DEATH(m.run(), "instruction budget");
}

TEST(Interpreter, R0IsHardwiredZero) {
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  const auto entry = register_source(m, R"(
    li    r0, 99          ; write to r0 is dropped
    li    r2, 60
    store r2, r0, 0       ; mem[60] = r0 = 0
    halt
  )");
  m.spawn(0, entry, 0);
  m.run();
  EXPECT_EQ(m.memory(0).read(60), 0u);
}

}  // namespace
}  // namespace emx::isa
