#include "isa/builder.hpp"

#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "isa/interpreter.hpp"

namespace emx::isa {
namespace {

TEST(CodeBuilder, FluentLoopMatchesAssembler) {
  CodeBuilder b;
  const auto loop = b.label();
  b.li(2, 0).li(3, 100);
  b.bind(loop).addi(2, 2, 1).blt(2, 3, loop).halt();
  const Program built = b.build();

  const Program assembled = assemble(R"(
      li   r2, 0
      li   r3, 100
    loop:
      addi r2, r2, 1
      blt  r2, r3, loop
      halt
  )");
  ASSERT_EQ(built.code.size(), assembled.code.size());
  for (std::size_t i = 0; i < built.code.size(); ++i) {
    EXPECT_EQ(built.code[i].op, assembled.code[i].op) << i;
    EXPECT_EQ(built.code[i].rd, assembled.code[i].rd) << i;
    EXPECT_EQ(built.code[i].ra, assembled.code[i].ra) << i;
    EXPECT_EQ(built.code[i].rb, assembled.code[i].rb) << i;
    EXPECT_EQ(built.code[i].imm, assembled.code[i].imm) << i;
  }
}

TEST(CodeBuilder, ForwardLabelsResolve) {
  CodeBuilder b;
  const auto done = b.label();
  b.li(2, 1).jmp(done).li(2, 99);  // skipped
  b.bind(done).li(3, 30).store(3, 2, 0).halt();
  Program p = b.build();
  EXPECT_EQ(p.code[1].imm, 3);  // jump over the dead li

  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  const auto entry = register_program(m, std::move(p));
  m.spawn(0, entry, 0);
  m.run();
  EXPECT_EQ(m.memory(0).read(30), 1u);
}

TEST(CodeBuilder, BuiltProgramRunsEndToEnd) {
  // GCD of (252, 105) by repeated subtraction, built fluently.
  CodeBuilder b;
  const auto loop = b.label();
  const auto a_bigger = b.label();
  const auto done = b.label();
  b.li(2, 252).li(3, 105);
  b.bind(loop).beq(2, 3, done);
  b.bge(2, 3, a_bigger);
  b.sub(3, 3, 2).jmp(loop);
  b.bind(a_bigger).sub(2, 2, 3).jmp(loop);
  b.bind(done).li(4, 40).store(4, 2, 0).halt();

  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  const auto entry = register_program(m, b.build());
  m.spawn(0, entry, 0);
  m.run();
  EXPECT_EQ(m.memory(0).read(40), 21u);  // gcd(252, 105)
}

TEST(CodeBuilder, RemoteOpsAndBarrier) {
  // Every PE writes its id+1 to its right neighbour, then barriers, then
  // reads it back from its own memory.
  constexpr std::uint32_t P = 4;
  MachineConfig cfg;
  cfg.proc_count = P;
  Machine m(cfg);

  CodeBuilder b;
  b.proc(2);               // r2 = me
  b.addi(3, 2, 1);         // r3 = me+1
  b.li(4, static_cast<std::int32_t>(P));
  const auto nowrap = b.label();
  b.blt(3, 4, nowrap).li(3, 0).bind(nowrap);
  b.li(5, 32);
  b.gaddr(6, 3, 5);        // neighbour's word 32
  b.write(6, 3);           // store neighbour id there
  b.barrier();
  b.load(7, 5, 0);         // my own word 32, written by my left neighbour
  b.li(8, 33);
  b.store(8, 7, 0);        // publish at word 33
  b.halt();

  const auto entry = register_program(m, b.build());
  m.configure_barrier(1);
  for (ProcId p = 0; p < P; ++p) m.spawn(p, entry, 0);
  m.run();
  for (ProcId p = 0; p < P; ++p) {
    EXPECT_EQ(m.memory(p).read(33), p) << "PE " << p;
  }
}

TEST(CodeBuilder, Diagnostics) {
  {
    CodeBuilder b;
    b.li(2, 1);
    EXPECT_DEATH(b.build(), "must end in halt");
  }
  {
    CodeBuilder b;
    const auto l = b.label();
    b.jmp(l);
    EXPECT_DEATH(b.build(), "never bound");
  }
  {
    CodeBuilder b;
    const auto l = b.label();
    b.bind(l);
    EXPECT_DEATH(b.bind(l), "bound twice");
  }
  {
    CodeBuilder b;
    EXPECT_DEATH(b.li(99, 1), "register out of range");
  }
}

// Every builder diagnostic must say *where*: the emitting instruction
// index (and for labels, the bind positions), so a compiler backend can
// map the panic straight back to its emission site.
TEST(CodeBuilder, DiagnosticsCarryInstructionIndices) {
  {
    CodeBuilder b;
    b.li(2, 1).li(3, 2);
    // Third instruction (#2) names an out-of-range register.
    EXPECT_DEATH(b.add(40, 2, 3),
                 "register out of range: r40 \\(emitting instruction #2\\)");
  }
  {
    CodeBuilder b;
    const auto l = b.label();
    b.li(2, 1).bind(l).halt();
    EXPECT_DEATH(b.bind(l),
                 "label #0 bound twice: first at instruction #1");
  }
  {
    CodeBuilder b;
    const auto l = b.label();
    b.li(2, 1).li(3, 2).jmp(l).halt();
    EXPECT_DEATH(b.build(),
                 "label #0 referenced at instruction #2 but never bound");
  }
  {
    CodeBuilder b;
    b.li(2, 1);
    EXPECT_DEATH(b.readb(2, 3, 0),
                 "block read needs at least one word \\(got 0 at instruction #1\\)");
  }
}

}  // namespace
}  // namespace emx::isa
