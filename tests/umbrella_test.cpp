// The umbrella header alone must be enough to use the whole public API —
// machine, apps, model, ISA toolchain, fault injection and the analysis
// (--check) layer.
#include "emx.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EndToEndThroughThePublicHeader) {
  emx::MachineConfig cfg = emx::MachineConfig::paper_machine(4);
  emx::Machine machine(cfg);
  emx::apps::BitonicSortApp app(
      machine, emx::apps::BitonicParams{.n = 4 * 32, .threads = 2});
  app.setup();
  machine.run();
  EXPECT_TRUE(app.verify());

  const emx::MachineReport report = machine.report();
  EXPECT_GT(report.total_cycles, 0u);

  emx::model::MultithreadingModel model{};
  EXPECT_GT(model.saturation_threads(), 1.0);

  const emx::isa::Program prog = emx::isa::assemble("li r1, 1\nhalt");
  EXPECT_EQ(prog.code.size(), 2u);
}

TEST(Umbrella, FaultInjectionThroughThePublicHeader) {
  emx::MachineConfig cfg = emx::MachineConfig::paper_machine(4);
  cfg.fault.drop_rate = 0.05;
  emx::Machine machine(cfg);
  emx::apps::BitonicSortApp app(
      machine, emx::apps::BitonicParams{.n = 4 * 32, .threads = 2});
  app.setup();
  machine.run();
  EXPECT_TRUE(app.verify());

  const emx::MachineReport report = machine.report();
  ASSERT_TRUE(report.fault_enabled);
  EXPECT_EQ(report.fault.recovered, report.fault.injected_recoverable);
}

TEST(Umbrella, CheckersThroughThePublicHeader) {
  emx::MachineConfig cfg = emx::MachineConfig::paper_machine(4);
  cfg.check = emx::analysis::CheckConfig::parse("all");
  emx::Machine machine(cfg);
  emx::apps::BitonicSortApp app(
      machine, emx::apps::BitonicParams{.n = 4 * 32, .threads = 2});
  app.setup();
  machine.run();
  EXPECT_TRUE(app.verify());

  const emx::MachineReport report = machine.report();
  ASSERT_TRUE(report.check_enabled);
  EXPECT_TRUE(report.check.clean()) << report.check.summary_text();
  EXPECT_GT(report.check.reads_checked, 0u);
  EXPECT_FALSE(report.check.summary_text().empty());
}

}  // namespace
