// Format-stability contract: a v1 snapshot written once must load in
// every future build. The golden file under tests/snapshot/golden/ is
// checked in and never regenerated; if it stops loading, the format
// changed without a loader shim.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "snapshot/format.hpp"
#include "snapshot/runner.hpp"

#ifndef EMX_TEST_DATA_DIR
#error "EMX_TEST_DATA_DIR must point at the tests/ source directory"
#endif

namespace emx::snapshot {
namespace {

const char* golden_path() {
  return EMX_TEST_DATA_DIR "/snapshot/golden/tiny_v1.emxsnap";
}

TEST(GoldenFormat, EveryHistoricalVersionHasALoader) {
  // Bumping kFormatVersion obliges a loader shim for the old layout and
  // an entry here; this is the tripwire that enforces it.
  const auto versions = SnapshotFile::supported_versions();
  for (std::uint32_t v = 1; v <= kFormatVersion; ++v) {
    EXPECT_TRUE(std::find(versions.begin(), versions.end(), v) !=
                versions.end())
        << "format version " << v << " has no loader — add a decode shim "
        << "and list it in supported_versions()";
  }
}

TEST(GoldenFormat, CheckedInV1SnapshotStillLoads) {
  SnapshotFile file;
  ASSERT_EQ(file.read_file(golden_path()), "")
      << "the checked-in v1 golden snapshot no longer decodes — the "
      << "container format changed incompatibly";
  EXPECT_EQ(file.version, 1u);
  EXPECT_EQ(file.kind, FileKind::kCheckpoint);
  ASSERT_NE(file.find("manifest"), nullptr);
  EXPECT_NE(file.find("sim"), nullptr);
  EXPECT_NE(file.find("streams"), nullptr);
  EXPECT_NE(file.find("network"), nullptr);
  EXPECT_NE(file.find("pe0"), nullptr);
}

TEST(GoldenFormat, GoldenManifestFieldsSurvive) {
  RunManifest m;
  Cycle cycle = 0;
  ASSERT_EQ(load_manifest(golden_path(), FileKind::kCheckpoint, m, cycle), "")
      << "the golden snapshot's manifest no longer parses";
  // The recipe the golden file was generated with (see docs/CHECKPOINT.md).
  EXPECT_EQ(m.app, "sort");
  EXPECT_EQ(m.size_per_proc, 16u);
  EXPECT_EQ(m.threads, 2u);
  EXPECT_EQ(m.config.proc_count, 4u);
  EXPECT_GT(cycle, 0u);
}

TEST(GoldenFormat, GoldenSnapshotResumesAndVerifies) {
  // The strongest compatibility statement: the old bytes still drive a
  // full resume, and the byte-verification at the checkpoint cycle still
  // passes against today's component encodings.
  RunManifest m;
  Cycle cycle = 0;
  ASSERT_EQ(load_manifest(golden_path(), FileKind::kCheckpoint, m, cycle), "");

  RunOptions opts;
  opts.manifest = m;
  opts.resume_path = golden_path();
  const RunResult r = run(opts);
  EXPECT_EQ(r.exit_code, 0) << r.error;
  EXPECT_TRUE(r.result_checked);
  EXPECT_TRUE(r.result_ok);
}

}  // namespace
}  // namespace emx::snapshot
