// Format-stability contract: snapshots written by past builds must keep
// *decoding* in every future build, and the current version's golden must
// keep resuming. The golden files under tests/snapshot/golden/ are
// checked in and never regenerated for their own version; a new one is
// added at each format bump (docs/CHECKPOINT.md records the recipe).
//
// v1 -> v2 (component registry refactor): the container layout is
// unchanged, but the "sim" section's event-queue payload moved to the
// canonical (seq-sorted, tombstone-free) encoding. A v1 file therefore
// still decodes — manifest extraction and section listing work — but it
// can no longer be byte-verified against a rebuilt machine, so resume
// and replay refuse it up front with a readable error instead of dying
// with a late verification failure.
//
// v2 -> v3 (parallel engine): the fast network's "network" section moved
// to the canonical per-source/per-destination queue encoding so that
// sequential and parallel runs serialize identically. Same policy: v2
// containers decode, v2 resume/replay are refused up front.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "snapshot/format.hpp"
#include "snapshot/runner.hpp"

#ifndef EMX_TEST_DATA_DIR
#error "EMX_TEST_DATA_DIR must point at the tests/ source directory"
#endif

namespace emx::snapshot {
namespace {

const char* golden_v1_path() {
  return EMX_TEST_DATA_DIR "/snapshot/golden/tiny_v1.emxsnap";
}

const char* golden_v2_path() {
  return EMX_TEST_DATA_DIR "/snapshot/golden/tiny_v2.emxsnap";
}

const char* golden_v3_path() {
  return EMX_TEST_DATA_DIR "/snapshot/golden/tiny_v3.emxsnap";
}

TEST(GoldenFormat, EveryHistoricalVersionHasALoader) {
  // Bumping kFormatVersion obliges a loader shim for the old layout and
  // an entry here; this is the tripwire that enforces it.
  const auto versions = SnapshotFile::supported_versions();
  for (std::uint32_t v = 1; v <= kFormatVersion; ++v) {
    EXPECT_TRUE(std::find(versions.begin(), versions.end(), v) !=
                versions.end())
        << "format version " << v << " has no loader — add a decode shim "
        << "and list it in supported_versions()";
  }
}

TEST(GoldenFormat, CheckedInV1SnapshotStillDecodes) {
  SnapshotFile file;
  ASSERT_EQ(file.read_file(golden_v1_path()), "")
      << "the checked-in v1 golden snapshot no longer decodes — the "
      << "container format changed incompatibly";
  EXPECT_EQ(file.version, 1u);
  EXPECT_EQ(file.kind, FileKind::kCheckpoint);
  ASSERT_NE(file.find("manifest"), nullptr);
  EXPECT_NE(file.find("sim"), nullptr);
  EXPECT_NE(file.find("streams"), nullptr);
  EXPECT_NE(file.find("network"), nullptr);
  EXPECT_NE(file.find("pe0"), nullptr);
}

TEST(GoldenFormat, GoldenV1ManifestFieldsSurvive) {
  RunManifest m;
  Cycle cycle = 0;
  ASSERT_EQ(load_manifest(golden_v1_path(), FileKind::kCheckpoint, m, cycle),
            "")
      << "the v1 golden snapshot's manifest no longer parses";
  // The recipe the golden file was generated with (see docs/CHECKPOINT.md).
  EXPECT_EQ(m.app, "sort");
  EXPECT_EQ(m.size_per_proc, 16u);
  EXPECT_EQ(m.threads, 2u);
  EXPECT_EQ(m.config.proc_count, 4u);
  EXPECT_GT(cycle, 0u);
}

TEST(GoldenFormat, V1ResumeRefusedWithReadableError) {
  RunManifest m;
  Cycle cycle = 0;
  ASSERT_EQ(load_manifest(golden_v1_path(), FileKind::kCheckpoint, m, cycle),
            "");

  RunOptions opts;
  opts.manifest = m;
  opts.resume_path = golden_v1_path();
  const RunResult r = run(opts);
  // Usage-level refusal (exit 2), not a late verification failure (5):
  // the error must name the version and say what to do about it.
  EXPECT_EQ(r.exit_code, 2) << r.error;
  EXPECT_NE(r.error.find("format v1"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("Re-capture"), std::string::npos) << r.error;
}

TEST(GoldenFormat, CheckedInV2SnapshotDecodes) {
  SnapshotFile file;
  ASSERT_EQ(file.read_file(golden_v2_path()), "")
      << "the checked-in v2 golden snapshot no longer decodes";
  EXPECT_EQ(file.version, 2u);
  EXPECT_EQ(file.kind, FileKind::kCheckpoint);
  ASSERT_NE(file.find("manifest"), nullptr);
  EXPECT_NE(file.find("sim"), nullptr);
  EXPECT_NE(file.find("streams"), nullptr);
  EXPECT_NE(file.find("network"), nullptr);
  EXPECT_NE(file.find("pe0"), nullptr);
}

TEST(GoldenFormat, V2ResumeRefusedWithReadableError) {
  // v3 re-encoded the fast network's in-flight packets; a v2 state
  // section no longer matches a live machine, so resume must refuse it
  // up front exactly as it refuses v1.
  RunManifest m;
  Cycle cycle = 0;
  ASSERT_EQ(load_manifest(golden_v2_path(), FileKind::kCheckpoint, m, cycle),
            "");

  RunOptions opts;
  opts.manifest = m;
  opts.resume_path = golden_v2_path();
  const RunResult r = run(opts);
  EXPECT_EQ(r.exit_code, 2) << r.error;
  EXPECT_NE(r.error.find("format v2"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("Re-capture"), std::string::npos) << r.error;
}

TEST(GoldenFormat, CheckedInV3SnapshotDecodes) {
  SnapshotFile file;
  ASSERT_EQ(file.read_file(golden_v3_path()), "")
      << "the checked-in v3 golden snapshot no longer decodes";
  EXPECT_EQ(file.version, 3u);
  EXPECT_EQ(file.kind, FileKind::kCheckpoint);
  ASSERT_NE(file.find("manifest"), nullptr);
  EXPECT_NE(file.find("sim"), nullptr);
  EXPECT_NE(file.find("streams"), nullptr);
  EXPECT_NE(file.find("network"), nullptr);
  EXPECT_NE(file.find("pe0"), nullptr);
}

TEST(GoldenFormat, GoldenV3SnapshotResumesAndVerifies) {
  // The strongest compatibility statement for the current version: the
  // checked-in bytes still drive a full resume, and the byte-verification
  // at the checkpoint cycle still passes against today's encodings.
  RunManifest m;
  Cycle cycle = 0;
  ASSERT_EQ(load_manifest(golden_v3_path(), FileKind::kCheckpoint, m, cycle),
            "");
  EXPECT_EQ(m.app, "sort");
  EXPECT_EQ(m.size_per_proc, 16u);
  EXPECT_EQ(m.threads, 2u);
  EXPECT_EQ(m.config.proc_count, 4u);
  EXPECT_GT(cycle, 0u);

  RunOptions opts;
  opts.manifest = m;
  opts.resume_path = golden_v3_path();
  const RunResult r = run(opts);
  EXPECT_EQ(r.exit_code, 0) << r.error;
  EXPECT_TRUE(r.result_checked);
  EXPECT_TRUE(r.result_ok);
}

TEST(GoldenFormat, GoldenV3ResumesUnderTheParallelEngine) {
  // Engine independence of the format: a checkpoint captured under one
  // engine byte-verifies and resumes under the other. The v3 golden was
  // captured sequentially; resume it sharded.
  RunManifest m;
  Cycle cycle = 0;
  ASSERT_EQ(load_manifest(golden_v3_path(), FileKind::kCheckpoint, m, cycle),
            "");

  RunOptions opts;
  opts.manifest = m;
  opts.resume_path = golden_v3_path();
  opts.engine.kind = sim::EngineSpec::Kind::kParallel;
  opts.engine.shards = 2;
  const RunResult r = run(opts);
  EXPECT_EQ(r.exit_code, 0) << r.error;
  EXPECT_TRUE(r.result_checked);
  EXPECT_TRUE(r.result_ok);
}

}  // namespace
}  // namespace emx::snapshot
