#include "common/serializer.hpp"

#include <gtest/gtest.h>

#include "snapshot/format.hpp"

namespace emx::snapshot {
namespace {

TEST(Serializer, RoundTripsEveryPrimitive) {
  Serializer s;
  s.u8(0xAB);
  s.u16(0xBEEF);
  s.u32(0xDEADBEEFu);
  s.u64(0x0123456789ABCDEFull);
  s.boolean(true);
  s.boolean(false);
  s.f64(-1234.5678e-12);
  s.str("fine-grain");
  s.str("");

  Deserializer d(s.data());
  EXPECT_EQ(d.u8(), 0xAB);
  EXPECT_EQ(d.u16(), 0xBEEF);
  EXPECT_EQ(d.u32(), 0xDEADBEEFu);
  EXPECT_EQ(d.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(d.boolean());
  EXPECT_FALSE(d.boolean());
  EXPECT_EQ(d.f64(), -1234.5678e-12);
  EXPECT_EQ(d.str(), "fine-grain");
  EXPECT_EQ(d.str(), "");
  EXPECT_TRUE(d.exhausted());
}

TEST(Serializer, LittleEndianLayout) {
  Serializer s;
  s.u32(0x04030201u);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.data()[0], 0x01);
  EXPECT_EQ(s.data()[1], 0x02);
  EXPECT_EQ(s.data()[2], 0x03);
  EXPECT_EQ(s.data()[3], 0x04);
}

TEST(Serializer, DoubleTravelsAsExactBits) {
  Serializer s;
  s.f64(0.1);  // not exactly representable; bits must survive untouched
  Deserializer d(s.data());
  EXPECT_EQ(d.f64(), 0.1);
}

TEST(Deserializer, StickyErrorOnUnderrun) {
  Serializer s;
  s.u16(7);
  Deserializer d(s.data());
  EXPECT_EQ(d.u16(), 7);
  EXPECT_TRUE(d.ok());
  EXPECT_EQ(d.u32(), 0u);  // overruns: zero + sticky error
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.u8(), 0u);  // still erroring
  EXPECT_FALSE(d.exhausted());
}

TEST(Deserializer, StringLengthIsBoundsChecked) {
  Serializer s;
  s.u32(1000);  // claims 1000 bytes, provides none
  Deserializer d(s.data());
  EXPECT_EQ(d.str(), "");
  EXPECT_FALSE(d.ok());
}

TEST(Crc32, KnownVectorAndChaining) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  // Incremental CRC over a split buffer equals the one-shot CRC.
  const std::uint32_t head = crc32("12345", 5);
  EXPECT_EQ(crc32("6789", 4, head), 0xCBF43926u);
}

TEST(SnapshotFormat, EncodeDecodeRoundTrip) {
  SnapshotFile file;
  file.kind = FileKind::kCheckpoint;
  Serializer a, b;
  a.u64(42);
  b.str("hello");
  file.add("alpha", a);
  file.add("beta", b);

  const auto bytes = file.encode();
  SnapshotFile decoded;
  ASSERT_EQ(decoded.decode(bytes.data(), bytes.size()), "");
  EXPECT_EQ(decoded.kind, FileKind::kCheckpoint);
  EXPECT_EQ(decoded.version, kFormatVersion);
  ASSERT_EQ(decoded.sections.size(), 2u);
  ASSERT_NE(decoded.find("alpha"), nullptr);
  EXPECT_EQ(decoded.find("alpha")->payload, a.data());
  ASSERT_NE(decoded.find("beta"), nullptr);
  EXPECT_EQ(decoded.find("beta")->payload, b.data());
  EXPECT_EQ(decoded.find("gamma"), nullptr);
}

TEST(SnapshotFormat, DetectsCorruption) {
  SnapshotFile file;
  Serializer a;
  a.u64(0x1122334455667788ull);
  file.add("alpha", a);
  auto bytes = file.encode();

  // Flip one payload byte: the whole-file CRC catches it first.
  auto corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= 0x40;
  SnapshotFile decoded;
  EXPECT_NE(decoded.decode(corrupt.data(), corrupt.size()), "");

  // Truncation is also an error, not a crash.
  SnapshotFile truncated;
  EXPECT_NE(truncated.decode(bytes.data(), bytes.size() - 3), "");

  // Bad magic is reported as such.
  auto bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  SnapshotFile wrong;
  const std::string err = wrong.decode(bad_magic.data(), bad_magic.size());
  EXPECT_NE(err, "");
}

TEST(SnapshotFormat, WriteReadFile) {
  const std::string path = ::testing::TempDir() + "emx_format_test.emxsnap";
  SnapshotFile file;
  file.kind = FileKind::kRecording;
  Serializer a;
  a.str("payload");
  file.add("only", a);
  ASSERT_EQ(file.write_file(path), "");

  SnapshotFile back;
  ASSERT_EQ(back.read_file(path), "");
  EXPECT_EQ(back.kind, FileKind::kRecording);
  ASSERT_NE(back.find("only"), nullptr);
  EXPECT_EQ(back.find("only")->payload, a.data());
  std::remove(path.c_str());
}

TEST(SnapshotFormat, MissingFileIsAnError) {
  SnapshotFile file;
  EXPECT_NE(file.read_file("/nonexistent/emx/snapshot.emxsnap"), "");
}

}  // namespace
}  // namespace emx::snapshot
