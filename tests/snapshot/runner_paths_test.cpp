// Up-front path validation in snapshot::run(): a typo'd --checkpoint-dir,
// --record or --result-json must be exit 2 with a readable message
// *before* any cycles run — not a crash (or lost output) at the first
// checkpoint boundary half a night later.
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/fsio.hpp"
#include "snapshot/runner.hpp"

namespace emx::snapshot {
namespace {

namespace fs = std::filesystem;

class RunnerPathsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "runner_paths_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    // A regular file: any path *under* it fails with ENOTDIR, which
    // holds even when the test runs as root (permission bits do not).
    blocker_ = (dir_ / "blocker").string();
    ASSERT_EQ(fsio::atomic_write_file(blocker_, "x"), "");

    opts_.manifest.app = "sort";
    opts_.manifest.config.proc_count = 4;
    opts_.manifest.size_per_proc = 64;
    opts_.manifest.threads = 2;
    opts_.manifest.iterations = 2;
    opts_.manifest.seed = 1;
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::string blocker_;
  RunOptions opts_;
};

TEST_F(RunnerPathsTest, BadCheckpointDirIsExitTwoBeforeAnyCycles) {
  opts_.checkpoint_every = 100;
  opts_.checkpoint_dir = blocker_ + "/ck";
  const RunResult r = run(opts_);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.error.find("--checkpoint-dir"), std::string::npos) << r.error;
  EXPECT_FALSE(r.report_valid) << "must refuse before running";
  EXPECT_EQ(r.end_cycle, 0u);
}

TEST_F(RunnerPathsTest, BadRecordPathIsExitTwo) {
  opts_.record_path = blocker_ + "/rec/out.emxrec";
  const RunResult r = run(opts_);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.error.find("--record"), std::string::npos) << r.error;
  EXPECT_EQ(r.end_cycle, 0u);
}

TEST_F(RunnerPathsTest, BadResultJsonPathIsExitTwo) {
  opts_.result_json_path = blocker_ + "/results/r.json";
  const RunResult r = run(opts_);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.error.find("--result-json"), std::string::npos) << r.error;
  EXPECT_EQ(r.end_cycle, 0u);
}

TEST_F(RunnerPathsTest, GoodPathsRunAndPublishResultJson) {
  opts_.checkpoint_every = 2000;
  opts_.checkpoint_dir = (dir_ / "ck").string();
  opts_.result_json_path = (dir_ / "result.json").string();
  const RunResult r = run(opts_);
  EXPECT_EQ(r.exit_code, 0) << r.error;
  EXPECT_TRUE(fs::exists(opts_.result_json_path));
}

TEST_F(RunnerPathsTest, ResultJsonIsDeterministicAcrossResume) {
  // Fresh run with checkpoints + result JSON.
  opts_.checkpoint_every = 2000;
  opts_.checkpoint_dir = (dir_ / "ck").string();
  opts_.result_json_path = (dir_ / "fresh.json").string();
  const RunResult fresh = run(opts_);
  ASSERT_EQ(fresh.exit_code, 0) << fresh.error;
  ASSERT_FALSE(fresh.checkpoints_written.empty());

  // Resume from the first checkpoint; the result summary must come out
  // byte-identical — the supervisor's aggregate convergence rests on it.
  RunOptions resume = opts_;
  resume.resume_path = fresh.checkpoints_written.front();
  resume.result_json_path = (dir_ / "resumed.json").string();
  RunManifest file_manifest;
  Cycle cycle = 0;
  ASSERT_EQ(load_manifest(resume.resume_path, FileKind::kCheckpoint,
                          file_manifest, cycle),
            "");
  resume.manifest = file_manifest;
  const RunResult resumed = run(resume);
  ASSERT_EQ(resumed.exit_code, 0) << resumed.error;

  std::ifstream a(opts_.result_json_path), b(resume.result_json_path);
  const std::string fresh_json((std::istreambuf_iterator<char>(a)),
                               std::istreambuf_iterator<char>());
  const std::string resumed_json((std::istreambuf_iterator<char>(b)),
                                 std::istreambuf_iterator<char>());
  EXPECT_EQ(fresh_json, resumed_json);
  EXPECT_FALSE(fresh_json.empty());
}

}  // namespace
}  // namespace emx::snapshot
