// Record-replay: a recording pins the run's *evolution* (periodic
// per-component digests), and replay pinpoints the first divergent
// component and cycle window when anything disagrees.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "snapshot/record_replay.hpp"
#include "snapshot/runner.hpp"

namespace emx::snapshot {
namespace {

RunManifest tiny_sort() {
  RunManifest m;
  m.app = "sort";
  m.size_per_proc = 64;
  m.threads = 2;
  m.seed = 7;
  m.config.proc_count = 4;
  return m;
}

std::string record_run(const RunManifest& m, const char* tag,
                       Cycle digest_every) {
  const std::string path =
      ::testing::TempDir() + "emx_rec_" + tag + ".emxsnap";
  RunOptions rec;
  rec.manifest = m;
  rec.record_path = path;
  rec.digest_every = digest_every;
  const RunResult r = run(rec);
  EXPECT_EQ(r.exit_code, 0) << r.error;
  return path;
}

TEST(RecordReplay, CleanReplayMatchesEveryFrame) {
  const RunManifest m = tiny_sort();
  const std::string path = record_run(m, "clean", 20000);

  RunOptions rep;
  rep.manifest = m;
  rep.replay_path = path;
  const RunResult r = run(rep);
  EXPECT_EQ(r.exit_code, 0) << r.error;
  std::remove(path.c_str());
}

TEST(RecordReplay, ReplayFollowsRecordedInterval) {
  // The replayer must pause on the *recording's* schedule even when the
  // caller passes a different --digest-every.
  const RunManifest m = tiny_sort();
  const std::string path = record_run(m, "interval", 15000);

  RunOptions rep;
  rep.manifest = m;
  rep.replay_path = path;
  rep.digest_every = 999;  // ignored for replay
  const RunResult r = run(rep);
  EXPECT_EQ(r.exit_code, 0) << r.error;
  std::remove(path.c_str());
}

TEST(RecordReplay, TamperedFrameNamesComponentAndWindow) {
  const RunManifest m = tiny_sort();
  const std::string path = record_run(m, "tamper", 20000);

  // Corrupt the first crc of the first frame (payload layout: u32 frame
  // count, then per frame u64 cycle + one u32 crc per component — so the
  // first crc lives at bytes 12..15). Component 0 is "sim".
  SnapshotFile file;
  ASSERT_EQ(file.read_file(path), "");
  Section* frames = nullptr;
  for (auto& sec : file.sections)
    if (sec.name == "frames") frames = &sec;
  ASSERT_NE(frames, nullptr);
  ASSERT_GT(frames->payload.size(), 15u);
  frames->payload[12] ^= 0x01;
  ASSERT_EQ(file.write_file(path), "");

  RunOptions rep;
  rep.manifest = m;
  rep.replay_path = path;
  const RunResult r = run(rep);
  EXPECT_EQ(r.exit_code, 5);
  EXPECT_NE(r.error.find("sim"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("between cycles"), std::string::npos) << r.error;
  std::remove(path.c_str());
}

TEST(RecordReplay, ReplayRejectsManifestMismatch) {
  const RunManifest m = tiny_sort();
  const std::string path = record_run(m, "mismatch", 20000);

  RunOptions rep;
  rep.manifest = m;
  rep.manifest.threads = 3;  // a different run than the one recorded
  rep.replay_path = path;
  const RunResult r = run(rep);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.error.find("threads"), std::string::npos) << r.error;
  std::remove(path.c_str());
}

TEST(RecordReplay, FaultPlanRunsReplayCleanly) {
  RunManifest m = tiny_sort();
  m.config.fault.drop_rate = 0.05;
  m.config.fault.timeout_cycles = 2048;
  const std::string path = record_run(m, "fault", 20000);

  RunOptions rep;
  rep.manifest = m;
  rep.replay_path = path;
  const RunResult r = run(rep);
  EXPECT_EQ(r.exit_code, 0) << r.error;
  std::remove(path.c_str());
}

TEST(ReplayVerifier, RejectsWrongKindAndMalformedSections) {
  ReplayVerifier v;

  // A checkpoint is not a recording.
  SnapshotFile ckpt;
  ckpt.kind = FileKind::kCheckpoint;
  EXPECT_NE(v.open(ckpt), "");

  // A recording without its sections is malformed.
  SnapshotFile empty;
  empty.kind = FileKind::kRecording;
  EXPECT_NE(v.open(empty), "");

  // A frame table whose length disagrees with its count is malformed.
  SnapshotFile bad;
  bad.kind = FileKind::kRecording;
  Serializer man;
  RunManifest m = tiny_sort();
  m.save(man);
  man.u64(1000);  // interval
  bad.add("manifest", man);
  Serializer comps;
  comps.u32(1);
  comps.str("sim");
  bad.add("components", comps);
  Serializer frames;
  frames.u32(5);  // claims 5 frames, provides zero bytes of them
  bad.add("frames", frames);
  EXPECT_NE(v.open(bad), "");
}

TEST(ReplayVerifier, FinishReportsUnconsumedFrames) {
  // Build a valid 2-frame recording by hand, consume none, finish().
  SnapshotFile rec;
  rec.kind = FileKind::kRecording;
  Serializer man;
  RunManifest m = tiny_sort();
  m.save(man);
  man.u64(500);
  rec.add("manifest", man);
  Serializer comps;
  comps.u32(1);
  comps.str("sim");
  rec.add("components", comps);
  Serializer frames;
  frames.u32(2);
  frames.u64(500);
  frames.u32(0xAAAAAAAAu);
  frames.u64(1000);
  frames.u32(0xBBBBBBBBu);
  rec.add("frames", frames);

  ReplayVerifier v;
  ASSERT_EQ(v.open(rec), "");
  EXPECT_EQ(v.frame_count(), 2u);
  EXPECT_EQ(v.frames_checked(), 0u);
  EXPECT_NE(v.finish(1000), "");
}

}  // namespace
}  // namespace emx::snapshot
