// Progress heartbeat records (--progress-every): CRC framing survives
// torn tails, the reader never consumes half a line, and arming the
// observer changes nothing about the simulation it observes.
#include "snapshot/progress.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/serializer.hpp"
#include "snapshot/runner.hpp"

namespace emx::snapshot {
namespace {

namespace fs = std::filesystem;

TEST(ProgressFormatTest, RoundTripsThroughParse) {
  std::string buf;
  buf += format_progress_line({1000, 64, 0, false});
  buf += format_progress_line({2000, 31, 1, false});
  buf += format_progress_line({2345, 0, 2, true});

  std::vector<ProgressRecord> recs;
  std::string err;
  EXPECT_EQ(parse_progress(buf, recs, err), buf.size());
  EXPECT_TRUE(err.empty()) << err;
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].cycle, 1000u);
  EXPECT_EQ(recs[0].live_threads, 64u);
  EXPECT_EQ(recs[1].checkpoints, 1u);
  EXPECT_FALSE(recs[1].done);
  EXPECT_EQ(recs[2].cycle, 2345u);
  EXPECT_TRUE(recs[2].done);
}

TEST(ProgressFormatTest, TornTailIsLeftForTheNextPoll) {
  const std::string whole = format_progress_line({1000, 8, 0, false});
  const std::string torn = format_progress_line({2000, 4, 1, false});
  // Every strict prefix of the torn line must be ignored, not consumed:
  // the writer may be mid-append (or SIGKILLed) at any byte.
  for (std::size_t cut = 0; cut < torn.size(); ++cut) {
    const std::string buf = whole + torn.substr(0, cut);
    std::vector<ProgressRecord> recs;
    std::string err;
    EXPECT_EQ(parse_progress(buf, recs, err), whole.size()) << "cut=" << cut;
    EXPECT_TRUE(err.empty()) << err;
    ASSERT_EQ(recs.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(recs[0].cycle, 1000u);
  }
}

TEST(ProgressFormatTest, DamagedLineIsNeverConsumed) {
  std::string line = format_progress_line({1000, 8, 0, false});
  // Flip a digit inside the body: the CRC no longer vouches for the
  // bytes, so the line is indistinguishable from a torn append and
  // must be left unconsumed — never parsed, never skipped over.
  line[line.find("1000")] = '9';
  std::vector<ProgressRecord> recs;
  std::string err;
  EXPECT_EQ(parse_progress(line, recs, err), 0u);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_TRUE(recs.empty());
}

TEST(ProgressFormatTest, ValidCrcWithMalformedBodyIsAWriterError) {
  // A body the CRC *does* vouch for but that parses as nonsense means
  // a broken writer, not a torn write — surfaced, not spun on.
  const std::string body = "{\"bogus\":1";
  char crc[16];
  std::snprintf(crc, sizeof crc, "%08x",
                emx::ser::crc32(body.data(), body.size()));
  const std::string line = body + ",\"crc\":\"" + crc + "\"}\n";
  std::vector<ProgressRecord> recs;
  std::string err;
  EXPECT_EQ(parse_progress(line, recs, err), 0u);
  EXPECT_FALSE(err.empty());
  EXPECT_TRUE(recs.empty());
}

TEST(ProgressObserverTest, ArmingProgressChangesNoCycles) {
  const fs::path dir = fs::path(::testing::TempDir()) / "progress_observer";
  fs::remove_all(dir);
  fs::create_directories(dir);

  RunOptions base;
  base.manifest.app = "sort";
  base.manifest.config.proc_count = 4;
  base.manifest.size_per_proc = 64;
  base.manifest.threads = 2;
  base.manifest.iterations = 4;
  base.manifest.seed = 1;

  const RunResult plain = run(base);
  ASSERT_EQ(plain.exit_code, 0) << plain.error;

  RunOptions armed = base;
  armed.progress_every = 500;
  armed.progress_path = (dir / "progress.jsonl").string();
  const RunResult observed = run(armed);
  ASSERT_EQ(observed.exit_code, 0) << observed.error;

  // Pure observer: identical cycles and an identical trace stream.
  EXPECT_EQ(observed.end_cycle, plain.end_cycle);
  EXPECT_EQ(observed.trace_events, plain.trace_events);
  EXPECT_EQ(observed.trace_crc, plain.trace_crc);

  // And the file it left behind is a well-formed record stream ending
  // in a done-record at the end cycle.
  std::ifstream in(armed.progress_path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  std::vector<ProgressRecord> recs;
  std::string err;
  const std::string buf = ss.str();
  EXPECT_EQ(parse_progress(buf, recs, err), buf.size());
  EXPECT_TRUE(err.empty()) << err;
  ASSERT_FALSE(recs.empty());
  EXPECT_TRUE(recs.back().done);
  EXPECT_EQ(recs.back().cycle, plain.end_cycle);
  for (std::size_t i = 1; i < recs.size(); ++i)
    EXPECT_LT(recs[i - 1].cycle, recs[i].cycle);

  fs::remove_all(dir);
}

}  // namespace
}  // namespace emx::snapshot
