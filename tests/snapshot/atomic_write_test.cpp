// Crash-safety of SnapshotFile::write_file — the property the sweep
// supervisor's whole recovery story stands on: a checkpoint published
// under its final name is always complete, no matter when its writer
// was SIGKILLed and how many writers raced on the target.
//
// Both tests drive real child processes. Before write_file moved to
// fsio::atomic_write_file, a fixed ".tmp" suffix let two writers open
// the same temp file: writer B truncated writer A's bytes, A's live
// descriptor kept writing into the file B renamed into place, and the
// published snapshot failed CRC. The concurrent-writer test reproduces
// exactly that schedule and fails against the old code.
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/serializer.hpp"
#include "snapshot/format.hpp"

namespace emx::snapshot {
namespace {

namespace fs = std::filesystem;

/// A checkpoint-sized snapshot whose every payload byte encodes `tag`,
/// so a decoded file proves which writer's version was published.
SnapshotFile make_snapshot(std::uint8_t tag) {
  SnapshotFile file;
  file.kind = FileKind::kCheckpoint;
  Serializer s;
  // Large enough (~1 MiB) that a SIGKILL lands mid-write with high
  // probability across the kill-loop iterations.
  for (int i = 0; i < 256 * 1024; ++i) s.u32(0x01010101u * tag);
  file.add("payload", s);
  return file;
}

/// Which writer's snapshot is at `path`? Fails the test on a torn file.
std::uint8_t decode_tag(const std::string& path) {
  SnapshotFile file;
  const std::string err = file.read_file(path);
  EXPECT_EQ(err, "") << "published snapshot is torn";
  if (!err.empty()) return 0xFF;
  EXPECT_EQ(file.sections.size(), 1u);
  if (file.sections.empty() || file.sections[0].payload.empty()) return 0xFF;
  return file.sections[0].payload[0];
}

class AtomicWriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "atomic_write_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    target_ = (dir_ / "snap.emxsnap").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::string target_;
};

TEST_F(AtomicWriteTest, KillMidWriteLeavesADecodableSnapshot) {
  // Seed a known-good version so the target always exists.
  ASSERT_EQ(make_snapshot(1).write_file(target_), "");

  for (int round = 0; round < 12; ++round) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: overwrite the target as fast as possible, forever.
      const SnapshotFile snap = make_snapshot(2);
      for (;;) (void)snap.write_file(target_);
    }
    // Let the child get into (usually the middle of) a write, then kill.
    ::usleep(static_cast<useconds_t>(1000 + 997 * round));
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);

    // Whatever instant the kill landed, the published name must hold a
    // complete snapshot — the seed or the child's version, never a mix.
    const std::uint8_t tag = decode_tag(target_);
    EXPECT_TRUE(tag == 1 || tag == 2) << "tag " << int(tag);
  }
}

TEST_F(AtomicWriteTest, ConcurrentWritersNeverInterleave) {
  // Three writers — the orphaned-worker-beside-its-replacement schedule
  // the supervisor can produce after it is SIGKILLed and re-invoked.
  constexpr int kWriters = 3;
  constexpr int kWritesEach = 30;
  std::vector<pid_t> pids;
  for (int w = 0; w < kWriters; ++w) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      const SnapshotFile snap =
          make_snapshot(static_cast<std::uint8_t>(10 + w));
      for (int i = 0; i < kWritesEach; ++i) {
        if (!snap.write_file(target_).empty()) ::_exit(1);
      }
      ::_exit(0);
    }
    pids.push_back(pid);
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
  const std::uint8_t tag = decode_tag(target_);
  EXPECT_TRUE(tag >= 10 && tag < 10 + kWriters) << "tag " << int(tag);
}

}  // namespace
}  // namespace emx::snapshot
