// Component registry contracts: the Machine's registration order IS the
// snapshot section order (pinned by the checked-in v2 golden), the
// registry refuses the mistakes that would silently corrupt that
// contract (duplicates, post-seal additions), and assert_covers() is a
// loud tripwire for a stateful unit that was built but never registered.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/component.hpp"
#include "core/machine.hpp"
#include "snapshot/format.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/trace.hpp"

#ifndef EMX_TEST_DATA_DIR
#error "EMX_TEST_DATA_DIR must point at the tests/ source directory"
#endif

namespace emx {
namespace {

/// A minimal stateful unit for registry-level tests.
class Probe final : public Component {
 public:
  explicit Probe(const char* name) : name_(name) {}
  const char* component_name() const override { return name_; }
  void save_state(ser::Serializer& s) const override { s.u64(7); }

 private:
  const char* name_;
};

TEST(ComponentRegistry, MachineCaptureOrderMatchesGoldenSections) {
  // Rebuild the golden recipe's machine shape (docs/CHECKPOINT.md: sort,
  // 4 PEs, DigestSink attached) and require the registry to enumerate in
  // exactly the golden file's section order. A reordering here would make
  // every existing checkpoint fail verification by "divergence" that is
  // really misalignment.
  snapshot::SnapshotFile golden;
  ASSERT_EQ(golden.read_file(EMX_TEST_DATA_DIR
                             "/snapshot/golden/tiny_v2.emxsnap"),
            "");

  MachineConfig cfg;
  cfg.proc_count = 4;
  trace::DigestSink digest;
  Machine m(cfg, &digest);

  std::vector<std::string> live;
  for (const Component* c : m.components().items())
    live.push_back(c->component_name());

  std::vector<std::string> saved;
  for (const auto& sec : golden.sections)
    if (sec.name != "manifest") saved.push_back(sec.name);

  EXPECT_EQ(live, saved);
}

TEST(ComponentRegistry, SectionsComeFromRegistryInOrder) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine m(cfg);
  const auto sections = snapshot::component_sections(m);
  ASSERT_EQ(sections.size(), m.components().items().size());
  for (std::size_t i = 0; i < sections.size(); ++i) {
    EXPECT_EQ(sections[i].first,
              m.components().items()[i]->component_name());
    EXPECT_FALSE(sections[i].second.data().empty())
        << sections[i].first << " serialized to zero bytes";
  }
}

TEST(ComponentRegistryDeathTest, UnregisteredUnitTripsCoverageCheck) {
  Probe a("a"), b("b"), forgotten("forgotten");
  ComponentRegistry reg;
  reg.add(&a);
  reg.add(&b);
  reg.seal();
  // Registered units (and nulls, the "feature not armed" spelling) pass.
  reg.assert_covers({&a, &b, nullptr});
  EXPECT_DEATH(reg.assert_covers({&a, &forgotten}), "never registered");
}

TEST(ComponentRegistryDeathTest, RejectsDuplicateNamesAndPostSealAdds) {
  Probe a("dup"), b("dup"), late("late");
  ComponentRegistry reg;
  reg.add(&a);
  EXPECT_DEATH(reg.add(&b), "duplicate");
  reg.seal();
  EXPECT_DEATH(reg.add(&late), "sealed");
}

TEST(ComponentRegistry, FindLocatesByName) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine m(cfg);
  ASSERT_NE(m.components().find("sim"), nullptr);
  ASSERT_NE(m.components().find("pe1"), nullptr);
  EXPECT_EQ(m.components().find("pe2"), nullptr);
  EXPECT_EQ(m.components().find("no-such-unit"), nullptr);
}

}  // namespace
}  // namespace emx
