#include "snapshot/manifest.hpp"

#include <gtest/gtest.h>

namespace emx::snapshot {
namespace {

RunManifest sample() {
  RunManifest m;
  m.app = "fft";
  m.size_per_proc = 2048;
  m.threads = 4;
  m.iterations = 3;
  m.seed = 77;
  m.block_reads = true;
  m.local_phase = false;
  m.config.proc_count = 64;
  m.config.network = NetworkModel::kDetailed;
  m.config.read_service = ReadServiceMode::kExuThread;
  m.config.barrier = BarrierTopology::kTree;
  m.config.priority_replies = true;
  m.config.switch_save_cycles = 7;
  m.config.fault.seed = 123456;
  m.config.fault.drop_rate = 0.01;
  m.config.fault.duplicate_rate = 0.02;
  m.config.fault.corrupt_rate = 0.005;
  m.config.fault.jitter_max_cycles = 9;
  m.config.fault.stalls.push_back(fault::StallWindow{1, 2, 100, 200});
  m.config.fault.scheduled.push_back(
      fault::ScheduledFault{5, fault::FaultKind::kDuplicate, true,
                            net::PacketKind::kInvoke});
  m.config.fault.outages.push_back(fault::OutageWindow{3, 1000, 2000});
  m.config.fault.timeout_cycles = 512;
  m.config.fault.max_retries = 4;
  m.config.check.memcheck = true;
  m.config.check.race = true;
  m.config.watchdog_cycles = 50000;
  return m;
}

TEST(RunManifest, SaveLoadRoundTrip) {
  const RunManifest m = sample();
  Serializer s;
  m.save(s);

  RunManifest back;
  Deserializer d(s.data());
  ASSERT_TRUE(back.load(d));
  EXPECT_TRUE(d.exhausted());
  // diff() compares every field, so an empty diff is the equality proof.
  EXPECT_EQ(m.diff(back), "");
  EXPECT_EQ(back.app, "fft");
  EXPECT_EQ(back.config.proc_count, 64u);
  ASSERT_EQ(back.config.fault.scheduled.size(), 1u);
  EXPECT_EQ(back.config.fault.scheduled[0].kind, fault::FaultKind::kDuplicate);
  EXPECT_TRUE(back.config.check.race);
}

TEST(RunManifest, DiffNamesEveryDivergentField) {
  RunManifest a = sample();
  RunManifest b = sample();
  b.app = "sort";
  b.seed = 78;
  b.config.proc_count = 16;
  b.config.fault.drop_rate = 0.5;

  const std::string diff = a.diff(b);
  EXPECT_NE(diff.find("app: fft vs sort"), std::string::npos);
  EXPECT_NE(diff.find("seed: 77 vs 78"), std::string::npos);
  EXPECT_NE(diff.find("procs: 64 vs 16"), std::string::npos);
  EXPECT_NE(diff.find("fault-drop-rate"), std::string::npos);
  // Fields that agree are not mentioned.
  EXPECT_EQ(diff.find("threads"), std::string::npos);
}

TEST(RunManifest, DiffSeesFaultWindowContents) {
  RunManifest a = sample();
  RunManifest b = sample();
  b.config.fault.outages[0].end = 2001;
  EXPECT_NE(a.diff(b).find("fault-outage[0]"), std::string::npos);

  RunManifest c = sample();
  c.config.fault.scheduled[0].nth = 6;
  EXPECT_NE(a.diff(c).find("fault-scheduled[0]"), std::string::npos);
}

TEST(RunManifest, IdenticalManifestsDiffEmpty) {
  EXPECT_EQ(sample().diff(sample()), "");
}

TEST(RunManifest, LoadRejectsTruncation) {
  const RunManifest m = sample();
  Serializer s;
  m.save(s);
  // Every truncation point must fail cleanly, never crash or accept.
  for (std::size_t cut : {std::size_t{0}, std::size_t{5}, s.size() / 2,
                          s.size() - 1}) {
    RunManifest back;
    Deserializer d(s.data().data(), cut);
    EXPECT_FALSE(back.load(d) && d.exhausted()) << "cut at " << cut;
  }
}

TEST(RunManifest, LoadRejectsBallooningVectorCount) {
  const RunManifest m = sample();
  Serializer s;
  m.save(s);
  // The stall-count field claims 2^31 windows; the payload cannot hold
  // them, so load() must bail before allocating.
  auto bytes = s.data();
  // Locate the stall count: it follows app/params + fixed config fields.
  // Rather than hand-computing the offset, corrupt every u32-aligned
  // position and require that no mutation produces a crash (some will
  // still load fine; none may hang or throw).
  for (std::size_t at = 0; at + 4 <= bytes.size(); at += 16) {
    auto mutated = bytes;
    mutated[at] = 0xFF;
    mutated[at + 1] = 0xFF;
    mutated[at + 2] = 0xFF;
    mutated[at + 3] = 0x7F;
    RunManifest back;
    Deserializer d(mutated);
    (void)back.load(d);  // must return, not crash/OOM
  }
  SUCCEED();
}

}  // namespace
}  // namespace emx::snapshot
