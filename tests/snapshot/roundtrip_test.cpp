// The tentpole contract: save -> restore -> run is byte-identical.
//
// Every test drives the real runner (the same code path emx_run uses):
// a baseline run, a checkpointed run, and a resume from each checkpoint
// must agree on final cycle count, trace digest, result verdict and
// checker verdicts — with and without an active fault plan.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "snapshot/runner.hpp"
#include "snapshot/snapshot.hpp"

namespace emx::snapshot {
namespace {

RunManifest tiny_sort() {
  RunManifest m;
  m.app = "sort";
  m.size_per_proc = 64;
  m.threads = 2;
  m.seed = 1;
  m.config.proc_count = 4;
  return m;
}

RunManifest tiny_fft() {
  RunManifest m;
  m.app = "fft";
  m.size_per_proc = 64;
  m.threads = 2;
  m.seed = 1;
  m.local_phase = true;
  m.config.proc_count = 4;
  return m;
}

std::string fresh_dir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "emx_rt_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.exit_code, b.exit_code);
  EXPECT_EQ(a.end_cycle, b.end_cycle);
  EXPECT_EQ(a.trace_events, b.trace_events);
  EXPECT_EQ(a.trace_crc, b.trace_crc);
  EXPECT_EQ(a.result_ok, b.result_ok);
  EXPECT_EQ(a.report.events_processed, b.report.events_processed);
  EXPECT_EQ(a.report.total_cycles, b.report.total_cycles);
}

void roundtrip(const RunManifest& manifest, const char* tag) {
  RunOptions base;
  base.manifest = manifest;
  const RunResult baseline = run(base);
  ASSERT_EQ(baseline.exit_code, 0) << baseline.error;
  ASSERT_GT(baseline.end_cycle, 0u);

  // Checkpointing must not perturb the run (pausing the event loop is
  // observationally free).
  RunOptions ck = base;
  ck.checkpoint_every = baseline.end_cycle / 4;
  ck.checkpoint_dir = fresh_dir(tag);
  const RunResult checkpointed = run(ck);
  ASSERT_EQ(checkpointed.exit_code, 0) << checkpointed.error;
  expect_identical(baseline, checkpointed);
  ASSERT_GE(checkpointed.checkpoints_written.size(), 3u);

  // Resume from every checkpoint: state verification (exit 0, not 5)
  // proves the rebuilt machine is byte-identical at the pause point, and
  // the final stats prove the continuation is too.
  for (const std::string& path : checkpointed.checkpoints_written) {
    RunOptions res = base;
    res.resume_path = path;
    const RunResult resumed = run(res);
    ASSERT_EQ(resumed.exit_code, 0) << path << ": " << resumed.error;
    expect_identical(baseline, resumed);
  }
  std::filesystem::remove_all(ck.checkpoint_dir);
}

TEST(SnapshotRoundTrip, SortFaultFree) { roundtrip(tiny_sort(), "sort"); }

TEST(SnapshotRoundTrip, FftFaultFree) { roundtrip(tiny_fft(), "fft"); }

TEST(SnapshotRoundTrip, SortWithFaultPlan) {
  RunManifest m = tiny_sort();
  m.config.fault.drop_rate = 0.05;
  m.config.fault.duplicate_rate = 0.02;
  m.config.fault.timeout_cycles = 2048;
  roundtrip(m, "sort_fault");
}

TEST(SnapshotRoundTrip, SortWithCheckersArmed) {
  RunManifest m = tiny_sort();
  m.config.check.memcheck = true;
  m.config.check.race = true;
  m.config.check.lint = true;
  roundtrip(m, "sort_check");
}

TEST(SnapshotRoundTrip, JacobiWithTreeBarrier) {
  RunManifest m;
  m.app = "jacobi";
  m.size_per_proc = 32;
  m.threads = 2;
  m.iterations = 4;
  m.seed = 3;
  m.config.proc_count = 4;
  m.config.barrier = BarrierTopology::kTree;
  roundtrip(m, "jacobi");
}

// Runs the workload once to size a checkpoint interval that yields at
// least two checkpoints regardless of the tiny run's actual length.
Cycle third_of_run(const RunManifest& m) {
  RunOptions base;
  base.manifest = m;
  const RunResult r = run(base);
  EXPECT_EQ(r.exit_code, 0) << r.error;
  return r.end_cycle / 3;
}

TEST(SnapshotRoundTrip, TamperedCheckpointIsDivergence) {
  const RunManifest m = tiny_sort();
  RunOptions ck;
  ck.manifest = m;
  ck.checkpoint_every = third_of_run(m);
  ck.checkpoint_dir = fresh_dir("tamper");
  const RunResult checkpointed = run(ck);
  ASSERT_EQ(checkpointed.exit_code, 0) << checkpointed.error;
  ASSERT_FALSE(checkpointed.checkpoints_written.empty());
  const std::string& path = checkpointed.checkpoints_written.front();

  // Flip a byte inside pe0's saved state and re-encode (fresh CRCs, so
  // the container is valid — only the *state* lies). Resume must catch
  // it and name the section.
  SnapshotFile file;
  ASSERT_EQ(file.read_file(path), "");
  Section* pe0 = nullptr;
  for (auto& sec : file.sections)
    if (sec.name == "pe0") pe0 = &sec;
  ASSERT_NE(pe0, nullptr);
  ASSERT_FALSE(pe0->payload.empty());
  pe0->payload[pe0->payload.size() / 2] ^= 0x01;
  ASSERT_EQ(file.write_file(path), "");

  RunOptions res;
  res.manifest = m;
  res.resume_path = path;
  const RunResult resumed = run(res);
  EXPECT_EQ(resumed.exit_code, 5);
  EXPECT_NE(resumed.error.find("pe0"), std::string::npos) << resumed.error;
  std::filesystem::remove_all(ck.checkpoint_dir);
}

TEST(SnapshotRoundTrip, ResumeRejectsMismatchedManifest) {
  const RunManifest m = tiny_sort();
  RunOptions ck;
  ck.manifest = m;
  ck.checkpoint_every = third_of_run(m);
  ck.checkpoint_dir = fresh_dir("mismatch");
  const RunResult checkpointed = run(ck);
  ASSERT_EQ(checkpointed.exit_code, 0) << checkpointed.error;
  ASSERT_FALSE(checkpointed.checkpoints_written.empty());

  RunOptions res;
  res.manifest = m;
  res.manifest.seed = 999;  // not the run the checkpoint describes
  res.resume_path = checkpointed.checkpoints_written.front();
  const RunResult resumed = run(res);
  EXPECT_EQ(resumed.exit_code, 2);
  EXPECT_NE(resumed.error.find("seed"), std::string::npos) << resumed.error;
  std::filesystem::remove_all(ck.checkpoint_dir);
}

TEST(SnapshotRoundTrip, CheckpointsAreByteDeterministic) {
  // Two identical runs must produce byte-identical checkpoint files —
  // the property that lets CI diff snapshots across hosts.
  const RunManifest m = tiny_sort();
  RunOptions ck;
  ck.manifest = m;
  ck.checkpoint_every = third_of_run(m);
  ck.checkpoint_dir = fresh_dir("det_a");
  const RunResult a = run(ck);
  ASSERT_EQ(a.exit_code, 0) << a.error;
  ck.checkpoint_dir = fresh_dir("det_b");
  const RunResult b = run(ck);
  ASSERT_EQ(b.exit_code, 0) << b.error;
  ASSERT_EQ(a.checkpoints_written.size(), b.checkpoints_written.size());
  ASSERT_FALSE(a.checkpoints_written.empty());
  for (std::size_t i = 0; i < a.checkpoints_written.size(); ++i) {
    SnapshotFile fa, fb;
    ASSERT_EQ(fa.read_file(a.checkpoints_written[i]), "");
    ASSERT_EQ(fb.read_file(b.checkpoints_written[i]), "");
    EXPECT_EQ(fa.encode(), fb.encode()) << a.checkpoints_written[i];
  }
  std::filesystem::remove_all(fresh_dir("det_a"));
  std::filesystem::remove_all(fresh_dir("det_b"));
}

}  // namespace
}  // namespace emx::snapshot
