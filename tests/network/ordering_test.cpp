// "The message non-overtaking rule is enforced by this unit" (§2.2):
// packets between one (src, dst) pair arrive in injection order, in both
// network models, under randomized background traffic.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "network/fast_network.hpp"
#include "network/omega_network.hpp"
#include "sim/sim_context.hpp"

namespace emx::net {
namespace {

struct OrderChecker {
  std::map<std::pair<ProcId, ProcId>, Word> last_seen;
  std::uint64_t violations = 0;
  std::uint64_t delivered = 0;
};

void check_order(void* ctx, const Packet& p) {
  auto* oc = static_cast<OrderChecker*>(ctx);
  ++oc->delivered;
  auto [it, fresh] = oc->last_seen.try_emplace({p.src, p.dst}, p.data);
  if (!fresh) {
    if (p.data <= it->second) ++oc->violations;
    it->second = p.data;
  }
}

template <typename Net>
void run_ordering_test() {
  constexpr std::uint32_t P = 16;
  sim::SimContext sim;
  Net net(sim, P);
  OrderChecker checker;
  net.set_delivery(&check_order, &checker);

  // Interleave many flows with per-pair increasing sequence numbers.
  Rng rng(2024);
  std::map<std::pair<ProcId, ProcId>, Word> next_seq;
  std::uint64_t injected = 0;
  for (int wave = 0; wave < 40; ++wave) {
    for (int i = 0; i < 25; ++i) {
      const auto src = static_cast<ProcId>(rng.bounded(P));
      const auto dst = static_cast<ProcId>(rng.bounded(P));
      Packet p;
      p.kind = PacketKind::kRemoteWrite;
      p.src = src;
      p.dst = dst;
      p.data = ++next_seq[{src, dst}];
      net.inject(p);
      ++injected;
    }
    sim.run_until(sim.now() + static_cast<Cycle>(rng.bounded(6)));
  }
  sim.run_until_idle();
  EXPECT_EQ(checker.delivered, injected);
  EXPECT_EQ(checker.violations, 0u);
}

TEST(NonOvertaking, DetailedOmegaPreservesPairOrder) {
  run_ordering_test<OmegaNetwork>();
}

TEST(NonOvertaking, FastNetworkPreservesPairOrder) {
  run_ordering_test<FastNetwork>();
}

}  // namespace
}  // namespace emx::net
