#include "network/switch_box.hpp"

#include <gtest/gtest.h>

namespace emx::net {
namespace {

TEST(SwitchBox, UncontendedReservationsDepartImmediately) {
  SwitchBox sw;
  EXPECT_EQ(sw.reserve(0, 10, 2), 10u);
  EXPECT_EQ(sw.reserve(1, 10, 2), 10u);  // different port: independent
  EXPECT_EQ(sw.total_wait(), 0u);
  EXPECT_EQ(sw.peak_backlog(), 0u);
}

TEST(SwitchBox, PortIntervalSerialisesSamePort) {
  SwitchBox sw;
  EXPECT_EQ(sw.reserve(0, 0, 2), 0u);
  EXPECT_EQ(sw.reserve(0, 0, 2), 2u);
  EXPECT_EQ(sw.reserve(0, 0, 2), 4u);
  EXPECT_EQ(sw.total_wait(), 2u + 4u);
  EXPECT_EQ(sw.forwarded(0), 3u);
}

TEST(SwitchBox, BacklogPeakTracksQueueDepth) {
  SwitchBox sw;
  for (int i = 0; i < 9; ++i) sw.reserve(2, 0, 2);
  // The ninth reservation waited 16 cycles = 8 packets behind the port.
  EXPECT_EQ(sw.peak_backlog(), 8u);
  EXPECT_EQ(sw.total_forwarded(), 9u);
}

TEST(SwitchBox, LateArrivalsResetTheQueue) {
  SwitchBox sw;
  sw.reserve(0, 0, 2);
  sw.reserve(0, 0, 2);
  // Arriving after the port drained: no wait.
  EXPECT_EQ(sw.reserve(0, 100, 2), 100u);
  EXPECT_EQ(sw.busy_until(0), 102u);
}

}  // namespace
}  // namespace emx::net
