#include "network/fast_network.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "network/omega_network.hpp"
#include "sim/sim_context.hpp"

namespace emx::net {
namespace {

struct Collector {
  std::vector<Packet> delivered;
  std::vector<Cycle> times;
  sim::SimContext* sim = nullptr;
};
void collect(void* ctx, const Packet& p) {
  auto* c = static_cast<Collector*>(ctx);
  c->delivered.push_back(p);
  c->times.push_back(c->sim->now());
}

Packet make_packet(ProcId src, ProcId dst) {
  Packet p;
  p.kind = PacketKind::kRemoteWrite;
  p.src = src;
  p.dst = dst;
  return p;
}

TEST(FastNetwork, UncontendedLatencyMatchesDetailedModel) {
  for (std::uint32_t P : {2u, 8u, 64u}) {
    for (ProcId dst : {1u, P - 1}) {
      sim::SimContext sim_fast, sim_det;
      FastNetwork fast(sim_fast, P);
      OmegaNetwork detailed(sim_det, P);
      Collector cf{.sim = &sim_fast}, cd{.sim = &sim_det};
      fast.set_delivery(&collect, &cf);
      detailed.set_delivery(&collect, &cd);
      fast.inject(make_packet(0, dst));
      detailed.inject(make_packet(0, dst));
      sim_fast.run_until_idle();
      sim_det.run_until_idle();
      ASSERT_EQ(cf.times.size(), 1u);
      ASSERT_EQ(cd.times.size(), 1u);
      EXPECT_EQ(cf.times[0], cd.times[0]) << "P=" << P << " dst=" << dst;
    }
  }
}

TEST(FastNetwork, AcceptsNonPowerOfTwoProcessorCounts) {
  // The 80-PE prototype: hops = ceil(log2 80) = 7.
  sim::SimContext sim;
  FastNetwork net(sim, 80);
  Collector c{.sim = &sim};
  net.set_delivery(&collect, &c);
  net.inject(make_packet(0, 79));
  sim.run_until_idle();
  ASSERT_EQ(c.times.size(), 1u);
  EXPECT_EQ(c.times[0], 8u);  // 7 hops + 1
}

TEST(FastNetwork, EjectionPortSerialisesArrivals) {
  sim::SimContext sim;
  FastNetwork net(sim, 16);
  Collector c{.sim = &sim};
  net.set_delivery(&collect, &c);
  // Four different sources target PE 9 simultaneously.
  for (ProcId s : {1u, 2u, 3u, 4u}) net.inject(make_packet(s, 9));
  sim.run_until_idle();
  ASSERT_EQ(c.times.size(), 4u);
  for (std::size_t i = 1; i < c.times.size(); ++i) {
    EXPECT_GE(c.times[i] - c.times[i - 1], 2u);
  }
}

TEST(FastNetwork, InjectionPortLimitsSourceRate) {
  sim::SimContext sim;
  FastNetwork net(sim, 16);
  Collector c{.sim = &sim};
  net.set_delivery(&collect, &c);
  // One source sprays distinct destinations: departures every 2 cycles,
  // each arriving hops+1 cycles after its departure.
  const std::vector<ProcId> dests = {1u, 2u, 3u, 4u, 5u};
  for (ProcId d : dests) net.inject(make_packet(0, d));
  sim.run_until_idle();
  ASSERT_EQ(c.delivered.size(), dests.size());
  for (std::size_t i = 0; i < c.delivered.size(); ++i) {
    const ProcId d = c.delivered[i].dst;
    const std::size_t order = std::find(dests.begin(), dests.end(), d) -
                              dests.begin();
    EXPECT_EQ(c.times[i], 2 * order + net.hop_count(0, d) + 1)
        << "dst=" << d;
  }
}

TEST(FastNetwork, SelfDeliveryUsesLoopbackLatency) {
  sim::SimContext sim;
  FastNetwork net(sim, 4, /*self_latency=*/2);
  Collector c{.sim = &sim};
  net.set_delivery(&collect, &c);
  net.inject(make_packet(2, 2));
  sim.run_until_idle();
  ASSERT_EQ(c.times.size(), 1u);
  EXPECT_EQ(c.times[0], 2u);
  EXPECT_EQ(net.stats().self_deliveries, 1u);
}

}  // namespace
}  // namespace emx::net
