// Hot-spot contention: many sources firing at one destination must show
// up in NetworkStats — queued cycles accumulate and the peak per-port
// backlog grows — while an idle network reports neither.
#include <gtest/gtest.h>

#include <vector>

#include "network/fast_network.hpp"
#include "network/omega_network.hpp"
#include "sim/sim_context.hpp"

namespace emx::net {
namespace {

struct Collector {
  std::vector<Packet> delivered;
  std::vector<Cycle> times;
  sim::SimContext* sim = nullptr;
};
void collect(void* ctx, const Packet& p) {
  auto* c = static_cast<Collector*>(ctx);
  c->delivered.push_back(p);
  c->times.push_back(c->sim->now());
}

Packet make_packet(ProcId src, ProcId dst) {
  Packet p;
  p.kind = PacketKind::kRemoteWrite;
  p.src = src;
  p.dst = dst;
  return p;
}

// Every source slams the same destination port in the same cycle, several
// rounds deep. The ejection port serves one packet per interval, so a
// queue must form behind it.
template <typename Net>
void hammer_hot_port(sim::SimContext& sim, Net& net, std::uint32_t procs,
                     std::uint32_t rounds, Collector& c) {
  net.set_delivery(&collect, &c);
  const ProcId hot = procs - 1;
  for (std::uint32_t r = 0; r < rounds; ++r)
    for (ProcId src = 0; src < procs - 1; ++src)
      net.inject(make_packet(src, hot));
  sim.run_until_idle();
}

TEST(Contention, QuietFastNetworkReportsNoBacklog) {
  sim::SimContext sim;
  FastNetwork net(sim, 16);
  Collector c{.sim = &sim};
  net.set_delivery(&collect, &c);
  net.inject(make_packet(0, 5));  // one lonely packet, no queueing
  sim.run_until_idle();
  EXPECT_EQ(net.stats().contention_wait, 0u);
  EXPECT_EQ(net.stats().peak_port_backlog, 0u);
}

TEST(Contention, HotPortGrowsBacklogOnTheFastNetwork) {
  sim::SimContext sim;
  FastNetwork net(sim, 16);
  Collector c{.sim = &sim};
  hammer_hot_port(sim, net, 16, 4, c);
  EXPECT_EQ(c.delivered.size(), 15u * 4u);
  EXPECT_GT(net.stats().contention_wait, 0u);
  EXPECT_GT(net.stats().peak_port_backlog, 0u);
}

TEST(Contention, HotPortGrowsBacklogOnTheDetailedNetwork) {
  sim::SimContext sim;
  OmegaNetwork net(sim, 16);
  Collector c{.sim = &sim};
  hammer_hot_port(sim, net, 16, 4, c);
  EXPECT_EQ(c.delivered.size(), 15u * 4u);
  EXPECT_GT(net.stats().contention_wait, 0u);
  EXPECT_GT(net.stats().peak_port_backlog, 0u);
}

TEST(Contention, MoreTrafficNeverShrinksThePeak) {
  // Peak backlog is a running max: doubling the load on the hot port can
  // only hold or raise it, and a heavier hammering must beat a light one.
  std::uint64_t light_peak = 0, heavy_peak = 0;
  {
    sim::SimContext sim;
    FastNetwork net(sim, 16);
    Collector c{.sim = &sim};
    hammer_hot_port(sim, net, 16, 1, c);
    light_peak = net.stats().peak_port_backlog;
  }
  {
    sim::SimContext sim;
    FastNetwork net(sim, 16);
    Collector c{.sim = &sim};
    hammer_hot_port(sim, net, 16, 8, c);
    heavy_peak = net.stats().peak_port_backlog;
  }
  EXPECT_GT(heavy_peak, light_peak);
}

TEST(Contention, SpreadTrafficBeatsHotSpotTraffic) {
  // The classic EM-X argument: an all-to-one pattern pays far more port
  // wait than a balanced permutation moving the same packet count.
  Cycle hot_wait = 0, spread_wait = 0;
  {
    sim::SimContext sim;
    FastNetwork net(sim, 16);
    Collector c{.sim = &sim};
    hammer_hot_port(sim, net, 16, 4, c);
    hot_wait = net.stats().contention_wait;
  }
  {
    sim::SimContext sim;
    FastNetwork net(sim, 16);
    Collector c{.sim = &sim};
    net.set_delivery(&collect, &c);
    for (std::uint32_t r = 0; r < 4; ++r)
      for (ProcId src = 0; src < 15; ++src)
        net.inject(make_packet(src, (src + 1 + r) % 16));  // permutation-ish
    sim.run_until_idle();
    spread_wait = net.stats().contention_wait;
  }
  EXPECT_GT(hot_wait, spread_wait);
}

}  // namespace
}  // namespace emx::net
