#include "network/routing.hpp"

#include <gtest/gtest.h>

#include <set>

namespace emx::net {
namespace {

TEST(ShuffleRouting, EveryRouteReachesItsDestination) {
  for (std::uint32_t P : {2u, 4u, 8u, 16u, 64u}) {
    ShuffleRouting routing(P);
    for (ProcId s = 0; s < P; ++s) {
      for (ProcId d = 0; d < P; ++d) {
        const auto path = routing.route(s, d);
        ASSERT_EQ(path.front(), s);
        ASSERT_EQ(path.back(), d);
        ASSERT_EQ(path.size(), routing.hop_count(s, d) + 1u);
        ASSERT_LE(path.size(), routing.bits() + 1u);
      }
    }
  }
}

TEST(ShuffleRouting, HopsFollowTheShuffleEdges) {
  // Every hop must be a legal de Bruijn edge: next == (2*cur + b) mod P.
  constexpr std::uint32_t P = 32;
  ShuffleRouting routing(P);
  for (ProcId s = 0; s < P; ++s) {
    for (ProcId d = 0; d < P; ++d) {
      if (s == d) continue;
      const auto path = routing.route(s, d);
      for (std::size_t hop = 0; hop + 1 < path.size(); ++hop) {
        const ProcId cur = path[hop];
        const ProcId nxt = path[hop + 1];
        const unsigned port =
            routing.output_port(s, d, static_cast<unsigned>(hop));
        EXPECT_EQ(nxt, (2 * cur + port) % P);
      }
    }
  }
}

TEST(ShuffleRouting, HopCountIsAtMostLogP) {
  ShuffleRouting r64(64);
  EXPECT_EQ(r64.hop_count(0, 63), 6u);  // no bit overlap: full log P hops
  EXPECT_EQ(r64.hop_count(5, 5), 0u);   // self-sends skip the fabric
  ShuffleRouting r2(2);
  EXPECT_EQ(r2.hop_count(0, 1), 1u);
}

TEST(ShuffleRouting, OverlapShortensRoutes) {
  // P=8: src=001, dst=110 — src's low bit equals dst's top bit, so the
  // shift register needs only two hops: 001 -> 011 -> 110.
  ShuffleRouting routing(8);
  EXPECT_EQ(routing.overlap(1, 6), 1u);
  EXPECT_EQ(routing.route(1, 6), (std::vector<ProcId>{1, 3, 6}));
  // src=011, dst=110: overlap 2 -> a single hop.
  EXPECT_EQ(routing.overlap(3, 6), 2u);
  EXPECT_EQ(routing.route(3, 6), (std::vector<ProcId>{3, 6}));
  // No overlap: the full three hops.
  EXPECT_EQ(routing.overlap(0, 7), 0u);
  EXPECT_EQ(routing.route(0, 7), (std::vector<ProcId>{0, 1, 3, 7}));
}

TEST(ShuffleRouting, RoutesNeverRevisitANode) {
  // Shortest-path routing keeps the k+1-cycle rule honest: no switch is
  // traversed twice within one route.
  for (std::uint32_t P : {4u, 8u, 32u}) {
    ShuffleRouting routing(P);
    for (ProcId s = 0; s < P; ++s) {
      for (ProcId d = 0; d < P; ++d) {
        const auto path = routing.route(s, d);
        std::set<ProcId> seen(path.begin(), path.end());
        EXPECT_EQ(seen.size(), path.size()) << "s=" << s << " d=" << d;
      }
    }
  }
}

TEST(ShuffleRouting, RejectsNonPowerOfTwo) {
  EXPECT_DEATH(ShuffleRouting(80), "power-of-two");
}

}  // namespace
}  // namespace emx::net
