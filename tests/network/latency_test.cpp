// §2.2 anchor: "A packet can be transferred in k+1 cycles to the
// processor k hops beyond by a virtual-cut-through routing", and each
// port moves one packet every second cycle.
#include <gtest/gtest.h>

#include <set>

#include "network/omega_network.hpp"
#include "sim/sim_context.hpp"

namespace emx::net {
namespace {

struct Collector {
  std::vector<Cycle> times;
  sim::SimContext* sim = nullptr;
};
void collect(void* ctx, const Packet&) {
  auto* c = static_cast<Collector*>(ctx);
  c->times.push_back(c->sim->now());
}

Packet make_packet(ProcId src, ProcId dst) {
  Packet p;
  p.kind = PacketKind::kRemoteWrite;
  p.src = src;
  p.dst = dst;
  return p;
}

class UncontendedLatency : public testing::TestWithParam<std::uint32_t> {};

TEST_P(UncontendedLatency, KHopsTakeKPlusOneCycles) {
  const std::uint32_t P = GetParam();
  for (ProcId dst = 1; dst < P; ++dst) {
    sim::SimContext sim;
    OmegaNetwork net(sim, P);
    Collector c{.sim = &sim};
    net.set_delivery(&collect, &c);
    net.inject(make_packet(0, dst));
    sim.run_until_idle();
    ASSERT_EQ(c.times.size(), 1u);
    const unsigned k = net.hop_count(0, dst);
    EXPECT_EQ(c.times[0], k + 1) << "P=" << P << " dst=" << dst;
  }
}

INSTANTIATE_TEST_SUITE_P(ProcCounts, UncontendedLatency,
                         testing::Values(2u, 4u, 8u, 16u, 64u),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param);
                         });

TEST(PortBandwidth, BackToBackPacketsSpaceByPortInterval) {
  // Two packets on the same route: the second departs 2 cycles later.
  sim::SimContext sim;
  OmegaNetwork net(sim, 8);
  Collector c{.sim = &sim};
  net.set_delivery(&collect, &c);
  net.inject(make_packet(0, 5));
  net.inject(make_packet(0, 5));
  sim.run_until_idle();
  ASSERT_EQ(c.times.size(), 2u);
  EXPECT_EQ(c.times[1] - c.times[0], 2u);
  EXPECT_GT(net.stats().contention_wait, 0u);
}

TEST(PortBandwidth, BurstOfNPacketsDrainsAtHalfRate) {
  constexpr int kBurst = 16;
  sim::SimContext sim;
  OmegaNetwork net(sim, 8);
  Collector c{.sim = &sim};
  net.set_delivery(&collect, &c);
  for (int i = 0; i < kBurst; ++i) net.inject(make_packet(3, 4));
  sim.run_until_idle();
  ASSERT_EQ(c.times.size(), kBurst);
  // First arrives at k+1; subsequent every 2 cycles (pipeline full).
  const unsigned k = net.hop_count(3, 4);
  EXPECT_EQ(c.times.front(), k + 1);
  EXPECT_EQ(c.times.back(), k + 1 + 2 * (kBurst - 1));
}

TEST(PortBandwidth, PeakBacklogSizesTheCutThroughBuffer) {
  sim::SimContext sim;
  OmegaNetwork net(sim, 8);
  Collector c{.sim = &sim};
  net.set_delivery(&collect, &c);
  for (int i = 0; i < 12; ++i) net.inject(make_packet(0, 5));
  sim.run_until_idle();
  // Twelve same-route packets: the deepest port queue is bounded by the
  // burst and nonzero under contention.
  EXPECT_GT(net.peak_port_backlog(), 0u);
  EXPECT_LE(net.peak_port_backlog(), 12u);
  EXPECT_EQ(net.stats().peak_port_backlog, net.peak_port_backlog());
}

TEST(CrossTraffic, ContendingFlowsShareAPort) {
  // Flows 0->3 and 4->3 in P=8 share switch 3's ejection port at least;
  // total drain time reflects serialisation.
  sim::SimContext sim;
  OmegaNetwork net(sim, 8);
  Collector c{.sim = &sim};
  net.set_delivery(&collect, &c);
  for (int i = 0; i < 8; ++i) {
    net.inject(make_packet(0, 3));
    net.inject(make_packet(4, 3));
  }
  sim.run_until_idle();
  ASSERT_EQ(c.times.size(), 16u);
  // 16 packets through one ejection port at 1/2 cycles -> >= 30 cycles
  // between first and last.
  EXPECT_GE(c.times.back() - c.times.front(), 30u);
}

}  // namespace
}  // namespace emx::net
