// Figure-2 anchor: the circular Omega fabric — P switch boxes, each with
// two network ports plus the processor port, traversed by destination-tag
// routing.
#include <gtest/gtest.h>

#include <set>

#include "network/omega_network.hpp"
#include "sim/sim_context.hpp"

namespace emx::net {
namespace {

struct Collector {
  std::vector<Packet> delivered;
  std::vector<Cycle> times;
  sim::SimContext* sim = nullptr;
};

void collect(void* ctx, const Packet& p) {
  auto* c = static_cast<Collector*>(ctx);
  c->delivered.push_back(p);
  c->times.push_back(c->sim->now());
}

Packet make_packet(ProcId src, ProcId dst, Word data = 0) {
  Packet p;
  p.kind = PacketKind::kRemoteWrite;
  p.src = src;
  p.dst = dst;
  p.data = data;
  return p;
}

TEST(OmegaTopology, AllPairsDeliver) {
  constexpr std::uint32_t P = 16;
  sim::SimContext sim;
  OmegaNetwork net(sim, P);
  Collector c{.sim = &sim};
  net.set_delivery(&collect, &c);
  for (ProcId s = 0; s < P; ++s)
    for (ProcId d = 0; d < P; ++d) net.inject(make_packet(s, d, s * 100 + d));
  sim.run_until_idle();
  ASSERT_EQ(c.delivered.size(), P * P);
  // Every (src, dst) pair arrived with its payload intact.
  std::set<Word> payloads;
  for (const auto& p : c.delivered) payloads.insert(p.data);
  EXPECT_EQ(payloads.size(), P * P);
}

TEST(OmegaTopology, SwitchBoxesForwardOnlyOnTheirRoutes) {
  constexpr std::uint32_t P = 8;
  sim::SimContext sim;
  OmegaNetwork net(sim, P);
  Collector c{.sim = &sim};
  net.set_delivery(&collect, &c);
  net.inject(make_packet(1, 6));
  sim.run_until_idle();
  // Shortest shuffle route 1 -> 3 -> 6: exactly those switches forward
  // (switch 6 via its processor ejection port).
  EXPECT_EQ(net.switch_box(1).total_forwarded(), 1u);
  EXPECT_EQ(net.switch_box(3).total_forwarded(), 1u);
  EXPECT_EQ(net.switch_box(6).total_forwarded(), 1u);  // ejection port
  EXPECT_EQ(net.switch_box(0).total_forwarded(), 0u);
  EXPECT_EQ(net.switch_box(2).total_forwarded(), 0u);
  EXPECT_EQ(net.switch_box(7).total_forwarded(), 0u);
}

TEST(OmegaTopology, SelfSendsBypassTheFabric) {
  sim::SimContext sim;
  OmegaNetwork net(sim, 8);
  Collector c{.sim = &sim};
  net.set_delivery(&collect, &c);
  net.inject(make_packet(3, 3));
  sim.run_until_idle();
  ASSERT_EQ(c.delivered.size(), 1u);
  EXPECT_EQ(net.stats().self_deliveries, 1u);
  EXPECT_EQ(net.stats().fabric_packets, 0u);
  for (ProcId p = 0; p < 8; ++p)
    EXPECT_EQ(net.switch_box(p).total_forwarded(), 0u);
}

TEST(OmegaTopology, StatsCountInjectionsAndDeliveries) {
  sim::SimContext sim;
  OmegaNetwork net(sim, 4);
  Collector c{.sim = &sim};
  net.set_delivery(&collect, &c);
  for (int i = 0; i < 10; ++i) net.inject(make_packet(0, 2));
  sim.run_until_idle();
  EXPECT_EQ(net.stats().packets_injected, 10u);
  EXPECT_EQ(net.stats().packets_delivered, 10u);
  EXPECT_EQ(net.stats().latency.count(), 10u);
}

}  // namespace
}  // namespace emx::net
