// The headline result: multithreading overlaps communication with
// computation. Adding threads must reduce exposed communication time, and
// FFT (large run length, no thread sync) must overlap far better than
// bitonic sorting (12-clock run length, ordered merging) — paper §4.
#include <gtest/gtest.h>

#include "apps/bitonic.hpp"
#include "apps/fft.hpp"
#include "core/machine.hpp"
#include "core/overlap.hpp"

namespace emx {
namespace {

double sort_comm_seconds(std::uint32_t h) {
  MachineConfig cfg;
  cfg.proc_count = 8;
  Machine machine(cfg);
  apps::BitonicSortApp app(machine,
                           apps::BitonicParams{.n = 8 * 512, .threads = h});
  app.setup();
  machine.run();
  EXPECT_TRUE(app.verify());
  return machine.report().mean_comm_seconds();
}

double fft_comm_seconds(std::uint32_t h) {
  MachineConfig cfg;
  cfg.proc_count = 8;
  Machine machine(cfg);
  apps::FftApp app(machine, apps::FftParams{.n = 8 * 512, .threads = h});
  app.setup();
  machine.run();
  return machine.report().mean_comm_seconds();
}

TEST(Overlap, TwoThreadsBeatOneForSorting) {
  EXPECT_LT(sort_comm_seconds(2), sort_comm_seconds(1));
}

TEST(Overlap, TwoThreadsBeatOneForFft) {
  EXPECT_LT(fft_comm_seconds(2), fft_comm_seconds(1));
}

TEST(Overlap, FftOverlapsFarBetterThanSorting) {
  OverlapSeries sort_series;
  OverlapSeries fft_series;
  for (std::uint32_t h : {1u, 2u, 3u, 4u}) {
    sort_series.add(h, sort_comm_seconds(h));
    fft_series.add(h, fft_comm_seconds(h));
  }
  const double sort_eff = sort_series.best_efficiency_percent();
  const double fft_eff = fft_series.best_efficiency_percent();
  EXPECT_GT(fft_eff, 85.0) << "paper: FFT overlaps over 95%";
  EXPECT_GT(sort_eff, 10.0) << "paper: sorting overlaps ~35%";
  EXPECT_GT(fft_eff, sort_eff + 20.0)
      << "FFT must overlap far better than sorting";
}

TEST(Overlap, TwoToFourThreadsSaturateTheBenefit) {
  // "the best communication performance occurs when the number of
  //  threads is two to four. ... The number of threads higher than four
  //  does not give a notable advantage in masking off the latency."
  OverlapSeries fft_series;
  double comm_at[17] = {};
  for (std::uint32_t h : {1u, 2u, 3u, 4u, 8u, 16u}) {
    comm_at[h] = fft_comm_seconds(h);
    fft_series.add(h, comm_at[h]);
  }
  const std::uint32_t best = fft_series.best_thread_count();
  EXPECT_GE(best, 2u);
  // h in {2,3,4} already achieves (nearly) everything larger counts do.
  const double best_comm = comm_at[best];
  const double comm_3 = comm_at[3];
  const double base = comm_at[1];
  EXPECT_LE(comm_3 - best_comm, 0.05 * base)
      << "three threads must capture almost all the overlap benefit";
}

TEST(Overlap, EfficiencyFormulaMatchesDefinition) {
  EXPECT_DOUBLE_EQ(overlap_efficiency_percent(2.0, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(overlap_efficiency_percent(2.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(overlap_efficiency_percent(0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace emx
