// The 80-PE prototype configuration: not a power of two, so it exercises
// the fast network's general-P path with the full runtime on top.
#include <gtest/gtest.h>

#include "core/machine.hpp"

namespace emx {
namespace {

TEST(Prototype, EightyProcessorsExchangeAndBarrier) {
  Machine m(MachineConfig::emx_prototype());
  ASSERT_EQ(m.config().proc_count, 80u);

  // Neighbour exchange around the full ring plus a barrier per round.
  const auto entry = m.register_entry([](rt::ThreadApi api, Word) -> rt::ThreadBody {
    const ProcId me = api.proc();
    const ProcId right = (me + 1) % 80;
    for (int round = 0; round < 3; ++round) {
      co_await api.remote_write(
          rt::GlobalAddr{right, rt::kReservedWords + round}, me * 10 + round);
      co_await api.iteration_barrier();
      const Word got = api.local_read(rt::kReservedWords + round);
      const Word expect = ((me + 79) % 80) * 10 + round;
      EMX_CHECK(got == expect, "ring exchange value mismatch");
    }
  });
  m.configure_barrier(1);
  for (ProcId p = 0; p < 80; ++p) m.spawn(p, entry, 0);
  m.run();

  const MachineReport r = m.report();
  EXPECT_EQ(r.procs.size(), 80u);
  EXPECT_EQ(r.network.packets_injected, r.network.packets_delivered);
}

TEST(Prototype, PaperMachinePresetUsesDetailedNetwork) {
  const MachineConfig p64 = MachineConfig::paper_machine(64);
  EXPECT_EQ(p64.proc_count, 64u);
  EXPECT_EQ(p64.network, NetworkModel::kDetailed);
  EXPECT_DEATH(MachineConfig::paper_machine(80), "power-of-two");
}

TEST(Prototype, TreeBarrierScalesToEightyProcessors) {
  MachineConfig cfg = MachineConfig::emx_prototype();
  cfg.barrier = BarrierTopology::kTree;
  Machine m(cfg);
  const auto entry = m.register_entry([](rt::ThreadApi api, Word) -> rt::ThreadBody {
    for (int i = 0; i < 4; ++i) {
      co_await api.compute(10);
      co_await api.iteration_barrier();
    }
  });
  m.configure_barrier(2);
  for (ProcId p = 0; p < 80; ++p)
    for (Word t = 0; t < 2; ++t) m.spawn(p, entry, t);
  m.run();
  SUCCEED();  // drained without deadlock; frames checked inside run()
}

}  // namespace
}  // namespace emx
