// The simulator is bit-deterministic: identical configurations produce
// identical cycle counts, switch counts and results.
#include <gtest/gtest.h>

#include "apps/bitonic.hpp"
#include "apps/fft.hpp"
#include "core/machine.hpp"

namespace emx {
namespace {

struct RunSummary {
  Cycle cycles;
  std::vector<std::uint64_t> switch_totals;
  std::vector<Word> result;

  bool operator==(const RunSummary&) const = default;
};

RunSummary run_once(NetworkModel net) {
  MachineConfig cfg;
  cfg.proc_count = 8;
  cfg.network = net;
  Machine machine(cfg);
  apps::BitonicSortApp app(machine,
                           apps::BitonicParams{.n = 8 * 64, .threads = 3});
  app.setup();
  machine.run();
  RunSummary s;
  s.cycles = machine.end_cycle();
  for (const auto& p : machine.report().procs)
    s.switch_totals.push_back(p.switches.total());
  s.result = app.gather();
  return s;
}

TEST(Determinism, IdenticalRunsAreBitIdenticalFastNet) {
  EXPECT_EQ(run_once(NetworkModel::kFast), run_once(NetworkModel::kFast));
}

TEST(Determinism, IdenticalRunsAreBitIdenticalDetailedNet) {
  EXPECT_EQ(run_once(NetworkModel::kDetailed),
            run_once(NetworkModel::kDetailed));
}

TEST(Determinism, FftCyclesStableAcrossRuns) {
  auto run = [] {
    MachineConfig cfg;
    cfg.proc_count = 4;
    Machine machine(cfg);
    apps::FftApp app(machine, apps::FftParams{.n = 4 * 128, .threads = 4});
    app.setup();
    machine.run();
    return machine.end_cycle();
  };
  const Cycle first = run();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(run(), first);
}

}  // namespace
}  // namespace emx
