// Regression guards for the reproduced figure shapes: if a change to the
// simulator breaks a headline result of the paper, these fail before a
// human ever reads a bench table.
#include <gtest/gtest.h>

#include "apps/bitonic.hpp"
#include "apps/fft.hpp"
#include "core/machine.hpp"

namespace emx {
namespace {

MachineReport sort_report(std::uint32_t h, std::uint64_t per_proc = 512) {
  MachineConfig cfg;
  cfg.proc_count = 16;
  Machine m(cfg);
  apps::BitonicSortApp app(m, apps::BitonicParams{.n = 16 * per_proc, .threads = h});
  app.setup();
  m.run();
  EXPECT_TRUE(app.verify());
  return m.report();
}

MachineReport fft_report(std::uint32_t h, std::uint64_t per_proc = 512) {
  MachineConfig cfg;
  cfg.proc_count = 16;
  Machine m(cfg);
  apps::FftApp app(m, apps::FftParams{.n = 16 * per_proc, .threads = h});
  app.setup();
  m.run();
  return m.report();
}

// ---- Figure 6: the valley ----

TEST(FigureShapes, Fig6SortingValleyAtTwoToFourThreads) {
  const double c1 = sort_report(1).mean_comm_seconds();
  const double c2 = sort_report(2).mean_comm_seconds();
  const double c4 = sort_report(4).mean_comm_seconds();
  EXPECT_LT(c2, 0.75 * c1) << "two threads must cut communication time";
  EXPECT_LT(c4, 0.75 * c1);
  EXPECT_NEAR(c4 / c2, 1.0, 0.1) << "beyond 2 threads the valley is flat";
}

TEST(FigureShapes, Fig6FftValleyIsOrdersOfMagnitudeDeep) {
  const double c1 = fft_report(1).mean_comm_seconds();
  const double c4 = fft_report(4).mean_comm_seconds();
  EXPECT_LT(c4, 0.05 * c1) << "FFT communication nearly disappears by h=4";
}

// ---- Figure 7: the overlap split ----

TEST(FigureShapes, Fig7SortingNearPaperThirtyFivePercent) {
  const double c1 = sort_report(1).mean_comm_seconds();
  const double c4 = sort_report(4).mean_comm_seconds();
  const double eff = 100.0 * (c1 - c4) / c1;
  EXPECT_GT(eff, 25.0) << "paper: ~35% sorting overlap";
  EXPECT_LT(eff, 55.0) << "sorting must NOT overlap like FFT does";
}

TEST(FigureShapes, Fig7FftAbovePaperNinetyFivePercent) {
  const double c1 = fft_report(1).mean_comm_seconds();
  const double c3 = fft_report(3).mean_comm_seconds();
  EXPECT_GT(100.0 * (c1 - c3) / c1, 95.0);
}

// ---- Figure 8: the breakdown contrast ----

TEST(FigureShapes, Fig8SortingCommunicationDominatedAtOneThread) {
  const auto s = sort_report(1).shares();
  EXPECT_GT(s.comm, s.compute);
  EXPECT_GT(s.comm, 30.0);
}

TEST(FigureShapes, Fig8FftComputationDominated) {
  for (std::uint32_t h : {1u, 4u}) {
    const auto s = fft_report(h).shares();
    EXPECT_GT(s.compute, 70.0) << "h=" << h;
    EXPECT_GT(s.compute, 3.0 * s.comm) << "h=" << h;
  }
}

TEST(FigureShapes, Fig8ComputeShareStableAcrossThreads) {
  const auto s2 = sort_report(2).shares();
  const auto s8 = sort_report(8).shares();
  EXPECT_NEAR(s2.compute, s8.compute, 3.0)
      << "total computation must not depend on the thread count";
}

// ---- Figure 9: switch taxonomy ----

TEST(FigureShapes, Fig9RemoteReadSwitchesIndependentOfThreads) {
  const auto r1 = sort_report(1);
  const auto r8 = sort_report(8);
  EXPECT_DOUBLE_EQ(r1.mean_remote_read_switches(),
                   r8.mean_remote_read_switches());
}

TEST(FigureShapes, Fig9IterationSyncGrowsWithThreads) {
  const auto r2 = sort_report(2);
  const auto r16 = sort_report(16);
  EXPECT_GT(r16.mean_iter_sync_switches(), 2.0 * r2.mean_iter_sync_switches());
}

TEST(FigureShapes, Fig9SwitchTimeGrowsWithThreadsForSmallProblems) {
  const auto r2 = sort_report(2, /*per_proc=*/256);
  const auto r16 = sort_report(16, /*per_proc=*/256);
  EXPECT_GT(r16.mean_switching_cycles(), r2.mean_switching_cycles());
}

}  // namespace
}  // namespace emx
