// Randomized stress: many threads per PE executing random mixes of
// computes, remote reads (single/paired/block), writes, spawns and
// yields. Checks global invariants: the machine drains, every frame is
// reclaimed, packets are conserved, reads are all serviced, accounting
// tiles the timeline — for every seed, on both network models.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/machine.hpp"

namespace emx {
namespace {

struct StressCase {
  std::uint64_t seed;
  NetworkModel net;
};

class StressRun : public testing::TestWithParam<StressCase> {};

TEST_P(StressRun, InvariantsHoldUnderChaos) {
  const StressCase& sc = GetParam();
  constexpr std::uint32_t kProcs = 8;
  MachineConfig cfg;
  cfg.proc_count = kProcs;
  cfg.network = sc.net;
  cfg.max_events = 50'000'000;  // livelock guard
  Machine m(cfg);

  // Child entry: a short burst of compute + one write.
  const auto child = m.register_entry([](rt::ThreadApi api, Word arg) -> rt::ThreadBody {
    co_await api.compute(1 + arg % 17);
    co_await api.remote_write(
        rt::GlobalAddr{static_cast<ProcId>(arg % kProcs),
                       rt::kReservedWords + 64 + arg % 32},
        arg);
  });

  // Worker entry: arg seeds a per-thread RNG driving a random op tape.
  const auto worker = m.register_entry(
      [child](rt::ThreadApi api, Word arg) -> rt::ThreadBody {
        Rng rng(arg);
        const int ops = 20 + static_cast<int>(rng.bounded(30));
        for (int i = 0; i < ops; ++i) {
          const ProcId peer = static_cast<ProcId>(rng.bounded(kProcs));
          const LocalAddr addr =
              rt::kReservedWords + static_cast<LocalAddr>(rng.bounded(32));
          switch (rng.bounded(6)) {
            case 0:
              co_await api.compute(1 + rng.bounded(40));
              break;
            case 1:
              (void)co_await api.remote_read(rt::GlobalAddr{peer, addr});
              break;
            case 2: {
              const ProcId peer2 = static_cast<ProcId>(rng.bounded(kProcs));
              (void)co_await api.remote_read_pair(
                  rt::GlobalAddr{peer, addr},
                  rt::GlobalAddr{peer2, addr + 1});
              break;
            }
            case 3:
              co_await api.remote_write(rt::GlobalAddr{peer, addr},
                                        static_cast<Word>(i));
              break;
            case 4:
              co_await api.remote_read_block(
                  rt::GlobalAddr{peer, addr},
                  rt::kReservedWords + 128 +
                      static_cast<LocalAddr>(rng.bounded(64)),
                  1 + static_cast<std::uint32_t>(rng.bounded(8)));
              break;
            case 5:
              if (rng.bounded(2)) {
                co_await api.spawn(peer, child, static_cast<Word>(rng.next_u32()));
              } else {
                co_await api.yield();
              }
              break;
          }
        }
      });

  std::uint32_t spawned = 0;
  Rng seeder(sc.seed);
  for (ProcId p = 0; p < kProcs; ++p) {
    const auto count = 2 + static_cast<std::uint32_t>(seeder.bounded(4));
    for (std::uint32_t t = 0; t < count; ++t) {
      m.spawn(p, worker, static_cast<Word>(seeder.next_u32()));
      ++spawned;
    }
  }
  m.run();  // panics internally on deadlock / leaked frames

  const MachineReport r = m.report();
  EXPECT_EQ(r.network.packets_injected, r.network.packets_delivered);
  std::uint64_t issued = 0, serviced = 0, accepted = 0;
  for (const auto& p : r.procs) {
    issued += p.reads_issued;
    serviced += p.dma_reads + p.dma_block_reads;
    accepted += p.packets_accepted;
    EXPECT_EQ(p.busy_total() + p.comm, r.total_cycles);
  }
  EXPECT_EQ(issued, serviced);
  EXPECT_EQ(accepted, r.network.packets_delivered);
  EXPECT_GT(spawned, 0u);

  // Frames: every worker, child and barrier handler reclaimed.
  for (ProcId p = 0; p < kProcs; ++p) {
    EXPECT_EQ(m.engine(p).frames().live(), 0u);
    EXPECT_GT(m.engine(p).frames().created(), 0u);
  }
}

std::vector<StressCase> cases() {
  std::vector<StressCase> out;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 42ull, 1234ull, 99999ull}) {
    out.push_back({seed, NetworkModel::kFast});
  }
  out.push_back({7ull, NetworkModel::kDetailed});
  out.push_back({8ull, NetworkModel::kDetailed});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressRun, testing::ValuesIn(cases()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed) +
                                  (info.param.net == NetworkModel::kDetailed
                                       ? "_detailed"
                                       : "_fast");
                         });

}  // namespace
}  // namespace emx
