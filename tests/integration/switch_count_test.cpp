// Figure-9 invariants: "the remote read switching cost is fixed
// regardless of the number of threads because the number of elements to
// be read is indeed fixed. In fact, this switching can be readily derived
// from the given n, h, and P."
#include <gtest/gtest.h>

#include "apps/bitonic.hpp"
#include "apps/distribution.hpp"
#include "apps/fft.hpp"
#include "core/machine.hpp"

namespace emx {
namespace {

MachineReport run_sort(std::uint32_t P, std::uint64_t n, std::uint32_t h) {
  MachineConfig cfg;
  cfg.proc_count = P;
  Machine machine(cfg);
  apps::BitonicSortApp app(machine, apps::BitonicParams{.n = n, .threads = h});
  app.setup();
  machine.run();
  EXPECT_TRUE(app.verify());
  return machine.report();
}

MachineReport run_fft(std::uint32_t P, std::uint64_t n, std::uint32_t h) {
  MachineConfig cfg;
  cfg.proc_count = P;
  Machine machine(cfg);
  apps::FftApp app(machine, apps::FftParams{.n = n, .threads = h});
  app.setup();
  machine.run();
  return machine.report();
}

class SwitchCounts : public testing::TestWithParam<std::uint32_t> {};

TEST_P(SwitchCounts, SortRemoteReadSwitchesDerivableFromNHP) {
  const std::uint32_t h = GetParam();
  constexpr std::uint32_t P = 8;
  constexpr std::uint64_t n = 8 * 128;
  const auto report = run_sort(P, n, h);
  const std::uint64_t expected = apps::bitonic_merge_steps(P) * (n / P);
  for (const auto& p : report.procs) {
    EXPECT_EQ(p.switches.remote_read, expected) << "h=" << h;
    EXPECT_EQ(p.reads_issued, expected);
  }
}

TEST_P(SwitchCounts, FftRemoteReadSwitchesDerivableFromNHP) {
  const std::uint32_t h = GetParam();
  constexpr std::uint32_t P = 8;
  constexpr std::uint64_t n = 8 * 64;
  const auto report = run_fft(P, n, h);
  // Two read packets per point (re + im) but ONE suspension: the MU's
  // two-operand direct matching resumes the thread when both arrive.
  for (const auto& p : report.procs) {
    EXPECT_EQ(p.switches.remote_read, ilog2(P) * (n / P)) << "h=" << h;
    EXPECT_EQ(p.reads_issued, ilog2(P) * (n / P) * 2) << "h=" << h;
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, SwitchCounts,
                         testing::Values(1u, 2u, 3u, 4u, 8u, 16u),
                         [](const auto& info) {
                           return "h" + std::to_string(info.param);
                         });

TEST(SwitchTaxonomy, SortHasThreadSyncFftDoesNot) {
  const auto sort_report = run_sort(8, 8 * 128, 4);
  const auto fft_report = run_fft(8, 8 * 128, 4);
  std::uint64_t sort_gate = 0, fft_gate = 0;
  for (const auto& p : sort_report.procs) sort_gate += p.switches.thread_sync;
  for (const auto& p : fft_report.procs) fft_gate += p.switches.thread_sync;
  EXPECT_GT(sort_gate, 0u) << "ordered merging must suspend some threads";
  EXPECT_EQ(fft_gate, 0u) << "FFT threads are free of thread synchronisation";
}

TEST(SwitchTaxonomy, IterationSyncGrowsWithThreads) {
  // More threads -> more barrier joins and more polling re-checks
  // (the paper's Figure 9 iteration-sync growth).
  const auto r2 = run_fft(8, 8 * 64, 2);
  const auto r8 = run_fft(8, 8 * 64, 8);
  EXPECT_GT(r8.mean_iter_sync_switches(), r2.mean_iter_sync_switches());
}

TEST(SwitchTaxonomy, SingleThreadHasNoGateSwitches) {
  const auto report = run_sort(4, 4 * 64, 1);
  for (const auto& p : report.procs) {
    EXPECT_EQ(p.switches.thread_sync, 0u);
  }
}

}  // namespace
}  // namespace emx
