// The parallel engine's contract: sharding PEs across host threads is
// invisible in every observable. For each registered workload, a run
// under --engine=par at 1, 2 and 4 shards must match the sequential
// engine bit for bit — final cycle, trace digest, result summary JSON,
// and the bytes of every checkpoint written along the way.
//
// Configurations the parallel engine does not support (detailed network,
// armed checkers, fault plans, watchdog) silently fall back to the
// sequential loop; those runs must also stay identical, which holds by
// construction but guards the gating logic itself.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/check_config.hpp"
#include "core/machine.hpp"
#include "snapshot/runner.hpp"

namespace emx::snapshot {
namespace {

RunManifest tiny(const std::string& app) {
  RunManifest m;
  m.app = app;
  m.size_per_proc = 64;
  m.threads = 2;
  m.seed = 1;
  m.config.proc_count = 4;
  return m;
}

RunResult run_with(const RunManifest& m, sim::EngineSpec engine,
                   const std::string& checkpoint_dir = "") {
  RunOptions opts;
  opts.manifest = m;
  opts.engine = engine;
  if (!checkpoint_dir.empty()) {
    opts.checkpoint_every = 2000;
    opts.checkpoint_dir = checkpoint_dir;
    std::filesystem::remove_all(checkpoint_dir);
  }
  return run(opts);
}

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

/// The full observable surface two engine choices must agree on.
void expect_identical(const RunManifest& m, const RunResult& seq,
                      const RunResult& par, const std::string& label) {
  EXPECT_EQ(seq.exit_code, par.exit_code) << label;
  EXPECT_EQ(seq.end_cycle, par.end_cycle) << label;
  EXPECT_EQ(seq.trace_events, par.trace_events) << label;
  EXPECT_EQ(seq.trace_crc, par.trace_crc) << label;
  EXPECT_EQ(seq.result_ok, par.result_ok) << label;
  EXPECT_EQ(seq.report.events_processed, par.report.events_processed)
      << label;
  // result_json covers the breakdown shares and network stats — the
  // merge-order statistics replay down to IEEE double bit patterns.
  EXPECT_EQ(result_json(m, seq), result_json(m, par)) << label;
}

sim::EngineSpec par_spec(std::uint32_t shards) {
  return {sim::EngineSpec::Kind::kParallel, shards};
}

class ParallelDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelDeterminism, ShardCountsMatchSequentialBitForBit) {
  const RunManifest m = tiny(GetParam());
  const RunResult seq = run_with(m, {});
  ASSERT_EQ(seq.exit_code, 0) << seq.error;
  ASSERT_TRUE(seq.result_ok);
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    const RunResult par = run_with(m, par_spec(shards));
    expect_identical(m, seq, par,
                     std::string(GetParam()) + " shards=" +
                         std::to_string(shards));
  }
}

TEST_P(ParallelDeterminism, CheckpointBytesAreEngineIndependent) {
  const RunManifest m = tiny(GetParam());
  const std::string seq_dir =
      ::testing::TempDir() + "emx_pd_seq_" + GetParam();
  const std::string par_dir =
      ::testing::TempDir() + "emx_pd_par_" + GetParam();
  const RunResult seq = run_with(m, {}, seq_dir);
  const RunResult par = run_with(m, par_spec(4), par_dir);
  ASSERT_EQ(seq.exit_code, 0) << seq.error;
  ASSERT_EQ(par.exit_code, 0) << par.error;
  ASSERT_EQ(seq.checkpoints_written.size(), par.checkpoints_written.size());
  for (std::size_t i = 0; i < seq.checkpoints_written.size(); ++i) {
    EXPECT_EQ(file_bytes(seq.checkpoints_written[i]),
              file_bytes(par.checkpoints_written[i]))
        << seq.checkpoints_written[i];
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, ParallelDeterminism,
                         ::testing::Values("sort", "fft", "fft-cyclic",
                                           "jacobi", "bfs", "spmv",
                                           "ptrchase", "histsort"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(ParallelFallback, ArmedCheckersStayIdenticalAcrossEngineFlags) {
  // Checkers pin the run to the sequential loop; asking for par must
  // neither crash nor perturb a single observable.
  RunManifest m = tiny("sort");
  m.config.check = analysis::CheckConfig::parse("all");
  const RunResult seq = run_with(m, {});
  const RunResult par = run_with(m, par_spec(4));
  ASSERT_EQ(seq.exit_code, 0) << seq.error;
  expect_identical(m, seq, par, "checkers armed");
}

TEST(ParallelFallback, ActiveFaultPlanStaysIdenticalAcrossEngineFlags) {
  RunManifest m = tiny("sort");
  m.config.fault.drop_rate = 0.01;
  m.config.fault.jitter_max_cycles = 8;
  const RunResult seq = run_with(m, {});
  const RunResult par = run_with(m, par_spec(4));
  ASSERT_EQ(seq.exit_code, 0) << seq.error;
  expect_identical(m, seq, par, "fault plan active");
}

TEST(ParallelFallback, GatingSelectsTheRightEngine) {
  const sim::EngineSpec par4 = {sim::EngineSpec::Kind::kParallel, 4};
  {
    MachineConfig cfg;
    cfg.proc_count = 4;
    Machine machine(cfg, nullptr, par4);
    EXPECT_STREQ(machine.engine_name(), "par");
    EXPECT_EQ(machine.engine_threads(), 4u);
  }
  {
    // Detailed network: no window participant, falls back.
    MachineConfig cfg;
    cfg.proc_count = 4;
    cfg.network = NetworkModel::kDetailed;
    Machine machine(cfg, nullptr, par4);
    EXPECT_STREQ(machine.engine_name(), "seq");
  }
  {
    // Watchdog wants a global progress view; falls back.
    MachineConfig cfg;
    cfg.proc_count = 4;
    cfg.watchdog_cycles = 1000;
    Machine machine(cfg, nullptr, par4);
    EXPECT_STREQ(machine.engine_name(), "seq");
  }
  {
    // Shard count is clamped to the PE count.
    MachineConfig cfg;
    cfg.proc_count = 2;
    Machine machine(cfg, nullptr, par4);
    EXPECT_STREQ(machine.engine_name(), "par");
    EXPECT_EQ(machine.engine_threads(), 2u);
  }
}

}  // namespace
}  // namespace emx::snapshot
