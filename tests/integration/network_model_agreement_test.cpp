// The fast endpoint-contention network is validated against the detailed
// per-hop Omega simulation: identical results, identical packet counts,
// and total cycle counts within a modest tolerance.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/bitonic.hpp"
#include "apps/fft.hpp"
#include "core/machine.hpp"

namespace emx {
namespace {

struct Outcome {
  Cycle cycles;
  std::uint64_t packets;
  std::vector<Word> result;
};

Outcome run_sort(NetworkModel net, std::uint32_t h) {
  MachineConfig cfg;
  cfg.proc_count = 8;
  cfg.network = net;
  Machine machine(cfg);
  apps::BitonicSortApp app(machine,
                           apps::BitonicParams{.n = 8 * 128, .threads = h});
  app.setup();
  machine.run();
  EXPECT_TRUE(app.verify());
  return {machine.end_cycle(), machine.report().network.packets_delivered,
          app.gather()};
}

class NetworkAgreement : public testing::TestWithParam<std::uint32_t> {};

TEST_P(NetworkAgreement, FastTracksDetailed) {
  const std::uint32_t h = GetParam();
  const Outcome fast = run_sort(NetworkModel::kFast, h);
  const Outcome detailed = run_sort(NetworkModel::kDetailed, h);
  EXPECT_EQ(fast.result, detailed.result);
  EXPECT_EQ(fast.packets, detailed.packets);
  const double rel =
      std::abs(static_cast<double>(fast.cycles) -
               static_cast<double>(detailed.cycles)) /
      static_cast<double>(detailed.cycles);
  EXPECT_LT(rel, 0.25) << "fast=" << fast.cycles
                       << " detailed=" << detailed.cycles;
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, NetworkAgreement,
                         testing::Values(1u, 2u, 4u),
                         [](const auto& info) {
                           return "h" + std::to_string(info.param);
                         });

TEST(NetworkAgreement, FftResultsIdenticalAcrossModels) {
  auto run = [](NetworkModel net) {
    MachineConfig cfg;
    cfg.proc_count = 8;
    cfg.network = net;
    Machine machine(cfg);
    apps::FftApp app(machine, apps::FftParams{.n = 8 * 64, .threads = 2,
                                              .include_local_phase = true});
    app.setup();
    machine.run();
    EXPECT_LT(app.verify_error(), 1e-5);
    return app.gather();
  };
  const auto fast = run(NetworkModel::kFast);
  const auto detailed = run(NetworkModel::kDetailed);
  ASSERT_EQ(fast.size(), detailed.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i], detailed[i]) << "point " << i;
  }
}

}  // namespace
}  // namespace emx
