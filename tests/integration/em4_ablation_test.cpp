// EM-X vs EM-4 read servicing (paper §2.1): the EM-4 "treats a remote
// read as another 1-instruction thread which consumes processor cycles.
// This consumption adversely affects the performance." The by-pass DMA is
// the EM-X fix. Both modes are implemented; by-pass must win.
#include <gtest/gtest.h>

#include "apps/bitonic.hpp"
#include "core/machine.hpp"

namespace emx {
namespace {

MachineReport run_mode(ReadServiceMode mode, std::uint32_t h) {
  MachineConfig cfg;
  cfg.proc_count = 8;
  cfg.read_service = mode;
  Machine machine(cfg);
  apps::BitonicSortApp app(machine,
                           apps::BitonicParams{.n = 8 * 256, .threads = h});
  app.setup();
  machine.run();
  EXPECT_TRUE(app.verify());
  return machine.report();
}

TEST(Em4Ablation, BypassDmaServicesReadsWithoutExuCycles) {
  const auto report = run_mode(ReadServiceMode::kBypassDma, 2);
  for (const auto& p : report.procs) {
    EXPECT_EQ(p.read_service, 0u);
    EXPECT_GT(p.dma_reads, 0u);
  }
}

TEST(Em4Ablation, ExuServiceConsumesProcessorCycles) {
  const auto report = run_mode(ReadServiceMode::kExuThread, 2);
  bool any_service = false;
  for (const auto& p : report.procs) {
    if (p.read_service > 0) any_service = true;
    EXPECT_EQ(p.dma_reads, 0u);  // reads never reach the DMA in EM-4 mode
  }
  EXPECT_TRUE(any_service);
}

TEST(Em4Ablation, BypassModeIsFaster) {
  for (std::uint32_t h : {1u, 4u}) {
    const Cycle emx_cycles = run_mode(ReadServiceMode::kBypassDma, h).total_cycles;
    const Cycle em4_cycles = run_mode(ReadServiceMode::kExuThread, h).total_cycles;
    EXPECT_LT(emx_cycles, em4_cycles) << "h=" << h;
  }
}

TEST(Em4Ablation, ResultsAgreeAcrossModes) {
  // The service mechanism changes timing, never values.
  auto run_result = [](ReadServiceMode mode) {
    MachineConfig cfg;
    cfg.proc_count = 4;
    cfg.read_service = mode;
    Machine machine(cfg);
    apps::BitonicSortApp app(machine,
                             apps::BitonicParams{.n = 4 * 64, .threads = 3});
    app.setup();
    machine.run();
    return app.gather();
  };
  EXPECT_EQ(run_result(ReadServiceMode::kBypassDma),
            run_result(ReadServiceMode::kExuThread));
}

}  // namespace
}  // namespace emx
