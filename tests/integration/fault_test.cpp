// Failure injection: every misuse of the machine must die loudly with a
// diagnosable message, never corrupt state silently.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "isa/interpreter.hpp"

namespace emx {
namespace {

TEST(Fault, UnknownEntryIdPanics) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine m(cfg);
  m.spawn(0, /*entry=*/9999, 0);
  EXPECT_DEATH(m.run(), "unknown thread entry");
}

TEST(Fault, SpawnToUnknownProcessorPanics) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine m(cfg);
  const auto entry = m.register_entry([](rt::ThreadApi api, Word) -> rt::ThreadBody {
    co_await api.compute(1);
  });
  EXPECT_DEATH(m.spawn(7, entry, 0), "out of range");
}

TEST(Fault, RemoteReadPastMemoryPanics) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  cfg.memory_words = 1024;
  Machine m(cfg);
  const auto entry = m.register_entry([](rt::ThreadApi api, Word) -> rt::ThreadBody {
    (void)co_await api.remote_read(rt::GlobalAddr{1, 5000});
  });
  m.spawn(0, entry, 0);
  EXPECT_DEATH(m.run(), "out of range");
}

TEST(Fault, SuspendedForeverIsReportedAsDeadlock) {
  // A thread waits on a gate nobody advances: the queue drains with a
  // live frame and the machine reports it instead of returning quietly.
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  static rt::OrderGate gate(4);
  gate.reset(4);
  const auto entry = m.register_entry([](rt::ThreadApi api, Word) -> rt::ThreadBody {
    co_await api.gate_wait(gate, 2);  // index 2 never opens
  });
  m.spawn(0, entry, 0);
  EXPECT_DEATH(m.run(), "live threads");
}

TEST(Fault, RunTwicePanics) {
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  const auto entry = m.register_entry([](rt::ThreadApi api, Word) -> rt::ThreadBody {
    co_await api.compute(1);
  });
  m.spawn(0, entry, 0);
  m.run();
  EXPECT_DEATH(m.run(), "called twice");
}

TEST(Fault, SpawnAfterRunPanics) {
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  const auto entry = m.register_entry([](rt::ThreadApi api, Word) -> rt::ThreadBody {
    co_await api.compute(1);
  });
  m.spawn(0, entry, 0);
  m.run();
  EXPECT_DEATH(m.spawn(0, entry, 0), "after run");
}

TEST(Fault, ReportBeforeRunPanics) {
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  EXPECT_DEATH((void)m.report(), "before run");
}

TEST(Fault, IsaStorePastMemoryPanics) {
  MachineConfig cfg;
  cfg.proc_count = 1;
  cfg.memory_words = 1024;
  Machine m(cfg);
  const auto entry = isa::register_source(m, R"(
    li    r2, 2000
    store r2, r2, 0
    halt
  )");
  m.spawn(0, entry, 0);
  EXPECT_DEATH(m.run(), "out of range");
}

TEST(Fault, EventBudgetCatchesRunawayMachines) {
  MachineConfig cfg;
  cfg.proc_count = 1;
  cfg.max_events = 2000;
  Machine m(cfg);
  // Endless self-spawning chain: the event budget must trip.
  std::uint32_t entry = 0;
  entry = m.register_entry([&entry](rt::ThreadApi api, Word) -> rt::ThreadBody {
    co_await api.spawn(0, entry, 0);
  });
  m.spawn(0, entry, 0);
  EXPECT_DEATH(m.run(), "event budget");
}

}  // namespace
}  // namespace emx
