#include "model/saavedra.hpp"

#include <gtest/gtest.h>

namespace emx::model {
namespace {

TEST(SaavedraModel, PaperParametersSaturateAtTwoToFourThreads) {
  // Sorting: R=12, L=20..40, C=7 -> "four threads have been found
  // adequate to mask off the latency of 20 to 40 clocks".
  MultithreadingModel fast_net{.run_length = 12, .latency = 20, .switch_cost = 7};
  MultithreadingModel slow_net{.run_length = 12, .latency = 40, .switch_cost = 7};
  EXPECT_GE(fast_net.saturation_threads(), 2.0);
  EXPECT_LE(fast_net.saturation_threads(), 3.0);
  EXPECT_GE(slow_net.saturation_threads(), 3.0);
  EXPECT_LE(slow_net.saturation_threads(), 4.5);
}

TEST(SaavedraModel, FftRunLengthSaturatesImmediately) {
  // FFT: hundreds of clocks of run length -> two threads suffice.
  MultithreadingModel m{.run_length = 250, .latency = 40, .switch_cost = 7};
  EXPECT_LT(m.saturation_threads(), 1.2);
  EXPECT_NEAR(m.efficiency(2.0), 250.0 / 257.0, 1e-9);
}

TEST(SaavedraModel, LinearRegionGrowsLinearly) {
  MultithreadingModel m{.run_length = 10, .latency = 100, .switch_cost = 5};
  const double e1 = m.efficiency(1.0);
  const double e2 = m.efficiency(2.0);
  const double e3 = m.efficiency(3.0);
  EXPECT_NEAR(e2 / e1, 2.0, 1e-9);
  EXPECT_NEAR(e3 / e1, 3.0, 1e-9);
}

TEST(SaavedraModel, SaturationEfficiencyIndependentOfLatency) {
  // "in the saturation region [performance] depends only on the remote
  //  reference rate and switch cost".
  MultithreadingModel a{.run_length = 10, .latency = 50, .switch_cost = 5};
  MultithreadingModel b{.run_length = 10, .latency = 500, .switch_cost = 5};
  EXPECT_DOUBLE_EQ(a.efficiency(100.0), b.efficiency(100.0));
  EXPECT_DOUBLE_EQ(a.efficiency(100.0), 10.0 / 15.0);
}

TEST(SaavedraModel, ExposedLatencyShrinksWithThreads) {
  MultithreadingModel m{.run_length = 12, .latency = 40, .switch_cost = 7};
  EXPECT_DOUBLE_EQ(m.exposed_latency(1.0), 40.0);
  EXPECT_DOUBLE_EQ(m.exposed_latency(2.0), 21.0);
  EXPECT_DOUBLE_EQ(m.exposed_latency(3.0), 2.0);
  EXPECT_DOUBLE_EQ(m.exposed_latency(4.0), 0.0);  // fully hidden
}

TEST(SaavedraModel, RegionClassification) {
  MultithreadingModel m{.run_length = 10, .latency = 100, .switch_cost = 10};
  // h_sat = 1 + 100/20 = 6.
  EXPECT_EQ(m.region(2.0), MultithreadingModel::Region::kLinear);
  EXPECT_EQ(m.region(6.0), MultithreadingModel::Region::kTransition);
  EXPECT_EQ(m.region(10.0), MultithreadingModel::Region::kSaturation);
  EXPECT_STREQ(MultithreadingModel::region_name(m.region(2.0)), "linear");
}

TEST(SaavedraModel, EfficiencyIsMonotoneNondecreasing) {
  MultithreadingModel m{.run_length = 12, .latency = 30, .switch_cost = 7};
  double prev = 0.0;
  for (double h = 1.0; h <= 16.0; h += 0.5) {
    const double e = m.efficiency(h);
    EXPECT_GE(e, prev);
    EXPECT_LE(e, 1.0);
    prev = e;
  }
}

}  // namespace
}  // namespace emx::model
