// Basic-block CFG construction: leaders, edges (including resume edges
// after suspend points), fall-off-end marking and reachability.
#include <gtest/gtest.h>

#include <algorithm>

#include "isa/builder.hpp"
#include "verify/cfg.hpp"

namespace emx::verify {
namespace {

isa::Instruction raw(isa::Opcode op, unsigned rd = 0, unsigned ra = 0,
                     unsigned rb = 0, std::int32_t imm = 0) {
  isa::Instruction i;
  i.op = op;
  i.rd = static_cast<std::uint8_t>(rd);
  i.ra = static_cast<std::uint8_t>(ra);
  i.rb = static_cast<std::uint8_t>(rb);
  i.imm = imm;
  return i;
}

TEST(Cfg, StraightLineIsOneBlock) {
  isa::CodeBuilder b;
  b.li(2, 1).li(3, 2).add(4, 2, 3).halt();
  const Cfg cfg = build_cfg(b.build());
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_EQ(cfg.entry().first, 0u);
  EXPECT_EQ(cfg.entry().last, 3u);
  EXPECT_TRUE(cfg.entry().succ.empty());
  EXPECT_FALSE(cfg.entry().falls_off_end);
  EXPECT_TRUE(cfg.reachable[0]);
}

TEST(Cfg, SuspendPointEndsItsBlock) {
  // yield suspends: the edge to the next instruction is the resume edge,
  // so the yield must terminate its block.
  isa::CodeBuilder b;
  b.li(2, 1).yield().addi(2, 2, 1).halt();
  const Cfg cfg = build_cfg(b.build());
  ASSERT_EQ(cfg.blocks.size(), 2u);
  EXPECT_EQ(cfg.blocks[0].last, 1u);  // ends at the yield
  EXPECT_EQ(cfg.blocks[1].first, 2u);
  ASSERT_EQ(cfg.blocks[0].succ.size(), 1u);
  EXPECT_EQ(cfg.blocks[0].succ[0], 1u);
  ASSERT_EQ(cfg.blocks[1].pred.size(), 1u);
  EXPECT_EQ(cfg.blocks[1].pred[0], 0u);
}

TEST(Cfg, EverySendClassSuspends) {
  using isa::Opcode;
  for (Opcode op : {Opcode::kRead, Opcode::kReadB, Opcode::kWrite,
                    Opcode::kSpawn, Opcode::kBarrier, Opcode::kYield}) {
    EXPECT_TRUE(is_suspend_point(op)) << isa::to_string(op);
  }
  for (Opcode op : {Opcode::kAdd, Opcode::kLoad, Opcode::kStore,
                    Opcode::kBeq, Opcode::kJmp, Opcode::kHalt,
                    Opcode::kFMark, Opcode::kProc}) {
    EXPECT_FALSE(is_suspend_point(op)) << isa::to_string(op);
  }
}

TEST(Cfg, ConditionalBranchMakesADiamond) {
  isa::CodeBuilder b;
  auto join = b.label();
  b.li(2, 1)
      .beq(1, 0, join)  // 1
      .li(3, 7)         // 2: fall-through arm
      .bind(join)
      .halt();  // 3
  const Cfg cfg = build_cfg(b.build());
  ASSERT_EQ(cfg.blocks.size(), 3u);
  // Block 0 = [0,1]: taken edge to the join block and fall-through.
  ASSERT_EQ(cfg.blocks[0].succ.size(), 2u);
  const std::uint32_t join_block = cfg.block_of[3];
  const std::uint32_t arm_block = cfg.block_of[2];
  EXPECT_NE(join_block, arm_block);
  EXPECT_NE(std::find(cfg.blocks[0].succ.begin(), cfg.blocks[0].succ.end(),
                      join_block),
            cfg.blocks[0].succ.end());
  EXPECT_NE(std::find(cfg.blocks[0].succ.begin(), cfg.blocks[0].succ.end(),
                      arm_block),
            cfg.blocks[0].succ.end());
  EXPECT_EQ(cfg.blocks[join_block].pred.size(), 2u);
}

TEST(Cfg, JmpHasOnlyTheTakenEdge) {
  isa::CodeBuilder b;
  auto end = b.label();
  b.li(2, 5).jmp(end).addi(2, 2, 1).bind(end).halt();
  const Cfg cfg = build_cfg(b.build());
  const std::uint32_t jmp_block = cfg.block_of[1];
  ASSERT_EQ(cfg.blocks[jmp_block].succ.size(), 1u);
  EXPECT_EQ(cfg.blocks[jmp_block].succ[0], cfg.block_of[3]);
  // The skipped instruction is its own, unreachable, block.
  EXPECT_FALSE(cfg.reachable[cfg.block_of[2]]);
  EXPECT_TRUE(cfg.reachable[cfg.block_of[3]]);
}

TEST(Cfg, LoopBackEdgeIsAnOrdinaryEdge) {
  isa::CodeBuilder b;
  auto loop = b.label();
  b.li(2, 0)
      .li(3, 4)
      .bind(loop)
      .addi(2, 2, 1)  // 2: loop header
      .yield()        // 3
      .blt(2, 3, loop)  // 4
      .halt();          // 5
  const Cfg cfg = build_cfg(b.build());
  const std::uint32_t header = cfg.block_of[2];
  const std::uint32_t latch = cfg.block_of[4];
  const auto& succ = cfg.blocks[latch].succ;
  EXPECT_NE(std::find(succ.begin(), succ.end(), header), succ.end());
  for (std::size_t i = 0; i < cfg.blocks.size(); ++i) {
    EXPECT_TRUE(cfg.reachable[i]) << "block " << i;
  }
}

TEST(Cfg, BlockOfCoversEveryInstruction) {
  isa::CodeBuilder b;
  auto l = b.label();
  b.li(2, 0).bind(l).addi(2, 2, 1).read(3, 2).blt(2, 3, l).halt();
  const isa::Program p = b.build();
  const Cfg cfg = build_cfg(p);
  ASSERT_EQ(cfg.block_of.size(), p.code.size());
  for (std::size_t i = 0; i < p.code.size(); ++i) {
    const std::uint32_t blk = cfg.block_of[i];
    ASSERT_NE(blk, kNoBlock) << "instr " << i;
    EXPECT_GE(i, cfg.blocks[blk].first);
    EXPECT_LE(i, cfg.blocks[blk].last);
  }
}

TEST(Cfg, FallThroughPastTheEndIsMarked) {
  // The builder refuses to emit such a program, so construct it by hand:
  // a lone addi with nothing after it.
  isa::Program p;
  p.code.push_back(raw(isa::Opcode::kAddi, 2, 0, 0, 1));
  const Cfg cfg = build_cfg(p);
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_TRUE(cfg.blocks[0].falls_off_end);
  EXPECT_TRUE(cfg.blocks[0].succ.empty());
}

TEST(Cfg, OutOfRangeTargetContributesNoEdge) {
  isa::Program p;
  p.code.push_back(raw(isa::Opcode::kBeq, 0, 1, 0, 99));  // target #99
  p.code.push_back(raw(isa::Opcode::kHalt));
  const Cfg cfg = build_cfg(p);
  const std::uint32_t branch_block = cfg.block_of[0];
  // Only the fall-through edge; the bogus target adds nothing.
  ASSERT_EQ(cfg.blocks[branch_block].succ.size(), 1u);
  EXPECT_EQ(cfg.blocks[branch_block].succ[0], cfg.block_of[1]);
}

}  // namespace
}  // namespace emx::verify
