// The pre-run gate: gate-mode parsing, the Machine-side ISA program
// registry the gate walks, the runner wiring, and the clean-pass
// contract over every registry workload.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "isa/interpreter.hpp"
#include "snapshot/runner.hpp"
#include "verify/verifier.hpp"
#include "workloads/registry.hpp"

namespace emx::verify {
namespace {

TEST(GateMode, ParsesTheThreeModes) {
  GateMode mode = GateMode::kOff;
  EXPECT_TRUE(parse_gate_mode("off", mode));
  EXPECT_EQ(mode, GateMode::kOff);
  EXPECT_TRUE(parse_gate_mode("warn", mode));
  EXPECT_EQ(mode, GateMode::kWarn);
  EXPECT_TRUE(parse_gate_mode("error", mode));
  EXPECT_EQ(mode, GateMode::kError);
}

TEST(GateMode, RejectsEverythingElse) {
  GateMode mode = GateMode::kWarn;
  EXPECT_FALSE(parse_gate_mode("", mode));
  EXPECT_FALSE(parse_gate_mode("on", mode));
  EXPECT_FALSE(parse_gate_mode("Error", mode));
  EXPECT_FALSE(parse_gate_mode("error ", mode));
  // A failed parse must leave the mode untouched.
  EXPECT_EQ(mode, GateMode::kWarn);
}

TEST(MachineIsaRegistry, RegisteredProgramsAreRecorded) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine m(cfg);
  EXPECT_TRUE(m.isa_programs().empty());
  (void)isa::register_source(m, R"(
      li   r2, 1
      halt
  )");
  (void)isa::register_source(m, R"(
      yield
      halt
  )");
  ASSERT_EQ(m.isa_programs().size(), 2u);
  EXPECT_EQ(m.isa_programs()[0]->code.size(), 2u);
  // ...and the recorded programs are exactly what the verifier sees.
  for (const auto& p : m.isa_programs()) {
    EXPECT_TRUE(verify_program(*p).clean());
  }
}

// The headline contract: every workload in the registry builds programs
// the static verifier accepts. Today all eight are coroutine-native
// (zero ISA programs — trivially clean); any future ISA-level workload
// is automatically held to the same bar by this test.
TEST(GateCleanPass, EveryRegistryWorkloadVerifiesClean) {
  for (const workloads::Spec& spec : workloads::Registry::instance().specs()) {
    MachineConfig cfg;
    cfg.proc_count = 8;
    Machine m(cfg);
    workloads::Params params;
    params.size_per_proc = spec.default_size_per_proc;
    params.threads = spec.default_threads;
    params.seed = 1;
    std::string error;
    auto workload = workloads::build(m, spec.name, params, error);
    ASSERT_NE(workload, nullptr) << spec.name << ": " << error;
    for (std::size_t i = 0; i < m.isa_programs().size(); ++i) {
      const Report r = verify_program(*m.isa_programs()[i],
                                      spec.name + " #" + std::to_string(i));
      EXPECT_TRUE(r.clean()) << r.summary_text();
    }
  }
}

// End-to-end through the snapshot runner: the gate in error mode must
// not disturb a clean run (and the run must still verify its result).
TEST(GateRunner, ErrorModeIsTransparentForCleanWorkloads) {
  snapshot::RunOptions opts;
  opts.manifest.app = "sort";
  opts.manifest.size_per_proc = 32;
  opts.manifest.threads = 2;
  opts.manifest.config.proc_count = 4;
  opts.verify_static = GateMode::kError;
  const snapshot::RunResult res = snapshot::run(opts);
  EXPECT_EQ(res.exit_code, 0) << res.error;
  EXPECT_TRUE(res.result_ok);
}

TEST(GateRunner, OffModeMatchesErrorModeCycleForCycle) {
  auto run_with = [](GateMode mode) {
    snapshot::RunOptions opts;
    opts.manifest.app = "bfs";
    opts.manifest.size_per_proc = 64;
    opts.manifest.threads = 2;
    opts.manifest.config.proc_count = 4;
    opts.verify_static = mode;
    return snapshot::run(opts);
  };
  const snapshot::RunResult off = run_with(GateMode::kOff);
  const snapshot::RunResult err = run_with(GateMode::kError);
  EXPECT_EQ(off.exit_code, 0);
  EXPECT_EQ(err.exit_code, 0);
  // Pure analysis: the gate may never perturb simulation.
  EXPECT_EQ(off.end_cycle, err.end_cycle);
  EXPECT_EQ(off.trace_events, err.trace_events);
  EXPECT_EQ(off.trace_crc, err.trace_crc);
}

}  // namespace
}  // namespace emx::verify
