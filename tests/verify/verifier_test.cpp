// Golden-diagnostic tests: one deliberately buggy program per finding
// kind, each yielding exactly the expected finding at the expected
// instruction — plus clean programs that must stay clean. Mirrors the
// dynamic memcheck_isa_test suite one layer earlier in the pipeline.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/builder.hpp"
#include "verify/verifier.hpp"

namespace emx::verify {
namespace {

isa::Instruction raw(isa::Opcode op, unsigned rd = 0, unsigned ra = 0,
                     unsigned rb = 0, std::int32_t imm = 0) {
  isa::Instruction i;
  i.op = op;
  i.rd = static_cast<std::uint8_t>(rd);
  i.ra = static_cast<std::uint8_t>(ra);
  i.rb = static_cast<std::uint8_t>(rb);
  i.imm = imm;
  return i;
}

// --- use-before-def ------------------------------------------------------

TEST(VerifyUseBeforeDef, DefinitionMissingOnOnePath) {
  isa::CodeBuilder b;
  auto skip = b.label();
  b.li(2, 1)
      .beq(1, 0, skip)
      .li(4, 7)  // defines r4 on the not-taken path only
      .bind(skip)
      .add(5, 4, 2)  // 3: r4 undefined when the branch is taken
      .halt();
  const Report r = verify_program(b.build());
  ASSERT_EQ(r.count(FindingKind::kUseBeforeDef), 1u);
  const Finding& f = r.findings[0];
  EXPECT_EQ(f.instr, 3u);
  EXPECT_EQ(f.severity, Severity::kError);
  EXPECT_NE(f.message.find("r4"), std::string::npos);
}

TEST(VerifyUseBeforeDef, DefinedOnAllPathsIsClean) {
  isa::CodeBuilder b;
  auto else_ = b.label();
  auto join = b.label();
  b.beq(1, 0, else_)
      .li(4, 7)
      .jmp(join)
      .bind(else_)
      .li(4, 9)
      .bind(join)
      .add(5, 4, 4)
      .halt();
  EXPECT_TRUE(verify_program(b.build()).clean());
}

TEST(VerifyUseBeforeDef, SpawnArgAndZeroArePredefined) {
  // r0 and r1 (the spawn argument) are live on entry; nothing else is.
  isa::CodeBuilder b;
  b.add(2, 1, 0).halt();
  EXPECT_TRUE(verify_program(b.build()).clean());
}

TEST(VerifyUseBeforeDef, ReadDestinationLiveOnlyAfterResume) {
  // read defines its destination on the resume edge, so using it in the
  // *same* straight-line program after the read is fine...
  isa::CodeBuilder b;
  b.li(2, 3).gaddr(3, 0, 2).read(4, 3).add(5, 4, 4).halt();
  EXPECT_TRUE(verify_program(b.build()).clean());
}

TEST(VerifyReadIntoZero, ReplyIntoHardwiredZeroIsAnError) {
  isa::CodeBuilder b;
  b.li(2, 3).gaddr(3, 0, 2).read(0, 3).halt();
  const Report r = verify_program(b.build());
  ASSERT_EQ(r.count(FindingKind::kReadIntoZero), 1u);
  EXPECT_EQ(r.findings[0].instr, 2u);
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
}

// --- frame-region balance ------------------------------------------------

TEST(VerifyFrames, DropWithoutMarkIsAnUnderflow) {
  isa::CodeBuilder b;
  b.li(2, 100).fdrop(2).halt();
  const Report r = verify_program(b.build());
  ASSERT_EQ(r.count(FindingKind::kFrameUnderflow), 1u);
  EXPECT_EQ(r.findings[0].instr, 1u);
}

TEST(VerifyFrames, PathSkippingTheDropLeaks) {
  isa::CodeBuilder b;
  auto done = b.label();
  b.li(2, 100)
      .li(3, 4)
      .fmark(2, 3)
      .beq(1, 0, done)  // skips the drop
      .fdrop(2)
      .bind(done)
      .halt();
  const Report r = verify_program(b.build());
  EXPECT_EQ(r.count(FindingKind::kFramePathMismatch), 1u);
  EXPECT_EQ(r.count(FindingKind::kFrameLeak), 1u);
  EXPECT_GE(r.errors(), 2u);
}

TEST(VerifyFrames, BalancedDiamondIsClean) {
  isa::CodeBuilder b;
  auto else_ = b.label();
  auto join = b.label();
  b.li(2, 100)
      .li(3, 4)
      .beq(1, 0, else_)
      .fmark(2, 3)
      .fdrop(2)
      .jmp(join)
      .bind(else_)
      .fmark(2, 3)
      .fdrop(2)
      .bind(join)
      .halt();
  EXPECT_TRUE(verify_program(b.build()).clean());
}

TEST(VerifyFrames, LoopChangingDepthPerIteration) {
  // Each trip marks one region and never drops it: depth grows without
  // bound, so the back edge sees a non-zero per-iteration delta.
  isa::CodeBuilder b;
  auto loop = b.label();
  b.li(2, 100)
      .li(3, 4)
      .li(4, 0)
      .bind(loop)
      .fmark(2, 3)
      .addi(4, 4, 1)
      .yield()
      .blt(4, 3, loop)
      .halt();
  const Report r = verify_program(b.build());
  EXPECT_GE(r.count(FindingKind::kFramePathMismatch) +
                r.count(FindingKind::kFrameLeak),
            1u);
  EXPECT_FALSE(r.clean());
}

// --- barrier-count consistency -------------------------------------------

TEST(VerifyBarriers, PathSkippingTheBarrierMismatches) {
  isa::CodeBuilder b;
  auto skip = b.label();
  auto loop = b.label();
  b.li(2, 0)
      .li(3, 4)
      .bind(loop)
      .beq(1, 0, skip)
      .barrier()
      .bind(skip)
      .addi(2, 2, 1)
      .blt(2, 3, loop)
      .halt();
  const Report r = verify_program(b.build());
  ASSERT_GE(r.count(FindingKind::kBarrierPathMismatch), 1u);
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
}

TEST(VerifyBarriers, BarrierOnBothArmsIsClean) {
  isa::CodeBuilder b;
  auto else_ = b.label();
  auto join = b.label();
  b.beq(1, 0, else_)
      .barrier()
      .jmp(join)
      .bind(else_)
      .barrier()
      .bind(join)
      .halt();
  EXPECT_TRUE(verify_program(b.build()).clean());
}

TEST(VerifyBarriers, SameCountEveryIterationIsClean) {
  isa::CodeBuilder b;
  auto loop = b.label();
  b.li(2, 0).li(3, 4).bind(loop).barrier().addi(2, 2, 1).blt(2, 3, loop).halt();
  EXPECT_TRUE(verify_program(b.build()).clean());
}

// --- structural lints ----------------------------------------------------

TEST(VerifyStructure, UnreachableBlockIsAWarning) {
  isa::CodeBuilder b;
  auto end = b.label();
  b.li(2, 5).jmp(end).addi(2, 2, 1).bind(end).halt();
  const Report r = verify_program(b.build());
  ASSERT_EQ(r.count(FindingKind::kUnreachableCode), 1u);
  EXPECT_EQ(r.findings[0].severity, Severity::kWarning);
  EXPECT_EQ(r.warnings(), 1u);
  EXPECT_EQ(r.errors(), 0u);
}

TEST(VerifyStructure, FallOffEndIsAnError) {
  isa::Program p;
  p.code.push_back(raw(isa::Opcode::kLi, 2, 0, 0, 1));
  p.code.push_back(raw(isa::Opcode::kAddi, 2, 2, 0, 1));
  const Report r = verify_program(p);
  ASSERT_EQ(r.count(FindingKind::kFallOffEnd), 1u);
  EXPECT_EQ(r.findings.back().severity, Severity::kError);
}

TEST(VerifyStructure, BranchTargetOutsideTheProgram) {
  isa::Program p;
  p.code.push_back(raw(isa::Opcode::kBeq, 0, 1, 0, 99));
  p.code.push_back(raw(isa::Opcode::kHalt));
  const Report r = verify_program(p);
  ASSERT_EQ(r.count(FindingKind::kBranchOutOfRange), 1u);
  EXPECT_EQ(r.findings[0].instr, 0u);
}

TEST(VerifyStructure, NonPositiveBlockReadLength) {
  isa::Program p;
  p.code.push_back(raw(isa::Opcode::kLi, 2, 0, 0, 3));
  p.code.push_back(raw(isa::Opcode::kGaddr, 3, 0, 2));
  p.code.push_back(raw(isa::Opcode::kReadB, 0, 3, 4, 0));  // zero words
  p.code.push_back(raw(isa::Opcode::kHalt));
  const Report r = verify_program(p);
  ASSERT_EQ(r.count(FindingKind::kBadBlockReadLength), 1u);
  EXPECT_EQ(r.findings[0].instr, 2u);
}

TEST(VerifySpin, LoopWithoutSuspendPointWarns) {
  isa::CodeBuilder b;
  auto loop = b.label();
  b.li(2, 0).bind(loop).addi(2, 2, 1).jmp(loop);
  const Report r = verify_program(b.build());
  ASSERT_EQ(r.count(FindingKind::kSpinWithoutSuspend), 1u);
  EXPECT_EQ(r.findings[0].severity, Severity::kWarning);
}

TEST(VerifySpin, LoopWithAYieldIsClean) {
  isa::CodeBuilder b;
  auto loop = b.label();
  b.li(2, 0).li(3, 9).bind(loop).addi(2, 2, 1).yield().blt(2, 3, loop).halt();
  EXPECT_TRUE(verify_program(b.build()).clean());
}

// --- report plumbing -----------------------------------------------------

TEST(VerifyReport, AssembledProgramsCarrySourceLines) {
  const isa::Program p = isa::assemble(R"(
      li   r2, 1
      beq  r1, r0, skip
      li   r4, 7
  skip:
      add  r5, r4, r2
      halt
  )");
  ASSERT_EQ(p.lines.size(), p.code.size());
  const Report r = verify_program(p, "inline.emx");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].kind, FindingKind::kUseBeforeDef);
  // The add sits on source line 6 of the raw string above (the string
  // opens with a newline, so its first text line is line 2).
  EXPECT_EQ(r.findings[0].line, 6u);
  EXPECT_NE(r.findings[0].describe().find("(line 6)"), std::string::npos);
  EXPECT_NE(r.summary_text().find("inline.emx"), std::string::npos);
}

TEST(VerifyReport, FindingsAreSortedByInstruction) {
  // Two independent problems; the report must list them in program order.
  isa::CodeBuilder b;
  auto end = b.label();
  b.li(2, 100)
      .fdrop(2)  // 1: underflow
      .jmp(end)
      .addi(2, 2, 1)  // 3: unreachable
      .bind(end)
      .halt();
  const Report r = verify_program(b.build());
  ASSERT_GE(r.findings.size(), 2u);
  for (std::size_t i = 1; i < r.findings.size(); ++i) {
    EXPECT_LE(r.findings[i - 1].instr, r.findings[i].instr);
  }
}

TEST(VerifyReport, DescribeNamesKindAndSeverity) {
  isa::CodeBuilder b;
  b.li(2, 100).fdrop(2).halt();
  const Report r = verify_program(b.build());
  ASSERT_EQ(r.findings.size(), 1u);
  const std::string text = r.findings[0].describe();
  EXPECT_NE(text.find("error"), std::string::npos);
  EXPECT_NE(text.find("frame-underflow"), std::string::npos);
  EXPECT_NE(text.find("#1"), std::string::npos);
}

TEST(VerifyReport, ToStringCoversEveryKind) {
  for (std::size_t k = 0; k < kFindingKindCount; ++k) {
    const char* name = to_string(static_cast<FindingKind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
}

}  // namespace
}  // namespace emx::verify
