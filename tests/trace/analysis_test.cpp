#include "trace/analysis.hpp"

#include <gtest/gtest.h>

#include "apps/bitonic.hpp"
#include "core/machine.hpp"

namespace emx::trace {
namespace {

TEST(ReadLatency, PairsIssueWithReturn) {
  std::vector<TraceEvent> events = {
      {100, 0, 1, EventType::kReadIssue, 0},
      {130, 0, 1, EventType::kReadReturn, 0},
      {200, 0, 2, EventType::kReadIssue, 0},
      {260, 0, 2, EventType::kReadReturn, 0},
  };
  const auto a = analyze_read_latency(events);
  EXPECT_EQ(a.latency.count(), 2u);
  EXPECT_DOUBLE_EQ(a.latency.mean(), 45.0);
  EXPECT_DOUBLE_EQ(a.latency.min(), 30.0);
  EXPECT_DOUBLE_EQ(a.latency.max(), 60.0);
}

TEST(ReadLatency, PairedReadsAnchorOnFirstIssue) {
  // Two issues (a remote_read_pair), one resuming return.
  std::vector<TraceEvent> events = {
      {10, 0, 1, EventType::kReadIssue, 0},
      {12, 0, 1, EventType::kReadIssue, 0},
      {50, 0, 1, EventType::kReadReturn, 0},  // match-store of token 1
      {55, 0, 1, EventType::kReadReturn, 0},  // resumes the thread
  };
  const auto a = analyze_read_latency(events);
  ASSERT_EQ(a.latency.count(), 1u);
  EXPECT_DOUBLE_EQ(a.latency.mean(), 40.0);  // 50 - 10
}

TEST(ThreadProfiles, CountLifecycleEvents) {
  std::vector<TraceEvent> events = {
      {0, 2, 7, EventType::kThreadInvoke, 0},
      {5, 2, 7, EventType::kReadIssue, 0},
      {6, 2, 7, EventType::kSuspendRead, 0},
      {40, 2, 7, EventType::kReadReturn, 0},
      {50, 2, 7, EventType::kSuspendBarrier, 0},
      {80, 2, 7, EventType::kBarrierPoll, 0},
      {120, 2, 7, EventType::kBarrierPass, 0},
      {125, 2, 7, EventType::kThreadEnd, 0},
  };
  const auto profiles = profile_threads(events);
  ASSERT_EQ(profiles.size(), 1u);
  const ThreadProfile& p = profiles[0];
  EXPECT_EQ(p.proc, 2u);
  EXPECT_EQ(p.thread, 7u);
  EXPECT_EQ(p.reads, 1u);
  EXPECT_EQ(p.suspensions, 2u);
  EXPECT_EQ(p.barrier_polls, 1u);
  EXPECT_TRUE(p.completed);
  EXPECT_EQ(p.lifetime(), 125u);
}

TEST(ThreadProfiles, RealRunAllThreadsComplete) {
  MachineConfig cfg;
  cfg.proc_count = 4;
  VectorTraceSink sink;
  Machine m(cfg, &sink);
  apps::BitonicSortApp app(m, apps::BitonicParams{.n = 4 * 32, .threads = 2});
  app.setup();
  m.run();

  const auto profiles = profile_threads(sink.events());
  const auto stats = summarize_concurrency(profiles);
  EXPECT_EQ(stats.completed, stats.threads);
  // 8 workers plus barrier coordinator invocations on PE 0.
  EXPECT_GE(stats.threads, 8u);
  EXPECT_GT(stats.lifetime_cycles.mean(), 0.0);

  const auto latency = analyze_read_latency(sink.events());
  // Every read returned; latency within physical bounds.
  std::uint64_t reads = 0;
  for (const auto& pr : m.report().procs) reads += pr.switches.remote_read;
  EXPECT_EQ(latency.latency.count(), reads);
  EXPECT_GE(latency.latency.min(), 10.0);
  EXPECT_LT(latency.latency.max(), 2000.0);
}

}  // namespace
}  // namespace emx::trace
