#include "trace/gantt.hpp"

#include <gtest/gtest.h>

#include "core/machine.hpp"

namespace emx::trace {
namespace {

TEST(Gantt, EmptyTraceRenders) {
  EXPECT_EQ(render_gantt({}), "(no trace events)\n");
}

TEST(Gantt, LanesAppearPerProcThread) {
  std::vector<TraceEvent> events;
  events.push_back({0, 0, 0, EventType::kThreadInvoke, 0});
  events.push_back({10, 0, 0, EventType::kSuspendRead, 0});
  events.push_back({30, 0, 0, EventType::kReadReturn, 0});
  events.push_back({40, 0, 0, EventType::kThreadEnd, 0});
  events.push_back({5, 1, 2, EventType::kThreadInvoke, 0});
  events.push_back({25, 1, 2, EventType::kThreadEnd, 0});
  const std::string art = render_gantt(events, {.width = 40});
  EXPECT_NE(art.find("P0   T0"), std::string::npos);
  EXPECT_NE(art.find("P1   T2"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);   // running span
  EXPECT_NE(art.find('.'), std::string::npos);   // suspended-on-read span
  EXPECT_NE(art.find("legend"), std::string::npos);
}

TEST(Gantt, WindowClipsEvents) {
  std::vector<TraceEvent> events;
  events.push_back({0, 0, 0, EventType::kThreadInvoke, 0});
  events.push_back({1000, 0, 0, EventType::kThreadEnd, 0});
  const std::string art = render_gantt(
      events, {.width = 10, .start = 2000, .end = 3000, .show_legend = false});
  // Nothing alive in the window: the lane stays blank.
  EXPECT_EQ(art.find('#'), std::string::npos);
}

TEST(Gantt, EventLogListsEvents) {
  std::vector<TraceEvent> events;
  events.push_back({12, 3, 7, EventType::kReadIssue, 0x42});
  const std::string log = render_event_log(events);
  EXPECT_NE(log.find("READ_ISSUE"), std::string::npos);
  EXPECT_NE(log.find("P3"), std::string::npos);
  EXPECT_NE(log.find("0x42"), std::string::npos);
}

TEST(Gantt, EventLogTruncates) {
  std::vector<TraceEvent> events(50, TraceEvent{1, 0, 0, EventType::kBarrierPoll, 0});
  const std::string log = render_event_log(events, 10);
  EXPECT_NE(log.find("truncated"), std::string::npos);
}

TEST(Gantt, RealMachineTraceRendersEveryThread) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  VectorTraceSink sink;
  Machine m(cfg, &sink);
  const auto entry = m.register_entry([](rt::ThreadApi api, Word) -> rt::ThreadBody {
    co_await api.compute(20);
    (void)co_await api.remote_read(
        rt::GlobalAddr{static_cast<ProcId>(1 - api.proc()), rt::kReservedWords});
  });
  m.spawn(0, entry, 0);
  m.spawn(1, entry, 0);
  m.run();
  const std::string art = render_gantt(sink.events());
  EXPECT_NE(art.find("P0"), std::string::npos);
  EXPECT_NE(art.find("P1"), std::string::npos);
}

TEST(TraceSink, FiltersByTypeAndProc) {
  VectorTraceSink sink;
  sink.on_event({1, 0, 0, EventType::kReadIssue, 0});
  sink.on_event({2, 1, 0, EventType::kReadIssue, 0});
  sink.on_event({3, 0, 0, EventType::kThreadEnd, 0});
  EXPECT_EQ(sink.filtered(EventType::kReadIssue).size(), 2u);
  EXPECT_EQ(sink.for_proc(0).size(), 2u);
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
}

}  // namespace
}  // namespace emx::trace
