// Trace coverage for the fault/reliability event types: to_string must
// name every EventType distinctly, and the Gantt renderer must show the
// recovery glyph for a thread riding out a timeout + retry.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "trace/gantt.hpp"
#include "trace/trace.hpp"

namespace emx::trace {
namespace {

TEST(TraceToString, EveryEventTypeHasADistinctName) {
  constexpr auto kFirst = EventType::kThreadInvoke;
  constexpr auto kLast = EventType::kOutageEnd;
  std::set<std::string> names;
  for (auto t = static_cast<std::uint8_t>(kFirst);
       t <= static_cast<std::uint8_t>(kLast); ++t) {
    const std::string name = to_string(static_cast<EventType>(t));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?") << "unnamed event type " << unsigned(t);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_EQ(names.size(),
            static_cast<std::size_t>(kLast) - static_cast<std::size_t>(kFirst) + 1);
}

TEST(TraceToString, FaultEventNames) {
  EXPECT_STREQ(to_string(EventType::kFaultInject), "FAULT_INJECT");
  EXPECT_STREQ(to_string(EventType::kReadTimeout), "READ_TIMEOUT");
  EXPECT_STREQ(to_string(EventType::kReadRetry), "READ_RETRY");
  EXPECT_STREQ(to_string(EventType::kMsgRetransmit), "MSG_RETRANSMIT");
  EXPECT_STREQ(to_string(EventType::kAckSend), "ACK_SEND");
  EXPECT_STREQ(to_string(EventType::kOutageBegin), "OUTAGE_BEGIN");
  EXPECT_STREQ(to_string(EventType::kOutageEnd), "OUTAGE_END");
}

TEST(Gantt, RecoveryGlyphMarksTimeoutAndRetrySpans) {
  // A thread suspends on a read, the reply is lost, the timer fires and
  // the request is retried; the lane switches from '.' (waiting) to '!'
  // (recovering) until the reply finally lands.
  std::vector<TraceEvent> events;
  events.push_back({0, 0, 0, EventType::kThreadInvoke, 0});
  events.push_back({10, 0, 0, EventType::kSuspendRead, 0});
  events.push_back({50, 0, 0, EventType::kReadTimeout, 1});
  events.push_back({52, 0, 0, EventType::kReadRetry, 1});
  events.push_back({80, 0, 0, EventType::kReadReturn, 0});
  events.push_back({100, 0, 0, EventType::kThreadEnd, 0});
  const std::string art = render_gantt(events, {.width = 50});
  EXPECT_NE(art.find('!'), std::string::npos);  // recovery span rendered
  EXPECT_NE(art.find('.'), std::string::npos);  // plain wait still there
  EXPECT_NE(art.find("recovery in flight"), std::string::npos);  // legend
}

TEST(Gantt, FaultInjectDoesNotDisturbTheLane) {
  // kFaultInject is a network-side marker; a running thread's lane must
  // keep its '#' state straight through it. The injection itself shows
  // up on the per-PE net row, not in the lane.
  std::vector<TraceEvent> events;
  events.push_back({0, 0, 0, EventType::kThreadInvoke, 0});
  events.push_back({20, 0, kInvalidThread, EventType::kFaultInject, 0});
  events.push_back({40, 0, 0, EventType::kThreadEnd, 0});
  const std::string art = render_gantt(events, {.width = 40, .show_legend = false});
  const auto lane_end = art.find("net");
  ASSERT_NE(lane_end, std::string::npos);  // net overlay row exists
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_EQ(art.substr(0, lane_end).find('!'), std::string::npos);
  EXPECT_NE(art.find('!', lane_end), std::string::npos);
}

TEST(Gantt, NetRowsGiveEachFaultEventClassItsOwnGlyph) {
  // S6: '!' used to conflate every fault event; retransmits, ACKs and
  // outage windows now render distinctly on the per-PE net rows.
  std::vector<TraceEvent> events;
  events.push_back({0, 0, 0, EventType::kThreadInvoke, 0});
  events.push_back({5, 0, kInvalidThread, EventType::kFaultInject, 0});
  events.push_back({20, 0, kInvalidThread, EventType::kAckSend, 7});
  events.push_back({40, 0, kInvalidThread, EventType::kMsgRetransmit, 7});
  events.push_back({50, 1, kInvalidThread, EventType::kOutageBegin, 80});
  events.push_back({80, 1, kInvalidThread, EventType::kOutageEnd, 0});
  events.push_back({100, 0, 0, EventType::kThreadEnd, 0});
  const std::string art = render_gantt(events, {.width = 50});
  EXPECT_NE(art.find('!'), std::string::npos);
  EXPECT_NE(art.find('a'), std::string::npos);
  EXPECT_NE(art.find('R'), std::string::npos);
  EXPECT_NE(art.find("XXX"), std::string::npos);  // the window is a span
  EXPECT_NE(art.find("'X' PE outage window"), std::string::npos);
}

TEST(Gantt, OverlappingOutageAndRetransmitStayDistinct) {
  // An outage on P1 while P0 retransmits into it: the two PEs' net rows
  // keep separate glyphs, and within P1's row the outage span wins.
  std::vector<TraceEvent> events;
  events.push_back({0, 0, 0, EventType::kThreadInvoke, 0});
  events.push_back({10, 1, kInvalidThread, EventType::kOutageBegin, 60});
  events.push_back({30, 0, kInvalidThread, EventType::kMsgRetransmit, 3});
  events.push_back({40, 1, kInvalidThread, EventType::kAckSend, 3});
  events.push_back({60, 1, kInvalidThread, EventType::kOutageEnd, 0});
  events.push_back({90, 0, 0, EventType::kThreadEnd, 0});
  const std::string art = render_gantt(events, {.width = 45, .show_legend = false});
  // Find the two net rows.
  const auto p0 = art.find("P0   net");
  const auto p1 = art.find("P1   net");
  ASSERT_NE(p0, std::string::npos);
  ASSERT_NE(p1, std::string::npos);
  const std::string row0 = art.substr(p0, art.find('\n', p0) - p0);
  const std::string row1 = art.substr(p1, art.find('\n', p1) - p1);
  EXPECT_NE(row0.find('R'), std::string::npos);
  EXPECT_NE(row1.find('X'), std::string::npos);
  // The ACK at cycle 40 falls inside the outage window; the span paints
  // over it so the dead PE reads as dead.
  EXPECT_EQ(row1.find('a'), std::string::npos);
}

TEST(Gantt, EventLogShowsFaultEvents) {
  std::vector<TraceEvent> events;
  events.push_back({12, 3, 7, EventType::kReadTimeout, 5});
  events.push_back({14, 3, 7, EventType::kReadRetry, 5});
  const std::string log = render_event_log(events);
  EXPECT_NE(log.find("READ_TIMEOUT"), std::string::npos);
  EXPECT_NE(log.find("READ_RETRY"), std::string::npos);
}

TEST(Gantt, RealFaultedRunEmitsRecoveryEvents) {
  // Drive a real machine with a scheduled drop and confirm the trace
  // carries the whole recovery arc: inject -> timeout -> retry.
  MachineConfig cfg;
  cfg.proc_count = 2;
  cfg.fault.scheduled.push_back({.nth = 1, .kind = fault::FaultKind::kDrop});
  cfg.fault.timeout_cycles = 128;
  VectorTraceSink sink;
  Machine m(cfg, &sink);
  const auto entry = m.register_entry([](rt::ThreadApi api, Word) -> rt::ThreadBody {
    (void)co_await api.remote_read(
        rt::GlobalAddr{static_cast<ProcId>(1 - api.proc()), rt::kReservedWords});
  });
  m.spawn(0, entry, 0);
  m.run();
  EXPECT_EQ(sink.filtered(EventType::kFaultInject).size(), 1u);
  EXPECT_EQ(sink.filtered(EventType::kReadTimeout).size(), 1u);
  EXPECT_EQ(sink.filtered(EventType::kReadRetry).size(), 1u);
  const std::string art = render_gantt(sink.events());
  EXPECT_NE(art.find('!'), std::string::npos);
}

}  // namespace
}  // namespace emx::trace
