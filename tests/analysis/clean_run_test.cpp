// The two acceptance properties of the analysis layer on real workloads:
//
//  1. Arming every checker changes no reported cycle count — the checker
//     is a pure observer (no charges, no events).
//  2. The seed applications run clean: zero diagnostics, with the
//     activity counters proving the checkers actually looked.
#include <gtest/gtest.h>

#include "apps/bitonic.hpp"
#include "apps/fft.hpp"
#include "apps/jacobi.hpp"
#include "core/machine.hpp"

namespace emx::analysis {
namespace {

template <typename App, typename Params>
MachineReport run_app(const MachineConfig& cfg, const Params& params) {
  Machine m(cfg);
  App app(m, params);
  app.setup();
  m.run();
  return m.report();
}

template <typename App, typename Params>
void expect_identical_and_clean(MachineConfig cfg, const Params& params) {
  cfg.check = CheckConfig{};
  const MachineReport off = run_app<App>(cfg, params);
  EXPECT_FALSE(off.check_enabled);

  cfg.check = CheckConfig::all();
  const MachineReport on = run_app<App>(cfg, params);
  ASSERT_TRUE(on.check_enabled);

  EXPECT_EQ(on.total_cycles, off.total_cycles);
  for (std::size_t p = 0; p < off.procs.size(); ++p) {
    EXPECT_EQ(on.procs[p].compute, off.procs[p].compute) << "pe " << p;
    EXPECT_EQ(on.procs[p].overhead, off.procs[p].overhead) << "pe " << p;
    EXPECT_EQ(on.procs[p].switching, off.procs[p].switching) << "pe " << p;
    EXPECT_EQ(on.procs[p].comm, off.procs[p].comm) << "pe " << p;
  }

  EXPECT_TRUE(on.check.clean()) << on.check.summary_text();
  EXPECT_GT(on.check.accesses_raced, 0u);
  EXPECT_GT(on.check.packets_linted, 0u);
}

TEST(CheckedCleanRun, BitonicSortIsCycleIdenticalAndClean) {
  MachineConfig cfg;
  cfg.proc_count = 4;
  expect_identical_and_clean<apps::BitonicSortApp>(
      cfg, apps::BitonicParams{.n = 4 * 64, .threads = 4});
}

TEST(CheckedCleanRun, BlockReadSortExercisesTheDmaShadowPath) {
  MachineConfig cfg;
  cfg.proc_count = 4;
  expect_identical_and_clean<apps::BitonicSortApp>(
      cfg,
      apps::BitonicParams{.n = 4 * 64, .threads = 4, .use_block_reads = true});
}

TEST(CheckedCleanRun, FftIsCycleIdenticalAndClean) {
  MachineConfig cfg;
  cfg.proc_count = 4;
  expect_identical_and_clean<apps::FftApp>(
      cfg, apps::FftParams{.n = 4 * 64, .threads = 2});
}

TEST(CheckedCleanRun, JacobiWithTreeBarrierIsClean) {
  MachineConfig cfg;
  cfg.proc_count = 4;
  cfg.barrier = BarrierTopology::kTree;
  expect_identical_and_clean<apps::JacobiApp>(
      cfg, apps::JacobiParams{.n = 4 * 32, .threads = 2, .iterations = 3});
}

TEST(CheckedCleanRun, Em4ReadServiceIsClean) {
  MachineConfig cfg;
  cfg.proc_count = 4;
  cfg.read_service = ReadServiceMode::kExuThread;
  expect_identical_and_clean<apps::BitonicSortApp>(
      cfg, apps::BitonicParams{.n = 4 * 32, .threads = 2});
}

TEST(CheckedCleanRun, DetailedNetworkIsClean) {
  MachineConfig cfg;
  cfg.proc_count = 4;
  cfg.network = NetworkModel::kDetailed;
  expect_identical_and_clean<apps::BitonicSortApp>(
      cfg, apps::BitonicParams{.n = 4 * 32, .threads = 2});
}

TEST(CheckedCleanRun, CheckedRunsAreDeterministic) {
  // Two identical checked runs agree on every counter the checker keeps.
  MachineConfig cfg;
  cfg.proc_count = 4;
  cfg.check = CheckConfig::all();
  const apps::BitonicParams params{.n = 4 * 64, .threads = 4};
  const MachineReport a = run_app<apps::BitonicSortApp>(cfg, params);
  const MachineReport b = run_app<apps::BitonicSortApp>(cfg, params);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.check.reads_checked, b.check.reads_checked);
  EXPECT_EQ(a.check.writes_checked, b.check.writes_checked);
  EXPECT_EQ(a.check.accesses_raced, b.check.accesses_raced);
  EXPECT_EQ(a.check.hb_edges, b.check.hb_edges);
  EXPECT_EQ(a.check.packets_linted, b.check.packets_linted);
}

}  // namespace
}  // namespace emx::analysis
