// Memcheck true positives: deliberately buggy EMC-Y assembly programs,
// each yielding exactly one diagnostic with the correct origin. The
// frame-region annotations (fmark/fdrop) are the ISA-level analog of
// Valgrind's MALLOCLIKE/FREELIKE client requests.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "isa/interpreter.hpp"

namespace emx::analysis {
namespace {

/// Runs `source` as a single thread on PE 0 of a 2-PE machine with the
/// memcheck shadow armed and returns the check report.
CheckReport run_isa(const std::string& source) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  cfg.check = CheckConfig::parse("memcheck");
  Machine m(cfg);
  const auto entry = isa::register_source(m, source);
  m.spawn(0, entry, 0);
  m.run();
  const MachineReport r = m.report();
  EXPECT_TRUE(r.check_enabled);
  return r.check;
}

TEST(MemcheckIsa, UninitializedFrameSlotRead) {
  const CheckReport r = run_isa(R"(
      li    r2, 100
      li    r3, 4
      fmark r2, r3        ; frame [100, 104)
      store r2, r3, 0     ; define word 100
      load  r4, r2, 1     ; word 101 never stored -> uninit read
      fdrop r2
      halt
  )");
  ASSERT_EQ(r.total(), 1u);
  EXPECT_EQ(r.count(CheckKind::kUninitRead), 1u);
  const Diagnostic& d = r.diagnostics[0];
  EXPECT_EQ(d.origin.proc, 0u);
  EXPECT_NE(d.origin.thread, kInvalidThread);
  EXPECT_TRUE(d.has_aux);  // where the frame was marked
  EXPECT_LE(d.aux.cycle, d.origin.cycle);
}

TEST(MemcheckIsa, DoubleFrameFree) {
  const CheckReport r = run_isa(R"(
      li    r2, 200
      li    r3, 2
      fmark r2, r3
      store r2, r3, 0
      store r2, r3, 1
      fdrop r2
      fdrop r2            ; second drop of the same frame
      halt
  )");
  ASSERT_EQ(r.total(), 1u);
  EXPECT_EQ(r.count(CheckKind::kDoubleFrameFree), 1u);
  EXPECT_EQ(r.diagnostics[0].origin.proc, 0u);
  EXPECT_TRUE(r.diagnostics[0].has_aux);  // where it was first dropped
}

TEST(MemcheckIsa, UseAfterFrameDrop) {
  const CheckReport r = run_isa(R"(
      li    r2, 300
      li    r3, 2
      fmark r2, r3
      store r2, r3, 0
      fdrop r2
      load  r4, r2, 0     ; frame already released
      halt
  )");
  ASSERT_EQ(r.total(), 1u);
  EXPECT_EQ(r.count(CheckKind::kUseAfterFree), 1u);
  EXPECT_TRUE(r.diagnostics[0].has_aux);  // where it was dropped
}

TEST(MemcheckIsa, LeakedFrameReportedAtEndOfRun) {
  const CheckReport r = run_isa(R"(
      li    r2, 400
      li    r3, 8
      fmark r2, r3
      store r2, r3, 0
      halt                ; never dropped
  )");
  ASSERT_EQ(r.total(), 1u);
  EXPECT_EQ(r.count(CheckKind::kFrameLeak), 1u);
  EXPECT_EQ(r.diagnostics[0].origin.proc, 0u);
}

TEST(MemcheckIsa, StoreIntoRuntimeReservedWords) {
  const CheckReport r = run_isa(R"(
      li    r2, 5
      li    r3, 42
      store r2, r3, 0     ; words [0, 16) belong to the runtime
      halt
  )");
  ASSERT_EQ(r.total(), 1u);
  EXPECT_EQ(r.count(CheckKind::kReservedStore), 1u);
}

TEST(MemcheckIsa, OutOfFrameStoreBeyondMemory) {
  const CheckReport r = run_isa(R"(
      li    r2, 0x100000  ; == memory_words on the default machine
      li    r3, 1
      store r2, r3, 0
      halt
  )");
  ASSERT_EQ(r.total(), 1u);
  EXPECT_EQ(r.count(CheckKind::kOobAccess), 1u);
}

TEST(MemcheckIsa, ZeroLengthMarkIsABadFrameOp) {
  const CheckReport r = run_isa(R"(
      li    r2, 500
      fmark r2, r0        ; len 0
      halt
  )");
  ASSERT_EQ(r.total(), 1u);
  EXPECT_EQ(r.count(CheckKind::kBadFrameOp), 1u);
}

TEST(MemcheckIsa, CorrectFrameDisciplineIsClean) {
  const CheckReport r = run_isa(R"(
      li    r2, 600
      li    r3, 4
      fmark r2, r3
      store r2, r3, 0
      store r2, r3, 1
      load  r4, r2, 0
      load  r5, r2, 1
      fdrop r2
      halt
  )");
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.frames_tracked, 1u);
  EXPECT_GE(r.reads_checked, 2u);
  EXPECT_GE(r.writes_checked, 2u);
}

TEST(MemcheckIsa, StaticRamReadsAreDefinedLikeCGlobals) {
  // Loads from unmarked memory follow C-global semantics: addressable
  // and defined. Only marked frame regions demand store-before-load.
  const CheckReport r = run_isa(R"(
      li    r2, 700
      load  r4, r2, 0     ; plain static RAM, never stored: fine
      store r2, r4, 0
      halt
  )");
  EXPECT_TRUE(r.clean());
}

TEST(MemcheckIsa, DroppedRegionCanBeRemarked) {
  // Frame RAM is recycled constantly on a real EM-X; re-marking a
  // previously dropped region must start a fresh definedness map.
  const CheckReport r = run_isa(R"(
      li    r2, 800
      li    r3, 2
      fmark r2, r3
      store r2, r3, 0
      fdrop r2
      fmark r2, r3        ; recycle the region
      store r2, r3, 0
      load  r4, r2, 0
      fdrop r2
      halt
  )");
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.frames_tracked, 2u);
}

}  // namespace
}  // namespace emx::analysis
