#include "analysis/check_config.hpp"

#include <gtest/gtest.h>

namespace emx::analysis {
namespace {

TEST(CheckConfig, DefaultIsAllOff) {
  CheckConfig c;
  EXPECT_FALSE(c.enabled());
  EXPECT_EQ(c.summary(), "none");
}

TEST(CheckConfig, ParsesIndividualCheckers) {
  const CheckConfig c = CheckConfig::parse("memcheck,deadlock");
  EXPECT_TRUE(c.memcheck);
  EXPECT_FALSE(c.race);
  EXPECT_TRUE(c.deadlock);
  EXPECT_FALSE(c.lint);
  EXPECT_TRUE(c.enabled());
}

TEST(CheckConfig, ParsesAllAndNone) {
  const CheckConfig all = CheckConfig::parse("all");
  EXPECT_TRUE(all.memcheck && all.race && all.deadlock && all.lint);
  EXPECT_FALSE(CheckConfig::parse("").enabled());
  EXPECT_FALSE(CheckConfig::parse("none").enabled());
}

TEST(CheckConfig, AllFactoryMatchesParse) {
  const CheckConfig a = CheckConfig::all();
  EXPECT_TRUE(a.memcheck && a.race && a.deadlock && a.lint);
}

TEST(CheckConfig, SummaryListsEnabledCheckers) {
  EXPECT_EQ(CheckConfig::parse("race,lint").summary(), "race,lint");
  EXPECT_EQ(CheckConfig::all().summary(), "memcheck,race,deadlock,lint");
}

TEST(CheckConfigDeathTest, UnknownCheckerNamePanics) {
  EXPECT_DEATH(CheckConfig::parse("memchk"), "unknown checker");
}

}  // namespace
}  // namespace emx::analysis
