// Vector-clock race detection and quiescence-time deadlock detection on
// real simulated threads: true positives get exactly one diagnostic with
// the right origin, and every synchronization edge the runtime provides
// (invoke, gate, barrier) suppresses the report.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "runtime/order_gate.hpp"
#include "runtime/thread_api.hpp"

namespace emx::analysis {
namespace {

using rt::ThreadApi;
using rt::ThreadBody;

MachineConfig checked_config(std::uint32_t procs, const char* checkers) {
  MachineConfig cfg;
  cfg.proc_count = procs;
  cfg.check = CheckConfig::parse(checkers);
  return cfg;
}

constexpr LocalAddr kSlot = rt::kReservedWords + 8;

TEST(RaceDetection, UnsynchronizedWriteWritePair) {
  // Two host-injected threads (no happens-before edge between them) both
  // store to pe1:[kSlot] — one from afar, one locally.
  Machine m(checked_config(2, "race"));
  const auto writer = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    co_await api.compute(5);
    co_await api.remote_write(rt::make_global(1, kSlot), 7);
  });
  const auto local = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    co_await api.compute(5);
    api.local_write(kSlot, 9);
  });
  m.spawn(0, writer, 0);
  m.spawn(1, local, 0);
  m.run();

  const CheckReport r = m.report().check;
  ASSERT_EQ(r.total(), 1u);
  EXPECT_EQ(r.count(CheckKind::kWriteWriteRace), 1u);
  const Diagnostic& d = r.diagnostics[0];
  EXPECT_EQ(d.addr, rt::pack(rt::make_global(1, kSlot)));
  EXPECT_TRUE(d.has_aux);  // the conflicting access
  EXPECT_NE(d.origin.thread, kInvalidThread);
}

TEST(RaceDetection, BarrierSkippingReadIsARace) {
  // Thread A stores and joins the barrier; thread B reads the slot
  // *before* its own barrier join — the classic skipped-synchronization
  // read. Exactly one write-read race.
  Machine m(checked_config(1, "race"));
  m.configure_barrier(2);
  const auto a = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    api.local_write(kSlot, 1);
    co_await api.iteration_barrier();
  });
  const auto b = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    co_await api.compute(50);
    (void)api.local_read(kSlot);  // should have waited for the barrier
    co_await api.iteration_barrier();
  });
  m.spawn(0, a, 0);
  m.spawn(0, b, 0);
  m.run();

  const CheckReport r = m.report().check;
  ASSERT_EQ(r.total(), 1u);
  EXPECT_EQ(r.count(CheckKind::kWriteReadRace), 1u);
}

TEST(RaceDetection, BarrierOrdersCrossIterationAccesses) {
  // Same shape, but B reads after its barrier join: the barrier edge
  // orders A's store before B's read, so the run is clean.
  Machine m(checked_config(1, "race"));
  m.configure_barrier(2);
  const auto a = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    api.local_write(kSlot, 1);
    co_await api.iteration_barrier();
  });
  const auto b = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    co_await api.compute(50);
    co_await api.iteration_barrier();
    (void)api.local_read(kSlot);
  });
  m.spawn(0, a, 0);
  m.spawn(0, b, 0);
  m.run();

  const CheckReport r = m.report().check;
  EXPECT_TRUE(r.clean()) << r.summary_text();
  EXPECT_GT(r.hb_edges, 0u);
}

TEST(RaceDetection, InvokeEdgeOrdersSpawnerBeforeChild) {
  // Parent stores, then spawns a child that reads the slot remotely:
  // the invoke packet carries the parent's clock, so no race.
  Machine m(checked_config(2, "race"));
  std::uint32_t child = 0;
  child = m.register_entry([](ThreadApi api, Word arg) -> ThreadBody {
    const Word v = co_await api.remote_read(rt::unpack(arg));
    api.local_write(kSlot, v);
  });
  const auto parent = m.register_entry([child](ThreadApi api, Word) -> ThreadBody {
    api.local_write(kSlot, 41);
    co_await api.spawn(1, child, rt::pack(rt::make_global(0, kSlot)));
  });
  m.spawn(0, parent, 0);
  m.run();

  EXPECT_EQ(m.memory(1).read(kSlot), 41u);
  EXPECT_TRUE(m.report().check.clean()) << m.report().check.summary_text();
}

TEST(RaceDetection, ParentWriteAfterSpawnRacesWithChild) {
  // The invoke token must cover only what the parent did *before* the
  // spawn: a parent store issued after the spawn is concurrent with the
  // child's access and must be reported.
  Machine m(checked_config(2, "race"));
  const auto child = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    co_await api.compute(20);
    co_await api.remote_write(rt::make_global(0, kSlot), 7);
  });
  const auto parent = m.register_entry([child](ThreadApi api, Word) -> ThreadBody {
    co_await api.spawn(1, child, 0);
    api.local_write(kSlot, 9);  // after the release edge: unordered
  });
  m.spawn(0, parent, 0);
  m.run();

  const CheckReport r = m.report().check;
  ASSERT_EQ(r.total(), 1u) << r.summary_text();
  EXPECT_EQ(r.count(CheckKind::kWriteWriteRace), 1u);
}

TEST(RaceDetection, AdvancerWriteAfterAdvanceRaces) {
  // gate_advance publishes the advancer's clock; a store it issues after
  // advancing is concurrent with the successor's gate window.
  Machine m(checked_config(1, "race"));
  rt::OrderGate gate(2);
  const auto first = m.register_entry([&gate](ThreadApi api, Word) -> ThreadBody {
    co_await api.gate_wait(gate, 0);
    co_await api.gate_advance(gate);
    api.local_write(kSlot, 1);  // after the release edge: unordered
  });
  const auto second = m.register_entry([&gate](ThreadApi api, Word) -> ThreadBody {
    co_await api.compute(50);
    co_await api.gate_wait(gate, 1);
    api.local_write(kSlot, 2);
  });
  m.spawn(0, first, 0);
  m.spawn(0, second, 0);
  m.run();

  const CheckReport r = m.report().check;
  ASSERT_EQ(r.total(), 1u) << r.summary_text();
  EXPECT_EQ(r.count(CheckKind::kWriteWriteRace), 1u);
}

TEST(RaceDetection, PostBarrierWritesRace) {
  // The barrier orders pre-join accesses before post-pass accesses, but
  // two participants' *post-pass* stores are concurrent with each other.
  Machine m(checked_config(1, "race"));
  m.configure_barrier(2);
  const auto t = m.register_entry([](ThreadApi api, Word arg) -> ThreadBody {
    co_await api.compute(arg == 0 ? 5 : 40);
    co_await api.iteration_barrier();
    api.local_write(kSlot, arg);
  });
  m.spawn(0, t, 0);
  m.spawn(0, t, 1);
  m.run();

  const CheckReport r = m.report().check;
  ASSERT_EQ(r.total(), 1u) << r.summary_text();
  EXPECT_EQ(r.count(CheckKind::kWriteWriteRace), 1u);
}

TEST(RaceDetection, GateEdgeOrdersPipelinedAccesses) {
  // Classic OrderGate pipeline: each thread writes the shared slot inside
  // its gate window; the pass/advance edges order the accesses.
  Machine m(checked_config(1, "race"));
  rt::OrderGate gate(2);
  const auto stage = m.register_entry([&gate](ThreadApi api, Word arg) -> ThreadBody {
    co_await api.compute(arg == 0 ? 40 : 5);  // arrive in either order
    co_await api.gate_wait(gate, static_cast<std::uint32_t>(arg));
    api.local_write(kSlot, arg);
    co_await api.gate_advance(gate);
  });
  m.spawn(0, stage, 0);
  m.spawn(0, stage, 1);
  m.run();

  EXPECT_EQ(m.memory(0).read(kSlot), 1u);
  EXPECT_TRUE(m.report().check.clean()) << m.report().check.summary_text();
}

TEST(DeadlockDetection, TwoThreadCircularGateWait) {
  // T0 holds gate A's window and blocks on gate B's; T1 holds B's window
  // and blocks on A's. Neither can advance: a textbook circular wait,
  // reported as exactly one deadlock diagnostic naming the cycle.
  Machine m(checked_config(1, "deadlock"));
  rt::OrderGate a(2);
  rt::OrderGate b(2);
  const auto t0 = m.register_entry([&](ThreadApi api, Word) -> ThreadBody {
    co_await api.gate_wait(a, 0);  // passes
    co_await api.gate_wait(b, 1);  // blocks: T1 never advances b
    co_await api.gate_advance(a);
  });
  const auto t1 = m.register_entry([&](ThreadApi api, Word) -> ThreadBody {
    co_await api.compute(10);
    co_await api.gate_wait(b, 0);  // passes
    co_await api.gate_wait(a, 1);  // blocks: T0 never advances a
    co_await api.gate_advance(b);
  });
  m.spawn(0, t0, 0);
  m.spawn(0, t1, 0);
  m.run();  // quiesces with both threads suspended; no panic with -check

  const CheckReport r = m.report().check;
  ASSERT_EQ(r.total(), 1u);
  EXPECT_EQ(r.count(CheckKind::kDeadlock), 1u);
  const Diagnostic& d = r.diagnostics[0];
  EXPECT_NE(d.message.find("circular wait"), std::string::npos);
  EXPECT_NE(d.message.find("gate index"), std::string::npos);
  EXPECT_NE(d.origin.thread, kInvalidThread);
}

TEST(DeadlockDetection, LoneBlockedThreadIsStuckNotDeadlocked) {
  // A thread waiting on a gate index nobody will ever open: no cycle,
  // but the checker still names the suspended thread.
  Machine m(checked_config(1, "deadlock"));
  rt::OrderGate gate(4);
  const auto t = m.register_entry([&gate](ThreadApi api, Word) -> ThreadBody {
    co_await api.gate_wait(gate, 2);  // indices 0 and 1 never advance
  });
  m.spawn(0, t, 0);
  m.run();

  const CheckReport r = m.report().check;
  ASSERT_EQ(r.total(), 1u);
  EXPECT_EQ(r.count(CheckKind::kStuckThread), 1u);
  EXPECT_NE(r.diagnostics[0].message.find("gate index 2"), std::string::npos);
}

TEST(DeadlockDetection, CompletedRunReportsNothing) {
  Machine m(checked_config(2, "deadlock"));
  const auto t = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    co_await api.compute(10);
    co_await api.remote_write(rt::make_global(1, kSlot), 3);
  });
  m.spawn(0, t, 0);
  m.run();
  EXPECT_TRUE(m.report().check.clean());
}

}  // namespace
}  // namespace emx::analysis
