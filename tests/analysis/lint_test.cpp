// Sim-lint rules exercised directly against a CheckContext: misrouted
// packets, FIFO overtaking, absurd cycle charges and events scheduled
// into the past. The healthy simulator never produces these, so the
// tests feed the hooks by hand.
#include <gtest/gtest.h>

#include "analysis/checker.hpp"
#include "runtime/global_addr.hpp"
#include "sim/sim_context.hpp"

namespace emx::analysis {
namespace {

class LintTest : public ::testing::Test {
 protected:
  LintTest()
      : ctx_(CheckConfig::parse("lint"), sim_, /*proc_count=*/4,
             /*memory_words=*/1024, /*reserved_words=*/16) {}

  sim::SimContext sim_;
  CheckContext ctx_;
};

net::Packet write_packet(ProcId src, ProcId dst, LocalAddr addr, Cycle issued) {
  net::Packet p;
  p.kind = net::PacketKind::kRemoteWrite;
  p.src = src;
  p.dst = dst;
  p.addr = rt::pack(rt::make_global(dst, addr));
  p.issue_cycle = issued;
  return p;
}

TEST_F(LintTest, CorrectDeliveryIsClean) {
  ctx_.on_deliver(1, write_packet(0, 1, 100, 5));
  ctx_.on_deliver(1, write_packet(0, 1, 101, 9));
  EXPECT_TRUE(ctx_.report().clean());
  EXPECT_EQ(ctx_.report().packets_linted, 2u);
}

TEST_F(LintTest, PacketEjectedAtWrongPeIsMisrouted) {
  // Routed to pe2 but ejected at pe1.
  ctx_.on_deliver(1, write_packet(0, 2, 100, 5));
  EXPECT_EQ(ctx_.report().count(CheckKind::kMisroutedPacket), 1u);
  EXPECT_EQ(ctx_.report().total(), 1u);
  EXPECT_EQ(ctx_.report().diagnostics[0].origin.proc, 1u);
}

TEST_F(LintTest, AddressWordDisagreeingWithDstIsMisrouted) {
  // dst matches the ejection port, but the architectural address word
  // names a different PE: the fabric delivered the wrong envelope.
  net::Packet p = write_packet(0, 1, 100, 5);
  p.addr = rt::pack(rt::make_global(3, 100));
  ctx_.on_deliver(1, p);
  EXPECT_EQ(ctx_.report().count(CheckKind::kMisroutedPacket), 1u);
}

TEST_F(LintTest, FifoOvertakeIsReportedOnce) {
  ctx_.on_deliver(1, write_packet(0, 1, 100, 20));
  // Issued earlier, delivered later: the non-overtaking guarantee broke.
  ctx_.on_deliver(1, write_packet(0, 1, 101, 12));
  ctx_.on_deliver(1, write_packet(0, 1, 102, 11));  // deduplicated
  EXPECT_EQ(ctx_.report().count(CheckKind::kFifoOvertake), 2u);
  EXPECT_EQ(ctx_.report().diagnostics.size(), 1u);  // one per (src,dst,pri)
}

TEST_F(LintTest, DistinctPrioritiesHaveIndependentFifoOrder) {
  ctx_.on_deliver(1, write_packet(0, 1, 100, 20));
  net::Packet high = write_packet(0, 1, 101, 12);
  high.priority = net::PacketPriority::kHigh;
  ctx_.on_deliver(1, high);  // earlier issue on the *other* FIFO: fine
  EXPECT_TRUE(ctx_.report().clean());
}

TEST_F(LintTest, AbsurdChargeIsFlaggedAsWrappedNegative) {
  ctx_.on_charge(2, Cycle{1} << 41);
  EXPECT_EQ(ctx_.report().count(CheckKind::kNegativeCharge), 1u);
  EXPECT_EQ(ctx_.report().diagnostics[0].origin.proc, 2u);
  // Ordinary charges stay clean.
  ctx_.on_charge(2, 100);
  EXPECT_EQ(ctx_.report().total(), 1u);
}

TEST_F(LintTest, LateEventIsReported) {
  ctx_.on_late_schedule(/*target=*/5, /*now=*/10);
  EXPECT_EQ(ctx_.report().count(CheckKind::kLateEvent), 1u);
  EXPECT_NE(ctx_.report().diagnostics[0].message.find("cycle 5"),
            std::string::npos);
}

TEST_F(LintTest, LateScheduleHookClampsInsteadOfAsserting) {
  // Wire the hook the way the Machine does and drive SimContext directly:
  // the event lands at `now` and the diagnostic records the bad target.
  sim_.set_late_schedule_hook(
      [](void* ctx, Cycle target, Cycle now) {
        static_cast<CheckContext*>(ctx)->on_late_schedule(target, now);
      },
      &ctx_);
  bool ran = false;
  sim_.schedule(7, [](void* flag, std::uint64_t, std::uint64_t) {
    *static_cast<bool*>(flag) = true;
  }, &ran);
  sim_.run_until_idle();
  ASSERT_TRUE(ran);
  EXPECT_EQ(sim_.now(), 7u);
  sim_.schedule_at(3, [](void*, std::uint64_t, std::uint64_t) {}, nullptr);
  EXPECT_EQ(ctx_.report().count(CheckKind::kLateEvent), 1u);
  sim_.run_until_idle();
  EXPECT_EQ(sim_.now(), 7u);  // clamped to now, not rewound
}

}  // namespace
}  // namespace emx::analysis
