#include "analysis/vector_clock.hpp"

#include <gtest/gtest.h>

namespace emx::analysis {
namespace {

TEST(VectorClock, UnsetComponentsReadZero) {
  VectorClock vc;
  EXPECT_EQ(vc.of(0), 0u);
  EXPECT_EQ(vc.of(1234), 0u);
  EXPECT_EQ(vc.size(), 0u);
}

TEST(VectorClock, SetAndRead) {
  VectorClock vc;
  vc.set(3, 7);
  EXPECT_EQ(vc.of(3), 7u);
  EXPECT_EQ(vc.size(), 1u);
}

TEST(VectorClock, JoinTakesPointwiseMaxAndCountsRaises) {
  VectorClock a;
  a.set(0, 5);
  a.set(1, 2);
  VectorClock b;
  b.set(1, 9);
  b.set(2, 1);
  EXPECT_EQ(a.join(b), 2u);  // component 1 raised to 9, component 2 to 1
  EXPECT_EQ(a.of(0), 5u);
  EXPECT_EQ(a.of(1), 9u);
  EXPECT_EQ(a.of(2), 1u);
  // Joining again raises nothing.
  EXPECT_EQ(a.join(b), 0u);
}

TEST(VectorClock, HappensBeforeComparesEpochAgainstClock) {
  VectorClock vc;
  vc.set(4, 10);
  EXPECT_TRUE(happens_before(Epoch{4, 10}, vc));
  EXPECT_TRUE(happens_before(Epoch{4, 3}, vc));
  EXPECT_FALSE(happens_before(Epoch{4, 11}, vc));
  EXPECT_FALSE(happens_before(Epoch{5, 1}, vc));  // other thread unseen
}

TEST(VectorClock, SpawnJoinModelsTheInvokeEdge) {
  // Parent at clk 3 spawns; child joins the parent's snapshot. The
  // parent's pre-spawn accesses now happen-before the child's.
  VectorClock parent;
  parent.set(0, 3);
  VectorClock child;
  child.set(1, 1);
  child.join(parent);
  EXPECT_TRUE(happens_before(Epoch{0, 3}, child));
  // The parent keeps running: its *later* accesses stay unordered.
  EXPECT_FALSE(happens_before(Epoch{0, 4}, child));
}

}  // namespace
}  // namespace emx::analysis
