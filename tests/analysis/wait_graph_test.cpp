#include "analysis/wait_graph.hpp"

#include <gtest/gtest.h>

namespace emx::analysis {
namespace {

TEST(WaitGraph, EmptyGraphHasNoCycle) {
  WaitGraph g;
  EXPECT_TRUE(g.find_cycle().empty());
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(WaitGraph, ChainIsAcyclic) {
  WaitGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  EXPECT_TRUE(g.find_cycle().empty());
  EXPECT_EQ(g.edge_count(), 3u);
}

TEST(WaitGraph, TwoNodeCycle) {
  WaitGraph g;
  g.add_edge(7, 9);
  g.add_edge(9, 7);
  const auto cycle = g.find_cycle();
  ASSERT_EQ(cycle.size(), 2u);
  // The cycle is reported from its first-discovered node, in edge order.
  EXPECT_EQ(cycle[0], 7u);
  EXPECT_EQ(cycle[1], 9u);
}

TEST(WaitGraph, SelfLoopIsACycle) {
  WaitGraph g;
  g.add_edge(5, 5);
  const auto cycle = g.find_cycle();
  ASSERT_EQ(cycle.size(), 1u);
  EXPECT_EQ(cycle[0], 5u);
}

TEST(WaitGraph, CycleExcludesTheTailLeadingIntoIt) {
  // 0 -> 1 -> 2 -> 3 -> 1: the cycle is [1, 2, 3], node 0 is not on it.
  WaitGraph g;
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 1);
  const auto cycle = g.find_cycle();
  ASSERT_EQ(cycle.size(), 3u);
  EXPECT_EQ(cycle[0], 1u);
  EXPECT_EQ(cycle[1], 2u);
  EXPECT_EQ(cycle[2], 3u);
}

TEST(WaitGraph, DuplicateEdgesAreDeduplicated) {
  WaitGraph g;
  g.add_edge(1, 2);
  g.add_edge(1, 2);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(WaitGraph, DiamondIsAcyclic) {
  WaitGraph g;
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  EXPECT_TRUE(g.find_cycle().empty());
}

}  // namespace
}  // namespace emx::analysis
