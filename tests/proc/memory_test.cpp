#include "proc/memory.hpp"

#include <gtest/gtest.h>

namespace emx::proc {
namespace {

TEST(Memory, ReadsBackWrites) {
  Memory mem(1024);
  mem.write(0, 0xDEADBEEF);
  mem.write(1023, 42);
  EXPECT_EQ(mem.read(0), 0xDEADBEEFu);
  EXPECT_EQ(mem.read(1023), 42u);
  EXPECT_EQ(mem.read(512), 0u);  // zero-initialised
}

TEST(Memory, FloatRoundTripsThroughBits) {
  Memory mem(16);
  mem.write_f32(3, -1.5f);
  EXPECT_EQ(mem.read_f32(3), -1.5f);
  mem.write_f32(4, 3.14159f);
  EXPECT_EQ(mem.read_f32(4), 3.14159f);
  // Bit pattern is the IEEE-754 encoding, inspectable as a word.
  mem.write_f32(5, 1.0f);
  EXPECT_EQ(mem.read(5), 0x3F800000u);
}

TEST(Memory, FillBlock) {
  Memory mem(64);
  const Word data[4] = {1, 2, 3, 4};
  mem.fill(10, data, 4);
  for (Word i = 0; i < 4; ++i) EXPECT_EQ(mem.read(10 + i), i + 1);
}

TEST(Memory, OutOfRangeAccessPanics) {
  Memory mem(8);
  EXPECT_DEATH((void)mem.read(8), "out of range");
  EXPECT_DEATH(mem.write(100, 1), "out of range");
  const Word data[2] = {1, 2};
  EXPECT_DEATH(mem.fill(7, data, 2), "out of range");
}

TEST(Memory, ClearZeroes) {
  Memory mem(16);
  mem.write(5, 99);
  mem.clear();
  EXPECT_EQ(mem.read(5), 0u);
}

}  // namespace
}  // namespace emx::proc
