#include "proc/execution_unit.hpp"

#include <gtest/gtest.h>

namespace emx::proc {
namespace {

TEST(ExecutionUnit, BucketsAccumulateIndependently) {
  ExecutionUnit exu;
  exu.charge(CycleBucket::kCompute, 10);
  exu.charge(CycleBucket::kOverhead, 2);
  exu.charge(CycleBucket::kSwitch, 7);
  exu.charge(CycleBucket::kCompute, 5);
  EXPECT_EQ(exu.bucket(CycleBucket::kCompute), 15u);
  EXPECT_EQ(exu.bucket(CycleBucket::kOverhead), 2u);
  EXPECT_EQ(exu.bucket(CycleBucket::kSwitch), 7u);
  EXPECT_EQ(exu.bucket(CycleBucket::kReadService), 0u);
  EXPECT_EQ(exu.busy_total(), 24u);
}

TEST(ExecutionUnit, IdleSpansAccumulate) {
  ExecutionUnit exu;
  // idle [0,10), busy [10,30), idle [30,35), busy [35,40), idle [40,100)
  exu.begin_busy(10);
  exu.end_busy(30);
  exu.begin_busy(35);
  exu.end_busy(40);
  EXPECT_EQ(exu.idle_cycles(100), 10u + 5u + 60u);
  EXPECT_EQ(exu.idle_cycles(40), 15u);
}

TEST(ExecutionUnit, IdleWhileBusyExcludesOpenSpan) {
  ExecutionUnit exu;
  exu.begin_busy(5);
  EXPECT_TRUE(exu.busy());
  EXPECT_EQ(exu.idle_cycles(50), 5u);  // only [0,5)
}

TEST(ExecutionUnit, DoubleBeginPanics) {
  ExecutionUnit exu;
  exu.begin_busy(0);
  EXPECT_DEATH(exu.begin_busy(1), "while busy");
}

TEST(ExecutionUnit, EndWithoutBeginPanics) {
  ExecutionUnit exu;
  EXPECT_DEATH(exu.end_busy(1), "while idle");
}

}  // namespace
}  // namespace emx::proc
