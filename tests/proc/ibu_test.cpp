#include "proc/input_buffer_unit.hpp"

#include <gtest/gtest.h>

namespace emx::proc {
namespace {

net::Packet make_packet(Word data, net::PacketPriority prio) {
  net::Packet p;
  p.kind = net::PacketKind::kInvoke;
  p.data = data;
  p.priority = prio;
  return p;
}

TEST(InputBufferUnit, FifoWithinOneLevel) {
  InputBufferUnit ibu(8);
  for (Word i = 0; i < 5; ++i)
    ibu.push(make_packet(i, net::PacketPriority::kNormal));
  for (Word i = 0; i < 5; ++i) EXPECT_EQ(ibu.pop().data, i);
  EXPECT_TRUE(ibu.empty());
}

TEST(InputBufferUnit, HighPriorityDrainsFirst) {
  InputBufferUnit ibu(8);
  ibu.push(make_packet(1, net::PacketPriority::kNormal));
  ibu.push(make_packet(100, net::PacketPriority::kHigh));
  ibu.push(make_packet(2, net::PacketPriority::kNormal));
  ibu.push(make_packet(101, net::PacketPriority::kHigh));
  EXPECT_EQ(ibu.pop().data, 100u);
  EXPECT_EQ(ibu.pop().data, 101u);
  EXPECT_EQ(ibu.pop().data, 1u);
  EXPECT_EQ(ibu.pop().data, 2u);
}

TEST(InputBufferUnit, SpillsToMemoryBufferBeyondEightPackets) {
  InputBufferUnit ibu(8);
  for (Word i = 0; i < 20; ++i)
    ibu.push(make_packet(i, net::PacketPriority::kNormal));
  EXPECT_EQ(ibu.size(), 20u);
  EXPECT_GT(ibu.spilled_now(), 0u);
  for (Word i = 0; i < 20; ++i) EXPECT_EQ(ibu.pop().data, i);
}

TEST(InputBufferUnit, CountsReceivedPackets) {
  InputBufferUnit ibu(8);
  for (Word i = 0; i < 3; ++i)
    ibu.push(make_packet(i, net::PacketPriority::kNormal));
  (void)ibu.pop();
  EXPECT_EQ(ibu.total_received(), 3u);
  EXPECT_EQ(ibu.size(), 2u);
}

}  // namespace
}  // namespace emx::proc
