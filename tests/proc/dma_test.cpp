// The by-pass DMA services remote reads/writes on its own timeline,
// without the EXU. Tested in isolation with a loopback OBU/network rig.
#include <gtest/gtest.h>

#include "network/fast_network.hpp"
#include "proc/bypass_dma.hpp"
#include "proc/memory.hpp"
#include "proc/output_buffer_unit.hpp"
#include "runtime/global_addr.hpp"
#include "sim/sim_context.hpp"

namespace emx::proc {
namespace {

struct Rig {
  sim::SimContext sim;
  net::FastNetwork network{sim, 4};
  Memory memory{1024};
  OutputBufferUnit obu{sim, network, 1};
  BypassDma dma{sim, memory, obu, 4, 2};
  std::vector<net::Packet> replies;
  std::vector<Cycle> reply_times;

  Rig() {
    network.set_delivery(
        [](void* ctx, const net::Packet& p) {
          auto* rig = static_cast<Rig*>(ctx);
          rig->replies.push_back(p);
          rig->reply_times.push_back(rig->sim.now());
        },
        this);
  }
};

net::Packet read_request(ProcId requester, ProcId target, LocalAddr addr,
                         std::uint32_t tag = 1) {
  net::Packet p;
  p.kind = net::PacketKind::kRemoteReadReq;
  p.src = requester;
  p.dst = target;
  p.addr = rt::pack({target, addr});
  p.data = rt::pack({requester, 0});
  p.cont_thread = 7;
  p.cont_tag = tag;
  return p;
}

TEST(BypassDma, ServicesReadWithReply) {
  Rig rig;
  rig.memory.write(100, 0xABCD);
  rig.dma.service(read_request(1, 0, 100));
  rig.sim.run_until_idle();
  ASSERT_EQ(rig.replies.size(), 1u);
  EXPECT_EQ(rig.replies[0].kind, net::PacketKind::kRemoteReadReply);
  EXPECT_EQ(rig.replies[0].data, 0xABCDu);
  EXPECT_EQ(rig.replies[0].dst, 1u);
  EXPECT_EQ(rig.replies[0].cont_thread, 7u);
  EXPECT_EQ(rig.dma.stats().reads_serviced, 1u);
}

TEST(BypassDma, ServicesWriteInPlace) {
  Rig rig;
  net::Packet w;
  w.kind = net::PacketKind::kRemoteWrite;
  w.src = 2;
  w.dst = 0;
  w.addr = rt::pack({0, 55});
  w.data = 999;
  rig.dma.service(w);
  rig.sim.run_until_idle();
  EXPECT_EQ(rig.memory.read(55), 999u);
  EXPECT_TRUE(rig.replies.empty());  // writes produce no reply
  EXPECT_EQ(rig.dma.stats().writes_serviced, 1u);
}

TEST(BypassDma, EngineThroughputSerialisesRequests) {
  Rig rig;
  for (LocalAddr a = 0; a < 6; ++a) {
    rig.memory.write(a, a);
    rig.dma.service(read_request(1, 0, a, a + 1));
  }
  rig.sim.run_until_idle();
  ASSERT_EQ(rig.replies.size(), 6u);
  // One request per dma_interval (2 cycles): replies spaced >= 2 apart.
  for (std::size_t i = 1; i < rig.reply_times.size(); ++i) {
    EXPECT_GE(rig.reply_times[i] - rig.reply_times[i - 1], 2u);
  }
  EXPECT_EQ(rig.dma.stats().busy_cycles, 12u);
}

TEST(BypassDma, BlockReadProducesWritesPlusFinalReply) {
  Rig rig;
  for (LocalAddr a = 0; a < 8; ++a) rig.memory.write(200 + a, 10 + a);
  net::Packet req;
  req.kind = net::PacketKind::kBlockReadReq;
  req.src = 1;
  req.dst = 0;
  req.addr = rt::pack({0, 200});
  req.data = rt::pack({1, 300});  // destination buffer on the requester
  req.block_len = 8;
  req.cont_thread = 3;
  req.cont_tag = 9;
  rig.dma.service(req);
  rig.sim.run_until_idle();
  ASSERT_EQ(rig.replies.size(), 8u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(rig.replies[i].kind, net::PacketKind::kRemoteWrite);
    EXPECT_EQ(rig.replies[i].data, 10u + i);
    EXPECT_EQ(rt::unpack(rig.replies[i].addr).addr, 300u + i);
  }
  EXPECT_EQ(rig.replies[7].kind, net::PacketKind::kBlockReadReply);
  EXPECT_EQ(rig.replies[7].data, 17u);
  EXPECT_EQ(rig.dma.stats().block_reads_serviced, 1u);
  EXPECT_EQ(rig.dma.stats().reply_packets, 8u);
}

}  // namespace
}  // namespace emx::proc
