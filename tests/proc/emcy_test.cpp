// Emcy packet routing: service packets go to the by-pass DMA, thread
// packets to the IBU FIFO — and the EXU never burns cycles on reads in
// by-pass mode.
#include <gtest/gtest.h>

#include "core/machine.hpp"

namespace emx::proc {
namespace {

TEST(Emcy, RemoteTrafficNeverTouchesIdleTargetExu) {
  // PE1 is purely a data server: PE0 hammers it with reads and writes.
  // In by-pass mode PE1's EXU stays completely idle.
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine m(cfg);
  const auto entry = m.register_entry([](rt::ThreadApi api, Word) -> rt::ThreadBody {
    for (Word i = 0; i < 50; ++i) {
      const Word v = co_await api.remote_read(
          rt::GlobalAddr{1, rt::kReservedWords + i % 8});
      co_await api.remote_write(rt::GlobalAddr{1, rt::kReservedWords + 8 + i % 8},
                                v + 1);
    }
  });
  m.spawn(0, entry, 0);
  m.run();
  const auto report = m.report();
  EXPECT_EQ(report.procs[1].busy_total(), 0u)
      << "by-pass DMA must service all remote traffic without the EXU";
  EXPECT_EQ(report.procs[1].dma_reads, 50u);
  EXPECT_EQ(report.procs[1].dma_writes, 50u);
}

TEST(Emcy, Em4ModeConsumesTargetExuCycles) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  cfg.read_service = ReadServiceMode::kExuThread;
  Machine m(cfg);
  const auto entry = m.register_entry([](rt::ThreadApi api, Word) -> rt::ThreadBody {
    for (Word i = 0; i < 20; ++i) {
      (void)co_await api.remote_read(rt::GlobalAddr{1, rt::kReservedWords});
    }
  });
  m.spawn(0, entry, 0);
  m.run();
  const auto report = m.report();
  EXPECT_EQ(report.procs[1].read_service,
            20 * cfg.exu_read_service_cycles);
  EXPECT_EQ(report.procs[1].dma_reads, 0u);
}

TEST(Emcy, AcceptCountsEveryDeliveredPacket) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine m(cfg);
  const auto entry = m.register_entry([](rt::ThreadApi api, Word) -> rt::ThreadBody {
    for (Word i = 0; i < 10; ++i) {
      co_await api.remote_write(rt::GlobalAddr{1, rt::kReservedWords + i}, i);
    }
  });
  m.spawn(0, entry, 0);
  m.run();
  // PE1 accepted exactly the 10 write packets.
  EXPECT_EQ(m.pe(1).packets_accepted(), 10u);
}

TEST(Emcy, IbuSpillSurvivesPacketBursts) {
  // 64 threads spawned at once on one PE: far beyond the 8-deep on-chip
  // FIFO; the memory spill buffer must absorb and strictly preserve FIFO
  // order.
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  const auto entry = m.register_entry([](rt::ThreadApi api, Word arg) -> rt::ThreadBody {
    const Word count = api.local_read(rt::kReservedWords);
    api.local_write(rt::kReservedWords, count + 1);
    api.local_write(rt::kReservedWords + 1 + count, arg);
    co_await api.compute(5);
  });
  for (Word i = 0; i < 64; ++i) m.spawn(0, entry, 1000 + i);
  m.run();
  ASSERT_EQ(m.memory(0).read(rt::kReservedWords), 64u);
  for (Word i = 0; i < 64; ++i) {
    EXPECT_EQ(m.memory(0).read(rt::kReservedWords + 1 + i), 1000 + i);
  }
  EXPECT_GT(m.engine(0).ibu().peak_depth(), 8u);
}

}  // namespace
}  // namespace emx::proc
