// BFS workload: correctness vs the host reference across (n, P, h)
// points, frozen default-size cycles, determinism, checkpoint/resume
// byte-identity, and fault tolerance.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "workloads/bfs.hpp"
#include "workloads/workload_suite.hpp"

namespace emx::workloads {
namespace {

struct Point {
  std::uint32_t procs;
  std::uint64_t size_per_proc;
  std::uint32_t threads;
};

class BfsCorrectness : public ::testing::TestWithParam<Point> {};

TEST_P(BfsCorrectness, MatchesHostReference) {
  const Point pt = GetParam();
  MachineConfig cfg;
  cfg.proc_count = pt.procs;
  Machine machine(cfg);
  BfsParams params;
  params.n = pt.size_per_proc * pt.procs;
  params.threads = pt.threads;
  params.seed = 42;
  BfsApp app(machine, params);
  app.setup();
  machine.run();
  EXPECT_TRUE(app.verify());
  EXPECT_EQ(app.gather_dist(), app.host_reference());
  EXPECT_GT(app.levels(), 0u);
  EXPECT_GT(app.remote_visits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BfsCorrectness,
                         ::testing::Values(Point{2, 32, 1}, Point{4, 64, 2},
                                           Point{8, 32, 4}, Point{3, 16, 6}));

TEST(BfsWorkload, FrozenDefaultCycles) {
  // The registry defaults (P=16, 512 vertices/PE, h=4, seed 1). Any
  // change to this count is a simulation-semantics change and must be
  // deliberate.
  const auto m = test::tiny_manifest("bfs", 512, 4, 16);
  const auto r = test::run_verified(m);
  EXPECT_EQ(r.end_cycle, 38002u);
}

TEST(BfsWorkload, Deterministic) {
  test::expect_deterministic(test::tiny_manifest("bfs", 64, 3, 4));
}

TEST(BfsWorkload, CheckpointRoundTrip) {
  test::expect_roundtrip(test::tiny_manifest("bfs", 64, 2, 4), "bfs");
}

TEST(BfsWorkload, FaultSweepSmoke) {
  test::expect_fault_tolerant(test::tiny_manifest("bfs", 64, 4, 4));
}

TEST(BfsWorkload, UnreachedVerticesStayUnreached) {
  // A degree-1 graph usually leaves part of the graph unreachable; the
  // verifier must agree with the host reference on exactly which part.
  MachineConfig cfg;
  cfg.proc_count = 4;
  Machine machine(cfg);
  BfsParams params;
  params.n = 128;
  params.threads = 2;
  params.degree = 1;
  params.seed = 9;
  BfsApp app(machine, params);
  app.setup();
  machine.run();
  EXPECT_TRUE(app.verify());
}

}  // namespace
}  // namespace emx::workloads
