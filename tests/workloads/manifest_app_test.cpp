// Satellite contract: an unknown app name fails with the same readable
// registry-derived message whether it arrives via a fresh manifest or
// inside a resumed checkpoint — exit 2 both ways, never a crash.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "snapshot/runner.hpp"
#include "snapshot/snapshot.hpp"
#include "workloads/registry.hpp"
#include "workloads/workload_suite.hpp"

namespace emx::workloads {
namespace {

TEST(ManifestApp, FreshRunRejectsUnknownApp) {
  snapshot::RunOptions opts;
  opts.manifest = test::tiny_manifest("bogus", 64, 2, 4);
  const snapshot::RunResult r = snapshot::run(opts);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_EQ(r.error, unknown_app_message("bogus"));
}

TEST(ManifestApp, EmptyAppRejectedTheSameWay) {
  snapshot::RunOptions opts;
  opts.manifest = test::tiny_manifest("", 64, 2, 4);
  const snapshot::RunResult r = snapshot::run(opts);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_EQ(r.error, unknown_app_message(""));
}

// The resume path: capture a real checkpoint, rewrite its embedded
// manifest to name an app this build does not know (the situation a
// checkpoint from a newer build creates), and resume. The failure must
// be the identical registry message, not a divergence report or crash.
TEST(ManifestApp, ResumedManifestRejectsUnknownApp) {
  const snapshot::RunManifest m = test::tiny_manifest("ptrchase", 64, 2, 4);
  snapshot::RunOptions ck;
  ck.manifest = m;
  ck.checkpoint_dir = ::testing::TempDir() + "emx_wl_unknown_app";
  std::filesystem::remove_all(ck.checkpoint_dir);
  {
    snapshot::RunOptions probe;
    probe.manifest = m;
    const snapshot::RunResult r = snapshot::run(probe);
    ASSERT_EQ(r.exit_code, 0) << r.error;
    ck.checkpoint_every = r.end_cycle / 2;
  }
  const snapshot::RunResult checkpointed = snapshot::run(ck);
  ASSERT_EQ(checkpointed.exit_code, 0) << checkpointed.error;
  ASSERT_FALSE(checkpointed.checkpoints_written.empty());
  const std::string& path = checkpointed.checkpoints_written.front();

  snapshot::SnapshotFile file;
  ASSERT_EQ(file.read_file(path), "");
  snapshot::RunManifest saved;
  Cycle cycle = 0;
  ASSERT_EQ(snapshot::read_header(file, saved, cycle), "");
  saved.app = "bogus";
  ser::Serializer s;
  saved.save(s);
  s.u64(cycle);
  bool rewrote = false;
  for (auto& sec : file.sections) {
    if (sec.name == "manifest") {
      sec.payload = s.data();
      rewrote = true;
    }
  }
  ASSERT_TRUE(rewrote);
  ASSERT_EQ(file.write_file(path), "");

  snapshot::RunOptions res;
  res.manifest = saved;  // agrees with the tampered file: past the
                         // diff gate, into the registry lookup
  res.resume_path = path;
  const snapshot::RunResult resumed = snapshot::run(res);
  EXPECT_EQ(resumed.exit_code, 2);
  EXPECT_EQ(resumed.error, unknown_app_message("bogus"));
  std::filesystem::remove_all(ck.checkpoint_dir);
}

}  // namespace
}  // namespace emx::workloads
