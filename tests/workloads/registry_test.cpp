// The workload registry contract: one catalogue, deterministic order,
// loud failure on every misuse (duplicate names, null builders, metrics
// against unsealed components, unknown apps).
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "workloads/registry.hpp"

namespace emx::workloads {
namespace {

TEST(WorkloadRegistry, BuiltinsRegisteredInStableOrder) {
  const auto& specs = Registry::instance().specs();
  ASSERT_GE(specs.size(), 8u);
  // Paper apps first (their registration order predates the registry and
  // is frozen), then the irregular suite.
  EXPECT_EQ(specs[0].name, "sort");
  EXPECT_EQ(specs[1].name, "fft");
  EXPECT_EQ(specs[2].name, "fft-cyclic");
  EXPECT_EQ(specs[3].name, "jacobi");
  EXPECT_EQ(specs[4].name, "bfs");
  EXPECT_EQ(specs[5].name, "spmv");
  EXPECT_EQ(specs[6].name, "ptrchase");
  EXPECT_EQ(specs[7].name, "histsort");
}

TEST(WorkloadRegistry, EverySpecIsComplete) {
  for (const Spec& spec : Registry::instance().specs()) {
    EXPECT_FALSE(spec.description.empty()) << spec.name;
    EXPECT_GT(spec.default_size_per_proc, 0u) << spec.name;
    EXPECT_GT(spec.default_threads, 0u) << spec.name;
    EXPECT_NE(spec.build, nullptr) << spec.name;
    // Every builtin reports against the always-present simulation core.
    EXPECT_EQ(spec.metrics_component, "sim") << spec.name;
  }
}

TEST(WorkloadRegistry, IrregularSuiteDefaultSizes) {
  EXPECT_EQ(Registry::instance().find("bfs")->default_size_per_proc, 512u);
  EXPECT_EQ(Registry::instance().find("spmv")->default_size_per_proc, 512u);
  EXPECT_EQ(Registry::instance().find("ptrchase")->default_size_per_proc,
            256u);
  EXPECT_EQ(Registry::instance().find("histsort")->default_size_per_proc,
            512u);
}

TEST(WorkloadRegistry, FindUnknownReturnsNull) {
  EXPECT_EQ(Registry::instance().find("bogus"), nullptr);
  EXPECT_EQ(Registry::instance().find(""), nullptr);
}

TEST(WorkloadRegistry, NameListJoinsInOrder) {
  const std::string list = Registry::instance().name_list(" | ");
  EXPECT_NE(list.find("sort | fft | fft-cyclic | jacobi"), std::string::npos);
  EXPECT_NE(list.find("bfs | spmv | ptrchase | histsort"), std::string::npos);
}

TEST(WorkloadRegistry, UnknownAppMessageNamesEveryApp) {
  const std::string msg = unknown_app_message("bogus");
  EXPECT_NE(msg.find("unknown app 'bogus'"), std::string::npos);
  for (const Spec& spec : Registry::instance().specs()) {
    EXPECT_NE(msg.find(spec.name), std::string::npos) << spec.name;
  }
}

TEST(WorkloadRegistryDeathTest, DuplicateNamePanics) {
  Registry local;
  Spec spec;
  spec.name = "dup";
  spec.build = [](Machine&, const Params&) -> std::unique_ptr<Workload> {
    return nullptr;
  };
  local.add(spec);
  EXPECT_DEATH(local.add(spec), "registered twice");
}

TEST(WorkloadRegistryDeathTest, EmptyNamePanics) {
  Registry local;
  Spec spec;
  spec.build = [](Machine&, const Params&) -> std::unique_ptr<Workload> {
    return nullptr;
  };
  EXPECT_DEATH(local.add(spec), "empty name");
}

TEST(WorkloadRegistryDeathTest, NullBuilderPanics) {
  Registry local;
  Spec spec;
  spec.name = "nobuild";
  EXPECT_DEATH(local.add(spec), "without a builder");
}

TEST(WorkloadBuild, UnknownAppReturnsTheSharedMessage) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine machine(cfg);
  std::string error;
  Params params;
  EXPECT_EQ(build(machine, "bogus", params, error), nullptr);
  EXPECT_EQ(error, unknown_app_message("bogus"));
}

TEST(WorkloadBuild, BuildsARunnableWorkload) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine machine(cfg);
  std::string error;
  Params params;
  params.size_per_proc = 32;
  params.threads = 2;
  params.seed = 7;
  auto workload = build(machine, "bfs", params, error);
  ASSERT_NE(workload, nullptr) << error;
  machine.run();
  EXPECT_TRUE(workload->verifiable());
  EXPECT_TRUE(workload->verify());
}

// Satellite 6: a plugin whose metrics contribution names a component
// that never made it into the sealed registry must fail at build time,
// not silently report into the void.
TEST(WorkloadBuildDeathTest, UnsealedMetricsComponentPanics) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine machine(cfg);
  EXPECT_DEATH((void)machine.sealed_component("not-a-component"),
               "no sealed component named 'not-a-component'");
}

TEST(Machine, SealedComponentResolvesCoreUnits) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine machine(cfg);
  EXPECT_NE(machine.sealed_component("sim"), nullptr);
  EXPECT_NE(machine.sealed_component("network"), nullptr);
  EXPECT_NE(machine.sealed_component("pe0"), nullptr);
  EXPECT_NE(machine.sealed_component("pe1"), nullptr);
}

}  // namespace
}  // namespace emx::workloads
