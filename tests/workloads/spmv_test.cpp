// SpMV workload: bitwise correctness vs the host reference across
// (n, P, h) points, frozen default-size cycles, determinism,
// checkpoint/resume byte-identity, and fault tolerance.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "workloads/spmv.hpp"
#include "workloads/workload_suite.hpp"

namespace emx::workloads {
namespace {

struct Point {
  std::uint32_t procs;
  std::uint64_t size_per_proc;
  std::uint32_t threads;
};

class SpmvCorrectness : public ::testing::TestWithParam<Point> {};

TEST_P(SpmvCorrectness, MatchesHostReferenceBitwise) {
  const Point pt = GetParam();
  MachineConfig cfg;
  cfg.proc_count = pt.procs;
  Machine machine(cfg);
  SpmvParams params;
  params.n = pt.size_per_proc * pt.procs;
  params.threads = pt.threads;
  params.seed = 42;
  SpmvApp app(machine, params);
  app.setup();
  machine.run();
  EXPECT_TRUE(app.verify());
  // The integer-valued f32 construction makes the sum order irrelevant:
  // the match is exact, not within-epsilon.
  EXPECT_EQ(app.gather_y(), app.host_reference());
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpmvCorrectness,
                         ::testing::Values(Point{2, 32, 1}, Point{4, 64, 2},
                                           Point{8, 32, 4}, Point{3, 48, 3}));

TEST(SpmvWorkload, FrozenDefaultCycles) {
  const auto m = test::tiny_manifest("spmv", 512, 4, 16);
  const auto r = test::run_verified(m);
  EXPECT_EQ(r.end_cycle, 136245u);
}

TEST(SpmvWorkload, Deterministic) {
  test::expect_deterministic(test::tiny_manifest("spmv", 64, 3, 4));
}

TEST(SpmvWorkload, CheckpointRoundTrip) {
  test::expect_roundtrip(test::tiny_manifest("spmv", 64, 2, 4), "spmv");
}

TEST(SpmvWorkload, FaultSweepSmoke) {
  test::expect_fault_tolerant(test::tiny_manifest("spmv", 64, 4, 4));
}

TEST(SpmvWorkload, SingleRowNnzStillVerifies) {
  // Degenerate matrix (one nonzero per row): the pairwise gather path
  // never fires and every gather takes the odd-leftover single read.
  MachineConfig cfg;
  cfg.proc_count = 4;
  Machine machine(cfg);
  SpmvParams params;
  params.n = 128;
  params.threads = 2;
  params.row_nnz = 1;
  params.seed = 9;
  SpmvApp app(machine, params);
  app.setup();
  machine.run();
  EXPECT_TRUE(app.verify());
}

}  // namespace
}  // namespace emx::workloads
