// Shared contract suite for workload plugins: every registered app must
// hold the same guarantees — deterministic cycle counts, byte-identical
// checkpoint round-trips, verified results under fault injection. Each
// per-app test file instantiates these helpers at its own sizes.
#pragma once

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "snapshot/runner.hpp"
#include "snapshot/snapshot.hpp"

namespace emx::workloads::test {

inline snapshot::RunManifest tiny_manifest(const std::string& app,
                                           std::uint64_t size_per_proc,
                                           std::uint32_t threads,
                                           std::uint32_t procs) {
  snapshot::RunManifest m;
  m.app = app;
  m.size_per_proc = size_per_proc;
  m.threads = threads;
  m.seed = 1;
  m.config.proc_count = procs;
  return m;
}

/// One verified run through the real runner; returns the result.
inline snapshot::RunResult run_verified(const snapshot::RunManifest& m) {
  snapshot::RunOptions opts;
  opts.manifest = m;
  const snapshot::RunResult r = snapshot::run(opts);
  EXPECT_EQ(r.exit_code, 0) << r.error;
  EXPECT_TRUE(r.result_checked);
  EXPECT_TRUE(r.result_ok);
  return r;
}

/// Two identical runs must agree on every observable.
inline void expect_deterministic(const snapshot::RunManifest& m) {
  const snapshot::RunResult a = run_verified(m);
  const snapshot::RunResult b = run_verified(m);
  EXPECT_EQ(a.end_cycle, b.end_cycle);
  EXPECT_EQ(a.trace_events, b.trace_events);
  EXPECT_EQ(a.trace_crc, b.trace_crc);
}

/// Checkpoint the run, resume from every checkpoint, and require the
/// byte-verification to pass and the continuation to match the baseline
/// (the roundtrip contract from tests/snapshot/roundtrip_test.cpp).
inline void expect_roundtrip(const snapshot::RunManifest& m,
                             const char* tag) {
  snapshot::RunOptions base;
  base.manifest = m;
  const snapshot::RunResult baseline = snapshot::run(base);
  ASSERT_EQ(baseline.exit_code, 0) << baseline.error;
  ASSERT_GT(baseline.end_cycle, 0u);

  snapshot::RunOptions ck = base;
  ck.checkpoint_every = baseline.end_cycle / 3;
  ck.checkpoint_dir = ::testing::TempDir() + "emx_wl_" + tag;
  std::filesystem::remove_all(ck.checkpoint_dir);
  const snapshot::RunResult checkpointed = snapshot::run(ck);
  ASSERT_EQ(checkpointed.exit_code, 0) << checkpointed.error;
  EXPECT_EQ(baseline.end_cycle, checkpointed.end_cycle);
  EXPECT_EQ(baseline.trace_crc, checkpointed.trace_crc);
  ASSERT_GE(checkpointed.checkpoints_written.size(), 2u);

  for (const std::string& path : checkpointed.checkpoints_written) {
    snapshot::RunOptions res = base;
    res.resume_path = path;
    const snapshot::RunResult resumed = snapshot::run(res);
    ASSERT_EQ(resumed.exit_code, 0) << path << ": " << resumed.error;
    EXPECT_EQ(baseline.end_cycle, resumed.end_cycle);
    EXPECT_EQ(baseline.trace_events, resumed.trace_events);
    EXPECT_EQ(baseline.trace_crc, resumed.trace_crc);
    EXPECT_EQ(baseline.result_ok, resumed.result_ok);
  }
  std::filesystem::remove_all(ck.checkpoint_dir);
}

/// Drop + duplicate faults with the reliable transport on: the result
/// must still verify (exactly-once delivery makes the one-sided
/// invocation and split-phase traffic fault-tolerant).
inline void expect_fault_tolerant(snapshot::RunManifest m) {
  m.config.fault.drop_rate = 0.02;
  m.config.fault.duplicate_rate = 0.02;
  m.config.fault.timeout_cycles = 2048;
  m.config.watchdog_cycles = 4'000'000;
  const snapshot::RunResult r = run_verified(m);
  EXPECT_TRUE(r.report.fault_enabled);
}

}  // namespace emx::workloads::test
