// Pointer-chase workload: final-node correctness vs the host reference
// across (n, P, h) points, frozen default-size cycles, determinism,
// checkpoint/resume byte-identity, and fault tolerance.
#include <gtest/gtest.h>

#include <set>

#include "core/machine.hpp"
#include "workloads/ptrchase.hpp"
#include "workloads/workload_suite.hpp"

namespace emx::workloads {
namespace {

struct Point {
  std::uint32_t procs;
  std::uint64_t size_per_proc;
  std::uint32_t threads;
  std::uint32_t hops;
};

class PtrchaseCorrectness : public ::testing::TestWithParam<Point> {};

TEST_P(PtrchaseCorrectness, MatchesHostReference) {
  const Point pt = GetParam();
  MachineConfig cfg;
  cfg.proc_count = pt.procs;
  Machine machine(cfg);
  PtrchaseParams params;
  params.n = pt.size_per_proc * pt.procs;
  params.threads = pt.threads;
  params.hops = pt.hops;
  params.seed = 42;
  PtrchaseApp app(machine, params);
  app.setup();
  machine.run();
  EXPECT_TRUE(app.verify());
  EXPECT_EQ(app.gather_finals(), app.host_reference());
}

INSTANTIATE_TEST_SUITE_P(Sizes, PtrchaseCorrectness,
                         ::testing::Values(Point{2, 32, 1, 16},
                                           Point{4, 64, 2, 64},
                                           Point{8, 32, 4, 96},
                                           Point{3, 16, 3, 48}));

TEST(PtrchaseWorkload, RingIsOneGlobalCycle) {
  // The Sattolo construction guarantees a single n-cycle: chasing n
  // links from any start must return to it, and no shorter prefix may.
  MachineConfig cfg;
  cfg.proc_count = 4;
  Machine machine(cfg);
  PtrchaseParams params;
  params.n = 64;
  params.threads = 1;
  params.hops = 64;  // exactly n: every stream ends at its start
  params.seed = 5;
  PtrchaseApp app(machine, params);
  app.setup();
  machine.run();
  ASSERT_TRUE(app.verify());
  const std::vector<Word> finals = app.gather_finals();
  ASSERT_EQ(finals.size(), 4u);
  for (ProcId pe = 0; pe < 4; ++pe) {
    EXPECT_EQ(finals[pe], app.start_node(pe, 0)) << "pe " << pe;
  }
}

TEST(PtrchaseWorkload, StreamsStartAtDistinctNodes) {
  MachineConfig cfg;
  cfg.proc_count = 4;
  Machine machine(cfg);
  PtrchaseParams params;
  params.n = 256;
  params.threads = 4;
  PtrchaseApp app(machine, params);
  std::set<Word> starts;
  for (ProcId pe = 0; pe < 4; ++pe) {
    for (std::uint32_t t = 0; t < params.threads; ++t) {
      starts.insert(app.start_node(pe, t));
    }
  }
  EXPECT_EQ(starts.size(), 16u);
}

TEST(PtrchaseWorkload, FrozenDefaultCycles) {
  const auto m = test::tiny_manifest("ptrchase", 256, 4, 16);
  const auto r = test::run_verified(m);
  EXPECT_EQ(r.end_cycle, 34813u);
}

TEST(PtrchaseWorkload, Deterministic) {
  test::expect_deterministic(test::tiny_manifest("ptrchase", 64, 3, 4));
}

TEST(PtrchaseWorkload, CheckpointRoundTrip) {
  test::expect_roundtrip(test::tiny_manifest("ptrchase", 64, 2, 4), "ptrchase");
}

TEST(PtrchaseWorkload, FaultSweepSmoke) {
  test::expect_fault_tolerant(test::tiny_manifest("ptrchase", 64, 4, 4));
}

}  // namespace
}  // namespace emx::workloads
