// Histogram-sort workload: sorted-output correctness vs a host
// std::sort across (n, P, h) points, frozen default-size cycles,
// determinism, checkpoint/resume byte-identity, and fault tolerance.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/machine.hpp"
#include "workloads/histsort.hpp"
#include "workloads/workload_suite.hpp"

namespace emx::workloads {
namespace {

struct Point {
  std::uint32_t procs;
  std::uint64_t size_per_proc;
  std::uint32_t threads;
};

class HistsortCorrectness : public ::testing::TestWithParam<Point> {};

TEST_P(HistsortCorrectness, ProducesTheGloballySortedSequence) {
  const Point pt = GetParam();
  MachineConfig cfg;
  cfg.proc_count = pt.procs;
  Machine machine(cfg);
  HistsortParams params;
  params.n = pt.size_per_proc * pt.procs;
  params.threads = pt.threads;
  params.seed = 42;
  HistsortApp app(machine, params);
  app.setup();
  machine.run();
  EXPECT_TRUE(app.verify());
  const std::vector<Word> sorted = app.gather_sorted();
  EXPECT_EQ(sorted, app.host_reference());
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, HistsortCorrectness,
                         ::testing::Values(Point{2, 32, 1}, Point{4, 64, 2},
                                           Point{8, 32, 4}, Point{3, 48, 3}));

TEST(HistsortWorkload, BucketPartitionIsMonotone) {
  MachineConfig cfg;
  cfg.proc_count = 8;
  Machine machine(cfg);
  HistsortParams params;
  params.n = 64;
  HistsortApp app(machine, params);
  EXPECT_EQ(app.bucket_owner(0), 0u);
  EXPECT_EQ(app.bucket_owner(kHistsortKeyRange - 1), 7u);
  ProcId prev = 0;
  for (Word key = 0; key < kHistsortKeyRange;
       key += kHistsortKeyRange / 64) {
    const ProcId owner = app.bucket_owner(key);
    EXPECT_GE(owner, prev);
    EXPECT_LT(owner, 8u);
    prev = owner;
  }
}

TEST(HistsortWorkload, FrozenDefaultCycles) {
  const auto m = test::tiny_manifest("histsort", 512, 4, 16);
  const auto r = test::run_verified(m);
  EXPECT_EQ(r.end_cycle, 26498u);
}

TEST(HistsortWorkload, Deterministic) {
  test::expect_deterministic(test::tiny_manifest("histsort", 64, 3, 4));
}

TEST(HistsortWorkload, CheckpointRoundTrip) {
  test::expect_roundtrip(test::tiny_manifest("histsort", 64, 2, 4), "histsort");
}

TEST(HistsortWorkload, FaultSweepSmoke) {
  // The all-to-all one-sided scatter is the reliable transport's stress
  // case: a dropped append that was not retransmitted would deadlock
  // the drain (watchdog) or lose a key (verify).
  test::expect_fault_tolerant(test::tiny_manifest("histsort", 64, 4, 4));
}

TEST(HistsortWorkload, SinglePeDegeneratesToLocalSort) {
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine machine(cfg);
  HistsortParams params;
  params.n = 96;
  params.threads = 3;
  params.seed = 9;
  HistsortApp app(machine, params);
  app.setup();
  machine.run();
  EXPECT_TRUE(app.verify());
}

}  // namespace
}  // namespace emx::workloads
