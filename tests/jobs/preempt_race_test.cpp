// The preemption races the emx_serve daemon leans on, proven at the
// ProcessPool + emx_run level: a kill_child() exit is distinguishable
// from a crash and classified as resumable; a SIGKILL at any moment —
// including racing a checkpoint write — leaves only intact snapshot
// files, so the previous checkpoint always carries the resume.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <signal.h>

#include <gtest/gtest.h>

#include "jobs/clock.hpp"
#include "jobs/process_pool.hpp"
#include "jobs/supervisor.hpp"
#include "snapshot/format.hpp"
#include "snapshot/runner.hpp"

namespace emx::jobs {
namespace {

namespace fs = std::filesystem;

class PreemptRaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "preempt_race_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_ / "ck");
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// argv for a long-enough sort run with checkpointing armed.
  Command worker(const std::string& extra = "") {
    Command cmd;
    cmd.argv = {EMX_RUN_BIN,
                "--app=sort",
                "--procs=16",
                "--size-per-proc=16384",
                "--threads=4",
                "--checkpoint-every=20000",
                "--checkpoint-on-signal=true",
                "--checkpoint-dir=" + (dir_ / "ck").string(),
                "--result-json=" + (dir_ / "result.json").string()};
    if (!extra.empty()) cmd.argv.push_back(extra);
    cmd.stdout_path = (dir_ / "out.txt").string();
    cmd.stderr_path = (dir_ / "err.txt").string();
    return cmd;
  }

  /// Polls until the tagged child exits; returns its status.
  ExitStatus reap(ProcessPool& pool, Clock& clock) {
    std::vector<ExitStatus> exits;
    while (exits.empty()) {
      pool.poll(exits);
      if (exits.empty()) clock.sleep_ms(2);
    }
    return exits.front();
  }

  static std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  fs::path dir_;
};

TEST_F(PreemptRaceTest, KillChildIsPreemptedAndResumable) {
  Clock& clock = real_clock();
  ProcessPool pool(clock);
  std::string err;
  ASSERT_GT(pool.start(worker(), 7, 0, err), 0) << err;

  // Wait for the first periodic checkpoint: proof the worker is past
  // setup and its SIGUSR1 handler is armed (a signal into the exec
  // window would just kill it).
  std::string first;
  for (int i = 0; i < 2000 && first.empty(); ++i) {
    clock.sleep_ms(2);
    first = latest_checkpoint((dir_ / "ck").string(), "sort");
    std::vector<ExitStatus> exits;
    ASSERT_EQ(pool.poll(exits), 0u) << "worker finished before preemption; "
                                       "grow the workload";
  }
  ASSERT_FALSE(first.empty());

  // Request a checkpoint-on-demand and wait for a *fresh* one to land,
  // exactly as the daemon's preemption handshake does.
  ASSERT_TRUE(pool.signal_child(7, SIGUSR1));
  std::string ck = first;
  for (int i = 0; i < 2000 && ck == first; ++i) {
    clock.sleep_ms(2);
    ck = latest_checkpoint((dir_ / "ck").string(), "sort");
    std::vector<ExitStatus> exits;
    ASSERT_EQ(pool.poll(exits), 0u) << "worker finished before preemption; "
                                       "grow the workload";
  }
  ASSERT_NE(ck, first) << "no fresh checkpoint landed after SIGUSR1";

  ASSERT_TRUE(pool.kill_child(7));
  const ExitStatus es = reap(pool, clock);
  EXPECT_EQ(es.tag, 7u);
  EXPECT_TRUE(es.preempted) << "kill_child exits must be marked";
  EXPECT_TRUE(es.signaled);
  EXPECT_EQ(es.sig, SIGKILL);
  EXPECT_FALSE(es.timed_out);
  EXPECT_EQ(classify_exit(es), ExitClass::kRetryResume)
      << "a preemption kill must be retryable, not permanent";

  // The victim resumes from that checkpoint to a byte-identical result.
  ASSERT_GT(pool.start(worker("--resume=" + ck), 8, 0, err), 0) << err;
  const ExitStatus done = reap(pool, clock);
  EXPECT_FALSE(done.signaled) << slurp((dir_ / "err.txt").string());
  EXPECT_EQ(done.code, 0) << slurp((dir_ / "err.txt").string());

  snapshot::RunOptions clean;
  clean.manifest.app = "sort";
  clean.manifest.config.proc_count = 16;
  clean.manifest.size_per_proc = 16384;
  clean.manifest.threads = 4;
  clean.manifest.iterations = 8;
  clean.manifest.seed = 1;
  clean.result_json_path = (dir_ / "clean.json").string();
  ASSERT_EQ(snapshot::run(clean).exit_code, 0);
  EXPECT_EQ(slurp((dir_ / "result.json").string()),
            slurp((dir_ / "clean.json").string()));
}

TEST_F(PreemptRaceTest, KillRacingTheCheckpointLeavesOnlyIntactSnapshots) {
  // The daemon's worst case: SIGUSR1 then SIGKILL before the fresh
  // checkpoint lands — the kill can race the checkpoint write itself.
  // Atomic publication means every *.emxsnap that exists at all is
  // whole, so resume always has an intact (if slightly older) anchor.
  Clock& clock = real_clock();
  ProcessPool pool(clock);
  std::string err;
  ASSERT_GT(pool.start(worker(), 9, 0, err), 0) << err;

  // Let the periodic chain produce at least one checkpoint first.
  std::string first;
  for (int i = 0; i < 2000 && first.empty(); ++i) {
    clock.sleep_ms(2);
    first = latest_checkpoint((dir_ / "ck").string(), "sort");
    std::vector<ExitStatus> exits;
    ASSERT_EQ(pool.poll(exits), 0u) << "worker finished before a "
                                       "checkpoint; grow the workload";
  }
  ASSERT_FALSE(first.empty());

  // Fire the handshake and kill immediately — no grace.
  ASSERT_TRUE(pool.signal_child(9, SIGUSR1));
  ASSERT_TRUE(pool.kill_child(9));
  const ExitStatus es = reap(pool, clock);
  EXPECT_TRUE(es.preempted);

  // Every snapshot present must parse whole; no torn files, and any
  // atomic-write temp left behind is not a resume candidate.
  std::size_t snaps = 0;
  for (const auto& entry : fs::directory_iterator(dir_ / "ck")) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 8 || name.substr(name.size() - 8) != ".emxsnap")
      continue;
    ++snaps;
    snapshot::RunManifest m;
    Cycle cycle = 0;
    EXPECT_EQ(snapshot::load_manifest(entry.path().string(),
                                      snapshot::FileKind::kCheckpoint, m,
                                      cycle),
              "")
        << name << " is torn";
  }
  EXPECT_GE(snaps, 1u);

  // And the newest intact one resumes to completion.
  const std::string ck = latest_checkpoint((dir_ / "ck").string(), "sort");
  ASSERT_FALSE(ck.empty());
  ASSERT_GT(pool.start(worker("--resume=" + ck), 10, 0, err), 0) << err;
  const ExitStatus done = reap(pool, clock);
  EXPECT_FALSE(done.signaled) << slurp((dir_ / "err.txt").string());
  EXPECT_EQ(done.code, 0) << slurp((dir_ / "err.txt").string());
}

}  // namespace
}  // namespace emx::jobs
