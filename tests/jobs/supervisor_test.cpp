// Supervisor policy units plus retry/degradation behaviour against stub
// workers (shell scripts standing in for emx_run, so failure schedules
// are exact and the tests stay fast).
#include "jobs/supervisor.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/stat.h>

#include <gtest/gtest.h>

#include "common/fsio.hpp"

namespace emx::jobs {
namespace {

namespace fs = std::filesystem;

ExitStatus exited(int code) {
  ExitStatus es;
  es.code = code;
  return es;
}

ExitStatus killed(int sig) {
  ExitStatus es;
  es.signaled = true;
  es.sig = sig;
  return es;
}

TEST(SupervisorPolicy, ClassifiesEmxRunExitCodes) {
  EXPECT_EQ(classify_exit(exited(0)), ExitClass::kOk);
  // Deterministic verdicts: retrying would reproduce them.
  for (const int code : {1, 2, 3, 4, 6, 127, 42})
    EXPECT_EQ(classify_exit(exited(code)), ExitClass::kPermanent) << code;
  // Snapshot divergence taints the checkpoint chain itself.
  EXPECT_EQ(classify_exit(exited(5)), ExitClass::kRetryScratch);
  EXPECT_EQ(classify_exit(killed(9)), ExitClass::kRetryResume);
  EXPECT_EQ(classify_exit(killed(15)), ExitClass::kRetryResume);
  ExitStatus timeout = killed(9);
  timeout.timed_out = true;
  EXPECT_EQ(classify_exit(timeout), ExitClass::kRetryResume);
}

TEST(SupervisorPolicy, ExitReasonsAreStableTokens) {
  EXPECT_EQ(exit_reason(exited(1)), "wrong-result");
  EXPECT_EQ(exit_reason(exited(3)), "checker");
  EXPECT_EQ(exit_reason(exited(4)), "watchdog");
  EXPECT_EQ(exit_reason(exited(5)), "snapshot-divergence");
  EXPECT_EQ(exit_reason(exited(6)), "verify");
  EXPECT_EQ(exit_reason(exited(127)), "exec-failed");
  EXPECT_EQ(exit_reason(exited(42)), "exit-42");
  EXPECT_EQ(exit_reason(killed(9)), "signal-9");
  ExitStatus timeout = killed(9);
  timeout.timed_out = true;
  EXPECT_EQ(exit_reason(timeout), "timeout");
}

TEST(SupervisorPolicy, BackoffDoublesToTheCap) {
  EXPECT_EQ(backoff_delay_ms(1, 250, 8000), 250);
  EXPECT_EQ(backoff_delay_ms(2, 250, 8000), 500);
  EXPECT_EQ(backoff_delay_ms(3, 250, 8000), 1000);
  EXPECT_EQ(backoff_delay_ms(6, 250, 8000), 8000);
  EXPECT_EQ(backoff_delay_ms(60, 250, 8000), 8000) << "no overflow";
  EXPECT_EQ(backoff_delay_ms(1, 0, 8000), 0);
  EXPECT_EQ(backoff_delay_ms(4, 100, 50), 100) << "cap below base: base wins";
}

TEST(SupervisorPolicy, LatestCheckpointIgnoresCrashDumpsAndPicksNewest) {
  const fs::path dir = fs::path(::testing::TempDir()) / "latest_ck";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto touch = [&dir](const std::string& name) {
    std::ofstream((dir / name).string()) << "x";
  };
  EXPECT_EQ(latest_checkpoint(dir.string(), "sort"), "");
  touch("sort-c000000000100.emxsnap");
  touch("sort-c000000002000.emxsnap");
  touch("sort-c000000000900.emxsnap");
  touch("crash-sort.emxsnap");     // never a resume candidate
  touch("bfs-c000000009000.emxsnap");  // different app
  EXPECT_EQ(latest_checkpoint(dir.string(), "sort"),
            (dir / "sort-c000000002000.emxsnap").string());
  EXPECT_EQ(latest_checkpoint((dir / "missing").string(), "sort"), "");
  fs::remove_all(dir);
}

// --- stub-worker integration ------------------------------------------

class SupervisorStubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "supervisor_stub";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Installs an executable stub standing in for emx_run. The stub's
  /// script body can use $out (the --result-json target path).
  std::string install_stub(const std::string& body) {
    const std::string path = (dir_ / "fake_emx_run").string();
    std::ofstream out(path);
    out << "#!/bin/sh\n"
           "out=\"\"\n"
           "for a in \"$@\"; do\n"
           "  case \"$a\" in\n"
           "    --result-json=*) out=\"${a#--result-json=}\" ;;\n"
           "  esac\n"
           "done\n"
        << body << "\n";
    out.close();
    ::chmod(path.c_str(), 0755);
    return path;
  }

  SupervisorOptions base_options(const std::string& stub) {
    SupervisorOptions opts;
    opts.spec.name = "stub";
    opts.spec.apps = {"sort"};
    opts.spec.procs = {4};
    opts.spec.threads = {2};
    opts.spec.sizes_per_proc = {64};
    opts.spec.seeds = {1};
    opts.out_dir = (dir_ / "out").string();
    opts.emx_run = stub;
    opts.parallel = 2;
    opts.max_retries = 2;
    opts.backoff_ms = 1;  // keep retry schedules fast under test
    opts.quiet = true;
    return opts;
  }

  static std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  fs::path dir_;
};

TEST_F(SupervisorStubTest, HappyPathBlessesResultsIntoTheCache) {
  const std::string stub = install_stub(
      "printf '{\"exit_code\":0,\"cycles\":123}' > \"$out\"\nexit 0");
  SweepOutcome outcome;
  std::string err;
  const int code = run_sweep(base_options(stub), outcome, err);
  EXPECT_EQ(code, 0) << err;
  ASSERT_EQ(outcome.cells.size(), 1u);
  EXPECT_EQ(outcome.cells[0].status, "ok");
  EXPECT_EQ(outcome.cells[0].attempts, 1u);
  EXPECT_EQ(outcome.cells[0].result_bytes,
            "{\"exit_code\":0,\"cycles\":123}");
  // Blessed into the cache under the manifest key.
  const std::string cached =
      slurp((dir_ / "out" / "cache" / (outcome.cells[0].key + ".json"))
                .string());
  EXPECT_EQ(cached, outcome.cells[0].result_bytes);
  EXPECT_TRUE(fs::exists(outcome.aggregate_path));
  EXPECT_TRUE(fs::exists(outcome.provenance_path));
}

TEST_F(SupervisorStubTest, CrashOnceThenOkRetriesAndSucceeds) {
  // First invocation SIGKILLs itself; later ones produce a result.
  const std::string stub = install_stub(
      "if [ ! -e \"$out.once\" ]; then touch \"$out.once\"; kill -9 $$; fi\n"
      "printf '{\"exit_code\":0,\"cycles\":123}' > \"$out\"\nexit 0");
  SweepOutcome outcome;
  std::string err;
  const int code = run_sweep(base_options(stub), outcome, err);
  EXPECT_EQ(code, 0) << err;
  ASSERT_EQ(outcome.cells.size(), 1u);
  EXPECT_EQ(outcome.cells[0].status, "ok");  // no checkpoint → fresh retry
  EXPECT_EQ(outcome.cells[0].attempts, 2u);
}

TEST_F(SupervisorStubTest, PermanentFailureIsNeverRetried) {
  const std::string stub = install_stub("exit 3");  // checker findings
  SweepOutcome outcome;
  std::string err;
  const int code = run_sweep(base_options(stub), outcome, err);
  EXPECT_EQ(code, 1);
  ASSERT_EQ(outcome.cells.size(), 1u);
  EXPECT_EQ(outcome.cells[0].status, "failed:checker");
  EXPECT_EQ(outcome.cells[0].attempts, 1u) << "deterministic verdicts "
                                              "must not burn retries";
}

TEST_F(SupervisorStubTest, ExhaustedRetriesDegradeWithProvenance) {
  const std::string stub = install_stub("kill -9 $$");
  SweepOutcome outcome;
  std::string err;
  const int code = run_sweep(base_options(stub), outcome, err);
  EXPECT_EQ(code, 1);
  ASSERT_EQ(outcome.cells.size(), 1u);
  EXPECT_EQ(outcome.cells[0].status, "failed:signal-9");
  EXPECT_EQ(outcome.cells[0].attempts, 3u) << "1 try + max_retries=2";
  // The aggregate still emits, with the cell marked failed.
  const std::string agg = slurp(outcome.aggregate_path);
  EXPECT_NE(agg.find("failed:signal-9"), std::string::npos);
  EXPECT_NE(agg.find("\"result\": null"), std::string::npos);
}

TEST_F(SupervisorStubTest, SecondInvocationServesFromCache) {
  const std::string stub = install_stub(
      "printf '{\"exit_code\":0,\"cycles\":123}' > \"$out\"\nexit 0");
  SweepOutcome first, second;
  std::string err;
  ASSERT_EQ(run_sweep(base_options(stub), first, err), 0) << err;
  const std::string agg1 = slurp(first.aggregate_path);
  // Replace the stub with one that would fail — the cache must answer.
  const std::string broken = install_stub("exit 3");
  ASSERT_EQ(run_sweep(base_options(broken), second, err), 0) << err;
  EXPECT_EQ(second.cells[0].status, "cached");
  EXPECT_EQ(slurp(second.aggregate_path), agg1) << "byte-identical";
}

TEST_F(SupervisorStubTest, MixingSweepsInOneOutDirIsRefused) {
  const std::string stub = install_stub(
      "printf '{\"exit_code\":0,\"cycles\":123}' > \"$out\"\nexit 0");
  SweepOutcome outcome;
  std::string err;
  ASSERT_EQ(run_sweep(base_options(stub), outcome, err), 0) << err;
  SupervisorOptions other = base_options(stub);
  other.spec.seeds = {1, 2};  // different grid → different digest
  const int code = run_sweep(other, outcome, err);
  EXPECT_EQ(code, 2);
  EXPECT_NE(err.find("digest"), std::string::npos) << err;
}

TEST_F(SupervisorStubTest, LyingWorkerIsCaughtByResultValidation) {
  // Exit 0 but never writes the result file: must not be blessed.
  const std::string stub = install_stub("exit 0");
  SweepOutcome outcome;
  std::string err;
  const int code = run_sweep(base_options(stub), outcome, err);
  EXPECT_EQ(code, 1);
  ASSERT_EQ(outcome.cells.size(), 1u);
  EXPECT_EQ(outcome.cells[0].status, "failed:no-result-file");
}

TEST_F(SupervisorStubTest, MissingWorkerBinaryIsSetupError) {
  SupervisorOptions opts = base_options((dir_ / "nonexistent").string());
  SweepOutcome outcome;
  std::string err;
  EXPECT_EQ(run_sweep(opts, outcome, err), 2);
  EXPECT_NE(err.find("not executable"), std::string::npos) << err;
}

}  // namespace
}  // namespace emx::jobs
