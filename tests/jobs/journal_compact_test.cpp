// Journal compaction: the rewrite keeps exactly the entries it is
// given (values re-emitted byte-for-byte, types intact), re-sequences
// from zero, and is atomic — a crash mid-compaction leaves the old
// journal or the new one, never a blend.
#include "jobs/journal.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fsio.hpp"

namespace emx::jobs {
namespace {

namespace fs = std::filesystem;

class JournalCompactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "journal_compact_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "journal.jsonl").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string slurp() const {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  /// A realistic history: header, two jobs' starts/retries, terminals.
  void write_history() {
    Journal j;
    std::string err;
    ASSERT_TRUE(j.open(path_, err)) << err;
    ASSERT_TRUE(j.append("sweep", {{"name", "\"demo\""}, {"version", "1"}},
                         err))
        << err;
    ASSERT_TRUE(j.append("start", {{"job", "\"a-1111\""}, {"attempt", "1"}},
                         err))
        << err;
    ASSERT_TRUE(j.append("fail", {{"job", "\"a-1111\""},
                                  {"reason", "\"signal:9\""}},
                         err))
        << err;
    ASSERT_TRUE(j.append("start", {{"job", "\"a-1111\""}, {"attempt", "2"}},
                         err))
        << err;
    ASSERT_TRUE(j.append("done", {{"job", "\"a-1111\""},
                                  {"result_crc", "\"0badf00d\""}},
                         err))
        << err;
    ASSERT_TRUE(j.append("start", {{"job", "\"b-2222\""}, {"attempt", "1"}},
                         err))
        << err;
    ASSERT_TRUE(j.append("give-up", {{"job", "\"b-2222\""},
                                     {"reason", "\"exit:1\""}},
                         err))
        << err;
  }

  /// Keeps header + terminal facts only (what the supervisors keep).
  static std::vector<JournalEntry> survivors(
      const std::vector<JournalEntry>& all) {
    std::vector<JournalEntry> keep;
    for (const JournalEntry& e : all)
      if (e.event != "start" && e.event != "fail") keep.push_back(e);
    return keep;
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(JournalCompactTest, KeepsSurvivorsVerbatimAndResequences) {
  write_history();
  std::vector<JournalEntry> all;
  std::string warning, err;
  ASSERT_TRUE(Journal::load(path_, all, warning, err)) << err;
  ASSERT_EQ(all.size(), 7u);

  ASSERT_TRUE(Journal::compact(path_, survivors(all), err)) << err;

  std::vector<JournalEntry> after;
  ASSERT_TRUE(Journal::load(path_, after, warning, err)) << err;
  EXPECT_TRUE(warning.empty()) << warning;
  ASSERT_EQ(after.size(), 3u);
  // Re-sequenced from zero, original order preserved.
  EXPECT_EQ(after[0].seq, 0u);
  EXPECT_EQ(after[0].event, "sweep");
  EXPECT_EQ(after[1].seq, 1u);
  EXPECT_EQ(after[1].event, "done");
  EXPECT_EQ(after[2].seq, 2u);
  EXPECT_EQ(after[2].event, "give-up");
  // Values survive with their types: strings re-quoted, numbers bare.
  EXPECT_EQ(after[0].field("version"), "1");
  EXPECT_EQ(after[1].field("job"), "a-1111");
  EXPECT_EQ(after[1].field("result_crc"), "0badf00d");
  const std::string text = slurp();
  EXPECT_NE(text.find("\"job\":\"a-1111\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"version\":1,"), std::string::npos) << text;
}

TEST_F(JournalCompactTest, CompactedJournalAcceptsFurtherAppends) {
  write_history();
  std::vector<JournalEntry> all;
  std::string warning, err;
  ASSERT_TRUE(Journal::load(path_, all, warning, err)) << err;
  ASSERT_TRUE(Journal::compact(path_, survivors(all), err)) << err;

  // Re-opening resumes the sequence where compaction left it.
  Journal j;
  ASSERT_TRUE(j.open(path_, err)) << err;
  EXPECT_EQ(j.next_seq(), 3u);
  ASSERT_TRUE(j.append("start", {{"job", "\"c-3333\""}, {"attempt", "1"}},
                       err))
      << err;
  std::vector<JournalEntry> after;
  ASSERT_TRUE(Journal::load(path_, after, warning, err)) << err;
  ASSERT_EQ(after.size(), 4u);
  EXPECT_EQ(after.back().event, "start");
}

TEST_F(JournalCompactTest, KilledCompactionLeavesTheOldJournalIntact) {
  write_history();
  const std::string before = slurp();
  std::vector<JournalEntry> all;
  std::string warning, err;
  ASSERT_TRUE(Journal::load(path_, all, warning, err)) << err;

  // A compaction killed before the rename leaves only a stale temp file
  // beside the journal. Model exactly that: write the temp, never
  // rename. Load must see the untouched original and ignore the temp.
  const std::string stale =
      (dir_ / "journal.jsonl.emxtmp.1234").string();
  std::string content;
  std::uint64_t seq = 0;
  for (const JournalEntry& e : survivors(all))
    content += format_line(seq++, e.event, e.raw_fields);
  ASSERT_EQ(fsio::atomic_write_file(stale, content), "");

  EXPECT_EQ(slurp(), before);
  std::vector<JournalEntry> again;
  ASSERT_TRUE(Journal::load(path_, again, warning, err)) << err;
  EXPECT_EQ(again.size(), all.size());
}

TEST_F(JournalCompactTest, TornTailSurvivorsStillCompact) {
  write_history();
  // Tear the final line, as a crash mid-append would: load drops it
  // with a warning, and compaction of the survivors round-trips.
  std::string text = slurp();
  text.resize(text.size() - 9);
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << text;
  }
  std::vector<JournalEntry> all;
  std::string warning, err;
  ASSERT_TRUE(Journal::load(path_, all, warning, err)) << err;
  EXPECT_FALSE(warning.empty());
  ASSERT_EQ(all.size(), 6u);  // the give-up was torn off

  ASSERT_TRUE(Journal::compact(path_, survivors(all), err)) << err;
  std::vector<JournalEntry> after;
  ASSERT_TRUE(Journal::load(path_, after, warning, err)) << err;
  EXPECT_TRUE(warning.empty()) << warning;
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[1].event, "done");
}

}  // namespace
}  // namespace emx::jobs
