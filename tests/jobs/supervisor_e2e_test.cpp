// End-to-end: the supervisor driving the real emx_run binary
// (EMX_RUN_BIN, injected by CMake). Covers the full tentpole story:
// verified results, cache convergence, worker-flag fidelity, and a
// SIGKILL'd supervisor converging to a byte-identical aggregate.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/json.hpp"
#include "jobs/supervisor.hpp"

namespace emx::jobs {
namespace {

namespace fs = std::filesystem;

class SupervisorE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "supervisor_e2e";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  SupervisorOptions options(const std::string& out_name) {
    SupervisorOptions opts;
    opts.spec.name = "e2e";
    opts.spec.apps = {"sort"};
    opts.spec.procs = {4};
    opts.spec.threads = {2};
    opts.spec.sizes_per_proc = {64};
    opts.spec.seeds = {1, 2};
    opts.out_dir = (dir_ / out_name).string();
    opts.emx_run = EMX_RUN_BIN;
    opts.parallel = 2;
    opts.backoff_ms = 1;
    opts.checkpoint_every = 2000;
    opts.quiet = true;
    return opts;
  }

  static std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  fs::path dir_;
};

TEST_F(SupervisorE2eTest, SmallSweepProducesVerifiedFigureData) {
  SweepOutcome outcome;
  std::string err;
  ASSERT_EQ(run_sweep(options("out"), outcome, err), 0) << err;
  ASSERT_EQ(outcome.cells.size(), 2u);

  std::string perr;
  const json::Value agg =
      json::Value::parse(slurp(outcome.aggregate_path), perr);
  ASSERT_EQ(perr, "");
  const json::Value* cells = agg.find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->size(), 2u);
  for (const json::Value& cell : cells->items()) {
    EXPECT_EQ(cell.find("status")->as_string(), "ok");
    const json::Value* result = cell.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->find("exit_code")->as_int(-1), 0);
    EXPECT_GT(result->find("cycles")->as_int(), 0);
    EXPECT_TRUE(result->find("verified")->as_bool());
    EXPECT_EQ(result->find("app")->as_string(), "sort");
  }
}

TEST_F(SupervisorE2eTest, WorkerFlagsReproduceTheManifestExactly) {
  // Sweep a cell with non-default knobs; the worker's own result JSON
  // echoes the manifest CRC it actually ran, which must equal the CRC
  // the supervisor derived the cell key from. Any drift between
  // worker_flags() and emx_run's flag handling fails here.
  SupervisorOptions opts = options("out_flags");
  opts.spec.base.block_reads = true;
  opts.spec.base.iterations = 4;
  opts.spec.base.config.switch_save_cycles = 8;
  opts.spec.seeds = {3};
  SweepOutcome outcome;
  std::string err;
  ASSERT_EQ(run_sweep(opts, outcome, err), 0) << err;
  ASSERT_EQ(outcome.cells.size(), 1u);
  const std::string& key = outcome.cells[0].key;
  const std::string key_crc = key.substr(key.size() - 8);
  std::string perr;
  const json::Value result =
      json::Value::parse(outcome.cells[0].result_bytes, perr);
  ASSERT_EQ(perr, "");
  EXPECT_EQ(result.find("manifest_crc")->as_string(), key_crc)
      << "worker ran a different manifest than the cell key claims";
}

TEST_F(SupervisorE2eTest, RerunServesEveryCellFromCacheByteIdentically) {
  SweepOutcome first, second;
  std::string err;
  ASSERT_EQ(run_sweep(options("out"), first, err), 0) << err;
  ASSERT_EQ(run_sweep(options("out"), second, err), 0) << err;
  for (const CellOutcome& cell : second.cells)
    EXPECT_EQ(cell.status, "cached");
  EXPECT_EQ(slurp(first.aggregate_path), slurp(second.aggregate_path));
}

TEST_F(SupervisorE2eTest, KilledSupervisorConvergesByteIdentically) {
  // Reference: an undisturbed sweep in its own directory.
  SweepOutcome reference;
  std::string err;
  ASSERT_EQ(run_sweep(options("out_ref"), reference, err), 0) << err;

  // Chaos: a child process starts the same sweep into a second
  // directory and is SIGKILLed almost immediately — mid-journal,
  // mid-worker, wherever the timing lands.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    SweepOutcome ignored;
    std::string child_err;
    run_sweep(options("out_chaos"), ignored, child_err);
    ::_exit(0);
  }
  ::usleep(120 * 1000);
  ::kill(pid, SIGKILL);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);

  // Re-invoke over the same directory: must converge — adopt whatever
  // completed, resume or redo the rest — and match the reference bytes.
  SweepOutcome recovered;
  ASSERT_EQ(run_sweep(options("out_chaos"), recovered, err), 0) << err;
  EXPECT_EQ(slurp(recovered.aggregate_path),
            slurp(reference.aggregate_path));
  EXPECT_EQ(recovered.failed, 0u);
}

}  // namespace
}  // namespace emx::jobs
