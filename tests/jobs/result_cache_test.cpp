// ResultCache LRU cap: eviction removes the least-recently-used entry
// first, never a pinned one — so a supervisor or daemon that pins the
// keys it still references can never lose a result out from under an
// in-flight sweep or job.
#include "jobs/result_cache.hpp"

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fsio.hpp"

namespace emx::jobs {
namespace {

namespace fs = std::filesystem;

class ResultCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "result_cache_test";
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string cache_dir() const { return (dir_ / "cache").string(); }

  fs::path dir_;
};

TEST_F(ResultCacheTest, PublishLookupRoundTrip) {
  ResultCache c;
  std::string err;
  ASSERT_TRUE(c.open(cache_dir(), 0, err)) << err;
  ASSERT_EQ(c.publish("a", "result-a\n"), "");
  std::string bytes;
  ASSERT_TRUE(c.lookup("a", bytes));
  EXPECT_EQ(bytes, "result-a\n");
  EXPECT_FALSE(c.lookup("missing", bytes));
  EXPECT_EQ(c.entries(), 1u);
  EXPECT_EQ(c.total_bytes(), 9u);
}

TEST_F(ResultCacheTest, EvictsLeastRecentlyUsedFirst) {
  ResultCache c;
  std::string err;
  // Cap fits two 10-byte entries.
  ASSERT_TRUE(c.open(cache_dir(), 20, err)) << err;
  ASSERT_EQ(c.publish("a", "0123456789"), "");
  ASSERT_EQ(c.publish("b", "0123456789"), "");
  // Touch a: now b is the LRU entry.
  std::string bytes;
  ASSERT_TRUE(c.lookup("a", bytes));
  ASSERT_EQ(c.publish("c", "0123456789"), "");

  EXPECT_EQ(c.evictions(), 1u);
  EXPECT_EQ(c.entries(), 2u);
  EXPECT_TRUE(c.lookup("a", bytes));
  EXPECT_FALSE(c.lookup("b", bytes)) << "b was least recent";
  EXPECT_TRUE(c.lookup("c", bytes));
  EXPECT_FALSE(fs::exists(c.path_for("b")));
}

TEST_F(ResultCacheTest, PinnedEntriesAreNeverEvicted) {
  ResultCache c;
  std::string err;
  ASSERT_TRUE(c.open(cache_dir(), 20, err)) << err;
  ASSERT_EQ(c.publish("a", "0123456789"), "");
  c.pin("a");
  ASSERT_EQ(c.publish("b", "0123456789"), "");
  // a is LRU but pinned: publishing c must sacrifice b instead.
  ASSERT_EQ(c.publish("c", "0123456789"), "");
  std::string bytes;
  EXPECT_TRUE(c.lookup("a", bytes));
  EXPECT_FALSE(c.lookup("b", bytes));
  EXPECT_TRUE(c.lookup("c", bytes));

  // Even a pin set alone above the cap evicts nothing it guards.
  c.pin("c");
  ASSERT_EQ(c.publish("d", "0123456789"), "");
  EXPECT_TRUE(c.lookup("a", bytes));
  EXPECT_TRUE(c.lookup("c", bytes));
  EXPECT_FALSE(fs::exists(c.path_for("d")))
      << "d itself is the only unpinned entry left";

  // Unpinning re-arms eviction on the next publish.
  c.unpin("a");
  ASSERT_EQ(c.publish("e", "0123456789"), "");
  EXPECT_FALSE(c.lookup("a", bytes));
  EXPECT_TRUE(c.lookup("c", bytes));
  EXPECT_TRUE(c.lookup("e", bytes));
}

TEST_F(ResultCacheTest, ZeroCapNeverEvicts) {
  ResultCache c;
  std::string err;
  ASSERT_TRUE(c.open(cache_dir(), 0, err)) << err;
  for (int i = 0; i < 32; ++i)
    ASSERT_EQ(c.publish("k" + std::to_string(i), std::string(100, 'x')), "");
  EXPECT_EQ(c.entries(), 32u);
  EXPECT_EQ(c.evictions(), 0u);
}

TEST_F(ResultCacheTest, ReopenSeedsRecencyFromMtimes) {
  // Build a directory by hand with distinct mtimes (oldest first), then
  // open over it: the seeded LRU order must follow the mtimes.
  fs::create_directories(cache_dir());
  ASSERT_EQ(fsio::atomic_write_file(cache_dir() + "/old.json", "aaaa"), "");
  ASSERT_EQ(fsio::atomic_write_file(cache_dir() + "/new.json", "bbbb"), "");
  const auto t = fs::last_write_time(cache_dir() + "/new.json");
  fs::last_write_time(cache_dir() + "/old.json",
                      t - std::chrono::seconds(10));

  ResultCache c;
  std::string err;
  ASSERT_TRUE(c.open(cache_dir(), 0, err)) << err;
  EXPECT_EQ(c.entries(), 2u);
  const std::vector<std::string> lru = c.keys_lru();
  ASSERT_EQ(lru.size(), 2u);
  EXPECT_EQ(lru[0], "old");
  EXPECT_EQ(lru[1], "new");

  // A lookup refreshes recency, in memory and on disk.
  std::string bytes;
  ASSERT_TRUE(c.lookup("old", bytes));
  EXPECT_EQ(c.keys_lru().front(), "new");
  EXPECT_GT(fs::last_write_time(cache_dir() + "/old.json"), t);
}

TEST_F(ResultCacheTest, AdoptsEntriesPublishedBehindItsBack) {
  ResultCache c;
  std::string err;
  ASSERT_TRUE(c.open(cache_dir(), 0, err)) << err;
  // Another process (a concurrent sweep sharing the directory) lands a
  // result the cache never saw published.
  ASSERT_EQ(fsio::atomic_write_file(c.path_for("ghost"), "gg"), "");
  std::string bytes;
  EXPECT_TRUE(c.lookup("ghost", bytes));
  EXPECT_EQ(bytes, "gg");
  EXPECT_EQ(c.entries(), 1u);
}

}  // namespace
}  // namespace emx::jobs
