// Journal robustness: the supervisor's durable memory must recover a
// torn tail, refuse interior damage loudly (naming the cell), and treat
// duplicate completions honestly.
#include "jobs/journal.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/fsio.hpp"

namespace emx::jobs {
namespace {

namespace fs = std::filesystem;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "journal_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "journal.jsonl").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string slurp() const {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
  void dump(const std::string& content) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << content;
  }

  /// A journal of `n` well-formed lines: start+done per job.
  void write_lines(std::uint64_t n) {
    Journal j;
    std::string err;
    ASSERT_TRUE(j.open(path_, err)) << err;
    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_TRUE(j.append("start",
                           {{"job", "\"sort-p4-n64-h2-s" +
                                        std::to_string(i) + "-abcd0123\""},
                            {"attempt", "1"}},
                           err))
          << err;
    }
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(JournalTest, AppendedLinesRoundTrip) {
  Journal j;
  std::string err;
  ASSERT_TRUE(j.open(path_, err)) << err;
  ASSERT_TRUE(j.append("sweep", {{"name", "\"s\""}, {"cells", "4"}}, err));
  ASSERT_TRUE(
      j.append("done", {{"job", "\"k1\""}, {"result_crc", "\"12ab34cd\""}},
               err));

  std::vector<JournalEntry> entries;
  std::string warning;
  ASSERT_TRUE(Journal::load(path_, entries, warning, err)) << err;
  EXPECT_EQ(warning, "");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].seq, 0u);
  EXPECT_EQ(entries[0].event, "sweep");
  EXPECT_EQ(entries[0].field("name"), "s");
  EXPECT_EQ(entries[0].field("cells"), "4");
  EXPECT_EQ(entries[1].seq, 1u);
  EXPECT_EQ(entries[1].field("result_crc"), "12ab34cd");
  EXPECT_EQ(entries[1].field("missing"), "");
}

TEST_F(JournalTest, MissingFileLoadsEmpty) {
  std::vector<JournalEntry> entries;
  std::string warning, err;
  ASSERT_TRUE(Journal::load(path_, entries, warning, err)) << err;
  EXPECT_TRUE(entries.empty());
}

TEST_F(JournalTest, TruncatedLastLineIsDroppedWithAWarning) {
  write_lines(3);
  const std::string full = slurp();
  // Cut the final line mid-bytes — the classic kill-mid-append.
  dump(full.substr(0, full.size() - 17));

  std::vector<JournalEntry> entries;
  std::string warning, err;
  ASSERT_TRUE(Journal::load(path_, entries, warning, err)) << err;
  EXPECT_EQ(entries.size(), 2u);
  EXPECT_NE(warning.find("torn final line"), std::string::npos) << warning;
}

TEST_F(JournalTest, OpenTruncatesTheTornTailSoAppendsStayFramed) {
  write_lines(2);
  const std::string full = slurp();
  dump(full.substr(0, full.size() - 9));  // tear the 2nd line

  Journal j;
  std::string err;
  ASSERT_TRUE(j.open(path_, err)) << err;
  EXPECT_EQ(j.next_seq(), 1u) << "torn line must not count";
  ASSERT_TRUE(j.append("fail", {{"job", "\"k\""}}, err)) << err;

  std::vector<JournalEntry> entries;
  std::string warning;
  ASSERT_TRUE(Journal::load(path_, entries, warning, err)) << err;
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[1].event, "fail");
  EXPECT_EQ(entries[1].seq, 1u);
}

TEST_F(JournalTest, TamperedInteriorCrcFailsLoudlyNamingTheCell) {
  write_lines(3);
  std::string content = slurp();
  // Flip a digit inside the FIRST line's attempt field (interior line).
  const std::size_t at = content.find("\"attempt\":1");
  ASSERT_NE(at, std::string::npos);
  content[at + 10] = '7';
  dump(content);

  std::vector<JournalEntry> entries;
  std::string warning, err;
  EXPECT_FALSE(Journal::load(path_, entries, warning, err));
  EXPECT_NE(err.find("crc mismatch"), std::string::npos) << err;
  EXPECT_NE(err.find("sort-p4-n64-h2-s0-abcd0123"), std::string::npos)
      << "error must name the damaged cell: " << err;
}

TEST_F(JournalTest, NonMonotoneSequenceNumbersAreAnError) {
  Journal j;
  std::string err;
  ASSERT_TRUE(j.open(path_, err)) << err;
  ASSERT_TRUE(j.append("start", {{"job", "\"k\""}}, err));
  // Re-frame a line with a skipped sequence number (valid CRC).
  std::ofstream(path_, std::ios::binary | std::ios::app)
      << format_line(5, "start", {{"job", "\"k2\""}});
  // And one more good line after it so the bad one is interior.
  std::ofstream(path_, std::ios::binary | std::ios::app)
      << format_line(6, "start", {{"job", "\"k3\""}});

  std::vector<JournalEntry> entries;
  std::string warning;
  EXPECT_FALSE(Journal::load(path_, entries, warning, err));
  EXPECT_NE(err.find("seq"), std::string::npos) << err;
}

TEST_F(JournalTest, ValidCrcOverGarbageBodyIsAHardError) {
  // A CRC that matches an unparseable body means the writer was broken:
  // never silently skipped, even on the final line.
  dump(format_line(0, "sweep", {{"bad", "{{{"}}));
  std::vector<JournalEntry> entries;
  std::string warning, err;
  EXPECT_FALSE(Journal::load(path_, entries, warning, err));
  EXPECT_NE(err.find("unparseable"), std::string::npos) << err;
}

TEST_F(JournalTest, FormatLineCrcCoversTheWholeBody) {
  const std::string line = format_line(3, "done", {{"job", "\"k\""}});
  EXPECT_EQ(line.back(), '\n');
  EXPECT_NE(line.find("\"seq\":3"), std::string::npos);
  EXPECT_NE(line.find(",\"crc\":\""), std::string::npos);
  // Any byte flip must invalidate the frame.
  const std::string l0 = format_line(0, "start", {{"job", "\"a\""}});
  std::string l1 = format_line(1, "start", {{"job", "\"b\""}});
  const std::string l2 = format_line(2, "start", {{"job", "\"c\""}});
  l1[10] = l1[10] == 'x' ? 'y' : 'x';
  dump(l0 + l1 + l2);  // the bent line is interior
  std::vector<JournalEntry> entries;
  std::string warning, err;
  EXPECT_FALSE(Journal::load(path_, entries, warning, err));
  EXPECT_NE(err.find("crc"), std::string::npos) << err;
}

}  // namespace
}  // namespace emx::jobs
