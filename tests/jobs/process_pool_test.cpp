// ProcessPool — fork/exec mechanics, exit/signal/timeout reporting.
#include "jobs/process_pool.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <signal.h>

#include <gtest/gtest.h>

namespace emx::jobs {
namespace {

namespace fs = std::filesystem;

Command sh(const std::string& script) {
  Command c;
  c.argv = {"/bin/sh", "-c", script};
  return c;
}

/// Polls until `want` children have exited (with a generous wall cap so
/// a regression hangs the test, not CI).
std::vector<ExitStatus> drain(ProcessPool& pool, std::size_t want) {
  std::vector<ExitStatus> out;
  for (int spins = 0; out.size() < want && spins < 20000; ++spins) {
    pool.poll(out);
    if (out.size() < want) real_clock().sleep_ms(1);
  }
  return out;
}

TEST(ProcessPool, ReportsExitCodes) {
  ProcessPool pool(real_clock());
  std::string err;
  ASSERT_GE(pool.start(sh("exit 0"), 10, 0, err), 0) << err;
  ASSERT_GE(pool.start(sh("exit 5"), 11, 0, err), 0) << err;
  ASSERT_GE(pool.start(sh("exit 42"), 12, 0, err), 0) << err;
  const std::vector<ExitStatus> exits = drain(pool, 3);
  ASSERT_EQ(exits.size(), 3u);
  EXPECT_EQ(pool.running(), 0u);
  for (const ExitStatus& es : exits) {
    EXPECT_FALSE(es.signaled);
    EXPECT_FALSE(es.timed_out);
    if (es.tag == 10) EXPECT_EQ(es.code, 0);
    if (es.tag == 11) EXPECT_EQ(es.code, 5);
    if (es.tag == 12) EXPECT_EQ(es.code, 42);
  }
}

TEST(ProcessPool, ReportsSignals) {
  ProcessPool pool(real_clock());
  std::string err;
  ASSERT_GE(pool.start(sh("kill -9 $$"), 1, 0, err), 0) << err;
  const std::vector<ExitStatus> exits = drain(pool, 1);
  ASSERT_EQ(exits.size(), 1u);
  EXPECT_TRUE(exits[0].signaled);
  EXPECT_EQ(exits[0].sig, SIGKILL);
  EXPECT_FALSE(exits[0].timed_out);
}

TEST(ProcessPool, KillsAtTheDeadlineAndFlagsTimeout) {
  ProcessPool pool(real_clock());
  std::string err;
  // Would sleep 30 s; the 100 ms deadline must SIGKILL it long before.
  ASSERT_GE(pool.start(sh("sleep 30"), 7, 100, err), 0) << err;
  const std::vector<ExitStatus> exits = drain(pool, 1);
  ASSERT_EQ(exits.size(), 1u);
  EXPECT_TRUE(exits[0].timed_out);
  EXPECT_TRUE(exits[0].signaled);
  EXPECT_EQ(exits[0].sig, SIGKILL);
}

TEST(ProcessPool, CapturesStdoutAndStderr) {
  const fs::path dir = fs::path(::testing::TempDir()) / "pool_capture";
  fs::remove_all(dir);
  fs::create_directories(dir);
  ProcessPool pool(real_clock());
  Command cmd = sh("echo to-out; echo to-err 1>&2");
  cmd.stdout_path = (dir / "out").string();
  cmd.stderr_path = (dir / "err").string();
  std::string err;
  ASSERT_GE(pool.start(cmd, 1, 0, err), 0) << err;
  drain(pool, 1);
  const auto slurp = [](const fs::path& p) {
    std::ifstream in(p);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  EXPECT_EQ(slurp(dir / "out"), "to-out\n");
  EXPECT_EQ(slurp(dir / "err"), "to-err\n");
  fs::remove_all(dir);
}

TEST(ProcessPool, ExecFailureIsExit127) {
  ProcessPool pool(real_clock());
  Command cmd;
  cmd.argv = {"/nonexistent/binary"};
  std::string err;
  ASSERT_GE(pool.start(cmd, 1, 0, err), 0) << err;
  const std::vector<ExitStatus> exits = drain(pool, 1);
  ASSERT_EQ(exits.size(), 1u);
  EXPECT_FALSE(exits[0].signaled);
  EXPECT_EQ(exits[0].code, 127);
}

TEST(ProcessPool, KillAllReapsEverything) {
  ProcessPool pool(real_clock());
  std::string err;
  for (std::uint64_t i = 0; i < 3; ++i)
    ASSERT_GE(pool.start(sh("sleep 30"), i, 0, err), 0) << err;
  EXPECT_EQ(pool.running(), 3u);
  pool.kill_all();
  EXPECT_EQ(pool.running(), 0u);
}

TEST(ProcessPool, EmptyArgvIsRefused) {
  ProcessPool pool(real_clock());
  std::string err;
  EXPECT_LT(pool.start(Command{}, 0, 0, err), 0);
  EXPECT_NE(err, "");
}

}  // namespace
}  // namespace emx::jobs
