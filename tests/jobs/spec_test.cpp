// SweepSpec — grid expansion, manifest keys, worker flag round-trips.
#include "jobs/spec.hpp"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace emx::jobs {
namespace {

SweepSpec parse_ok(const std::string& text) {
  SweepSpec spec;
  std::string err;
  EXPECT_TRUE(SweepSpec::from_json(text, spec, err)) << err;
  return spec;
}

std::string parse_err(const std::string& text) {
  SweepSpec spec;
  std::string err;
  EXPECT_FALSE(SweepSpec::from_json(text, spec, err)) << text;
  EXPECT_NE(err, "");
  return err;
}

std::vector<JobSpec> expand_ok(const SweepSpec& spec) {
  std::vector<JobSpec> jobs;
  std::string err;
  EXPECT_TRUE(spec.expand(jobs, err)) << err;
  return jobs;
}

TEST(SweepSpec, ExpandsTheFullGridInDeterministicOrder) {
  SweepSpec spec;
  spec.apps = {"sort", "bfs"};
  spec.procs = {4, 8};
  spec.threads = {1, 2};
  spec.sizes_per_proc = {64};
  spec.seeds = {1, 2};
  const std::vector<JobSpec> jobs = expand_ok(spec);
  ASSERT_EQ(jobs.size(), 2u * 2u * 2u * 2u);
  // apps → procs → sizes → threads → seeds, first cell first.
  EXPECT_EQ(jobs[0].manifest.app, "sort");
  EXPECT_EQ(jobs[0].manifest.config.proc_count, 4u);
  EXPECT_EQ(jobs[0].manifest.threads, 1u);
  EXPECT_EQ(jobs[0].manifest.seed, 1u);
  EXPECT_EQ(jobs[1].manifest.seed, 2u);
  EXPECT_EQ(jobs.back().manifest.app, "bfs");
  EXPECT_EQ(jobs.back().manifest.config.proc_count, 8u);

  // Keys are unique and stable across a second expansion.
  std::set<std::string> keys;
  for (const JobSpec& j : jobs) EXPECT_TRUE(keys.insert(j.key).second);
  const std::vector<JobSpec> again = expand_ok(spec);
  for (std::size_t i = 0; i < jobs.size(); ++i)
    EXPECT_EQ(jobs[i].key, again[i].key);
}

TEST(SweepSpec, EmptyThreadsAndSizesAdoptRegistryDefaults) {
  SweepSpec spec;
  spec.apps = {"sort"};
  spec.procs = {4};
  const std::vector<JobSpec> jobs = expand_ok(spec);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_GT(jobs[0].manifest.size_per_proc, 0u);
  EXPECT_GT(jobs[0].manifest.threads, 0u);
}

TEST(SweepSpec, UnknownAppIsAReadableError) {
  SweepSpec spec;
  spec.apps = {"bogus"};
  std::vector<JobSpec> jobs;
  std::string err;
  EXPECT_FALSE(spec.expand(jobs, err));
  EXPECT_NE(err.find("bogus"), std::string::npos);
}

TEST(SweepSpec, KeyEncodesEveryGridCoordinateAndTheManifestCrc) {
  SweepSpec spec;
  spec.apps = {"sort"};
  spec.procs = {4};
  spec.threads = {2};
  spec.sizes_per_proc = {64};
  spec.seeds = {7};
  const std::vector<JobSpec> jobs = expand_ok(spec);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].key.rfind("sort-p4-n64-h2-s7-", 0), 0u) << jobs[0].key;

  // A config change invisible in the coordinates still changes the key.
  SweepSpec detailed = spec;
  detailed.base.config.network = NetworkModel::kDetailed;
  const std::vector<JobSpec> other = expand_ok(detailed);
  EXPECT_NE(jobs[0].key, other[0].key);
}

TEST(SweepSpec, WorkerFlagsReproduceTheManifest) {
  SweepSpec spec;
  spec.apps = {"fft"};
  spec.procs = {8};
  spec.threads = {3};
  spec.sizes_per_proc = {128};
  spec.seeds = {5};
  spec.base.iterations = 4;
  spec.base.config.network = NetworkModel::kDetailed;
  spec.base.config.fault.drop_rate = 0.015625;
  const std::vector<JobSpec> jobs = expand_ok(spec);
  ASSERT_EQ(jobs.size(), 1u);
  const std::vector<std::string> flags = worker_flags(jobs[0].manifest);
  const auto has = [&flags](const std::string& f) {
    for (const std::string& x : flags)
      if (x == f) return true;
    return false;
  };
  EXPECT_TRUE(has("--app=fft"));
  EXPECT_TRUE(has("--procs=8"));
  EXPECT_TRUE(has("--size-per-proc=128"));
  EXPECT_TRUE(has("--threads=3"));
  EXPECT_TRUE(has("--seed=5"));
  EXPECT_TRUE(has("--iterations=4"));
  EXPECT_TRUE(has("--network=detailed"));
  EXPECT_TRUE(has("--fault-drop-rate=0.015625"));
}

TEST(SweepSpec, JsonSpecParsesGridBaseAndName) {
  const SweepSpec spec = parse_ok(R"({
    "name": "fig6",
    "grid": {"apps": ["sort"], "procs": [4, 8], "threads": [2],
             "sizes_per_proc": [64], "seeds": [1]},
    "base": {"network": "detailed", "iterations": 4,
             "fault-drop-rate": 0.01, "priority-replies": true}
  })");
  EXPECT_EQ(spec.name, "fig6");
  EXPECT_EQ(spec.procs, (std::vector<std::uint32_t>{4, 8}));
  EXPECT_EQ(spec.base.config.network, NetworkModel::kDetailed);
  EXPECT_EQ(spec.base.iterations, 4u);
  EXPECT_DOUBLE_EQ(spec.base.config.fault.drop_rate, 0.01);
  EXPECT_TRUE(spec.base.config.priority_replies);
  EXPECT_EQ(expand_ok(spec).size(), 2u);
}

TEST(SweepSpec, UnknownKeysAnywhereAreErrors) {
  EXPECT_NE(parse_err(R"({"grid": {"apps": ["sort"]}, "typo": 1})")
                .find("typo"),
            std::string::npos);
  EXPECT_NE(parse_err(R"({"grid": {"apps": ["sort"], "procz": [4]}})")
                .find("procz"),
            std::string::npos);
  EXPECT_NE(parse_err(
                R"({"grid": {"apps": ["sort"]}, "base": {"watchdags": 5}})")
                .find("watchdags"),
            std::string::npos);
  parse_err("{\"grid\":{}}");        // no apps
  parse_err("not json");
  parse_err(R"({"grid": {"apps": [1]}})");  // wrong element type
}

TEST(SweepSpec, DigestTracksEveryAxisAndBaseKnob) {
  SweepSpec a;
  a.apps = {"sort"};
  SweepSpec b = a;
  EXPECT_EQ(a.digest(), b.digest());
  b.procs = {4};
  EXPECT_NE(a.digest(), b.digest());
  SweepSpec c = a;
  c.base.config.fault.drop_rate = 0.5;
  EXPECT_NE(a.digest(), c.digest());
}

TEST(SweepSpec, ZeroGridValuesAreRejected) {
  SweepSpec spec;
  spec.apps = {"sort"};
  spec.procs = {0};
  std::vector<JobSpec> jobs;
  std::string err;
  EXPECT_FALSE(spec.expand(jobs, err));
  EXPECT_NE(err, "");
}

}  // namespace
}  // namespace emx::jobs
