#include "runtime/frame.hpp"

#include <gtest/gtest.h>

namespace emx::rt {
namespace {

TEST(FramePool, AllocatesDistinctStableRecords) {
  FramePool pool;
  ThreadRecord& a = pool.alloc(kInvalidThread);
  ThreadRecord& b = pool.alloc(a.id);
  EXPECT_NE(a.id, b.id);
  EXPECT_EQ(b.parent, a.id);
  EXPECT_EQ(&pool.get(a.id), &a);
  EXPECT_EQ(pool.live(), 2u);
}

TEST(FramePool, RecyclesFreedRecords) {
  FramePool pool;
  ThreadRecord& a = pool.alloc(kInvalidThread);
  const ThreadId id = a.id;
  pool.free(a);
  EXPECT_EQ(pool.live(), 0u);
  ThreadRecord& b = pool.alloc(kInvalidThread);
  EXPECT_EQ(b.id, id);  // recycled slot
  EXPECT_EQ(b.state, ThreadState::kRunning);
  EXPECT_EQ(pool.created(), 2u);
}

TEST(FramePool, PeakTracksHighWaterMark) {
  FramePool pool;
  std::vector<ThreadId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(pool.alloc(kInvalidThread).id);
  for (ThreadId id : ids) pool.free(pool.get(id));
  pool.alloc(kInvalidThread);
  EXPECT_EQ(pool.peak_live(), 5u);
  EXPECT_EQ(pool.live(), 1u);
}

TEST(FramePool, TreeOfFrames) {
  // "Activation frames (threads) form a tree rather than a stack" (§2.3).
  FramePool pool;
  ThreadRecord& root = pool.alloc(kInvalidThread);
  ThreadRecord& left = pool.alloc(root.id);
  ThreadRecord& right = pool.alloc(root.id);
  ThreadRecord& leaf = pool.alloc(left.id);
  EXPECT_EQ(left.parent, root.id);
  EXPECT_EQ(right.parent, root.id);
  EXPECT_EQ(leaf.parent, left.id);
}

TEST(FramePool, DoubleFreePanics) {
  FramePool pool;
  ThreadRecord& a = pool.alloc(kInvalidThread);
  pool.free(a);
  EXPECT_DEATH(pool.free(a), "double free");
}

TEST(ThreadStateNames, AllDistinct) {
  EXPECT_STREQ(to_string(ThreadState::kFree), "FREE");
  EXPECT_STREQ(to_string(ThreadState::kRunning), "RUNNING");
  EXPECT_STREQ(to_string(ThreadState::kSuspendedRead), "SUSP_READ");
  EXPECT_STREQ(to_string(ThreadState::kSuspendedGate), "SUSP_GATE");
  EXPECT_STREQ(to_string(ThreadState::kSuspendedBarrier), "SUSP_BARRIER");
}

}  // namespace
}  // namespace emx::rt
