// The packet-based sense-reversing iteration barrier, central and tree.
#include <gtest/gtest.h>

#include "core/machine.hpp"

namespace emx::rt {
namespace {

// Every thread performs `rounds` barrier episodes; between episodes it
// bumps a per-PE counter. The barrier is correct iff no thread ever
// observes a counter ahead of its own round (no one escapes early).
void run_barrier_workout(BarrierTopology topology, std::uint32_t P,
                         std::uint32_t h, int rounds) {
  MachineConfig cfg;
  cfg.proc_count = P;
  cfg.barrier = topology;
  Machine m(cfg);
  // One progress word per (pe, thread): counts completed rounds.
  const auto entry = m.register_entry(
      [rounds, h](ThreadApi api, Word t) -> ThreadBody {
        for (int r = 0; r < rounds; ++r) {
          co_await api.compute(5 + 13 * (t + 1));  // skewed work
          api.local_write(kReservedWords + t, static_cast<Word>(r + 1));
          co_await api.iteration_barrier();
          // After the barrier, every local thread must have finished
          // round r+1 (global barrier implies local agreement).
          for (Word u = 0; u < h; ++u) {
            const Word seen = api.local_read(kReservedWords + u);
            EMX_CHECK(seen >= static_cast<Word>(r + 1),
                      "barrier let a thread escape early");
          }
        }
      });
  m.configure_barrier(h);
  for (ProcId p = 0; p < P; ++p)
    for (std::uint32_t t = 0; t < h; ++t) m.spawn(p, entry, t);
  m.run();
  for (ProcId p = 0; p < P; ++p) {
    for (std::uint32_t t = 0; t < h; ++t) {
      EXPECT_EQ(m.memory(p).read(kReservedWords + t),
                static_cast<Word>(rounds));
    }
  }
  // Every join is at least one iteration-sync switch.
  const auto report = m.report();
  for (const auto& pr : report.procs) {
    EXPECT_GE(pr.switches.iter_sync, static_cast<std::uint64_t>(rounds) * h);
  }
}

struct Case {
  BarrierTopology topo;
  std::uint32_t procs;
  std::uint32_t threads;
};

class BarrierWorkout : public testing::TestWithParam<Case> {};

TEST_P(BarrierWorkout, NoEarlyEscapeAcrossRounds) {
  run_barrier_workout(GetParam().topo, GetParam().procs, GetParam().threads, 6);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, BarrierWorkout,
    testing::Values(Case{BarrierTopology::kCentral, 1, 1},
                    Case{BarrierTopology::kCentral, 1, 4},
                    Case{BarrierTopology::kCentral, 4, 1},
                    Case{BarrierTopology::kCentral, 8, 3},
                    Case{BarrierTopology::kCentral, 16, 2},
                    Case{BarrierTopology::kTree, 1, 2},
                    Case{BarrierTopology::kTree, 4, 2},
                    Case{BarrierTopology::kTree, 8, 3},
                    Case{BarrierTopology::kTree, 16, 4}),
    [](const auto& info) {
      return std::string(info.param.topo == BarrierTopology::kCentral
                             ? "central"
                             : "tree") +
             "_P" + std::to_string(info.param.procs) + "_h" +
             std::to_string(info.param.threads);
    });

TEST(Barrier, SenseReversalSurvivesManyEpisodes) {
  run_barrier_workout(BarrierTopology::kCentral, 4, 2, 25);
}

TEST(Barrier, PollingCountsIterSyncSwitches) {
  // With heavy skew, waiting threads must poll: iter-sync switches exceed
  // the bare join count.
  MachineConfig cfg;
  cfg.proc_count = 4;
  Machine m(cfg);
  const auto entry = m.register_entry([](ThreadApi api, Word t) -> ThreadBody {
    co_await api.compute(t == 0 ? 4000 : 10);  // thread 0 is very slow
    co_await api.iteration_barrier();
  });
  m.configure_barrier(2);
  for (ProcId p = 0; p < 4; ++p)
    for (Word t = 0; t < 2; ++t) m.spawn(p, entry, t);
  m.run();
  const auto report = m.report();
  std::uint64_t iter_sync = 0;
  for (const auto& p : report.procs) iter_sync += p.switches.iter_sync;
  EXPECT_GT(iter_sync, 4u * 2u) << "fast threads must have re-polled";
}

TEST(Barrier, UnconfiguredBarrierPanics) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine m(cfg);
  const auto entry = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    co_await api.iteration_barrier();
  });
  m.spawn(0, entry, 0);
  EXPECT_DEATH(m.run(), "barrier not configured");
}

}  // namespace
}  // namespace emx::rt
