#include "runtime/order_gate.hpp"

#include <gtest/gtest.h>

namespace emx::rt {
namespace {

TEST(OrderGate, AdmitsIndicesInSequence) {
  OrderGate gate(4);
  EXPECT_TRUE(gate.passable(0));
  EXPECT_FALSE(gate.passable(1));
  EXPECT_EQ(gate.advance(), kInvalidThread);  // no waiter registered
  EXPECT_TRUE(gate.passable(1));
  EXPECT_FALSE(gate.passable(3));
}

TEST(OrderGate, AdvanceWakesTheRegisteredWaiter) {
  OrderGate gate(3);
  gate.register_waiter(1, /*thread=*/42);
  gate.register_waiter(2, /*thread=*/43);
  EXPECT_EQ(gate.advance(), 42u);
  EXPECT_EQ(gate.advance(), 43u);
  EXPECT_EQ(gate.advance(), kInvalidThread);  // past the end
}

TEST(OrderGate, WaiterSlotsAreOneShot) {
  OrderGate gate(2);
  gate.register_waiter(1, 7);
  EXPECT_EQ(gate.advance(), 7u);
  gate.reset(2);
  EXPECT_EQ(gate.current(), 0u);
  EXPECT_EQ(gate.advance(), kInvalidThread);  // cleared by reset
}

TEST(OrderGate, ResetChangesWidth) {
  OrderGate gate(2);
  gate.reset(8);
  EXPECT_EQ(gate.width(), 8u);
  gate.register_waiter(7, 11);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(gate.advance(), kInvalidThread);
  EXPECT_EQ(gate.advance(), 11u);
}

TEST(OrderGate, RegisteringPassableIndexPanics) {
  OrderGate gate(4);
  EXPECT_DEATH(gate.register_waiter(0, 1), "already-passable");
  gate.advance();
  EXPECT_DEATH(gate.register_waiter(1, 1), "already-passable");
}

TEST(OrderGate, DoubleRegistrationPanics) {
  OrderGate gate(4);
  gate.register_waiter(2, 5);
  EXPECT_DEATH(gate.register_waiter(2, 6), "already taken");
}

}  // namespace
}  // namespace emx::rt
