// Thread invocation, FIFO scheduling, compute charging and completion —
// the core EM-X execution model on a tiny machine.
#include <gtest/gtest.h>

#include "core/machine.hpp"

namespace emx::rt {
namespace {

TEST(ThreadBasics, InvokedThreadRunsAndCharges) {
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  const auto entry = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    co_await api.compute(100);
    api.local_write(kReservedWords, 1);
  });
  m.spawn(0, entry, 0);
  m.run();
  EXPECT_EQ(m.memory(0).read(kReservedWords), 1u);
  const auto report = m.report();
  EXPECT_EQ(report.procs[0].compute, 100u);
  EXPECT_GT(report.procs[0].switching, 0u);  // MU dispatch
}

TEST(ThreadBasics, FifoSchedulingRunsThreadsInArrivalOrder) {
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  const auto entry = m.register_entry([](ThreadApi api, Word arg) -> ThreadBody {
    // Record arrival order in memory.
    const Word slot = api.local_read(kReservedWords);
    api.local_write(kReservedWords, slot + 1);
    api.local_write(kReservedWords + 1 + slot, arg);
    co_await api.compute(10);
  });
  for (Word i = 0; i < 5; ++i) m.spawn(0, entry, 100 + i);
  m.run();
  for (Word i = 0; i < 5; ++i) {
    EXPECT_EQ(m.memory(0).read(kReservedWords + 1 + i), 100 + i);
  }
}

TEST(ThreadBasics, ThreadsRunToCompletionWithoutPreemption) {
  // A long-running thread is never preempted by a later invocation.
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  const auto long_entry = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    co_await api.compute(1000);
    api.local_write(kReservedWords, 7);  // finishes first
  });
  const auto short_entry = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    co_await api.compute(1);
    // Must observe the long thread's write: FIFO + run-to-completion.
    api.local_write(kReservedWords + 1, api.local_read(kReservedWords));
  });
  m.spawn(0, long_entry, 0);
  m.spawn(0, short_entry, 0);
  m.run();
  EXPECT_EQ(m.memory(0).read(kReservedWords + 1), 7u);
}

TEST(ThreadBasics, SpawnCreatesThreadOnTargetProcessor) {
  MachineConfig cfg;
  cfg.proc_count = 4;
  Machine m(cfg);
  std::uint32_t child_entry = 0;
  child_entry = m.register_entry([](ThreadApi api, Word arg) -> ThreadBody {
    co_await api.compute(1);
    api.local_write(kReservedWords, arg);
  });
  const auto parent = m.register_entry(
      [child_entry](ThreadApi api, Word) -> ThreadBody {
        // Spawn children on every other PE; keep computing afterwards
        // ("the thread which just issued the packet continues").
        for (ProcId p = 1; p < 4; ++p) {
          co_await api.spawn(p, child_entry, 1000 + p);
        }
        co_await api.compute(5);
      });
  m.spawn(0, parent, 0);
  m.run();
  for (ProcId p = 1; p < 4; ++p) {
    EXPECT_EQ(m.memory(p).read(kReservedWords), 1000 + p);
  }
}

TEST(ThreadBasics, NestedSpawnsFormATree) {
  // Recursive spawning: each thread spawns two children until depth 0;
  // 2^4 leaves each bump a counter word on their PE.
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine m(cfg);
  std::uint32_t entry = 0;
  entry = m.register_entry([&entry](ThreadApi api, Word depth) -> ThreadBody {
    if (depth == 0) {
      const Word c = api.local_read(kReservedWords);
      api.local_write(kReservedWords, c + 1);
      co_return;
    }
    co_await api.compute(2);
    const ProcId other = 1 - api.proc();
    co_await api.spawn(api.proc(), entry, depth - 1);
    co_await api.spawn(other, entry, depth - 1);
  });
  m.spawn(0, entry, 4);
  m.run();
  const Word total =
      m.memory(0).read(kReservedWords) + m.memory(1).read(kReservedWords);
  EXPECT_EQ(total, 16u);
}

TEST(ThreadBasics, IdleProcessorAccumulatesCommTime) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine m(cfg);
  const auto entry = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    co_await api.compute(500);
  });
  m.spawn(0, entry, 0);  // PE 1 never works
  m.run();
  const auto report = m.report();
  EXPECT_EQ(report.procs[1].compute, 0u);
  EXPECT_EQ(report.procs[1].comm, report.total_cycles);
}

}  // namespace
}  // namespace emx::rt
