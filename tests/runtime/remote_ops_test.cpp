// Split-phase remote reads and fire-and-forget remote writes — the heart
// of EM-X multithreading (§2.1, §2.3).
#include <gtest/gtest.h>

#include "core/machine.hpp"

namespace emx::rt {
namespace {

TEST(RemoteRead, FetchesTheRemoteValue) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine m(cfg);
  m.memory(1).write(kReservedWords + 5, 0xCAFE);
  const auto entry = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    const Word v = co_await api.remote_read(GlobalAddr{1, kReservedWords + 5});
    api.local_write(kReservedWords, v);
  });
  m.spawn(0, entry, 0);
  m.run();
  EXPECT_EQ(m.memory(0).read(kReservedWords), 0xCAFEu);
}

TEST(RemoteRead, RoundTripLatencyIsTwentyToFortyClocks) {
  // §2.3: "A typical remote read takes approximately 1 us" = 20 clocks at
  // 20 MHz; the paper quotes 20-40 clocks under normal load (§4).
  for (std::uint32_t P : {16u, 64u}) {
    MachineConfig cfg;
    cfg.proc_count = P;
    cfg.network = NetworkModel::kDetailed;
    Machine m(cfg);
    m.memory(P - 1).write(kReservedWords, 1);
    const auto entry = m.register_entry([P](ThreadApi api, Word) -> ThreadBody {
      (void)co_await api.remote_read(GlobalAddr{P - 1, kReservedWords});
      co_return;
    });
    m.spawn(0, entry, 0);
    m.run();
    // Total run = dispatch + issue + RTT; the RTT dominates.
    EXPECT_GE(m.end_cycle(), 20u) << "P=" << P;
    EXPECT_LE(m.end_cycle(), 45u) << "P=" << P;
  }
}

TEST(RemoteRead, SuspensionLetsOtherThreadsRun) {
  // While thread A's read is outstanding, thread B computes: B's write
  // lands before A's read returns.
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine m(cfg);
  const auto reader = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    (void)co_await api.remote_read(GlobalAddr{1, kReservedWords});
    // B must already have recorded its progress.
    api.local_write(kReservedWords + 2, api.local_read(kReservedWords + 1));
  });
  const auto computer = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    co_await api.compute(3);
    api.local_write(kReservedWords + 1, 77);
  });
  m.spawn(0, reader, 0);
  m.spawn(0, computer, 0);
  m.run();
  EXPECT_EQ(m.memory(0).read(kReservedWords + 2), 77u);
}

TEST(RemoteWrite, DoesNotSuspendTheWriter) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine m(cfg);
  const auto entry = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    for (Word i = 0; i < 10; ++i) {
      co_await api.remote_write(GlobalAddr{1, kReservedWords + i}, i * i);
    }
    co_await api.compute(1);
  });
  m.spawn(0, entry, 0);
  m.run();
  for (Word i = 0; i < 10; ++i) {
    EXPECT_EQ(m.memory(1).read(kReservedWords + i), i * i);
  }
  // Writes never suspend: zero remote-read switches.
  EXPECT_EQ(m.report().procs[0].switches.remote_read, 0u);
}

TEST(RemoteRead, EachReadCountsOneSwitch) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine m(cfg);
  m.memory(1).write(kReservedWords, 5);
  const auto entry = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    for (int i = 0; i < 25; ++i) {
      (void)co_await api.remote_read(GlobalAddr{1, kReservedWords});
    }
  });
  m.spawn(0, entry, 0);
  m.run();
  EXPECT_EQ(m.report().procs[0].switches.remote_read, 25u);
  EXPECT_EQ(m.report().procs[0].reads_issued, 25u);
}

TEST(RemoteRead, SelfReadWorksThroughLoopback) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine m(cfg);
  m.memory(0).write(kReservedWords + 9, 123);
  const auto entry = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    const Word v = co_await api.remote_read(GlobalAddr{0, kReservedWords + 9});
    api.local_write(kReservedWords, v);
  });
  m.spawn(0, entry, 0);
  m.run();
  EXPECT_EQ(m.memory(0).read(kReservedWords), 123u);
}

TEST(RemoteOps, ReadsChargeOverheadAndSwitchBuckets) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine m(cfg);
  const auto entry = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    (void)co_await api.remote_read(GlobalAddr{1, kReservedWords});
  });
  m.spawn(0, entry, 0);
  m.run();
  const MachineReport report = m.report();
  const ProcReport& p0 = report.procs[0];
  EXPECT_EQ(p0.overhead, cfg.packet_gen_cycles);
  // Switch bucket: issue-side save + two MU dispatches (invoke + resume).
  EXPECT_EQ(p0.switching,
            cfg.switch_save_cycles + 2 * cfg.mu_dispatch_cycles);
}

}  // namespace
}  // namespace emx::rt
