// The IBU's two priority levels (paper §2.2: "two levels of priority
// packet buffers for flexible thread scheduling"), exercised via the
// priority_replies configuration: read replies overtake queued normal
// packets at the FIFO head.
#include <gtest/gtest.h>

#include "core/machine.hpp"

namespace emx::rt {
namespace {

TEST(PriorityReplies, RepliesOvertakeQueuedInvocations) {
  // PE0: a reader thread suspends on a remote read; meanwhile many
  // invocation packets pile into the FIFO. With priority replies the
  // reader resumes before the pile drains; without, it waits behind it.
  auto run = [](bool priority) {
    MachineConfig cfg;
    cfg.proc_count = 2;
    cfg.priority_replies = priority;
    Machine m(cfg);
    const auto filler = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
      co_await api.compute(200);
      const Word count = api.local_read(kReservedWords + 1);
      api.local_write(kReservedWords + 1, count + 1);
    });
    const auto reader = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
      (void)co_await api.remote_read(GlobalAddr{1, kReservedWords});
      // Record how many fillers ran before the reply got dispatched.
      api.local_write(kReservedWords + 2, api.local_read(kReservedWords + 1));
    });
    m.spawn(0, reader, 0);
    for (int i = 0; i < 8; ++i) m.spawn(0, filler, 0);
    m.run();
    return m.memory(0).read(kReservedWords + 2);
  };
  const Word fillers_before_reply_normal = run(false);
  const Word fillers_before_reply_priority = run(true);
  EXPECT_LT(fillers_before_reply_priority, fillers_before_reply_normal);
  EXPECT_EQ(fillers_before_reply_normal, 8u);  // reply waited out the pile
}

TEST(PriorityReplies, DoNotChangeResults) {
  auto run = [](bool priority) {
    MachineConfig cfg;
    cfg.proc_count = 4;
    cfg.priority_replies = priority;
    Machine m(cfg);
    const auto entry = m.register_entry([](ThreadApi api, Word t) -> ThreadBody {
      Word acc = 0;
      for (Word i = 0; i < 10; ++i) {
        acc += co_await api.remote_read(
            GlobalAddr{static_cast<ProcId>((api.proc() + 1) % 4),
                       kReservedWords + (t * 10 + i) % 8});
      }
      api.local_write(kReservedWords + 8 + t, acc);
    });
    for (ProcId p = 0; p < 4; ++p) {
      for (Word a = 0; a < 8; ++a)
        m.memory(p).write(kReservedWords + a, p * 100 + a);
      for (Word t = 0; t < 3; ++t) m.spawn(p, entry, t);
    }
    m.run();
    std::vector<Word> out;
    for (ProcId p = 0; p < 4; ++p)
      for (Word t = 0; t < 3; ++t)
        out.push_back(m.memory(p).read(kReservedWords + 8 + t));
    return out;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace emx::rt
