// Block reads: "Four types of send instructions are implemented,
// including remote read request for one data and for a block of data"
// (§2.2). One request packet, block_len reply packets, one suspension.
#include <gtest/gtest.h>

#include "core/machine.hpp"

namespace emx::rt {
namespace {

TEST(BlockRead, TransfersABlockIntoLocalMemory) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine m(cfg);
  for (Word i = 0; i < 32; ++i)
    m.memory(1).write(kReservedWords + i, 500 + i);
  const auto entry = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    co_await api.remote_read_block(GlobalAddr{1, kReservedWords},
                                   kReservedWords + 100, 32);
    // All 32 words must be present the moment the thread resumes.
    Word sum = 0;
    for (Word i = 0; i < 32; ++i) sum += api.local_read(kReservedWords + 100 + i);
    api.local_write(kReservedWords, sum);
  });
  m.spawn(0, entry, 0);
  m.run();
  Word expect = 0;
  for (Word i = 0; i < 32; ++i) expect += 500 + i;
  EXPECT_EQ(m.memory(0).read(kReservedWords), expect);
  for (Word i = 0; i < 32; ++i)
    EXPECT_EQ(m.memory(0).read(kReservedWords + 100 + i), 500 + i);
}

TEST(BlockRead, OneSuspensionRegardlessOfLength) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine m(cfg);
  const auto entry = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    co_await api.remote_read_block(GlobalAddr{1, kReservedWords},
                                   kReservedWords + 100, 64);
  });
  m.spawn(0, entry, 0);
  m.run();
  EXPECT_EQ(m.report().procs[0].switches.remote_read, 1u);
  EXPECT_EQ(m.report().procs[0].reads_issued, 1u);
}

TEST(BlockRead, CheaperThanElementWiseReads) {
  // The ablation claim behind bench/ablation_block_read: one packet-pair
  // per block beats one per element.
  auto run = [](bool block) {
    MachineConfig cfg;
    cfg.proc_count = 2;
    Machine m(cfg);
    for (Word i = 0; i < 64; ++i) m.memory(1).write(kReservedWords + i, i);
    const auto entry =
        m.register_entry([block](ThreadApi api, Word) -> ThreadBody {
          if (block) {
            co_await api.remote_read_block(GlobalAddr{1, kReservedWords},
                                           kReservedWords + 100, 64);
          } else {
            for (Word i = 0; i < 64; ++i) {
              const Word v =
                  co_await api.remote_read(GlobalAddr{1, kReservedWords + i});
              api.local_write(kReservedWords + 100 + i, v);
            }
          }
        });
    m.spawn(0, entry, 0);
    m.run();
    return m.end_cycle();
  };
  EXPECT_LT(run(true), run(false));
}

TEST(BlockRead, LengthOneBehavesLikeSingleRead) {
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine m(cfg);
  m.memory(1).write(kReservedWords + 3, 0xBEEF);
  const auto entry = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    co_await api.remote_read_block(GlobalAddr{1, kReservedWords + 3},
                                   kReservedWords + 50, 1);
  });
  m.spawn(0, entry, 0);
  m.run();
  EXPECT_EQ(m.memory(0).read(kReservedWords + 50), 0xBEEFu);
}

}  // namespace
}  // namespace emx::rt
