#include "runtime/global_addr.hpp"

#include <gtest/gtest.h>

namespace emx::rt {
namespace {

TEST(GlobalAddr, PackUnpackRoundTrip) {
  for (ProcId p : {0u, 1u, 63u, 79u, 4095u}) {
    for (LocalAddr a : {0u, 1u, 1000u, kLocalAddrMask}) {
      const GlobalAddr ga{p, a};
      EXPECT_EQ(unpack(pack(ga)), ga);
    }
  }
}

TEST(GlobalAddr, LayoutMatchesThePaper) {
  // "A remote memory access packet uses a global address which consists
  //  of the processor number and the local memory address" (§2.3).
  const Word w = pack({3, 5});
  EXPECT_EQ(w >> kLocalAddrBits, 3u);
  EXPECT_EQ(w & kLocalAddrMask, 5u);
}

TEST(GlobalAddr, PointerArithmetic) {
  GlobalAddr ga{2, 100};
  EXPECT_EQ((ga + 5).addr, 105u);
  EXPECT_EQ((ga + 5).proc, 2u);
  ++ga;
  EXPECT_EQ(ga.addr, 101u);
}

TEST(GlobalAddr, FourMegabytesAddressable) {
  // 20 bits of word address = 1M words = 4MB, the EMC-Y memory size.
  EXPECT_EQ(kLocalAddrMask + 1u, 1u << 20);
}

TEST(GlobalAddr, MakeGlobalValidates) {
  EXPECT_DEATH(make_global(5000, 0), "proc id");
}

}  // namespace
}  // namespace emx::rt
