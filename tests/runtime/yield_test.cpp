// Explicit thread switching (paper §2.3): "Threads can also be suspended
// with explicit thread scheduling."
#include <gtest/gtest.h>

#include "core/machine.hpp"

namespace emx::rt {
namespace {

TEST(Yield, RequeuesBehindOtherReadyThreads) {
  // Thread A yields between its two writes; thread B (already queued)
  // must run in the gap — FIFO order is observable through memory.
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  const auto log_push = [](ThreadApi& api, Word value) {
    const Word count = api.local_read(kReservedWords);
    api.local_write(kReservedWords, count + 1);
    api.local_write(kReservedWords + 1 + count, value);
  };
  const auto a = m.register_entry([log_push](ThreadApi api, Word) -> ThreadBody {
    log_push(api, 1);
    co_await api.yield();
    log_push(api, 3);
  });
  const auto b = m.register_entry([log_push](ThreadApi api, Word) -> ThreadBody {
    log_push(api, 2);
    co_await api.compute(1);
  });
  m.spawn(0, a, 0);
  m.spawn(0, b, 0);
  m.run();
  EXPECT_EQ(m.memory(0).read(kReservedWords), 3u);
  EXPECT_EQ(m.memory(0).read(kReservedWords + 1), 1u);
  EXPECT_EQ(m.memory(0).read(kReservedWords + 2), 2u);
  EXPECT_EQ(m.memory(0).read(kReservedWords + 3), 3u);
}

TEST(Yield, CountsAsExplicitYieldNotAsPaperSwitchType) {
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  const auto entry = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    for (int i = 0; i < 5; ++i) co_await api.yield();
  });
  m.spawn(0, entry, 0);
  m.run();
  EXPECT_EQ(m.engine(0).explicit_yields(), 5u);
  const auto& sw = m.engine(0).switches();
  EXPECT_EQ(sw.remote_read, 0u);
  EXPECT_EQ(sw.thread_sync, 0u);
  EXPECT_EQ(sw.iter_sync, 0u);
}

TEST(Yield, YieldingThreadAloneMakesProgress) {
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  const auto entry = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    for (int i = 0; i < 100; ++i) co_await api.yield();
    api.local_write(kReservedWords, 1);
  });
  m.spawn(0, entry, 0);
  m.run();  // must terminate
  EXPECT_EQ(m.memory(0).read(kReservedWords), 1u);
}

TEST(Yield, ChargesSwitchAndOverheadCycles) {
  MachineConfig cfg;
  cfg.proc_count = 1;
  Machine m(cfg);
  const auto entry = m.register_entry([](ThreadApi api, Word) -> ThreadBody {
    co_await api.yield();
  });
  m.spawn(0, entry, 0);
  m.run();
  const auto report = m.report();
  // register save + two MU dispatches (invoke + wake), one packet gen.
  EXPECT_EQ(report.procs[0].switching,
            cfg.switch_save_cycles + 2 * cfg.mu_dispatch_cycles);
  EXPECT_EQ(report.procs[0].overhead, cfg.packet_gen_cycles);
}

}  // namespace
}  // namespace emx::rt
