#include "core/overlap.hpp"

#include <gtest/gtest.h>

namespace emx {
namespace {

TEST(OverlapSeries, EfficiencyAgainstSingleThreadBaseline) {
  OverlapSeries s;
  s.add(1, 10.0);
  s.add(2, 4.0);
  s.add(4, 2.0);
  s.add(8, 3.0);
  const auto pts = s.points();
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_DOUBLE_EQ(pts[0].efficiency_percent, 0.0);
  EXPECT_DOUBLE_EQ(pts[1].efficiency_percent, 60.0);
  EXPECT_DOUBLE_EQ(pts[2].efficiency_percent, 80.0);
  EXPECT_DOUBLE_EQ(pts[3].efficiency_percent, 70.0);
}

TEST(OverlapSeries, BestThreadCountIsTheValley) {
  OverlapSeries s;
  s.add(1, 10.0);
  s.add(2, 4.0);
  s.add(3, 3.5);
  s.add(4, 3.9);
  s.add(16, 9.0);
  EXPECT_EQ(s.best_thread_count(), 3u);
  EXPECT_DOUBLE_EQ(s.best_efficiency_percent(), 65.0);
}

TEST(OverlapSeries, MissingBaselinePanics) {
  OverlapSeries s;
  s.add(2, 4.0);
  EXPECT_DEATH((void)s.points(), "baseline");
}

TEST(OverlapSeries, BaselineOutOfOrderIsFine) {
  OverlapSeries s;
  s.add(4, 5.0);
  s.add(1, 10.0);
  EXPECT_TRUE(s.has_baseline());
  EXPECT_DOUBLE_EQ(s.points()[0].efficiency_percent, 50.0);
}

TEST(OverlapSeries, NegativeEfficiencyWhenThreadsHurt) {
  // More threads than useful can make communication time worse than the
  // single-thread baseline (the paper's h=16 tails).
  OverlapSeries s;
  s.add(1, 10.0);
  s.add(16, 12.0);
  EXPECT_DOUBLE_EQ(s.points()[1].efficiency_percent, -20.0);
}

}  // namespace
}  // namespace emx
