// Machine::pe() bounds contract: an out-of-range processor id dies with
// a message that names the offending id and the machine's valid range,
// not a bare "out of range".
#include <gtest/gtest.h>

#include "core/machine.hpp"

namespace emx {
namespace {

TEST(MachinePeBoundsDeathTest, NamesIdAndValidRange) {
  MachineConfig cfg;
  cfg.proc_count = 4;
  Machine m(cfg);
  EXPECT_NO_THROW((void)m.pe(0));
  EXPECT_NO_THROW((void)m.pe(3));
  EXPECT_DEATH((void)m.pe(4), "Machine::pe\\(4\\).*4 PEs.*0\\.\\.3");
  EXPECT_DEATH((void)m.pe(17), "Machine::pe\\(17\\)");
}

}  // namespace
}  // namespace emx
