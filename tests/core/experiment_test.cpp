#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace emx {
namespace {

TEST(Sweep, CoversTheCrossProductInDeterministicOrder) {
  const auto points = run_sweep(
      {100, 200}, {1, 2, 4},
      [](std::uint32_t threads, std::uint64_t n) {
        MachineReport r;
        r.total_cycles = n * 10 + threads;
        return r;
      },
      /*parallel=*/true);
  ASSERT_EQ(points.size(), 6u);
  EXPECT_EQ(points[0].n, 100u);
  EXPECT_EQ(points[0].threads, 1u);
  EXPECT_EQ(points[0].report.total_cycles, 1001u);
  EXPECT_EQ(points[5].n, 200u);
  EXPECT_EQ(points[5].threads, 4u);
  EXPECT_EQ(points[5].report.total_cycles, 2004u);
}

TEST(Sweep, SerialAndParallelAgree) {
  auto run = [](std::uint32_t threads, std::uint64_t n) {
    MachineReport r;
    r.total_cycles = n * threads;
    return r;
  };
  const auto par = run_sweep({8, 16, 32}, {1, 3}, run, true);
  const auto ser = run_sweep({8, 16, 32}, {1, 3}, run, false);
  ASSERT_EQ(par.size(), ser.size());
  for (std::size_t i = 0; i < par.size(); ++i) {
    EXPECT_EQ(par[i].report.total_cycles, ser[i].report.total_cycles);
  }
}

TEST(SizeLabel, PaperStyleLabels) {
  EXPECT_EQ(size_label(512 * 1024), "512K");
  EXPECT_EQ(size_label(8 * 1024 * 1024), "8M");
  EXPECT_EQ(size_label(1 << 20), "1M");
  EXPECT_EQ(size_label(1000), "1000");
  EXPECT_EQ(size_label(2048), "2K");
}

TEST(SizeLabel, ParseRoundTrip) {
  for (std::uint64_t n : {1024ull, 512ull * 1024, 8ull << 20, 1000ull}) {
    EXPECT_EQ(parse_size_label(size_label(n)), n);
  }
  EXPECT_EQ(parse_size_label("512k"), 512ull * 1024);
  EXPECT_EQ(parse_size_label("2m"), 2ull << 20);
}

}  // namespace
}  // namespace emx
