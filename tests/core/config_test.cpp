#include "core/config.hpp"

#include <gtest/gtest.h>

namespace emx {
namespace {

TEST(Config, DefaultsMatchThePaper) {
  const MachineConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.clock_hz, 20e6);            // 20 MHz EMC-Y
  EXPECT_EQ(cfg.memory_words, std::size_t{1} << 20);  // 4 MB static RAM
  EXPECT_EQ(cfg.packet_gen_cycles, 1u);            // 1-clock sends
  EXPECT_EQ(cfg.ibu_fifo_depth, 8u);               // 8-packet on-chip FIFO
  EXPECT_EQ(cfg.obu_fifo_depth, 8u);
  EXPECT_EQ(cfg.port_interval_cycles, 2u);         // packet per 2 cycles
  EXPECT_EQ(cfg.read_service, ReadServiceMode::kBypassDma);
  cfg.validate();  // defaults must validate
}

TEST(Config, DetailedNetworkNeedsPowerOfTwo) {
  MachineConfig cfg;
  cfg.proc_count = 80;
  cfg.network = NetworkModel::kDetailed;
  EXPECT_DEATH(cfg.validate(), "power-of-two");
  cfg.network = NetworkModel::kFast;
  cfg.validate();  // 80 PEs fine on the fast model (the real prototype!)
}

TEST(Config, RejectsDegenerateValues) {
  {
    MachineConfig cfg;
    cfg.proc_count = 0;
    EXPECT_DEATH(cfg.validate(), "at least one");
  }
  {
    MachineConfig cfg;
    cfg.memory_words = 8;
    EXPECT_DEATH(cfg.validate(), "memory");
  }
  {
    MachineConfig cfg;
    cfg.clock_hz = 0;
    EXPECT_DEATH(cfg.validate(), "clock");
  }
}

TEST(Config, SummaryMentionsKeyParameters) {
  MachineConfig cfg;
  cfg.proc_count = 64;
  const std::string s = cfg.summary();
  EXPECT_NE(s.find("P=64"), std::string::npos);
  EXPECT_NE(s.find("20 MHz"), std::string::npos);
  EXPECT_NE(s.find("bypass-dma"), std::string::npos);
}

}  // namespace
}  // namespace emx
