// MachineReport invariants: bucket accounting must tile the timeline,
// packets must be conserved, and the aggregates must match the per-PE
// data they summarise.
#include <gtest/gtest.h>

#include "apps/bitonic.hpp"
#include "core/machine.hpp"

namespace emx {
namespace {

MachineReport sample_report(std::uint32_t procs = 8, std::uint32_t h = 3) {
  MachineConfig cfg;
  cfg.proc_count = procs;
  Machine m(cfg);
  apps::BitonicSortApp app(m, apps::BitonicParams{.n = procs * 128ull, .threads = h});
  app.setup();
  m.run();
  return m.report();
}

TEST(MachineReport, BucketsPlusIdleTileTheTimeline) {
  const MachineReport r = sample_report();
  for (const auto& p : r.procs) {
    EXPECT_EQ(p.busy_total() + p.comm, r.total_cycles)
        << "per-PE cycles must account for every cycle of the run";
  }
}

TEST(MachineReport, SharesSumToOneHundredPercent) {
  const MachineReport r = sample_report();
  const auto s = r.shares();
  EXPECT_NEAR(s.compute + s.overhead + s.comm + s.switching, 100.0, 1e-9);
  EXPECT_GT(s.compute, 0.0);
  EXPECT_GT(s.comm, 0.0);
  EXPECT_GT(s.switching, 0.0);
}

TEST(MachineReport, PacketConservation) {
  MachineConfig cfg;
  cfg.proc_count = 8;
  Machine m(cfg);
  apps::BitonicSortApp app(m, apps::BitonicParams{.n = 8 * 128, .threads = 2});
  app.setup();
  m.run();
  const MachineReport r = m.report();
  EXPECT_EQ(r.network.packets_injected, r.network.packets_delivered);
  std::uint64_t accepted = 0;
  for (const auto& p : r.procs) accepted += p.packets_accepted;
  EXPECT_EQ(accepted, r.network.packets_delivered);
}

TEST(MachineReport, ReadsMatchDmaServiceCounts) {
  const MachineReport r = sample_report();
  std::uint64_t issued = 0, serviced = 0;
  for (const auto& p : r.procs) {
    issued += p.reads_issued;
    serviced += p.dma_reads;
  }
  EXPECT_EQ(issued, serviced) << "every read request must be serviced";
}

TEST(MachineReport, MeansMatchPerProcData) {
  const MachineReport r = sample_report();
  double comm_sum = 0;
  for (const auto& p : r.procs) comm_sum += static_cast<double>(p.comm);
  EXPECT_DOUBLE_EQ(r.mean_comm_cycles(), comm_sum / r.procs.size());
  EXPECT_DOUBLE_EQ(r.mean_comm_seconds(),
                   r.mean_comm_cycles() / r.clock_hz);
}

TEST(MachineReport, SecondsUseTheTwentyMegahertzClock) {
  const MachineReport r = sample_report();
  EXPECT_DOUBLE_EQ(r.seconds(),
                   static_cast<double>(r.total_cycles) / 20e6);
}

TEST(MachineReport, SummaryTextMentionsKeyNumbers) {
  const MachineReport r = sample_report();
  const std::string s = r.summary_text();
  EXPECT_NE(s.find("cycles="), std::string::npos);
  EXPECT_NE(s.find("comm="), std::string::npos);
  EXPECT_NE(s.find("iter-sync"), std::string::npos);
}

TEST(MachineReport, EventsProcessedIsPositive) {
  const MachineReport r = sample_report();
  EXPECT_GT(r.events_processed, 0u);
}

}  // namespace
}  // namespace emx
