// Wire-protocol parsing: validation is loud and client-facing, and a
// submitted run keys identically to the equivalent emx_run invocation
// (flag-parity defaults) — the property the whole dedup story rests on.
#include "serve/protocol.hpp"

#include <string>

#include <gtest/gtest.h>

namespace emx::serve {
namespace {

Request parse_ok(const std::string& line) {
  Request req;
  std::string err;
  EXPECT_TRUE(parse_request(line, req, err)) << err;
  return req;
}

std::string parse_err(const std::string& line) {
  Request req;
  std::string err;
  EXPECT_FALSE(parse_request(line, req, err));
  return err;
}

TEST(ProtocolTest, SubmitParsesCoordinatesAndDefaults) {
  const Request req = parse_ok(
      R"({"op":"submit","tenant":"alice","priority":7,)"
      R"("run":{"app":"sort","procs":4,"threads":2,"size_per_proc":64}})");
  EXPECT_EQ(req.op, Request::Op::kSubmit);
  EXPECT_EQ(req.tenant, "alice");
  EXPECT_EQ(req.priority, 7);
  EXPECT_EQ(req.job.manifest.app, "sort");
  EXPECT_EQ(req.job.manifest.config.proc_count, 4u);
  EXPECT_EQ(req.job.manifest.threads, 2u);
  EXPECT_EQ(req.job.manifest.size_per_proc, 64u);
  // Registry defaults and the manifest key came through expansion.
  EXPECT_FALSE(req.job.key.empty());
  EXPECT_EQ(req.job.key.rfind("sort-p4-n64-h2-s1-", 0), 0u) << req.job.key;

  // Tenant and priority default when absent.
  const Request bare =
      parse_ok(R"({"op":"submit","run":{"app":"sort"}})");
  EXPECT_EQ(bare.tenant, "default");
  EXPECT_EQ(bare.priority, kMinPriority);
}

TEST(ProtocolTest, RunKeysMatchEmxRunFlagParity) {
  // The parity defaults (iterations=8, seed=1) must be baked in, so an
  // explicit "iterations":8 is the *same* recipe, not a new key.
  const Request implicit =
      parse_ok(R"({"op":"submit","run":{"app":"sort","procs":4,)"
               R"("threads":2,"size_per_proc":64}})");
  const Request explicit_it =
      parse_ok(R"({"op":"submit","run":{"app":"sort","procs":4,)"
               R"("threads":2,"size_per_proc":64,"iterations":8}})");
  EXPECT_EQ(implicit.job.key, explicit_it.job.key);
  EXPECT_EQ(implicit.job.manifest.iterations, 8u);

  // A different knob value is a different key.
  const Request other =
      parse_ok(R"({"op":"submit","run":{"app":"sort","procs":4,)"
               R"("threads":2,"size_per_proc":64,"iterations":4}})");
  EXPECT_NE(other.job.key, implicit.job.key);
}

TEST(ProtocolTest, SubmitValidationIsLoud) {
  EXPECT_NE(parse_err(R"({"op":"submit"})").find("\"run\""),
            std::string::npos);
  EXPECT_NE(parse_err(R"({"op":"submit","run":{}})").find("run.app"),
            std::string::npos);
  EXPECT_NE(parse_err(R"({"op":"submit","run":{"app":"bogus"}})")
                .find("unknown app"),
            std::string::npos);
  EXPECT_NE(parse_err(R"({"op":"submit","priority":11,)"
                      R"("run":{"app":"sort"}})")
                .find("priority"),
            std::string::npos);
  EXPECT_NE(parse_err(R"({"op":"submit","tenant":"",)"
                      R"("run":{"app":"sort"}})")
                .find("tenant"),
            std::string::npos);
  EXPECT_NE(parse_err(R"({"op":"submit","run":{"app":"sort",)"
                      R"("procs":-1}})")
                .find("run.procs"),
            std::string::npos);
  // Knob errors speak the protocol's vocabulary ("run"), not the
  // sweep-spec's internal "base" one.
  const std::string unknown = parse_err(
      R"({"op":"submit","run":{"app":"sort","bogus_knob":1}})");
  EXPECT_NE(unknown.find("unknown run knob 'bogus_knob'"),
            std::string::npos)
      << unknown;
  const std::string badval = parse_err(
      R"({"op":"submit","run":{"app":"sort","block-reads":3}})");
  EXPECT_NE(badval.find("run.block-reads"), std::string::npos) << badval;
  EXPECT_EQ(badval.find("base"), std::string::npos) << badval;
}

TEST(ProtocolTest, OtherOpsAndFraming) {
  EXPECT_EQ(parse_ok(R"({"op":"status","id":"j3"})").op,
            Request::Op::kStatus);
  EXPECT_EQ(parse_ok(R"({"op":"status","id":"j3"})").id, "j3");
  EXPECT_EQ(parse_ok(R"({"op":"cancel","id":"j1"})").op,
            Request::Op::kCancel);
  EXPECT_EQ(parse_ok(R"({"op":"watch","id":"j1"})").op, Request::Op::kWatch);
  EXPECT_EQ(parse_ok(R"({"op":"list"})").op, Request::Op::kList);
  EXPECT_EQ(parse_ok(R"({"op":"drain"})").op, Request::Op::kDrain);

  EXPECT_NE(parse_err(R"({"op":"status"})").find("\"id\""),
            std::string::npos);
  EXPECT_NE(parse_err(R"({"op":"frobnicate"})").find("unknown op"),
            std::string::npos);
  EXPECT_NE(parse_err("not json").find("JSON"), std::string::npos);

  EXPECT_EQ(error_line("boom"), "{\"ok\":false,\"error\":\"boom\"}\n");
}

}  // namespace
}  // namespace emx::serve
