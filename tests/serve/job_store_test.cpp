// Durable daemon state: submits dedupe onto executions, terminal facts
// finish every attached job at once, cancels leave no orphans, and a
// store reopened over the same directory — journal compacted or not —
// converges to the same tables.
#include "serve/job_store.hpp"

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

namespace emx::serve {
namespace {

namespace fs = std::filesystem;

class JobStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "job_store_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    out_ = (dir_ / "out").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  static Request submit_req(const std::string& run_json,
                            const std::string& tenant = "default",
                            int priority = 0) {
    Request req;
    std::string err;
    const std::string line = "{\"op\":\"submit\",\"tenant\":\"" + tenant +
                             "\",\"priority\":" + std::to_string(priority) +
                             ",\"run\":" + run_json + "}";
    EXPECT_TRUE(parse_request(line, req, err)) << err;
    return req;
  }

  static constexpr const char* kRunA =
      R"({"app":"sort","procs":4,"threads":2,"size_per_proc":64})";
  static constexpr const char* kRunB =
      R"({"app":"sort","procs":4,"threads":2,"size_per_proc":64,"seed":2})";
  static constexpr const char* kResult = "{\"exit_code\":0,\"cycles\":42}\n";

  fs::path dir_;
  std::string out_;
};

TEST_F(JobStoreTest, SubmitCreatesJobAndPinnedExec) {
  JobStore store;
  std::string err;
  ASSERT_TRUE(store.open(out_, 0, err)) << err;
  JobRecord* job = nullptr;
  ASSERT_TRUE(store.submit(submit_req(kRunA, "alice", 3), job, err)) << err;
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->id, "j1");
  EXPECT_EQ(job->tenant, "alice");
  EXPECT_EQ(job->state, JobRecord::State::kLive);

  Exec* e = store.find_exec(job->key);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, Exec::State::kQueued);
  EXPECT_EQ(e->job_ids, std::vector<std::string>{"j1"});
  EXPECT_EQ(e->tenant, "alice");
  EXPECT_EQ(store.effective_priority(*e), 3);
  EXPECT_TRUE(store.cache().is_pinned(job->key))
      << "a live exec's key must be pinned against eviction";
  EXPECT_FALSE(store.all_terminal());
}

TEST_F(JobStoreTest, IdenticalRecipesShareOneExec) {
  JobStore store;
  std::string err;
  ASSERT_TRUE(store.open(out_, 0, err)) << err;
  JobRecord *j1 = nullptr, *j2 = nullptr, *j3 = nullptr;
  ASSERT_TRUE(store.submit(submit_req(kRunA, "alice", 2), j1, err)) << err;
  ASSERT_TRUE(store.submit(submit_req(kRunA, "bob", 8), j2, err)) << err;
  ASSERT_TRUE(store.submit(submit_req(kRunB, "bob", 1), j3, err)) << err;

  EXPECT_EQ(j1->key, j2->key);
  EXPECT_NE(j1->key, j3->key);
  ASSERT_EQ(store.execs().size(), 2u);
  Exec* shared = store.find_exec(j1->key);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->job_ids.size(), 2u);
  EXPECT_EQ(shared->tenant, "alice") << "fair-share owner is first attach";
  EXPECT_EQ(store.effective_priority(*shared), 8)
      << "effective priority is the max over attached jobs";

  // One result finishes both attached jobs.
  ASSERT_TRUE(store.record_start(*shared, false, err)) << err;
  ASSERT_TRUE(store.record_done(*shared, kResult, err)) << err;
  EXPECT_EQ(j1->state, JobRecord::State::kDone);
  EXPECT_EQ(j2->state, JobRecord::State::kDone);
  EXPECT_EQ(j1->status, "ok");
  EXPECT_EQ(j1->result_bytes, kResult);
  EXPECT_EQ(j3->state, JobRecord::State::kLive);
  EXPECT_FALSE(store.cache().is_pinned(j1->key))
      << "terminal execs release their pin";
}

TEST_F(JobStoreTest, CacheSatisfiesRepeatSubmitsImmediately) {
  JobStore store;
  std::string err;
  ASSERT_TRUE(store.open(out_, 0, err)) << err;
  JobRecord* first = nullptr;
  ASSERT_TRUE(store.submit(submit_req(kRunA), first, err)) << err;
  Exec* e = store.find_exec(first->key);
  ASSERT_TRUE(store.record_start(*e, false, err)) << err;
  ASSERT_TRUE(store.record_done(*e, kResult, err)) << err;

  JobRecord* again = nullptr;
  ASSERT_TRUE(store.submit(submit_req(kRunA), again, err)) << err;
  EXPECT_EQ(again->id, "j2");
  EXPECT_EQ(again->state, JobRecord::State::kDone);
  EXPECT_EQ(again->status, "cached");
  EXPECT_EQ(again->result_bytes, kResult);
  EXPECT_TRUE(store.all_terminal());
}

TEST_F(JobStoreTest, CancelQueuedErasesTheExec) {
  JobStore store;
  std::string err;
  ASSERT_TRUE(store.open(out_, 0, err)) << err;
  JobRecord* job = nullptr;
  ASSERT_TRUE(store.submit(submit_req(kRunA), job, err)) << err;
  const std::string key = job->key;

  bool found = false, was_live = false;
  std::string killed_key;
  ASSERT_TRUE(store.cancel("j1", found, was_live, killed_key, err)) << err;
  EXPECT_TRUE(found);
  EXPECT_TRUE(was_live);
  EXPECT_TRUE(killed_key.empty()) << "queued cancels kill nothing";
  EXPECT_EQ(job->state, JobRecord::State::kCanceled);
  EXPECT_EQ(store.find_exec(key), nullptr);
  EXPECT_FALSE(store.cache().is_pinned(key));

  // Unknown and already-terminal cancels are reported, not errors.
  ASSERT_TRUE(store.cancel("j9", found, was_live, killed_key, err)) << err;
  EXPECT_FALSE(found);
  ASSERT_TRUE(store.cancel("j1", found, was_live, killed_key, err)) << err;
  EXPECT_TRUE(found);
  EXPECT_FALSE(was_live);
}

TEST_F(JobStoreTest, CancelRunningHandsTheKillToTheDaemon) {
  JobStore store;
  std::string err;
  ASSERT_TRUE(store.open(out_, 0, err)) << err;
  JobRecord* job = nullptr;
  ASSERT_TRUE(store.submit(submit_req(kRunA), job, err)) << err;
  Exec* e = store.find_exec(job->key);
  ASSERT_TRUE(store.record_start(*e, false, err)) << err;

  bool found = false, was_live = false;
  std::string killed_key;
  ASSERT_TRUE(store.cancel("j1", found, was_live, killed_key, err)) << err;
  EXPECT_EQ(killed_key, job->key)
      << "a running exec outlives the cancel until the daemon reaps it";
  ASSERT_NE(store.find_exec(killed_key), nullptr);
  store.drop_exec(killed_key);
  EXPECT_EQ(store.find_exec(killed_key), nullptr);
}

TEST_F(JobStoreTest, ReplayConverges) {
  std::string key_a, key_c;
  {
    JobStore store;
    std::string err;
    ASSERT_TRUE(store.open(out_, 0, err)) << err;
    JobRecord *a = nullptr, *b = nullptr, *c = nullptr;
    // j1 finishes; j2 cancels; j3 is mid-flight when the "crash" hits.
    ASSERT_TRUE(store.submit(submit_req(kRunA, "alice", 2), a, err)) << err;
    key_a = a->key;
    Exec* ea = store.find_exec(key_a);
    ASSERT_TRUE(store.record_start(*ea, false, err)) << err;
    ASSERT_TRUE(store.record_done(*ea, kResult, err)) << err;
    ASSERT_TRUE(store.submit(submit_req(kRunA, "bob", 1), b, err)) << err;
    EXPECT_EQ(b->status, "cached");
    ASSERT_TRUE(store.submit(submit_req(kRunB, "bob", 5), c, err)) << err;
    key_c = c->key;
    Exec* ec = store.find_exec(key_c);
    ASSERT_TRUE(store.record_start(*ec, false, err)) << err;
    ASSERT_TRUE(store.record_preempt(*ec, err)) << err;
    ASSERT_TRUE(store.record_start(*ec, true, err)) << err;
    // No clean shutdown: the journal is all that survives.
  }

  JobStore store;
  std::string err;
  ASSERT_TRUE(store.open(out_, 0, err)) << err;
  ASSERT_EQ(store.jobs().size(), 3u);
  const JobRecord* a = store.jobs().at("j1").id.empty()
                           ? nullptr
                           : &store.jobs().at("j1");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->state, JobRecord::State::kDone);
  EXPECT_EQ(a->status, "ok");
  EXPECT_EQ(a->result_bytes, kResult);
  EXPECT_EQ(store.jobs().at("j2").status, "cached");

  // The mid-flight exec came back queued (its worker died with the
  // daemon), attempt history intact, still pinned.
  const JobRecord& c = store.jobs().at("j3");
  EXPECT_EQ(c.state, JobRecord::State::kLive);
  Exec* ec = store.find_exec(key_c);
  ASSERT_NE(ec, nullptr);
  EXPECT_EQ(ec->state, Exec::State::kQueued);
  EXPECT_EQ(ec->attempts, 2u);
  EXPECT_EQ(ec->resumes, 1u);
  EXPECT_EQ(ec->preempts, 1u);
  EXPECT_TRUE(store.cache().is_pinned(key_c));
  EXPECT_FALSE(store.cache().is_pinned(key_a));

  // Job numbering continues where it left off.
  JobRecord* d = nullptr;
  ASSERT_TRUE(store.submit(submit_req(kRunA), d, err)) << err;
  EXPECT_EQ(d->id, "j4");
}

TEST_F(JobStoreTest, CompactionPreservesTerminalFactsAndCounters) {
  {
    JobStore store;
    std::string err;
    ASSERT_TRUE(store.open(out_, 0, err)) << err;
    JobRecord* a = nullptr;
    ASSERT_TRUE(store.submit(submit_req(kRunA, "alice", 2), a, err)) << err;
    Exec* e = store.find_exec(a->key);
    ASSERT_TRUE(store.record_start(*e, false, err)) << err;
    ASSERT_TRUE(store.record_preempt(*e, err)) << err;
    ASSERT_TRUE(store.record_start(*e, true, err)) << err;
    ASSERT_TRUE(store.record_done(*e, kResult, err)) << err;
    JobRecord* b = nullptr;
    ASSERT_TRUE(store.submit(submit_req(kRunB), b, err)) << err;
    Exec* eb = store.find_exec(b->key);
    ASSERT_TRUE(store.record_start(*eb, false, err)) << err;
    ASSERT_TRUE(store.record_give_up(*eb, "exit-1", err)) << err;
    ASSERT_TRUE(store.all_terminal());
    ASSERT_TRUE(store.compact(err)) << err;
  }

  JobStore store;
  std::string err;
  ASSERT_TRUE(store.open(out_, 0, err)) << err;
  EXPECT_EQ(store.jobs().at("j1").status, "resumed:1");
  EXPECT_EQ(store.jobs().at("j1").result_bytes, kResult);
  EXPECT_EQ(store.jobs().at("j2").state, JobRecord::State::kFailed);
  EXPECT_EQ(store.jobs().at("j2").status, "failed:exit-1");
  // Counters ride the terminal record through compaction.
  const Exec* e = store.find_exec(store.jobs().at("j1").key);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->attempts, 2u);
  EXPECT_EQ(e->resumes, 1u);
  EXPECT_EQ(e->preempts, 1u);
  EXPECT_TRUE(store.all_terminal());

  JobRecord* d = nullptr;
  ASSERT_TRUE(store.submit(submit_req(kRunA), d, err)) << err;
  EXPECT_EQ(d->id, "j3");
  EXPECT_EQ(d->status, "cached") << "the compacted cache entry still hits";
}

}  // namespace
}  // namespace emx::serve
