// Scheduling policy in isolation: priority beats fair share beats
// admission order for admission; preemption only ever sacrifices
// strictly lower-priority work, youngest first.
#include "serve/scheduler.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace emx::serve {
namespace {

ExecView ev(const char* key, const char* tenant, int priority,
            std::uint64_t seq) {
  return ExecView{key, tenant, priority, seq};
}

TEST(PickNextTest, HighestPriorityWins) {
  TenantTable tenants;
  const std::vector<ExecView> q = {ev("a", "t1", 2, 1), ev("b", "t1", 7, 2),
                                   ev("c", "t1", 5, 3)};
  EXPECT_EQ(pick_next(q, tenants, 0), 1u);
}

TEST(PickNextTest, FairShareBreaksPriorityTies) {
  TenantTable tenants;
  tenants.on_start("busy");
  tenants.on_start("busy");
  tenants.on_start("idle");
  // Same priority: the tenant with less running work goes first, even
  // though the busy tenant submitted earlier.
  const std::vector<ExecView> q = {ev("a", "busy", 5, 1),
                                   ev("b", "idle", 5, 2)};
  EXPECT_EQ(pick_next(q, tenants, 0), 1u);
}

TEST(PickNextTest, AdmissionOrderBreaksFullTies) {
  TenantTable tenants;
  const std::vector<ExecView> q = {ev("a", "t1", 5, 9), ev("b", "t2", 5, 4),
                                   ev("c", "t1", 5, 7)};
  EXPECT_EQ(pick_next(q, tenants, 0), 1u);
}

TEST(PickNextTest, TenantCapSkips) {
  TenantTable tenants;
  tenants.on_start("capped");
  // A higher-priority exec whose tenant is at cap yields to the rest.
  const std::vector<ExecView> q = {ev("a", "capped", 9, 1),
                                   ev("b", "other", 1, 2)};
  EXPECT_EQ(pick_next(q, tenants, 1), 1u);
  // No cap: the priority order reasserts itself.
  EXPECT_EQ(pick_next(q, tenants, 0), 0u);
  // Everyone capped: nothing to pick.
  tenants.on_start("other");
  EXPECT_EQ(pick_next(q, tenants, 1), kNoPick);
  EXPECT_EQ(pick_next({}, tenants, 0), kNoPick);
}

TEST(PickVictimTest, OnlyStrictlyLowerPriorityIsPreemptable) {
  const std::vector<ExecView> running = {ev("a", "t1", 5, 1),
                                         ev("b", "t1", 3, 2)};
  // Equal priority never preempts: no churn among peers.
  EXPECT_EQ(pick_victim(running, 3), kNoPick);
  // Strictly higher does, and takes the lowest-priority victim.
  EXPECT_EQ(pick_victim(running, 4), 1u);
  EXPECT_EQ(pick_victim(running, 9), 1u);
  EXPECT_EQ(pick_victim({}, 9), kNoPick);
}

TEST(PickVictimTest, YoungestOfEqualPrioritiesGoesFirst) {
  const std::vector<ExecView> running = {ev("a", "t1", 2, 4),
                                         ev("b", "t2", 2, 9),
                                         ev("c", "t3", 2, 6)};
  // Same (lowest) priority everywhere: the youngest admission — the
  // one with the least checkpoint state to lose — is the victim.
  EXPECT_EQ(pick_victim(running, 5), 1u);
}

}  // namespace
}  // namespace emx::serve
