#include "common/ring_buffer.hpp"

#include <gtest/gtest.h>

namespace emx {
namespace {

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> rb(4);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_EQ(rb.pop(), 1);
  rb.push(4);
  rb.push(5);  // wraps around
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
  EXPECT_EQ(rb.pop(), 5);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, FullAndEmptyFlags) {
  RingBuffer<int> rb(2);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  rb.push(1);
  rb.push(2);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.size(), 2u);
}

TEST(SpillingFifo, SpillsBeyondOnChipCapacityAndPreservesOrder) {
  // Mirrors the IBU: 8-deep on-chip FIFO, overflow to memory, automatic
  // restore (paper §2.2).
  SpillingFifo<int> fifo(8);
  for (int i = 0; i < 30; ++i) fifo.push(i);
  EXPECT_EQ(fifo.size(), 30u);
  EXPECT_EQ(fifo.spilled(), 22u);
  EXPECT_EQ(fifo.peak_size(), 30u);
  for (int i = 0; i < 30; ++i) EXPECT_EQ(fifo.pop(), i);
  EXPECT_TRUE(fifo.empty());
  EXPECT_EQ(fifo.spilled(), 0u);
}

TEST(SpillingFifo, InterleavedPushPop) {
  SpillingFifo<int> fifo(2);
  int next_push = 0, next_pop = 0;
  for (int round = 0; round < 50; ++round) {
    fifo.push(next_push++);
    fifo.push(next_push++);
    EXPECT_EQ(fifo.pop(), next_pop++);
  }
  while (!fifo.empty()) EXPECT_EQ(fifo.pop(), next_pop++);
  EXPECT_EQ(next_pop, next_push);
}

TEST(SpillingFifo, RestoresFromSpillAfterDrain) {
  SpillingFifo<int> fifo(2);
  for (int i = 0; i < 5; ++i) fifo.push(i);
  EXPECT_EQ(fifo.pop(), 0);
  EXPECT_EQ(fifo.pop(), 1);
  // Newly pushed items must still come after restored spill items.
  fifo.push(100);
  EXPECT_EQ(fifo.pop(), 2);
  EXPECT_EQ(fifo.pop(), 3);
  EXPECT_EQ(fifo.pop(), 4);
  EXPECT_EQ(fifo.pop(), 100);
}

}  // namespace
}  // namespace emx
