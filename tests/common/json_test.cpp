// json::Value — the supervisor's wire format. Determinism of dump() and
// honesty of parse() errors are what the sweep machinery leans on.
#include "common/json.hpp"

#include <gtest/gtest.h>

namespace emx::json {
namespace {

Value parse_ok(const std::string& text) {
  std::string err;
  Value v = Value::parse(text, err);
  EXPECT_EQ(err, "") << text;
  return v;
}

std::string parse_err(const std::string& text) {
  std::string err;
  Value::parse(text, err);
  EXPECT_NE(err, "") << text;
  return err;
}

TEST(Json, ScalarRoundTrip) {
  EXPECT_EQ(parse_ok("null").dump(), "null");
  EXPECT_EQ(parse_ok("true").dump(), "true");
  EXPECT_EQ(parse_ok("false").dump(), "false");
  EXPECT_EQ(parse_ok("42").dump(), "42");
  EXPECT_EQ(parse_ok("-7").dump(), "-7");
  EXPECT_EQ(parse_ok("\"hi\"").dump(), "\"hi\"");
}

TEST(Json, IntegersStayIntegers) {
  // Cycle counts must survive parse→dump exactly — no 1e+06 drift.
  const Value v = parse_ok("{\"cycles\":472640}");
  EXPECT_TRUE(v.find("cycles")->is_int());
  EXPECT_EQ(v.dump(), "{\"cycles\":472640}");
  EXPECT_EQ(parse_ok("9223372036854775807").as_int(), 9223372036854775807LL);
}

TEST(Json, DoublesRoundTrip) {
  const Value v = parse_ok("{\"pct\":35.283076298701296}");
  EXPECT_TRUE(v.find("pct")->is_number());
  EXPECT_DOUBLE_EQ(v.find("pct")->as_double(), 35.283076298701296);
  // Shortest round-trip form, deterministically.
  EXPECT_EQ(parse_ok(v.dump()).find("pct")->as_double(),
            v.find("pct")->as_double());
}

TEST(Json, ObjectsKeepInsertionOrder) {
  Value v = Value::object();
  v.set("zebra", Value::integer(1));
  v.set("apple", Value::integer(2));
  v.set("mango", Value::integer(3));
  EXPECT_EQ(v.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
  v.set("apple", Value::integer(9));  // replaces in place, order kept
  EXPECT_EQ(v.dump(), "{\"zebra\":1,\"apple\":9,\"mango\":3}");
}

TEST(Json, NestedRoundTripIsByteStable) {
  const std::string text =
      "{\"a\":[1,2,{\"b\":null}],\"c\":{\"d\":\"x\",\"e\":[true,false]}}";
  EXPECT_EQ(parse_ok(text).dump(), text);
  // dump→parse→dump is a fixed point — the property the aggregate
  // byte-comparison rests on.
  const Value v = parse_ok(text);
  EXPECT_EQ(parse_ok(v.dump()).dump(), v.dump());
}

TEST(Json, PrettyPrint) {
  Value v = Value::object();
  v.set("k", Value::integer(1));
  EXPECT_EQ(v.dump(2), "{\n  \"k\": 1\n}");
}

TEST(Json, StringEscapes) {
  const Value v = parse_ok("\"a\\\"b\\\\c\\n\\t\\u0041\"");
  EXPECT_EQ(v.as_string(), "a\"b\\c\n\tA");
  EXPECT_EQ(escape("tab\there \"q\""), "tab\\there \\\"q\\\"");
}

TEST(Json, ErrorsNameTheByteOffset) {
  EXPECT_NE(parse_err("{\"a\":}").find("byte"), std::string::npos);
  parse_err("");
  parse_err("{");
  parse_err("[1,]");
  parse_err("{\"a\":1,}");
  parse_err("{\"a\" 1}");
  parse_err("nul");
  parse_err("\"unterminated");
  parse_err("{\"a\":1} trailing");
}

TEST(Json, DepthLimitHolds) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  parse_err(deep);  // must return, not crash
}

TEST(Json, FindOnMissingKeyIsNull) {
  const Value v = parse_ok("{\"a\":1}");
  EXPECT_EQ(v.find("b"), nullptr);
  EXPECT_NE(v.find("a"), nullptr);
}

}  // namespace
}  // namespace emx::json
