#include "common/table.hpp"

#include <gtest/gtest.h>

namespace emx {
namespace {

TEST(Table, TextAlignsColumns) {
  Table t({"threads", "comm(s)"});
  t.add_row({"1", "0.5"});
  t.add_row({"16", "0.125"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("threads  comm(s)"), std::string::npos);
  EXPECT_NE(text.find("16       0.125"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "value"});
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "quote\"inside"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\",\"quote\"\"inside\""), std::string::npos);
  EXPECT_EQ(csv.find('\r'), std::string::npos);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(Table::cell(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::cell(0.5), "0.5");
  EXPECT_EQ(Table::cell(1234567.0), "1.23457e+06");
}

TEST(Table, RowWidthMismatchPanics) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(Table, AccessorsRoundTrip) {
  Table t({"x"});
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 1u);
  EXPECT_EQ(t.row(1)[0], "2");
}

}  // namespace
}  // namespace emx
