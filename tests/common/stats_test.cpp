#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace emx {
namespace {

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 20.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Histogram, BucketsAndPercentiles) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 100u);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bucket(b), 10u);
  EXPECT_NEAR(h.percentile(50), 50.0, 2.0);
  EXPECT_NEAR(h.percentile(95), 95.0, 2.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
}

TEST(Histogram, AsciiRendersEveryBucket) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string art = h.ascii(20);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

}  // namespace
}  // namespace emx
