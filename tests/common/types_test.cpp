#include "common/types.hpp"

#include <gtest/gtest.h>

namespace emx {
namespace {

TEST(Types, PowerOfTwoPredicate) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_TRUE(is_power_of_two(1ull << 40));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(80));  // the EM-X prototype's PE count!
}

TEST(Types, IntegerLog2) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(64), 6u);
  EXPECT_EQ(ilog2(65), 6u);  // floor
  EXPECT_EQ(ceil_log2(64), 6u);
  EXPECT_EQ(ceil_log2(65), 7u);
  EXPECT_EQ(ceil_log2(80), 7u);
  EXPECT_EQ(ceil_log2(1), 0u);
}

TEST(Types, CycleSecondConversion) {
  // 20 MHz: 50 ns per cycle; a 1-2 us remote read is 20-40 cycles.
  EXPECT_DOUBLE_EQ(cycles_to_seconds(20, kDefaultClockHz), 1e-6);
  EXPECT_DOUBLE_EQ(cycles_to_seconds(40, kDefaultClockHz), 2e-6);
  EXPECT_EQ(seconds_to_cycles(1e-6, kDefaultClockHz), 20u);
}

}  // namespace
}  // namespace emx
