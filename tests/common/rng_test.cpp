#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace emx {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
}

TEST(Rng, BoundedCoversSmallRangeUniformly) {
  Rng rng(11);
  std::array<int, 5> counts{};
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.bounded(5)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 5 - kDraws / 25);
    EXPECT_LT(c, kDraws / 5 + kDraws / 25);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(5);
  const std::uint64_t first = rng.next_u64();
  rng.next_u64();
  rng.reseed(5);
  EXPECT_EQ(rng.next_u64(), first);
}

}  // namespace
}  // namespace emx
