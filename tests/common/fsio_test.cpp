// fsio — the crash-safe filesystem primitives under snapshots, results
// and the sweep journal.
#include "common/fsio.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace emx::fsio {
namespace {

namespace fs = std::filesystem;

class FsioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("fsio_" + std::string(
                          ::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  fs::path dir_;
};

TEST_F(FsioTest, AtomicWriteCreatesReplacesAndLeavesNoTempFiles) {
  const std::string target = path("data.bin");
  ASSERT_EQ(atomic_write_file(target, "first"), "");
  EXPECT_EQ(slurp(target), "first");
  ASSERT_EQ(atomic_write_file(target, "second, longer than before"), "");
  EXPECT_EQ(slurp(target), "second, longer than before");

  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u) << "temp files must not survive a publish";
}

TEST_F(FsioTest, AtomicWriteRefusesUnreachableParent) {
  ASSERT_EQ(atomic_write_file(path("blocker"), "x"), "");
  const std::string err =
      atomic_write_file(path("blocker") + "/sub/file", "y");
  EXPECT_NE(err, "");
  EXPECT_NE(err.find("blocker"), std::string::npos);
}

TEST_F(FsioTest, EnsureWritableDirCreatesParents) {
  const std::string deep = path("a/b/c");
  EXPECT_EQ(ensure_writable_dir(deep), "");
  EXPECT_TRUE(fs::is_directory(deep));
  // No probe file left behind.
  EXPECT_TRUE(fs::is_empty(deep));
}

TEST_F(FsioTest, EnsureWritableDirNamesARegularFileInTheWay) {
  ASSERT_EQ(atomic_write_file(path("taken"), "x"), "");
  const std::string err = ensure_writable_dir(path("taken"));
  EXPECT_NE(err, "");
  EXPECT_NE(err.find("taken"), std::string::npos);
}

TEST_F(FsioTest, ProbeWritableFileLeavesExistingContentAlone) {
  const std::string existing = path("log.txt");
  ASSERT_EQ(atomic_write_file(existing, "precious"), "");
  EXPECT_EQ(probe_writable_file(existing), "");
  EXPECT_EQ(slurp(existing), "precious");
}

TEST_F(FsioTest, ProbeWritableFileRemovesItsOwnProbe) {
  const std::string fresh = path("new.txt");
  EXPECT_EQ(probe_writable_file(fresh), "");
  EXPECT_FALSE(fs::exists(fresh)) << "probe must not leave a file behind";
}

TEST_F(FsioTest, ProbeWritableFileRefusesPathUnderARegularFile) {
  // Works even as root (ENOTDIR, not a permission check).
  ASSERT_EQ(atomic_write_file(path("plain"), "x"), "");
  const std::string err = probe_writable_file(path("plain") + "/nested");
  EXPECT_NE(err, "");
  EXPECT_NE(err.find("nested"), std::string::npos);
}

TEST_F(FsioTest, AppendLineFsyncAppends) {
  const std::string log = path("journal");
  ASSERT_EQ(append_line_fsync(log, "one\n"), "");
  ASSERT_EQ(append_line_fsync(log, "two\n"), "");
  EXPECT_EQ(slurp(log), "one\ntwo\n");
}

}  // namespace
}  // namespace emx::fsio
