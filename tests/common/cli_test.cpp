#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace emx {
namespace {

CliFlags make_flags() {
  CliFlags flags;
  flags.define("procs", "16", "processor count")
      .define("full", "false", "paper-scale sizes")
      .define("sizes", "1,2,4", "element counts")
      .define("label", "", "free text");
  return flags;
}

TEST(Cli, DefaultsApply) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog"};
  flags.parse(1, argv);
  EXPECT_EQ(flags.integer("procs"), 16);
  EXPECT_FALSE(flags.boolean("full"));
  EXPECT_EQ(flags.int_list("sizes"), (std::vector<std::int64_t>{1, 2, 4}));
}

TEST(Cli, EqualsSyntax) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--procs=64", "--label=hello"};
  flags.parse(3, argv);
  EXPECT_EQ(flags.integer("procs"), 64);
  EXPECT_EQ(flags.str("label"), "hello");
}

TEST(Cli, SpaceSyntaxAndBareBoolean) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--procs", "32", "--full"};
  flags.parse(4, argv);
  EXPECT_EQ(flags.integer("procs"), 32);
  EXPECT_TRUE(flags.boolean("full"));
}

TEST(Cli, NoPrefixDisablesBoolean) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--full", "--no-full"};
  flags.parse(3, argv);
  EXPECT_FALSE(flags.boolean("full"));
}

TEST(Cli, IntListParsing) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--sizes=8,16,32,64"};
  flags.parse(2, argv);
  EXPECT_EQ(flags.int_list("sizes"),
            (std::vector<std::int64_t>{8, 16, 32, 64}));
}

TEST(Cli, UnknownFlagExits) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_EXIT(flags.parse(2, argv), testing::ExitedWithCode(2), "unknown flag");
}

TEST(Cli, MalformedIntegerPanics) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--procs=abc"};
  flags.parse(2, argv);
  EXPECT_DEATH((void)flags.integer("procs"), "not an integer");
}

}  // namespace
}  // namespace emx
