#include "common/rng_registry.hpp"

#include <gtest/gtest.h>

#include "common/serializer.hpp"

namespace emx::rng {
namespace {

TEST(RngRegistry, CreatesOwnedStreamOnFirstUse) {
  StreamRegistry reg;
  EXPECT_FALSE(reg.contains("workload.sort"));
  Rng& a = reg.stream("workload.sort", 42);
  EXPECT_TRUE(reg.contains("workload.sort"));
  EXPECT_EQ(reg.count(), 1u);

  // Same name + seed returns the same engine, mid-stream.
  const std::uint64_t first = a.next_u64();
  Rng& b = reg.stream("workload.sort", 42);
  EXPECT_EQ(&a, &b);
  Rng fresh(42);
  EXPECT_EQ(first, fresh.next_u64());
  EXPECT_EQ(b.next_u64(), fresh.next_u64());
}

TEST(RngRegistry, AdoptRegistersExternalEngine) {
  StreamRegistry reg;
  Rng external(7);
  reg.adopt("fault.plan", &external);
  EXPECT_TRUE(reg.contains("fault.plan"));

  // Re-adopting replaces the pointer (Machine rebuild on one registry).
  Rng other(9);
  reg.adopt("fault.plan", &other);
  EXPECT_EQ(reg.count(), 1u);
}

TEST(RngRegistry, NamesAreSorted) {
  StreamRegistry reg;
  reg.stream("workload.sort", 1);
  reg.stream("fault.plan", 2);
  reg.stream("workload.fft", 3);
  const auto names = reg.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "fault.plan");
  EXPECT_EQ(names[1], "workload.fft");
  EXPECT_EQ(names[2], "workload.sort");
}

TEST(RngRegistry, SaveLoadResumesStreamsExactly) {
  StreamRegistry reg;
  Rng& sort = reg.stream("workload.sort", 101);
  Rng adopted_engine(202);
  reg.adopt("fault.plan", &adopted_engine);

  // Advance both, snapshot, advance further and remember the draws.
  for (int i = 0; i < 17; ++i) sort.next_u64();
  for (int i = 0; i < 5; ++i) adopted_engine.next_double();
  snapshot::Serializer s;
  reg.save(s);
  const std::uint64_t sort_next = sort.next_u64();
  const double plan_next = adopted_engine.next_double();

  // A second registry with the same shape but different positions.
  StreamRegistry other;
  Rng& other_sort = other.stream("workload.sort", 101);
  Rng other_engine(999);
  other.adopt("fault.plan", &other_engine);
  other_sort.next_u64();

  snapshot::Deserializer d(s.data());
  ASSERT_TRUE(other.load(d));
  EXPECT_TRUE(d.exhausted());
  EXPECT_EQ(other_sort.next_u64(), sort_next);
  EXPECT_EQ(other_engine.next_double(), plan_next);
}

TEST(RngRegistry, LoadRejectsShapeMismatch) {
  StreamRegistry reg;
  reg.stream("workload.sort", 1);
  snapshot::Serializer s;
  reg.save(s);

  // Missing stream: the loading registry never registered the name.
  StreamRegistry empty;
  snapshot::Deserializer d1(s.data());
  EXPECT_FALSE(empty.load(d1));

  // Count mismatch: the loading registry has an extra stream.
  StreamRegistry extra;
  extra.stream("workload.sort", 1);
  extra.stream("workload.fft", 2);
  snapshot::Deserializer d2(s.data());
  EXPECT_FALSE(extra.load(d2));
}

TEST(RngRegistry, SaveIsByteDeterministic) {
  const auto snap = [] {
    StreamRegistry reg;
    reg.stream("b", 2).next_u64();
    reg.stream("a", 1).next_u64();
    snapshot::Serializer s;
    reg.save(s);
    return s.data();
  };
  EXPECT_EQ(snap(), snap());
}

}  // namespace
}  // namespace emx::rng
