#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace emx {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) pool.submit([&] { ++counter; });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
}

}  // namespace
}  // namespace emx
