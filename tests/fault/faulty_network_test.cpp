// FaultyNetwork decorator tests: drop / duplicate / corrupt / stall /
// jitter behaviour at the Network boundary, checksum discard at the
// ejection port, FIFO non-overtaking under delays, and the fault ledger.
#include "fault/faulty_network.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "network/fast_network.hpp"
#include "sim/sim_context.hpp"

namespace emx::fault {
namespace {

struct Collector {
  std::vector<net::Packet> delivered;
  std::vector<Cycle> times;
  sim::SimContext* sim = nullptr;
};
void collect(void* ctx, const net::Packet& p) {
  auto* c = static_cast<Collector*>(ctx);
  c->delivered.push_back(p);
  c->times.push_back(c->sim->now());
}

net::Packet read_req(ProcId src, ProcId dst, std::uint32_t seq) {
  net::Packet p;
  p.kind = net::PacketKind::kRemoteReadReq;
  p.src = src;
  p.dst = dst;
  p.addr = 0xAB;
  p.data = 0xCD;
  p.req_seq = seq;
  return p;
}

struct Rig {
  sim::SimContext sim;
  FaultDomain domain;
  Collector collector;
  std::unique_ptr<FaultyNetwork> net;

  explicit Rig(const FaultConfig& cfg, std::uint32_t procs = 4) {
    collector.sim = &sim;
    net = std::make_unique<FaultyNetwork>(
        sim, std::make_unique<net::FastNetwork>(sim, procs), procs, cfg,
        domain, nullptr);
    net->set_delivery(&collect, &collector);
    // Tests pick sequence numbers by hand; make them live in the ledger
    // the way RetryAgent::on_send would.
    for (int i = 0; i < 64; ++i) domain.next_seq();
  }
};

TEST(FaultyNetwork, TransparentWhenThePlanDecidesNothing) {
  FaultConfig cfg;
  cfg.scheduled.push_back({.nth = 99, .kind = FaultKind::kDrop});  // never hit
  Rig rig(cfg);
  rig.net->inject(read_req(0, 1, 1));
  rig.sim.run_until_idle();
  ASSERT_EQ(rig.collector.delivered.size(), 1u);
  EXPECT_EQ(rig.domain.report().injected_total(), 0u);
  EXPECT_EQ(rig.net->name(), "omega-fast+faults");
}

TEST(FaultyNetwork, ScheduledDropNeverReachesTheFabric) {
  FaultConfig cfg;
  cfg.scheduled.push_back({.nth = 1, .kind = FaultKind::kDrop});
  Rig rig(cfg);
  rig.net->inject(read_req(0, 1, 7));
  rig.sim.run_until_idle();
  EXPECT_TRUE(rig.collector.delivered.empty());
  const FaultReport& r = rig.domain.report();
  EXPECT_EQ(r.injected[static_cast<std::size_t>(FaultKind::kDrop)], 1u);
  EXPECT_EQ(r.injected_recoverable, 1u);
  EXPECT_EQ(rig.domain.pending_losses(), 1u);  // nobody recovered it yet
  EXPECT_EQ(rig.net->stats().packets_injected, 0u);  // inner never saw it
}

TEST(FaultyNetwork, DuplicateDeliversThePacketTwice) {
  FaultConfig cfg;
  cfg.scheduled.push_back({.nth = 1, .kind = FaultKind::kDuplicate});
  Rig rig(cfg);
  rig.net->inject(read_req(0, 1, 7));
  rig.sim.run_until_idle();
  ASSERT_EQ(rig.collector.delivered.size(), 2u);
  EXPECT_EQ(rig.collector.delivered[0].req_seq, 7u);
  EXPECT_EQ(rig.collector.delivered[1].req_seq, 7u);
  // Duplication loses nothing; the ledger has no pending loss.
  EXPECT_EQ(rig.domain.pending_losses(), 0u);
  EXPECT_EQ(rig.domain.report().injected[static_cast<std::size_t>(
                FaultKind::kDuplicate)],
            1u);
}

TEST(FaultyNetwork, CorruptionIsCaughtByTheChecksumAndDiscarded) {
  FaultConfig cfg;
  cfg.scheduled.push_back({.nth = 1, .kind = FaultKind::kCorrupt});
  Rig rig(cfg);
  rig.net->inject(read_req(0, 1, 7));
  rig.sim.run_until_idle();
  // The corrupted packet crossed the fabric but the receiver NIC threw it
  // away: nothing reaches the delivery handler.
  EXPECT_TRUE(rig.collector.delivered.empty());
  const FaultReport& r = rig.domain.report();
  EXPECT_EQ(r.injected[static_cast<std::size_t>(FaultKind::kCorrupt)], 1u);
  EXPECT_EQ(r.corrupt_discarded, 1u);
  EXPECT_EQ(r.injected_recoverable, 1u);
  EXPECT_EQ(rig.net->stats().packets_delivered, 1u);  // fabric did its job
}

TEST(FaultyNetwork, IntactPacketsPassTheChecksumCheck) {
  FaultConfig cfg;
  cfg.jitter_max_cycles = 1;  // enables the subsystem, barely perturbs
  Rig rig(cfg);
  for (std::uint32_t i = 1; i <= 20; ++i) rig.net->inject(read_req(0, 1, i));
  rig.sim.run_until_idle();
  EXPECT_EQ(rig.collector.delivered.size(), 20u);
  EXPECT_EQ(rig.domain.report().corrupt_discarded, 0u);
}

TEST(FaultyNetwork, StallWindowHoldsTheLinkUntilItEnds) {
  FaultConfig cfg;
  cfg.stalls.push_back({.src = 0, .dst = 1, .begin = 0, .end = 200});
  Rig rig(cfg);
  rig.net->inject(read_req(0, 1, 1));
  rig.sim.run_until_idle();
  ASSERT_EQ(rig.collector.times.size(), 1u);
  EXPECT_GE(rig.collector.times[0], 200u);  // held, then normal transit
  EXPECT_EQ(rig.domain.report().injected[static_cast<std::size_t>(
                FaultKind::kStall)],
            1u);
}

TEST(FaultyNetwork, SelfPacketsBypassTheFaultModel) {
  FaultConfig cfg;
  cfg.drop_rate = 1.0;
  Rig rig(cfg);
  net::Packet p = read_req(2, 2, 1);
  rig.net->inject(p);
  rig.sim.run_until_idle();
  ASSERT_EQ(rig.collector.delivered.size(), 1u);
  EXPECT_EQ(rig.domain.report().injected_total(), 0u);
}

TEST(FaultyNetwork, JitterPreservesPerLinkFifoOrder) {
  // Non-overtaking is a correctness cornerstone of the whole simulator
  // (write-then-read to the same PE). Heavy jitter must not reorder a
  // link's packets.
  FaultConfig cfg;
  cfg.jitter_max_cycles = 64;
  Rig rig(cfg);
  for (std::uint32_t i = 1; i <= 50; ++i) {
    net::Packet p = read_req(0, 1, i);
    p.data = i;  // payload marks injection order
    rig.net->inject(p);
  }
  rig.sim.run_until_idle();
  ASSERT_EQ(rig.collector.delivered.size(), 50u);
  for (std::uint32_t i = 0; i < 50; ++i)
    EXPECT_EQ(rig.collector.delivered[i].data, i + 1) << "overtaking at " << i;
}

TEST(FaultyNetwork, DropRateOneKillsEveryFabricPacket) {
  // Writes are sequenced fabric traffic now; a certain drop rate kills
  // them along with the reads. An unsequenced write (req_seq 0 — the
  // reliability layer disabled) is still dropped but lands in the
  // unrecoverable column of the ledger.
  FaultConfig cfg;
  cfg.drop_rate = 1.0;
  Rig rig(cfg);
  for (std::uint32_t i = 1; i <= 10; ++i) rig.net->inject(read_req(0, 1, i));
  net::Packet w;
  w.kind = net::PacketKind::kRemoteWrite;
  w.src = 0;
  w.dst = 1;
  rig.net->inject(w);
  rig.sim.run_until_idle();
  EXPECT_TRUE(rig.collector.delivered.empty());
  const FaultReport& r = rig.domain.report();
  EXPECT_EQ(r.injected[static_cast<std::size_t>(FaultKind::kDrop)], 11u);
  EXPECT_EQ(r.injected_recoverable, 10u);  // the seq-0 write is not
  EXPECT_EQ(r.unsequenced_losses, 1u);
}

TEST(FaultyNetwork, OutageWindowKillsTrafficFromAndToThePe) {
  FaultConfig cfg;
  cfg.outages.push_back({.pe = 1, .begin = 0, .end = 1000});
  Rig rig(cfg);
  rig.net->inject(read_req(0, 1, 1));  // toward the dead PE
  rig.net->inject(read_req(1, 2, 2));  // from the dead PE
  rig.net->inject(read_req(2, 3, 3));  // unrelated link, unharmed
  rig.sim.run_until_idle();
  ASSERT_EQ(rig.collector.delivered.size(), 1u);
  EXPECT_EQ(rig.collector.delivered[0].req_seq, 3u);
  const FaultReport& r = rig.domain.report();
  EXPECT_EQ(r.injected[static_cast<std::size_t>(FaultKind::kPeOutage)], 2u);
  EXPECT_EQ(r.injected_recoverable, 2u);
}

TEST(FaultyNetwork, TrafficFlowsAgainAfterTheOutageEnds) {
  FaultConfig cfg;
  cfg.outages.push_back({.pe = 1, .begin = 0, .end = 50});
  Rig rig(cfg);
  rig.sim.schedule_at(
      60,
      +[](void* ctx, std::uint64_t, std::uint64_t) {
        static_cast<Rig*>(ctx)->net->inject(read_req(0, 1, 1));
      },
      &rig, 0, 0);
  rig.sim.run_until_idle();
  ASSERT_EQ(rig.collector.delivered.size(), 1u);
  EXPECT_EQ(rig.domain.report().injected_total(), 0u);
}

TEST(FaultDomain, LedgerMovesLossesToRecoveredOnCompletion) {
  FaultDomain domain;
  const auto s1 = domain.next_seq();
  const auto s2 = domain.next_seq();
  domain.note_lost(s1);
  domain.note_lost(s1);  // two faults charged to one request
  domain.note_lost(s2);
  EXPECT_EQ(domain.pending_losses(), 3u);
  domain.note_completed(s1);
  EXPECT_EQ(domain.pending_losses(), 1u);
  EXPECT_EQ(domain.report().recovered, 2u);
  domain.note_completed(s2);
  EXPECT_EQ(domain.pending_losses(), 0u);
  EXPECT_EQ(domain.report().recovered, 3u);
  EXPECT_EQ(domain.report().injected_recoverable, 3u);
}

TEST(FaultDomain, FaultsOnCompletedSequencesAreStaleNotPending) {
  FaultDomain domain;
  const auto s = domain.next_seq();
  domain.note_completed(s);  // read finished via the first copy
  domain.note_lost(s);       // ... then a stale retransmit was dropped
  EXPECT_EQ(domain.pending_losses(), 0u);
  EXPECT_EQ(domain.report().stale_losses, 1u);
  EXPECT_EQ(domain.report().injected_recoverable, 0u);
}

}  // namespace
}  // namespace emx::fault
