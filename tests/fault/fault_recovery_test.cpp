// End-to-end fault-injection & reliability tests: real applications on a
// lossy fabric must still compute the right answer, every injected
// recoverable fault must be recovered, and faulted runs must be exactly
// as deterministic as clean ones.
#include <gtest/gtest.h>

#include <vector>

#include "apps/bitonic.hpp"
#include "apps/fft.hpp"
#include "core/machine.hpp"

namespace emx {
namespace {

fault::FaultConfig acceptance_rates() {
  fault::FaultConfig f;
  f.drop_rate = 0.01;
  f.corrupt_rate = 0.005;
  return f;
}

MachineConfig faulted_config(std::uint32_t procs,
                             const fault::FaultConfig& f) {
  MachineConfig cfg;
  cfg.proc_count = procs;
  cfg.fault = f;
  return cfg;
}

TEST(FaultRecovery, SortVerifiesUnderAcceptanceRates) {
  // The issue's acceptance point: sorting, P=16, h=8, drop 1%, corrupt
  // 0.5% — output verifies and every recoverable fault is recovered.
  Machine m(faulted_config(16, acceptance_rates()));
  apps::BitonicSortApp app(m,
                           apps::BitonicParams{.n = 16 * 1024, .threads = 8});
  app.setup();
  m.run();
  EXPECT_TRUE(app.verify());
  const MachineReport r = m.report();
  ASSERT_TRUE(r.fault_enabled);
  EXPECT_GT(r.fault.injected_total(), 0u);
  EXPECT_EQ(r.fault.recovered, r.fault.injected_recoverable);
  EXPECT_GT(r.fault.retries, 0u);
  EXPECT_GT(r.fault.worst_recovery_cycles, 0u);
}

TEST(FaultRecovery, FftVerifiesUnderAcceptanceRates) {
  Machine m(faulted_config(16, acceptance_rates()));
  apps::FftApp app(m, apps::FftParams{.n = 16 * 1024, .threads = 8,
                                      .include_local_phase = true});
  app.setup();
  m.run();
  EXPECT_LT(app.verify_error(), 1e-5);
  const MachineReport r = m.report();
  EXPECT_EQ(r.fault.recovered, r.fault.injected_recoverable);
}

TEST(FaultRecovery, BlockReadsRecoverToo) {
  fault::FaultConfig f = acceptance_rates();
  Machine m(faulted_config(8, f));
  apps::BitonicSortApp app(
      m, apps::BitonicParams{.n = 8 * 256, .threads = 4,
                             .use_block_reads = true});
  app.setup();
  m.run();
  EXPECT_TRUE(app.verify());
  const MachineReport r = m.report();
  EXPECT_EQ(r.fault.recovered, r.fault.injected_recoverable);
}

TEST(FaultRecovery, Em4ReadServiceModeRecoversToo) {
  // The EXU-thread service path builds replies in the scheduler, not the
  // DMA — the sequence number must survive that path as well.
  fault::FaultConfig f;
  f.drop_rate = 0.02;
  MachineConfig cfg = faulted_config(8, f);
  cfg.read_service = ReadServiceMode::kExuThread;
  Machine m(cfg);
  apps::BitonicSortApp app(m, apps::BitonicParams{.n = 8 * 256, .threads = 4});
  app.setup();
  m.run();
  EXPECT_TRUE(app.verify());
  const MachineReport r = m.report();
  EXPECT_GT(r.fault.injected_total(), 0u);
  EXPECT_EQ(r.fault.recovered, r.fault.injected_recoverable);
}

TEST(FaultRecovery, DetailedNetworkUnderneathTheDecorator) {
  fault::FaultConfig f;
  f.drop_rate = 0.01;
  MachineConfig cfg = faulted_config(8, f);
  cfg.network = NetworkModel::kDetailed;
  Machine m(cfg);
  apps::BitonicSortApp app(m, apps::BitonicParams{.n = 8 * 256, .threads = 4});
  app.setup();
  m.run();
  EXPECT_TRUE(app.verify());
  EXPECT_EQ(m.network().name(), "omega-detailed+faults");
  const MachineReport r = m.report();
  EXPECT_EQ(r.fault.recovered, r.fault.injected_recoverable);
}

TEST(FaultRecovery, ScheduledSingleDropIsRecoveredByExactlyOneTimeout) {
  fault::FaultConfig f;
  f.scheduled.push_back({.nth = 1, .kind = fault::FaultKind::kDrop});
  f.timeout_cycles = 256;
  Machine m(faulted_config(4, f));
  apps::BitonicSortApp app(m, apps::BitonicParams{.n = 4 * 64, .threads = 2});
  app.setup();
  m.run();
  EXPECT_TRUE(app.verify());
  const MachineReport r = m.report();
  EXPECT_EQ(r.fault.injected_total(), 1u);
  EXPECT_EQ(r.fault.injected_recoverable, 1u);
  EXPECT_EQ(r.fault.recovered, 1u);
  EXPECT_EQ(r.fault.timeouts, 1u);
  // Every fabric class is sequenced now, so the first tracked packet may
  // be a read or a message; exactly one retransmit of either flavour.
  EXPECT_EQ(r.fault.retries + r.fault.msg_retransmits, 1u);
  EXPECT_EQ(r.fault.reads_recovered + r.fault.msgs_recovered, 1u);
}

TEST(FaultRecovery, DuplicatesAreSuppressedNotExecutedTwice) {
  fault::FaultConfig f;
  f.duplicate_rate = 0.05;
  Machine m(faulted_config(8, f));
  apps::BitonicSortApp app(m, apps::BitonicParams{.n = 8 * 256, .threads = 4});
  app.setup();
  m.run();
  EXPECT_TRUE(app.verify());
  const MachineReport r = m.report();
  // Duplicated requests produce duplicate replies; every one must be
  // culled at acceptance, and duplication alone never needs a retry.
  EXPECT_GT(r.fault.dup_replies_suppressed, 0u);
  EXPECT_EQ(r.fault.injected_recoverable, 0u);
}

TEST(FaultRecovery, JitterAloneCausesNoRetries) {
  fault::FaultConfig f;
  f.jitter_max_cycles = 32;  // well under the 4096-cycle timeout
  Machine m(faulted_config(8, f));
  apps::BitonicSortApp app(m, apps::BitonicParams{.n = 8 * 256, .threads = 4});
  app.setup();
  m.run();
  EXPECT_TRUE(app.verify());
  const MachineReport r = m.report();
  EXPECT_EQ(r.fault.retries, 0u);
  EXPECT_EQ(r.fault.dup_replies_suppressed, 0u);
  EXPECT_GT(r.fault.injected[static_cast<std::size_t>(fault::FaultKind::kDelay)],
            0u);
}

TEST(FaultRecovery, StallWindowDelaysButLosesNothing) {
  fault::FaultConfig f;
  f.stalls.push_back({.src = fault::kAnyProc, .dst = 1,
                      .begin = 0, .end = 2000});
  Machine m(faulted_config(4, f));
  apps::BitonicSortApp app(m, apps::BitonicParams{.n = 4 * 64, .threads = 2});
  app.setup();
  m.run();
  EXPECT_TRUE(app.verify());
  const MachineReport r = m.report();
  EXPECT_GT(r.fault.injected[static_cast<std::size_t>(fault::FaultKind::kStall)],
            0u);
  EXPECT_EQ(r.fault.injected_recoverable, 0u);
}

struct FaultedRunSummary {
  Cycle cycles;
  std::vector<Word> result;
  std::vector<std::uint64_t> per_proc_retries;
  std::uint64_t injected_total;
  std::uint64_t recovered;
  std::uint64_t retries;
  std::uint64_t timeouts;
  std::uint64_t dup_suppressed;
  std::uint64_t corrupt_discarded;
  Cycle worst_recovery;

  bool operator==(const FaultedRunSummary&) const = default;
};

FaultedRunSummary faulted_run_once(std::uint64_t seed) {
  fault::FaultConfig f = acceptance_rates();
  f.duplicate_rate = 0.005;
  f.jitter_max_cycles = 8;
  f.seed = seed;
  Machine m(faulted_config(8, f));
  apps::BitonicSortApp app(m, apps::BitonicParams{.n = 8 * 256, .threads = 4});
  app.setup();
  m.run();
  const MachineReport r = m.report();
  FaultedRunSummary s;
  s.cycles = m.end_cycle();
  s.result = app.gather();
  for (const auto& p : r.procs) s.per_proc_retries.push_back(p.read_retries);
  s.injected_total = r.fault.injected_total();
  s.recovered = r.fault.recovered;
  s.retries = r.fault.retries;
  s.timeouts = r.fault.timeouts;
  s.dup_suppressed = r.fault.dup_replies_suppressed;
  s.corrupt_discarded = r.fault.corrupt_discarded;
  s.worst_recovery = r.fault.worst_recovery_cycles;
  return s;
}

TEST(FaultDeterminism, SameSeedGivesByteIdenticalReports) {
  // The headline regression guard: a faulted run is exactly as
  // reproducible as a clean one — down to every fault counter.
  const FaultedRunSummary a = faulted_run_once(0xFAB17);
  const FaultedRunSummary b = faulted_run_once(0xFAB17);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.injected_total, 0u);  // the run actually exercised faults
}

TEST(FaultDeterminism, DifferentSeedsPerturbTheFaultStream) {
  const FaultedRunSummary a = faulted_run_once(1);
  const FaultedRunSummary b = faulted_run_once(2);
  EXPECT_NE(a, b);  // different fault placement -> different trajectory
}

TEST(FaultFree, ZeroRatesMeanZeroProtocolActivity) {
  // With the subsystem disabled the machine must not even construct it:
  // no sequence numbers, no timers, no retries — and cycle counts
  // identical to a config that never mentioned faults.
  MachineConfig plain;
  plain.proc_count = 8;
  MachineConfig with_zeros = plain;
  with_zeros.fault = fault::FaultConfig{};  // all rates zero
  struct Outcome {
    bool fault_enabled;
    Cycle cycles;
    std::uint64_t retries;
    std::uint64_t injected;
  };
  auto run = [](const MachineConfig& cfg) {
    Machine m(cfg);
    apps::BitonicSortApp app(m, apps::BitonicParams{.n = 8 * 256, .threads = 4});
    app.setup();
    m.run();
    const MachineReport r = m.report();
    return Outcome{m.fault_enabled(), m.end_cycle(), r.fault.retries,
                   r.fault.injected_total()};
  };
  const Outcome a = run(plain);
  const Outcome b = run(with_zeros);
  EXPECT_FALSE(a.fault_enabled);
  EXPECT_FALSE(b.fault_enabled);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.retries, 0u);
  EXPECT_EQ(a.injected, 0u);
}

}  // namespace
}  // namespace emx
