// FaultPlan unit tests: checksums, the deterministic decision stream,
// scheduled faults, stall windows, and config validation.
#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace emx::fault {
namespace {

net::Packet tracked_packet(ProcId src, ProcId dst, std::uint32_t seq = 1) {
  net::Packet p;
  p.kind = net::PacketKind::kRemoteReadReq;
  p.src = src;
  p.dst = dst;
  p.addr = 0x1234;
  p.data = 0x5678;
  p.req_seq = seq;
  return p;
}

TEST(PacketChecksum, NonZeroAndDeterministic) {
  const net::Packet p = tracked_packet(0, 1);
  const auto c1 = packet_checksum(p);
  const auto c2 = packet_checksum(p);
  EXPECT_NE(c1, 0u);
  EXPECT_EQ(c1, c2);
}

TEST(PacketChecksum, IgnoresTheChecksumFieldItself) {
  net::Packet p = tracked_packet(0, 1);
  const auto clean = packet_checksum(p);
  p.checksum = clean;  // stamping must not change the sum
  EXPECT_EQ(packet_checksum(p), clean);
}

TEST(PacketChecksum, CatchesEverySingleBitFlipOfTheData) {
  net::Packet p = tracked_packet(0, 1);
  p.checksum = packet_checksum(p);
  for (std::uint32_t bit = 0; bit < 32; ++bit) {
    net::Packet corrupted = p;
    corrupted.data ^= Word{1} << bit;
    EXPECT_NE(packet_checksum(corrupted), corrupted.checksum) << "bit " << bit;
  }
}

TEST(PacketChecksum, CoversRoutingAndContinuationFields) {
  const net::Packet base = tracked_packet(0, 1);
  const auto c0 = packet_checksum(base);
  net::Packet p = base;
  p.addr ^= 1;
  EXPECT_NE(packet_checksum(p), c0);
  p = base;
  p.dst = 5;
  EXPECT_NE(packet_checksum(p), c0);
  p = base;
  p.cont_tag ^= 1;
  EXPECT_NE(packet_checksum(p), c0);
  p = base;
  p.req_seq ^= 1;
  EXPECT_NE(packet_checksum(p), c0);
}

TEST(FaultPlan, IsTrackedKindCoversEveryFabricPacketClass) {
  using net::PacketKind;
  EXPECT_TRUE(is_tracked_kind(PacketKind::kRemoteReadReq));
  EXPECT_TRUE(is_tracked_kind(PacketKind::kBlockReadReq));
  EXPECT_TRUE(is_tracked_kind(PacketKind::kRemoteReadReply));
  EXPECT_TRUE(is_tracked_kind(PacketKind::kBlockReadReply));
  EXPECT_TRUE(is_tracked_kind(PacketKind::kRemoteWrite));
  EXPECT_TRUE(is_tracked_kind(PacketKind::kInvoke));
  EXPECT_TRUE(is_tracked_kind(PacketKind::kAck));
  // kLocalWake never crosses the fabric (scheduler-internal), so the
  // plan has nothing to perturb.
  EXPECT_FALSE(is_tracked_kind(PacketKind::kLocalWake));
}

TEST(FaultPlan, AllRatesZeroMeansNoFaults) {
  FaultConfig cfg;
  FaultPlan plan(cfg);
  for (int i = 0; i < 200; ++i) {
    const FaultDecision d = plan.decide(tracked_packet(0, 1), 100);
    EXPECT_FALSE(d.any());
  }
}

TEST(FaultPlan, DecisionStreamIsSeedDeterministic) {
  FaultConfig cfg;
  cfg.drop_rate = 0.2;
  cfg.duplicate_rate = 0.1;
  cfg.corrupt_rate = 0.1;
  cfg.jitter_max_cycles = 16;
  auto run = [&cfg] {
    FaultPlan plan(cfg);
    std::vector<std::uint64_t> fingerprint;
    for (int i = 0; i < 500; ++i) {
      const FaultDecision d = plan.decide(tracked_packet(0, 1), 100);
      fingerprint.push_back((d.drop ? 1u : 0u) | (d.duplicate ? 2u : 0u) |
                            (d.corrupt ? 4u : 0u) |
                            (static_cast<std::uint64_t>(d.jitter) << 8) |
                            (static_cast<std::uint64_t>(d.corrupt_bit) << 32));
    }
    return fingerprint;
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultPlan, DropRateOneDropsEveryTrackedPacket) {
  FaultConfig cfg;
  cfg.drop_rate = 1.0;
  FaultPlan plan(cfg);
  for (int i = 0; i < 50; ++i)
    EXPECT_TRUE(plan.decide(tracked_packet(0, 1), 0).drop);
}

TEST(FaultPlan, MessagesAreFairGameNowThatTheyAreSequenced) {
  // Remote writes and invocations used to be spared (no recovery path);
  // the reliable channel gives them seq/ACK/retransmit, so the plan may
  // perturb every fabric class.
  FaultConfig cfg;
  cfg.drop_rate = 1.0;
  FaultPlan plan(cfg);
  for (auto kind : {net::PacketKind::kRemoteWrite, net::PacketKind::kInvoke}) {
    net::Packet p = tracked_packet(0, 1);
    p.kind = kind;
    for (int i = 0; i < 10; ++i) EXPECT_TRUE(plan.decide(p, 0).drop);
  }
}

TEST(FaultPlan, ScheduledFaultHitsExactlyTheNthTrackedPacket) {
  FaultConfig cfg;
  cfg.scheduled.push_back({.nth = 3, .kind = FaultKind::kDrop});
  cfg.scheduled.push_back({.nth = 5, .kind = FaultKind::kCorrupt});
  FaultPlan plan(cfg);
  std::vector<bool> dropped, corrupted;
  for (int i = 0; i < 8; ++i) {
    const FaultDecision d = plan.decide(tracked_packet(0, 1), 0);
    dropped.push_back(d.drop);
    corrupted.push_back(d.corrupt);
  }
  EXPECT_EQ(dropped, (std::vector<bool>{false, false, true, false, false,
                                        false, false, false}));
  EXPECT_EQ(corrupted, (std::vector<bool>{false, false, false, false, true,
                                          false, false, false}));
}

TEST(FaultPlan, UntrackedPacketsDoNotAdvanceTheScheduleCounter) {
  FaultConfig cfg;
  cfg.scheduled.push_back({.nth = 2, .kind = FaultKind::kDrop});
  FaultPlan plan(cfg);
  net::Packet wake = tracked_packet(0, 1);
  wake.kind = net::PacketKind::kLocalWake;
  EXPECT_FALSE(plan.decide(wake, 0).drop);
  EXPECT_FALSE(plan.decide(wake, 0).drop);  // local wakes don't count
  EXPECT_FALSE(plan.decide(tracked_packet(0, 1), 0).drop);  // tracked #1
  EXPECT_TRUE(plan.decide(tracked_packet(0, 1), 0).drop);   // tracked #2
  EXPECT_EQ(plan.tracked_seen(), 2u);
}

TEST(FaultPlan, KindFilteredScheduleCountsOnlyThatKind) {
  // "Drop the first fabric invoke" — the filtered schedule counts per
  // packet kind, so interleaved reads/writes must not consume the slot.
  FaultConfig cfg;
  cfg.scheduled.push_back({.nth = 1,
                           .kind = FaultKind::kDrop,
                           .filtered = true,
                           .only = net::PacketKind::kInvoke});
  FaultPlan plan(cfg);
  net::Packet invoke = tracked_packet(0, 1);
  invoke.kind = net::PacketKind::kInvoke;
  EXPECT_FALSE(plan.decide(tracked_packet(0, 1), 0).drop);  // read, spared
  net::Packet write = tracked_packet(0, 1);
  write.kind = net::PacketKind::kRemoteWrite;
  EXPECT_FALSE(plan.decide(write, 0).drop);  // write, spared
  EXPECT_TRUE(plan.decide(invoke, 0).drop);  // first invoke, hit
  EXPECT_FALSE(plan.decide(invoke, 0).drop);  // second invoke, spared
}

TEST(FaultPlan, JitterIsBoundedAndAppliesToAnyFabricPacket) {
  FaultConfig cfg;
  cfg.jitter_max_cycles = 8;
  FaultPlan plan(cfg);
  bool saw_nonzero = false;
  for (int i = 0; i < 300; ++i) {
    net::Packet p = tracked_packet(0, 1);
    if (i % 2 == 0) p.kind = net::PacketKind::kRemoteWrite;
    const FaultDecision d = plan.decide(p, 0);
    EXPECT_LE(d.jitter, 8u);
    saw_nonzero |= d.jitter > 0;
  }
  EXPECT_TRUE(saw_nonzero);
}

TEST(FaultPlan, StallWindowHoldsMatchingPacketsUntilWindowEnd) {
  FaultConfig cfg;
  cfg.stalls.push_back({.src = 2, .dst = 3, .begin = 100, .end = 150});
  FaultPlan plan(cfg);
  EXPECT_EQ(plan.decide(tracked_packet(2, 3), 120).stall_until, 150u);
  EXPECT_EQ(plan.decide(tracked_packet(2, 3), 99).stall_until, 0u);
  EXPECT_EQ(plan.decide(tracked_packet(2, 3), 150).stall_until, 0u);
  EXPECT_EQ(plan.decide(tracked_packet(1, 3), 120).stall_until, 0u);
}

TEST(FaultPlan, StallWindowWildcardMatchesAnyEndpoint) {
  FaultConfig cfg;
  cfg.stalls.push_back({.src = kAnyProc, .dst = 7, .begin = 0, .end = 50});
  FaultPlan plan(cfg);
  EXPECT_EQ(plan.decide(tracked_packet(0, 7), 10).stall_until, 50u);
  EXPECT_EQ(plan.decide(tracked_packet(5, 7), 10).stall_until, 50u);
  EXPECT_EQ(plan.decide(tracked_packet(0, 6), 10).stall_until, 0u);
}

TEST(FaultPlan, ToStringCoversEveryKind) {
  EXPECT_STREQ(to_string(FaultKind::kDrop), "DROP");
  EXPECT_STREQ(to_string(FaultKind::kDuplicate), "DUPLICATE");
  EXPECT_STREQ(to_string(FaultKind::kCorrupt), "CORRUPT");
  EXPECT_STREQ(to_string(FaultKind::kDelay), "DELAY");
  EXPECT_STREQ(to_string(FaultKind::kStall), "STALL");
  EXPECT_STREQ(to_string(FaultKind::kPeOutage), "PE_OUTAGE");
}

TEST(FaultConfigValidate, RejectsOutOfRangeRates) {
  FaultConfig cfg;
  cfg.drop_rate = 1.5;
  EXPECT_DEATH(cfg.validate(), "out of \\[0,1\\]");
  cfg.drop_rate = 0.6;
  cfg.corrupt_rate = 0.6;
  EXPECT_DEATH(cfg.validate(), "sum");
}

TEST(FaultConfigValidate, RejectsDegenerateProtocolKnobs) {
  FaultConfig cfg;
  cfg.timeout_cycles = 0;
  EXPECT_DEATH(cfg.validate(), "timeout");
  cfg = FaultConfig{};
  cfg.max_retries = 0;
  EXPECT_DEATH(cfg.validate(), "retransmit");
  cfg = FaultConfig{};
  cfg.stalls.push_back({.src = 0, .dst = 1, .begin = 50, .end = 10});
  EXPECT_DEATH(cfg.validate(), "stall window");
  cfg = FaultConfig{};
  cfg.outages.push_back({.pe = 0, .begin = 100, .end = 100});
  EXPECT_DEATH(cfg.validate(), "outage window");
}

TEST(FaultConfig, EnabledOnlyWhenThePlanCanActuallyActs) {
  FaultConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  cfg.drop_rate = 0.01;
  EXPECT_TRUE(cfg.enabled());
  cfg = FaultConfig{};
  cfg.jitter_max_cycles = 4;
  EXPECT_TRUE(cfg.enabled());
  cfg = FaultConfig{};
  cfg.scheduled.push_back({.nth = 1, .kind = FaultKind::kDrop});
  EXPECT_TRUE(cfg.enabled());
  cfg = FaultConfig{};
  cfg.outages.push_back({.pe = 0, .begin = 100, .end = 200});
  EXPECT_TRUE(cfg.enabled());
}

}  // namespace
}  // namespace emx::fault
