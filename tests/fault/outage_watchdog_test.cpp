// End-to-end tests for the two headline robustness features: transient
// fail-stop PE outages (peers' retransmits repair everything the dead
// window swallowed) and the progress watchdog (an unrecoverable hang
// becomes a bounded, diagnosed run instead of an endless poll loop).
// Plus the cross-cutting guarantees that ride on them: the write fence,
// checker transparency under faults, and a seeded fault-mode sweep.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/bitonic.hpp"
#include "apps/fft.hpp"
#include "core/machine.hpp"

namespace emx {
namespace {

MachineConfig faulted_config(std::uint32_t procs, const fault::FaultConfig& f) {
  MachineConfig cfg;
  cfg.proc_count = procs;
  cfg.fault = f;
  return cfg;
}

// ------------------------------------------------------------- outages

TEST(PeOutage, SortSurvivesATransientFailStopWindow) {
  // PE 2 goes dark for 10k cycles in the thick of the run: its NIC drops
  // everything in and out, its IBU flushes, dispatch freezes. When the
  // window closes, retransmit timers on both sides repair the damage and
  // the sort still verifies with every recoverable fault recovered.
  fault::FaultConfig f;
  f.outages.push_back({.pe = 2, .begin = 20000, .end = 30000});
  Machine m(faulted_config(8, f));
  apps::BitonicSortApp app(m, apps::BitonicParams{.n = 8 * 256, .threads = 4});
  app.setup();
  m.run();
  EXPECT_TRUE(app.verify());
  const MachineReport r = m.report();
  ASSERT_TRUE(r.fault_enabled);
  EXPECT_GT(
      r.fault.injected[static_cast<std::size_t>(fault::FaultKind::kPeOutage)],
      0u);
  EXPECT_EQ(r.fault.recovered, r.fault.injected_recoverable);
  EXPECT_FALSE(r.watchdog_fired);
}

TEST(PeOutage, OutageOnTopOfALossyFabricStillRecovers) {
  // The combined acceptance plan: drops, duplicates and an outage in one
  // run — exactly-once semantics must hold for every packet class.
  fault::FaultConfig f;
  f.drop_rate = 0.01;
  f.duplicate_rate = 0.005;
  f.outages.push_back({.pe = 1, .begin = 15000, .end = 22000});
  MachineConfig cfg = faulted_config(8, f);
  cfg.watchdog_cycles = 2'000'000;  // armed, must NOT fire on a recoverable run
  Machine m(cfg);
  apps::BitonicSortApp app(m, apps::BitonicParams{.n = 8 * 256, .threads = 4});
  app.setup();
  m.run();
  EXPECT_TRUE(app.verify());
  const MachineReport r = m.report();
  EXPECT_EQ(r.fault.recovered, r.fault.injected_recoverable);
  EXPECT_FALSE(r.watchdog_fired);
}

TEST(PeOutage, FftWithBlockReadsSurvivesAnOutage) {
  fault::FaultConfig f;
  f.drop_rate = 0.005;
  f.outages.push_back({.pe = 3, .begin = 10000, .end = 18000});
  Machine m(faulted_config(8, f));
  apps::FftApp app(m, apps::FftParams{.n = 8 * 512, .threads = 4,
                                      .include_local_phase = true});
  app.setup();
  m.run();
  EXPECT_LT(app.verify_error(), 1e-5);
  const MachineReport r = m.report();
  EXPECT_EQ(r.fault.recovered, r.fault.injected_recoverable);
}

// --------------------------------------------------------- write fence

TEST(WriteFence, BlockReadResumesAreHeldBehindTheirWordWrites) {
  // Under a lossy plan some word-writes need repair; their block's resume
  // must wait for the ACKs (a thread waking to a buffer with holes was
  // the bug this fence exists to prevent). The hold count proves the
  // fence actually engaged on this run.
  fault::FaultConfig f;
  f.drop_rate = 0.01;
  f.corrupt_rate = 0.005;
  Machine m(faulted_config(8, f));
  apps::BitonicSortApp app(
      m, apps::BitonicParams{.n = 8 * 256, .threads = 4,
                             .use_block_reads = true});
  app.setup();
  m.run();
  EXPECT_TRUE(app.verify());
  const MachineReport r = m.report();
  EXPECT_GT(r.fault.fence_holds, 0u);
  EXPECT_EQ(r.fault.recovered, r.fault.injected_recoverable);
}

TEST(WriteFence, Em4BlockReadsRecoverToo) {
  // The EXU-thread service path dedups block-read requests at IBU
  // dispatch rather than NIC accept; the zombie-stream suppression and
  // the fence must hold there as well.
  fault::FaultConfig f;
  f.drop_rate = 0.01;
  MachineConfig cfg = faulted_config(8, f);
  cfg.read_service = ReadServiceMode::kExuThread;
  Machine m(cfg);
  apps::BitonicSortApp app(
      m, apps::BitonicParams{.n = 8 * 256, .threads = 4,
                             .use_block_reads = true});
  app.setup();
  m.run();
  EXPECT_TRUE(app.verify());
  const MachineReport r = m.report();
  EXPECT_EQ(r.fault.recovered, r.fault.injected_recoverable);
}

// ------------------------------------------------------------ watchdog

fault::FaultConfig unrecoverable_plan() {
  // Reliability off + the first barrier-join invoke silently dropped:
  // one PE's join never reaches PE0, the barrier never releases, and
  // every thread polls its sense flag forever. Nothing will ever
  // retransmit — the canonical non-quiescent stall.
  fault::FaultConfig f;
  f.reliability = false;
  f.scheduled.push_back({.nth = 1,
                         .kind = fault::FaultKind::kDrop,
                         .filtered = true,
                         .only = net::PacketKind::kInvoke});
  return f;
}

TEST(Watchdog, ConvertsAnUnrecoverableHangIntoABoundedDiagnosedRun) {
  MachineConfig cfg = faulted_config(4, unrecoverable_plan());
  cfg.watchdog_cycles = 50'000;
  Machine m(cfg);
  apps::BitonicSortApp app(m, apps::BitonicParams{.n = 4 * 64, .threads = 2});
  app.setup();
  m.run();  // must return (no panic, no endless poll loop)
  EXPECT_TRUE(m.watchdog_fired());
  // Bounded: detection happens one watchdog window after progress stops,
  // not after max_events.
  EXPECT_LT(m.end_cycle(), 500'000u);
  const MachineReport r = m.report();
  EXPECT_TRUE(r.watchdog_fired);
  EXPECT_NE(r.watchdog_diagnosis.find("no forward progress"),
            std::string::npos);
  EXPECT_NE(r.watchdog_diagnosis.find("unsequenced"), std::string::npos)
      << "diagnosis should point at the unrecoverable (seq-0) loss:\n"
      << r.watchdog_diagnosis;
  EXPECT_GT(r.fault.unsequenced_losses, 0u);
  // The summary line surfaces the stall for tools that only print text.
  EXPECT_NE(r.summary_text().find("WATCHDOG"), std::string::npos);
}

TEST(Watchdog, DiagnosisIsDeterministic) {
  auto diagnose = [] {
    MachineConfig cfg = faulted_config(4, unrecoverable_plan());
    cfg.watchdog_cycles = 50'000;
    Machine m(cfg);
    apps::BitonicSortApp app(m, apps::BitonicParams{.n = 4 * 64, .threads = 2});
    app.setup();
    m.run();
    return std::make_pair(m.end_cycle(), m.report().watchdog_diagnosis);
  };
  const auto a = diagnose();
  const auto b = diagnose();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Watchdog, CatchesAQuiescentDeadlockToo) {
  // A dropped read reply with reliability off leaves the lone reader
  // suspended with *nothing* in the event queue — no barrier polls, no
  // timers. The machine drains instead of spinning, and an armed
  // watchdog must convert that into the same bounded diagnosed stop,
  // not a "drained with live threads" panic.
  fault::FaultConfig f;
  f.reliability = false;
  f.scheduled.push_back({.nth = 1,
                         .kind = fault::FaultKind::kDrop,
                         .filtered = true,
                         .only = net::PacketKind::kRemoteReadReply});
  MachineConfig cfg = faulted_config(2, f);
  cfg.watchdog_cycles = 50'000;
  Machine m(cfg);
  const auto entry =
      m.register_entry([](rt::ThreadApi api, Word) -> rt::ThreadBody {
        const Word v =
            co_await api.remote_read(rt::GlobalAddr{1, rt::kReservedWords});
        api.local_write(rt::kReservedWords, v);  // never reached
      });
  m.spawn(0, entry, 0);
  m.run();
  EXPECT_TRUE(m.watchdog_fired());
  const MachineReport r = m.report();
  EXPECT_NE(r.watchdog_diagnosis.find("quiesced"), std::string::npos)
      << r.watchdog_diagnosis;
  EXPECT_NE(r.watchdog_diagnosis.find("unsequenced"), std::string::npos);
}

TEST(Watchdog, StaysSilentOnACleanRun) {
  MachineConfig cfg;
  cfg.proc_count = 4;
  cfg.watchdog_cycles = 100'000;
  Machine m(cfg);
  apps::BitonicSortApp app(m, apps::BitonicParams{.n = 4 * 64, .threads = 2});
  app.setup();
  m.run();
  EXPECT_TRUE(app.verify());
  EXPECT_FALSE(m.watchdog_fired());
}

// ------------------------------- checkers under faults (transparency)

TEST(CheckedFaults, CheckersSeeNoFalsePositivesAndChangeNoCycles) {
  // --check=all is a pure observer: arming every checker on a faulted
  // run must produce byte-identical cycle counts and zero findings —
  // duplicates are suppressed before side effects, so the shadow state
  // sees each logical event exactly once.
  fault::FaultConfig f;
  f.drop_rate = 0.01;
  f.duplicate_rate = 0.005;
  f.corrupt_rate = 0.005;
  auto run = [&](bool checked) {
    MachineConfig cfg = faulted_config(8, f);
    if (checked) {
      cfg.check.memcheck = true;
      cfg.check.race = true;
      cfg.check.deadlock = true;
      cfg.check.lint = true;
    }
    Machine m(cfg);
    apps::BitonicSortApp app(m,
                             apps::BitonicParams{.n = 8 * 256, .threads = 4});
    app.setup();
    m.run();
    EXPECT_TRUE(app.verify());
    return std::make_pair(m.end_cycle(), m.report());
  };
  const auto [plain_cycles, plain_report] = run(false);
  const auto [checked_cycles, checked_report] = run(true);
  EXPECT_EQ(plain_cycles, checked_cycles);
  ASSERT_TRUE(checked_report.check_enabled);
  EXPECT_TRUE(checked_report.check.clean())
      << checked_report.check.summary_text();
  EXPECT_GT(checked_report.check.accesses_raced, 0u);  // it actually looked
  EXPECT_EQ(checked_report.fault.recovered, plain_report.fault.recovered);
}

TEST(CheckedFaults, FftUnderFaultsIsCheckerClean) {
  fault::FaultConfig f;
  f.drop_rate = 0.01;
  MachineConfig cfg = faulted_config(8, f);
  cfg.check.memcheck = true;
  cfg.check.race = true;
  cfg.check.deadlock = true;
  cfg.check.lint = true;
  Machine m(cfg);
  apps::FftApp app(m, apps::FftParams{.n = 8 * 512, .threads = 4,
                                      .include_local_phase = true});
  app.setup();
  m.run();
  EXPECT_LT(app.verify_error(), 1e-5);
  const MachineReport r = m.report();
  EXPECT_TRUE(r.check.clean()) << r.check.summary_text();
}

// ----------------------------------------------------- seeded sweep

TEST(FaultSweep, EveryModeRecoversAcrossSeeds) {
  // A miniature of the CI fault-sweep job: each fault mode across
  // several seeds on a small sort; every run must verify and balance
  // its ledger. (CI runs the 32-seed version via emx_run.)
  struct Mode {
    const char* name;
    fault::FaultConfig f;
  };
  std::vector<Mode> modes(4);
  modes[0].name = "drop";
  modes[0].f.drop_rate = 0.02;
  modes[1].name = "dup";
  modes[1].f.duplicate_rate = 0.02;
  modes[2].name = "corrupt";
  modes[2].f.corrupt_rate = 0.01;
  modes[3].name = "outage";
  modes[3].f.drop_rate = 0.005;
  modes[3].f.outages.push_back({.pe = 1, .begin = 8000, .end = 14000});
  for (const Mode& mode : modes) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      fault::FaultConfig f = mode.f;
      f.seed = seed;
      Machine m(faulted_config(8, f));
      apps::BitonicSortApp app(m,
                               apps::BitonicParams{.n = 8 * 128, .threads = 2});
      app.setup();
      m.run();
      EXPECT_TRUE(app.verify()) << mode.name << " seed=" << seed;
      const MachineReport r = m.report();
      EXPECT_EQ(r.fault.recovered, r.fault.injected_recoverable)
          << mode.name << " seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace emx
