// Multithreaded bitonic sorting must actually sort — across processor
// counts, data sizes and thread counts (parameterized sweep).
#include <gtest/gtest.h>

#include "apps/bitonic.hpp"
#include "apps/verify.hpp"
#include "core/machine.hpp"

namespace emx::apps {
namespace {

struct Case {
  std::uint32_t procs;
  std::uint64_t n;
  std::uint32_t threads;
  NetworkModel net;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  return "P" + std::to_string(c.procs) + "_n" + std::to_string(c.n) + "_h" +
         std::to_string(c.threads) +
         (c.net == NetworkModel::kDetailed ? "_detailed" : "_fast");
}

class BitonicSweep : public testing::TestWithParam<Case> {};

TEST_P(BitonicSweep, SortsCorrectly) {
  const Case& c = GetParam();
  MachineConfig cfg;
  cfg.proc_count = c.procs;
  cfg.network = c.net;
  Machine machine(cfg);
  BitonicSortApp app(machine, BitonicParams{.n = c.n, .threads = c.threads});
  app.setup();
  machine.run();
  EXPECT_TRUE(app.verify())
      << "sort failed for P=" << c.procs << " n=" << c.n << " h=" << c.threads;
}

std::vector<Case> sweep_cases() {
  std::vector<Case> cases;
  for (std::uint32_t procs : {1u, 2u, 4u, 8u, 16u}) {
    for (std::uint64_t per_proc : {1ull, 2ull, 16ull, 64ull}) {
      for (std::uint32_t threads : {1u, 2u, 3u, 4u, 8u}) {
        cases.push_back(Case{procs, procs * per_proc, threads,
                             NetworkModel::kFast});
      }
    }
  }
  // A few detailed-network runs (slower, exact contention).
  cases.push_back(Case{4, 4 * 32, 2, NetworkModel::kDetailed});
  cases.push_back(Case{8, 8 * 64, 4, NetworkModel::kDetailed});
  cases.push_back(Case{16, 16 * 16, 3, NetworkModel::kDetailed});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitonicSweep, testing::ValuesIn(sweep_cases()),
                         case_name);

TEST(BitonicSort, LargerRunStaysSorted) {
  MachineConfig cfg;
  cfg.proc_count = 16;
  Machine machine(cfg);
  BitonicSortApp app(machine, BitonicParams{.n = 16 * 1024, .threads = 4});
  app.setup();
  machine.run();
  EXPECT_TRUE(app.verify());
  // All data read: n/P reads per PE per merge step, fixed (paper Fig. 9).
  const auto report = machine.report();
  const std::uint64_t steps = 4 * (4 + 1) / 2;  // log P = 4
  for (const auto& p : report.procs) {
    EXPECT_EQ(p.reads_issued, steps * 1024);
  }
}

TEST(BitonicSort, DuplicateValuesSortCorrectly) {
  MachineConfig cfg;
  cfg.proc_count = 8;
  Machine machine(cfg);
  BitonicSortApp app(machine, BitonicParams{.n = 8 * 32, .threads = 2});
  app.setup();
  // Overwrite the input with heavy duplicates.
  for (ProcId p = 0; p < 8; ++p) {
    for (std::uint64_t k = 0; k < 32; ++k) {
      machine.memory(p).write(app.buf_addr(0, k), static_cast<Word>((k * 7 + p) % 5));
    }
  }
  machine.run();
  const auto result = app.gather();
  EXPECT_TRUE(is_sorted_ascending(result));
}

TEST(BitonicSort, RejectsNonPowerOfTwoProcs) {
  MachineConfig cfg;
  cfg.proc_count = 6;
  cfg.network = NetworkModel::kFast;
  Machine machine(cfg);
  EXPECT_DEATH(
      { BitonicSortApp app(machine, BitonicParams{.n = 60, .threads = 1}); },
      "power-of-two");
}

}  // namespace
}  // namespace emx::apps
