#include "apps/jacobi.hpp"

#include <gtest/gtest.h>

#include "core/machine.hpp"

namespace emx::apps {
namespace {

struct Case {
  std::uint32_t procs;
  std::uint64_t n;
  std::uint32_t threads;
  std::uint32_t iterations;
};

class JacobiSweep : public testing::TestWithParam<Case> {};

TEST_P(JacobiSweep, MatchesHostSweeps) {
  const Case& c = GetParam();
  MachineConfig cfg;
  cfg.proc_count = c.procs;
  Machine m(cfg);
  JacobiApp app(m, JacobiParams{.n = c.n,
                                .threads = c.threads,
                                .iterations = c.iterations});
  app.setup();
  m.run();
  EXPECT_LT(app.verify_error(), 1e-6)
      << "P=" << c.procs << " n=" << c.n << " h=" << c.threads
      << " iters=" << c.iterations;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JacobiSweep,
    testing::Values(Case{1, 16, 1, 5}, Case{2, 16, 1, 8}, Case{2, 64, 2, 8},
                    Case{4, 64, 3, 10}, Case{8, 256, 4, 12},
                    Case{8, 64, 8, 6}, Case{16, 512, 2, 20},
                    Case{5, 40, 2, 7} /* non-power-of-two P, fast net */),
    [](const auto& info) {
      return "P" + std::to_string(info.param.procs) + "_n" +
             std::to_string(info.param.n) + "_h" +
             std::to_string(info.param.threads) + "_it" +
             std::to_string(info.param.iterations);
    });

TEST(Jacobi, ConvergesTowardLinearProfile) {
  // With fixed endpoints, Jacobi sweeps approach the linear interpolant.
  MachineConfig cfg;
  cfg.proc_count = 4;
  Machine m(cfg);
  JacobiApp app(m, JacobiParams{.n = 32, .threads = 2, .iterations = 4000});
  app.setup();
  // Fixed endpoints 0 and 1, noisy interior.
  m.memory(0).write_f32(app.cell_addr(0, 0), 0.0f);
  m.memory(3).write_f32(app.cell_addr(0, 7), 1.0f);
  m.run();
  const auto grid = app.gather();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double expect = static_cast<double>(i) / (grid.size() - 1);
    EXPECT_NEAR(grid[i], expect, 0.02) << "cell " << i;
  }
}

TEST(Jacobi, CommunicationIsTinyRelativeToComputation) {
  // The third point on the paper's computation-to-communication axis:
  // two halo words per PE per sweep — negligible next to m cells of
  // relaxation. Even h=1 shows a compute-dominated profile.
  MachineConfig cfg;
  cfg.proc_count = 8;
  Machine m(cfg);
  JacobiApp app(m, JacobiParams{.n = 8 * 2048, .threads = 1, .iterations = 4});
  app.setup();
  m.run();
  const auto report = m.report();
  const auto shares = report.shares();
  EXPECT_GT(shares.compute, 80.0);
  EXPECT_LT(shares.comm, 15.0);
  // Exactly one halo fetch (paired where possible) per PE per iteration.
  for (ProcId p = 0; p < 8; ++p) {
    const auto& pr = report.procs[p];
    const std::uint64_t halo_words = (p == 0 || p == 7) ? 1 : 2;
    EXPECT_EQ(pr.reads_issued, halo_words * 4) << "PE " << p;
  }
}

TEST(Jacobi, HaloPairUsesOneSuspensionPerSweep) {
  MachineConfig cfg;
  cfg.proc_count = 4;
  Machine m(cfg);
  JacobiApp app(m, JacobiParams{.n = 4 * 64, .threads = 1, .iterations = 6});
  app.setup();
  m.run();
  const auto report = m.report();
  // Interior PEs: both halos under one suspension (two-operand matching).
  EXPECT_EQ(report.procs[1].switches.remote_read, 6u);
  EXPECT_EQ(report.procs[1].reads_issued, 12u);
  // Boundary PEs: a single halo, still one suspension.
  EXPECT_EQ(report.procs[0].switches.remote_read, 6u);
  EXPECT_EQ(report.procs[0].reads_issued, 6u);
}

}  // namespace
}  // namespace emx::apps
