// Reproduces the paper's Figure 5: multithreaded FFT iteration 0 with
// P=4, n=16, h=2. "PO remote reads four elements 8...11" — i.e. P0's mate
// in iteration 0 is P2 (distance P/2), and every one of its four points
// needs the mate's copy; threads compute the moment their data returns,
// with no thread synchronisation.
#include <gtest/gtest.h>

#include "apps/fft.hpp"
#include "core/machine.hpp"
#include "runtime/global_addr.hpp"
#include "trace/trace.hpp"

namespace emx::apps {
namespace {

class FftFig5 : public testing::Test {
 protected:
  void run() {
    MachineConfig cfg;
    cfg.proc_count = 4;
    cfg.network = NetworkModel::kDetailed;
    machine_ = std::make_unique<Machine>(cfg, &sink_);
    app_ = std::make_unique<FftApp>(
        *machine_, FftParams{.n = 16, .threads = 2, .include_local_phase = true});
    app_->setup();
    machine_->run();
  }

  trace::VectorTraceSink sink_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<FftApp> app_;
};

TEST_F(FftFig5, IterationZeroReadsFromTheMateAtDistanceHalfP) {
  run();
  // First 8 read issues from P0 (4 points x re+im) must all target P2;
  // the next 8 (iteration 1) target P1.
  std::vector<ProcId> targets;
  for (const auto& e : sink_.events()) {
    if (e.proc == 0 && e.type == trace::EventType::kReadIssue) {
      targets.push_back(rt::unpack(static_cast<Word>(e.info)).proc);
    }
  }
  ASSERT_EQ(targets.size(), 16u);  // log P = 2 iterations x 4 points x 2
  for (int i = 0; i < 8; ++i) EXPECT_EQ(targets[i], 2u) << "issue " << i;
  for (int i = 8; i < 16; ++i) EXPECT_EQ(targets[i], 1u) << "issue " << i;
}

TEST_F(FftFig5, EveryProcessorReadsItsMatesWholeBlock) {
  run();
  // P0 reads global elements 8..11 in iteration 0: local indices 0..3 of
  // P2's block, both planes.
  std::vector<LocalAddr> addrs;
  for (const auto& e : sink_.events()) {
    if (e.proc == 0 && e.type == trace::EventType::kReadIssue) {
      const auto ga = rt::unpack(static_cast<Word>(e.info));
      if (ga.proc == 2) addrs.push_back(ga.addr);
    }
  }
  ASSERT_EQ(addrs.size(), 8u);
  for (std::uint64_t k = 0; k < 4; ++k) {
    EXPECT_EQ(std::count(addrs.begin(), addrs.end(), app_->re_addr(0, k)), 1);
    EXPECT_EQ(std::count(addrs.begin(), addrs.end(), app_->im_addr(0, k)), 1);
  }
}

TEST_F(FftFig5, ThreadsNeverSuspendOnGates) {
  run();
  for (const auto& e : sink_.events()) {
    EXPECT_NE(e.type, trace::EventType::kSuspendGate);
    EXPECT_NE(e.type, trace::EventType::kGateWake);
  }
}

TEST_F(FftFig5, TransformIsCorrect) {
  run();
  EXPECT_LT(app_->verify_error(), 1e-5);
}

}  // namespace
}  // namespace emx::apps
