// The block-read sorting variant: identical results, one suspension per
// thread chunk instead of one per element, and faster overall.
#include <gtest/gtest.h>

#include "apps/bitonic.hpp"
#include "apps/distribution.hpp"
#include "core/machine.hpp"

namespace emx::apps {
namespace {

struct Outcome {
  std::vector<Word> result;
  Cycle cycles;
  std::uint64_t read_switches;
};

Outcome run_variant(bool block_reads, std::uint32_t procs, std::uint64_t n,
                    std::uint32_t h) {
  MachineConfig cfg;
  cfg.proc_count = procs;
  Machine m(cfg);
  BitonicSortApp app(m, BitonicParams{.n = n,
                                      .threads = h,
                                      .use_block_reads = block_reads});
  app.setup();
  m.run();
  EXPECT_TRUE(app.verify());
  std::uint64_t switches = 0;
  for (const auto& p : m.report().procs) switches += p.switches.remote_read;
  return {app.gather(), m.end_cycle(), switches};
}

class BlockReadSort
    : public testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(BlockReadSort, SameResultFewerSwitchesFaster) {
  const auto [procs, h] = GetParam();
  const std::uint64_t n = procs * 128ull;
  const Outcome element = run_variant(false, procs, n, h);
  const Outcome block = run_variant(true, procs, n, h);
  EXPECT_EQ(element.result, block.result);
  // Element-wise: reads/PE/step suspensions; block: h suspensions/PE/step.
  const std::uint64_t steps = bitonic_merge_steps(procs);
  EXPECT_EQ(element.read_switches, procs * steps * (n / procs));
  EXPECT_EQ(block.read_switches,
            static_cast<std::uint64_t>(procs) * steps * std::min<std::uint64_t>(h, n / procs));
  EXPECT_LT(block.cycles, element.cycles)
      << "block reads must beat element-wise reads";
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BlockReadSort,
    testing::Values(std::make_tuple(2u, 1u), std::make_tuple(4u, 2u),
                    std::make_tuple(8u, 3u), std::make_tuple(8u, 8u)),
    [](const auto& info) {
      return "P" + std::to_string(std::get<0>(info.param)) + "_h" +
             std::to_string(std::get<1>(info.param));
    });

TEST(BlockReadSort, WorksWithMoreThreadsThanElements) {
  // Empty chunks issue no block read but still gate and join barriers.
  const Outcome block = run_variant(true, 4, 4 * 2, 8);
  EXPECT_EQ(block.result.size(), 8u);
}

}  // namespace
}  // namespace emx::apps
