// Reproduces the paper's Figure 4: multithreaded bitonic sorting of 8
// elements on two processors with two threads each. Processor X holds
// (2,5,6,7), Y holds (1,3,4,8); each thread handles two elements.
//
// Asserted properties from the walkthrough:
//  * thread communication parallelism: thread 1 issues its first read
//    while thread 0's reads are still outstanding;
//  * computation is ordered: thread 0 completes its merge before thread 1
//    merges (thread synchronisation);
//  * the pair sorts ascending: X=(1,2,3,4), Y=(5,6,7,8).
#include <gtest/gtest.h>

#include "apps/bitonic.hpp"
#include "core/machine.hpp"
#include "trace/trace.hpp"

namespace emx::apps {
namespace {

class BitonicFig4 : public testing::Test {
 protected:
  void run() {
    MachineConfig cfg;
    cfg.proc_count = 2;
    cfg.network = NetworkModel::kDetailed;
    machine_ = std::make_unique<Machine>(cfg, &sink_);
    app_ = std::make_unique<BitonicSortApp>(
        *machine_, BitonicParams{.n = 8, .threads = 2});
    app_->setup();
    const Word x[4] = {2, 5, 6, 7};
    const Word y[4] = {1, 3, 4, 8};
    for (int k = 0; k < 4; ++k) {
      machine_->memory(0).write(app_->buf_addr(0, k), x[k]);
      machine_->memory(1).write(app_->buf_addr(0, k), y[k]);
    }
    machine_->run();
  }

  std::vector<Word> block(ProcId p) {
    std::vector<Word> out(4);
    for (int k = 0; k < 4; ++k)
      out[k] = machine_->memory(p).read(app_->buf_addr(1, k));
    return out;
  }

  trace::VectorTraceSink sink_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<BitonicSortApp> app_;
};

TEST_F(BitonicFig4, SortsTheEightElements) {
  run();
  EXPECT_EQ(block(0), (std::vector<Word>{1, 2, 3, 4}));
  EXPECT_EQ(block(1), (std::vector<Word>{5, 6, 7, 8}));
}

TEST_F(BitonicFig4, ThreadsReadTwoElementsEach) {
  run();
  // Each PE issues n/P = 4 reads, two per thread (RR0..RR3 in the figure).
  const auto report = machine_->report();
  for (const auto& p : report.procs) EXPECT_EQ(p.reads_issued, 4u);
}

TEST_F(BitonicFig4, CommunicationOverlapsAcrossThreads) {
  run();
  // On P0: thread 1's first read request goes out before thread 0's last
  // reply has returned — reads proceed in parallel across threads.
  std::vector<trace::TraceEvent> issues;
  std::vector<trace::TraceEvent> returns;
  for (const auto& e : sink_.events()) {
    if (e.proc != 0) continue;
    if (e.type == trace::EventType::kReadIssue) issues.push_back(e);
    if (e.type == trace::EventType::kReadReturn) returns.push_back(e);
  }
  ASSERT_EQ(issues.size(), 4u);
  ASSERT_EQ(returns.size(), 4u);
  const ThreadId t0 = issues.front().thread;
  Cycle t1_first_issue = kNeverCycle;
  Cycle t0_last_return = 0;
  for (const auto& e : issues)
    if (e.thread != t0) t1_first_issue = std::min(t1_first_issue, e.cycle);
  for (const auto& e : returns)
    if (e.thread == t0) t0_last_return = std::max(t0_last_return, e.cycle);
  ASSERT_NE(t1_first_issue, kNeverCycle);
  EXPECT_LT(t1_first_issue, t0_last_return)
      << "thread 1 should communicate while thread 0's reads are pending";
}

TEST_F(BitonicFig4, MergeComputationIsOrderedAcrossThreads) {
  run();
  // Thread 1 suspends on the order gate at least once on some PE, or
  // passes only after thread 0 advanced — computation lacks parallelism
  // (paper §3.1). With two threads the gate admits index 0 first; check
  // via the gate-wake/suspend events that ordering was enforced when
  // thread 1 arrived early.
  bool saw_gate_interaction = false;
  for (const auto& e : sink_.events()) {
    if (e.type == trace::EventType::kSuspendGate ||
        e.type == trace::EventType::kGateWake) {
      saw_gate_interaction = true;
    }
  }
  // Communication finishes in issue order here, so thread 1 (whose reads
  // complete last) may or may not block; the invariant that MUST hold is
  // the sorted result (checked above) plus non-zero thread-sync switches
  // whenever a suspension happened.
  const auto report = machine_->report();
  std::uint64_t gate_switches = 0;
  for (const auto& p : report.procs) gate_switches += p.switches.thread_sync;
  if (saw_gate_interaction) {
    EXPECT_GT(gate_switches, 0u);
  } else {
    EXPECT_EQ(gate_switches, 0u);
  }
}

}  // namespace
}  // namespace emx::apps
