// The multithreaded FFT must compute the actual transform. With the local
// phase included, the gathered (bit-reversed-order) output must match the
// host DIF reference to float rounding, across P, n and h.
#include <gtest/gtest.h>

#include "apps/fft.hpp"
#include "apps/host_reference.hpp"
#include "apps/verify.hpp"
#include "core/machine.hpp"

namespace emx::apps {
namespace {

struct Case {
  std::uint32_t procs;
  std::uint64_t n;
  std::uint32_t threads;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  return "P" + std::to_string(info.param.procs) + "_n" +
         std::to_string(info.param.n) + "_h" + std::to_string(info.param.threads);
}

class FftSweep : public testing::TestWithParam<Case> {};

TEST_P(FftSweep, MatchesHostReference) {
  const Case& c = GetParam();
  MachineConfig cfg;
  cfg.proc_count = c.procs;
  Machine machine(cfg);
  FftApp app(machine, FftParams{.n = c.n,
                                .threads = c.threads,
                                .include_local_phase = true});
  app.setup();
  machine.run();
  EXPECT_LT(app.verify_error(), 1e-5)
      << "FFT mismatch for P=" << c.procs << " n=" << c.n
      << " h=" << c.threads;
}

std::vector<Case> sweep_cases() {
  std::vector<Case> cases;
  for (std::uint32_t procs : {1u, 2u, 4u, 8u}) {
    for (std::uint64_t n_mult : {1ull, 4ull, 16ull}) {
      for (std::uint32_t threads : {1u, 2u, 3u, 4u}) {
        cases.push_back(Case{procs, procs * n_mult, threads});
      }
    }
  }
  cases.push_back(Case{16, 16 * 64, 5});
  cases.push_back(Case{16, 1024, 8});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FftSweep, testing::ValuesIn(sweep_cases()),
                         case_name);

TEST(Fft, CommOnlyPhaseMatchesPartialReference) {
  // Without the local phase, the gathered data equals the reference after
  // exactly log P DIF iterations.
  constexpr std::uint32_t P = 8;
  constexpr std::uint64_t n = 8 * 16;
  MachineConfig cfg;
  cfg.proc_count = P;
  Machine machine(cfg);
  FftApp app(machine, FftParams{.n = n, .threads = 2});
  app.setup();
  machine.run();

  std::vector<std::complex<float>> expect = app.input();
  for (std::uint64_t size = n; size >= n / 4; size /= 2) {  // 3 = log P iters
    const std::uint64_t half = size / 2;
    for (std::uint64_t start = 0; start < n; start += size) {
      for (std::uint64_t k = 0; k < half; ++k) {
        const double ang = -2.0 * 3.14159265358979323846 *
                           static_cast<double>(k) / static_cast<double>(size);
        const std::complex<float> w(static_cast<float>(std::cos(ang)),
                                    static_cast<float>(std::sin(ang)));
        const auto a = expect[start + k];
        const auto b = expect[start + k + half];
        expect[start + k] = a + b;
        expect[start + k + half] = (a - b) * w;
      }
    }
  }
  EXPECT_LT(max_relative_error(app.gather(), expect), 1e-5);
}

TEST(Fft, ReadsTwoWordsPerPointPerIteration) {
  constexpr std::uint32_t P = 8;
  constexpr std::uint64_t n = 8 * 32;
  MachineConfig cfg;
  cfg.proc_count = P;
  Machine machine(cfg);
  FftApp app(machine, FftParams{.n = n, .threads = 4});
  app.setup();
  machine.run();
  const auto report = machine.report();
  for (const auto& p : report.procs) {
    EXPECT_EQ(p.reads_issued, 3u /*log P*/ * 32u /*m*/ * 2u /*re+im*/);
  }
}

TEST(Fft, NoThreadSyncSwitches) {
  // "No thread synchronization is required for FFT" (Figure 5 caption).
  MachineConfig cfg;
  cfg.proc_count = 4;
  Machine machine(cfg);
  FftApp app(machine, FftParams{.n = 4 * 64, .threads = 4});
  app.setup();
  machine.run();
  for (const auto& p : machine.report().procs) {
    EXPECT_EQ(p.switches.thread_sync, 0u);
  }
}

TEST(Fft, DcSignalTransformsToImpulse) {
  // A constant signal's DFT is an impulse at bin 0 — end-to-end sanity
  // beyond matching the reference implementation.
  constexpr std::uint64_t n = 64;
  MachineConfig cfg;
  cfg.proc_count = 4;
  Machine machine(cfg);
  FftApp app(machine, FftParams{.n = n, .threads = 2, .include_local_phase = true});
  app.setup();
  for (ProcId p = 0; p < 4; ++p) {
    for (std::uint64_t k = 0; k < n / 4; ++k) {
      machine.memory(p).write_f32(app.re_addr(0, k), 1.0f);
      machine.memory(p).write_f32(app.im_addr(0, k), 0.0f);
    }
  }
  machine.run();
  const auto out = app.gather();  // bit-reversed order; bin 0 stays at 0
  EXPECT_NEAR(out[0].real(), static_cast<float>(n), 1e-3);
  EXPECT_NEAR(out[0].imag(), 0.0f, 1e-3);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_NEAR(std::abs(out[i]), 0.0f, 1e-3) << "bin " << i;
  }
}

}  // namespace
}  // namespace emx::apps
