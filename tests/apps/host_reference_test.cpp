// The host references must themselves be right: the DIF FFT against the
// O(n^2) DFT, and the bitonic network against std::sort.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/host_reference.hpp"
#include "apps/verify.hpp"
#include "common/rng.hpp"

namespace emx::apps {
namespace {

TEST(HostFft, MatchesNaiveDftAfterBitReversal) {
  for (std::size_t n : {2u, 8u, 64u, 256u}) {
    Rng rng(n);
    std::vector<std::complex<float>> data(n);
    std::vector<std::complex<double>> exact(n);
    for (std::size_t i = 0; i < n; ++i) {
      const float re = static_cast<float>(rng.next_double() - 0.5);
      const float im = static_cast<float>(rng.next_double() - 0.5);
      data[i] = {re, im};
      exact[i] = {re, im};
    }
    const auto dft = host_dft(exact);
    host_fft_dif(data);
    bit_reverse_permute(data);  // DIF output is bit-reversed
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      worst = std::max(worst, std::abs(std::complex<double>(data[i]) - dft[i]) /
                                  std::max(1.0, std::abs(dft[i])));
    }
    EXPECT_LT(worst, 1e-4) << "n=" << n;
  }
}

TEST(HostFft, LinearityHolds) {
  constexpr std::size_t n = 128;
  Rng rng(99);
  std::vector<std::complex<float>> a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = {static_cast<float>(rng.next_double()), 0.0f};
    b[i] = {0.0f, static_cast<float>(rng.next_double())};
    sum[i] = a[i] + b[i];
  }
  host_fft_dif(a);
  host_fft_dif(b);
  host_fft_dif(sum);
  std::vector<std::complex<float>> a_plus_b(n);
  for (std::size_t i = 0; i < n; ++i) a_plus_b[i] = a[i] + b[i];
  EXPECT_LT(max_relative_error(sum, a_plus_b), 1e-4);
}

TEST(HostBitonic, SortsRandomInputs) {
  for (std::size_t n : {1u, 2u, 16u, 128u, 1024u}) {
    Rng rng(n * 31 + 1);
    std::vector<std::uint32_t> data(n);
    for (auto& v : data) v = rng.next_u32() % 1000;
    std::vector<std::uint32_t> expect = data;
    std::sort(expect.begin(), expect.end());
    if (n > 1) host_bitonic_sort(data);
    EXPECT_EQ(data, expect) << "n=" << n;
  }
}

TEST(BitReversePermute, IsAnInvolution) {
  std::vector<std::complex<float>> data(32);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = {static_cast<float>(i), 0.0f};
  auto copy = data;
  bit_reverse_permute(data);
  EXPECT_NE(data, copy);
  bit_reverse_permute(data);
  EXPECT_EQ(data, copy);
}

TEST(Verify, SortedAndMultisetHelpers) {
  EXPECT_TRUE(is_sorted_ascending({1, 2, 2, 3}));
  EXPECT_FALSE(is_sorted_ascending({1, 3, 2}));
  EXPECT_TRUE(is_sorted_ascending({}));
  EXPECT_TRUE(same_multiset({3, 1, 2}, {1, 2, 3}));
  EXPECT_FALSE(same_multiset({1, 1, 2}, {1, 2, 2}));
  EXPECT_FALSE(same_multiset({1}, {1, 1}));
}

}  // namespace
}  // namespace emx::apps
