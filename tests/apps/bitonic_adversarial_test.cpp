// Adversarial inputs for the distributed sort: already sorted, reversed,
// all-equal, organ-pipe, and single-bit keys. Correctness must not
// depend on the random workload's niceness.
#include <gtest/gtest.h>

#include "apps/bitonic.hpp"
#include "apps/verify.hpp"
#include "core/machine.hpp"

namespace emx::apps {
namespace {

enum class Pattern { kSorted, kReversed, kAllEqual, kOrganPipe, kBits };

const char* name_of(Pattern p) {
  switch (p) {
    case Pattern::kSorted: return "Sorted";
    case Pattern::kReversed: return "Reversed";
    case Pattern::kAllEqual: return "AllEqual";
    case Pattern::kOrganPipe: return "OrganPipe";
    case Pattern::kBits: return "Bits";
  }
  return "?";
}

Word value_at(Pattern p, std::uint64_t i, std::uint64_t n) {
  switch (p) {
    case Pattern::kSorted:
      return static_cast<Word>(i);
    case Pattern::kReversed:
      return static_cast<Word>(n - i);
    case Pattern::kAllEqual:
      return 7;
    case Pattern::kOrganPipe:
      return static_cast<Word>(i < n / 2 ? i : n - i);
    case Pattern::kBits:
      return static_cast<Word>((i * 2654435761u) & 1u);
  }
  return 0;
}

class AdversarialSort
    : public testing::TestWithParam<std::tuple<Pattern, std::uint32_t>> {};

TEST_P(AdversarialSort, SortsPathologicalInputs) {
  const auto [pattern, h] = GetParam();
  constexpr std::uint32_t P = 8;
  constexpr std::uint64_t n = P * 64;
  MachineConfig cfg;
  cfg.proc_count = P;
  Machine m(cfg);
  BitonicSortApp app(m, BitonicParams{.n = n, .threads = h});
  app.setup();
  std::vector<Word> input(n);
  for (std::uint64_t i = 0; i < n; ++i) input[i] = value_at(pattern, i, n);
  for (ProcId p = 0; p < P; ++p) {
    for (std::uint64_t k = 0; k < n / P; ++k) {
      m.memory(p).write(app.buf_addr(0, k), input[p * (n / P) + k]);
    }
  }
  m.run();
  const auto result = app.gather();
  EXPECT_TRUE(is_sorted_ascending(result));
  EXPECT_TRUE(same_multiset(result, input));
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, AdversarialSort,
    testing::Combine(testing::Values(Pattern::kSorted, Pattern::kReversed,
                                     Pattern::kAllEqual, Pattern::kOrganPipe,
                                     Pattern::kBits),
                     testing::Values(1u, 3u, 8u)),
    [](const auto& info) {
      return std::string(name_of(std::get<0>(info.param))) + "_h" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace emx::apps
