// Cyclic-distribution FFT: correct transform, inverted phase structure
// (communication last), same packet counts as the blocked layout.
#include <gtest/gtest.h>

#include "apps/fft.hpp"
#include "apps/fft_cyclic.hpp"
#include "core/machine.hpp"

namespace emx::apps {
namespace {

struct Case {
  std::uint32_t procs;
  std::uint64_t n;
  std::uint32_t threads;
};

class CyclicFftSweep : public testing::TestWithParam<Case> {};

TEST_P(CyclicFftSweep, MatchesHostReference) {
  const Case& c = GetParam();
  MachineConfig cfg;
  cfg.proc_count = c.procs;
  Machine m(cfg);
  CyclicFftApp app(m, CyclicFftParams{.n = c.n, .threads = c.threads});
  app.setup();
  m.run();
  EXPECT_LT(app.verify_error(), 1e-5)
      << "P=" << c.procs << " n=" << c.n << " h=" << c.threads;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CyclicFftSweep,
    testing::Values(Case{1, 8, 1}, Case{2, 8, 1}, Case{2, 64, 2},
                    Case{4, 64, 3}, Case{8, 64, 2}, Case{8, 256, 4},
                    Case{16, 256, 5}, Case{16, 1024, 8}),
    [](const auto& info) {
      return "P" + std::to_string(info.param.procs) + "_n" +
             std::to_string(info.param.n) + "_h" +
             std::to_string(info.param.threads);
    });

TEST(CyclicFft, MatchesBlockedLayoutBitForBit) {
  // Same signal through both layouts: identical transforms (same float
  // operation order per element).
  constexpr std::uint64_t n = 512;
  constexpr std::uint32_t P = 8;
  MachineConfig cfg;
  cfg.proc_count = P;

  Machine mb(cfg);
  FftApp blocked(mb, FftParams{.n = n, .threads = 2, .seed = 77,
                               .include_local_phase = true});
  blocked.setup();
  mb.run();

  Machine mc(cfg);
  CyclicFftApp cyclic(mc, CyclicFftParams{.n = n, .threads = 2, .seed = 77});
  cyclic.setup();
  mc.run();

  const auto vb = blocked.gather();
  const auto vc = cyclic.gather();
  ASSERT_EQ(vb.size(), vc.size());
  for (std::size_t i = 0; i < vb.size(); ++i) {
    EXPECT_EQ(vb[i], vc[i]) << "point " << i;
  }
}

TEST(CyclicFft, SamePacketCountAsBlocked) {
  constexpr std::uint64_t n = 8 * 128;
  MachineConfig cfg;
  cfg.proc_count = 8;

  auto reads_of = [&](auto&& app_factory) {
    Machine m(cfg);
    auto app = app_factory(m);
    app.setup();
    m.run();
    std::uint64_t reads = 0;
    for (const auto& p : m.report().procs) reads += p.reads_issued;
    return reads;
  };
  const std::uint64_t blocked_reads = reads_of([&](Machine& m) {
    return FftApp(m, FftParams{.n = n, .threads = 2,
                               .include_local_phase = true});
  });
  const std::uint64_t cyclic_reads = reads_of([&](Machine& m) {
    return CyclicFftApp(m, CyclicFftParams{.n = n, .threads = 2});
  });
  EXPECT_EQ(blocked_reads, cyclic_reads)
      << "both layouts communicate log P iterations of 2 words per point";
}

TEST(CyclicFft, NoThreadSyncSwitches) {
  MachineConfig cfg;
  cfg.proc_count = 4;
  Machine m(cfg);
  CyclicFftApp app(m, CyclicFftParams{.n = 4 * 64, .threads = 4});
  app.setup();
  m.run();
  for (const auto& p : m.report().procs) {
    EXPECT_EQ(p.switches.thread_sync, 0u);
  }
}

}  // namespace
}  // namespace emx::apps
