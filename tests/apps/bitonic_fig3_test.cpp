// Reproduces the paper's Figure 3 worked example of bitonic sorting.
//
// "Consider processors O and 1 at i=0, j=0. PO has L=(5,13,24,32) and
//  P1 has L=(6,14,23,31) ... Since PO takes a lower position than P1, it
//  takes the low half (5,6,13,14) while P1 takes the high half
//  (23,24,31,32)."
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "apps/bitonic.hpp"
#include "apps/distribution.hpp"
#include "core/machine.hpp"

namespace emx::apps {
namespace {

std::vector<Word> block_of(Machine& machine, const BitonicSortApp& app,
                           ProcId p, std::uint32_t parity, std::uint64_t m) {
  std::vector<Word> out(m);
  for (std::uint64_t k = 0; k < m; ++k)
    out[k] = machine.memory(p).read(app.buf_addr(parity, k));
  return out;
}

TEST(BitonicFig3, PairwiseMergeSplitsLowAndHighHalves) {
  // Two processors, one merge step (i=0, j=0) — exactly the PO/P1 pair of
  // Figure 3. The initial blocks are the paper's post-local-sort lists.
  MachineConfig cfg;
  cfg.proc_count = 2;
  Machine machine(cfg);
  BitonicSortApp app(machine, BitonicParams{.n = 8, .threads = 1});
  app.setup();
  const Word p0[4] = {5, 13, 24, 32};
  const Word p1[4] = {6, 14, 23, 31};
  for (int k = 0; k < 4; ++k) {
    machine.memory(0).write(app.buf_addr(0, k), p0[k]);
    machine.memory(1).write(app.buf_addr(0, k), p1[k]);
  }
  machine.run();

  // log P = 1 -> exactly one merge step; result lands in parity-1 buffers.
  EXPECT_EQ(block_of(machine, app, 0, 1, 4), (std::vector<Word>{5, 6, 13, 14}));
  EXPECT_EQ(block_of(machine, app, 1, 1, 4), (std::vector<Word>{23, 24, 31, 32}));
}

TEST(BitonicFig3, SortsThirtyTwoElementsOnEightProcessors) {
  // The figure's full configuration: n=32, P=8 -> each PE ends with four
  // consecutive values of the sorted sequence.
  MachineConfig cfg;
  cfg.proc_count = 8;
  Machine machine(cfg);
  BitonicSortApp app(machine, BitonicParams{.n = 32, .threads = 1, .seed = 7});
  app.setup();
  machine.run();
  ASSERT_TRUE(app.verify());

  std::vector<Word> expect = app.input();
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(app.gather(), expect);
}

TEST(BitonicFig3, DirectionPatternMatchesThePaper) {
  // Shaded circles (ascending pairs) in the figure: at stage i, processor
  // r merges ascending iff bit (i+1) of r is 0.
  EXPECT_TRUE(bitonic_ascending(0, 0));
  EXPECT_TRUE(bitonic_ascending(1, 0));
  EXPECT_FALSE(bitonic_ascending(2, 0));   // hollow in the figure
  EXPECT_FALSE(bitonic_ascending(3, 0));
  EXPECT_TRUE(bitonic_ascending(4, 0));
  // Final stage on 8 PEs: everyone ascending.
  for (ProcId r = 0; r < 8; ++r) EXPECT_TRUE(bitonic_ascending(r, 2));
  // Keep-low assignments for the (i=0, j=0) pairs.
  EXPECT_TRUE(bitonic_keep_low(0, 0, 0));
  EXPECT_FALSE(bitonic_keep_low(1, 0, 0));
  EXPECT_FALSE(bitonic_keep_low(2, 0, 0));  // descending pair: 2 keeps high
  EXPECT_TRUE(bitonic_keep_low(3, 0, 0));
}

TEST(BitonicFig3, MergeStepCountIsLogPTriangle) {
  EXPECT_EQ(bitonic_merge_steps(2), 1u);
  EXPECT_EQ(bitonic_merge_steps(8), 6u);
  EXPECT_EQ(bitonic_merge_steps(16), 10u);
  EXPECT_EQ(bitonic_merge_steps(64), 21u);
}

}  // namespace
}  // namespace emx::apps
