// One EM-X switch box: a 3x3 crossbar with two network input/output port
// pairs plus the processor injection/ejection port (paper §2.2).
//
// Timing model: virtual cut-through — a packet spends 1 cycle crossing a
// switch, and each output port can start a new packet only every 2 cycles
// ("each port can transfer a packet ... at every second cycle"). Packets
// competing for an output port queue in FIFO order; the queue is the
// switch's cut-through buffer and we track its peak depth.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"
#include "common/serializer.hpp"

namespace emx::net {

class SwitchBox {
 public:
  /// Port indices within a switch box.
  enum : unsigned { kNetPort0 = 0, kNetPort1 = 1, kEjectPort = 2, kPortCount = 3 };

  /// Reserves the given output port for one packet: returns the cycle at
  /// which the packet actually departs (>= `ready`), honouring the
  /// 1-packet-per-2-cycles port bandwidth.
  Cycle reserve(unsigned port, Cycle ready, Cycle port_interval);

  /// Cycles packets have spent waiting for this switch's ports.
  Cycle total_wait() const { return total_wait_; }
  std::uint64_t forwarded(unsigned port) const { return forwarded_[port]; }
  std::uint64_t total_forwarded() const {
    return forwarded_[0] + forwarded_[1] + forwarded_[2];
  }
  Cycle busy_until(unsigned port) const { return next_free_[port]; }

  /// Peak cut-through buffer depth observed on any port: how many
  /// packets were queued behind a port at once (in units of the port
  /// interval). Sizes the on-switch buffering a real fabric would need.
  std::uint64_t peak_backlog() const { return peak_backlog_; }

  void save(ser::Serializer& s) const {
    for (Cycle c : next_free_) s.u64(c);
    for (std::uint64_t f : forwarded_) s.u64(f);
    s.u64(total_wait_);
    s.u64(peak_backlog_);
  }

 private:
  std::array<Cycle, kPortCount> next_free_ = {0, 0, 0};
  std::array<std::uint64_t, kPortCount> forwarded_ = {0, 0, 0};
  Cycle total_wait_ = 0;
  std::uint64_t peak_backlog_ = 0;
};

}  // namespace emx::net
