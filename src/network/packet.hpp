// The EM-X communication packet.
//
// All EM-X communication uses 2-word fixed-size packets (paper §2.2): the
// first 32-bit word is an address (a global address or a continuation),
// the second a datum. The simulator keeps those two architectural words
// and adds routing/bookkeeping metadata that real hardware encodes inside
// them (processor number bits, packet-type tag bits).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "common/serializer.hpp"

namespace emx::net {

enum class PacketKind : std::uint8_t {
  kRemoteReadReq,    ///< addr = target global address, data = continuation
  kRemoteReadReply,  ///< addr = continuation, data = fetched value
  kRemoteWrite,      ///< addr = target global address, data = value to store
  kBlockReadReq,     ///< addr = base global address, block_len words follow
  kBlockReadReply,   ///< final word of a block read; resumes the thread
  kInvoke,           ///< thread invocation: addr = entry id, data = argument
  kLocalWake,        ///< OBU->IBU loopback continuation (gate wake, poll)
  kAck,              ///< reliability: receiver NIC acknowledges req_seq
};

const char* to_string(PacketKind kind);

/// Two-level IBU priority (paper §2.2: "two levels of priority packet
/// buffers for flexible thread scheduling").
enum class PacketPriority : std::uint8_t { kNormal = 0, kHigh = 1 };

struct Packet {
  // --- the two architectural 32-bit words ---
  Word addr = 0;
  Word data = 0;

  // --- fields real hardware packs into the words above ---
  ProcId src = 0;
  ProcId dst = 0;
  PacketKind kind = PacketKind::kRemoteWrite;
  PacketPriority priority = PacketPriority::kNormal;

  /// Continuation: which thread/tag on `src` resumes when a reply returns.
  ThreadId cont_thread = kInvalidThread;
  std::uint32_t cont_tag = 0;
  /// Operand slot for two-operand direct matching (paper §2.2: the MU
  /// loads mate data from matching memory; a thread's first instruction
  /// "operates on input tokens, which are loaded into two operand
  /// registers").
  std::uint8_t cont_slot = 0;

  /// For kBlockReadReq: number of consecutive words requested (>= 1).
  std::uint32_t block_len = 1;

  // --- reliability protocol fields (fault-injection runs only) ---
  /// Outstanding-request sequence number stamped by the sender's
  /// ReliableChannel (machine-global, 1-based). Read replies and kAck
  /// packets echo it so the sender can retire (or suppress a duplicate
  /// of) the original packet. 0 means the packet is unsequenced
  /// (reliability protocol disabled or the kind is not tracked).
  std::uint32_t req_seq = 0;
  /// Per-(src,dst,class) stream sequence for side-effecting messages
  /// (remote writes and invokes): contiguous from 1, so the receiver's
  /// dedup window can advance a floor and stay bounded. 0 = no dedup
  /// (reads/replies/acks, loopback, or reliability disabled).
  std::uint32_t chan_seq = 0;
  /// Link-level checksum stamped at network injection (fault runs only);
  /// 0 means unstamped. A mismatch at the ejection port means the payload
  /// was corrupted in flight: the packet is discarded and the requester's
  /// retransmit timer recovers the read.
  std::uint32_t checksum = 0;

  // --- analysis bookkeeping (checker runs only) ---
  /// Happens-before token for kInvoke packets: 1 + the index of the
  /// spawner's clock snapshot in the checker's token table, so the race
  /// detector can order the new thread after its spawner. 0 when no
  /// checker is armed (or the invocation is host-injected).
  std::uint32_t hb_token = 0;

  // --- simulation bookkeeping ---
  Cycle issue_cycle = 0;  ///< when the sender's OBU released it

  std::string describe() const;

  /// Serializes every field (fixed width, field order above) so any
  /// queue of in-flight packets can embed packets in its own section.
  void save(ser::Serializer& s) const;
  /// Reads fields written by save(); check d.ok() after a batch.
  void load(ser::Deserializer& d);
};

}  // namespace emx::net
