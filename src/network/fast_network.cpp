#include "network/fast_network.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace emx::net {

FastNetwork::FastNetwork(sim::SimContext& sim, std::uint32_t proc_count,
                         Cycle self_latency, Cycle port_interval)
    : sim_(sim),
      proc_count_(proc_count),
      hops_(ceil_log2(proc_count)),
      routing_(is_power_of_two(proc_count)
                   ? std::optional<ShuffleRouting>(ShuffleRouting(proc_count))
                   : std::nullopt),
      self_latency_(self_latency),
      port_interval_(port_interval),
      inject_free_(proc_count, 0),
      eject_free_(proc_count, 0),
      self_q_(proc_count),
      fabric_q_(proc_count),
      delivered_(proc_count, 0) {
  EMX_CHECK(proc_count > 0, "need at least one processor");
}

void FastNetwork::set_lanes(sim::SimContext* const* lane_by_pe,
                            const std::uint32_t* lane_index_by_pe,
                            std::uint32_t lane_count) {
  lane_by_pe_ = lane_by_pe;
  lane_index_by_pe_ = lane_index_by_pe;
  staged_.assign(lane_count, {});
}

Cycle FastNetwork::lookahead() const {
  if (proc_count_ < 2) return 2;  // no cross-PE traffic exists at all
  // Power-of-two P routes shortest-path on the de Bruijn edge set, which
  // always contains one-hop pairs; other counts use the uniform
  // hops = ceil(log2 P) for every pair.
  const unsigned min_hops = routing_ ? 1U : hops_;
  return static_cast<Cycle>(min_hops) + 1;
}

void FastNetwork::inject(const Packet& packet) {
  sim::SimContext& lane = lane_of(packet.src);
  sim::WindowLog* log = lane.window_log();
  if (log == nullptr) {
    apply_inject(packet, lane.now(), nullptr);
    return;
  }
  // Inside a parallel window: the port timelines and counters this
  // injection would touch are shared, and their mutation order decides
  // bytes — stage it for the boundary merge instead. A self-loop packet
  // never leaves the lane, so its delivery still schedules here (the
  // staged record replays only the stat updates); the staged/schedule
  // order mirrors the sequential stats-then-seq order exactly.
  const std::uint32_t lane_index = lane_index_by_pe_[packet.src];
  log->note_staged(static_cast<std::uint32_t>(staged_[lane_index].size()));
  staged_[lane_index].push_back(Staged{packet, lane.now()});
  if (packet.src == packet.dst) {
    self_q_[packet.src].push_back(packet);
    lane.schedule(self_latency_, &FastNetwork::self_deliver_event, this,
                  packet.src, 0);
  }
}

void FastNetwork::apply_inject(const Packet& packet, Cycle now,
                               sim::StagedScheduler* sched) {
  ++stats_.packets_injected;

  if (packet.src == packet.dst) {
    ++stats_.self_deliveries;
    stats_.latency.add(static_cast<double>(self_latency_));
    if (sched == nullptr) {
      self_q_[packet.src].push_back(packet);
      lane_of(packet.src).schedule(self_latency_,
                                   &FastNetwork::self_deliver_event, this,
                                   packet.src, 0);
    }
    return;
  }

  ++stats_.fabric_packets;
  const unsigned hops = hop_count(packet.src, packet.dst);
  // Injection port: one packet per port_interval cycles per source switch.
  const Cycle depart = std::max(now, inject_free_[packet.src]);
  inject_free_[packet.src] = depart + port_interval_;

  // Uncontended fabric transit: k hops in k+1 cycles (virtual cut-through).
  Cycle arrival = depart + hops + 1;

  // Ejection port at the destination also takes one packet per
  // port_interval cycles; later of fabric arrival and port availability.
  const Cycle eject_wait =
      eject_free_[packet.dst] > arrival ? eject_free_[packet.dst] - arrival : 0;
  arrival = std::max(arrival, eject_free_[packet.dst]);
  eject_free_[packet.dst] = arrival + port_interval_;

  // Same backlog metric as SwitchBox::reserve: queue depth behind a port
  // in units of its service interval, peak over both endpoint ports.
  const std::uint64_t backlog =
      std::max(depart - now, eject_wait) / port_interval_;
  stats_.peak_port_backlog = std::max(stats_.peak_port_backlog, backlog);

  stats_.contention_wait += (depart - now) + eject_wait;
  stats_.latency.add(static_cast<double>(arrival - now));

  // Ejection-port serialization just made this arrival strictly later
  // than every earlier arrival at this destination, so the per-dst queue
  // is FIFO in id order and the delivery event only needs the id.
  const std::uint64_t id = next_fabric_id_++;
  fabric_q_[packet.dst].emplace_back(id, packet);
  if (sched != nullptr)
    sched->schedule_delivery(packet.dst, arrival,
                             &FastNetwork::fabric_deliver_event, this, id,
                             packet.dst);
  else
    lane_of(packet.dst).schedule_at(arrival, &FastNetwork::fabric_deliver_event,
                                    this, id, packet.dst);
}

void FastNetwork::resolve_staged(std::uint32_t lane, std::uint32_t index,
                                 sim::StagedScheduler& sched) {
  EMX_DCHECK(lane < staged_.size() && index < staged_[lane].size(),
             "staged injection index out of range");
  const Staged& st = staged_[lane][index];
  apply_inject(st.packet, st.inject_time, &sched);
}

void FastNetwork::clear_staged() {
  for (auto& lane : staged_) lane.clear();
}

const NetworkStats& FastNetwork::stats() const {
  folded_ = stats_;
  for (const std::uint64_t d : delivered_) folded_.packets_delivered += d;
  return folded_;
}

void FastNetwork::save_state(ser::Serializer& s) const {
  stats().save(s);
  for (Cycle c : inject_free_) s.u64(c);
  for (Cycle c : eject_free_) s.u64(c);
  s.u64(next_fabric_id_);
  for (const auto& q : self_q_) {
    s.u32(static_cast<std::uint32_t>(q.size()));
    for (const Packet& p : q) p.save(s);
  }
  for (const auto& q : fabric_q_) {
    s.u32(static_cast<std::uint32_t>(q.size()));
    for (const auto& [id, p] : q) {
      s.u64(id);
      p.save(s);
    }
  }
}

void FastNetwork::self_deliver_event(void* ctx, std::uint64_t src64,
                                     std::uint64_t) {
  auto* self = static_cast<FastNetwork*>(ctx);
  const auto src = static_cast<ProcId>(src64);
  auto& q = self->self_q_[src];
  EMX_DCHECK(!q.empty(), "self delivery without a queued packet");
  const Packet packet = q.front();
  q.pop_front();
  ++self->delivered_[packet.dst];
  self->dispatch_delivery(packet);
}

void FastNetwork::fabric_deliver_event(void* ctx, std::uint64_t id,
                                       std::uint64_t dst64) {
  auto* self = static_cast<FastNetwork*>(ctx);
  const auto dst = static_cast<ProcId>(dst64);
  auto& q = self->fabric_q_[dst];
  EMX_DCHECK(!q.empty() && q.front().first == id,
             "fabric delivery out of id order");
  const Packet packet = q.front().second;
  q.pop_front();
  ++self->delivered_[dst];
  self->dispatch_delivery(packet);
}

}  // namespace emx::net
