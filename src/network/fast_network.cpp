#include "network/fast_network.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace emx::net {

namespace {
constexpr std::uint32_t kNoFree = std::numeric_limits<std::uint32_t>::max();
}

FastNetwork::FastNetwork(sim::SimContext& sim, std::uint32_t proc_count,
                         Cycle self_latency, Cycle port_interval)
    : sim_(sim),
      proc_count_(proc_count),
      hops_(ceil_log2(proc_count)),
      routing_(is_power_of_two(proc_count)
                   ? std::optional<ShuffleRouting>(ShuffleRouting(proc_count))
                   : std::nullopt),
      self_latency_(self_latency),
      port_interval_(port_interval),
      inject_free_(proc_count, 0),
      eject_free_(proc_count, 0),
      free_head_(kNoFree) {
  EMX_CHECK(proc_count > 0, "need at least one processor");
}

std::uint32_t FastNetwork::alloc(const Packet& packet) {
  std::uint32_t idx;
  if (free_head_ != kNoFree) {
    idx = free_head_;
    free_head_ = pool_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  pool_[idx].packet = packet;
  pool_[idx].in_use = true;
  return idx;
}

void FastNetwork::inject(const Packet& packet) {
  ++stats_.packets_injected;
  const Cycle now = sim_.now();
  const std::uint32_t idx = alloc(packet);

  if (packet.src == packet.dst) {
    ++stats_.self_deliveries;
    stats_.latency.add(static_cast<double>(self_latency_));
    sim_.schedule(self_latency_, &FastNetwork::deliver_event, this, idx, 0);
    return;
  }

  ++stats_.fabric_packets;
  const unsigned hops = hop_count(packet.src, packet.dst);
  // Injection port: one packet per port_interval cycles per source switch.
  const Cycle depart = std::max(now, inject_free_[packet.src]);
  inject_free_[packet.src] = depart + port_interval_;

  // Uncontended fabric transit: k hops in k+1 cycles (virtual cut-through).
  Cycle arrival = depart + hops + 1;

  // Ejection port at the destination also takes one packet per
  // port_interval cycles; later of fabric arrival and port availability.
  const Cycle eject_wait =
      eject_free_[packet.dst] > arrival ? eject_free_[packet.dst] - arrival : 0;
  arrival = std::max(arrival, eject_free_[packet.dst]);
  eject_free_[packet.dst] = arrival + port_interval_;

  // Same backlog metric as SwitchBox::reserve: queue depth behind a port
  // in units of its service interval, peak over both endpoint ports.
  const std::uint64_t backlog =
      std::max(depart - now, eject_wait) / port_interval_;
  stats_.peak_port_backlog = std::max(stats_.peak_port_backlog, backlog);

  stats_.contention_wait += (depart - now) + eject_wait;
  stats_.latency.add(static_cast<double>(arrival - now));
  sim_.schedule_at(arrival, &FastNetwork::deliver_event, this, idx, 0);
}

void FastNetwork::deliver_event(void* ctx, std::uint64_t idx64, std::uint64_t) {
  auto* self = static_cast<FastNetwork*>(ctx);
  auto idx = static_cast<std::uint32_t>(idx64);
  Pending& rec = self->pool_[idx];
  EMX_DCHECK(rec.in_use, "delivery of freed packet record");
  const Packet packet = rec.packet;
  rec.in_use = false;
  rec.next_free = self->free_head_;
  self->free_head_ = idx;
  self->deliver(packet);
}

}  // namespace emx::net
