#include "network/routing.hpp"

#include "common/assert.hpp"

namespace emx::net {

ShuffleRouting::ShuffleRouting(std::uint32_t proc_count)
    : proc_count_(proc_count),
      mask_(proc_count - 1),
      bits_(ilog2(proc_count)) {
  EMX_CHECK(is_power_of_two(proc_count),
            "detailed Omega network requires a power-of-two processor count");
}

unsigned ShuffleRouting::overlap(ProcId src, ProcId dst) const {
  EMX_DCHECK(src < proc_count_ && dst < proc_count_, "proc id out of range");
  for (unsigned o = bits_; o > 0; --o) {
    const std::uint32_t low = src & ((std::uint32_t{1} << o) - 1);
    const std::uint32_t high = dst >> (bits_ - o);
    if (low == high) return o;
  }
  return 0;
}

unsigned ShuffleRouting::hop_count(ProcId src, ProcId dst) const {
  return bits_ - overlap(src, dst);
}

ProcId ShuffleRouting::node_at_hop(ProcId src, ProcId dst, unsigned hop) const {
  const unsigned o = overlap(src, dst);
  const unsigned hops = bits_ - o;
  EMX_DCHECK(hop <= hops, "hop beyond route length");
  // Shift-register semantics: after h hops the node id is the low
  // (bits-h) bits of src followed by the next h destination bits.
  const std::uint32_t kept = (src << hop) & mask_;
  const std::uint32_t injected = dst >> (bits_ - o - hop);
  return (kept | injected) & mask_;
}

unsigned ShuffleRouting::output_port(ProcId src, ProcId dst, unsigned hop) const {
  const unsigned o = overlap(src, dst);
  EMX_DCHECK(hop < bits_ - o, "output port past final hop");
  return (dst >> (bits_ - o - 1 - hop)) & 1u;
}

std::vector<ProcId> ShuffleRouting::route(ProcId src, ProcId dst) const {
  std::vector<ProcId> path;
  const unsigned hops = hop_count(src, dst);
  path.reserve(hops + 1);
  for (unsigned h = 0; h <= hops; ++h) path.push_back(node_at_hop(src, dst, h));
  return path;
}

}  // namespace emx::net
