// Abstract interface shared by the detailed and fast network models.
//
// A Network owns packet transit: the Machine injects a packet at the
// current simulation time and the network invokes the delivery handler at
// the (contention-adjusted) arrival cycle. Both implementations enforce
// the message non-overtaking rule per (src, dst) pair.
#pragma once

#include <cstdint>
#include <string>

#include "common/component.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "network/packet.hpp"
#include "sim/sim_context.hpp"

namespace emx::net {

struct NetworkStats {
  std::uint64_t packets_injected = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t self_deliveries = 0;   ///< OBU->IBU loopback, no fabric
  std::uint64_t fabric_packets = 0;    ///< packets that crossed switches
  Cycle contention_wait = 0;           ///< cycles spent queued at ports
  /// Deepest queue observed behind any single port (packets): the
  /// cut-through buffering a physical fabric would need to avoid
  /// backpressure at this load.
  std::uint64_t peak_port_backlog = 0;
  RunningStat latency;                 ///< injection->delivery, cycles

  void save(ser::Serializer& s) const {
    s.u64(packets_injected);
    s.u64(packets_delivered);
    s.u64(self_deliveries);
    s.u64(fabric_packets);
    s.u64(contention_wait);
    s.u64(peak_port_backlog);
    latency.save(s);
  }
};

/// Called when a packet reaches its destination switch's ejection port;
/// sim.now() equals the arrival cycle during the call.
using DeliveryFn = void (*)(void* ctx, const Packet& packet);

/// One delivery-table slot: the handler for packets addressed to one PE.
/// Devirtualizes the hot path — the network calls the destination's
/// handler directly instead of funnelling every packet through a single
/// machine-wide dispatch callback.
struct DeliveryEndpoint {
  DeliveryFn fn = nullptr;
  void* ctx = nullptr;
};

/// The network is the "network" component: its snapshot section is the
/// model's counters, port timelines and in-flight packets (decorators
/// prepend theirs; the Machine registers the outermost network only).
class Network : public Component {
 public:
  /// Single-callback delivery: every ejected packet goes through one
  /// handler. Used by decorators to interpose on the wrapped fabric.
  void set_delivery(DeliveryFn fn, void* ctx) {
    deliver_fn_ = fn;
    deliver_ctx_ = ctx;
  }

  /// Per-destination delivery: packet.dst indexes `table` (size `count`).
  /// Takes precedence over set_delivery(); the table must outlive the
  /// network. Set by the Machine on the outermost network.
  void set_delivery_table(const DeliveryEndpoint* table, std::uint32_t count) {
    table_ = table;
    table_count_ = count;
  }

  /// Hands a packet to the network at sim.now(). The packet is copied.
  virtual void inject(const Packet& packet) = 0;

  /// Uncontended switch-to-switch hop count for this topology.
  virtual unsigned hop_count(ProcId src, ProcId dst) const = 0;

  virtual std::string name() const = 0;

  /// Virtual so decorators (fault::FaultyNetwork) can expose the wrapped
  /// fabric's counters instead of their own.
  virtual const NetworkStats& stats() const { return stats_; }

  /// Serializes the model's full dynamic state: counters, port timelines,
  /// and every in-flight packet. Decorators prepend their own state and
  /// forward to the wrapped fabric.
  void save_state(ser::Serializer& s) const override { stats_.save(s); }

  const char* component_name() const override { return "network"; }

 protected:
  void deliver(const Packet& packet) {
    ++stats_.packets_delivered;
    dispatch_delivery(packet);
  }

  /// Handler dispatch without the shared delivered counter. Models that
  /// account deliveries per destination (shard-safe under the parallel
  /// engine: each lane owns its PEs' counters exclusively) call this and
  /// fold the cells into stats() themselves.
  void dispatch_delivery(const Packet& packet) {
    if (table_ != nullptr) {
      EMX_DCHECK(packet.dst < table_count_, "packet to unknown PE");
      const DeliveryEndpoint& e = table_[packet.dst];
      e.fn(e.ctx, packet);
      return;
    }
    EMX_CHECK(deliver_fn_ != nullptr, "network delivery handler unset");
    deliver_fn_(deliver_ctx_, packet);
  }

  NetworkStats stats_;

 private:
  const DeliveryEndpoint* table_ = nullptr;
  std::uint32_t table_count_ = 0;
  DeliveryFn deliver_fn_ = nullptr;
  void* deliver_ctx_ = nullptr;
};

}  // namespace emx::net
