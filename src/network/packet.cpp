#include "network/packet.hpp"

#include <cstdio>

namespace emx::net {

const char* to_string(PacketKind kind) {
  switch (kind) {
    case PacketKind::kRemoteReadReq:
      return "READ_REQ";
    case PacketKind::kRemoteReadReply:
      return "READ_REPLY";
    case PacketKind::kRemoteWrite:
      return "WRITE";
    case PacketKind::kBlockReadReq:
      return "BLOCK_READ_REQ";
    case PacketKind::kBlockReadReply:
      return "BLOCK_READ_REPLY";
    case PacketKind::kInvoke:
      return "INVOKE";
    case PacketKind::kLocalWake:
      return "LOCAL_WAKE";
    case PacketKind::kAck:
      return "ACK";
  }
  return "?";
}

std::string Packet::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%s %u->%u addr=0x%08x data=0x%08x thr=%u tag=%u seq=%u",
                to_string(kind), src, dst, addr, data, cont_thread, cont_tag,
                req_seq);
  return buf;
}

}  // namespace emx::net
