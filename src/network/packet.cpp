#include "network/packet.hpp"

#include <cstdio>

namespace emx::net {

const char* to_string(PacketKind kind) {
  switch (kind) {
    case PacketKind::kRemoteReadReq:
      return "READ_REQ";
    case PacketKind::kRemoteReadReply:
      return "READ_REPLY";
    case PacketKind::kRemoteWrite:
      return "WRITE";
    case PacketKind::kBlockReadReq:
      return "BLOCK_READ_REQ";
    case PacketKind::kBlockReadReply:
      return "BLOCK_READ_REPLY";
    case PacketKind::kInvoke:
      return "INVOKE";
    case PacketKind::kLocalWake:
      return "LOCAL_WAKE";
    case PacketKind::kAck:
      return "ACK";
  }
  return "?";
}

std::string Packet::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%s %u->%u addr=0x%08x data=0x%08x thr=%u tag=%u seq=%u",
                to_string(kind), src, dst, addr, data, cont_thread, cont_tag,
                req_seq);
  return buf;
}

void Packet::save(ser::Serializer& s) const {
  s.u32(addr);
  s.u32(data);
  s.u32(src);
  s.u32(dst);
  s.u8(static_cast<std::uint8_t>(kind));
  s.u8(static_cast<std::uint8_t>(priority));
  s.u32(cont_thread);
  s.u32(cont_tag);
  s.u8(cont_slot);
  s.u32(block_len);
  s.u32(req_seq);
  s.u32(chan_seq);
  s.u32(checksum);
  s.u32(hb_token);
  s.u64(issue_cycle);
}

void Packet::load(ser::Deserializer& d) {
  addr = d.u32();
  data = d.u32();
  src = d.u32();
  dst = d.u32();
  kind = static_cast<PacketKind>(d.u8());
  priority = static_cast<PacketPriority>(d.u8());
  cont_thread = d.u32();
  cont_tag = d.u32();
  cont_slot = d.u8();
  block_len = d.u32();
  req_seq = d.u32();
  chan_seq = d.u32();
  checksum = d.u32();
  hb_token = d.u32();
  issue_cycle = d.u64();
}

}  // namespace emx::net
