#include "network/omega_network.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace emx::net {

namespace {
constexpr std::uint32_t kNoFree = std::numeric_limits<std::uint32_t>::max();
}

OmegaNetwork::OmegaNetwork(sim::SimContext& sim, std::uint32_t proc_count,
                           Cycle self_latency, Cycle port_interval)
    : sim_(sim),
      routing_(proc_count),
      switches_(proc_count),
      free_head_(kNoFree),
      self_latency_(self_latency),
      port_interval_(port_interval) {}

std::uint32_t OmegaNetwork::alloc_transit(const Packet& packet) {
  std::uint32_t idx;
  if (free_head_ != kNoFree) {
    idx = free_head_;
    free_head_ = transits_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(transits_.size());
    transits_.emplace_back();
  }
  Transit& t = transits_[idx];
  t.packet = packet;
  t.hop = 0;
  t.injected_at = sim_.now();
  t.in_use = true;
  return idx;
}

void OmegaNetwork::free_transit(std::uint32_t idx) {
  Transit& t = transits_[idx];
  EMX_DCHECK(t.in_use, "double free of transit record");
  t.in_use = false;
  t.next_free = free_head_;
  free_head_ = idx;
}

void OmegaNetwork::inject(const Packet& packet) {
  ++stats_.packets_injected;
  const std::uint32_t idx = alloc_transit(packet);
  if (packet.src == packet.dst) {
    // OBU -> IBU loopback: spawning threads on oneself never crosses the
    // fabric (paper §2.3 allows spawning "on processors including itself").
    sim_.schedule(self_latency_, &OmegaNetwork::self_deliver_event, this, idx, 0);
    return;
  }
  ++stats_.fabric_packets;
  sim_.schedule(0, &OmegaNetwork::hop_event, this, idx, 0);
}

void OmegaNetwork::hop_event(void* ctx, std::uint64_t transit_idx, std::uint64_t) {
  static_cast<OmegaNetwork*>(ctx)->step(static_cast<std::uint32_t>(transit_idx));
}

void OmegaNetwork::step(std::uint32_t transit_idx) {
  Transit& t = transits_[transit_idx];
  const Packet& p = t.packet;
  const unsigned hops = routing_.hop_count(p.src, p.dst);
  const ProcId node = routing_.node_at_hop(p.src, p.dst, t.hop);
  SwitchBox& sw = switches_[node];
  if (t.hop == hops) {
    // Final switch: leave through the processor ejection port.
    const Cycle depart = sw.reserve(SwitchBox::kEjectPort, sim_.now(), port_interval_);
    stats_.contention_wait += depart - sim_.now();
    stats_.peak_port_backlog =
        std::max(stats_.peak_port_backlog, sw.peak_backlog());
    sim_.schedule_at(depart + 1, &OmegaNetwork::deliver_event, this, transit_idx, 0);
    return;
  }
  const unsigned port = routing_.output_port(p.src, p.dst, t.hop);
  const Cycle depart = sw.reserve(port, sim_.now(), port_interval_);
  stats_.contention_wait += depart - sim_.now();
  stats_.peak_port_backlog =
      std::max(stats_.peak_port_backlog, sw.peak_backlog());
  ++t.hop;
  // One cycle of wire+crossbar per hop: virtual cut-through.
  sim_.schedule_at(depart + 1, &OmegaNetwork::hop_event, this, transit_idx, 0);
}

void OmegaNetwork::deliver_event(void* ctx, std::uint64_t transit_idx, std::uint64_t) {
  auto* self = static_cast<OmegaNetwork*>(ctx);
  auto idx = static_cast<std::uint32_t>(transit_idx);
  Transit& t = self->transits_[idx];
  self->stats_.latency.add(static_cast<double>(self->sim_.now() - t.injected_at));
  const Packet packet = t.packet;
  self->free_transit(idx);
  self->deliver(packet);
}

void OmegaNetwork::self_deliver_event(void* ctx, std::uint64_t transit_idx,
                                      std::uint64_t) {
  auto* self = static_cast<OmegaNetwork*>(ctx);
  auto idx = static_cast<std::uint32_t>(transit_idx);
  Transit& t = self->transits_[idx];
  ++self->stats_.self_deliveries;
  self->stats_.latency.add(static_cast<double>(self->sim_.now() - t.injected_at));
  const Packet packet = t.packet;
  self->free_transit(idx);
  self->deliver(packet);
}

Cycle OmegaNetwork::total_port_wait() const {
  Cycle total = 0;
  for (const auto& sw : switches_) total += sw.total_wait();
  return total;
}

std::uint64_t OmegaNetwork::peak_port_backlog() const {
  std::uint64_t peak = 0;
  for (const auto& sw : switches_) {
    peak = std::max(peak, sw.peak_backlog());
  }
  return peak;
}

}  // namespace emx::net
