// Destination-tag routing over the circular Omega network.
//
// The EM-X connects P switch boxes (one per processor) in a circular Omega
// arrangement: the multistage Omega network folded onto a single column of
// switches whose outputs feed back via the perfect shuffle. That folding
// is exactly the binary de Bruijn graph: switch i has network out-edges to
// (2i) mod P and (2i + 1) mod P. A packet from s to d takes log2(P) hops;
// at hop j the low bit shifted in is bit (log2 P - 1 - j) of d
// (destination-tag routing). Virtual cut-through gives k+1 cycles for a
// k-hop route when uncontended (paper §2.2).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace emx::net {

/// Routing helper for a power-of-two processor count. Uses shortest-path
/// destination-tag routing: if the low `o` bits of src already equal the
/// high `o` bits of dst (the shift-register overlap), only bits - o
/// shuffle hops are needed. This realises the paper's "k hops" with
/// distance-dependent k and avoids degenerate self-loop hops.
class ShuffleRouting {
 public:
  explicit ShuffleRouting(std::uint32_t proc_count);

  std::uint32_t proc_count() const { return proc_count_; }
  unsigned bits() const { return bits_; }

  /// Longest o such that the low o bits of src equal the high o bits of
  /// dst (o == bits for src == dst).
  unsigned overlap(ProcId src, ProcId dst) const;

  /// Number of switch-to-switch hops from src to dst: bits - overlap
  /// (zero for self-sends, which never enter the network fabric).
  unsigned hop_count(ProcId src, ProcId dst) const;

  /// The switch a packet sits at after `hop` hops of its route (hop 0 is
  /// the source's own switch box).
  ProcId node_at_hop(ProcId src, ProcId dst, unsigned hop) const;

  /// Which network output port (0 or 1) the packet takes when leaving the
  /// switch it reaches after `hop` hops: the next destination bit that
  /// shifts in.
  unsigned output_port(ProcId src, ProcId dst, unsigned hop) const;

  /// Full route src -> ... -> dst, including both endpoints.
  std::vector<ProcId> route(ProcId src, ProcId dst) const;

 private:
  std::uint32_t proc_count_;
  std::uint32_t mask_;
  unsigned bits_;
};

}  // namespace emx::net
