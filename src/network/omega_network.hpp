// Detailed circular Omega network: per-hop event simulation through the
// switch boxes. Exact contention and ordering; O(hops) events per packet,
// so it is the reference model — the FastNetwork is validated against it.
#pragma once

#include <cstdint>
#include <vector>

#include "network/network_iface.hpp"
#include "network/routing.hpp"
#include "network/switch_box.hpp"

namespace emx::net {

class OmegaNetwork final : public Network {
 public:
  /// `self_latency`: OBU->IBU loopback cycles for dst == src packets.
  /// `port_interval`: cycles between successive packets on one port (2).
  OmegaNetwork(sim::SimContext& sim, std::uint32_t proc_count,
               Cycle self_latency = 2, Cycle port_interval = 2);

  void inject(const Packet& packet) override;
  unsigned hop_count(ProcId src, ProcId dst) const override {
    return routing_.hop_count(src, dst);
  }
  std::string name() const override { return "omega-detailed"; }

  const ShuffleRouting& routing() const { return routing_; }
  const SwitchBox& switch_box(ProcId i) const { return switches_[i]; }

  /// Total cycles packets spent queued at switch output ports.
  Cycle total_port_wait() const;

  /// Deepest per-port queue seen anywhere in the fabric (packets).
  std::uint64_t peak_port_backlog() const;

  void save_state(ser::Serializer& s) const override {
    stats_.save(s);
    for (const SwitchBox& sw : switches_) sw.save(s);
    std::uint32_t live = 0;
    for (const Transit& t : transits_)
      if (t.in_use) ++live;
    s.u32(live);
    for (std::uint32_t i = 0; i < transits_.size(); ++i) {
      if (!transits_[i].in_use) continue;
      s.u32(i);
      s.u32(transits_[i].hop);
      s.u64(transits_[i].injected_at);
      transits_[i].packet.save(s);
    }
  }

 private:
  struct Transit {
    Packet packet;
    unsigned hop = 0;
    Cycle injected_at = 0;
    std::uint32_t next_free = 0;  ///< free-list link when unused
    bool in_use = false;
  };

  static void hop_event(void* ctx, std::uint64_t transit_idx, std::uint64_t);
  static void deliver_event(void* ctx, std::uint64_t transit_idx, std::uint64_t);
  static void self_deliver_event(void* ctx, std::uint64_t transit_idx, std::uint64_t);

  void step(std::uint32_t transit_idx);
  std::uint32_t alloc_transit(const Packet& packet);
  void free_transit(std::uint32_t idx);

  sim::SimContext& sim_;
  ShuffleRouting routing_;
  std::vector<SwitchBox> switches_;
  std::vector<Transit> transits_;
  std::uint32_t free_head_;
  Cycle self_latency_;
  Cycle port_interval_;
};

}  // namespace emx::net
