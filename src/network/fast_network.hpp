// Fast analytic network: O(1) work per packet.
//
// Latency = (hops + 1) cycles of virtual cut-through plus queuing at the
// source injection port and destination ejection port, each of which
// accepts one packet per 2 cycles. Interior fabric contention is not
// modelled (the endpoint ports dominate on the EM-X's lightly loaded
// shuffle fabric); tests validate agreement with OmegaNetwork.
// For power-of-two P the per-pair hop count matches the detailed
// shortest-path shuffle routing exactly; for other counts (the 80-PE
// prototype included) hops = ceil(log2 P).
//
// This model is also the parallel engine's window participant (see
// sim/window.hpp): packet injection is the only cross-PE edge in the
// machine, and its port timelines (inject_free_/eject_free_) and counters
// are global state whose mutation order decides bytes. Under a window,
// inject() therefore stages the packet; the boundary merge replays the
// staged injections in canonical global order, reproducing the sequential
// engine's port math, statistics (including the Welford latency stat's
// IEEE-754 accumulation order) and delivery schedule bit for bit.
//
// In-flight packets live in canonical queues rather than a pool: per-src
// self-loop FIFOs and per-dst fabric queues keyed by a monotonically
// increasing injection id. Ejection-port serialization makes per-dst
// arrivals strictly increasing, so deliveries pop the front in id order —
// and the snapshot encoding (format v3) is storage-order-independent.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "network/network_iface.hpp"
#include "network/routing.hpp"
#include "sim/window.hpp"

namespace emx::net {

class FastNetwork final : public Network, public sim::WindowParticipant {
 public:
  FastNetwork(sim::SimContext& sim, std::uint32_t proc_count,
              Cycle self_latency = 2, Cycle port_interval = 2);

  void inject(const Packet& packet) override;
  unsigned hop_count(ProcId src, ProcId dst) const override {
    if (src == dst) return 0;
    return routing_ ? routing_->hop_count(src, dst) : hops_;
  }
  std::string name() const override { return "omega-fast"; }

  /// Folds the per-destination delivery cells into the shared counters.
  /// Called between windows / after the run only (single-threaded).
  const NetworkStats& stats() const override;

  void save_state(ser::Serializer& s) const override;

  // --- sim::WindowParticipant ---

  /// Minimum cycles from any cross-PE cause to its earliest effect: the
  /// fabric's minimum hop count + 1 cut-through cycle, over all src!=dst
  /// pairs — so the bound holds for every possible lane partition. The
  /// shuffle fabric always has a one-hop pair (the de Bruijn graph's edge
  /// set), giving k+1 = 2 for power-of-two P; other counts use the
  /// uniform hops = ceil(log2 P).
  Cycle lookahead() const override;
  void resolve_staged(std::uint32_t lane, std::uint32_t index,
                      sim::StagedScheduler& sched) override;
  void clear_staged() override;

  /// Parallel mode: per-PE lane contexts and lane indices (arrays owned
  /// by the engine, indexed by ProcId), plus the lane count for the
  /// staging buffers. Without this call every PE schedules on the
  /// construction-time context (sequential mode).
  void set_lanes(sim::SimContext* const* lane_by_pe,
                 const std::uint32_t* lane_index_by_pe,
                 std::uint32_t lane_count);

 private:
  /// An injection captured inside a window, replayed at the boundary.
  struct Staged {
    Packet packet;
    Cycle inject_time = 0;
  };

  static void self_deliver_event(void* ctx, std::uint64_t src, std::uint64_t);
  static void fabric_deliver_event(void* ctx, std::uint64_t id,
                                   std::uint64_t dst);

  sim::SimContext& lane_of(ProcId pe) {
    return lane_by_pe_ != nullptr ? *lane_by_pe_[pe] : sim_;
  }

  /// The injection-time math: counters, port timelines, latency stat,
  /// delivery scheduling. Sequential mode calls it directly from
  /// inject(); window mode calls it from resolve_staged() with `sched`
  /// set, which routes fabric deliveries through the engine (self
  /// deliveries were already scheduled lane-locally at injection).
  void apply_inject(const Packet& packet, Cycle now,
                    sim::StagedScheduler* sched);

  sim::SimContext& sim_;
  std::uint32_t proc_count_;
  unsigned hops_;
  std::optional<ShuffleRouting> routing_;
  Cycle self_latency_;
  Cycle port_interval_;
  std::vector<Cycle> inject_free_;  ///< per-src injection port next-free
  std::vector<Cycle> eject_free_;   ///< per-dst ejection port next-free

  /// Pending self-loop packets per source PE, injection order (equal
  /// latency makes delivery order = injection order).
  std::vector<std::deque<Packet>> self_q_;
  /// Pending fabric packets per destination PE with their canonical
  /// injection ids; arrivals are strictly increasing per destination, so
  /// deliveries pop the front.
  std::vector<std::deque<std::pair<std::uint64_t, Packet>>> fabric_q_;
  std::uint64_t next_fabric_id_ = 0;

  /// Per-destination delivery counts: the one delivery-path statistic,
  /// kept shard-local (a lane delivers only to its own PEs) and folded
  /// into stats() between windows.
  std::vector<std::uint64_t> delivered_;
  mutable NetworkStats folded_;  ///< stats() return slot

  // Parallel mode wiring (null/empty under the sequential engine).
  sim::SimContext* const* lane_by_pe_ = nullptr;
  const std::uint32_t* lane_index_by_pe_ = nullptr;
  std::vector<std::vector<Staged>> staged_;  ///< per lane, window order
};

}  // namespace emx::net
