// Fast analytic network: O(1) work per packet.
//
// Latency = (hops + 1) cycles of virtual cut-through plus queuing at the
// source injection port and destination ejection port, each of which
// accepts one packet per 2 cycles. Interior fabric contention is not
// modelled (the endpoint ports dominate on the EM-X's lightly loaded
// shuffle fabric); tests validate agreement with OmegaNetwork.
// For power-of-two P the per-pair hop count matches the detailed
// shortest-path shuffle routing exactly; for other counts (the 80-PE
// prototype included) hops = ceil(log2 P).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "network/network_iface.hpp"
#include "network/routing.hpp"

namespace emx::net {

class FastNetwork final : public Network {
 public:
  FastNetwork(sim::SimContext& sim, std::uint32_t proc_count,
              Cycle self_latency = 2, Cycle port_interval = 2);

  void inject(const Packet& packet) override;
  unsigned hop_count(ProcId src, ProcId dst) const override {
    if (src == dst) return 0;
    return routing_ ? routing_->hop_count(src, dst) : hops_;
  }
  std::string name() const override { return "omega-fast"; }

  void save_state(ser::Serializer& s) const override {
    stats_.save(s);
    for (Cycle c : inject_free_) s.u64(c);
    for (Cycle c : eject_free_) s.u64(c);
    std::uint32_t live = 0;
    for (const Pending& p : pool_)
      if (p.in_use) ++live;
    s.u32(live);
    for (std::uint32_t i = 0; i < pool_.size(); ++i) {
      if (!pool_[i].in_use) continue;
      s.u32(i);
      pool_[i].packet.save(s);
    }
  }

 private:
  struct Pending {
    Packet packet;
    std::uint32_t next_free = 0;
    bool in_use = false;
  };

  static void deliver_event(void* ctx, std::uint64_t idx, std::uint64_t);
  std::uint32_t alloc(const Packet& packet);

  sim::SimContext& sim_;
  std::uint32_t proc_count_;
  unsigned hops_;
  std::optional<ShuffleRouting> routing_;
  Cycle self_latency_;
  Cycle port_interval_;
  std::vector<Cycle> inject_free_;  ///< per-src injection port next-free
  std::vector<Cycle> eject_free_;   ///< per-dst ejection port next-free
  std::vector<Pending> pool_;
  std::uint32_t free_head_;
};

}  // namespace emx::net
