#include "network/switch_box.hpp"

#include "common/assert.hpp"

namespace emx::net {

Cycle SwitchBox::reserve(unsigned port, Cycle ready, Cycle port_interval) {
  EMX_DCHECK(port < kPortCount, "bad switch port");
  const Cycle depart = ready > next_free_[port] ? ready : next_free_[port];
  const Cycle wait = depart - ready;
  total_wait_ += wait;
  const std::uint64_t backlog = wait / port_interval;
  peak_backlog_ = backlog > peak_backlog_ ? backlog : peak_backlog_;
  next_free_[port] = depart + port_interval;
  ++forwarded_[port];
  return depart;
}

}  // namespace emx::net
