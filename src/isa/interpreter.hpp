// Executes an assembled EMC-Y program as an EM-X thread.
//
// The interpreter is a coroutine over ThreadApi: straight-line integer
// and float instructions accumulate one clock each and are charged to
// the EXU in batches (exactly the run-length semantics the paper
// measures); send-class and barrier instructions go through the same
// split-phase machinery as native threads, so ISA threads suspend,
// FIFO-resume and count switches identically.
//
// Calling convention: r1 holds the spawn argument on entry; r0 is zero.
#pragma once

#include <memory>

#include "core/machine.hpp"
#include "isa/assembler.hpp"
#include "runtime/thread_api.hpp"

namespace emx::isa {

struct InterpreterOptions {
  Cycle fdiv_cycles = 9;  ///< the one multi-clock EMC-Y instruction
  /// Executed-instruction budget per thread; exceeding it panics (guards
  /// against runaway loops in user programs).
  std::uint64_t max_instructions = 100'000'000;
  /// Straight-line cycles charged in one batch before simulated time is
  /// advanced (keeps arriving packets visible to polling code).
  Cycle flush_quantum = 64;
};

/// Runs `program` on the calling thread's processor.
rt::ThreadBody interpret(const Program* program, InterpreterOptions options,
                         rt::ThreadApi api, Word arg);

/// Registers an assembled program as a spawnable machine entry; the
/// program is kept alive by the registry entry.
std::uint32_t register_program(Machine& machine, Program program,
                               InterpreterOptions options = {});

/// Convenience: assemble + register in one call.
std::uint32_t register_source(Machine& machine, const std::string& source,
                              InterpreterOptions options = {});

}  // namespace emx::isa
