#include "isa/builder.hpp"

#include "common/assert.hpp"

namespace emx::isa {

std::uint8_t CodeBuilder::reg(unsigned r) const {
  EMX_CHECK(r < kRegisterCount,
            "register out of range: r" + std::to_string(r) +
                " (emitting instruction #" + std::to_string(code_.size()) + ")");
  return static_cast<std::uint8_t>(r);
}

CodeBuilder::Label CodeBuilder::label() {
  label_pos_.push_back(-1);
  return Label{static_cast<std::uint32_t>(label_pos_.size() - 1)};
}

CodeBuilder& CodeBuilder::bind(Label l) {
  EMX_CHECK(l.id < label_pos_.size(),
            "unknown label #" + std::to_string(l.id) + " (only " +
                std::to_string(label_pos_.size()) + " labels created)");
  EMX_CHECK(label_pos_[l.id] < 0,
            "label #" + std::to_string(l.id) + " bound twice: first at "
                "instruction #" + std::to_string(label_pos_[l.id]) +
                ", rebinding at #" + std::to_string(code_.size()));
  label_pos_[l.id] = static_cast<std::int32_t>(code_.size());
  return *this;
}

CodeBuilder& CodeBuilder::emit3(Opcode op, unsigned rd, unsigned ra, unsigned rb) {
  code_.push_back(Instruction{op, reg(rd), reg(ra), reg(rb), 0});
  return *this;
}

CodeBuilder& CodeBuilder::emit_branch(Opcode op, unsigned ra, unsigned rb,
                                      Label target) {
  EMX_CHECK(target.id < label_pos_.size(),
            "unknown label #" + std::to_string(target.id) +
                " (emitting instruction #" + std::to_string(code_.size()) + ")");
  fixups_.push_back({code_.size(), target.id});
  code_.push_back(Instruction{op, 0, reg(ra), reg(rb), 0});
  return *this;
}

CodeBuilder& CodeBuilder::add(unsigned rd, unsigned ra, unsigned rb) {
  return emit3(Opcode::kAdd, rd, ra, rb);
}
CodeBuilder& CodeBuilder::sub(unsigned rd, unsigned ra, unsigned rb) {
  return emit3(Opcode::kSub, rd, ra, rb);
}
CodeBuilder& CodeBuilder::mul(unsigned rd, unsigned ra, unsigned rb) {
  return emit3(Opcode::kMul, rd, ra, rb);
}
CodeBuilder& CodeBuilder::and_(unsigned rd, unsigned ra, unsigned rb) {
  return emit3(Opcode::kAnd, rd, ra, rb);
}
CodeBuilder& CodeBuilder::or_(unsigned rd, unsigned ra, unsigned rb) {
  return emit3(Opcode::kOr, rd, ra, rb);
}
CodeBuilder& CodeBuilder::xor_(unsigned rd, unsigned ra, unsigned rb) {
  return emit3(Opcode::kXor, rd, ra, rb);
}
CodeBuilder& CodeBuilder::shl(unsigned rd, unsigned ra, unsigned rb) {
  return emit3(Opcode::kShl, rd, ra, rb);
}
CodeBuilder& CodeBuilder::shr(unsigned rd, unsigned ra, unsigned rb) {
  return emit3(Opcode::kShr, rd, ra, rb);
}
CodeBuilder& CodeBuilder::slt(unsigned rd, unsigned ra, unsigned rb) {
  return emit3(Opcode::kSlt, rd, ra, rb);
}
CodeBuilder& CodeBuilder::sltu(unsigned rd, unsigned ra, unsigned rb) {
  return emit3(Opcode::kSltu, rd, ra, rb);
}
CodeBuilder& CodeBuilder::fadd(unsigned rd, unsigned ra, unsigned rb) {
  return emit3(Opcode::kFadd, rd, ra, rb);
}
CodeBuilder& CodeBuilder::fsub(unsigned rd, unsigned ra, unsigned rb) {
  return emit3(Opcode::kFsub, rd, ra, rb);
}
CodeBuilder& CodeBuilder::fmul(unsigned rd, unsigned ra, unsigned rb) {
  return emit3(Opcode::kFmul, rd, ra, rb);
}
CodeBuilder& CodeBuilder::fdiv(unsigned rd, unsigned ra, unsigned rb) {
  return emit3(Opcode::kFdiv, rd, ra, rb);
}
CodeBuilder& CodeBuilder::gaddr(unsigned rd, unsigned ra, unsigned rb) {
  return emit3(Opcode::kGaddr, rd, ra, rb);
}

CodeBuilder& CodeBuilder::addi(unsigned rd, unsigned ra, std::int32_t imm) {
  code_.push_back(Instruction{Opcode::kAddi, reg(rd), reg(ra), 0, imm});
  return *this;
}
CodeBuilder& CodeBuilder::li(unsigned rd, std::int32_t imm) {
  code_.push_back(Instruction{Opcode::kLi, reg(rd), 0, 0, imm});
  return *this;
}
CodeBuilder& CodeBuilder::load(unsigned rd, unsigned ra, std::int32_t imm) {
  code_.push_back(Instruction{Opcode::kLoad, reg(rd), reg(ra), 0, imm});
  return *this;
}
CodeBuilder& CodeBuilder::store(unsigned ra, unsigned rb, std::int32_t imm) {
  code_.push_back(Instruction{Opcode::kStore, 0, reg(ra), reg(rb), imm});
  return *this;
}

CodeBuilder& CodeBuilder::beq(unsigned ra, unsigned rb, Label t) {
  return emit_branch(Opcode::kBeq, ra, rb, t);
}
CodeBuilder& CodeBuilder::bne(unsigned ra, unsigned rb, Label t) {
  return emit_branch(Opcode::kBne, ra, rb, t);
}
CodeBuilder& CodeBuilder::blt(unsigned ra, unsigned rb, Label t) {
  return emit_branch(Opcode::kBlt, ra, rb, t);
}
CodeBuilder& CodeBuilder::bge(unsigned ra, unsigned rb, Label t) {
  return emit_branch(Opcode::kBge, ra, rb, t);
}
CodeBuilder& CodeBuilder::jmp(Label t) {
  return emit_branch(Opcode::kJmp, 0, 0, t);
}

CodeBuilder& CodeBuilder::read(unsigned rd, unsigned ra) {
  code_.push_back(Instruction{Opcode::kRead, reg(rd), reg(ra), 0, 0});
  return *this;
}
CodeBuilder& CodeBuilder::readb(unsigned ra, unsigned rb, std::int32_t words) {
  EMX_CHECK(words >= 1,
            "block read needs at least one word (got " + std::to_string(words) +
                " at instruction #" + std::to_string(code_.size()) + ")");
  code_.push_back(Instruction{Opcode::kReadB, 0, reg(ra), reg(rb), words});
  return *this;
}
CodeBuilder& CodeBuilder::write(unsigned ra, unsigned rb) {
  code_.push_back(Instruction{Opcode::kWrite, 0, reg(ra), reg(rb), 0});
  return *this;
}
CodeBuilder& CodeBuilder::spawn(unsigned ra, unsigned rb, std::uint32_t entry) {
  code_.push_back(Instruction{Opcode::kSpawn, 0, reg(ra), reg(rb),
                              static_cast<std::int32_t>(entry)});
  return *this;
}
CodeBuilder& CodeBuilder::fmark(unsigned ra, unsigned rb) {
  code_.push_back(Instruction{Opcode::kFMark, 0, reg(ra), reg(rb), 0});
  return *this;
}
CodeBuilder& CodeBuilder::fdrop(unsigned ra) {
  code_.push_back(Instruction{Opcode::kFDrop, 0, reg(ra), 0, 0});
  return *this;
}
CodeBuilder& CodeBuilder::barrier() {
  code_.push_back(Instruction{Opcode::kBarrier, 0, 0, 0, 0});
  return *this;
}
CodeBuilder& CodeBuilder::yield() {
  code_.push_back(Instruction{Opcode::kYield, 0, 0, 0, 0});
  return *this;
}
CodeBuilder& CodeBuilder::proc(unsigned rd) {
  code_.push_back(Instruction{Opcode::kProc, reg(rd), 0, 0, 0});
  return *this;
}
CodeBuilder& CodeBuilder::halt() {
  code_.push_back(Instruction{Opcode::kHalt, 0, 0, 0, 0});
  return *this;
}

Program CodeBuilder::build() {
  EMX_CHECK(!built_, "build() called twice");
  built_ = true;
  EMX_CHECK(!code_.empty(), "empty program");
  const Opcode last = code_.back().op;
  EMX_CHECK(last == Opcode::kHalt || last == Opcode::kJmp,
            "program must end in halt or an unconditional jump");
  for (const auto& fix : fixups_) {
    EMX_CHECK(label_pos_[fix.label] >= 0,
              "label #" + std::to_string(fix.label) +
                  " referenced at instruction #" + std::to_string(fix.instr) +
                  " but never bound");
    code_[fix.instr].imm = label_pos_[fix.label];
  }
  Program p;
  p.code = std::move(code_);
  return p;
}

}  // namespace emx::isa
