#include "isa/instruction.hpp"

#include <cstdio>

namespace emx::isa {

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kAddi: return "addi";
    case Opcode::kLi: return "li";
    case Opcode::kSlt: return "slt";
    case Opcode::kSltu: return "sltu";
    case Opcode::kFadd: return "fadd";
    case Opcode::kFsub: return "fsub";
    case Opcode::kFmul: return "fmul";
    case Opcode::kFdiv: return "fdiv";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kBeq: return "beq";
    case Opcode::kBne: return "bne";
    case Opcode::kBlt: return "blt";
    case Opcode::kBge: return "bge";
    case Opcode::kJmp: return "jmp";
    case Opcode::kRead: return "read";
    case Opcode::kReadB: return "readb";
    case Opcode::kWrite: return "write";
    case Opcode::kSpawn: return "spawn";
    case Opcode::kBarrier: return "barrier";
    case Opcode::kYield: return "yield";
    case Opcode::kProc: return "proc";
    case Opcode::kGaddr: return "gaddr";
    case Opcode::kFMark: return "fmark";
    case Opcode::kFDrop: return "fdrop";
    case Opcode::kHalt: return "halt";
  }
  return "?";
}

bool is_send(Opcode op) {
  switch (op) {
    case Opcode::kRead:
    case Opcode::kReadB:
    case Opcode::kWrite:
    case Opcode::kSpawn:
      return true;
    default:
      return false;
  }
}

std::string Instruction::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%-7s rd=r%-2u ra=r%-2u rb=r%-2u imm=%d",
                to_string(op), rd, ra, rb, imm);
  return buf;
}

Cycle instruction_cycles(const Instruction& instr, Cycle fdiv_cycles) {
  return instr.op == Opcode::kFdiv ? fdiv_cycles : 1;
}

}  // namespace emx::isa
