// A register-level EMC-Y instruction set.
//
// The paper's software stack is "C with a thread library" compiled to
// explicit-switch threads (§2.3). We provide the layer underneath: a
// RISC-style ISA whose timing matches the EMC-Y (§2.2 — all integer
// instructions one clock, single-precision FP one clock, packet
// generation one clock) plus the four send-class operations. Thread
// bodies written in this ISA run on the simulated EXU through the same
// split-phase machinery as the native coroutine API, so ISA programs are
// first-class EM-X threads.
//
// 32 general registers r0..r31 (r0 is hardwired zero, as on many RISCs;
// the real EMC-Y reserves five special-purpose registers — we reserve
// one). Immediate forms carry a 32-bit immediate directly (the assembler
// handles splitting on a real machine).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace emx::isa {

inline constexpr unsigned kRegisterCount = 32;

enum class Opcode : std::uint8_t {
  // arithmetic / logic (1 clock)
  kAdd, kSub, kMul, kAnd, kOr, kXor, kShl, kShr,
  kAddi, kLi,
  kSlt,   ///< rd = (ra < rb) signed
  kSltu,  ///< rd = (ra < rb) unsigned
  // single-precision float (1 clock; bit patterns in registers)
  kFadd, kFsub, kFmul,
  kFdiv,  ///< multi-clock, the EMC-Y exception (§2.2)
  // local memory (1 clock)
  kLoad,   ///< rd = mem[ra + imm]
  kStore,  ///< mem[ra + imm] = rb
  // control flow (1 clock)
  kBeq, kBne, kBlt, kBge,  ///< branch to label if cond(ra, rb)
  kJmp,                    ///< unconditional branch to label
  // sends (1 clock each, packet-generating — the four send classes §2.2)
  kRead,    ///< rd = remote_read(global addr in ra)         [suspends]
  kReadB,   ///< block read: src ga in ra, local dst in rb, len imm [suspends]
  kWrite,   ///< remote_write(global addr in ra, value rb)
  kSpawn,   ///< spawn(entry imm, arg rb) on PE ra
  // runtime
  kBarrier,  ///< join the iteration barrier                 [suspends]
  kYield,    ///< explicit thread switch (requeue self)      [suspends]
  kProc,     ///< rd = own processor id
  kGaddr,    ///< rd = pack(global addr{ra /*pe*/, rb /*word addr*/})
  // frame-region annotations (1 clock; the checker's client requests —
  // declare/retire [ra, ra+rb) as an activation-frame region)
  kFMark,    ///< frame_mark(base ra, len rb)
  kFDrop,    ///< frame_drop(base ra)
  kHalt,     ///< end the thread
};

const char* to_string(Opcode op);

/// True for packet-generating opcodes (charged as overhead).
bool is_send(Opcode op);

struct Instruction {
  Opcode op = Opcode::kHalt;
  std::uint8_t rd = 0;
  std::uint8_t ra = 0;
  std::uint8_t rb = 0;
  std::int32_t imm = 0;  ///< immediate / branch target (instruction index)

  std::string describe() const;
};

/// Cycle cost of one instruction (EMC-Y: everything 1 clock except FDIV).
Cycle instruction_cycles(const Instruction& instr, Cycle fdiv_cycles);

}  // namespace emx::isa
