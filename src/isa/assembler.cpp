#include "isa/assembler.hpp"

#include <cctype>
#include <cstdio>
#include <map>

#include "common/assert.hpp"

namespace emx::isa {

namespace {

/// Operand shapes an opcode expects.
enum class Shape {
  kRdRaRb,    // add rd, ra, rb
  kRdRaImm,   // addi rd, ra, imm  /  load rd, ra, imm
  kRdImm,     // li rd, imm
  kRaRbImm,   // store ra, rb, imm  /  readb ra, rb, imm / spawn ra, rb, imm
  kRdRa,      // read rd, ra
  kRaRb,      // write ra, rb
  kRaRbLabel, // beq ra, rb, label
  kLabel,     // jmp label
  kRd,        // proc rd
  kRa,        // fdrop ra
  kNone,      // halt / barrier
};

struct OpInfo {
  Opcode op;
  Shape shape;
};

const std::map<std::string, OpInfo>& op_table() {
  static const std::map<std::string, OpInfo> table = {
      {"add", {Opcode::kAdd, Shape::kRdRaRb}},
      {"sub", {Opcode::kSub, Shape::kRdRaRb}},
      {"mul", {Opcode::kMul, Shape::kRdRaRb}},
      {"and", {Opcode::kAnd, Shape::kRdRaRb}},
      {"or", {Opcode::kOr, Shape::kRdRaRb}},
      {"xor", {Opcode::kXor, Shape::kRdRaRb}},
      {"shl", {Opcode::kShl, Shape::kRdRaRb}},
      {"shr", {Opcode::kShr, Shape::kRdRaRb}},
      {"slt", {Opcode::kSlt, Shape::kRdRaRb}},
      {"sltu", {Opcode::kSltu, Shape::kRdRaRb}},
      {"fadd", {Opcode::kFadd, Shape::kRdRaRb}},
      {"fsub", {Opcode::kFsub, Shape::kRdRaRb}},
      {"fmul", {Opcode::kFmul, Shape::kRdRaRb}},
      {"fdiv", {Opcode::kFdiv, Shape::kRdRaRb}},
      {"gaddr", {Opcode::kGaddr, Shape::kRdRaRb}},
      {"addi", {Opcode::kAddi, Shape::kRdRaImm}},
      {"load", {Opcode::kLoad, Shape::kRdRaImm}},
      {"li", {Opcode::kLi, Shape::kRdImm}},
      {"store", {Opcode::kStore, Shape::kRaRbImm}},
      {"readb", {Opcode::kReadB, Shape::kRaRbImm}},
      {"spawn", {Opcode::kSpawn, Shape::kRaRbImm}},
      {"read", {Opcode::kRead, Shape::kRdRa}},
      {"write", {Opcode::kWrite, Shape::kRaRb}},
      {"fmark", {Opcode::kFMark, Shape::kRaRb}},
      {"fdrop", {Opcode::kFDrop, Shape::kRa}},
      {"beq", {Opcode::kBeq, Shape::kRaRbLabel}},
      {"bne", {Opcode::kBne, Shape::kRaRbLabel}},
      {"blt", {Opcode::kBlt, Shape::kRaRbLabel}},
      {"bge", {Opcode::kBge, Shape::kRaRbLabel}},
      {"jmp", {Opcode::kJmp, Shape::kLabel}},
      {"proc", {Opcode::kProc, Shape::kRd}},
      {"barrier", {Opcode::kBarrier, Shape::kNone}},
      {"yield", {Opcode::kYield, Shape::kNone}},
      {"halt", {Opcode::kHalt, Shape::kNone}},
  };
  return table;
}

[[noreturn]] void syntax_error(int line, const std::string& message) {
  EMX_CHECK(false, "asm line " + std::to_string(line) + ": " + message);
  __builtin_unreachable();
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char ch : line) {
    if (ch == ';' || ch == '#') break;
    if (std::isspace(static_cast<unsigned char>(ch)) || ch == ',') {
      if (!cur.empty()) tokens.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  if (!cur.empty()) tokens.push_back(cur);
  return tokens;
}

std::uint8_t parse_reg(const std::string& token, int line) {
  if (token.size() < 2 || (token[0] != 'r' && token[0] != 'R'))
    syntax_error(line, "expected register, got '" + token + "'");
  char* end = nullptr;
  const long v = std::strtol(token.c_str() + 1, &end, 10);
  if (end == nullptr || *end != '\0' || v < 0 ||
      v >= static_cast<long>(kRegisterCount))
    syntax_error(line, "bad register '" + token + "'");
  return static_cast<std::uint8_t>(v);
}

std::int32_t parse_imm(const std::string& token, int line) {
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 0);
  if (end == nullptr || *end != '\0' || token.empty())
    syntax_error(line, "bad immediate '" + token + "'");
  return static_cast<std::int32_t>(v);
}

}  // namespace

Program assemble(const std::string& source) {
  // Pass 1: collect labels; pass 2 resolves them. We do a single pass
  // over pre-tokenized lines, then patch label references.
  struct Pending {
    std::size_t instr_index;
    std::string label;
    int line;
  };
  Program program;
  std::map<std::string, std::int32_t> labels;
  std::vector<Pending> fixups;

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t eol = source.find('\n', pos);
    const std::string line =
        source.substr(pos, eol == std::string::npos ? std::string::npos
                                                    : eol - pos);
    pos = eol == std::string::npos ? source.size() + 1 : eol + 1;
    ++line_no;

    auto tokens = tokenize(line);
    // Leading labels (possibly several) on the line.
    while (!tokens.empty() && tokens.front().back() == ':') {
      std::string label = tokens.front().substr(0, tokens.front().size() - 1);
      if (label.empty()) syntax_error(line_no, "empty label");
      if (!labels.emplace(label, static_cast<std::int32_t>(program.code.size()))
               .second) {
        syntax_error(line_no, "duplicate label '" + label + "'");
      }
      tokens.erase(tokens.begin());
    }
    if (tokens.empty()) continue;

    const auto it = op_table().find(tokens[0]);
    if (it == op_table().end())
      syntax_error(line_no, "unknown opcode '" + tokens[0] + "'");
    const OpInfo& info = it->second;
    Instruction instr;
    instr.op = info.op;

    auto need = [&](std::size_t count) {
      if (tokens.size() != count + 1)
        syntax_error(line_no, "'" + tokens[0] + "' expects " +
                                  std::to_string(count) + " operands");
    };
    switch (info.shape) {
      case Shape::kRdRaRb:
        need(3);
        instr.rd = parse_reg(tokens[1], line_no);
        instr.ra = parse_reg(tokens[2], line_no);
        instr.rb = parse_reg(tokens[3], line_no);
        break;
      case Shape::kRdRaImm:
        need(3);
        instr.rd = parse_reg(tokens[1], line_no);
        instr.ra = parse_reg(tokens[2], line_no);
        instr.imm = parse_imm(tokens[3], line_no);
        break;
      case Shape::kRdImm:
        need(2);
        instr.rd = parse_reg(tokens[1], line_no);
        instr.imm = parse_imm(tokens[2], line_no);
        break;
      case Shape::kRaRbImm:
        need(3);
        instr.ra = parse_reg(tokens[1], line_no);
        instr.rb = parse_reg(tokens[2], line_no);
        instr.imm = parse_imm(tokens[3], line_no);
        break;
      case Shape::kRdRa:
        need(2);
        instr.rd = parse_reg(tokens[1], line_no);
        instr.ra = parse_reg(tokens[2], line_no);
        break;
      case Shape::kRaRb:
        need(2);
        instr.ra = parse_reg(tokens[1], line_no);
        instr.rb = parse_reg(tokens[2], line_no);
        break;
      case Shape::kRaRbLabel:
        need(3);
        instr.ra = parse_reg(tokens[1], line_no);
        instr.rb = parse_reg(tokens[2], line_no);
        fixups.push_back({program.code.size(), tokens[3], line_no});
        break;
      case Shape::kLabel:
        need(1);
        fixups.push_back({program.code.size(), tokens[1], line_no});
        break;
      case Shape::kRd:
        need(1);
        instr.rd = parse_reg(tokens[1], line_no);
        break;
      case Shape::kRa:
        need(1);
        instr.ra = parse_reg(tokens[1], line_no);
        break;
      case Shape::kNone:
        need(0);
        break;
    }
    program.code.push_back(instr);
    program.lines.push_back(static_cast<std::uint32_t>(line_no));
  }

  for (const auto& fix : fixups) {
    const auto it = labels.find(fix.label);
    if (it == labels.end())
      syntax_error(fix.line, "undefined label '" + fix.label + "'");
    program.code[fix.instr_index].imm = it->second;
  }
  EMX_CHECK(!program.code.empty(), "empty program");
  return program;
}

std::string Program::listing() const {
  std::string out;
  for (std::size_t i = 0; i < code.size(); ++i) {
    char head[32];
    std::snprintf(head, sizeof head, "%4zu: ", i);
    out += head;
    out += code[i].describe();
    out += '\n';
  }
  return out;
}

}  // namespace emx::isa
