// CodeBuilder: programmatic construction of EMC-Y programs.
//
// The paper's applications were written in "C with a thread library" and
// compiled to explicit-switch threads (§2.3). The assembler covers
// hand-written sources; this builder is the layer a compiler backend
// would target — a fluent emitter with labels, forward references and
// register-allocation sanity checks.
//
//   isa::CodeBuilder b;
//   auto loop = b.label();
//   b.li(2, 0).li(3, 100)
//    .bind(loop)
//    .addi(2, 2, 1)
//    .blt(2, 3, loop)
//    .halt();
//   isa::Program p = b.build();
#pragma once

#include <cstdint>
#include <vector>

#include "isa/assembler.hpp"

namespace emx::isa {

class CodeBuilder {
 public:
  /// Opaque label handle; create, `bind` at a position, branch to it.
  struct Label {
    std::uint32_t id = 0;
  };

  Label label();
  /// Binds `l` to the next emitted instruction. A label binds only once.
  CodeBuilder& bind(Label l);

  // --- arithmetic / logic ---
  CodeBuilder& add(unsigned rd, unsigned ra, unsigned rb);
  CodeBuilder& sub(unsigned rd, unsigned ra, unsigned rb);
  CodeBuilder& mul(unsigned rd, unsigned ra, unsigned rb);
  CodeBuilder& and_(unsigned rd, unsigned ra, unsigned rb);
  CodeBuilder& or_(unsigned rd, unsigned ra, unsigned rb);
  CodeBuilder& xor_(unsigned rd, unsigned ra, unsigned rb);
  CodeBuilder& shl(unsigned rd, unsigned ra, unsigned rb);
  CodeBuilder& shr(unsigned rd, unsigned ra, unsigned rb);
  CodeBuilder& slt(unsigned rd, unsigned ra, unsigned rb);
  CodeBuilder& sltu(unsigned rd, unsigned ra, unsigned rb);
  CodeBuilder& addi(unsigned rd, unsigned ra, std::int32_t imm);
  CodeBuilder& li(unsigned rd, std::int32_t imm);

  // --- float ---
  CodeBuilder& fadd(unsigned rd, unsigned ra, unsigned rb);
  CodeBuilder& fsub(unsigned rd, unsigned ra, unsigned rb);
  CodeBuilder& fmul(unsigned rd, unsigned ra, unsigned rb);
  CodeBuilder& fdiv(unsigned rd, unsigned ra, unsigned rb);

  // --- memory ---
  CodeBuilder& load(unsigned rd, unsigned ra, std::int32_t imm);
  CodeBuilder& store(unsigned ra, unsigned rb, std::int32_t imm);

  // --- control flow ---
  CodeBuilder& beq(unsigned ra, unsigned rb, Label target);
  CodeBuilder& bne(unsigned ra, unsigned rb, Label target);
  CodeBuilder& blt(unsigned ra, unsigned rb, Label target);
  CodeBuilder& bge(unsigned ra, unsigned rb, Label target);
  CodeBuilder& jmp(Label target);

  // --- sends / runtime ---
  CodeBuilder& gaddr(unsigned rd, unsigned ra, unsigned rb);
  CodeBuilder& read(unsigned rd, unsigned ra);
  CodeBuilder& readb(unsigned ra, unsigned rb, std::int32_t words);
  CodeBuilder& write(unsigned ra, unsigned rb);
  CodeBuilder& spawn(unsigned ra, unsigned rb, std::uint32_t entry);
  CodeBuilder& fmark(unsigned ra, unsigned rb);
  CodeBuilder& fdrop(unsigned ra);
  CodeBuilder& barrier();
  CodeBuilder& yield();
  CodeBuilder& proc(unsigned rd);
  CodeBuilder& halt();

  std::size_t size() const { return code_.size(); }

  /// Finalises the program; every referenced label must be bound and the
  /// code must end in an unconditional control transfer or halt.
  Program build();

 private:
  CodeBuilder& emit3(Opcode op, unsigned rd, unsigned ra, unsigned rb);
  CodeBuilder& emit_branch(Opcode op, unsigned ra, unsigned rb, Label target);
  /// Range-checks `r`; the panic names the instruction being emitted.
  std::uint8_t reg(unsigned r) const;

  std::vector<Instruction> code_;
  std::vector<std::int32_t> label_pos_;  ///< -1 = unbound
  struct Fixup {
    std::size_t instr;
    std::uint32_t label;
  };
  std::vector<Fixup> fixups_;
  bool built_ = false;
};

}  // namespace emx::isa
