#include "isa/interpreter.hpp"

#include <bit>

#include "common/assert.hpp"
#include "runtime/global_addr.hpp"

namespace emx::isa {

namespace {

float as_float(Word w) { return std::bit_cast<float>(w); }
Word as_word(float f) { return std::bit_cast<Word>(f); }

}  // namespace

rt::ThreadBody interpret(const Program* program, InterpreterOptions options,
                         rt::ThreadApi api, Word arg) {
  const auto& code = program->code;
  Word regs[kRegisterCount] = {};
  regs[1] = arg;

  std::uint64_t executed = 0;
  Cycle pending = 0;  // accumulated 1-clock instructions not yet charged

  // Charges the accumulated straight-line cycles before any suspending
  // or packet-generating operation (and at thread end).
  auto flush = [&]() -> rt::detail::ComputeAwaiter { return api.compute(pending); };

  std::size_t pc = 0;
  for (;;) {
    EMX_CHECK(pc < code.size(), "program counter ran off the end (missing halt?)");
    EMX_CHECK(++executed <= options.max_instructions,
              "instruction budget exceeded (runaway ISA program)");
    const Instruction& in = code[pc];
    Word& rd = regs[in.rd];
    const Word a = regs[in.ra];
    const Word b = regs[in.rb];
    std::size_t next = pc + 1;

    switch (in.op) {
      case Opcode::kAdd: rd = a + b; ++pending; break;
      case Opcode::kSub: rd = a - b; ++pending; break;
      case Opcode::kMul: rd = a * b; ++pending; break;
      case Opcode::kAnd: rd = a & b; ++pending; break;
      case Opcode::kOr: rd = a | b; ++pending; break;
      case Opcode::kXor: rd = a ^ b; ++pending; break;
      case Opcode::kShl: rd = (b >= 32) ? 0 : (a << b); ++pending; break;
      case Opcode::kShr: rd = (b >= 32) ? 0 : (a >> b); ++pending; break;
      case Opcode::kAddi: rd = a + static_cast<Word>(in.imm); ++pending; break;
      case Opcode::kLi: rd = static_cast<Word>(in.imm); ++pending; break;
      case Opcode::kSlt:
        rd = static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b);
        ++pending;
        break;
      case Opcode::kSltu: rd = a < b; ++pending; break;
      case Opcode::kFadd: rd = as_word(as_float(a) + as_float(b)); ++pending; break;
      case Opcode::kFsub: rd = as_word(as_float(a) - as_float(b)); ++pending; break;
      case Opcode::kFmul: rd = as_word(as_float(a) * as_float(b)); ++pending; break;
      case Opcode::kFdiv:
        rd = as_word(as_float(a) / as_float(b));
        pending += options.fdiv_cycles;
        break;
      case Opcode::kLoad:
        rd = api.local_read(a + static_cast<Word>(in.imm));
        ++pending;
        break;
      case Opcode::kStore:
        api.local_write(a + static_cast<Word>(in.imm), b);
        ++pending;
        break;
      case Opcode::kBeq:
        ++pending;
        if (a == b) next = static_cast<std::size_t>(in.imm);
        break;
      case Opcode::kBne:
        ++pending;
        if (a != b) next = static_cast<std::size_t>(in.imm);
        break;
      case Opcode::kBlt:
        ++pending;
        if (static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b))
          next = static_cast<std::size_t>(in.imm);
        break;
      case Opcode::kBge:
        ++pending;
        if (static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b))
          next = static_cast<std::size_t>(in.imm);
        break;
      case Opcode::kJmp:
        ++pending;
        next = static_cast<std::size_t>(in.imm);
        break;
      case Opcode::kProc: rd = api.proc(); ++pending; break;
      case Opcode::kGaddr:
        rd = rt::pack(rt::make_global(a, b));
        ++pending;
        break;
      case Opcode::kFMark:
        api.frame_mark(a, b);
        ++pending;
        break;
      case Opcode::kFDrop:
        api.frame_drop(a);
        ++pending;
        break;

      // ---- suspending / packet-generating operations ----
      case Opcode::kRead: {
        co_await flush();
        pending = 0;
        rd = co_await api.remote_read(rt::unpack(a));
        break;
      }
      case Opcode::kReadB: {
        co_await flush();
        pending = 0;
        co_await api.remote_read_block(rt::unpack(a), b,
                                       static_cast<std::uint32_t>(in.imm));
        break;
      }
      case Opcode::kWrite: {
        co_await flush();
        pending = 0;
        co_await api.remote_write(rt::unpack(a), b);
        break;
      }
      case Opcode::kSpawn: {
        co_await flush();
        pending = 0;
        co_await api.spawn(static_cast<ProcId>(a),
                           static_cast<std::uint32_t>(in.imm), b);
        break;
      }
      case Opcode::kBarrier: {
        co_await flush();
        pending = 0;
        co_await api.iteration_barrier();
        break;
      }
      case Opcode::kYield: {
        co_await flush();
        pending = 0;
        co_await api.yield();
        break;
      }
      case Opcode::kHalt: {
        co_await flush();
        co_return;
      }
    }
    regs[0] = 0;  // r0 is hardwired zero
    pc = next;

    // Keep simulated time flowing through long straight-line stretches so
    // arriving packets (DMA writes, wakes) stay visible to polling code.
    if (pending >= options.flush_quantum) {
      co_await flush();
      pending = 0;
    }
  }
}

std::uint32_t register_program(Machine& machine, Program program,
                               InterpreterOptions options) {
  auto shared = std::make_shared<Program>(std::move(program));
  machine.note_isa_program(shared);
  return machine.register_entry(
      [shared, options](rt::ThreadApi api, Word arg) -> rt::ThreadBody {
        return interpret(shared.get(), options, api, arg);
      });
}

std::uint32_t register_source(Machine& machine, const std::string& source,
                              InterpreterOptions options) {
  return register_program(machine, assemble(source), options);
}

}  // namespace emx::isa
