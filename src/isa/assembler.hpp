// A small two-pass assembler for the EMC-Y ISA.
//
// Syntax (one instruction per line; ';' or '#' start comments):
//
//   loop:                       ; labels end with ':'
//     li    r1, 100             ; rd, imm
//     addi  r2, r2, 1           ; rd, ra, imm
//     add   r3, r1, r2          ; rd, ra, rb
//     load  r4, r3, 16          ; rd = mem[ra + imm]
//     store r3, r4, 0           ; mem[ra + imm] = rb  (written: ra, rb, imm)
//     gaddr r5, r6, r7          ; rd = pack(pe=ra, addr=rb)
//     read  r8, r5              ; rd = remote_read(ga in ra)   [suspends]
//     readb r5, r9, 32          ; block read: ga ra -> local rb, imm words
//     write r5, r8              ; remote_write(ga in ra, value rb)
//     spawn r6, r8, 3           ; spawn entry imm on PE ra with arg rb
//     beq   r2, r1, done        ; branch on condition to label
//     jmp   loop
//   done:
//     barrier
//     halt
//
// Registers are r0..r31; r0 reads as zero and ignores writes.
#pragma once

#include <string>
#include <vector>

#include "isa/instruction.hpp"

namespace emx::isa {

struct Program {
  std::vector<Instruction> code;
  /// Source line of each instruction (parallel to `code`); empty for
  /// programs without source positions (CodeBuilder output, hand-built
  /// aggregates). The static verifier threads these through its
  /// diagnostics.
  std::vector<std::uint32_t> lines;
  /// Source line of instruction `i`, or 0 when unknown.
  std::uint32_t line_of(std::size_t i) const {
    return i < lines.size() ? lines[i] : 0;
  }
  std::string listing() const;
};

/// Assembles source text; panics with file/line context on syntax errors.
Program assemble(const std::string& source);

}  // namespace emx::isa
