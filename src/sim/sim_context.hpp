// The simulation context: clock plus the event queue. The sequential
// engine runs one context for the whole Machine; the parallel engine runs
// one per shard ("lane") and keeps them deterministic through the window
// protocol in sim/window.hpp. Each context is single-threaded either way.
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "common/component.hpp"
#include "common/types.hpp"
#include "sim/event_queue.hpp"

namespace emx::sim {

/// Why run_until_idle() returned.
enum class StopReason {
  kIdle,      ///< the event queue drained (normal quiescence)
  kWatchdog,  ///< armed watchdog saw no forward progress for its window
  kPaused,    ///< reached a requested pause cycle with events still pending
};

/// The "sim" component: its snapshot section is the clock, watchdog
/// ledger and event queue; it contributes the event count to the report.
class SimContext final : public Component {
 public:
  /// Observer for events scheduled into the past (analysis runs only).
  /// When set, such an event is reported and clamped to `now` instead of
  /// tripping the debug assertion — the checker turns a latent scheduling
  /// bug into a diagnostic rather than a crash.
  using LateScheduleHook = void (*)(void* ctx, Cycle target, Cycle now);

  Cycle now() const { return now_; }
  std::uint64_t events_processed() const { return processed_; }

  void set_late_schedule_hook(LateScheduleHook hook, void* ctx) {
    late_hook_ = hook;
    late_ctx_ = ctx;
  }

  /// Schedules `fn(ctx, a, b)` `delay` cycles from now; returns an event
  /// id accepted by cancel().
  std::uint64_t schedule(Cycle delay, EventFn fn, void* ctx, std::uint64_t a = 0,
                         std::uint64_t b = 0) {
    return queue_.push(now_ + delay, fn, ctx, a, b);
  }

  /// Schedules at an absolute cycle (must not be in the past).
  std::uint64_t schedule_at(Cycle time, EventFn fn, void* ctx, std::uint64_t a = 0,
                            std::uint64_t b = 0) {
    if (time < now_ && late_hook_ != nullptr) {
      late_hook_(late_ctx_, time, now_);
      time = now_;
    }
    EMX_DCHECK(time >= now_, "scheduling into the past");
    return queue_.push(time, fn, ctx, a, b);
  }

  /// Cancels a scheduled-but-not-yet-fired event. The event is discarded
  /// without running and without advancing the clock; it does not count
  /// toward events_processed(). Cancelling an already-fired id is a bug.
  void cancel(std::uint64_t event_id) { queue_.cancel(event_id); }

  bool idle() const { return queue_.empty(); }

  /// Arms the progress watchdog: run_until_idle() stops with
  /// StopReason::kWatchdog once more than `window` cycles pass without a
  /// note_progress() call while events are still pending — the signature
  /// of a non-quiescent stall (timers and polls keep the queue busy but
  /// no thread executes and no packet lands). 0 disarms.
  void arm_watchdog(Cycle window) { watchdog_window_ = window; }

  /// Marks forward progress (a thread ran, a DMA serviced a packet, a
  /// fabric delivery landed). Cheap enough for hot paths: one store.
  void note_progress() { last_progress_ = now_; }

  Cycle last_progress() const { return last_progress_; }

  /// Runs events until the queue drains or the armed watchdog trips.
  /// `max_events` guards against runaway simulations (0 = unlimited).
  ///
  /// `pause_at` (0 = never) makes the loop return StopReason::kPaused
  /// *before* dispatching the first event with time > pause_at: the
  /// clock stays at the last dispatched event's time and every event at
  /// or before the pause cycle has fired. The boundary depends only on
  /// event times, so two runs of the same program pause in identical
  /// states — the property checkpointing and record-replay build on.
  StopReason run_until_idle(std::uint64_t max_events = 0, Cycle pause_at = 0);

  /// Runs events with time <= `deadline`; clock ends at
  /// min(deadline, last event time).
  void run_until(Cycle deadline);

  /// Resets clock and queue (for test reuse).
  void reset();

  /// Serializes clock, counters, and the queue. Machine snapshots pass
  /// no fn table (see EventQueue::save); the queue payload still pins
  /// every pending time/seq/arg.
  void save(ser::Serializer& s, const EventFnTable* table) const;

  /// Restores state saved with a table. Returns false on a malformed
  /// payload or unknown handler id.
  bool load(ser::Deserializer& d, const EventFnTable& table);

  // --- parallel-engine surface (see sim/window.hpp) -----------------------

  /// Enters window mode: pushes get provisional seqs and every dispatch
  /// is journalled into `log` until end_window_log().
  void begin_window_log(WindowLog* log) {
    wlog_ = log;
    queue_.set_window_log(log);
  }
  void end_window_log() {
    wlog_ = nullptr;
    queue_.set_window_log(nullptr);
  }
  /// Non-null while a window is running on this lane — how the network
  /// model detects that an injection must stage instead of applying.
  WindowLog* window_log() const { return wlog_; }

  /// Draws all future seqs from an engine-global counter (lane mode).
  void share_seq_counter(std::uint64_t* counter) {
    queue_.set_shared_seq(counter);
  }

  /// Next pending event's time. Requires !idle().
  Cycle next_event_time() const { return queue_.top().time; }

  /// Routes a boundary-merged cross-lane event (final seq) into the queue.
  void insert_ready_event(const Event& ev) { queue_.insert_final(ev); }

  void finalize_window_seqs(const std::vector<std::uint64_t>& finals) {
    queue_.finalize_window_seqs(finals);
  }

  template <typename Fn>
  void for_each_live_event(Fn&& fn) const {
    queue_.for_each_live(fn);
  }

  // --- Component ---
  const char* component_name() const override { return "sim"; }
  void save_state(ser::Serializer& s) const override { save(s, nullptr); }

 private:
  void dispatch_one();

  Cycle now_ = 0;
  std::uint64_t processed_ = 0;
  Cycle watchdog_window_ = 0;  ///< 0 = disarmed
  Cycle last_progress_ = 0;
  EventQueue queue_;
  LateScheduleHook late_hook_ = nullptr;
  void* late_ctx_ = nullptr;
  WindowLog* wlog_ = nullptr;  ///< non-null while a parallel window runs
};

}  // namespace emx::sim
