// Sharded deterministic engine: PEs partitioned across host threads,
// event loops run in conservative time windows, merged at every boundary.
//
// Partition. PEs are split into S contiguous shards ("lanes"), one
// SimContext per lane. Every event a PE schedules lands on its own lane
// (thread wake-ups, OBU handoffs, DMA completions, memory replies are all
// PE-local); the only cross-PE — and hence cross-lane — events are the
// network model's packet deliveries, which go through the window protocol
// in sim/window.hpp instead of being scheduled directly.
//
// Windows. Let M be the minimum next-event time over all lanes and L the
// participant's lookahead (a cause on one PE cannot affect another PE
// sooner than L cycles later — for the shuffle fabric, min hops + 1
// cut-through cycles). Every event in [M, M + L) is then independent of
// every other lane's events in that range, so all lanes may run
// [M, M + L) concurrently with no synchronization. Injections made inside
// a window are staged, not applied: their port/stat math reads shared
// per-port timelines whose deterministic order is only known at the
// boundary.
//
// Merge. At each boundary the engine replays the per-lane WindowLogs in
// the exact global (time, seq) order the sequential engine would have
// dispatched, in three phases: (1) an S-way merge walks the Dispatch rows,
// assigning final sequence numbers to each event push, applying each
// staged injection's port/stat math in canonical order (its delivery
// events are buffered with final seqs), and flushing each dispatch's
// trace span to the real sink; (2) each lane rewrites its live records'
// provisional seqs to the assigned finals (an order-preserving map);
// (3) the buffered deliveries are routed into the destination lanes. The
// result: sequence numbers, trace order, statistics — including the
// IEEE-754 accumulation order of the latency Welford stat — and queue
// contents are bit-identical to the sequential engine at every boundary.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "sim/window.hpp"

namespace emx::sim {

class ParallelEngine final : public Engine {
 public:
  /// `shards` = 0 picks one shard per host core; either way the count is
  /// clamped to [1, proc_count]. The shard count never affects results,
  /// only wall-clock.
  ParallelEngine(std::uint32_t proc_count, std::uint32_t shards,
                 trace::TraceSink* sink);
  ~ParallelEngine() override;

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  // --- Engine ---
  SimContext& lane(ProcId pe) override { return lanes_[lane_index_by_pe_[pe]]->ctx; }
  trace::TraceSink* pe_sink(ProcId pe) override;
  Component* sim_component() override { return &facade_; }
  StopReason run(std::uint64_t max_events, Cycle pause_at) override;
  Cycle now() const override;
  std::uint64_t events_processed() const override;
  const char* name() const override { return "par"; }
  std::uint32_t threads() const override {
    return static_cast<std::uint32_t>(lanes_.size());
  }

  /// The network model that stages cross-lane effects. Must be set before
  /// run(); the Machine wires its fabric in.
  void set_participant(WindowParticipant* participant) {
    participant_ = participant;
  }

  /// Per-PE lane tables for the participant (indexed by ProcId).
  SimContext* const* lane_table() const { return lane_by_pe_.data(); }
  const std::uint32_t* lane_index_table() const {
    return lane_index_by_pe_.data();
  }
  std::uint32_t lane_count() const {
    return static_cast<std::uint32_t>(lanes_.size());
  }

 private:
  /// Buffers window trace events into the lane's log; passes through to
  /// the machine sink outside windows (host-side setup emissions).
  class LaneSink final : public trace::TraceSink {
   public:
    void on_event(const trace::TraceEvent& ev) override {
      if (log != nullptr)
        log->note_trace(ev);
      else if (next != nullptr)
        next->on_event(ev);
    }
    WindowLog* log = nullptr;
    trace::TraceSink* next = nullptr;
  };

  /// Generation-counter spin barrier. All waiting is on atomics with
  /// acquire/release ordering (no mutex, no condvar): windows are short —
  /// microseconds — and the release sequence through count_ makes every
  /// pre-barrier write visible to every post-barrier read.
  class SpinBarrier {
   public:
    explicit SpinBarrier(std::uint32_t parties) : parties_(parties) {}
    void arrive_and_wait() {
      const std::uint32_t gen = gen_.load(std::memory_order_acquire);
      if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
        count_.store(0, std::memory_order_relaxed);
        gen_.store(gen + 1, std::memory_order_release);
      } else {
        while (gen_.load(std::memory_order_acquire) == gen)
          std::this_thread::yield();
      }
    }

   private:
    const std::uint32_t parties_;
    std::atomic<std::uint32_t> gen_{0};
    std::atomic<std::uint32_t> count_{0};
  };

  struct Lane {
    SimContext ctx;
    WindowLog log;
    LaneSink sink;
    std::vector<std::uint64_t> finals;  ///< provisional index -> final seq
    // merge cursors (phase 1)
    std::uint32_t dispatch_cursor = 0;
    std::uint32_t action_begin = 0;
    std::uint32_t trace_begin = 0;
  };

  /// A staged packet delivery, resolved at the merge with its final seq,
  /// waiting for phase 3 routing into the destination PE's lane.
  struct StagedDelivery {
    std::uint32_t lane = 0;
    Event ev;
  };

  class BoundaryScheduler final : public StagedScheduler {
   public:
    explicit BoundaryScheduler(ParallelEngine& eng) : eng_(eng) {}
    void schedule_delivery(ProcId dst, Cycle time, EventFn fn, void* ctx,
                           std::uint64_t a, std::uint64_t b) override;

   private:
    ParallelEngine& eng_;
  };

  /// The "sim" component in parallel runs: serializes the same section
  /// bytes the sequential SimContext would — clock, counters, then the
  /// global seq counter and all lanes' live records in seq order.
  class Facade final : public Component {
   public:
    explicit Facade(ParallelEngine& eng) : eng_(eng) {}
    const char* component_name() const override { return "sim"; }
    void save_state(ser::Serializer& s) const override;

   private:
    ParallelEngine& eng_;
  };

  enum class Cmd : std::uint8_t { kRunWindow, kExit };

  void start_threads();
  void worker_main(std::uint32_t lane);
  void run_lane(std::uint32_t lane);
  void merge_window();

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<SimContext*> lane_by_pe_;
  std::vector<std::uint32_t> lane_index_by_pe_;
  trace::TraceSink* sink_;
  WindowParticipant* participant_ = nullptr;
  Facade facade_{*this};
  BoundaryScheduler boundary_{*this};

  std::uint64_t next_seq_ = 0;  ///< the one global sequence counter
  std::vector<StagedDelivery> staged_out_;

  SpinBarrier barrier_;
  std::vector<std::thread> workers_;
  bool threads_started_ = false;
  // Written by the main thread between barriers, read by workers after
  // one: the barrier's ordering makes plain members race-free.
  Cmd cmd_ = Cmd::kRunWindow;
  Cycle horizon_ = 0;  ///< exclusive end of the current window
};

}  // namespace emx::sim
