// Deterministic discrete-event queue.
//
// Events are plain structs with a free-function handler (no std::function,
// no per-event allocation — Per.14/Per.16). Ties in time are broken by
// insertion sequence so simulation is bit-reproducible.
//
// Events may be cancelled after scheduling (used by the reliability
// protocol's retransmit timers): a cancelled event is discarded when it
// reaches the head of the queue *without* being dispatched and without
// advancing the simulation clock, so pending timers for already-completed
// requests never stretch the end-of-run time.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "snapshot/serializer.hpp"

namespace emx::sim {

/// Event handler: receives the opaque context plus two payload words.
using EventFn = void (*)(void* ctx, std::uint64_t a, std::uint64_t b);

struct Event {
  Cycle time = 0;
  std::uint64_t seq = 0;  ///< insertion order; total order with time
  EventFn fn = nullptr;
  void* ctx = nullptr;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Translates event handler/context pointers to stable ids for
/// serialization. Pointers differ across processes, so a snapshot stores
/// (fn_id, ctx_id) pairs; a table built the same way in the loading
/// process maps them back. Machine-level snapshots skip the table (ids
/// 0) because checkpoints restore by deterministic replay, not by
/// re-materializing events — the table exists so unit tests can prove
/// the queue itself round-trips exactly.
class EventFnTable {
 public:
  /// Registers a handler/context pair; returns its stable id (>= 1).
  /// Registering the same pair twice returns the same id.
  std::uint32_t register_fn(EventFn fn, void* ctx);

  /// Id for a pair, or 0 when unregistered.
  std::uint32_t id_of(EventFn fn, void* ctx) const;
  /// Pair for an id; id must be a value register_fn() returned.
  EventFn fn_of(std::uint32_t id) const;
  void* ctx_of(std::uint32_t id) const;
  std::size_t count() const { return entries_.size(); }

 private:
  struct Entry {
    EventFn fn = nullptr;
    void* ctx = nullptr;
  };
  std::vector<Entry> entries_;  // index + 1 == id
};

/// Min-heap on (time, seq).
class EventQueue {
 public:
  /// True when no *live* (non-cancelled) event remains.
  bool empty() const { return heap_.size() == cancelled_.size(); }
  std::size_t size() const { return heap_.size() - cancelled_.size(); }
  std::uint64_t total_pushed() const { return next_seq_; }

  /// Returns the event's id, usable with cancel().
  std::uint64_t push(Cycle time, EventFn fn, void* ctx, std::uint64_t a,
                     std::uint64_t b);

  /// Marks a scheduled-but-not-yet-fired event as dead. The id must come
  /// from push() and the event must still be in the queue; cancelling
  /// twice is a no-op.
  void cancel(std::uint64_t id) { cancelled_.insert(id); }

  /// Requires !empty(); skips over cancelled records.
  const Event& top() const;
  Event pop();

  void clear();

  /// Serializes the full queue state: heap records in storage order
  /// (heap layout is deterministic for identical push/pop histories),
  /// the cancelled set sorted by id, and the sequence counter. With a
  /// table, each record also carries its (fn, ctx) id so load() can
  /// re-materialize it; without one, fn ids are written as 0 and the
  /// payload still pins times/seqs/args — a strong digest for the
  /// restore-verify path, which never re-materializes events.
  void save(snapshot::Serializer& s, const EventFnTable* table) const;

  /// Restores a queue saved *with* a table. Returns false when the
  /// payload is malformed or references a handler the table lacks.
  bool load(snapshot::Deserializer& d, const EventFnTable& table);

 private:
  static bool later(const Event& lhs, const Event& rhs) {
    if (lhs.time != rhs.time) return lhs.time > rhs.time;
    return lhs.seq > rhs.seq;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void drop_cancelled_front();
  Event pop_front();

  std::vector<Event> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace emx::sim
