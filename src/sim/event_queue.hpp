// Deterministic discrete-event queue.
//
// Events are plain structs with a free-function handler (no std::function,
// no per-event allocation — Per.14/Per.16). Ties in time are broken by
// insertion sequence so simulation is bit-reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace emx::sim {

/// Event handler: receives the opaque context plus two payload words.
using EventFn = void (*)(void* ctx, std::uint64_t a, std::uint64_t b);

struct Event {
  Cycle time = 0;
  std::uint64_t seq = 0;  ///< insertion order; total order with time
  EventFn fn = nullptr;
  void* ctx = nullptr;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Min-heap on (time, seq).
class EventQueue {
 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  std::uint64_t total_pushed() const { return next_seq_; }

  void push(Cycle time, EventFn fn, void* ctx, std::uint64_t a, std::uint64_t b);

  /// Requires !empty().
  const Event& top() const { return heap_.front(); }
  Event pop();

  void clear();

 private:
  static bool later(const Event& lhs, const Event& rhs) {
    if (lhs.time != rhs.time) return lhs.time > rhs.time;
    return lhs.seq > rhs.seq;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace emx::sim
