// Deterministic discrete-event queue.
//
// Events are plain structs with a free-function handler (no std::function,
// no per-event allocation — Per.14/Per.16). Ties in time are broken by
// insertion sequence so simulation is bit-reproducible.
//
// Events may be cancelled after scheduling (used by the reliability
// protocol's retransmit timers): cancellation sets an O(1) tombstone bit
// addressed by event id; the dead record is discarded when the cursor
// reaches it *without* being dispatched and without advancing the
// simulation clock, so pending timers for already-completed requests
// never stretch the end-of-run time. A live-tombstone counter keeps the
// common case (nothing cancelled) free of per-pop bookkeeping.
//
// Storage is a timing wheel with a far-future overflow heap. Nearly every
// event in this machine is scheduled a handful of cycles out (OBU handoff
// 1, fabric transit ~4-10, DMA ~16), so the wheel — one FIFO bucket per
// cycle over a kWheelBuckets-cycle horizon — absorbs them with O(1) push
// and pop and no comparison sorting at all: within a cycle, append order
// IS seq order, because seq is monotonic in push time. Events beyond the
// horizon (watchdog windows, retransmit timeouts) go to a small 4-ary
// min-heap on (time, seq) and migrate into the wheel when the cursor's
// horizon reaches them, inserted by seq among any direct-pushed records
// for the same cycle. The pop sequence is therefore the exact (time, seq)
// total order a comparison heap would produce — bit-identical simulation,
// a fraction of the data movement.
#pragma once

#include <cstdint>
#include <vector>

#include "common/serializer.hpp"
#include "common/types.hpp"

namespace emx::sim {

struct WindowLog;

/// Event handler: receives the opaque context plus two payload words.
using EventFn = void (*)(void* ctx, std::uint64_t a, std::uint64_t b);

struct Event {
  Cycle time = 0;
  std::uint64_t seq = 0;  ///< insertion order; total order with time
  EventFn fn = nullptr;
  void* ctx = nullptr;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Translates event handler/context pointers to stable ids for
/// serialization. Pointers differ across processes, so a snapshot stores
/// (fn_id, ctx_id) pairs; a table built the same way in the loading
/// process maps them back. Machine-level snapshots skip the table (ids
/// 0) because checkpoints restore by deterministic replay, not by
/// re-materializing events — the table exists so unit tests can prove
/// the queue itself round-trips exactly.
class EventFnTable {
 public:
  /// Registers a handler/context pair; returns its stable id (>= 1).
  /// Registering the same pair twice returns the same id.
  std::uint32_t register_fn(EventFn fn, void* ctx);

  /// Id for a pair, or 0 when unregistered.
  std::uint32_t id_of(EventFn fn, void* ctx) const;
  /// Pair for an id; id must be a value register_fn() returned.
  EventFn fn_of(std::uint32_t id) const;
  void* ctx_of(std::uint32_t id) const;
  std::size_t count() const { return entries_.size(); }

 private:
  struct Entry {
    EventFn fn = nullptr;
    void* ctx = nullptr;
  };
  std::vector<Entry> entries_;  // index + 1 == id
};

/// Priority queue on (time, seq): timing wheel + far-future 4-ary heap.
class EventQueue {
 public:
  EventQueue() : wheel_(kWheelBuckets) {}

  /// True when no *live* (non-cancelled) event remains.
  bool empty() const { return records_ == tomb_live_; }
  std::size_t size() const { return records_ - tomb_live_; }
  std::uint64_t total_pushed() const { return next_seq_; }

  /// Returns the event's id, usable with cancel().
  std::uint64_t push(Cycle time, EventFn fn, void* ctx, std::uint64_t a,
                     std::uint64_t b);

  // --- parallel-engine surface (see sim/window.hpp) -----------------------
  // A lane queue runs in one of three push modes:
  //   plain     seq = next_seq_++ (the sequential engine, and every test)
  //   shared    seq = (*shared_seq_)++ — all lanes draw from one global
  //             counter, so host-side pushes before the run (spawns, app
  //             setup) get exactly the sequence numbers the sequential
  //             engine would assign in the same call order
  //   window    seq = kProvisionalSeqBit | log->note_push() — the final
  //             number is not knowable until the boundary merge decides
  //             the global dispatch order; the tag bit keeps provisional
  //             seqs above every final seq so bucket append order holds,
  //             and finalize_window_seqs() rewrites them in place

  /// Tag bit marking a seq as window-provisional; the low bits index the
  /// owning WindowLog's push actions.
  static constexpr std::uint64_t kProvisionalSeqBit = std::uint64_t{1} << 63;

  /// Enters (non-null) or leaves (null) window push mode.
  void set_window_log(WindowLog* log) { wlog_ = log; }

  /// Switches plain mode to shared-counter mode for the queue's lifetime.
  void set_shared_seq(std::uint64_t* counter) { shared_seq_ = counter; }

  /// Inserts a fully-formed event whose seq is already final (staged
  /// cross-lane deliveries routed in at a boundary merge). Must not be
  /// called while any record still carries a provisional seq.
  void insert_final(const Event& ev);

  /// Rewrites every live provisional seq to finals[index]. The mapping is
  /// strictly increasing in index, so relative order — and with it every
  /// bucket/heap invariant — is preserved.
  void finalize_window_seqs(const std::vector<std::uint64_t>& finals);

  /// Visits every live record, storage order (callers sort as needed).
  template <typename Fn>
  void for_each_live(Fn&& fn) const {
    for (const Bucket& b : wheel_)
      for (std::size_t i = b.head; i < b.events.size(); ++i)
        if (!tombstoned(b.events[i].seq)) fn(b.events[i]);
    for (const Event& ev : far_)
      if (!tombstoned(ev.seq)) fn(ev);
  }

  /// Marks a scheduled-but-not-yet-fired event as dead: one bit set in a
  /// bitmap indexed by event id (memory cost: 1 bit per event ever
  /// pushed, reclaimed on clear()). The id must come from push() and the
  /// event must still be in the queue; cancelling twice is a no-op.
  void cancel(std::uint64_t id);

  /// Requires !empty(); skips over cancelled records.
  const Event& top() const;
  Event pop();

  void clear();

  /// Serializes the queue's *logical* state, canonically: the sequence
  /// counter, then every live record sorted by seq. Cancelled records are
  /// dead by definition and are not written, so the bytes are a pure
  /// function of logical state — independent of wheel position, bucket
  /// layout, and cancel/pop interleaving. With a table, each record
  /// carries its (fn, ctx) id so load() can re-materialize it; without
  /// one, fn ids are written as 0 and the payload still pins
  /// times/seqs/args — a strong digest for the restore-verify path,
  /// which never re-materializes events.
  void save(ser::Serializer& s, const EventFnTable* table) const;

  /// Restores a queue saved *with* a table. Returns false when the
  /// payload is malformed or references a handler the table lacks.
  bool load(ser::Deserializer& d, const EventFnTable& table);

 private:
  /// Wheel horizon in cycles; power of two (bucket = time & mask).
  static constexpr std::size_t kWheelBuckets = 1024;

  /// One wheel slot = all pending events for a single cycle, in seq
  /// order. head marks the consumed prefix; the vector is reset when the
  /// cursor moves past the cycle, so capacity is recycled lap over lap.
  struct Bucket {
    std::vector<Event> events;
    std::size_t head = 0;
  };

  static bool later(const Event& lhs, const Event& rhs) {
    if (lhs.time != rhs.time) return lhs.time > rhs.time;
    return lhs.seq > rhs.seq;
  }

  /// Routes a record to its wheel bucket or the far heap, lowering the
  /// cursor first if the record's cycle is below it. Caller maintains
  /// records_.
  void insert(const Event& ev);
  /// Pulls the cursor back to `new_cursor` and re-homes every stored
  /// wheel record against the shifted window.
  void rehome(Cycle new_cursor);
  /// Moves far-heap records whose time entered the wheel horizon into
  /// their buckets (seq-sorted insert among direct-pushed records).
  void migrate_due();
  /// Advances the cursor (discarding tombstoned records) to the next
  /// live event and returns it. Requires !empty().
  Event& peek_live();

  void far_sift_up(std::size_t i);
  void far_sift_down(std::size_t i);
  Event far_pop_front();

  bool tombstoned(std::uint64_t id) const {
    const std::size_t w = static_cast<std::size_t>(id >> 6);
    return w < tomb_bits_.size() &&
           ((tomb_bits_[w] >> (id & 63u)) & 1u) != 0;
  }

  std::vector<Bucket> wheel_;
  std::vector<Event> far_;  ///< 4-ary min-heap; times >= cursor_ + horizon
  Cycle cursor_ = 0;        ///< no live record has time < cursor_
  std::size_t records_ = 0;        ///< stored records, wheel + far
  std::size_t wheel_records_ = 0;  ///< stored records in the wheel
  std::vector<std::uint64_t> tomb_bits_;  ///< 1 bit per event id
  std::size_t tomb_live_ = 0;  ///< cancelled records still stored
  std::uint64_t next_seq_ = 0;
  WindowLog* wlog_ = nullptr;          ///< non-null inside a parallel window
  std::uint64_t* shared_seq_ = nullptr;  ///< lane mode: engine-global counter
};

}  // namespace emx::sim
