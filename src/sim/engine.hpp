// Execution engines: who runs the event loop.
//
// The Machine builds its components against this interface and never
// against a loop. An Engine owns the SimContext(s) view: it hands each PE
// the lane (context) and trace sink to build against, exposes the "sim"
// component for the snapshot/report walks, and runs the event loop to a
// stop reason. Two implementations:
//
//   SequentialEngine  the classic single-context loop — every PE shares
//                     one SimContext; run() is SimContext::run_until_idle.
//   ParallelEngine    (sim/parallel_engine.hpp) shards PEs across host
//                     threads under conservative time windows with a
//                     deterministic boundary merge; bit-identical cycles,
//                     digests and snapshot bytes by construction.
#pragma once

#include <cstdint>

#include "common/component.hpp"
#include "common/types.hpp"
#include "sim/sim_context.hpp"
#include "trace/trace.hpp"

namespace emx::sim {

/// Which engine to run and how wide. Execution-only knobs: they are
/// deliberately NOT part of RunManifest — results, digests, snapshot
/// bytes and manifest CRCs are engine-independent, so a run may be
/// captured under one engine and resumed under another.
struct EngineSpec {
  enum class Kind : std::uint8_t { kSequential, kParallel };
  Kind kind = Kind::kSequential;
  /// Parallel only: shard (host thread) count; 0 = one per host core,
  /// clamped to the PE count either way.
  std::uint32_t shards = 0;
};

class Engine {
 public:
  virtual ~Engine();

  /// The simulation context PE `pe` schedules into.
  virtual SimContext& lane(ProcId pe) = 0;

  /// The trace sink PE `pe` emits into (the engine interposes per-lane
  /// buffering in parallel mode; may be null when tracing is off).
  virtual trace::TraceSink* pe_sink(ProcId pe) = 0;

  /// The "sim" component for the registry walks. Its snapshot section is
  /// byte-identical across engines.
  virtual Component* sim_component() = 0;

  /// Runs until idle, the event budget trips (panics), or — with
  /// pause_at != 0 — the next event would land past pause_at.
  virtual StopReason run(std::uint64_t max_events, Cycle pause_at) = 0;

  virtual Cycle now() const = 0;
  virtual std::uint64_t events_processed() const = 0;
  virtual const char* name() const = 0;     ///< "seq" or "par"
  virtual std::uint32_t threads() const = 0;  ///< host threads running lanes
};

/// The original single-threaded loop over one shared SimContext.
class SequentialEngine final : public Engine {
 public:
  SequentialEngine(SimContext& sim, trace::TraceSink* sink)
      : sim_(sim), sink_(sink) {}

  SimContext& lane(ProcId) override { return sim_; }
  trace::TraceSink* pe_sink(ProcId) override { return sink_; }
  Component* sim_component() override { return &sim_; }
  StopReason run(std::uint64_t max_events, Cycle pause_at) override {
    return sim_.run_until_idle(max_events, pause_at);
  }
  Cycle now() const override { return sim_.now(); }
  std::uint64_t events_processed() const override {
    return sim_.events_processed();
  }
  const char* name() const override { return "seq"; }
  std::uint32_t threads() const override { return 1; }

 private:
  SimContext& sim_;
  trace::TraceSink* sink_;
};

}  // namespace emx::sim
