// Window protocol between the parallel engine and the components it
// drives — the dependency-inversion seam that keeps host threading
// sim-internal (see scripts/check_layering.sh).
//
// The parallel engine runs each shard's lane (its own SimContext) through
// a conservative time window, then merges the per-lane logs at the
// boundary into the exact global (time, seq) dispatch order the
// sequential engine would have produced. Three records make that merge
// possible:
//
//   WindowLog       per-lane journal of what happened inside the window:
//                   one Dispatch row per dispatched event plus the Actions
//                   (event pushes, staged network injections) and trace
//                   events it produced. Written single-threaded by the
//                   lane that owns it; read single-threaded at the merge.
//   WindowParticipant  implemented by the network model: exposes its
//                   conservative lookahead and replays staged injections
//                   in canonical order at the boundary.
//   StagedScheduler passed back into resolve_staged(): the participant
//                   schedules the staged packet's delivery event through
//                   it so the engine can assign the final sequence number
//                   and route the event to the destination lane.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/event_queue.hpp"
#include "trace/trace.hpp"

namespace emx::sim {

/// Per-lane, per-window journal. During a window the lane appends an
/// Action for every event push (provisional seq assignment) and every
/// staged cross-boundary effect, buffers every trace event, and closes a
/// Dispatch row after each dispatched event. The boundary merge replays
/// Dispatch rows from all lanes in global (time, seq) order, turning each
/// kPush into the next final sequence number and each kStaged into the
/// participant's canonical side effects — reproducing exactly the state
/// the sequential engine reaches by interleaving the same dispatches.
struct WindowLog {
  struct Action {
    enum Kind : std::uint8_t { kPush, kStaged };
    Kind kind = kPush;
    std::uint32_t aux = 0;  ///< kStaged: index into the participant's staging
  };

  /// One dispatched event: its (time, seq) merge key plus the exclusive
  /// end of its Action / trace spans (the start is the previous row's end).
  struct Dispatch {
    Cycle time = 0;
    std::uint64_t seq = 0;  ///< provisional (bit 63 set) or pre-window final
    std::uint32_t action_end = 0;
    std::uint32_t trace_end = 0;
  };

  std::vector<Dispatch> dispatches;
  std::vector<Action> actions;
  std::vector<trace::TraceEvent> traces;
  std::uint64_t prov_count = 0;  ///< provisional seqs handed out this window

  /// Records an event push; returns the provisional index to embed in the
  /// event's seq (below the provisional tag bit).
  std::uint64_t note_push() {
    actions.push_back(Action{Action::kPush, 0});
    return prov_count++;
  }

  void note_staged(std::uint32_t staged_index) {
    actions.push_back(Action{Action::kStaged, staged_index});
  }

  void note_trace(const trace::TraceEvent& ev) { traces.push_back(ev); }

  void close_dispatch(Cycle time, std::uint64_t seq) {
    dispatches.push_back(Dispatch{time, seq,
                                  static_cast<std::uint32_t>(actions.size()),
                                  static_cast<std::uint32_t>(traces.size())});
  }

  void clear() {
    dispatches.clear();
    actions.clear();
    traces.clear();
    prov_count = 0;
  }
};

/// Handed to WindowParticipant::resolve_staged at the boundary merge: the
/// participant schedules each staged packet's delivery through this so
/// the engine assigns the final sequence number and routes the event to
/// the lane that owns the destination PE.
class StagedScheduler {
 public:
  virtual ~StagedScheduler() = default;
  virtual void schedule_delivery(ProcId dst, Cycle time, EventFn fn, void* ctx,
                                 std::uint64_t a, std::uint64_t b) = 0;
};

/// Implemented by the network model (the only component whose events
/// cross PE — and therefore lane — boundaries). The engine never includes
/// network headers; the Machine wires the concrete model in.
class WindowParticipant {
 public:
  virtual ~WindowParticipant() = default;

  /// Conservative lookahead L in cycles: a cause on one PE at time t can
  /// affect a *different* PE no earlier than t + L, for every PE pair and
  /// hence every possible lane partition. Windows of [M, M + L) are then
  /// safe to run without cross-lane synchronization. Must be >= 2.
  virtual Cycle lookahead() const = 0;

  /// Replays staged injection `index` of `lane` with the port/stat math
  /// the sequential engine would have run at injection time. Called at
  /// the boundary merge in canonical global order, single-threaded.
  virtual void resolve_staged(std::uint32_t lane, std::uint32_t index,
                              StagedScheduler& sched) = 0;

  /// Drops all consumed staged entries after a boundary merge.
  virtual void clear_staged() = 0;
};

}  // namespace emx::sim
