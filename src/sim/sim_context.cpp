#include "sim/sim_context.hpp"

#include "sim/window.hpp"

namespace emx::sim {

void SimContext::dispatch_one() {
  const Event ev = queue_.pop();
  EMX_DCHECK(ev.time >= now_, "event time went backwards");
  now_ = ev.time;
  ++processed_;
  ev.fn(ev.ctx, ev.a, ev.b);
  // After the handler: the Dispatch row's action/trace spans then cover
  // everything the handler pushed, staged and traced.
  if (wlog_ != nullptr) wlog_->close_dispatch(ev.time, ev.seq);
}

StopReason SimContext::run_until_idle(std::uint64_t max_events, Cycle pause_at) {
  while (!queue_.empty()) {
    if (pause_at != 0 && queue_.top().time > pause_at) return StopReason::kPaused;
    dispatch_one();
    if (max_events != 0 && processed_ >= max_events) {
      EMX_CHECK(false, "simulation exceeded event budget (possible livelock)");
    }
    if (watchdog_window_ != 0 && now_ - last_progress_ > watchdog_window_)
      return StopReason::kWatchdog;
  }
  return StopReason::kIdle;
}

void SimContext::run_until(Cycle deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    dispatch_one();
  }
  if (now_ < deadline && queue_.empty()) {
    now_ = deadline;
  }
}

void SimContext::reset() {
  now_ = 0;
  processed_ = 0;
  last_progress_ = 0;
  queue_.clear();
}

void SimContext::save(ser::Serializer& s, const EventFnTable* table) const {
  s.u64(now_);
  s.u64(processed_);
  s.u64(watchdog_window_);
  s.u64(last_progress_);
  queue_.save(s, table);
}

bool SimContext::load(ser::Deserializer& d, const EventFnTable& table) {
  now_ = d.u64();
  processed_ = d.u64();
  watchdog_window_ = d.u64();
  last_progress_ = d.u64();
  return d.ok() && queue_.load(d, table);
}

}  // namespace emx::sim
