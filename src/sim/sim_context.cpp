#include "sim/sim_context.hpp"

namespace emx::sim {

void SimContext::dispatch_one() {
  const Event ev = queue_.pop();
  EMX_DCHECK(ev.time >= now_, "event time went backwards");
  now_ = ev.time;
  ++processed_;
  ev.fn(ev.ctx, ev.a, ev.b);
}

StopReason SimContext::run_until_idle(std::uint64_t max_events) {
  while (!queue_.empty()) {
    dispatch_one();
    if (max_events != 0 && processed_ >= max_events) {
      EMX_CHECK(false, "simulation exceeded event budget (possible livelock)");
    }
    if (watchdog_window_ != 0 && now_ - last_progress_ > watchdog_window_)
      return StopReason::kWatchdog;
  }
  return StopReason::kIdle;
}

void SimContext::run_until(Cycle deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    dispatch_one();
  }
  if (now_ < deadline && queue_.empty()) {
    now_ = deadline;
  }
}

void SimContext::reset() {
  now_ = 0;
  processed_ = 0;
  last_progress_ = 0;
  queue_.clear();
}

}  // namespace emx::sim
