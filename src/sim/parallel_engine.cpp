#include "sim/parallel_engine.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace emx::sim {

namespace {

std::uint32_t resolve_shard_count(std::uint32_t proc_count,
                                  std::uint32_t shards) {
  std::uint32_t n = shards;
  if (n == 0) {
    n = std::thread::hardware_concurrency();  // 0 when unknown
    if (n == 0) n = 1;
  }
  if (n > proc_count) n = proc_count;
  return n < 1 ? 1 : n;
}

}  // namespace

ParallelEngine::ParallelEngine(std::uint32_t proc_count, std::uint32_t shards,
                               trace::TraceSink* sink)
    : sink_(sink), barrier_(resolve_shard_count(proc_count, shards)) {
  EMX_CHECK(proc_count > 0, "need at least one processor");
  const std::uint32_t count = resolve_shard_count(proc_count, shards);
  lanes_.reserve(count);
  for (std::uint32_t s = 0; s < count; ++s) {
    lanes_.push_back(std::make_unique<Lane>());
    lanes_.back()->ctx.share_seq_counter(&next_seq_);
    lanes_.back()->sink.next = sink_;
  }
  // Contiguous balanced blocks: PE p -> shard p*S/P. Any partition is
  // deterministically safe (the lookahead bounds every PE pair); blocks
  // keep neighbouring PEs — which share barrier-tree traffic — together.
  lane_by_pe_.resize(proc_count);
  lane_index_by_pe_.resize(proc_count);
  for (ProcId p = 0; p < proc_count; ++p) {
    const auto s = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(p) * count / proc_count);
    lane_index_by_pe_[p] = s;
    lane_by_pe_[p] = &lanes_[s]->ctx;
  }
}

ParallelEngine::~ParallelEngine() {
  if (threads_started_ && !workers_.empty()) {
    cmd_ = Cmd::kExit;
    barrier_.arrive_and_wait();
    for (std::thread& t : workers_) t.join();
  }
}

trace::TraceSink* ParallelEngine::pe_sink(ProcId pe) {
  // No machine sink: skip the lane buffers too, so PEs see the same null
  // (emit nothing) as under the sequential engine.
  if (sink_ == nullptr) return nullptr;
  return &lanes_[lane_index_by_pe_[pe]]->sink;
}

Cycle ParallelEngine::now() const {
  Cycle t = 0;
  for (const auto& l : lanes_) t = std::max(t, l->ctx.now());
  return t;
}

std::uint64_t ParallelEngine::events_processed() const {
  std::uint64_t n = 0;
  for (const auto& l : lanes_) n += l->ctx.events_processed();
  return n;
}

void ParallelEngine::start_threads() {
  if (threads_started_) return;
  threads_started_ = true;
  workers_.reserve(lanes_.size() - 1);
  for (std::uint32_t s = 1; s < lanes_.size(); ++s)
    workers_.emplace_back([this, s] { worker_main(s); });
}

void ParallelEngine::worker_main(std::uint32_t lane) {
  for (;;) {
    barrier_.arrive_and_wait();  // window open (cmd_/horizon_ published)
    if (cmd_ == Cmd::kExit) return;
    run_lane(lane);
    barrier_.arrive_and_wait();  // window closed; main thread merges
  }
}

void ParallelEngine::run_lane(std::uint32_t lane) {
  Lane& l = *lanes_[lane];
  if (l.ctx.idle() || l.ctx.next_event_time() >= horizon_) return;
  l.sink.log = &l.log;
  l.ctx.begin_window_log(&l.log);
  // horizon_ >= 2 always (lookahead >= 2), so horizon_ - 1 is a real
  // pause cycle, never the run-to-completion sentinel 0.
  l.ctx.run_until_idle(/*max_events=*/0, /*pause_at=*/horizon_ - 1);
  l.ctx.end_window_log();
  l.sink.log = nullptr;
}

StopReason ParallelEngine::run(std::uint64_t max_events, Cycle pause_at) {
  EMX_CHECK(participant_ != nullptr,
            "parallel engine run() without a window participant");
  const Cycle lookahead = participant_->lookahead();
  EMX_CHECK(lookahead >= 2, "window participant lookahead must be >= 2");
  start_threads();
  for (;;) {
    // M = min next-event time across lanes; the window [M, M+L) is safe:
    // no other lane's pending work can inject an effect into it.
    bool any = false;
    Cycle window_min = 0;
    for (const auto& l : lanes_) {
      if (l->ctx.idle()) continue;
      const Cycle t = l->ctx.next_event_time();
      if (!any || t < window_min) window_min = t;
      any = true;
    }
    if (!any) return StopReason::kIdle;
    if (pause_at != 0 && window_min > pause_at) return StopReason::kPaused;
    Cycle horizon = window_min + lookahead;
    // Never dispatch past a requested pause cycle, exactly like the
    // sequential loop's pre-dispatch check.
    if (pause_at != 0 && horizon > pause_at + 1) horizon = pause_at + 1;
    horizon_ = horizon;
    cmd_ = Cmd::kRunWindow;
    barrier_.arrive_and_wait();  // publish the window to the workers
    run_lane(0);                 // the main thread drives lane 0
    barrier_.arrive_and_wait();  // wait for every lane to reach horizon
    merge_window();
    // The sequential loop checks the budget per dispatch; windowed
    // execution can only check per boundary. Either way a runaway
    // simulation dies with the same message.
    if (max_events != 0 && events_processed() >= max_events)
      EMX_CHECK(false, "simulation exceeded event budget (possible livelock)");
  }
}

void ParallelEngine::BoundaryScheduler::schedule_delivery(
    ProcId dst, Cycle time, EventFn fn, void* ctx, std::uint64_t a,
    std::uint64_t b) {
  const std::uint64_t seq = eng_.next_seq_++;
  eng_.staged_out_.push_back(
      StagedDelivery{eng_.lane_index_by_pe_[dst], Event{time, seq, fn, ctx, a, b}});
}

void ParallelEngine::merge_window() {
  const std::size_t lane_count = lanes_.size();
  for (auto& l : lanes_) {
    l->finals.clear();
    l->dispatch_cursor = 0;
    l->action_begin = 0;
    l->trace_begin = 0;
  }
  staged_out_.clear();

  const auto resolved = [](const Lane& l, std::uint64_t seq) {
    if ((seq & EventQueue::kProvisionalSeqBit) == 0) return seq;
    // The dispatch that *pushed* this event ran earlier on the same lane
    // (or pre-window), so its final seq is already assigned.
    const auto index =
        static_cast<std::size_t>(seq & ~EventQueue::kProvisionalSeqBit);
    EMX_DCHECK(index < l.finals.size(), "dispatch of unresolved provisional seq");
    return l.finals[index];
  };

  // Phase 1: replay the union of the per-lane dispatch journals in global
  // (time, seq) order — the exact order the sequential engine would have
  // dispatched. Each event push gets the next final seq; each staged
  // injection applies its port/stat math (deliveries buffered); each
  // dispatch's trace span flushes to the real sink.
  for (;;) {
    std::size_t best = lane_count;
    Cycle best_time = 0;
    std::uint64_t best_seq = 0;
    for (std::size_t s = 0; s < lane_count; ++s) {
      const Lane& l = *lanes_[s];
      if (l.dispatch_cursor >= l.log.dispatches.size()) continue;
      const WindowLog::Dispatch& d = l.log.dispatches[l.dispatch_cursor];
      const std::uint64_t seq = resolved(l, d.seq);
      if (best == lane_count || d.time < best_time ||
          (d.time == best_time && seq < best_seq)) {
        best = s;
        best_time = d.time;
        best_seq = seq;
      }
    }
    if (best == lane_count) break;
    Lane& l = *lanes_[best];
    const WindowLog::Dispatch& d = l.log.dispatches[l.dispatch_cursor];
    for (std::uint32_t i = l.action_begin; i < d.action_end; ++i) {
      const WindowLog::Action& a = l.log.actions[i];
      if (a.kind == WindowLog::Action::kPush)
        l.finals.push_back(next_seq_++);
      else
        participant_->resolve_staged(static_cast<std::uint32_t>(best), a.aux,
                                     boundary_);
    }
    l.action_begin = d.action_end;
    if (sink_ != nullptr)
      for (std::uint32_t i = l.trace_begin; i < d.trace_end; ++i)
        sink_->on_event(l.log.traces[i]);
    l.trace_begin = d.trace_end;
    ++l.dispatch_cursor;
  }

  // Phase 2: rewrite the lanes' live provisional seqs to their finals.
  // Order-preserving (the map is strictly increasing), so every bucket
  // and heap invariant survives the rewrite in place.
  for (auto& l : lanes_) l->ctx.finalize_window_seqs(l->finals);

  // Phase 3: route the buffered deliveries — all seqs final now — into
  // the destination PEs' lanes. Their times sit at or past the horizon by
  // the lookahead guarantee, so they land strictly in each lane's future.
  for (const StagedDelivery& sd : staged_out_)
    lanes_[sd.lane]->ctx.insert_ready_event(sd.ev);
  participant_->clear_staged();
  for (auto& l : lanes_) l->log.clear();
}

void ParallelEngine::Facade::save_state(ser::Serializer& s) const {
  // Byte-identical to SimContext::save(s, nullptr) under the sequential
  // engine: clock (max lane clock = last dispatched time), dispatch
  // count, watchdog window (the parallel engine requires it disarmed),
  // last progress (notes carry nondecreasing times, so the max IS the
  // latest), then the queue payload — global seq counter and every live
  // record in seq order with fn ids 0.
  s.u64(eng_.now());
  s.u64(eng_.events_processed());
  s.u64(0);
  Cycle last_progress = 0;
  for (const auto& l : eng_.lanes_)
    last_progress = std::max(last_progress, l->ctx.last_progress());
  s.u64(last_progress);
  s.u64(eng_.next_seq_);
  std::vector<Event> live;
  for (const auto& l : eng_.lanes_)
    l->ctx.for_each_live_event([&live](const Event& ev) { live.push_back(ev); });
  std::sort(live.begin(), live.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  s.u32(static_cast<std::uint32_t>(live.size()));
  for (const Event& ev : live) {
    EMX_DCHECK((ev.seq & EventQueue::kProvisionalSeqBit) == 0,
               "snapshot between windows saw a provisional seq");
    s.u64(ev.time);
    s.u64(ev.seq);
    s.u32(0);
    s.u64(ev.a);
    s.u64(ev.b);
  }
}

}  // namespace emx::sim
