#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "sim/window.hpp"

namespace emx::sim {

std::uint32_t EventFnTable::register_fn(EventFn fn, void* ctx) {
  const std::uint32_t existing = id_of(fn, ctx);
  if (existing != 0) return existing;
  entries_.push_back(Entry{fn, ctx});
  return static_cast<std::uint32_t>(entries_.size());
}

std::uint32_t EventFnTable::id_of(EventFn fn, void* ctx) const {
  for (std::size_t i = 0; i < entries_.size(); ++i)
    if (entries_[i].fn == fn && entries_[i].ctx == ctx)
      return static_cast<std::uint32_t>(i + 1);
  return 0;
}

EventFn EventFnTable::fn_of(std::uint32_t id) const {
  EMX_CHECK(id >= 1 && id <= entries_.size(), "unknown event fn id");
  return entries_[id - 1].fn;
}

void* EventFnTable::ctx_of(std::uint32_t id) const {
  EMX_CHECK(id >= 1 && id <= entries_.size(), "unknown event fn id");
  return entries_[id - 1].ctx;
}

void EventQueue::insert(const Event& ev) {
  // top() advances the cursor across event-free gaps; a push back into
  // such a gap (run_until / paused runs — never the dispatch hot loop,
  // where the cursor always sits at the last popped event's cycle) pulls
  // the wheel back to the new event's cycle.
  if (ev.time < cursor_) rehome(ev.time);
  if (ev.time < cursor_ + kWheelBuckets) {
    Bucket& b = wheel_[ev.time & (kWheelBuckets - 1)];
    // Direct pushes arrive in seq order (seq is monotonic in push time),
    // so append keeps the bucket sorted. Only far-heap migration can
    // deliver an out-of-order seq, and it inserts at the right spot.
    if (b.events.empty() || b.events.back().seq < ev.seq) {
      b.events.push_back(ev);
    } else {
      const auto at = std::lower_bound(
          b.events.begin() + static_cast<std::ptrdiff_t>(b.head),
          b.events.end(), ev,
          [](const Event& x, const Event& y) { return x.seq < y.seq; });
      b.events.insert(at, ev);
    }
    ++wheel_records_;
  } else {
    far_.push_back(ev);
    far_sift_up(far_.size() - 1);
  }
}

void EventQueue::rehome(Cycle new_cursor) {
  // Lowering the cursor shifts the wheel's window; records whose cycle
  // no longer fits re-route (possibly to the far heap). All stored wheel
  // records have time >= the old cursor > new_cursor, so the reinsertion
  // cannot recurse. Cold path by construction.
  std::vector<Event> pending;
  pending.reserve(wheel_records_);
  for (Bucket& b : wheel_) {
    for (std::size_t i = b.head; i < b.events.size(); ++i)
      pending.push_back(b.events[i]);
    b.events.clear();
    b.head = 0;
  }
  wheel_records_ = 0;
  cursor_ = new_cursor;
  for (const Event& ev : pending) insert(ev);
}

std::uint64_t EventQueue::push(Cycle time, EventFn fn, void* ctx,
                               std::uint64_t a, std::uint64_t b) {
  EMX_DCHECK(fn != nullptr, "event without handler");
  std::uint64_t id;
  if (wlog_ != nullptr) {
    // Window mode: the final seq depends on the global dispatch order the
    // boundary merge decides; tag a provisional number above every final
    // one so append order within a bucket still equals seq order.
    id = kProvisionalSeqBit | wlog_->note_push();
  } else if (shared_seq_ != nullptr) {
    id = (*shared_seq_)++;
  } else {
    id = next_seq_++;
  }
  // An empty queue lets the cursor jump straight to the new event's
  // cycle — the wheel never scans across a gap no event occupies.
  if (records_ == 0) cursor_ = time;
  insert(Event{time, id, fn, ctx, a, b});
  ++records_;
  return id;
}

void EventQueue::insert_final(const Event& ev) {
  EMX_DCHECK((ev.seq & kProvisionalSeqBit) == 0, "insert_final of provisional seq");
  if (records_ == 0) cursor_ = ev.time;
  insert(ev);
  ++records_;
}

void EventQueue::finalize_window_seqs(const std::vector<std::uint64_t>& finals) {
  const auto fix = [&finals](Event& ev) {
    if ((ev.seq & kProvisionalSeqBit) == 0) return;
    const auto index = static_cast<std::size_t>(ev.seq & ~kProvisionalSeqBit);
    EMX_DCHECK(index < finals.size(), "unresolved provisional seq");
    ev.seq = finals[index];
  };
  for (Bucket& b : wheel_)
    for (std::size_t i = b.head; i < b.events.size(); ++i) fix(b.events[i]);
  for (Event& ev : far_) fix(ev);
}

void EventQueue::cancel(std::uint64_t id) {
  // Provisional ids would index the tombstone bitmap at 2^57 words; the
  // parallel engine is gated off every configuration that cancels
  // (reliability timers), so this cannot fire.
  EMX_CHECK((id & kProvisionalSeqBit) == 0,
            "cancel of a window-provisional event");
  const std::size_t w = static_cast<std::size_t>(id >> 6);
  if (w >= tomb_bits_.size()) tomb_bits_.resize(w + 1, 0);
  const std::uint64_t mask = std::uint64_t{1} << (id & 63u);
  if ((tomb_bits_[w] & mask) != 0) return;  // double-cancel is a no-op
  tomb_bits_[w] |= mask;
  ++tomb_live_;
}

void EventQueue::migrate_due() {
  while (!far_.empty() && far_.front().time < cursor_ + kWheelBuckets) {
    const Event ev = far_pop_front();
    insert(ev);
  }
}

Event& EventQueue::peek_live() {
  EMX_DCHECK(!empty(), "peek into empty event queue");
  for (;;) {
    if (wheel_records_ == 0) {
      // Nothing within the horizon: jump the cursor to the far heap's
      // next due cycle instead of scanning empty buckets.
      cursor_ = far_.front().time;
      migrate_due();
      continue;
    }
    Bucket& b = wheel_[cursor_ & (kWheelBuckets - 1)];
    while (b.head < b.events.size()) {
      Event& ev = b.events[b.head];
      if (!tombstoned(ev.seq)) return ev;
      // Cancelled: discard in place, never dispatched.
      tomb_bits_[static_cast<std::size_t>(ev.seq >> 6)] &=
          ~(std::uint64_t{1} << (ev.seq & 63u));
      --tomb_live_;
      --records_;
      --wheel_records_;
      ++b.head;
    }
    b.events.clear();
    b.head = 0;
    ++cursor_;
    migrate_due();
  }
}

const Event& EventQueue::top() const {
  // The cursor advance only discards records that could never be
  // observed (consumed buckets, tombstones), so logical const-ness holds
  // even though the storage mutates.
  return const_cast<EventQueue*>(this)->peek_live();
}

Event EventQueue::pop() {
  Event& ev = peek_live();
  const Event out = ev;
  Bucket& b = wheel_[out.time & (kWheelBuckets - 1)];
  ++b.head;
  --records_;
  --wheel_records_;
  return out;
}

void EventQueue::clear() {
  for (Bucket& b : wheel_) {
    b.events.clear();
    b.head = 0;
  }
  far_.clear();
  cursor_ = 0;
  records_ = 0;
  wheel_records_ = 0;
  tomb_bits_.clear();
  tomb_live_ = 0;
  next_seq_ = 0;
}

void EventQueue::save(ser::Serializer& s, const EventFnTable* table) const {
  s.u64(next_seq_);
  // Canonical order: live records sorted by seq. seq values are unique,
  // so the order is total and independent of storage layout.
  std::vector<const Event*> live;
  live.reserve(size());
  for (const Bucket& b : wheel_)
    for (std::size_t i = b.head; i < b.events.size(); ++i)
      if (!tombstoned(b.events[i].seq)) live.push_back(&b.events[i]);
  for (const Event& ev : far_)
    if (!tombstoned(ev.seq)) live.push_back(&ev);
  std::sort(live.begin(), live.end(),
            [](const Event* a, const Event* b) { return a->seq < b->seq; });
  s.u32(static_cast<std::uint32_t>(live.size()));
  for (const Event* ev : live) {
    s.u64(ev->time);
    s.u64(ev->seq);
    s.u32(table != nullptr ? table->id_of(ev->fn, ev->ctx) : 0);
    s.u64(ev->a);
    s.u64(ev->b);
  }
}

bool EventQueue::load(ser::Deserializer& d, const EventFnTable& table) {
  clear();
  next_seq_ = d.u64();
  const std::uint32_t live_count = d.u32();
  std::vector<Event> loaded;
  loaded.reserve(live_count);
  Cycle min_time = 0;
  for (std::uint32_t i = 0; i < live_count; ++i) {
    Event ev;
    ev.time = d.u64();
    ev.seq = d.u64();
    const std::uint32_t fn_id = d.u32();
    ev.a = d.u64();
    ev.b = d.u64();
    if (!d.ok() || fn_id == 0 || fn_id > table.count()) return false;
    ev.fn = table.fn_of(fn_id);
    ev.ctx = table.ctx_of(fn_id);
    if (loaded.empty() || ev.time < min_time) min_time = ev.time;
    loaded.push_back(ev);
  }
  // Records arrive seq-sorted, not time-sorted: start the cursor at the
  // earliest record's cycle, then route each through the normal insert
  // path. Seq-sorted insertion keeps every bucket in seq order, and
  // save() re-canonicalizes regardless — round-trips are byte-stable.
  cursor_ = min_time;
  for (const Event& ev : loaded) {
    insert(ev);
    ++records_;
  }
  return d.ok();
}

void EventQueue::far_sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!later(far_[parent], far_[i])) break;
    std::swap(far_[parent], far_[i]);
    i = parent;
  }
}

void EventQueue::far_sift_down(std::size_t i) {
  const std::size_t n = far_.size();
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) return;
    const std::size_t last_child = std::min(first_child + 4, n);
    std::size_t smallest = i;
    for (std::size_t c = first_child; c < last_child; ++c)
      if (later(far_[smallest], far_[c])) smallest = c;
    if (smallest == i) return;
    std::swap(far_[i], far_[smallest]);
    i = smallest;
  }
}

Event EventQueue::far_pop_front() {
  Event out = far_.front();
  far_.front() = far_.back();
  far_.pop_back();
  if (!far_.empty()) far_sift_down(0);
  return out;
}

}  // namespace emx::sim
