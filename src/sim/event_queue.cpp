#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace emx::sim {

std::uint32_t EventFnTable::register_fn(EventFn fn, void* ctx) {
  const std::uint32_t existing = id_of(fn, ctx);
  if (existing != 0) return existing;
  entries_.push_back(Entry{fn, ctx});
  return static_cast<std::uint32_t>(entries_.size());
}

std::uint32_t EventFnTable::id_of(EventFn fn, void* ctx) const {
  for (std::size_t i = 0; i < entries_.size(); ++i)
    if (entries_[i].fn == fn && entries_[i].ctx == ctx)
      return static_cast<std::uint32_t>(i + 1);
  return 0;
}

EventFn EventFnTable::fn_of(std::uint32_t id) const {
  EMX_CHECK(id >= 1 && id <= entries_.size(), "unknown event fn id");
  return entries_[id - 1].fn;
}

void* EventFnTable::ctx_of(std::uint32_t id) const {
  EMX_CHECK(id >= 1 && id <= entries_.size(), "unknown event fn id");
  return entries_[id - 1].ctx;
}

std::uint64_t EventQueue::push(Cycle time, EventFn fn, void* ctx,
                               std::uint64_t a, std::uint64_t b) {
  EMX_DCHECK(fn != nullptr, "event without handler");
  const std::uint64_t id = next_seq_++;
  heap_.push_back(Event{time, id, fn, ctx, a, b});
  sift_up(heap_.size() - 1);
  return id;
}

Event EventQueue::pop_front() {
  Event out = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return out;
}

void EventQueue::drop_cancelled_front() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.front().seq);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    (void)pop_front();
  }
}

const Event& EventQueue::top() const {
  // Cancelled records are lazily discarded in pop(); peeking must skip
  // them without mutating, so scan from the heap head. The head is the
  // earliest record; if it is cancelled the const_cast-free option is to
  // let the caller pop — instead we keep top() exact by purging first.
  auto* self = const_cast<EventQueue*>(this);
  self->drop_cancelled_front();
  EMX_DCHECK(!heap_.empty(), "top of empty event queue");
  return heap_.front();
}

Event EventQueue::pop() {
  drop_cancelled_front();
  EMX_DCHECK(!heap_.empty(), "pop from empty event queue");
  return pop_front();
}

void EventQueue::clear() {
  heap_.clear();
  cancelled_.clear();
  next_seq_ = 0;
}

void EventQueue::save(snapshot::Serializer& s, const EventFnTable* table) const {
  s.u64(next_seq_);
  s.u32(static_cast<std::uint32_t>(heap_.size()));
  for (const Event& ev : heap_) {
    s.u64(ev.time);
    s.u64(ev.seq);
    s.u32(table != nullptr ? table->id_of(ev.fn, ev.ctx) : 0);
    s.u64(ev.a);
    s.u64(ev.b);
  }
  // unordered_set iteration order is not deterministic; sort before
  // writing so identical queues always serialize identically.
  std::vector<std::uint64_t> cancelled(cancelled_.begin(), cancelled_.end());
  std::sort(cancelled.begin(), cancelled.end());
  s.u32(static_cast<std::uint32_t>(cancelled.size()));
  for (std::uint64_t id : cancelled) s.u64(id);
}

bool EventQueue::load(snapshot::Deserializer& d, const EventFnTable& table) {
  clear();
  next_seq_ = d.u64();
  const std::uint32_t heap_count = d.u32();
  heap_.reserve(heap_count);
  for (std::uint32_t i = 0; i < heap_count; ++i) {
    Event ev;
    ev.time = d.u64();
    ev.seq = d.u64();
    const std::uint32_t fn_id = d.u32();
    ev.a = d.u64();
    ev.b = d.u64();
    if (!d.ok() || fn_id == 0 || fn_id > table.count()) return false;
    ev.fn = table.fn_of(fn_id);
    ev.ctx = table.ctx_of(fn_id);
    // Records are written in storage order, so appending rebuilds the
    // exact same heap array — no re-heapify, identical tie-breaks.
    heap_.push_back(ev);
  }
  const std::uint32_t cancel_count = d.u32();
  for (std::uint32_t i = 0; i < cancel_count; ++i) cancelled_.insert(d.u64());
  return d.ok();
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = left + 1;
    std::size_t smallest = i;
    if (left < n && later(heap_[smallest], heap_[left])) smallest = left;
    if (right < n && later(heap_[smallest], heap_[right])) smallest = right;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace emx::sim
