#include "sim/event_queue.hpp"

#include <utility>

#include "common/assert.hpp"

namespace emx::sim {

std::uint64_t EventQueue::push(Cycle time, EventFn fn, void* ctx,
                               std::uint64_t a, std::uint64_t b) {
  EMX_DCHECK(fn != nullptr, "event without handler");
  const std::uint64_t id = next_seq_++;
  heap_.push_back(Event{time, id, fn, ctx, a, b});
  sift_up(heap_.size() - 1);
  return id;
}

Event EventQueue::pop_front() {
  Event out = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return out;
}

void EventQueue::drop_cancelled_front() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.front().seq);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    (void)pop_front();
  }
}

const Event& EventQueue::top() const {
  // Cancelled records are lazily discarded in pop(); peeking must skip
  // them without mutating, so scan from the heap head. The head is the
  // earliest record; if it is cancelled the const_cast-free option is to
  // let the caller pop — instead we keep top() exact by purging first.
  auto* self = const_cast<EventQueue*>(this);
  self->drop_cancelled_front();
  EMX_DCHECK(!heap_.empty(), "top of empty event queue");
  return heap_.front();
}

Event EventQueue::pop() {
  drop_cancelled_front();
  EMX_DCHECK(!heap_.empty(), "pop from empty event queue");
  return pop_front();
}

void EventQueue::clear() {
  heap_.clear();
  cancelled_.clear();
  next_seq_ = 0;
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = left + 1;
    std::size_t smallest = i;
    if (left < n && later(heap_[smallest], heap_[left])) smallest = left;
    if (right < n && later(heap_[smallest], heap_[right])) smallest = right;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace emx::sim
