#include "sim/engine.hpp"

namespace emx::sim {

Engine::~Engine() = default;

}  // namespace emx::sim
