// FaultyNetwork: a Network decorator that perturbs packets according to a
// deterministic FaultPlan, covering both fabric models (omega_network and
// fast_network) without modifying either.
//
// Injection side (the "link NIC" of the sender):
//   * every fabric packet is stamped with a link checksum;
//   * the plan may drop the packet (it never enters the fabric),
//     duplicate it (two fabric copies), corrupt it (one payload bit
//     flips after the checksum is stamped), or delay it (jitter and/or
//     stall windows — per-(src,dst) FIFO order is preserved so the
//     fabric's non-overtaking guarantee survives).
// Ejection side (the receiver's NIC): checksums are verified; a mismatch
// discards the packet before the processor sees it — the requester's
// retransmit timer turns the corruption into a recovered drop.
//
// PE outages (FaultConfig::outages) are modelled at both NICs: while a
// processor's window is open, packets it injects die at its own NIC and
// packets addressed to it die at its ejection port — fail-stop in both
// directions. The retransmit protocol repairs the lost traffic once the
// window closes. (The Machine separately freezes the PE's dispatch and
// flushes its IBU at window start.)
//
// Every injected fault is counted in the FaultDomain ledger and emitted
// as a trace::EventType::kFaultInject event (info = kind | seq << 8).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/reliability.hpp"
#include "network/network_iface.hpp"
#include "trace/trace.hpp"

namespace emx::fault {

class FaultyNetwork final : public net::Network {
 public:
  FaultyNetwork(sim::SimContext& sim, std::unique_ptr<net::Network> inner,
                std::uint32_t proc_count, const FaultConfig& config,
                FaultDomain& domain, trace::TraceSink* sink);

  void inject(const net::Packet& packet) override;
  unsigned hop_count(ProcId src, ProcId dst) const override {
    return inner_->hop_count(src, dst);
  }
  std::string name() const override { return inner_->name() + "+faults"; }
  /// The wrapped fabric's counters: what physically crossed the switches
  /// (duplicates included; checksum-discarded packets count as delivered
  /// by the fabric — the NIC, not the fabric, threw them away).
  const net::NetworkStats& stats() const override { return inner_->stats(); }

  net::Network& inner() { return *inner_; }
  const FaultPlan& plan() const { return plan_; }
  /// Mutable plan access so the Machine can adopt the plan's RNG stream
  /// into the rng::StreamRegistry.
  FaultPlan& mutable_plan() { return plan_; }

  void save_state(snapshot::Serializer& s) const override {
    plan_.save(s);
    for (Cycle c : link_release_) s.u64(c);
    std::uint32_t live = 0;
    for (const Held& h : pool_)
      if (h.in_use) ++live;
    s.u32(live);
    for (std::uint32_t i = 0; i < pool_.size(); ++i) {
      if (!pool_[i].in_use) continue;
      s.u32(i);
      pool_[i].packet.save(s);
    }
    inner_->save_state(s);
  }

 private:
  struct Held {
    net::Packet packet;
    std::uint32_t next_free = 0;
    bool in_use = false;
  };

  static void inner_delivery_thunk(void* ctx, const net::Packet& packet);
  static void release_event(void* ctx, std::uint64_t idx, std::uint64_t);
  void note(FaultKind kind, const net::Packet& packet, ProcId at);
  void send_at(const net::Packet& packet, Cycle release);
  std::uint32_t hold(const net::Packet& packet);
  bool pe_in_outage(ProcId pe, Cycle now) const;

  sim::SimContext& sim_;
  std::unique_ptr<net::Network> inner_;
  FaultPlan plan_;
  FaultDomain& domain_;
  trace::TraceSink* sink_;

  /// Per-(src,dst) earliest fabric-entry cycle: delayed packets must not
  /// be overtaken by later undelayed ones on the same link.
  std::uint32_t proc_count_;
  std::vector<Cycle> link_release_;
  std::vector<OutageWindow> outages_;

  std::vector<Held> pool_;
  std::uint32_t free_head_ = 0xFFFFFFFFu;
};

}  // namespace emx::fault
