#include "fault/reliability.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "fault/fault_plan.hpp"

namespace emx::fault {

// ------------------------------------------------------------ FaultDomain

void FaultDomain::note_lost(std::uint32_t seq) {
  EMX_CHECK(seq != 0, "recoverable fault on an unsequenced packet");
  if (!live_.contains(seq)) {
    // The fault hit a stale retransmit (or its reply): the read already
    // completed via an earlier copy, so nothing was actually lost.
    ++report_.stale_losses;
    return;
  }
  ++report_.injected_recoverable;
  ++pending_[seq];
  ++pending_total_;
}

void FaultDomain::note_completed(std::uint32_t seq) {
  live_.erase(seq);
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  report_.recovered += it->second;
  pending_total_ -= it->second;
  pending_.erase(it);
}

// ------------------------------------------------------------- RetryAgent

RetryAgent::RetryAgent(sim::SimContext& sim, const FaultConfig& config,
                       ProcId proc, proc::OutputBufferUnit& obu,
                       proc::ExecutionUnit& exu, FaultDomain& domain,
                       Cycle retransmit_charge_cycles, trace::TraceSink* sink)
    : sim_(sim),
      config_(config),
      proc_(proc),
      obu_(obu),
      exu_(exu),
      domain_(domain),
      retransmit_charge_cycles_(retransmit_charge_cycles),
      sink_(sink) {}

RetryAgent::~RetryAgent() = default;

void RetryAgent::emit(trace::EventType type, ThreadId thread,
                      std::uint64_t info) {
  if (sink_ == nullptr) return;
  sink_->on_event(trace::TraceEvent{sim_.now(), proc_, thread, type, info});
}

void RetryAgent::on_send(net::Packet& request) {
  EMX_DCHECK(is_tracked_kind(request.kind), "untracked kind in retry table");
  request.req_seq = domain_.next_seq();
  ++stats_.reads_tracked;
  Entry entry;
  entry.request = request;
  entry.first_issue = sim_.now();
  entry.timeout = config_.timeout_cycles;
  entry.timer_id = sim_.schedule(entry.timeout, &RetryAgent::timeout_event,
                                 this, request.req_seq, 0);
  const bool inserted =
      outstanding_.emplace(request.req_seq, std::move(entry)).second;
  EMX_CHECK(inserted, "request sequence number reused");
}

bool RetryAgent::on_reply(const net::Packet& reply) {
  if (reply.req_seq == 0) return true;  // unsequenced (pre-protocol) packet
  const auto it = outstanding_.find(reply.req_seq);
  if (it == outstanding_.end()) {
    // The request already completed — this is a duplicate produced by the
    // fabric or by a spurious retransmit. Suppress before the thread
    // engine sees it (its continuation was already consumed).
    ++stats_.dup_replies_suppressed;
    return false;
  }
  Entry& entry = it->second;
  sim_.cancel(entry.timer_id);
  if (entry.retries > 0) {
    ++stats_.reads_recovered;
    stats_.worst_recovery_cycles =
        std::max(stats_.worst_recovery_cycles, sim_.now() - entry.first_issue);
  }
  domain_.note_completed(reply.req_seq);
  outstanding_.erase(it);
  return true;
}

void RetryAgent::timeout_event(void* ctx, std::uint64_t seq, std::uint64_t) {
  static_cast<RetryAgent*>(ctx)->handle_timeout(static_cast<std::uint32_t>(seq));
}

void RetryAgent::handle_timeout(std::uint32_t seq) {
  const auto it = outstanding_.find(seq);
  EMX_CHECK(it != outstanding_.end(),
            "retransmit timer fired for a completed request (cancel missed)");
  Entry& entry = it->second;
  ++stats_.timeouts;
  ++entry.retries;
  EMX_CHECK(entry.retries <= config_.max_retries,
            "read retransmit limit exceeded — fault not recoverable");
  emit(trace::EventType::kReadTimeout, entry.request.cont_thread, seq);

  // Retransmit the saved request unchanged (same seq, same continuation).
  // The send instruction is re-executed, so its cycles are charged like
  // any other packet-generation overhead — retries are never free.
  ++stats_.retries;
  exu_.charge(proc::CycleBucket::kOverhead, retransmit_charge_cycles_);
  obu_.send(entry.request);
  emit(trace::EventType::kReadRetry, entry.request.cont_thread, entry.retries);

  entry.timeout *= config_.backoff_mult;
  entry.timer_id =
      sim_.schedule(entry.timeout, &RetryAgent::timeout_event, this, seq, 0);
}

}  // namespace emx::fault
