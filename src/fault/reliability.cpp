#include "fault/reliability.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/assert.hpp"
#include "core/instrumentation.hpp"
#include "fault/fault_plan.hpp"

namespace emx::fault {

// ------------------------------------------------------------ FaultDomain

std::uint32_t FaultDomain::next_seq() {
  EMX_CHECK(last_seq_ != 0xFFFFFFFFu,
            "request sequence number wrapped around 32 bits");
  const std::uint32_t seq = ++last_seq_;
  live_.insert(seq);
  report_.peak_ledger_live =
      std::max<std::uint64_t>(report_.peak_ledger_live, live_.size());
  return seq;
}

void FaultDomain::note_lost(std::uint32_t seq) {
  if (seq == 0) {
    // Unsequenced packet (reliability disabled, or host-injected traffic):
    // no retransmit path exists, so the loss is final. Tallied for the
    // report and for the watchdog's diagnosis.
    ++report_.unsequenced_losses;
    return;
  }
  if (!live_.contains(seq)) {
    // The fault hit a stale retransmit (or its reply/ACK): the request
    // already completed via an earlier copy, so nothing was actually lost.
    ++report_.stale_losses;
    return;
  }
  ++report_.injected_recoverable;
  ++pending_[seq];
  ++pending_total_;
}

void FaultDomain::note_completed(std::uint32_t seq) {
  live_.erase(seq);
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  report_.recovered += it->second;
  pending_total_ -= it->second;
  pending_.erase(it);
}

// -------------------------------------------------------- ReliableChannel

ReliableChannel::ReliableChannel(sim::SimContext& sim,
                                 const FaultConfig& config, ProcId proc,
                                 proc::OutputBufferUnit& obu,
                                 proc::ExecutionUnit& exu, FaultDomain& domain,
                                 Cycle retransmit_charge_cycles,
                                 trace::TraceSink* sink)
    : sim_(sim),
      config_(config),
      proc_(proc),
      obu_(obu),
      exu_(exu),
      domain_(domain),
      retransmit_charge_cycles_(retransmit_charge_cycles),
      sink_(sink) {}

ReliableChannel::~ReliableChannel() = default;

void ReliableChannel::emit(trace::EventType type, ThreadId thread,
                           std::uint64_t info) {
  if (sink_ == nullptr) return;
  sink_->on_event(trace::TraceEvent{sim_.now(), proc_, thread, type, info});
}

// ---------------------------------------------------------- sender role

bool ReliableChannel::on_obu_send(net::Packet& packet) {
  if (packet.req_seq != 0) {
    // Retransmit, or a read reply echoing the requester's seq. The only
    // fence-relevant case: a block-read resume (kBlockReadReply) must not
    // overtake the word-writes streamed to the same requester — if any are
    // still awaiting their ACK, hold the resume behind them.
    if (packet.kind == net::PacketKind::kBlockReadReply && !releasing_fence_ &&
        packet.dst != proc_) {
      std::vector<std::uint32_t> blockers =
          write_blockers(packet.dst, /*any_dst=*/false);
      if (!blockers.empty()) {
        ++stats_.fence_holds;
        fence_.push_back(FenceWaiter{packet, std::move(blockers)});
        return false;
      }
    }
    return true;
  }
  if (packet.dst == proc_) return true;  // self loopback: bypasses the fabric
  Class cls;
  switch (packet.kind) {
    case net::PacketKind::kRemoteReadReq:
    case net::PacketKind::kBlockReadReq:
      cls = Class::kRead;
      break;
    case net::PacketKind::kRemoteWrite:
    case net::PacketKind::kInvoke:
      cls = Class::kMsg;
      break;
    default:
      return true;  // ACKs and unsequenced replies are never tracked
  }

  packet.req_seq = domain_.next_seq();
  if (cls == Class::kRead) {
    ++stats_.reads_tracked;
    // Block-read requests are dedup'd at the responder (re-servicing one
    // streams side-effecting writes), so they ride a stream of their own.
    if (packet.kind == net::PacketKind::kBlockReadReq)
      packet.chan_seq = ++chan_next_[stream_key(packet.dst, packet.kind)];
  } else {
    packet.chan_seq = ++chan_next_[stream_key(packet.dst, packet.kind)];
    ++stats_.msgs_tracked;
  }

  // An invoke asserts every write this PE issued before it has landed
  // (barrier joins say "my phase's data is visible"). With retransmission
  // in play that is only true once those writes are ACKed, so an invoke
  // behind outstanding writes waits at the fence — tracked, but its
  // retransmit timer arms only when it actually leaves.
  std::vector<std::uint32_t> blockers;
  if (packet.kind == net::PacketKind::kInvoke && !releasing_fence_)
    blockers = write_blockers(packet.dst, /*any_dst=*/true);

  Entry entry;
  entry.request = packet;
  entry.first_issue = sim_.now();
  entry.timeout = config_.timeout_cycles;
  entry.cls = cls;
  entry.timer_id =
      blockers.empty()
          ? sim_.schedule(entry.timeout, &ReliableChannel::timeout_event, this,
                          packet.req_seq, 0)
          : kNoTimer;
  const bool inserted =
      outstanding_.emplace(packet.req_seq, std::move(entry)).second;
  EMX_CHECK(inserted, "request sequence number reused");
  stats_.peak_outstanding =
      std::max<std::uint64_t>(stats_.peak_outstanding, outstanding_.size());
  if (!blockers.empty()) {
    ++stats_.fence_holds;
    fence_.push_back(FenceWaiter{packet, std::move(blockers)});
    return false;
  }
  return true;
}

std::vector<std::uint32_t> ReliableChannel::write_blockers(
    ProcId dst, bool any_dst) const {
  std::vector<std::uint32_t> blockers;
  for (const auto& [seq, entry] : outstanding_) {
    if (entry.request.kind != net::PacketKind::kRemoteWrite) continue;
    if (!any_dst && entry.request.dst != dst) continue;
    blockers.push_back(seq);
  }
  std::sort(blockers.begin(), blockers.end());
  return blockers;
}

void ReliableChannel::release_fence() {
  while (!fence_.empty() && fence_.front().blockers.empty()) {
    const net::Packet packet = fence_.front().packet;
    fence_.pop_front();
    // Held invokes own an entry whose timer was deferred; arm it now that
    // the packet really enters the fabric. (A block-read resume's req_seq
    // belongs to the remote requester — seqs are globally unique, so it
    // can never alias an entry in this table.)
    const auto it = outstanding_.find(packet.req_seq);
    if (it != outstanding_.end() && it->second.timer_id == kNoTimer) {
      it->second.timer_id =
          sim_.schedule(it->second.timeout, &ReliableChannel::timeout_event,
                        this, packet.req_seq, 0);
    }
    releasing_fence_ = true;
    obu_.send(packet);
    releasing_fence_ = false;
  }
}

bool ReliableChannel::on_reply_accept(const net::Packet& reply) {
  if (reply.req_seq == 0) return true;  // unsequenced (protocol disabled)
  const auto it = outstanding_.find(reply.req_seq);
  if (it == outstanding_.end()) {
    // The request already retired — a duplicate produced by the fabric or
    // by a spurious retransmit. Suppress before the thread engine sees it
    // (its continuation was already consumed).
    ++stats_.dup_replies_suppressed;
    return false;
  }
  Entry& entry = it->second;
  if (entry.reply_seen) {
    // An identical reply is already queued in the IBU awaiting dispatch.
    ++stats_.dup_replies_suppressed;
    return false;
  }
  // Mark, but keep the timer armed and the entry live: if a PE outage
  // flushes this reply out of the IBU before dispatch, the timer is the
  // only thing left that can recover the read.
  entry.reply_seen = true;
  return true;
}

void ReliableChannel::on_reply_dispatched(const net::Packet& reply) {
  if (reply.req_seq == 0) return;
  retire(reply.req_seq);
}

void ReliableChannel::on_ack(const net::Packet& ack) {
  const auto it = outstanding_.find(ack.req_seq);
  if (it == outstanding_.end()) {
    // The message already retired via an earlier ACK copy.
    ++stats_.dup_acks_ignored;
    return;
  }
  EMX_CHECK(it->second.cls == Class::kMsg, "ACK for a read request");
  retire(ack.req_seq);
}

void ReliableChannel::retire(std::uint32_t seq) {
  const auto it = outstanding_.find(seq);
  EMX_CHECK(it != outstanding_.end(), "retiring an unknown request");
  Entry& entry = it->second;
  if (entry.timer_id != kNoTimer) sim_.cancel(entry.timer_id);
  if (entry.retries > 0) {
    if (entry.cls == Class::kRead)
      ++stats_.reads_recovered;
    else
      ++stats_.msgs_recovered;
    stats_.worst_recovery_cycles =
        std::max(stats_.worst_recovery_cycles, sim_.now() - entry.first_issue);
  }
  domain_.note_completed(seq);
  outstanding_.erase(it);
  if (!fence_.empty()) {
    for (FenceWaiter& w : fence_) std::erase(w.blockers, seq);
    release_fence();
  }
}

void ReliableChannel::timeout_event(void* ctx, std::uint64_t seq,
                                    std::uint64_t) {
  static_cast<ReliableChannel*>(ctx)->handle_timeout(
      static_cast<std::uint32_t>(seq));
}

void ReliableChannel::handle_timeout(std::uint32_t seq) {
  const auto it = outstanding_.find(seq);
  EMX_CHECK(it != outstanding_.end(),
            "retransmit timer fired for a retired request (cancel missed)");
  Entry& entry = it->second;
  if (entry.cls == Class::kRead && entry.reply_seen) {
    // The reply is sitting in the IBU behind other traffic; retransmitting
    // would only breed duplicates. Re-arm and wait for dispatch (an outage
    // flush clears reply_seen, re-enabling the retransmit path).
    entry.timeout *= config_.backoff_mult;
    entry.timer_id = sim_.schedule(entry.timeout,
                                   &ReliableChannel::timeout_event, this, seq, 0);
    return;
  }
  ++stats_.timeouts;
  ++entry.retries;
  EMX_CHECK(entry.retries <= config_.max_retries,
            "retransmit limit exceeded — fault not recoverable");
  emit(trace::EventType::kReadTimeout, entry.request.cont_thread, seq);

  // Retransmit the saved packet unchanged (same seqs, same continuation).
  // The send instruction is re-executed, so its cycles are charged like
  // any other packet-generation overhead — retries are never free.
  exu_.charge(proc::CycleBucket::kOverhead, retransmit_charge_cycles_);
  obu_.send(entry.request);
  if (entry.cls == Class::kRead) {
    ++stats_.retries;
    emit(trace::EventType::kReadRetry, entry.request.cont_thread,
         entry.retries);
  } else {
    ++stats_.msg_retransmits;
    emit(trace::EventType::kMsgRetransmit, entry.request.cont_thread, seq);
  }

  entry.timeout *= config_.backoff_mult;
  entry.timer_id = sim_.schedule(entry.timeout, &ReliableChannel::timeout_event,
                                 this, seq, 0);
}

// -------------------------------------------------------- receiver role

bool ReliableChannel::accept_msg(const net::Packet& msg) {
  if (msg.chan_seq == 0) return true;  // unsequenced (protocol disabled)
  Window& w = windows_[stream_key(msg.src, msg.kind)];
  if (msg.chan_seq <= w.floor || w.applied.contains(msg.chan_seq)) {
    // Already applied: the side effect happened, but the sender keeps
    // retransmitting until it hears an ACK — so re-ACK every duplicate.
    ++stats_.dup_msgs_suppressed;
    send_ack(msg);
    return false;
  }
  if (w.pending.contains(msg.chan_seq)) {
    // A copy is queued in the IBU but its side effect has not happened
    // yet. No ACK: acknowledging now would stop the retransmits that are
    // the only recovery if an outage flushes the pending copy.
    ++stats_.dup_msgs_suppressed;
    return false;
  }
  if (msg.kind == net::PacketKind::kRemoteWrite) {
    // The DMA commits the write synchronously at accept, so it is applied
    // (and ACK-able) the moment we return true.
    w.applied.insert(msg.chan_seq);
    while (w.applied.erase(w.floor + 1) == 1) ++w.floor;
    send_ack(msg);
    return true;
  }
  // Invoke: the side effect (frame allocation, thread start) happens at
  // IBU dispatch. Park it in pending until then.
  w.pending.insert(msg.chan_seq);
  return true;
}

void ReliableChannel::on_invoke_dispatched(const net::Packet& msg) {
  Window& w = windows_[stream_key(msg.src, msg.kind)];
  const bool was_pending = w.pending.erase(msg.chan_seq) == 1;
  EMX_CHECK(was_pending, "dispatched invoke missing from the dedup window");
  w.applied.insert(msg.chan_seq);
  while (w.applied.erase(w.floor + 1) == 1) ++w.floor;
  send_ack(msg);
}

ReliableChannel::BlockReadVerdict ReliableChannel::accept_block_read(
    const net::Packet& req) {
  if (req.chan_seq == 0) return BlockReadVerdict::kService;  // unsequenced
  Window& w = windows_[stream_key(req.src, req.kind)];
  if (req.chan_seq <= w.floor || w.applied.contains(req.chan_seq)) {
    // The original service already launched; its word-writes repair
    // themselves, so only the resuming word (which has no timer of its
    // own) might still be missing at the requester.
    ++stats_.dup_msgs_suppressed;
    return BlockReadVerdict::kResendResume;
  }
  if (w.pending.contains(req.chan_seq)) {
    // A copy is queued in the IBU awaiting its EM-4 service thread; that
    // service will emit the whole stream.
    ++stats_.dup_msgs_suppressed;
    return BlockReadVerdict::kSuppress;
  }
  w.pending.insert(req.chan_seq);
  return BlockReadVerdict::kService;
}

void ReliableChannel::on_block_read_serviced(const net::Packet& req) {
  if (req.chan_seq == 0) return;
  Window& w = windows_[stream_key(req.src, req.kind)];
  const bool was_pending = w.pending.erase(req.chan_seq) == 1;
  EMX_CHECK(was_pending, "serviced block read missing from the dedup window");
  w.applied.insert(req.chan_seq);
  while (w.applied.erase(w.floor + 1) == 1) ++w.floor;
  // No ACK: the requester's entry retires when the resume dispatches.
}

void ReliableChannel::on_packet_flushed(const net::Packet& packet) {
  switch (packet.kind) {
    case net::PacketKind::kInvoke:
    case net::PacketKind::kBlockReadReq:
      // Never ACKed, so the sender will retransmit; forget the pending
      // mark so the retransmit is treated as fresh. (Block-read requests
      // only wait in the IBU in EM-4 service mode.)
      if (packet.chan_seq != 0)
        windows_[stream_key(packet.src, packet.kind)].pending.erase(
            packet.chan_seq);
      break;
    case net::PacketKind::kRemoteReadReply:
    case net::PacketKind::kBlockReadReply:
      // The reply never reached the thread engine; re-open the dedup gate
      // so the timer's retransmit can fetch it again.
      if (packet.req_seq != 0) {
        const auto it = outstanding_.find(packet.req_seq);
        if (it != outstanding_.end()) it->second.reply_seen = false;
      }
      break;
    default:
      break;
  }
}

void ReliableChannel::send_ack(const net::Packet& msg) {
  net::Packet ack;
  ack.kind = net::PacketKind::kAck;
  ack.priority = net::PacketPriority::kHigh;
  ack.src = proc_;
  ack.dst = msg.src;
  ack.req_seq = msg.req_seq;
  ++stats_.acks_sent;
  emit(trace::EventType::kAckSend, kInvalidThread, msg.req_seq);
  // NIC-level acknowledgement: no EXU instruction runs, so no cycle
  // charge — only the OBU occupancy and fabric latency are modelled.
  obu_.send(ack);
}

void ReliableChannel::append_outstanding(std::string& out) const {
  std::vector<std::uint32_t> seqs;
  seqs.reserve(outstanding_.size());
  for (const auto& [seq, entry] : outstanding_) seqs.push_back(seq);
  std::sort(seqs.begin(), seqs.end());
  for (const std::uint32_t seq : seqs) {
    const Entry& entry = outstanding_.at(seq);
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "    seq=%u %s dst=%u retries=%u age=%llu%s\n", seq,
                  net::to_string(entry.request.kind), entry.request.dst,
                  entry.retries,
                  static_cast<unsigned long long>(sim_.now() -
                                                  entry.first_issue),
                  entry.reply_seen      ? " (reply in IBU)"
                  : entry.timer_id == kNoTimer ? " (fence-held)"
                                               : "");
    out += buf;
  }
}

namespace {

template <typename Map>
std::vector<typename Map::key_type> sorted_keys(const Map& map) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

void FaultDomain::save(snapshot::Serializer& s) const {
  s.u32(last_seq_);
  std::vector<std::uint32_t> live(live_.begin(), live_.end());
  std::sort(live.begin(), live.end());
  s.u32(static_cast<std::uint32_t>(live.size()));
  for (std::uint32_t seq : live) s.u32(seq);
  s.u32(static_cast<std::uint32_t>(pending_.size()));
  for (std::uint32_t seq : sorted_keys(pending_)) {
    s.u32(seq);
    s.u32(pending_.at(seq));
  }
  s.u64(pending_total_);
  report_.save(s);
}

void FaultDomain::describe_stall(std::string& out, bool /*quiescent*/) const {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "  fault ledger: pending_losses=%llu unsequenced_losses=%llu\n",
                static_cast<unsigned long long>(pending_total_),
                static_cast<unsigned long long>(report_.unsequenced_losses));
  out += buf;
  if (report_.unsequenced_losses > 0)
    out += "  hint: unsequenced packets were lost with reliability disabled — "
           "nothing will ever retransmit them\n";
}

void FaultDomain::contribute(MachineReport& report) const {
  report.fault_enabled = true;
  report.fault.injected = report_.injected;
  report.fault.injected_recoverable = report_.injected_recoverable;
  report.fault.recovered = report_.recovered;
  report.fault.corrupt_discarded = report_.corrupt_discarded;
  report.fault.stale_losses = report_.stale_losses;
  report.fault.unsequenced_losses = report_.unsequenced_losses;
  report.fault.peak_ledger_live = report_.peak_ledger_live;
}

void ReliableChannel::save(snapshot::Serializer& s) const {
  s.u32(static_cast<std::uint32_t>(outstanding_.size()));
  for (std::uint32_t seq : sorted_keys(outstanding_)) {
    const Entry& entry = outstanding_.at(seq);
    s.u32(seq);
    entry.request.save(s);
    s.u64(entry.first_issue);
    s.u64(entry.timeout);
    s.u32(entry.retries);
    // timer_id is an event-queue sequence number — process-independent
    // and deterministic, so it serializes as-is.
    s.u64(entry.timer_id);
    s.u8(static_cast<std::uint8_t>(entry.cls));
    s.boolean(entry.reply_seen);
  }
  s.u32(static_cast<std::uint32_t>(chan_next_.size()));
  for (std::uint64_t key : sorted_keys(chan_next_)) {
    s.u64(key);
    s.u32(chan_next_.at(key));
  }
  s.u32(static_cast<std::uint32_t>(windows_.size()));
  for (std::uint64_t key : sorted_keys(windows_)) {
    const Window& w = windows_.at(key);
    s.u64(key);
    s.u32(w.floor);
    for (const auto* set : {&w.applied, &w.pending}) {
      std::vector<std::uint32_t> seqs(set->begin(), set->end());
      std::sort(seqs.begin(), seqs.end());
      s.u32(static_cast<std::uint32_t>(seqs.size()));
      for (std::uint32_t seq : seqs) s.u32(seq);
    }
  }
  s.u32(static_cast<std::uint32_t>(fence_.size()));
  for (const FenceWaiter& waiter : fence_) {
    waiter.packet.save(s);
    s.u32(static_cast<std::uint32_t>(waiter.blockers.size()));
    for (std::uint32_t seq : waiter.blockers) s.u32(seq);
  }
  s.boolean(releasing_fence_);
  stats_.save(s);
}

}  // namespace emx::fault
