#include "fault/fault_stats.hpp"

#include <sstream>

namespace emx::fault {

std::string FaultReport::summary_text() const {
  std::ostringstream out;
  out << "fault injection:\n";
  out << "  injected          : " << injected_total();
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    if (injected[k] == 0) continue;
    out << "  " << to_string(static_cast<FaultKind>(k)) << "=" << injected[k];
  }
  out << "\n";
  out << "  recoverable       : " << injected_recoverable
      << "  recovered=" << recovered << "\n";
  out << "  corrupt discarded : " << corrupt_discarded << "\n";
  if (stale_losses > 0)
    out << "  stale losses      : " << stale_losses
        << " (hit already-answered retransmits)\n";
  out << "reliability protocol:\n";
  out << "  reads tracked     : " << reads_tracked << "\n";
  out << "  timeouts          : " << timeouts << "  retries=" << retries
      << "\n";
  out << "  dup replies culled: " << dup_replies_suppressed << "\n";
  out << "  reads recovered   : " << reads_recovered
      << "  worst recovery=" << worst_recovery_cycles << " cycles\n";
  return out.str();
}

}  // namespace emx::fault
