#include "fault/fault_stats.hpp"

#include <sstream>

namespace emx::fault {

std::string FaultReport::summary_text() const {
  std::ostringstream out;
  out << "fault injection:\n";
  out << "  injected          : " << injected_total();
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    if (injected[k] == 0) continue;
    out << "  " << to_string(static_cast<FaultKind>(k)) << "=" << injected[k];
  }
  out << "\n";
  out << "  recoverable       : " << injected_recoverable
      << "  recovered=" << recovered << "\n";
  out << "  corrupt discarded : " << corrupt_discarded << "\n";
  if (stale_losses > 0)
    out << "  stale losses      : " << stale_losses
        << " (hit already-answered retransmits)\n";
  if (unsequenced_losses > 0)
    out << "  unsequenced losses: " << unsequenced_losses
        << " (UNRECOVERABLE: packet carried no sequence number)\n";
  out << "reliability protocol:\n";
  out << "  reads tracked     : " << reads_tracked
      << "  msgs tracked=" << msgs_tracked << "\n";
  out << "  timeouts          : " << timeouts << "  retries=" << retries
      << "  msg retransmits=" << msg_retransmits << "\n";
  out << "  acks sent         : " << acks_sent << "\n";
  out << "  duplicates culled : replies=" << dup_replies_suppressed
      << "  msgs=" << dup_msgs_suppressed << "  acks=" << dup_acks_ignored
      << "\n";
  out << "  recovered         : reads=" << reads_recovered
      << "  msgs=" << msgs_recovered
      << "  worst recovery=" << worst_recovery_cycles << " cycles\n";
  out << "  fence holds       : " << fence_holds << "\n";
  out << "  peak tables       : ledger=" << peak_ledger_live
      << "  outstanding=" << peak_outstanding << "\n";
  return out.str();
}

}  // namespace emx::fault
