// Counters surfaced by the fault-injection & reliability subsystem.
//
// The invariant the Machine asserts after every faulted run: every
// information-losing fault (drop or corruption of a tracked read packet)
// is eventually recovered by the retransmit protocol —
//   recovered == injected_recoverable
// with no outstanding requests left in any per-PE table.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "fault/fault_config.hpp"
#include "common/serializer.hpp"

namespace emx::fault {

struct FaultReport {
  /// Faults injected by the plan, by kind (kDrop..kPeOutage).
  std::array<std::uint64_t, kFaultKindCount> injected{};
  /// Drops + corruptions of sequenced packets — the faults that lose
  /// information and need the protocol to put it back.
  std::uint64_t injected_recoverable = 0;
  /// Recoverable faults whose request later completed (read answered, or
  /// message acknowledged).
  std::uint64_t recovered = 0;
  /// Corrupted packets caught by the checksum at the ejection port and
  /// discarded before reaching the processor.
  std::uint64_t corrupt_discarded = 0;
  /// Drops/corruptions that hit a stale retransmit — a packet whose
  /// request had already completed via an earlier copy. Nothing was lost,
  /// so these are not counted as recoverable.
  std::uint64_t stale_losses = 0;
  /// Lossy faults that hit unsequenced packets (reliability disabled, or
  /// host-injected traffic): nothing will recover these. Nonzero here
  /// plus a hang is exactly what the watchdog exists to diagnose.
  std::uint64_t unsequenced_losses = 0;

  // --- reliability protocol activity (summed over PEs) ---
  std::uint64_t reads_tracked = 0;       ///< sequenced split-phase reads
  std::uint64_t msgs_tracked = 0;        ///< sequenced writes/invokes/joins
  std::uint64_t timeouts = 0;            ///< retransmit timers that fired
  std::uint64_t retries = 0;             ///< read request packets re-sent
  std::uint64_t msg_retransmits = 0;     ///< write/invoke packets re-sent
  std::uint64_t acks_sent = 0;           ///< kAck packets emitted by receivers
  std::uint64_t dup_replies_suppressed = 0;
  std::uint64_t dup_msgs_suppressed = 0;  ///< duplicate writes/invokes culled
  std::uint64_t dup_acks_ignored = 0;     ///< ACKs for already-retired seqs
  std::uint64_t reads_recovered = 0;     ///< reads that needed >= 1 retry
  std::uint64_t msgs_recovered = 0;      ///< messages that needed >= 1 resend
  /// Packets held at the OBU by the write fence (invokes behind unACKed
  /// writes, block-read resumes behind their word-writes).
  std::uint64_t fence_holds = 0;
  /// Worst issue-to-completion latency over recovered requests (cycles):
  /// the recovery cost multithreading gets to hide.
  Cycle worst_recovery_cycles = 0;

  // --- memory bounds (satellite: the ledger must not grow unboundedly) ---
  std::uint64_t peak_ledger_live = 0;     ///< peak FaultDomain live_ size
  std::uint64_t peak_outstanding = 0;     ///< peak per-PE outstanding table

  std::uint64_t injected_total() const {
    std::uint64_t sum = 0;
    for (const auto n : injected) sum += n;
    return sum;
  }

  std::string summary_text() const;

  void save(snapshot::Serializer& s) const {
    for (std::uint64_t n : injected) s.u64(n);
    s.u64(injected_recoverable);
    s.u64(recovered);
    s.u64(corrupt_discarded);
    s.u64(stale_losses);
    s.u64(unsequenced_losses);
    s.u64(reads_tracked);
    s.u64(msgs_tracked);
    s.u64(timeouts);
    s.u64(retries);
    s.u64(msg_retransmits);
    s.u64(acks_sent);
    s.u64(dup_replies_suppressed);
    s.u64(dup_msgs_suppressed);
    s.u64(dup_acks_ignored);
    s.u64(reads_recovered);
    s.u64(msgs_recovered);
    s.u64(fence_holds);
    s.u64(worst_recovery_cycles);
    s.u64(peak_ledger_live);
    s.u64(peak_outstanding);
  }
};

}  // namespace emx::fault
