#include "fault/faulty_network.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace emx::fault {

namespace {
constexpr std::uint32_t kNoFree = 0xFFFFFFFFu;
}

FaultyNetwork::FaultyNetwork(sim::SimContext& sim,
                             std::unique_ptr<net::Network> inner,
                             std::uint32_t proc_count,
                             const FaultConfig& config, FaultDomain& domain,
                             trace::TraceSink* sink)
    : sim_(sim),
      inner_(std::move(inner)),
      plan_(config),
      domain_(domain),
      sink_(sink),
      proc_count_(proc_count),
      link_release_(static_cast<std::size_t>(proc_count) * proc_count, 0),
      outages_(config.outages) {
  // All fabric deliveries detour through the checksum check before they
  // reach whatever handler the Machine installs on this decorator.
  inner_->set_delivery(&FaultyNetwork::inner_delivery_thunk, this);
}

void FaultyNetwork::note(FaultKind kind, const net::Packet& packet,
                         ProcId at) {
  domain_.note_injected(kind);
  if (sink_ != nullptr) {
    const std::uint64_t info =
        (static_cast<std::uint64_t>(packet.req_seq) << 8) |
        static_cast<std::uint64_t>(kind);
    sink_->on_event(trace::TraceEvent{sim_.now(), at, packet.cont_thread,
                                      trace::EventType::kFaultInject, info});
  }
}

bool FaultyNetwork::pe_in_outage(ProcId pe, Cycle now) const {
  for (const auto& w : outages_)
    if (w.pe == pe && now >= w.begin && now < w.end) return true;
  return false;
}

std::uint32_t FaultyNetwork::hold(const net::Packet& packet) {
  std::uint32_t idx;
  if (free_head_ != kNoFree) {
    idx = free_head_;
    free_head_ = pool_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  pool_[idx].packet = packet;
  pool_[idx].in_use = true;
  return idx;
}

void FaultyNetwork::release_event(void* ctx, std::uint64_t idx64, std::uint64_t) {
  auto* self = static_cast<FaultyNetwork*>(ctx);
  auto idx = static_cast<std::uint32_t>(idx64);
  Held& rec = self->pool_[idx];
  EMX_DCHECK(rec.in_use, "release of freed held packet");
  const net::Packet packet = rec.packet;
  rec.in_use = false;
  rec.next_free = self->free_head_;
  self->free_head_ = idx;
  self->inner_->inject(packet);
}

void FaultyNetwork::send_at(const net::Packet& packet, Cycle release) {
  if (release <= sim_.now()) {
    inner_->inject(packet);
    return;
  }
  sim_.schedule_at(release, &FaultyNetwork::release_event, this, hold(packet), 0);
}

void FaultyNetwork::inject(const net::Packet& packet) {
  // Self packets never cross the fabric: the OBU->IBU loopback is on-chip
  // and outside the fault model.
  if (packet.src == packet.dst) {
    inner_->inject(packet);
    return;
  }

  net::Packet p = packet;
  if (is_tracked_kind(p.kind)) p.checksum = packet_checksum(p);

  // A PE in outage has a dead NIC: nothing it sends reaches the link.
  // (The plan's RNG stream is not consumed — the packet never gets as far
  // as the fault lottery — which is still deterministic because outage
  // windows are part of the seeded plan.)
  if (pe_in_outage(p.src, sim_.now())) {
    note(FaultKind::kPeOutage, p, p.src);
    domain_.note_lost(p.req_seq);
    return;
  }

  const FaultDecision d = plan_.decide(p, sim_.now());

  if (d.drop) {
    note(FaultKind::kDrop, p, p.src);
    domain_.note_lost(p.req_seq);
    return;  // the fabric never sees it; the retransmit timer recovers
  }
  if (d.corrupt) {
    note(FaultKind::kCorrupt, p, p.src);
    domain_.note_lost(p.req_seq);
    p.data ^= Word{1} << d.corrupt_bit;  // checksum already stamped: mismatch
  }

  Cycle release = sim_.now();
  if (d.stall_until > release) {
    note(FaultKind::kStall, p, p.src);
    release = d.stall_until;
  }
  if (d.jitter > 0) {
    note(FaultKind::kDelay, p, p.src);
    release += d.jitter;
  }
  // FIFO floor per link: a later packet on (src,dst) never enters the
  // fabric before an earlier delayed one, preserving non-overtaking.
  Cycle& link = link_release_[static_cast<std::size_t>(p.src) * proc_count_ + p.dst];
  release = std::max(release, link);
  link = release;

  send_at(p, release);
  if (d.duplicate) {
    note(FaultKind::kDuplicate, p, p.src);
    send_at(p, release);  // same cycle; the fabric's port model serialises
  }
}

void FaultyNetwork::inner_delivery_thunk(void* ctx, const net::Packet& packet) {
  auto* self = static_cast<FaultyNetwork*>(ctx);
  if (packet.checksum != 0 && packet_checksum(packet) != packet.checksum) {
    // Receiver NIC: corrupted in flight — discard; retransmission recovers.
    self->domain_.note_corrupt_discarded();
    return;
  }
  // Dead destination NIC: the packet crossed the fabric but nobody is
  // listening at the ejection port. Fail-stop receivers lose in-flight
  // traffic; the sender's retransmit repairs it after the window closes.
  if (self->pe_in_outage(packet.dst, self->sim_.now())) {
    self->note(FaultKind::kPeOutage, packet, packet.dst);
    self->domain_.note_lost(packet.req_seq);
    return;
  }
  self->deliver(packet);
}

}  // namespace emx::fault
