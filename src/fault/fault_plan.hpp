// FaultPlan: the seeded, fully deterministic decision engine behind
// FaultyNetwork. Given a packet at its injection cycle it answers "what
// goes wrong with this one?" — by probability (seeded xoshiro stream,
// consumed in injection order), by schedule (hit exactly the nth tracked
// packet) and by stall window (link outages).
//
// Every fabric packet kind is *tracked* — eligible for information-losing
// faults (drop / duplicate / corrupt) — because the ReliableChannel now
// covers every class end-to-end: reads recover via the idempotent
// retransmit path, side-effecting messages (remote writes, invokes,
// barrier joins) via seq/ack/dedup, and ACKs themselves are recovered
// implicitly (a lost ACK just means the message retransmits and the
// receiver re-acknowledges). Only kLocalWake is exempt: it is an on-chip
// OBU->IBU loopback that never enters the fabric.
#pragma once

#include <array>
#include <cstdint>

#include "common/rng.hpp"
#include "fault/fault_config.hpp"
#include "network/packet.hpp"
#include "common/serializer.hpp"

namespace emx::fault {

/// Kinds covered by the reliability protocol and therefore eligible for
/// lossy faults: every fabric kind. kLocalWake never leaves the chip.
constexpr bool is_tracked_kind(net::PacketKind kind) {
  return kind != net::PacketKind::kLocalWake;
}

/// Link-level checksum over the architectural words and routing metadata
/// (the checksum field itself excluded). Never returns 0, so 0 can mean
/// "unstamped".
std::uint32_t packet_checksum(const net::Packet& packet);

/// What happens to one injected packet. drop/duplicate/corrupt are
/// mutually exclusive; delay composes with any of them except drop.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  std::uint32_t corrupt_bit = 0;  ///< which data bit flips when corrupt
  Cycle jitter = 0;               ///< extra latency from the jitter roll
  Cycle stall_until = 0;          ///< earliest fabric entry due to stalls

  bool any() const {
    return drop || duplicate || corrupt || jitter > 0 || stall_until > 0;
  }
};

class FaultPlan {
 public:
  explicit FaultPlan(const FaultConfig& config);

  /// Decides the fate of a fabric packet injected at `now`. Consumes the
  /// RNG stream deterministically: one lossy roll per tracked packet, one
  /// bit roll per corruption, one jitter roll per fabric packet when
  /// jitter is enabled.
  FaultDecision decide(const net::Packet& packet, Cycle now);

  /// Tracked fabric packets seen so far (the schedule's counting base).
  std::uint64_t tracked_seen() const { return tracked_seen_; }

  /// The plan's decision stream, exposed so the Machine can register it
  /// with the rng::StreamRegistry ("fault.plan") and snapshots capture
  /// its position alongside every other stream.
  Rng& rng() { return rng_; }

  void save(snapshot::Serializer& s) const {
    for (std::uint64_t word : rng_.state()) s.u64(word);
    s.u64(tracked_seen_);
    for (std::uint64_t seen : kind_seen_) s.u64(seen);
  }

 private:
  const FaultConfig config_;
  Rng rng_;
  std::uint64_t tracked_seen_ = 0;
  /// Per-kind counting base for filtered ScheduledFaults ("drop the nth
  /// INVOKE"), indexed by PacketKind.
  std::array<std::uint64_t, 8> kind_seen_{};
};

}  // namespace emx::fault
