// Configuration of the deterministic fault-injection subsystem.
//
// The EM-X paper assumes a perfect fabric: every 2-word packet arrives
// intact, exactly once. FaultConfig describes a controlled departure from
// that assumption — a seeded plan of packet drops, duplications, payload
// corruptions, per-link stall windows and bounded latency jitter, applied
// at the Network boundary by fault::FaultyNetwork — plus the knobs of the
// reliability protocol (fault::RetryAgent) that recovers from them.
//
// Determinism contract: the same FaultConfig (seed included) on the same
// machine configuration and workload produces a byte-identical run.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "network/packet.hpp"

namespace emx::fault {

/// Wildcard endpoint for stall windows ("any source"/"any destination").
inline constexpr ProcId kAnyProc = 0xFFFFFFFFu;

/// What the plan does to one packet. Also the trace payload of
/// trace::EventType::kFaultInject and the FaultReport breakdown key.
enum class FaultKind : std::uint8_t {
  kDrop = 0,       ///< packet vanishes in the fabric
  kDuplicate = 1,  ///< packet is delivered twice
  kCorrupt = 2,    ///< payload bit flipped; checksum catches it at ejection
  kDelay = 3,      ///< bounded extra latency (jitter), FIFO per link
  kStall = 4,      ///< link unavailable for a cycle window
  kPeOutage = 5,   ///< transient fail-stop: a PE's NIC is dead for a window
};
inline constexpr std::size_t kFaultKindCount = 6;

const char* to_string(FaultKind kind);

/// A link outage: packets injected on (src, dst) during [begin, end) are
/// held and enter the fabric at `end` (in injection order). kAnyProc
/// matches every endpoint.
struct StallWindow {
  ProcId src = kAnyProc;
  ProcId dst = kAnyProc;
  Cycle begin = 0;
  Cycle end = 0;
};

/// A scheduled (exact, probability-free) fault: hit the nth eligible
/// fabric packet, counting from 1 in injection order. Used by tests and
/// targeted experiments where a rate would be a blunt instrument. When
/// `filtered` is set, only packets of kind `only` are counted — e.g.
/// "drop the first barrier-join invoke" is {1, kDrop, true, kInvoke}.
struct ScheduledFault {
  std::uint64_t nth = 0;
  FaultKind kind = FaultKind::kDrop;
  bool filtered = false;
  net::PacketKind only = net::PacketKind::kRemoteReadReq;
};

/// A transient fail-stop outage: processor `pe`'s NIC is dead during
/// [begin, end) — nothing is injected or ejected, fabric packets queued
/// in its IBU are flushed and new thread dispatches freeze. At `end` the
/// PE resumes from its memory state; peers' retransmits (and its own)
/// repair the lost in-flight traffic.
struct OutageWindow {
  ProcId pe = 0;
  Cycle begin = 0;
  Cycle end = 0;
};

struct FaultConfig {
  // --- fault plan (what the fabric does wrong) ---
  std::uint64_t seed = 0xFAB17u;  ///< drives every probabilistic decision
  double drop_rate = 0.0;         ///< P(drop) per eligible packet
  double duplicate_rate = 0.0;    ///< P(duplicate) per eligible packet
  double corrupt_rate = 0.0;      ///< P(payload corruption) per eligible packet
  /// Extra latency jitter: each fabric packet independently gains a
  /// uniform 0..jitter_max_cycles delay (0 disables). Per-(src,dst) FIFO
  /// order is preserved so the non-overtaking rule still holds.
  Cycle jitter_max_cycles = 0;
  std::vector<StallWindow> stalls;
  std::vector<ScheduledFault> scheduled;
  std::vector<OutageWindow> outages;

  // --- reliability protocol (how the runtime recovers) ---
  /// Arms the end-to-end ReliableChannel on every PE: sequence numbers +
  /// retransmit timers on reads, and seq/ack/dedup on side-effecting
  /// messages (writes, invokes, barrier joins). Turning this off while a
  /// lossy plan is armed deliberately produces an unrecoverable machine —
  /// the progress watchdog's test bed.
  bool reliability = true;
  /// Cycles a split-phase read waits for its reply before retransmitting.
  /// Must comfortably exceed the loaded round-trip; spurious timeouts are
  /// safe (duplicate replies are suppressed) but waste fabric bandwidth.
  Cycle timeout_cycles = 4096;
  /// Timeout multiplier per successive retransmit of one request.
  std::uint32_t backoff_mult = 2;
  /// Retransmits allowed per request before the machine panics (a fault
  /// the protocol cannot recover from is a modelling bug, not bad luck).
  std::uint32_t max_retries = 10;

  /// The subsystem is armed only when the plan can actually do something;
  /// otherwise the machine runs the seed-identical fault-free hot path
  /// (no decorator, no sequence numbers, no timers).
  bool enabled() const {
    return drop_rate > 0.0 || duplicate_rate > 0.0 || corrupt_rate > 0.0 ||
           jitter_max_cycles > 0 || !stalls.empty() || !scheduled.empty() ||
           !outages.empty();
  }

  /// Panics on out-of-range rates or degenerate protocol knobs.
  void validate() const;
};

}  // namespace emx::fault
