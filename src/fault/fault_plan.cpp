#include "fault/fault_plan.hpp"

#include "common/assert.hpp"

namespace emx::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "DROP";
    case FaultKind::kDuplicate:
      return "DUPLICATE";
    case FaultKind::kCorrupt:
      return "CORRUPT";
    case FaultKind::kDelay:
      return "DELAY";
    case FaultKind::kStall:
      return "STALL";
    case FaultKind::kPeOutage:
      return "PE_OUTAGE";
  }
  return "?";
}

void FaultConfig::validate() const {
  EMX_CHECK(drop_rate >= 0.0 && drop_rate <= 1.0, "drop rate out of [0,1]");
  EMX_CHECK(duplicate_rate >= 0.0 && duplicate_rate <= 1.0,
            "duplicate rate out of [0,1]");
  EMX_CHECK(corrupt_rate >= 0.0 && corrupt_rate <= 1.0,
            "corrupt rate out of [0,1]");
  EMX_CHECK(drop_rate + duplicate_rate + corrupt_rate <= 1.0,
            "lossy fault rates must sum to at most 1");
  EMX_CHECK(timeout_cycles >= 1, "read timeout must be positive");
  EMX_CHECK(backoff_mult >= 1, "backoff multiplier must be at least 1");
  EMX_CHECK(max_retries >= 1, "need at least one retransmit attempt");
  for (const auto& w : stalls)
    EMX_CHECK(w.end >= w.begin, "stall window ends before it begins");
  for (const auto& s : scheduled) {
    EMX_CHECK(s.nth >= 1, "scheduled faults count packets from 1");
    EMX_CHECK(!s.filtered || s.only != net::PacketKind::kLocalWake,
              "local wakes never enter the fabric; cannot schedule faults on them");
  }
  for (const auto& w : outages)
    EMX_CHECK(w.end > w.begin, "outage window must span at least one cycle");
}

std::uint32_t packet_checksum(const net::Packet& packet) {
  // Fletcher-style fold over everything a real link CRC would cover; the
  // checksum field itself is excluded so stamping is idempotent.
  std::uint64_t h = 0x9E3779B97F4A7C15ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  mix(packet.addr);
  mix(packet.data);
  mix((static_cast<std::uint64_t>(packet.src) << 32) | packet.dst);
  mix((static_cast<std::uint64_t>(static_cast<std::uint8_t>(packet.kind)) << 8) |
      static_cast<std::uint8_t>(packet.priority));
  mix((static_cast<std::uint64_t>(packet.cont_thread) << 32) | packet.cont_tag);
  mix((static_cast<std::uint64_t>(packet.cont_slot) << 32) | packet.block_len);
  mix(packet.req_seq);
  mix(packet.chan_seq);
  auto folded = static_cast<std::uint32_t>(h ^ (h >> 32));
  return folded == 0 ? 1u : folded;
}

FaultPlan::FaultPlan(const FaultConfig& config)
    : config_(config), rng_(config.seed) {
  config_.validate();
}

FaultDecision FaultPlan::decide(const net::Packet& packet, Cycle now) {
  FaultDecision d;

  // Stall windows hold any packet entering a downed link.
  for (const auto& w : config_.stalls) {
    const bool src_hit = w.src == kAnyProc || w.src == packet.src;
    const bool dst_hit = w.dst == kAnyProc || w.dst == packet.dst;
    if (src_hit && dst_hit && now >= w.begin && now < w.end)
      d.stall_until = std::max(d.stall_until, w.end);
  }

  if (is_tracked_kind(packet.kind)) {
    ++tracked_seen_;
    ++kind_seen_[static_cast<std::uint8_t>(packet.kind)];
    // Exact scheduled faults take precedence over the probability roll
    // (the roll is still consumed, keeping the stream aligned whether or
    // not a schedule entry matched). Filtered entries count only packets
    // of their own kind.
    bool scheduled_hit = false;
    for (const auto& s : config_.scheduled) {
      if (s.filtered) {
        if (s.only != packet.kind ||
            s.nth != kind_seen_[static_cast<std::uint8_t>(packet.kind)])
          continue;
      } else if (s.nth != tracked_seen_) {
        continue;
      }
      scheduled_hit = true;
      switch (s.kind) {
        case FaultKind::kDrop:
          d.drop = true;
          break;
        case FaultKind::kDuplicate:
          d.duplicate = true;
          break;
        case FaultKind::kCorrupt:
          d.corrupt = true;
          break;
        case FaultKind::kDelay:
        case FaultKind::kStall:
          d.stall_until = std::max(d.stall_until, now + config_.timeout_cycles / 2);
          break;
        case FaultKind::kPeOutage:
          // Outages are window-scheduled (FaultConfig::outages), not
          // per-packet; a schedule entry naming one is a no-op here.
          break;
      }
    }
    const double roll = rng_.next_double();
    if (!scheduled_hit) {
      if (roll < config_.drop_rate) {
        d.drop = true;
      } else if (roll < config_.drop_rate + config_.duplicate_rate) {
        d.duplicate = true;
      } else if (roll <
                 config_.drop_rate + config_.duplicate_rate + config_.corrupt_rate) {
        d.corrupt = true;
      }
    }
    if (d.corrupt) d.corrupt_bit = static_cast<std::uint32_t>(rng_.bounded(32));
  }

  if (config_.jitter_max_cycles > 0 && !d.drop)
    d.jitter = rng_.bounded(config_.jitter_max_cycles + 1);

  return d;
}

}  // namespace emx::fault
