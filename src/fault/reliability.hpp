// The reliability protocol that makes split-phase reads survive a lossy
// fabric: sequence numbers, a per-processor outstanding-request table
// with timeout + exponential-backoff retransmit, and duplicate-reply
// suppression.
//
//   requester EXU --- read req (seq) ---> responder DMA
//        |  (entry in RetryAgent table,         |
//        |   cancellable timer armed)           |
//        <------- reply (echoes seq) -----------+
//   reply seq in table  -> deliver, erase entry, cancel timer
//   reply seq NOT in table -> duplicate (earlier retry already answered
//                             or the packet was duplicated): suppressed
//   timer fires, entry live -> retransmit the saved request, timeout *=
//                             backoff, retry counted and cycle-charged
//
// Retransmits are idempotent: read requests (block reads included) have
// no side effects at the responder beyond re-sending data words whose
// values cannot change mid-phase (application phases are separated by
// barriers that no requester passes with a read outstanding).
//
// FaultDomain is the machine-wide ledger tying the two ends together: it
// hands out sequence numbers, remembers which outstanding request every
// injected drop/corruption damaged, and checks that each such fault was
// recovered (the read completed anyway) by the end of the run.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/types.hpp"
#include "fault/fault_config.hpp"
#include "fault/fault_stats.hpp"
#include "network/packet.hpp"
#include "proc/execution_unit.hpp"
#include "proc/output_buffer_unit.hpp"
#include "sim/sim_context.hpp"
#include "trace/trace.hpp"

namespace emx::fault {

/// Machine-wide: sequence-number source plus the injected-fault ledger.
class FaultDomain {
 public:
  /// Next request sequence number (1-based; 0 means unsequenced). The
  /// request is live (recovery expected for faults charged to it) until
  /// note_completed().
  std::uint32_t next_seq() {
    const std::uint32_t seq = ++last_seq_;
    live_.insert(seq);
    return seq;
  }

  void note_injected(FaultKind kind) {
    ++report_.injected[static_cast<std::size_t>(kind)];
  }

  /// A drop/corruption destroyed a packet belonging to request `seq`.
  void note_lost(std::uint32_t seq);

  /// The checksum caught a corrupted packet at the ejection port.
  void note_corrupt_discarded() { ++report_.corrupt_discarded; }

  /// Request `seq` completed; faults charged to it become recovered.
  void note_completed(std::uint32_t seq);

  /// Injected recoverable faults whose request has not completed yet.
  std::uint64_t pending_losses() const { return pending_total_; }

  const FaultReport& report() const { return report_; }
  FaultReport& report() { return report_; }

 private:
  std::uint32_t last_seq_ = 0;
  /// Requests issued but not yet completed. A fault on a packet whose seq
  /// is no longer live hit a stale retransmit: the read already finished,
  /// nothing needs recovering. Never iterated; only probed.
  std::unordered_set<std::uint32_t> live_;
  /// seq -> number of recoverable faults charged to it. Never iterated
  /// (order would be nondeterministic); only probed and summed.
  std::unordered_map<std::uint32_t, std::uint32_t> pending_;
  std::uint64_t pending_total_ = 0;
  FaultReport report_;
};

/// Per-PE retry stats, folded into FaultReport by Machine::report().
struct RetryStats {
  std::uint64_t reads_tracked = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t retries = 0;
  std::uint64_t dup_replies_suppressed = 0;
  std::uint64_t reads_recovered = 0;
  Cycle worst_recovery_cycles = 0;
};

/// One per processing element. Not constructed at all on fault-free runs:
/// the protocol's cost is strictly zero off the faulted path.
class RetryAgent {
 public:
  RetryAgent(sim::SimContext& sim, const FaultConfig& config, ProcId proc,
             proc::OutputBufferUnit& obu, proc::ExecutionUnit& exu,
             FaultDomain& domain, Cycle retransmit_charge_cycles,
             trace::TraceSink* sink);

  RetryAgent(const RetryAgent&) = delete;
  RetryAgent& operator=(const RetryAgent&) = delete;
  ~RetryAgent();

  /// Called by the thread engine just before a read request is handed to
  /// the OBU: stamps the sequence number, records the request for
  /// retransmission and arms the timeout timer.
  void on_send(net::Packet& request);

  /// Called at packet acceptance for read replies. Returns false when the
  /// reply is a duplicate (its request already completed) and must be
  /// suppressed before it reaches the thread engine.
  bool on_reply(const net::Packet& reply);

  bool idle() const { return outstanding_.empty(); }
  std::uint64_t outstanding() const { return outstanding_.size(); }
  const RetryStats& stats() const { return stats_; }

 private:
  struct Entry {
    net::Packet request;
    Cycle first_issue = 0;
    Cycle timeout = 0;       ///< current (backed-off) timeout
    std::uint32_t retries = 0;
    std::uint64_t timer_id = 0;
  };

  static void timeout_event(void* ctx, std::uint64_t seq, std::uint64_t);
  void handle_timeout(std::uint32_t seq);
  void emit(trace::EventType type, ThreadId thread, std::uint64_t info);

  sim::SimContext& sim_;
  const FaultConfig& config_;
  ProcId proc_;
  proc::OutputBufferUnit& obu_;
  proc::ExecutionUnit& exu_;
  FaultDomain& domain_;
  Cycle retransmit_charge_cycles_;
  trace::TraceSink* sink_;

  /// seq -> outstanding request. Never iterated during the run (only
  /// probed by seq), so the unordered layout cannot leak nondeterminism.
  std::unordered_map<std::uint32_t, Entry> outstanding_;
  RetryStats stats_;
};

}  // namespace emx::fault
