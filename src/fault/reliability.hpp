// The reliability protocol that makes every packet class survive a lossy
// fabric. Two recovery paths share one outstanding-request table and one
// timeout + exponential-backoff retransmit engine:
//
//   Reads (idempotent request/reply) — unchanged from the original
//   RetryAgent design:
//     requester EXU --- read req (req_seq) ---> responder DMA
//          |  (entry in table, cancellable timer)    |
//          <------- reply (echoes req_seq) ----------+
//     reply accepted  -> dedup gate (reply_seen); the entry retires when
//                        the reply is *dispatched* from the IBU, so a
//                        reply flushed by a PE outage is re-fetched by the
//                        still-armed timer
//     timer fires     -> retransmit the saved request (same seq)
//
//   Side-effecting messages (remote writes, invokes, barrier joins) —
//   exactly-once via seq/ack/dedup:
//     sender --- msg (req_seq + per-(src,dst,class) chan_seq) ---> receiver
//          |  (entry in table, timer armed)                |
//          |     dedup window: floor + applied/pending sets |
//          <---------- kAck (echoes req_seq) --------------+
//     fresh write   -> applied & ACKed at NIC accept (DMA commits there)
//     fresh invoke  -> pending at accept, applied & ACKed at IBU dispatch
//                      (an invoke flushed from the IBU was never ACKed,
//                      so the sender's retransmit repairs it)
//     duplicate     -> <= floor or in applied: re-ACK, suppress;
//                      in pending: suppress silently (ACKing before the
//                      side effect would let a flush lose it for good)
//     ACK arrives   -> retire the entry; duplicate ACKs are ignored
//     lost ACK      -> message retransmits, receiver dedups and re-ACKs
//
// ACK packets themselves ride the faulty fabric (droppable, corruptible)
// but are never sequenced or ACKed — their loss is recovered by the
// message path above, never by a nested protocol.
//
// Block reads sit between the two: the request looks like a read, but
// servicing it has side effects — the responder streams word-writes into
// the requester's buffer. Re-servicing a retransmitted request would
// launch a second (zombie) write stream that can land after the
// requester has moved on and clobber a later phase's data. So block-read
// requests carry a chan_seq of their own and the responder dedups them:
// each request is serviced exactly once (the word-writes and the resume
// repair themselves via their own timers and the write fence), and a
// duplicate of an already-serviced request re-sends only the resuming
// word — the one packet of the stream with no retransmit timer.
//
// The write fence preserves the machine's happens-before edges, which a
// lossless fabric used to give away for free via FIFO non-overtaking: a
// retransmitted write arrives *later* than it was sent, so any packet
// whose delivery implies "my earlier writes landed" must wait for their
// ACKs. Two packet kinds carry such an implication and are held at the
// OBU until the writes they follow are acknowledged:
//   * invokes (thread spawns and barrier joins) wait for every
//     outstanding write of this PE — a barrier must not release while a
//     participant's data writes are still being repaired;
//   * the resuming word of a block read (kBlockReadReply) waits for the
//     word-writes streamed to the same requester before it — the reader
//     must not wake up to a buffer with holes.
// Held packets release in FIFO order as ACKs retire their blockers; an
// invoke's retransmit timer is only armed once it actually leaves.
//
// FaultDomain is the machine-wide ledger tying the ends together: it
// hands out request sequence numbers, remembers which outstanding request
// every injected drop/corruption damaged, checks each such fault was
// recovered by the end of the run, and keeps its own memory bounded
// (entries erased on completion, wraparound asserted, peak size
// reported).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/component.hpp"
#include "common/types.hpp"
#include "fault/fault_config.hpp"
#include "fault/fault_stats.hpp"
#include "network/packet.hpp"
#include "proc/channel_hooks.hpp"
#include "proc/execution_unit.hpp"
#include "proc/output_buffer_unit.hpp"
#include "sim/sim_context.hpp"
#include "common/serializer.hpp"
#include "trace/trace.hpp"

namespace emx::fault {

/// Machine-wide: sequence-number source plus the injected-fault ledger.
/// Registered as the "fault" component on fault-armed machines: its
/// snapshot section is the ledger, its stall description is the
/// pending/unsequenced-loss summary, and it contributes the ledger half
/// of FaultReport (the per-PE channel activity is summed by Machine).
class FaultDomain final : public Component {
 public:
  /// Next request sequence number (1-based; 0 means unsequenced). The
  /// request is live (recovery expected for faults charged to it) until
  /// note_completed(), which erases it — the ledger never grows past the
  /// number of simultaneously outstanding requests.
  std::uint32_t next_seq();

  void note_injected(FaultKind kind) {
    ++report_.injected[static_cast<std::size_t>(kind)];
  }

  /// A drop/corruption destroyed a packet belonging to request `seq`.
  /// seq == 0 means the packet was unsequenced (reliability disabled or
  /// host traffic): nothing will recover it, so it is tallied separately
  /// instead of charged to the ledger.
  void note_lost(std::uint32_t seq);

  /// The checksum caught a corrupted packet at the ejection port.
  void note_corrupt_discarded() { ++report_.corrupt_discarded; }

  /// Request `seq` completed; faults charged to it become recovered.
  void note_completed(std::uint32_t seq);

  /// Injected recoverable faults whose request has not completed yet.
  std::uint64_t pending_losses() const { return pending_total_; }

  const FaultReport& report() const { return report_; }
  FaultReport& report() { return report_; }

  /// Serializes the ledger with its unordered containers sorted, so two
  /// identical runs produce identical bytes.
  void save(snapshot::Serializer& s) const;

  // --- Component ---
  const char* component_name() const override { return "fault"; }
  void save_state(ser::Serializer& s) const override { save(s); }
  void describe_stall(std::string& out, bool quiescent) const override;
  void contribute(MachineReport& report) const override;

 private:
  std::uint32_t last_seq_ = 0;
  /// Requests issued but not yet completed. A fault on a packet whose seq
  /// is no longer live hit a stale retransmit: the request already
  /// finished, nothing needs recovering. Never iterated; only probed.
  std::unordered_set<std::uint32_t> live_;
  /// seq -> number of recoverable faults charged to it. Never iterated
  /// (order would be nondeterministic); only probed and summed.
  std::unordered_map<std::uint32_t, std::uint32_t> pending_;
  std::uint64_t pending_total_ = 0;
  FaultReport report_;
};

/// Per-PE channel stats, folded into FaultReport by Machine::report().
struct ChannelStats {
  std::uint64_t reads_tracked = 0;
  std::uint64_t msgs_tracked = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t retries = 0;          ///< read requests re-sent
  std::uint64_t msg_retransmits = 0;  ///< writes/invokes re-sent
  std::uint64_t acks_sent = 0;
  std::uint64_t dup_replies_suppressed = 0;
  std::uint64_t dup_msgs_suppressed = 0;
  std::uint64_t dup_acks_ignored = 0;
  std::uint64_t reads_recovered = 0;
  std::uint64_t msgs_recovered = 0;
  std::uint64_t fence_holds = 0;  ///< packets held for write ACKs
  Cycle worst_recovery_cycles = 0;
  std::uint64_t peak_outstanding = 0;

  void save(snapshot::Serializer& s) const {
    s.u64(reads_tracked);
    s.u64(msgs_tracked);
    s.u64(timeouts);
    s.u64(retries);
    s.u64(msg_retransmits);
    s.u64(acks_sent);
    s.u64(dup_replies_suppressed);
    s.u64(dup_msgs_suppressed);
    s.u64(dup_acks_ignored);
    s.u64(reads_recovered);
    s.u64(msgs_recovered);
    s.u64(fence_holds);
    s.u64(worst_recovery_cycles);
    s.u64(peak_outstanding);
  }
};

/// One per processing element; both the sender role (outstanding table,
/// retransmit timers) and the receiver role (dedup windows, ACK
/// emission). Not constructed at all on fault-free runs: the protocol's
/// cost is strictly zero off the faulted path. The processor layer talks
/// to it exclusively through proc::ChannelHooks, so proc/ and runtime/
/// never include this header.
class ReliableChannel final : public proc::ChannelHooks {
 public:
  ReliableChannel(sim::SimContext& sim, const FaultConfig& config, ProcId proc,
                  proc::OutputBufferUnit& obu, proc::ExecutionUnit& exu,
                  FaultDomain& domain, Cycle retransmit_charge_cycles,
                  trace::TraceSink* sink);

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;
  ~ReliableChannel();

  // --- sender role ---

  /// Called by the OBU for every packet it releases. First-issue read
  /// requests are stamped with req_seq; first-issue writes/invokes with
  /// req_seq + chan_seq; both get a table entry and a timer. Retransmits
  /// (req_seq already set), self-loopback packets, read replies and ACKs
  /// pass through untouched. Returns false when the write fence captured
  /// the packet (invoke behind unACKed writes, or a block-read resume
  /// behind its word-writes): the OBU must drop it — the channel re-sends
  /// it itself once the blocking writes are acknowledged.
  bool on_obu_send(net::Packet& packet) override;

  /// Called at NIC acceptance for read replies. Returns false when the
  /// reply is a duplicate (request already completed, or an identical
  /// reply is already sitting in the IBU) and must be suppressed. A fresh
  /// reply only marks the entry — retirement waits for dispatch.
  bool on_reply_accept(const net::Packet& reply) override;

  /// Called when the IBU dispatches a read reply: the value has reached
  /// the thread engine, so the request retires (timer cancelled, ledger
  /// notified, entry erased).
  void on_reply_dispatched(const net::Packet& reply) override;

  /// Called at NIC acceptance for kAck packets: retires the acknowledged
  /// message. ACKs for already-retired sequences are counted and ignored.
  void on_ack(const net::Packet& ack) override;

  // --- receiver role ---

  /// Called at NIC acceptance for sequenced writes and invokes. Returns
  /// false when the message is a duplicate and must not be applied or
  /// enqueued again. Fresh writes are ACKed here (the DMA commits them
  /// synchronously at accept); fresh invokes are only marked pending —
  /// their ACK waits for IBU dispatch.
  bool accept_msg(const net::Packet& msg) override;

  /// Called when the IBU dispatches a sequenced invoke: the side effect
  /// is now committed, so the dedup window advances and the ACK goes out.
  void on_invoke_dispatched(const net::Packet& msg) override;

  using BlockReadVerdict = proc::ChannelHooks::BlockReadVerdict;

  /// Called at NIC acceptance for block-read requests. Fresh requests go
  /// pending (their service commits the side effect); duplicates are
  /// split by whether the original was serviced yet. Never ACKs — the
  /// requester's entry retires when the resume dispatches.
  BlockReadVerdict accept_block_read(const net::Packet& req) override;

  /// Called when the block-read service actually launches (synchronously
  /// at accept in by-pass DMA mode, at IBU dispatch in EM-4 mode): the
  /// dedup window advances so later duplicates only re-send the resume.
  void on_block_read_serviced(const net::Packet& req) override;

  /// Called for every fabric packet flushed from the IBU by a PE outage:
  /// pending invokes leave the dedup window (they were never ACKed, so
  /// the sender retransmits) and flushed read replies re-arm the dedup
  /// gate (the still-armed timer re-fetches them).
  void on_packet_flushed(const net::Packet& packet) override;

  bool idle() const override { return outstanding_.empty() && fence_.empty(); }
  std::uint64_t outstanding() const override { return outstanding_.size(); }
  const ChannelStats& stats() const { return stats_; }
  std::uint64_t retry_count() const override { return stats_.retries; }

  /// Appends one line per outstanding request, sorted by sequence number
  /// (deterministic), for the watchdog's hang diagnosis.
  void append_outstanding(std::string& out) const override;

  /// Serializes the full sender+receiver state — outstanding table,
  /// stream counters, dedup windows, fence queue, stats — with every
  /// unordered container sorted by key first.
  void save(snapshot::Serializer& s) const override;

 private:
  enum class Class : std::uint8_t { kRead = 0, kMsg = 1 };

  struct Entry {
    net::Packet request;
    Cycle first_issue = 0;
    Cycle timeout = 0;  ///< current (backed-off) timeout
    std::uint32_t retries = 0;
    std::uint64_t timer_id = 0;
    Class cls = Class::kRead;
    /// Read replies only: a fresh reply was accepted into the IBU but not
    /// yet dispatched. Gates duplicates; reset when an outage flushes the
    /// reply so the timer recovers it.
    bool reply_seen = false;
  };

  /// Receiver-side dedup state for one (source PE, message class) stream.
  /// chan_seq values are contiguous from 1, so everything <= floor is a
  /// known duplicate and the sets stay bounded by the in-flight window.
  struct Window {
    std::uint32_t floor = 0;
    std::unordered_set<std::uint32_t> applied;  ///< > floor, side effect done
    std::unordered_set<std::uint32_t> pending;  ///< invokes awaiting dispatch
  };

  /// A packet captured by the write fence: released (FIFO) once every
  /// blocking write sequence number has been acknowledged.
  struct FenceWaiter {
    net::Packet packet;
    std::vector<std::uint32_t> blockers;  ///< sorted outstanding write seqs
  };

  static constexpr std::uint64_t kNoTimer = ~std::uint64_t{0};

  static void timeout_event(void* ctx, std::uint64_t seq, std::uint64_t);
  void handle_timeout(std::uint32_t seq);
  void retire(std::uint32_t seq);
  void send_ack(const net::Packet& msg);
  void emit(trace::EventType type, ThreadId thread, std::uint64_t info);
  /// Outstanding write seqs (sorted — the map's order is not
  /// deterministic) that a fence waiter must wait for; dst-filtered for
  /// block-read resumes, all destinations for invokes.
  std::vector<std::uint32_t> write_blockers(ProcId dst, bool any_dst) const;
  void release_fence();

  static std::uint64_t stream_key(ProcId peer, net::PacketKind kind) {
    std::uint64_t cls = 0;  // remote writes
    if (kind == net::PacketKind::kInvoke) cls = 1;
    if (kind == net::PacketKind::kBlockReadReq) cls = 2;
    return (static_cast<std::uint64_t>(peer) << 2) | cls;
  }

  sim::SimContext& sim_;
  const FaultConfig& config_;
  ProcId proc_;
  proc::OutputBufferUnit& obu_;
  proc::ExecutionUnit& exu_;
  FaultDomain& domain_;
  Cycle retransmit_charge_cycles_;
  trace::TraceSink* sink_;

  /// req_seq -> outstanding request. Only probed by seq during the run;
  /// iterated (sorted) solely by the watchdog diagnosis.
  std::unordered_map<std::uint32_t, Entry> outstanding_;
  /// (dst, class) -> last chan_seq stamped (sender role). Never iterated.
  std::unordered_map<std::uint64_t, std::uint32_t> chan_next_;
  /// (src, class) -> dedup window (receiver role). Never iterated.
  std::unordered_map<std::uint64_t, Window> windows_;
  /// Write-fence queue: packets held until their blockers are ACKed,
  /// released strictly front-to-back.
  std::deque<FenceWaiter> fence_;
  /// True while release_fence() re-submits a held packet through the OBU,
  /// so on_obu_send lets it through instead of re-capturing it.
  bool releasing_fence_ = false;
  ChannelStats stats_;
};

}  // namespace emx::fault
