// emx::verify — static CFG/dataflow verification of EMC-Y programs.
//
// The dynamic checkers (src/analysis/) catch protocol errors on the
// paths an input happens to exercise, after cycles are spent; this layer
// catches them on *all* paths, in milliseconds, before a single cycle
// runs. verify_program() builds the basic-block CFG and runs:
//
//   use-before-def   must-dataflow over the 32 registers, suspend-aware:
//                    a kRead destination is defined only on the resume
//                    edge; reading a register no path has defined is an
//                    error, and kRead into the hardwired-zero r0 loses
//                    the reply entirely.
//   frame balance    all-paths kFMark/kFDrop depth matching — the static
//                    counterpart of the memcheck leak scan: a drop with
//                    no mark, paths reaching a join at different depths,
//                    an iteration that changes the depth, or a halt with
//                    regions still marked.
//   barrier counts   every path into a join must have executed the same
//                    number of kBarriers, and every trip around a loop
//                    the same number — the static precursor of the
//                    wait-for-graph deadlock the dynamic checker can
//                    only diagnose post-hoc.
//   structural lints unreachable blocks, falling off the end of the
//                    program, branch targets outside the code, kReadB
//                    with a non-positive length, and loops containing no
//                    suspend point (kYield/kRead/kBarrier/...) — a spin
//                    that can starve siblings on the PE.
//
// Findings carry the instruction index and, for assembled programs, the
// source line. Severity: definite protocol violations are errors;
// unreachable code and suspend-free loops are warnings (a bounded
// compute loop is legal, just suspicious in a fine-grain-threading ISA).
//
// Three surfaces: this Report API, the `emx_run --verify-static` pre-run
// gate (findings exit with code 6), and the standalone tools/emx_verify.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/assembler.hpp"

namespace emx::verify {

enum class FindingKind : std::uint8_t {
  kUseBeforeDef,        ///< register read with no definition on some path
  kReadIntoZero,        ///< kRead destination r0: the reply is discarded
  kFrameUnderflow,      ///< kFDrop with no kFMark outstanding
  kFramePathMismatch,   ///< join/loop reached at differing frame depths
  kFrameLeak,           ///< kHalt with frame regions still marked
  kBarrierPathMismatch, ///< join/loop reached at differing barrier counts
  kUnreachableCode,     ///< block no path from the entry reaches
  kFallOffEnd,          ///< execution can run past the last instruction
  kBranchOutOfRange,    ///< branch target outside the program
  kBadBlockReadLength,  ///< kReadB with a non-positive word count
  kSpinWithoutSuspend,  ///< loop containing no suspend point
};

inline constexpr std::size_t kFindingKindCount = 11;

const char* to_string(FindingKind kind);

enum class Severity : std::uint8_t { kWarning, kError };

struct Finding {
  FindingKind kind = FindingKind::kUseBeforeDef;
  Severity severity = Severity::kError;
  std::uint32_t instr = 0;  ///< anchor instruction index
  std::uint32_t line = 0;   ///< source line, 0 when the program has none
  std::string message;

  /// "error: use-before-def at #5 (line 12): r4 is read but ..."
  std::string describe() const;
};

struct Report {
  std::string name;  ///< what was verified ("file.emx", "app sort #0")
  std::vector<Finding> findings;

  bool clean() const { return findings.empty(); }
  std::size_t errors() const;
  std::size_t warnings() const;
  std::size_t count(FindingKind kind) const;
  /// Every finding, one per line, each prefixed with `name` when set.
  std::string summary_text() const;
};

/// Runs every static check over `program`.
Report verify_program(const isa::Program& program, std::string name = "");

/// How the pre-run gate treats findings (emx_run --verify-static).
enum class GateMode : std::uint8_t {
  kOff,   ///< do not verify
  kWarn,  ///< print findings to stderr, run anyway
  kError, ///< findings abort the run with exit code 6
};

/// Parses "off" / "warn" / "error"; returns false on anything else.
bool parse_gate_mode(const std::string& text, GateMode& mode);

}  // namespace emx::verify
