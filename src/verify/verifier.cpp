#include "verify/verifier.hpp"

#include <algorithm>
#include <bit>

#include "common/assert.hpp"
#include "verify/cfg.hpp"

namespace emx::verify {

namespace {

using isa::Instruction;
using isa::Opcode;

/// Bitmask of the registers instruction `in` reads.
std::uint32_t source_mask(const Instruction& in) {
  const auto ra = std::uint32_t{1} << in.ra;
  const auto rb = std::uint32_t{1} << in.rb;
  switch (in.op) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
    case Opcode::kAnd: case Opcode::kOr: case Opcode::kXor:
    case Opcode::kShl: case Opcode::kShr: case Opcode::kSlt:
    case Opcode::kSltu: case Opcode::kFadd: case Opcode::kFsub:
    case Opcode::kFmul: case Opcode::kFdiv: case Opcode::kGaddr:
    case Opcode::kStore: case Opcode::kBeq: case Opcode::kBne:
    case Opcode::kBlt: case Opcode::kBge: case Opcode::kReadB:
    case Opcode::kWrite: case Opcode::kSpawn: case Opcode::kFMark:
      return ra | rb;
    case Opcode::kAddi: case Opcode::kLoad: case Opcode::kRead:
    case Opcode::kFDrop:
      return ra;
    case Opcode::kLi: case Opcode::kJmp: case Opcode::kProc:
    case Opcode::kBarrier: case Opcode::kYield: case Opcode::kHalt:
      return 0;
  }
  return 0;
}

/// The register instruction `in` writes, or -1. The kRead destination is
/// defined on the resume edge — kRead terminates its block, so adding
/// the bit after the per-instruction source check lands it in the
/// block's OUT set, exactly the resume-edge semantics.
int dest_reg(const Instruction& in) {
  switch (in.op) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
    case Opcode::kAnd: case Opcode::kOr: case Opcode::kXor:
    case Opcode::kShl: case Opcode::kShr: case Opcode::kSlt:
    case Opcode::kSltu: case Opcode::kFadd: case Opcode::kFsub:
    case Opcode::kFmul: case Opcode::kFdiv: case Opcode::kGaddr:
    case Opcode::kAddi: case Opcode::kLi: case Opcode::kLoad:
    case Opcode::kProc: case Opcode::kRead:
      return in.rd;
    default:
      return -1;
  }
}

Severity severity_of(FindingKind kind) {
  switch (kind) {
    case FindingKind::kUnreachableCode:
    case FindingKind::kSpinWithoutSuspend:
      return Severity::kWarning;
    default:
      return Severity::kError;
  }
}

/// Edge classification + orders for the path-count analyses: back edges
/// (to a block on the DFS stack) are cut, leaving a DAG whose reverse
/// postorder is a topological order.
struct DagView {
  std::vector<std::uint32_t> rpo;  ///< reachable blocks, topologically
  std::vector<std::vector<std::uint32_t>> forward_pred;  ///< non-back preds
  struct BackEdge {
    std::uint32_t from, to;
  };
  std::vector<BackEdge> back_edges;
};

DagView classify_edges(const Cfg& cfg) {
  const std::size_t n = cfg.blocks.size();
  DagView dag;
  dag.forward_pred.resize(n);
  enum : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<std::uint8_t> color(n, kWhite);
  std::vector<std::uint32_t> postorder;
  // Iterative DFS with an explicit (block, next-successor) stack.
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;
  stack.emplace_back(0, 0);
  color[0] = kGrey;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    if (next < cfg.blocks[b].succ.size()) {
      const std::uint32_t s = cfg.blocks[b].succ[next++];
      if (color[s] == kGrey) {
        dag.back_edges.push_back({b, s});
      } else {
        dag.forward_pred[s].push_back(b);
        if (color[s] == kWhite) {
          color[s] = kGrey;
          stack.emplace_back(s, 0);
        }
      }
    } else {
      color[b] = kBlack;
      postorder.push_back(b);
      stack.pop_back();
    }
  }
  dag.rpo.assign(postorder.rbegin(), postorder.rend());
  return dag;
}

class Verifier {
 public:
  Verifier(const isa::Program& program, Report& report)
      : program_(program), report_(report), cfg_(build_cfg(program)),
        dag_(classify_edges(cfg_)) {}

  void run() {
    scan_instructions();
    scan_structure();
    check_use_before_def();
    check_path_counts(/*frames=*/true);
    check_path_counts(/*frames=*/false);
    check_spin_loops();
    std::stable_sort(
        report_.findings.begin(), report_.findings.end(),
        [](const Finding& a, const Finding& b) { return a.instr < b.instr; });
  }

 private:
  void add(FindingKind kind, std::uint32_t instr, std::string message) {
    Finding f;
    f.kind = kind;
    f.severity = severity_of(kind);
    f.instr = instr;
    f.line = program_.line_of(instr);
    f.message = std::move(message);
    report_.findings.push_back(std::move(f));
  }

  // --- per-instruction structural checks -------------------------------
  void scan_instructions() {
    const auto& code = program_.code;
    for (std::uint32_t i = 0; i < code.size(); ++i) {
      const Instruction& in = code[i];
      if (is_branch(in.op) &&
          (in.imm < 0 || static_cast<std::size_t>(in.imm) >= code.size())) {
        add(FindingKind::kBranchOutOfRange, i,
            "branch target " + std::to_string(in.imm) +
                " is outside the program (valid range 0.." +
                std::to_string(code.size() - 1) + ")");
      }
      if (in.op == Opcode::kReadB && in.imm <= 0) {
        add(FindingKind::kBadBlockReadLength, i,
            "block read of " + std::to_string(in.imm) +
                " words (the length must be >= 1)");
      }
      if (in.op == Opcode::kRead && in.rd == 0) {
        add(FindingKind::kReadIntoZero, i,
            "remote read into the hardwired-zero r0: the split-phase reply "
            "is discarded");
      }
    }
  }

  // --- block-level structure -------------------------------------------
  void scan_structure() {
    for (std::uint32_t b = 0; b < cfg_.blocks.size(); ++b) {
      const Block& blk = cfg_.blocks[b];
      if (!cfg_.reachable[b]) {
        add(FindingKind::kUnreachableCode, blk.first,
            "instructions #" + std::to_string(blk.first) + "..#" +
                std::to_string(blk.last) + " are unreachable from the entry");
        continue;  // nothing below this block can execute
      }
      if (blk.falls_off_end) {
        add(FindingKind::kFallOffEnd, blk.last,
            "execution can fall off the end of the program here (end the "
            "path with halt or an unconditional jump)");
      }
    }
  }

  // --- use-before-def (must-dataflow over the register file) -----------
  void check_use_before_def() {
    const std::size_t n = cfg_.blocks.size();
    // Bit r set = register r definitely defined on every path here. On
    // entry r0 (hardwired zero) and r1 (the spawn argument) are defined.
    constexpr std::uint32_t kEntryMask = 0b11;
    constexpr std::uint32_t kTop = 0xffffffffu;
    std::vector<std::uint32_t> in(n, kTop), out(n, kTop);
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::uint32_t b : dag_.rpo) {
        // Paths into the entry include the program start itself, where
        // only r0/r1 are defined; everywhere else intersect over preds.
        std::uint32_t mask = b == 0 ? kEntryMask : kTop;
        for (std::uint32_t p : cfg_.blocks[b].pred)
          if (cfg_.reachable[p]) mask &= out[p];
        in[b] = mask;
        const std::uint32_t new_out = out_mask(b, mask);
        if (new_out != out[b]) {
          out[b] = new_out;
          changed = true;
        }
      }
    }
    // Report pass: walk each reachable block with its converged IN set.
    for (std::uint32_t b : dag_.rpo) {
      std::uint32_t mask = in[b];
      for (std::uint32_t i = cfg_.blocks[b].first; i <= cfg_.blocks[b].last;
           ++i) {
        const Instruction& instr = program_.code[i];
        std::uint32_t missing = source_mask(instr) & ~mask;
        while (missing != 0) {
          const int r = std::countr_zero(missing);
          missing &= missing - 1;
          add(FindingKind::kUseBeforeDef, i,
              "r" + std::to_string(r) +
                  " is read, but no definition reaches it on some path");
        }
        const int rd = dest_reg(instr);
        if (rd > 0) mask |= std::uint32_t{1} << rd;
        mask |= 1;  // r0 is always defined
      }
    }
  }

  std::uint32_t out_mask(std::uint32_t b, std::uint32_t in_mask) const {
    std::uint32_t mask = in_mask | 1;
    for (std::uint32_t i = cfg_.blocks[b].first; i <= cfg_.blocks[b].last; ++i) {
      const int rd = dest_reg(program_.code[i]);
      if (rd > 0) mask |= std::uint32_t{1} << rd;
    }
    return mask;
  }

  // --- all-paths frame-depth / barrier-count consistency ---------------
  //
  // Both analyses propagate an integer along the back-edge-free DAG in
  // reverse postorder. Frames: kFMark +1, kFDrop -1, all paths into a
  // join must agree, every loop iteration must be balanced, and halt
  // must see depth 0. Barriers: kBarrier +1, all paths into a join must
  // agree, and every back edge into a loop head must add the same count.
  void check_path_counts(bool frames) {
    const std::size_t n = cfg_.blocks.size();
    const FindingKind mismatch = frames ? FindingKind::kFramePathMismatch
                                        : FindingKind::kBarrierPathMismatch;
    const char* noun = frames ? "frame depth" : "barrier count";
    std::vector<int> count_in(n, 0), count_out(n, 0);
    std::vector<bool> valid(n, false);
    for (std::uint32_t b : dag_.rpo) {
      int entering = 0;
      bool have = b == 0;  // the entry starts at zero
      bool reported = false;
      for (std::uint32_t p : dag_.forward_pred[b]) {
        if (!valid[p]) continue;
        if (!have) {
          entering = count_out[p];
          have = true;
        } else if (count_out[p] != entering && !reported) {
          add(mismatch, cfg_.blocks[b].first,
              std::string(noun) + " disagrees between paths joining here (" +
                  std::to_string(entering) + " vs " +
                  std::to_string(count_out[p]) + ")");
          reported = true;
        }
      }
      if (!have) continue;  // poisoned upstream; avoid cascading reports
      count_in[b] = entering;
      valid[b] = !reported;
      int depth = entering;
      for (std::uint32_t i = cfg_.blocks[b].first; i <= cfg_.blocks[b].last;
           ++i) {
        const Opcode op = program_.code[i].op;
        if (frames) {
          if (op == Opcode::kFMark) ++depth;
          if (op == Opcode::kFDrop) {
            if (depth == 0) {
              add(FindingKind::kFrameUnderflow, i,
                  "frame drop with no marked region outstanding on this path");
              valid[b] = false;
            } else {
              --depth;
            }
          }
          if (op == Opcode::kHalt && depth > 0) {
            add(FindingKind::kFrameLeak, i,
                std::to_string(depth) +
                    " frame region(s) still marked when the thread halts "
                    "on this path (missing fdrop)");
          }
        } else if (op == Opcode::kBarrier) {
          ++depth;
        }
      }
      count_out[b] = depth;
    }
    // Back edges: a loop iteration must be frame-balanced, and every
    // back edge into the same loop head must contribute the same number
    // of barriers per trip.
    std::vector<int> head_delta(n, -1);
    for (const auto& e : dag_.back_edges) {
      if (!valid[e.from] || !valid[e.to]) continue;
      const int delta = count_out[e.from] - count_in[e.to];
      if (frames) {
        if (delta != 0) {
          add(mismatch, cfg_.blocks[e.from].last,
              "a trip around this loop changes the frame depth by " +
                  std::to_string(delta) + " (marks and drops must balance "
                  "per iteration)");
        }
      } else if (head_delta[e.to] < 0) {
        head_delta[e.to] = delta;
      } else if (head_delta[e.to] != delta) {
        add(mismatch, cfg_.blocks[e.from].last,
            "paths around this loop execute different numbers of barriers "
            "per iteration (" + std::to_string(head_delta[e.to]) + " vs " +
                std::to_string(delta) + ")");
      }
    }
  }

  // --- suspend-free spin loops (SCCs with no suspend point) ------------
  void check_spin_loops() {
    const std::size_t n = cfg_.blocks.size();
    // Tarjan's SCC over the reachable subgraph.
    std::vector<std::uint32_t> index(n, kNoBlock), low(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<std::uint32_t> scc_stack;
    std::uint32_t next_index = 0;
    struct Frame {
      std::uint32_t b;
      std::size_t next_succ;
    };
    for (std::uint32_t root = 0; root < n; ++root) {
      if (!cfg_.reachable[root] || index[root] != kNoBlock) continue;
      std::vector<Frame> call{{root, 0}};
      index[root] = low[root] = next_index++;
      scc_stack.push_back(root);
      on_stack[root] = true;
      while (!call.empty()) {
        Frame& f = call.back();
        if (f.next_succ < cfg_.blocks[f.b].succ.size()) {
          const std::uint32_t s = cfg_.blocks[f.b].succ[f.next_succ++];
          if (index[s] == kNoBlock) {
            index[s] = low[s] = next_index++;
            scc_stack.push_back(s);
            on_stack[s] = true;
            call.push_back({s, 0});
          } else if (on_stack[s]) {
            low[f.b] = std::min(low[f.b], index[s]);
          }
        } else {
          const std::uint32_t b = f.b;
          call.pop_back();
          if (!call.empty())
            low[call.back().b] = std::min(low[call.back().b], low[b]);
          if (low[b] == index[b]) {
            std::vector<std::uint32_t> scc;
            for (;;) {
              const std::uint32_t m = scc_stack.back();
              scc_stack.pop_back();
              on_stack[m] = false;
              scc.push_back(m);
              if (m == b) break;
            }
            inspect_scc(scc);
          }
        }
      }
    }
  }

  void inspect_scc(const std::vector<std::uint32_t>& scc) {
    const bool self_loop =
        scc.size() == 1 &&
        std::find(cfg_.blocks[scc[0]].succ.begin(),
                  cfg_.blocks[scc[0]].succ.end(),
                  scc[0]) != cfg_.blocks[scc[0]].succ.end();
    if (scc.size() < 2 && !self_loop) return;
    std::uint32_t first = 0xffffffffu, last = 0;
    for (std::uint32_t b : scc) {
      first = std::min(first, cfg_.blocks[b].first);
      last = std::max(last, cfg_.blocks[b].last);
      for (std::uint32_t i = cfg_.blocks[b].first; i <= cfg_.blocks[b].last;
           ++i) {
        if (is_suspend_point(program_.code[i].op)) return;
      }
    }
    add(FindingKind::kSpinWithoutSuspend, first,
        "loop through instructions #" + std::to_string(first) + "..#" +
            std::to_string(last) +
            " contains no suspend point (yield/read/readb/write/spawn/"
            "barrier): a spin here never hands the EXU to sibling threads");
  }

  const isa::Program& program_;
  Report& report_;
  Cfg cfg_;
  DagView dag_;
};

}  // namespace

const char* to_string(FindingKind kind) {
  switch (kind) {
    case FindingKind::kUseBeforeDef: return "use-before-def";
    case FindingKind::kReadIntoZero: return "read-into-r0";
    case FindingKind::kFrameUnderflow: return "frame-underflow";
    case FindingKind::kFramePathMismatch: return "frame-path-mismatch";
    case FindingKind::kFrameLeak: return "frame-leak";
    case FindingKind::kBarrierPathMismatch: return "barrier-path-mismatch";
    case FindingKind::kUnreachableCode: return "unreachable-code";
    case FindingKind::kFallOffEnd: return "fall-off-end";
    case FindingKind::kBranchOutOfRange: return "branch-out-of-range";
    case FindingKind::kBadBlockReadLength: return "bad-block-read-length";
    case FindingKind::kSpinWithoutSuspend: return "spin-without-suspend";
  }
  return "?";
}

std::string Finding::describe() const {
  std::string out = severity == Severity::kError ? "error: " : "warning: ";
  out += to_string(kind);
  out += " at #" + std::to_string(instr);
  if (line > 0) out += " (line " + std::to_string(line) + ")";
  out += ": " + message;
  return out;
}

std::size_t Report::errors() const {
  std::size_t n = 0;
  for (const Finding& f : findings)
    if (f.severity == Severity::kError) ++n;
  return n;
}

std::size_t Report::warnings() const { return findings.size() - errors(); }

std::size_t Report::count(FindingKind kind) const {
  std::size_t n = 0;
  for (const Finding& f : findings)
    if (f.kind == kind) ++n;
  return n;
}

std::string Report::summary_text() const {
  std::string out;
  for (const Finding& f : findings) {
    if (!name.empty()) out += name + ": ";
    out += f.describe();
    out += '\n';
  }
  return out;
}

Report verify_program(const isa::Program& program, std::string name) {
  Report report;
  report.name = std::move(name);
  EMX_CHECK(!program.code.empty(), "cannot verify an empty program");
  Verifier(program, report).run();
  return report;
}

bool parse_gate_mode(const std::string& text, GateMode& mode) {
  if (text == "off") {
    mode = GateMode::kOff;
  } else if (text == "warn") {
    mode = GateMode::kWarn;
  } else if (text == "error") {
    mode = GateMode::kError;
  } else {
    return false;
  }
  return true;
}

}  // namespace emx::verify
