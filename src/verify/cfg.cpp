#include "verify/cfg.hpp"

#include "common/assert.hpp"

namespace emx::verify {

bool is_suspend_point(isa::Opcode op) {
  switch (op) {
    case isa::Opcode::kRead:
    case isa::Opcode::kReadB:
    case isa::Opcode::kWrite:
    case isa::Opcode::kSpawn:
    case isa::Opcode::kBarrier:
    case isa::Opcode::kYield:
      return true;
    default:
      return false;
  }
}

bool is_branch(isa::Opcode op) {
  switch (op) {
    case isa::Opcode::kBeq:
    case isa::Opcode::kBne:
    case isa::Opcode::kBlt:
    case isa::Opcode::kBge:
    case isa::Opcode::kJmp:
      return true;
    default:
      return false;
  }
}

Cfg build_cfg(const isa::Program& program) {
  const auto& code = program.code;
  EMX_CHECK(!code.empty(), "cannot build a CFG for an empty program");
  const std::uint32_t n = static_cast<std::uint32_t>(code.size());

  const auto in_range = [n](std::int32_t imm) {
    return imm >= 0 && static_cast<std::uint32_t>(imm) < n;
  };

  // Pass 1: leaders. Instruction 0, every in-range branch target, and
  // the instruction after any block terminator (control transfer, halt,
  // or suspend point — the resume site is a join point for dataflow).
  std::vector<bool> leader(n, false);
  leader[0] = true;
  for (std::uint32_t i = 0; i < n; ++i) {
    const isa::Instruction& in = code[i];
    if (is_branch(in.op) && in_range(in.imm))
      leader[static_cast<std::uint32_t>(in.imm)] = true;
    const bool ends_block =
        is_branch(in.op) || in.op == isa::Opcode::kHalt || is_suspend_point(in.op);
    if (ends_block && i + 1 < n) leader[i + 1] = true;
  }

  Cfg cfg;
  cfg.block_of.assign(n, kNoBlock);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (leader[i]) {
      Block b;
      b.first = i;
      cfg.blocks.push_back(b);
    }
    cfg.block_of[i] = static_cast<std::uint32_t>(cfg.blocks.size() - 1);
    cfg.blocks.back().last = i;
  }

  // Pass 2: edges. A conditional branch has a taken edge and (unless it
  // is the last instruction) a fall-through; jmp only the taken edge;
  // halt none; everything else falls through to the next instruction.
  for (std::uint32_t bi = 0; bi < cfg.blocks.size(); ++bi) {
    Block& b = cfg.blocks[bi];
    const isa::Instruction& in = code[b.last];
    const auto link = [&](std::uint32_t target_instr) {
      b.succ.push_back(cfg.block_of[target_instr]);
    };
    if (in.op == isa::Opcode::kHalt) continue;
    if (is_branch(in.op)) {
      if (in_range(in.imm)) link(static_cast<std::uint32_t>(in.imm));
      if (in.op == isa::Opcode::kJmp) continue;  // unconditional: no fall-through
    }
    if (b.last + 1 < n)
      link(b.last + 1);
    else
      b.falls_off_end = true;
  }
  for (std::uint32_t bi = 0; bi < cfg.blocks.size(); ++bi)
    for (std::uint32_t s : cfg.blocks[bi].succ) cfg.blocks[s].pred.push_back(bi);

  // Reachability from the entry block.
  cfg.reachable.assign(cfg.blocks.size(), false);
  std::vector<std::uint32_t> stack{0};
  cfg.reachable[0] = true;
  while (!stack.empty()) {
    const std::uint32_t b = stack.back();
    stack.pop_back();
    for (std::uint32_t s : cfg.blocks[b].succ) {
      if (!cfg.reachable[s]) {
        cfg.reachable[s] = true;
        stack.push_back(s);
      }
    }
  }
  return cfg;
}

}  // namespace emx::verify
