// Basic-block control-flow graphs over EMC-Y programs.
//
// The static verifier's substrate: a Cfg partitions an isa::Program into
// maximal straight-line blocks and records every control edge. Leaders
// are instruction 0, every (in-range) branch target, and the instruction
// after any control transfer or suspend point. Suspending operations
// (the send classes, barrier, yield) terminate their block too, so the
// edge to the following instruction *is* the resume edge — the dataflow
// analyses key "live only after the resume" facts (a kRead destination)
// off block boundaries instead of special-casing instructions.
//
// Out-of-range branch targets contribute no edge (the verifier reports
// them separately); a block whose fall-through would leave the program
// is marked falls_off_end.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/assembler.hpp"

namespace emx::verify {

inline constexpr std::uint32_t kNoBlock = 0xffffffffu;

/// True for instructions that can suspend the thread (the four send
/// classes plus barrier and yield): every one ends its basic block, so
/// the fall-through edge models the resume.
bool is_suspend_point(isa::Opcode op);

/// True for branch-class opcodes whose imm is an instruction index.
bool is_branch(isa::Opcode op);

struct Block {
  std::uint32_t first = 0;  ///< index of the leader instruction
  std::uint32_t last = 0;   ///< index of the final instruction (inclusive)
  std::vector<std::uint32_t> succ;
  std::vector<std::uint32_t> pred;
  /// Execution can fall past the last instruction of the program from
  /// this block (no halt / unconditional transfer in the way).
  bool falls_off_end = false;
};

struct Cfg {
  std::vector<Block> blocks;            ///< in instruction order; entry = 0
  std::vector<std::uint32_t> block_of;  ///< instruction index -> block id
  std::vector<bool> reachable;          ///< per block, from the entry

  const Block& entry() const { return blocks.front(); }
};

/// Builds the CFG of `program`. The program must be non-empty.
Cfg build_cfg(const isa::Program& program);

}  // namespace emx::verify
