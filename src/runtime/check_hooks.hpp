// CheckHooks: the runtime's view of the dynamic-analysis layer.
//
// The thread engine reports thread lifecycle, attributed accesses, frame
// annotations, and every happens-before edge through this interface;
// analysis::CheckContext implements it. The interface lives in runtime/
// so the runtime layer never includes src/analysis/ headers — on
// unchecked runs no checker is constructed and every call site is a
// null-checked no-op (checkers are pure observers; arming them must not
// change a single simulated cycle).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace emx::rt {

class CheckHooks {
 public:
  virtual ~CheckHooks() = default;

  // ----- thread lifecycle -----

  virtual void on_thread_start(ProcId pe, ThreadId raw, std::uint32_t entry,
                               std::uint32_t hb_token) = 0;
  virtual void on_thread_run(ProcId pe, ThreadId raw) = 0;
  virtual void on_thread_end(ProcId pe, ThreadId raw) = 0;

  // ----- attributed accesses, recorded at issue time -----

  virtual void on_local_read(ProcId pe, ThreadId raw, LocalAddr addr) = 0;
  virtual void on_local_write(ProcId pe, ThreadId raw, LocalAddr addr) = 0;
  virtual void on_remote_read(ProcId pe, ThreadId raw, ProcId tproc,
                              LocalAddr taddr) = 0;
  virtual void on_remote_write(ProcId pe, ThreadId raw, ProcId tproc,
                               LocalAddr taddr) = 0;
  virtual void on_block_read(ProcId pe, ThreadId raw, ProcId sproc,
                             LocalAddr saddr, LocalAddr dest,
                             std::uint32_t len) = 0;
  virtual void on_read_suspend(ProcId pe, ThreadId raw) = 0;

  // ----- frame-region annotations -----

  virtual void on_frame_mark(ProcId pe, ThreadId raw, LocalAddr base,
                             std::uint32_t len) = 0;
  virtual void on_frame_drop(ProcId pe, ThreadId raw, LocalAddr base) = 0;

  // ----- happens-before edges the runtime materializes -----

  /// Invoke edge, sender side: returns the token the kInvoke packet
  /// carries to the new thread (0 = none).
  virtual std::uint32_t on_spawn(ProcId pe, ThreadId raw) = 0;
  virtual void on_gate_pass(ProcId pe, ThreadId raw, std::uint64_t gate) = 0;
  virtual void on_gate_block(ProcId pe, ThreadId raw, std::uint64_t gate,
                             std::uint32_t index) = 0;
  virtual void on_gate_wake(ProcId pe, ThreadId raw) = 0;
  virtual void on_gate_advance(ProcId pe, ThreadId raw, std::uint64_t gate) = 0;
  virtual void on_barrier_join(ProcId pe, ThreadId raw) = 0;
  virtual void on_barrier_pass(ProcId pe, ThreadId raw) = 0;

  // ----- probes -----

  /// Every EXU cycle charge (sanity: wrapped-negative amounts).
  virtual void on_charge(ProcId pe, Cycle cycles) = 0;
};

}  // namespace emx::rt
