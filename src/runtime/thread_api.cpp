#include "runtime/thread_api.hpp"

// Header-only awaiters; TU anchors the module in the library.
