// ThreadEngine: the hardware FIFO thread scheduler of one EMC-Y.
//
// Packets queued in the Input Buffer Unit drive everything: a thread of
// instructions is invoked (kInvoke) or resumed (read replies, local
// wakes) by the Matching Unit strictly in FIFO order whenever the
// Execution Unit is free; it then runs to completion or to its next
// suspension (split-phase remote read, gate wait, barrier join). The
// engine charges every cycle to a bucket and counts the paper's three
// switch types.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "core/config.hpp"
#include "network/packet.hpp"
#include "proc/channel_hooks.hpp"
#include "proc/execution_unit.hpp"
#include "proc/input_buffer_unit.hpp"
#include "proc/matching_unit.hpp"
#include "proc/memory.hpp"
#include "proc/output_buffer_unit.hpp"
#include "runtime/barrier.hpp"
#include "runtime/check_hooks.hpp"
#include "runtime/frame.hpp"
#include "runtime/global_addr.hpp"
#include "runtime/order_gate.hpp"
#include "sim/sim_context.hpp"
#include "trace/trace.hpp"

namespace emx::rt {

class EntryRegistry;  // defined in thread_api.hpp

/// The paper's Figure-9 taxonomy.
struct SwitchCounts {
  std::uint64_t remote_read = 0;  ///< suspensions on split-phase reads
  std::uint64_t thread_sync = 0;  ///< suspensions on the ordered-merge gate
  std::uint64_t iter_sync = 0;    ///< barrier joins + failed barrier polls
  std::uint64_t total() const { return remote_read + thread_sync + iter_sync; }
};

class ThreadEngine {
 public:
  ThreadEngine(sim::SimContext& sim, const MachineConfig& config, ProcId proc,
               proc::Memory& memory, proc::OutputBufferUnit& obu,
               EntryRegistry& registry, trace::TraceSink* sink);

  ThreadEngine(const ThreadEngine&) = delete;
  ThreadEngine& operator=(const ThreadEngine&) = delete;

  ProcId proc() const { return proc_; }
  proc::Memory& memory() { return memory_; }
  const MachineConfig& config() const { return config_; }
  proc::InputBufferUnit& ibu() { return ibu_; }
  const proc::InputBufferUnit& ibu() const { return ibu_; }
  proc::MatchingUnit& matching_unit() { return mu_; }
  proc::ExecutionUnit& exu() { return exu_; }
  const proc::ExecutionUnit& exu() const { return exu_; }
  const SwitchCounts& switches() const { return switches_; }
  const LocalBarrier& barrier() const { return barrier_; }
  std::uint64_t reads_issued() const { return reads_issued_; }
  const FramePool& frames() const { return frames_; }

  // ----- Machine-facing -----

  /// Configures the iteration barrier: coordinator PE, the registered
  /// join-handler entry, and how many threads participate on this PE.
  void set_barrier(ProcId coordinator, std::uint32_t join_entry,
                   std::uint32_t expected_local);

  /// Accepts a thread-queue packet (invocation, reply, wake — and, in
  /// EM-4 read-service mode, remote read requests).
  void enqueue_packet(const net::Packet& packet);

  /// Schedules a host-injected thread invocation at an absolute cycle.
  void schedule_invocation(Cycle at, std::uint32_t entry, Word arg);

  /// Arms the reliability protocol (fault-injection runs only): the
  /// channel learns when the IBU commits the side effects it must
  /// acknowledge (invoke dispatch) or retire (reply dispatch). Sequence
  /// stamping itself lives at the OBU choke point.
  void set_channel(proc::ChannelHooks* channel) { channel_ = channel; }

  /// Transient fail-stop outage: freeze dispatch and flush every
  /// fabric-origin packet out of the IBU (a dead PE loses its NIC FIFOs).
  /// Self-loopback packets — gate wakes, barrier polls, yield wakes —
  /// stay: they are on-chip scheduler state, not fabric traffic, and
  /// flushing them would wedge threads no retransmit can reach. The
  /// in-flight EXU activity completes; memory survives.
  void begin_outage();
  void end_outage();

  /// Arms the correctness checkers (analysis runs only): thread lifetime,
  /// every attributed access, and every synchronization edge report into
  /// the shared analysis hub at issue time.
  void set_checker(CheckHooks* checker) { checker_ = checker; }

  // ----- Awaiter-facing (called while a thread coroutine runs) -----

  void exec_compute(ThreadRecord* r, Cycle instructions);
  void exec_overhead(ThreadRecord* r, Cycle instructions);
  void exec_remote_read(ThreadRecord* r, GlobalAddr src);
  void exec_remote_read_pair(ThreadRecord* r, GlobalAddr src0, GlobalAddr src1);
  void exec_block_read(ThreadRecord* r, GlobalAddr src, LocalAddr dest,
                       std::uint32_t len);
  void exec_remote_write(ThreadRecord* r, GlobalAddr dest, Word value);
  void exec_spawn(ThreadRecord* r, ProcId dest, std::uint32_t entry, Word arg);
  void exec_gate_wait(ThreadRecord* r, OrderGate& gate, std::uint32_t index);
  void exec_gate_advance(ThreadRecord* r, OrderGate& gate);
  void exec_barrier_join(ThreadRecord* r);
  /// Explicit thread switching (paper §2.3): the thread requeues itself
  /// behind everything already in the packet FIFO.
  void exec_yield(ThreadRecord* r);

  std::uint64_t explicit_yields() const { return explicit_yields_; }

  // ----- untimed thread helpers (ThreadApi) -----
  // Local accesses route through the engine so an armed checker sees them
  // attributed to the running thread; unarmed, they are the plain memory
  // ops they always were. Out-of-range accesses become diagnostics (read
  // 0 / dropped store) when a checker is armed instead of tripping the
  // memory assertion, so a buggy program can finish and report.

  Word local_read(ThreadRecord* r, LocalAddr addr);
  void local_write(ThreadRecord* r, LocalAddr addr, Word value);
  /// Declares [base, base+len) an activation-frame region (memcheck).
  void note_frame_mark(ThreadRecord* r, LocalAddr base, std::uint32_t len);
  /// Retires the frame region previously marked at `base`.
  void note_frame_drop(ThreadRecord* r, LocalAddr base);

  /// Serializes the engine's architectural state: frames, IBU, MU/EXU
  /// accounting, barrier bookkeeping, switch counters, and the packets in
  /// mid-dispatch. Coroutine frames are pinned indirectly through the
  /// FramePool record state (see FramePool::save).
  void save(ser::Serializer& s) const {
    s.boolean(frozen_);
    current_packet_.save(s);
    em4_pending_.save(s);
    s.u32(barrier_.expected);
    s.u32(barrier_.joined);
    s.u32(barrier_.passed);
    s.u8(barrier_.sense);
    s.u64(barrier_.episodes);
    s.u32(barrier_coordinator_);
    s.u32(barrier_join_entry_);
    s.u64(switches_.remote_read);
    s.u64(switches_.thread_sync);
    s.u64(switches_.iter_sync);
    s.u64(reads_issued_);
    s.u64(stale_wakes_);
    s.u64(explicit_yields_);
    ibu_.save(s);
    mu_.save(s);
    exu_.save(s);
    frames_.save(s);
  }

 private:
  static constexpr std::uint32_t kGateWakeTag = 0xFFFFFFFEu;
  static constexpr std::uint32_t kBarrierPollTag = 0xFFFFFFFDu;
  static constexpr std::uint32_t kYieldWakeTag = 0xFFFFFFFCu;

  static void dispatch_ready_event(void* ctx, std::uint64_t, std::uint64_t);
  static void resume_event(void* ctx, std::uint64_t thread, std::uint64_t);
  static void exu_done_event(void* ctx, std::uint64_t, std::uint64_t);
  static void self_wake_event(void* ctx, std::uint64_t thread, std::uint64_t tag);
  static void em4_service_done_event(void* ctx, std::uint64_t, std::uint64_t);
  static void injection_event(void* ctx, std::uint64_t entry, std::uint64_t arg);

  void maybe_start_dispatch();
  void do_dispatch();
  void handle_local_wake(const net::Packet& packet);
  void handle_em4_read(const net::Packet& packet);
  void run_thread(ThreadRecord* r);
  void on_thread_done(ThreadRecord* r);
  void release_exu();
  void charge(proc::CycleBucket bucket, Cycle cycles);
  void send_self_wake(ThreadId target, Cycle delay, std::uint32_t tag);
  void emit(trace::EventType type, ThreadId thread, std::uint64_t info = 0);

  sim::SimContext& sim_;
  const MachineConfig& config_;
  ProcId proc_;
  proc::Memory& memory_;
  proc::OutputBufferUnit& obu_;
  EntryRegistry& registry_;
  trace::TraceSink* sink_;
  proc::ChannelHooks* channel_ = nullptr;  ///< null on fault-free runs
  CheckHooks* checker_ = nullptr;          ///< null on unchecked runs
  bool frozen_ = false;  ///< PE outage in progress: no new dispatches

  proc::InputBufferUnit ibu_;
  proc::MatchingUnit mu_;
  proc::ExecutionUnit exu_;
  FramePool frames_;

  net::Packet current_packet_{};  ///< packet being dispatched
  net::Packet em4_pending_{};     ///< EM-4 read request in EXU service

  LocalBarrier barrier_;
  ProcId barrier_coordinator_ = 0;
  std::uint32_t barrier_join_entry_ = 0;

  SwitchCounts switches_;
  std::uint64_t reads_issued_ = 0;
  std::uint64_t stale_wakes_ = 0;
  std::uint64_t explicit_yields_ = 0;
};

}  // namespace emx::rt
