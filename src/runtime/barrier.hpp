// Iteration barrier (paper §4: "we forced loops to execute synchronously
// by inserting a barrier at the end of each iteration").
//
// Sense-reversing, packet-based:
//  * every participating thread joins and suspends (one iteration-sync
//    switch);
//  * the last thread on a PE sends a join packet — an actual thread
//    invocation — to the coordinator (PE 0 for the central topology, the
//    binary-tree parent for the tree topology);
//  * when every PE has joined, the coordinator releases the barrier with
//    remote writes that set the sense flag word in each PE's reserved
//    memory (serviced by the by-pass DMA, no EXU involvement);
//  * suspended threads re-check the flag every barrier_poll_interval
//    cycles; each failed re-check is a further iteration-sync switch —
//    this polling is what makes iteration-sync switching grow with the
//    thread count in the paper's Figure 9.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace emx::rt {

/// Reserved low words of every PE's memory used by the runtime.
inline constexpr LocalAddr kBarrierFlagAddr0 = 0;  ///< sense-0 release flag
inline constexpr LocalAddr kBarrierFlagAddr1 = 1;  ///< sense-1 release flag
inline constexpr LocalAddr kReservedWords = 16;    ///< apps start here

inline constexpr LocalAddr barrier_flag_addr(std::uint8_t sense) {
  return sense == 0 ? kBarrierFlagAddr0 : kBarrierFlagAddr1;
}

/// Per-PE barrier bookkeeping held by the thread engine.
struct LocalBarrier {
  std::uint32_t expected = 0;  ///< participating threads on this PE
  std::uint32_t joined = 0;    ///< joins so far this episode
  std::uint32_t passed = 0;    ///< threads that observed the release
  std::uint8_t sense = 0;      ///< current episode's sense bit
  std::uint64_t episodes = 0;  ///< completed barrier episodes
};

/// Coordinator-side state (owned by the Machine). For the central
/// topology only node 0 is used; the tree topology keeps one node per PE.
struct BarrierNode {
  std::uint32_t expected = 0;  ///< join packets this node waits for
  std::uint32_t count = 0;
};

}  // namespace emx::rt
