#include "runtime/scheduler.hpp"

#include <vector>

#include "common/assert.hpp"
#include "runtime/thread_api.hpp"

namespace emx::rt {

using proc::CycleBucket;

ThreadEngine::ThreadEngine(sim::SimContext& sim, const MachineConfig& config,
                           ProcId proc, proc::Memory& memory,
                           proc::OutputBufferUnit& obu, EntryRegistry& registry,
                           trace::TraceSink* sink)
    : sim_(sim),
      config_(config),
      proc_(proc),
      memory_(memory),
      obu_(obu),
      registry_(registry),
      sink_(sink),
      ibu_(config.ibu_fifo_depth),
      mu_(config.mu_dispatch_cycles) {}

void ThreadEngine::set_barrier(ProcId coordinator, std::uint32_t join_entry,
                               std::uint32_t expected_local) {
  barrier_coordinator_ = coordinator;
  barrier_join_entry_ = join_entry;
  barrier_.expected = expected_local;
  EMX_CHECK(barrier_.joined == 0 && barrier_.passed == 0,
            "reconfiguring a barrier mid-episode");
}

void ThreadEngine::emit(trace::EventType type, ThreadId thread, std::uint64_t info) {
  if (sink_ == nullptr) return;
  sink_->on_event(trace::TraceEvent{sim_.now(), proc_, thread, type, info});
}

// ---------------------------------------------------------------- dispatch

void ThreadEngine::enqueue_packet(const net::Packet& packet) {
  ibu_.push(packet);
  maybe_start_dispatch();
}

void ThreadEngine::schedule_invocation(Cycle at, std::uint32_t entry, Word arg) {
  sim_.schedule_at(at, &ThreadEngine::injection_event, this, entry, arg);
}

void ThreadEngine::injection_event(void* ctx, std::uint64_t entry, std::uint64_t arg) {
  auto* self = static_cast<ThreadEngine*>(ctx);
  net::Packet p;
  p.kind = net::PacketKind::kInvoke;
  p.src = self->proc_;
  p.dst = self->proc_;
  p.addr = static_cast<Word>(entry);
  p.data = static_cast<Word>(arg);
  self->enqueue_packet(p);
}

void ThreadEngine::begin_outage() {
  EMX_CHECK(!frozen_, "nested PE outage windows");
  frozen_ = true;
  // The NIC FIFOs die with the PE: flush every fabric-origin packet out
  // of the IBU. Self-loopback continuations (gate wakes, barrier polls,
  // yield wakes, host-injected invokes) are on-chip scheduler state, not
  // fabric traffic — they survive, or threads parked on them could never
  // be woken again (no peer retransmits a packet it never sent).
  std::vector<net::Packet> kept;
  kept.reserve(ibu_.size());
  while (!ibu_.empty()) {
    const net::Packet p = ibu_.pop();
    if (p.src == proc_) {
      kept.push_back(p);
    } else if (channel_ != nullptr) {
      channel_->on_packet_flushed(p);
    }
  }
  for (const net::Packet& p : kept) ibu_.push(p);
}

void ThreadEngine::end_outage() {
  EMX_CHECK(frozen_, "outage end without a begin");
  frozen_ = false;
  maybe_start_dispatch();
}

void ThreadEngine::maybe_start_dispatch() {
  if (frozen_ || exu_.busy() || ibu_.empty()) return;
  exu_.begin_busy(sim_.now());
  current_packet_ = ibu_.pop();
  mu_.note_dispatch();
  // Direct matching: the MU's five-step dispatch sequence (paper §2.2).
  charge(CycleBucket::kSwitch, config_.mu_dispatch_cycles);
  sim_.schedule(config_.mu_dispatch_cycles, &ThreadEngine::dispatch_ready_event,
                this, 0, 0);
}

void ThreadEngine::dispatch_ready_event(void* ctx, std::uint64_t, std::uint64_t) {
  static_cast<ThreadEngine*>(ctx)->do_dispatch();
}

void ThreadEngine::do_dispatch() {
  const net::Packet p = current_packet_;
  using net::PacketKind;
  switch (p.kind) {
    case PacketKind::kInvoke: {
      // The side effect is about to commit: acknowledge the invoke and
      // advance the dedup window (NIC-accept only marked it pending).
      if (channel_ != nullptr && p.chan_seq != 0)
        channel_->on_invoke_dispatched(p);
      ThreadRecord& r = frames_.alloc(kInvalidThread);
      ThreadBody body = registry_.get(p.addr)(ThreadApi{this, &r}, p.data);
      r.coro = body.release();
      EMX_CHECK(static_cast<bool>(r.coro), "entry produced an empty thread body");
      mu_.note_invoke();
      emit(trace::EventType::kThreadInvoke, r.id, p.addr);
      if (checker_ != nullptr)
        checker_->on_thread_start(proc_, r.id, p.addr, p.hb_token);
      run_thread(&r);
      return;
    }
    case PacketKind::kRemoteReadReply: {
      // The value reaches the thread engine now: retire the request (the
      // channel kept the entry live across the IBU in case an outage
      // flushed the reply before this point).
      if (channel_ != nullptr) channel_->on_reply_dispatched(p);
      ThreadRecord& r = frames_.get(p.cont_thread);
      EMX_CHECK(r.state == ThreadState::kSuspendedRead,
                "read reply for a thread not suspended on a read");
      EMX_CHECK(r.pending_tag == p.cont_tag, "stale read reply");
      EMX_CHECK(r.replies_pending > 0, "reply with no outstanding read");
      if (p.cont_slot == 0) {
        r.reply_value = p.data;
      } else {
        r.reply_value2 = p.data;
      }
      if (--r.replies_pending > 0) {
        // Two-operand direct matching: the first token is stored to
        // matching memory; the thread resumes only on the mate's arrival.
        mu_.note_match();
        charge(CycleBucket::kSwitch, config_.match_store_cycles);
        emit(trace::EventType::kReadReturn, r.id, p.data);
        sim_.schedule(config_.match_store_cycles, &ThreadEngine::exu_done_event,
                      this, 0, 0);
        return;
      }
      mu_.note_resume();
      emit(trace::EventType::kReadReturn, r.id, p.data);
      run_thread(&r);
      return;
    }
    case PacketKind::kBlockReadReply: {
      if (channel_ != nullptr) channel_->on_reply_dispatched(p);
      ThreadRecord& r = frames_.get(p.cont_thread);
      EMX_CHECK(r.state == ThreadState::kSuspendedRead,
                "block reply for a thread not suspended on a read");
      EMX_CHECK(r.pending_tag == p.cont_tag, "stale block read reply");
      // Final word of the block: store it, then resume the thread.
      memory_.write(unpack(p.addr).addr, p.data);
      r.reply_value = p.data;
      r.replies_pending = 0;
      mu_.note_resume();
      emit(trace::EventType::kReadReturn, r.id, p.data);
      run_thread(&r);
      return;
    }
    case PacketKind::kLocalWake:
      handle_local_wake(p);
      return;
    case PacketKind::kRemoteReadReq:
    case PacketKind::kBlockReadReq:
      // The EM-4 service commits now; later duplicates of this block-read
      // request must only re-fetch the resuming word.
      if (p.kind == PacketKind::kBlockReadReq && channel_ != nullptr)
        channel_->on_block_read_serviced(p);
      handle_em4_read(p);
      return;
    case PacketKind::kRemoteWrite:
      EMX_UNREACHABLE("remote write reached the thread queue");
    case PacketKind::kAck:
      EMX_UNREACHABLE("ACK reached the thread queue (NIC-level packet)");
  }
}

void ThreadEngine::handle_local_wake(const net::Packet& p) {
  ThreadRecord& r = frames_.get(p.cont_thread);
  if (p.cont_tag == kGateWakeTag) {
    EMX_CHECK(r.state == ThreadState::kSuspendedGate,
              "gate wake for a thread not waiting on a gate");
    mu_.note_resume();
    emit(trace::EventType::kGateWake, r.id);
    // The waiter acquires the gate's clock before its first instruction.
    if (checker_ != nullptr) checker_->on_gate_wake(proc_, r.id);
    run_thread(&r);
    return;
  }
  if (p.cont_tag == kYieldWakeTag) {
    EMX_CHECK(r.state == ThreadState::kSuspendedYield,
              "yield wake for a thread that is not yielding");
    mu_.note_resume();
    run_thread(&r);
    return;
  }
  EMX_CHECK(p.cont_tag == kBarrierPollTag, "unknown local wake tag");
  if (r.state != ThreadState::kSuspendedBarrier) {
    // The thread was already released by an earlier poll; drop.
    ++stale_wakes_;
    release_exu();
    return;
  }
  // Barrier flag re-check: a couple of instructions on the EXU.
  charge(CycleBucket::kSwitch, config_.barrier_check_cycles);
  const bool released = memory_.read(barrier_flag_addr(barrier_.sense)) != 0;
  if (released) {
    ++barrier_.passed;
    emit(trace::EventType::kBarrierPass, r.id);
    if (checker_ != nullptr) checker_->on_barrier_pass(proc_, r.id);
    if (barrier_.passed == barrier_.expected) {
      // Last local thread through: retire this episode's flag and flip
      // the sense for the next one (sense-reversing barrier).
      memory_.write(barrier_flag_addr(barrier_.sense), 0);
      barrier_.sense ^= 1;
      barrier_.passed = 0;
      ++barrier_.episodes;
    }
    mu_.note_resume();
    // The thread continues after the check instructions complete.
    r.state = ThreadState::kRunning;
    sim_.schedule(config_.barrier_check_cycles, &ThreadEngine::resume_event,
                  this, r.id, 0);
    return;
  }
  ++switches_.iter_sync;
  emit(trace::EventType::kBarrierPoll, r.id);
  send_self_wake(r.id, config_.barrier_check_cycles + config_.barrier_poll_interval,
                 kBarrierPollTag);
  sim_.schedule(config_.barrier_check_cycles, &ThreadEngine::exu_done_event, this,
                0, 0);
}

void ThreadEngine::handle_em4_read(const net::Packet& p) {
  EMX_CHECK(config_.read_service == ReadServiceMode::kExuThread,
            "read request reached the thread queue in by-pass mode");
  // EM-4 compatibility: the request executes as a 1-instruction thread,
  // consuming EXU cycles (paper §2.1). Extra block words stream at the
  // wire rate on top of the per-request service.
  const Cycle words = p.kind == net::PacketKind::kBlockReadReq ? p.block_len : 1;
  const Cycle cost = config_.exu_read_service_cycles +
                     (words - 1) * config_.dma_block_word_cycles;
  charge(CycleBucket::kReadService, cost);
  em4_pending_ = p;
  sim_.schedule(cost, &ThreadEngine::em4_service_done_event, this, 0, 0);
}

void ThreadEngine::em4_service_done_event(void* ctx, std::uint64_t, std::uint64_t) {
  auto* self = static_cast<ThreadEngine*>(ctx);
  const net::Packet& req = self->em4_pending_;
  const GlobalAddr base = unpack(req.addr);
  if (req.kind == net::PacketKind::kRemoteReadReq) {
    net::Packet reply;
    reply.kind = net::PacketKind::kRemoteReadReply;
    reply.src = self->proc_;
    reply.dst = req.src;
    reply.addr = req.data;
    reply.data = self->memory_.read(base.addr);
    reply.cont_thread = req.cont_thread;
    reply.cont_tag = req.cont_tag;
    reply.cont_slot = req.cont_slot;
    reply.priority = req.priority;
    reply.req_seq = req.req_seq;
    self->obu_.send(reply);
  } else {
    const GlobalAddr dest = unpack(req.data);
    for (std::uint32_t i = 0; i < req.block_len; ++i) {
      net::Packet reply;
      reply.src = self->proc_;
      reply.dst = req.src;
      reply.cont_thread = req.cont_thread;
      reply.cont_tag = req.cont_tag;
      reply.cont_slot = req.cont_slot;
      reply.priority = req.priority;
      reply.data = self->memory_.read(base.addr + i);
      reply.addr = pack(dest + i);
      reply.kind = (i + 1 < req.block_len) ? net::PacketKind::kRemoteWrite
                                           : net::PacketKind::kBlockReadReply;
      if (reply.kind == net::PacketKind::kBlockReadReply)
        reply.req_seq = req.req_seq;
      self->obu_.send(reply);
    }
  }
  self->release_exu();
}

// ---------------------------------------------------------------- running

void ThreadEngine::run_thread(ThreadRecord* r) {
  // A thread executing instructions is the watchdog's definition of
  // forward progress (barrier polls deliberately don't count: a machine
  // doing nothing but re-checking an unreleased flag is livelocked).
  sim_.note_progress();
  if (checker_ != nullptr) checker_->on_thread_run(proc_, r->id);
  r->state = ThreadState::kRunning;
  r->coro.resume();
  // The coroutine ran until its next awaiter (which already scheduled the
  // follow-up event and charged the EXU) or to completion.
  if (r->coro.done()) on_thread_done(r);
}

void ThreadEngine::on_thread_done(ThreadRecord* r) {
  emit(trace::EventType::kThreadEnd, r->id);
  if (checker_ != nullptr) checker_->on_thread_end(proc_, r->id);
  frames_.free(*r);
  // "The completion ... of a thread causes the next packet to be
  //  automatically dequeued from the packet queue" — no save cost.
  release_exu();
}

void ThreadEngine::release_exu() {
  exu_.end_busy(sim_.now());
  maybe_start_dispatch();
}

void ThreadEngine::resume_event(void* ctx, std::uint64_t thread, std::uint64_t) {
  auto* self = static_cast<ThreadEngine*>(ctx);
  ThreadRecord& r = self->frames_.get(static_cast<ThreadId>(thread));
  EMX_DCHECK(r.state == ThreadState::kRunning, "resume of non-running thread");
  self->run_thread(&r);
}

void ThreadEngine::exu_done_event(void* ctx, std::uint64_t, std::uint64_t) {
  static_cast<ThreadEngine*>(ctx)->release_exu();
}

void ThreadEngine::self_wake_event(void* ctx, std::uint64_t thread,
                                   std::uint64_t tag) {
  auto* self = static_cast<ThreadEngine*>(ctx);
  net::Packet p;
  p.kind = net::PacketKind::kLocalWake;
  p.src = self->proc_;
  p.dst = self->proc_;
  p.cont_thread = static_cast<ThreadId>(thread);
  p.cont_tag = static_cast<std::uint32_t>(tag);
  self->enqueue_packet(p);
}

void ThreadEngine::send_self_wake(ThreadId target, Cycle delay, std::uint32_t tag) {
  // Loopback continuation: packet generation + OBU->IBU turnaround.
  sim_.schedule(delay + config_.self_loop_cycles, &ThreadEngine::self_wake_event,
                this, target, tag);
}

// ---------------------------------------------------------------- awaiters

void ThreadEngine::exec_compute(ThreadRecord* r, Cycle instructions) {
  charge(CycleBucket::kCompute, instructions);
  emit(trace::EventType::kComputeBegin, r->id, instructions);
  sim_.schedule(instructions, &ThreadEngine::resume_event, this, r->id, 0);
}

void ThreadEngine::exec_overhead(ThreadRecord* r, Cycle instructions) {
  // Loop scaffolding around packet generation — what the paper measured
  // with a null loop body and reports as "overhead" in Figure 8.
  charge(CycleBucket::kOverhead, instructions);
  sim_.schedule(instructions, &ThreadEngine::resume_event, this, r->id, 0);
}

void ThreadEngine::exec_remote_read(ThreadRecord* r, GlobalAddr src) {
  ++reads_issued_;
  if (checker_ != nullptr)
    checker_->on_remote_read(proc_, r->id, src.proc, src.addr);
  charge(CycleBucket::kOverhead, config_.packet_gen_cycles);
  net::Packet p;
  p.kind = net::PacketKind::kRemoteReadReq;
  p.src = proc_;
  p.dst = src.proc;
  p.addr = pack(src);
  p.data = pack(GlobalAddr{proc_, 0});  // continuation (return address)
  p.cont_thread = r->id;
  p.cont_tag = ++r->pending_tag;
  p.cont_slot = 0;
  p.priority = config_.priority_replies ? net::PacketPriority::kHigh
                                        : net::PacketPriority::kNormal;
  obu_.send(p);  // the OBU's channel hook stamps req_seq on faulted runs
  emit(trace::EventType::kReadIssue, r->id, pack(src));

  // Split-phase suspension: save live registers, then the MU dequeues the
  // next packet (paper §2.1/§2.3).
  ++switches_.remote_read;
  charge(CycleBucket::kSwitch, config_.switch_save_cycles);
  r->state = ThreadState::kSuspendedRead;
  r->replies_pending = 1;
  if (checker_ != nullptr) checker_->on_read_suspend(proc_, r->id);
  emit(trace::EventType::kSuspendRead, r->id);
  sim_.schedule(config_.packet_gen_cycles + config_.switch_save_cycles,
                &ThreadEngine::exu_done_event, this, 0, 0);
}

void ThreadEngine::exec_remote_read_pair(ThreadRecord* r, GlobalAddr src0,
                                         GlobalAddr src1) {
  // Both requests go out back to back; the thread suspends once and the
  // MU's two-operand direct matching resumes it when both replies have
  // arrived (paper §2.2/§2.3). One suspension, two packets.
  reads_issued_ += 2;
  if (checker_ != nullptr) {
    checker_->on_remote_read(proc_, r->id, src0.proc, src0.addr);
    checker_->on_remote_read(proc_, r->id, src1.proc, src1.addr);
  }
  charge(CycleBucket::kOverhead, 2 * config_.packet_gen_cycles);
  const std::uint32_t tag = ++r->pending_tag;
  const GlobalAddr sources[2] = {src0, src1};
  for (std::uint8_t slot = 0; slot < 2; ++slot) {
    net::Packet p;
    p.kind = net::PacketKind::kRemoteReadReq;
    p.src = proc_;
    p.dst = sources[slot].proc;
    p.addr = pack(sources[slot]);
    p.data = pack(GlobalAddr{proc_, 0});
    p.cont_thread = r->id;
    p.cont_tag = tag;
    p.cont_slot = slot;
    p.priority = config_.priority_replies ? net::PacketPriority::kHigh
                                          : net::PacketPriority::kNormal;
    obu_.send(p);
    emit(trace::EventType::kReadIssue, r->id, pack(sources[slot]));
  }

  ++switches_.remote_read;
  charge(CycleBucket::kSwitch, config_.switch_save_cycles);
  r->state = ThreadState::kSuspendedRead;
  r->replies_pending = 2;
  if (checker_ != nullptr) checker_->on_read_suspend(proc_, r->id);
  emit(trace::EventType::kSuspendRead, r->id);
  sim_.schedule(2 * config_.packet_gen_cycles + config_.switch_save_cycles,
                &ThreadEngine::exu_done_event, this, 0, 0);
}

void ThreadEngine::exec_block_read(ThreadRecord* r, GlobalAddr src,
                                   LocalAddr dest, std::uint32_t len) {
  EMX_CHECK(len >= 1, "block read of zero words");
  ++reads_issued_;
  if (checker_ != nullptr)
    checker_->on_block_read(proc_, r->id, src.proc, src.addr, dest, len);
  charge(CycleBucket::kOverhead, config_.packet_gen_cycles);
  net::Packet p;
  p.kind = net::PacketKind::kBlockReadReq;
  p.src = proc_;
  p.dst = src.proc;
  p.addr = pack(src);
  p.data = pack(GlobalAddr{proc_, dest});
  p.block_len = len;
  p.cont_thread = r->id;
  p.cont_tag = ++r->pending_tag;
  p.priority = config_.priority_replies ? net::PacketPriority::kHigh
                                        : net::PacketPriority::kNormal;
  obu_.send(p);
  emit(trace::EventType::kReadIssue, r->id, pack(src));

  ++switches_.remote_read;
  charge(CycleBucket::kSwitch, config_.switch_save_cycles);
  r->state = ThreadState::kSuspendedRead;
  r->replies_pending = 1;
  if (checker_ != nullptr) checker_->on_read_suspend(proc_, r->id);
  emit(trace::EventType::kSuspendRead, r->id);
  sim_.schedule(config_.packet_gen_cycles + config_.switch_save_cycles,
                &ThreadEngine::exu_done_event, this, 0, 0);
}

void ThreadEngine::exec_remote_write(ThreadRecord* r, GlobalAddr dest, Word value) {
  if (checker_ != nullptr)
    checker_->on_remote_write(proc_, r->id, dest.proc, dest.addr);
  charge(CycleBucket::kOverhead, config_.packet_gen_cycles);
  net::Packet p;
  p.kind = net::PacketKind::kRemoteWrite;
  p.src = proc_;
  p.dst = dest.proc;
  p.addr = pack(dest);
  p.data = value;
  obu_.send(p);
  emit(trace::EventType::kWriteIssue, r->id, pack(dest));
  // Remote writes do not suspend the issuing thread (paper §2.3).
  sim_.schedule(config_.packet_gen_cycles, &ThreadEngine::resume_event, this,
                r->id, 0);
}

void ThreadEngine::exec_spawn(ThreadRecord* r, ProcId dest, std::uint32_t entry,
                              Word arg) {
  charge(CycleBucket::kOverhead, config_.packet_gen_cycles);
  net::Packet p;
  p.kind = net::PacketKind::kInvoke;
  p.src = proc_;
  p.dst = dest;
  p.addr = static_cast<Word>(entry);
  p.data = arg;
  // The invoke packet carries the spawner's clock snapshot so the new
  // thread starts ordered after everything the spawner did.
  if (checker_ != nullptr) p.hb_token = checker_->on_spawn(proc_, r->id);
  obu_.send(p);
  emit(trace::EventType::kSpawnIssue, r->id, (static_cast<std::uint64_t>(dest) << 32) | entry);
  // The spawning thread continues without interruption (paper §2.3).
  sim_.schedule(config_.packet_gen_cycles, &ThreadEngine::resume_event, this,
                r->id, 0);
}

void ThreadEngine::exec_yield(ThreadRecord* r) {
  // Explicit switching: save registers and send our own continuation to
  // the back of the FIFO; every packet already queued dispatches first.
  ++explicit_yields_;
  charge(CycleBucket::kSwitch, config_.switch_save_cycles);
  charge(CycleBucket::kOverhead, config_.packet_gen_cycles);
  r->state = ThreadState::kSuspendedYield;
  emit(trace::EventType::kSuspendYield, r->id);
  const Cycle busy = config_.switch_save_cycles + config_.packet_gen_cycles;
  send_self_wake(r->id, busy, kYieldWakeTag);
  sim_.schedule(busy, &ThreadEngine::exu_done_event, this, 0, 0);
}

void ThreadEngine::exec_gate_wait(ThreadRecord* r, OrderGate& gate,
                                  std::uint32_t index) {
  if (gate.passable(index)) {
    // Gate already open: just the check instructions, no switch.
    if (checker_ != nullptr) checker_->on_gate_pass(proc_, r->id, gate.uid());
    charge(CycleBucket::kCompute, config_.barrier_check_cycles);
    sim_.schedule(config_.barrier_check_cycles, &ThreadEngine::resume_event, this,
                  r->id, 0);
    return;
  }
  gate.register_waiter(index, r->id);
  if (checker_ != nullptr) checker_->on_gate_block(proc_, r->id, gate.uid(), index);
  ++switches_.thread_sync;
  charge(CycleBucket::kSwitch, config_.switch_save_cycles);
  r->state = ThreadState::kSuspendedGate;
  emit(trace::EventType::kSuspendGate, r->id, index);
  sim_.schedule(config_.switch_save_cycles, &ThreadEngine::exu_done_event, this,
                0, 0);
}

void ThreadEngine::exec_gate_advance(ThreadRecord* r, OrderGate& gate) {
  // Release edge: publish this thread's clock to the gate before the
  // successor (woken below, or passing later) acquires it.
  if (checker_ != nullptr) checker_->on_gate_advance(proc_, r->id, gate.uid());
  const ThreadId waiter = gate.advance();
  Cycle cost = 1;  // the increment instruction
  charge(CycleBucket::kCompute, 1);
  if (waiter != kInvalidThread) {
    // Wake the successor with a continuation packet to ourselves.
    charge(CycleBucket::kOverhead, config_.packet_gen_cycles);
    cost += config_.packet_gen_cycles;
    send_self_wake(waiter, cost, kGateWakeTag);
  }
  sim_.schedule(cost, &ThreadEngine::resume_event, this, r->id, 0);
}

void ThreadEngine::exec_barrier_join(ThreadRecord* r) {
  EMX_CHECK(barrier_.expected > 0, "iteration barrier not configured");
  if (checker_ != nullptr) checker_->on_barrier_join(proc_, r->id);
  ++barrier_.joined;
  ++switches_.iter_sync;
  charge(CycleBucket::kSwitch, config_.switch_save_cycles);
  r->state = ThreadState::kSuspendedBarrier;
  emit(trace::EventType::kSuspendBarrier, r->id);
  Cycle busy = config_.switch_save_cycles;
  if (barrier_.joined == barrier_.expected) {
    barrier_.joined = 0;
    // Last local thread: one join packet to the coordinator.
    charge(CycleBucket::kOverhead, config_.packet_gen_cycles);
    busy += config_.packet_gen_cycles;
    net::Packet p;
    p.kind = net::PacketKind::kInvoke;
    p.src = proc_;
    p.dst = barrier_coordinator_;
    p.addr = static_cast<Word>(barrier_join_entry_);
    p.data = barrier_.sense;
    obu_.send(p);
  }
  send_self_wake(r->id, busy + config_.barrier_poll_interval, kBarrierPollTag);
  sim_.schedule(busy, &ThreadEngine::exu_done_event, this, 0, 0);
}

// ------------------------------------------------------- untimed helpers

void ThreadEngine::charge(proc::CycleBucket bucket, Cycle cycles) {
  if (checker_ != nullptr) checker_->on_charge(proc_, cycles);
  exu_.charge(bucket, cycles);
}

Word ThreadEngine::local_read(ThreadRecord* r, LocalAddr addr) {
  if (checker_ != nullptr) {
    checker_->on_local_read(proc_, r->id, addr);
    if (addr >= memory_.size()) return 0;  // diagnosed as oob-access
  }
  return memory_.read(addr);
}

void ThreadEngine::local_write(ThreadRecord* r, LocalAddr addr, Word value) {
  if (checker_ != nullptr) {
    checker_->on_local_write(proc_, r->id, addr);
    if (addr >= memory_.size()) return;  // diagnosed as oob-access
  }
  memory_.write(addr, value);
}

void ThreadEngine::note_frame_mark(ThreadRecord* r, LocalAddr base,
                                   std::uint32_t len) {
  if (checker_ != nullptr) checker_->on_frame_mark(proc_, r->id, base, len);
}

void ThreadEngine::note_frame_drop(ThreadRecord* r, LocalAddr base) {
  if (checker_ != nullptr) checker_->on_frame_drop(proc_, r->id, base);
}

}  // namespace emx::rt
