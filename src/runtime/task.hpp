// The coroutine type for simulated EM-X threads.
//
// One EM-X thread == one C++20 coroutine. Explicit-switch, split-phase
// semantics (paper §2.1) map directly: `co_await api.remote_read(ga)`
// issues the read packet, saves registers, suspends the thread, and the
// hardware FIFO scheduler resumes it when the reply packet is dispatched.
// Thread bodies must not throw; a simulated thread has no exception path.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace emx::rt {

class ThreadBody {
 public:
  struct promise_type {
    ThreadBody get_return_object() {
      return ThreadBody{Handle::from_promise(*this)};
    }
    // The engine resumes the coroutine only once the invocation packet is
    // dispatched, so creation never runs body code.
    std::suspend_always initial_suspend() noexcept { return {}; }
    // Suspend at the end so the engine observes done() and reclaims the
    // frame deterministically.
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  ThreadBody() = default;
  explicit ThreadBody(Handle handle) : handle_(handle) {}
  ThreadBody(ThreadBody&& other) noexcept
      : handle_(std::exchange(other.handle_, {})) {}
  ThreadBody& operator=(ThreadBody&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ThreadBody(const ThreadBody&) = delete;
  ThreadBody& operator=(const ThreadBody&) = delete;
  ~ThreadBody() { destroy(); }

  /// Transfers ownership of the coroutine frame to the engine.
  Handle release() { return std::exchange(handle_, {}); }

  bool valid() const { return static_cast<bool>(handle_); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_;
};

}  // namespace emx::rt
