#include "runtime/frame.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace emx::rt {

const char* to_string(ThreadState state) {
  switch (state) {
    case ThreadState::kFree:
      return "FREE";
    case ThreadState::kRunning:
      return "RUNNING";
    case ThreadState::kSuspendedRead:
      return "SUSP_READ";
    case ThreadState::kSuspendedGate:
      return "SUSP_GATE";
    case ThreadState::kSuspendedBarrier:
      return "SUSP_BARRIER";
    case ThreadState::kSuspendedYield:
      return "SUSP_YIELD";
  }
  return "?";
}

ThreadRecord& FramePool::alloc(ThreadId parent) {
  ThreadRecord* rec;
  if (free_head_ != kInvalidThread) {
    rec = &records_[free_head_];
    free_head_ = rec->next_free;
  } else {
    records_.emplace_back();
    rec = &records_.back();
    rec->id = static_cast<ThreadId>(records_.size() - 1);
  }
  EMX_DCHECK(rec->state == ThreadState::kFree, "allocating a live frame");
  rec->parent = parent;
  rec->state = ThreadState::kRunning;
  rec->coro = {};
  rec->reply_value = 0;
  rec->reply_value2 = 0;
  rec->replies_pending = 0;
  rec->pending_tag = 0;
  rec->next_free = kInvalidThread;
  ++created_;
  ++live_;
  peak_live_ = live_ > peak_live_ ? live_ : peak_live_;
  return *rec;
}

void FramePool::free(ThreadRecord& record) {
  EMX_DCHECK(record.state != ThreadState::kFree, "double free of frame");
  if (record.coro) {
    record.coro.destroy();
    record.coro = {};
  }
  record.state = ThreadState::kFree;
  record.next_free = free_head_;
  free_head_ = record.id;
  EMX_DCHECK(live_ > 0, "frame underflow");
  --live_;
}

ThreadRecord& FramePool::get(ThreadId id) {
  EMX_DCHECK(id < records_.size(), "thread id out of range");
  return records_[id];
}

const ThreadRecord& FramePool::get(ThreadId id) const {
  EMX_DCHECK(id < records_.size(), "thread id out of range");
  return records_[id];
}

void FramePool::append_live(std::string& out) const {
  for (const ThreadRecord& rec : records_) {
    if (rec.state == ThreadState::kFree) continue;
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "    thread=%u %s replies_pending=%u tag=%u\n", rec.id,
                  to_string(rec.state), rec.replies_pending, rec.pending_tag);
    out += buf;
  }
}

}  // namespace emx::rt
