#include "runtime/barrier.hpp"

// Data-only module; the protocol lives in the thread engine and the
// Machine's coordinator entries. TU anchors the module in the library.
