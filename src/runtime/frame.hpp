// Activation frames / thread records.
//
// Invoking a function allocates an operand segment as an activation frame
// (paper §2.3); frames form a tree, not a stack. The simulator's
// ThreadRecord is that frame: it owns the coroutine handle (the thread's
// code + saved registers) plus the split-phase continuation slots. A
// FramePool recycles records with stable addresses (deque-backed).
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/types.hpp"
#include "runtime/task.hpp"
#include "common/serializer.hpp"

namespace emx::rt {

enum class ThreadState : std::uint8_t {
  kFree,             ///< record not allocated
  kRunning,          ///< currently on the EXU (or mid-dispatch)
  kSuspendedRead,    ///< waiting for a remote read reply
  kSuspendedGate,    ///< waiting on an ordered-merge gate
  kSuspendedBarrier, ///< waiting at the iteration barrier
  kSuspendedYield,   ///< explicit thread switch; requeued behind the FIFO
};

const char* to_string(ThreadState state);

struct ThreadRecord {
  ThreadId id = kInvalidThread;
  ThreadId parent = kInvalidThread;  ///< frames form a tree (paper §2.3)
  ThreadState state = ThreadState::kFree;
  ThreadBody::Handle coro{};

  /// Split-phase read continuation: replies write their operand slot and
  /// the tag guards against stale packets. Paired reads (two-operand
  /// direct matching) resume only when both slots have arrived.
  Word reply_value = 0;   ///< operand slot 0
  Word reply_value2 = 0;  ///< operand slot 1 (paired reads)
  std::uint8_t replies_pending = 0;
  std::uint32_t pending_tag = 0;

  /// Free-list linkage when state == kFree.
  ThreadId next_free = kInvalidThread;
};

/// Per-PE pool of activation frames. The tree depth ("level of thread
/// activation and suspension") is limited only by memory, as on the EM-X.
class FramePool {
 public:
  ThreadRecord& alloc(ThreadId parent);
  void free(ThreadRecord& record);

  ThreadRecord& get(ThreadId id);
  const ThreadRecord& get(ThreadId id) const;

  std::uint64_t created() const { return created_; }
  std::uint64_t live() const { return live_; }
  std::uint64_t peak_live() const { return peak_live_; }

  /// Appends one line per live (non-free) record, in slot order
  /// (deterministic), for the watchdog's hang diagnosis.
  void append_live(std::string& out) const;

  /// Serializes pool counters plus every record's architectural state in
  /// slot order. The coroutine handle (the thread's code position and
  /// saved locals) is NOT serializable — that is the reason restore works
  /// by deterministic replay; everything around the handle is still
  /// pinned byte-for-byte here.
  void save(ser::Serializer& s) const {
    s.u64(created_);
    s.u64(live_);
    s.u64(peak_live_);
    s.u32(static_cast<std::uint32_t>(records_.size()));
    for (const ThreadRecord& r : records_) {
      s.u32(r.id);
      s.u32(r.parent);
      s.u8(static_cast<std::uint8_t>(r.state));
      s.u32(r.reply_value);
      s.u32(r.reply_value2);
      s.u8(r.replies_pending);
      s.u32(r.pending_tag);
      s.u32(r.next_free);
    }
  }

 private:
  std::deque<ThreadRecord> records_;  // stable addresses
  ThreadId free_head_ = kInvalidThread;
  std::uint64_t created_ = 0;
  std::uint64_t live_ = 0;
  std::uint64_t peak_live_ = 0;
};

}  // namespace emx::rt
