#include "runtime/order_gate.hpp"

// Header-only; TU anchors the module in the library.
