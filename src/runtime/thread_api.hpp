// ThreadApi: what a simulated EM-X thread can do.
//
// A thread body is a C++20 coroutine receiving a ThreadApi by value:
//
//   emx::rt::ThreadBody worker(emx::rt::ThreadApi api, emx::Word arg) {
//     co_await api.compute(10);                      // 10 one-clock instrs
//     Word v = co_await api.remote_read(ga);         // split-phase read
//     co_await api.remote_write(ga2, v);             // fire-and-forget
//     co_await api.spawn(peer, entry_id, 42);        // invoke a thread
//     co_await api.iteration_barrier();              // global barrier
//   }
//
// Every awaited operation charges the owning EXU per the machine config;
// untimed host-side helpers (local_read/local_write/memory) exist for
// workload setup and verification inside thread code whose instruction
// cost the caller accounts for via compute().
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "runtime/scheduler.hpp"

namespace emx::rt {

class ThreadApi;

/// A spawnable thread entry: produces the coroutine for (api, argument).
using EntryFn = std::function<ThreadBody(ThreadApi, Word)>;

/// Machine-wide table of spawnable entries; a kInvoke packet's address
/// word selects the entry (the "template segment" address, paper §2.3).
class EntryRegistry {
 public:
  std::uint32_t add(EntryFn fn) {
    entries_.push_back(std::move(fn));
    return static_cast<std::uint32_t>(entries_.size() - 1);
  }
  const EntryFn& get(std::uint32_t id) const {
    EMX_CHECK(id < entries_.size(), "unknown thread entry id");
    return entries_[id];
  }
  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<EntryFn> entries_;
};

namespace detail {

struct ComputeAwaiter {
  ThreadEngine* engine;
  ThreadRecord* rec;
  Cycle cycles;
  bool await_ready() const noexcept { return cycles == 0; }
  void await_suspend(std::coroutine_handle<>) const {
    engine->exec_compute(rec, cycles);
  }
  void await_resume() const noexcept {}
};

struct OverheadAwaiter {
  ThreadEngine* engine;
  ThreadRecord* rec;
  Cycle cycles;
  bool await_ready() const noexcept { return cycles == 0; }
  void await_suspend(std::coroutine_handle<>) const {
    engine->exec_overhead(rec, cycles);
  }
  void await_resume() const noexcept {}
};

struct ReadAwaiter {
  ThreadEngine* engine;
  ThreadRecord* rec;
  GlobalAddr src;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) const {
    engine->exec_remote_read(rec, src);
  }
  Word await_resume() const noexcept { return rec->reply_value; }
};

struct ReadPairAwaiter {
  ThreadEngine* engine;
  ThreadRecord* rec;
  GlobalAddr src0;
  GlobalAddr src1;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) const {
    engine->exec_remote_read_pair(rec, src0, src1);
  }
  std::pair<Word, Word> await_resume() const noexcept {
    return {rec->reply_value, rec->reply_value2};
  }
};

struct BlockReadAwaiter {
  ThreadEngine* engine;
  ThreadRecord* rec;
  GlobalAddr src;
  LocalAddr dest;
  std::uint32_t len;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) const {
    engine->exec_block_read(rec, src, dest, len);
  }
  void await_resume() const noexcept {}
};

struct WriteAwaiter {
  ThreadEngine* engine;
  ThreadRecord* rec;
  GlobalAddr dest;
  Word value;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) const {
    engine->exec_remote_write(rec, dest, value);
  }
  void await_resume() const noexcept {}
};

struct SpawnAwaiter {
  ThreadEngine* engine;
  ThreadRecord* rec;
  ProcId dest;
  std::uint32_t entry;
  Word arg;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) const {
    engine->exec_spawn(rec, dest, entry, arg);
  }
  void await_resume() const noexcept {}
};

struct GateWaitAwaiter {
  ThreadEngine* engine;
  ThreadRecord* rec;
  OrderGate* gate;
  std::uint32_t index;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) const {
    engine->exec_gate_wait(rec, *gate, index);
  }
  void await_resume() const noexcept {}
};

struct GateAdvanceAwaiter {
  ThreadEngine* engine;
  ThreadRecord* rec;
  OrderGate* gate;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) const {
    engine->exec_gate_advance(rec, *gate);
  }
  void await_resume() const noexcept {}
};

struct BarrierAwaiter {
  ThreadEngine* engine;
  ThreadRecord* rec;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) const {
    engine->exec_barrier_join(rec);
  }
  void await_resume() const noexcept {}
};

struct YieldAwaiter {
  ThreadEngine* engine;
  ThreadRecord* rec;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) const {
    engine->exec_yield(rec);
  }
  void await_resume() const noexcept {}
};

}  // namespace detail

class ThreadApi {
 public:
  ThreadApi(ThreadEngine* engine, ThreadRecord* rec) : engine_(engine), rec_(rec) {
    EMX_DCHECK(engine != nullptr && rec != nullptr, "null thread api");
  }

  // ----- timed operations (co_await) -----

  /// Executes `instructions` one-clock instructions on the EXU.
  detail::ComputeAwaiter compute(Cycle instructions) const {
    return {engine_, rec_, instructions};
  }

  /// Executes communication-loop scaffolding instructions (address
  /// computation, buffering, loop control around sends) — charged to the
  /// overhead bucket, matching the paper's null-loop measurement.
  detail::OverheadAwaiter overhead(Cycle instructions) const {
    return {engine_, rec_, instructions};
  }

  /// Split-phase remote read: issues the request packet, suspends, and
  /// resumes with the value when the reply is dispatched.
  detail::ReadAwaiter remote_read(GlobalAddr src) const {
    return {engine_, rec_, src};
  }

  /// Two-operand split-phase read: both requests are issued back to back
  /// and the thread suspends once; the Matching Unit's direct matching
  /// resumes it when both replies have arrived (one switch, two packets).
  detail::ReadPairAwaiter remote_read_pair(GlobalAddr src0, GlobalAddr src1) const {
    return {engine_, rec_, src0, src1};
  }

  /// Block read: one request, `len` reply packets; the words land in this
  /// PE's memory at [dest, dest+len) and the thread resumes after the last.
  detail::BlockReadAwaiter remote_read_block(GlobalAddr src, LocalAddr dest,
                                             std::uint32_t len) const {
    return {engine_, rec_, src, dest, len};
  }

  /// Remote write: fire-and-forget, the thread continues (paper §2.3).
  detail::WriteAwaiter remote_write(GlobalAddr dest, Word value) const {
    return {engine_, rec_, dest, value};
  }

  /// Sends a thread-invocation packet; the new thread starts on `dest`
  /// when the packet is dispatched there.
  detail::SpawnAwaiter spawn(ProcId dest, std::uint32_t entry, Word arg) const {
    return {engine_, rec_, dest, entry, arg};
  }

  /// Blocks until all gate indices below `index` have advanced past.
  detail::GateWaitAwaiter gate_wait(OrderGate& gate, std::uint32_t index) const {
    return {engine_, rec_, &gate, index};
  }

  /// Opens the gate for the next index, waking its waiter if suspended.
  detail::GateAdvanceAwaiter gate_advance(OrderGate& gate) const {
    return {engine_, rec_, &gate};
  }

  /// Joins the machine-wide iteration barrier (configure via Machine).
  detail::BarrierAwaiter iteration_barrier() const { return {engine_, rec_}; }

  /// Explicit thread switch (paper §2.3): suspend and requeue behind
  /// everything already in the packet FIFO.
  detail::YieldAwaiter yield() const { return {engine_, rec_}; }

  // ----- untimed helpers (account instruction cost via compute()) -----

  ProcId proc() const { return engine_->proc(); }
  ThreadId thread_id() const { return rec_->id; }
  const MachineConfig& config() const { return engine_->config(); }
  proc::Memory& memory() const { return engine_->memory(); }
  /// Attributed local accesses: an armed checker sees these as loads and
  /// stores by this thread (memory() bypasses attribution).
  Word local_read(LocalAddr addr) const { return engine_->local_read(rec_, addr); }
  void local_write(LocalAddr addr, Word value) const {
    engine_->local_write(rec_, addr, value);
  }

  /// Memcheck annotations, analogous to Valgrind's MALLOCLIKE_BLOCK /
  /// FREELIKE_BLOCK client requests: declare [base, base+len) an
  /// activation-frame region whose words must be stored before they are
  /// loaded, and retire it when the activation releases the RAM. No-ops
  /// unless a checker is armed; account instruction cost via compute().
  void frame_mark(LocalAddr base, std::uint32_t len) const {
    engine_->note_frame_mark(rec_, base, len);
  }
  void frame_drop(LocalAddr base) const { engine_->note_frame_drop(rec_, base); }

 private:
  ThreadEngine* engine_;
  ThreadRecord* rec_;
};

}  // namespace emx::rt
