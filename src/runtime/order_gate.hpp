// OrderGate: intra-processor thread synchronisation for ordered merging.
//
// Bitonic sorting requires thread j to merge only after thread i for all
// i < j (paper §3.1) so the output buffer fills in proper order. A gate
// admits thread indices strictly in sequence: index k passes only once
// advance() has been called k times. Waiting threads suspend (a
// thread-synchronisation switch) and are woken by the predecessor via a
// local continuation packet.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace emx::rt {

class OrderGate {
 public:
  OrderGate() = default;
  explicit OrderGate(std::uint32_t width) { reset(width); }

  /// Re-arms the gate for `width` participant threads (index 0..width-1).
  void reset(std::uint32_t width) {
    current_ = 0;
    waiters_.assign(width, kInvalidThread);
  }

  std::uint32_t width() const { return static_cast<std::uint32_t>(waiters_.size()); }
  std::uint32_t current() const { return current_; }

  /// Never-reused identity for checker bookkeeping: keying on the raw
  /// address would let a gate allocated where a dead one lived inherit
  /// its happens-before state.
  std::uint64_t uid() const { return uid_; }

  bool passable(std::uint32_t index) const { return index == current_; }

  void register_waiter(std::uint32_t index, ThreadId thread) {
    EMX_DCHECK(index < waiters_.size(), "gate index out of range");
    EMX_DCHECK(index > current_, "registering an already-passable index");
    EMX_DCHECK(waiters_[index] == kInvalidThread, "gate slot already taken");
    waiters_[index] = thread;
  }

  /// Opens the next index; returns the waiting thread to wake, if any.
  ThreadId advance() {
    ++current_;
    if (current_ < waiters_.size() && waiters_[current_] != kInvalidThread) {
      const ThreadId t = waiters_[current_];
      waiters_[current_] = kInvalidThread;
      return t;
    }
    return kInvalidThread;
  }

 private:
  static std::uint64_t next_uid() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::uint64_t uid_ = next_uid();
  std::uint32_t current_ = 0;
  std::vector<ThreadId> waiters_;
};

}  // namespace emx::rt
