// Global address space (paper §2.3): a global address is the processor
// number plus the local memory address of the selected processor, packed
// into one 32-bit word exactly as the EM-X compiler does.
//
// Layout: [ proc : 12 bits | local word address : 20 bits ]  — 20 bits
// covers the 4 MB (1 M-word) per-PE memory; 12 bits cover up to 4096 PEs.
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace emx::rt {

inline constexpr unsigned kLocalAddrBits = 20;
inline constexpr Word kLocalAddrMask = (Word{1} << kLocalAddrBits) - 1;
inline constexpr unsigned kMaxProcBits = 12;

struct GlobalAddr {
  ProcId proc = 0;
  LocalAddr addr = 0;

  constexpr GlobalAddr() = default;
  constexpr GlobalAddr(ProcId p, LocalAddr a) : proc(p), addr(a) {}

  constexpr bool operator==(const GlobalAddr&) const = default;

  /// Pointer-style arithmetic within one PE's memory.
  constexpr GlobalAddr operator+(LocalAddr offset) const {
    return GlobalAddr{proc, addr + offset};
  }
  GlobalAddr& operator++() {
    ++addr;
    return *this;
  }
};

constexpr Word pack(GlobalAddr ga) {
  return (static_cast<Word>(ga.proc) << kLocalAddrBits) | (ga.addr & kLocalAddrMask);
}

constexpr GlobalAddr unpack(Word w) {
  return GlobalAddr{static_cast<ProcId>(w >> kLocalAddrBits),
                    static_cast<LocalAddr>(w & kLocalAddrMask)};
}

inline GlobalAddr make_global(ProcId proc, LocalAddr addr) {
  EMX_DCHECK(proc < (1u << kMaxProcBits), "proc id exceeds address bits");
  EMX_DCHECK(addr <= kLocalAddrMask, "local address exceeds address bits");
  return GlobalAddr{proc, addr};
}

}  // namespace emx::rt
