// Size-capped, pin-aware result cache shared by emx_sweep and emx_serve.
//
// The cache directory holds one `<key>.json` per blessed result, where
// the key embeds the manifest CRC — so a hit is a proof that the exact
// same run recipe already completed. PR 8 grew the directory without
// bound; this class adds an LRU byte cap with an explicit pin set:
//
//   * recency is an in-memory counter, seeded at open() from file
//     mtimes (oldest file = least recent) and bumped on every lookup
//     and publish; lookups also freshen the file's mtime so recency
//     survives a restart, best-effort;
//   * eviction runs after each publish: while the cache exceeds
//     `max_bytes`, the least-recently-used *unpinned* entry is removed.
//     Pinned entries are never evicted, even when the pin set alone
//     exceeds the cap — a supervisor or daemon pins every key it still
//     references, so eviction can never drop a result an in-flight
//     sweep or job is counting on (the property the tier-1 tests pin).
//
// Recency is deliberately scheduling-dependent state: it decides only
// which keys must be *recomputed*, never what a result contains.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace emx::jobs {

class ResultCache {
 public:
  /// Creates `dir` if needed and indexes the existing `*.json` entries
  /// in mtime order (ties broken by name, so the seed order is
  /// deterministic under coarse clocks). `max_bytes` of 0 disables
  /// eviction. Returns false with `err` when the directory refuses.
  bool open(const std::string& dir, std::uint64_t max_bytes,
            std::string& err);

  const std::string& dir() const { return dir_; }

  /// Where `key`'s entry lives (whether or not it exists).
  std::string path_for(const std::string& key) const;

  /// Reads `key`'s entry into `bytes` and refreshes its recency.
  /// Returns false when absent or unreadable.
  bool lookup(const std::string& key, std::string& bytes);

  /// Atomically publishes `bytes` under `key`, marks it most recent,
  /// then evicts LRU unpinned entries until within the cap. Returns ""
  /// or an error message.
  std::string publish(const std::string& key, const std::string& bytes);

  /// Marks `key` ineligible for eviction until unpin(). Pinning a key
  /// with no entry yet is fine — the pin guards its future publish.
  void pin(const std::string& key) { pinned_.insert(key); }
  void unpin(const std::string& key) { pinned_.erase(key); }
  bool is_pinned(const std::string& key) const {
    return pinned_.count(key) != 0;
  }

  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t max_bytes() const { return max_bytes_; }
  std::size_t entries() const { return entries_.size(); }
  std::uint64_t evictions() const { return evictions_; }

  /// Keys in least-recently-used-first order (for tests and `status`).
  std::vector<std::string> keys_lru() const;

 private:
  struct Entry {
    std::uint64_t bytes = 0;
    std::uint64_t touch = 0;  ///< monotone recency stamp
  };

  void evict_to_cap();

  std::string dir_;
  std::uint64_t max_bytes_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t next_touch_ = 0;
  std::uint64_t evictions_ = 0;
  std::map<std::string, Entry> entries_;
  std::set<std::string> pinned_;
};

}  // namespace emx::jobs
