// Bounded fork/exec worker pool for the sweep supervisor.
//
// The pool owns the POSIX mechanics — fork, exec, stdout/stderr
// redirection, non-blocking reaps, deadline kills — and nothing else.
// Policy (which job to start, whether to retry, what an exit code
// means) lives in the supervisor; the pool only answers "what is
// running" and "who just exited, and how".
//
// Hang handling is a hard SIGKILL at the caller-supplied deadline:
// a wedged worker cannot be trusted to honour SIGTERM, and the
// checkpoint + resume machinery makes a kill cheap to recover from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <sys/types.h>

#include "jobs/clock.hpp"

namespace emx::jobs {

/// One command to run: argv plus capture files for its output. An empty
/// capture path inherits the supervisor's own stream.
struct Command {
  std::vector<std::string> argv;
  std::string stdout_path;
  std::string stderr_path;
};

/// How a worker left the pool.
struct ExitStatus {
  pid_t pid = -1;
  std::uint64_t tag = 0;   ///< caller's token from start()
  bool signaled = false;   ///< died to a signal (sig set, code invalid)
  int code = 0;            ///< exit code when !signaled
  int sig = 0;             ///< terminating signal when signaled
  bool timed_out = false;  ///< the pool SIGKILLed it at its deadline
  bool preempted = false;  ///< the caller killed it via kill_child()
};

class ProcessPool {
 public:
  explicit ProcessPool(Clock& clock) : clock_(clock) {}
  ~ProcessPool();

  ProcessPool(const ProcessPool&) = delete;
  ProcessPool& operator=(const ProcessPool&) = delete;

  /// Forks and execs `cmd`. `tag` is an opaque caller token carried into
  /// the ExitStatus. `timeout_ms` <= 0 means no deadline. Returns the
  /// pid, or -1 with `err` set.
  pid_t start(const Command& cmd, std::uint64_t tag, std::int64_t timeout_ms,
              std::string& err);

  std::size_t running() const { return children_.size(); }

  /// Reaps any children that have exited (non-blocking) and SIGKILLs any
  /// past their deadline. Appends one ExitStatus per departed child to
  /// `out`; returns the number appended.
  std::size_t poll(std::vector<ExitStatus>& out);

  /// SIGKILLs and reaps every child. Used on supervisor shutdown paths.
  void kill_all();

  // --- preemption hooks (the emx_serve daemon's half of the story) ---

  /// Sends `sig` to the child tagged `tag` (e.g. SIGUSR1 to request a
  /// checkpoint-on-demand). Returns false when no such child is running.
  bool signal_child(std::uint64_t tag, int sig);

  /// SIGKILLs the child tagged `tag` on the caller's behalf; its
  /// eventual ExitStatus carries `preempted = true` so the caller can
  /// distinguish its own kill from a crash or a deadline kill. Returns
  /// false when no such child is running.
  bool kill_child(std::uint64_t tag);

 private:
  struct Child {
    pid_t pid = -1;
    std::uint64_t tag = 0;
    std::int64_t deadline_ms = 0;  ///< 0 = none
    bool killed_for_timeout = false;
    bool killed_for_preempt = false;
  };

  Clock& clock_;
  std::vector<Child> children_;
};

}  // namespace emx::jobs
