#include "jobs/clock.hpp"

#include <chrono>
#include <thread>

namespace emx::jobs {

namespace {

class RealClock final : public Clock {
 public:
  std::int64_t now_ms() override {
    using namespace std::chrono;
    return duration_cast<milliseconds>(steady_clock::now().time_since_epoch()).count();  // determinism-ok: supervisor process scheduling, never simulated state
  }
  void sleep_ms(std::int64_t ms) override {
    if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
};

}  // namespace

Clock& real_clock() {
  static RealClock clock;
  return clock;
}

}  // namespace emx::jobs
