#include "jobs/journal.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <sys/stat.h>
#include <unistd.h>

#include "common/fsio.hpp"
#include "common/json.hpp"
#include "common/serializer.hpp"

namespace emx::jobs {

namespace {

constexpr const char kCrcMarker[] = ",\"crc\":\"";

std::string value_to_field(const json::Value& v) {
  switch (v.kind()) {
    case json::Value::Kind::kString:
      return v.as_string();
    case json::Value::Kind::kBool:
      return v.as_bool() ? "true" : "false";
    default:
      return v.dump();
  }
}

/// Parses the journal `content`. `good_prefix` receives the byte length
/// of the longest valid whole-line prefix — what open() truncates a torn
/// file back to before appending.
bool parse_content(const std::string& path, const std::string& content,
                   std::vector<JournalEntry>& out, std::size_t& good_prefix,
                   std::string& warning, std::string& err) {
  out.clear();
  good_prefix = 0;
  warning.clear();
  err.clear();

  std::size_t pos = 0;
  std::uint64_t line_no = 0;
  std::uint64_t expect_seq = 0;
  while (pos < content.size()) {
    ++line_no;
    const std::size_t nl = content.find('\n', pos);
    const bool torn_no_newline = (nl == std::string::npos);
    const std::string line = content.substr(
        pos, torn_no_newline ? std::string::npos : nl - pos);
    const std::size_t line_end = torn_no_newline ? content.size() : nl + 1;
    const bool is_last = line_end >= content.size();

    const auto damaged = [&](const std::string& what) {
      if (is_last) {
        // The write a crash interrupted: drop it, redo the transition.
        warning = path + " line " + std::to_string(line_no) +
                  ": dropping torn final line (" + what + ")";
        return true;
      }
      // Best-effort cell attribution: the frame is broken, so scrape the
      // job key out of the raw bytes rather than trusting a parse.
      std::string cell;
      const std::size_t j = line.find("\"job\":\"");
      if (j != std::string::npos) {
        const std::size_t start = j + 7;
        const std::size_t end = line.find('"', start);
        if (end != std::string::npos)
          cell = " (cell " + line.substr(start, end - start) + ")";
      }
      err = path + " line " + std::to_string(line_no) + cell + ": " + what +
            " — journal is damaged before its final line; refusing to "
            "guess at sweep state";
      return false;
    };

    const std::size_t marker = line.rfind(kCrcMarker);
    if (torn_no_newline || marker == std::string::npos) {
      const bool ok = damaged(torn_no_newline ? "no terminating newline"
                                              : "no crc frame");
      if (!ok) return false;
      return true;  // torn tail dropped; good_prefix already excludes it
    }
    const std::string body = line.substr(0, marker);
    const std::string tail = line.substr(marker + sizeof kCrcMarker - 1);
    char want_buf[16];
    std::snprintf(want_buf, sizeof want_buf, "%08x",
                  ser::crc32(body.data(), body.size()));
    if (tail != std::string(want_buf) + "\"}") {
      if (!damaged("crc mismatch (line says \"" + tail.substr(0, 8) +
                   "\", bytes say \"" + want_buf + "\")"))
        return false;
      return true;
    }

    std::string parse_err;
    const json::Value v = json::Value::parse(body + "}", parse_err);
    if (!parse_err.empty() || !v.is_object()) {
      // A valid CRC over an unparseable body means the writer was
      // broken, not the disk: always a hard error.
      err = path + " line " + std::to_string(line_no) +
            ": crc valid but body unparseable: " + parse_err;
      return false;
    }

    JournalEntry e;
    bool saw_seq = false;
    for (const auto& [key, val] : v.members()) {
      if (key == "seq") {
        e.seq = static_cast<std::uint64_t>(val.as_int(-1));
        saw_seq = val.is_int() && val.as_int() >= 0;
      } else if (key == "event") {
        e.event = val.as_string();
      } else {
        e.fields.emplace_back(key, value_to_field(val));
        e.raw_fields.emplace_back(key, val.dump());
      }
    }
    if (!saw_seq || e.event.empty()) {
      err = path + " line " + std::to_string(line_no) +
            ": missing seq or event";
      return false;
    }
    if (e.seq != expect_seq) {
      err = path + " line " + std::to_string(line_no) + ": seq " +
            std::to_string(e.seq) + " where " + std::to_string(expect_seq) +
            " expected — lines lost or reordered";
      return false;
    }
    ++expect_seq;
    out.push_back(std::move(e));
    good_prefix = line_end;
    pos = line_end;
  }
  return true;
}

bool read_all(const std::string& path, std::string& out, bool& exists) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    exists = false;
    out.clear();
    return true;
  }
  exists = true;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

std::string JournalEntry::field(const std::string& key) const {
  for (const auto& [k, v] : fields)
    if (k == key) return v;
  return "";
}

std::string format_line(std::uint64_t seq, const std::string& event,
                        const std::vector<std::pair<std::string, std::string>>&
                            raw_fields) {
  std::string body = "{\"seq\":" + std::to_string(seq) + ",\"event\":\"" +
                     json::escape(event) + "\"";
  for (const auto& [key, value] : raw_fields)
    body += ",\"" + json::escape(key) + "\":" + value;
  char crc_buf[16];
  std::snprintf(crc_buf, sizeof crc_buf, "%08x",
                ser::crc32(body.data(), body.size()));
  return body + kCrcMarker + crc_buf + "\"}\n";
}

bool Journal::open(const std::string& path, std::string& err) {
  std::string content;
  bool exists = false;
  read_all(path, content, exists);

  std::vector<JournalEntry> entries;
  std::size_t good_prefix = 0;
  std::string warning;
  if (!parse_content(path, content, entries, good_prefix, warning, err))
    return false;
  if (!warning.empty())
    std::fprintf(stderr, "emx_sweep: warning: %s\n", warning.c_str());

  if (exists && good_prefix != content.size()) {
    // Cut the torn tail so the next append starts on a line boundary.
    if (::truncate(path.c_str(), static_cast<off_t>(good_prefix)) != 0) {
      err = path + ": cannot truncate torn journal tail";
      return false;
    }
  }

  const std::string probe_err = fsio::probe_writable_file(path);
  if (!probe_err.empty()) {
    err = "journal " + probe_err;
    return false;
  }
  path_ = path;
  next_seq_ = entries.empty() ? 0 : entries.back().seq + 1;
  return true;
}

bool Journal::append(const std::string& event,
                     const std::vector<std::pair<std::string, std::string>>&
                         raw_fields,
                     std::string& err) {
  const std::string line = format_line(next_seq_, event, raw_fields);
  const std::string werr = fsio::append_line_fsync(path_, line);
  if (!werr.empty()) {
    err = "journal append: " + werr;
    return false;
  }
  ++next_seq_;
  return true;
}

bool Journal::load(const std::string& path, std::vector<JournalEntry>& out,
                   std::string& warning, std::string& err) {
  std::string content;
  bool exists = false;
  read_all(path, content, exists);
  std::size_t good_prefix = 0;
  return parse_content(path, content, out, good_prefix, warning, err);
}

bool Journal::compact(const std::string& path,
                      const std::vector<JournalEntry>& keep, std::string& err) {
  std::string content;
  std::uint64_t seq = 0;
  for (const JournalEntry& e : keep)
    content += format_line(seq++, e.event, e.raw_fields);
  const std::string werr = fsio::atomic_write_file(path, content);
  if (!werr.empty()) {
    err = "journal compact: " + werr;
    return false;
  }
  return true;
}

}  // namespace emx::jobs
