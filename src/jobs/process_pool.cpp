#include "jobs/process_pool.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace emx::jobs {

namespace {

/// Opens `path` for child-side stdout/stderr capture; returns -1 and
/// perror-style message on failure. Runs in the parent (before fork) so
/// failures are reportable.
int open_capture(const std::string& path, std::string& err) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0)
    err = "cannot open capture file '" + path + "': " + std::strerror(errno);
  return fd;
}

}  // namespace

ProcessPool::~ProcessPool() { kill_all(); }

pid_t ProcessPool::start(const Command& cmd, std::uint64_t tag,
                         std::int64_t timeout_ms, std::string& err) {
  if (cmd.argv.empty()) {
    err = "empty argv";
    return -1;
  }

  int out_fd = -1, err_fd = -1;
  if (!cmd.stdout_path.empty()) {
    out_fd = open_capture(cmd.stdout_path, err);
    if (out_fd < 0) return -1;
  }
  if (!cmd.stderr_path.empty()) {
    err_fd = open_capture(cmd.stderr_path, err);
    if (err_fd < 0) {
      if (out_fd >= 0) ::close(out_fd);
      return -1;
    }
  }

  std::vector<char*> argv;
  argv.reserve(cmd.argv.size() + 1);
  for (const std::string& a : cmd.argv)
    argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    err = std::string("fork: ") + std::strerror(errno);
    if (out_fd >= 0) ::close(out_fd);
    if (err_fd >= 0) ::close(err_fd);
    return -1;
  }
  if (pid == 0) {
    // Child. Only async-signal-safe calls from here to exec.
    if (out_fd >= 0) ::dup2(out_fd, STDOUT_FILENO);
    if (err_fd >= 0) ::dup2(err_fd, STDERR_FILENO);
    ::execv(argv[0], argv.data());
    // exec failed: report on (possibly redirected) stderr and bail with
    // an exit code the supervisor classifies as permanent.
    const auto say = [](const char* s) {
      const ssize_t n = ::write(STDERR_FILENO, s, std::strlen(s));
      (void)n;
    };
    say("emx_sweep worker: exec failed: ");
    say(std::strerror(errno));
    say("\n");
    ::_exit(127);
  }

  if (out_fd >= 0) ::close(out_fd);
  if (err_fd >= 0) ::close(err_fd);

  Child c;
  c.pid = pid;
  c.tag = tag;
  c.deadline_ms = timeout_ms > 0 ? clock_.now_ms() + timeout_ms : 0;
  children_.push_back(c);
  return pid;
}

std::size_t ProcessPool::poll(std::vector<ExitStatus>& out) {
  const std::int64_t now = clock_.now_ms();
  std::size_t reaped = 0;

  for (Child& c : children_) {
    if (c.deadline_ms != 0 && !c.killed_for_timeout && now >= c.deadline_ms) {
      ::kill(c.pid, SIGKILL);
      c.killed_for_timeout = true;  // reap below / on a later poll
    }
  }

  for (std::size_t i = 0; i < children_.size();) {
    Child& c = children_[i];
    int status = 0;
    const pid_t r = ::waitpid(c.pid, &status, WNOHANG);
    if (r == 0) {
      ++i;
      continue;
    }
    ExitStatus es;
    es.pid = c.pid;
    es.tag = c.tag;
    es.timed_out = c.killed_for_timeout;
    es.preempted = c.killed_for_preempt;
    if (r < 0) {
      // ECHILD etc. — lost track of it; surface as a kill so the
      // supervisor retries rather than hanging forever.
      es.signaled = true;
      es.sig = SIGKILL;
    } else if (WIFSIGNALED(status)) {
      es.signaled = true;
      es.sig = WTERMSIG(status);
    } else {
      es.code = WIFEXITED(status) ? WEXITSTATUS(status) : 1;
    }
    out.push_back(es);
    children_.erase(children_.begin() + static_cast<std::ptrdiff_t>(i));
    ++reaped;
  }
  return reaped;
}

bool ProcessPool::signal_child(std::uint64_t tag, int sig) {
  for (const Child& c : children_) {
    if (c.tag != tag) continue;
    return ::kill(c.pid, sig) == 0;
  }
  return false;
}

bool ProcessPool::kill_child(std::uint64_t tag) {
  for (Child& c : children_) {
    if (c.tag != tag) continue;
    c.killed_for_preempt = true;  // reaped by a later poll()
    return ::kill(c.pid, SIGKILL) == 0;
  }
  return false;
}

void ProcessPool::kill_all() {
  for (const Child& c : children_) ::kill(c.pid, SIGKILL);
  for (const Child& c : children_) {
    int status = 0;
    ::waitpid(c.pid, &status, 0);
  }
  children_.clear();
}

}  // namespace emx::jobs
