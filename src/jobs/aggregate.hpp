// Figure-ready sweep outputs: aggregate.json and provenance.json.
//
// Two files, one deliberate split. aggregate.json holds only what the
// simulator determines — cell keys, ok/failed verdicts, and each
// worker's result object (cycles, shares, trace CRC). The simulator's
// resume guarantee makes every one of those byte-identical however many
// times a worker was killed and resumed, so chaos CI can assert crash
// tolerance with a plain `cmp` against an undisturbed run.
//
// provenance.json, written beside it, holds everything scheduling-
// dependent: how each cell got its result (ok | resumed:k | cached |
// failed:<reason>) and how many attempts it took. It is the honest
// record — and is exactly the part that may differ between a calm run
// and a stormy one.
#pragma once

#include <string>
#include <vector>

#include "jobs/supervisor.hpp"

namespace emx::jobs {

/// Writes the deterministic aggregate (cells in expansion order; status
/// "ok" or "failed:<reason>"; each ok cell's result JSON embedded as an
/// object). Atomic publish; returns false with `err` on write failure.
bool write_aggregate(const std::string& path, const SweepSpec& spec,
                     const std::vector<CellOutcome>& cells, std::string& err);

/// Writes the per-cell provenance record beside the aggregate.
bool write_provenance(const std::string& path, const SweepSpec& spec,
                      const std::vector<CellOutcome>& cells, std::string& err);

}  // namespace emx::jobs
