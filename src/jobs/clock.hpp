// Host wall-clock abstraction for the sweep supervisor.
//
// The simulator proper never reads wall time (scripts/check_determinism.sh
// enforces it): simulated cycles are the only clock a deterministic run
// may consult. The supervisor is different — it schedules *processes*,
// so per-job timeouts and retry backoff are genuinely wall-clock
// concerns. Keeping the clock behind this interface does two things:
// the one sanctioned wall-clock read in src/ lives in a single
// annotated translation unit (clock.cpp), and tests drive timeout /
// backoff schedules with a fake clock instead of sleeping.
//
// None of the times read here may influence simulated state or sweep
// *results* — only when workers start, die and retry. The aggregate is
// byte-identical whatever the clock says; that property is what the
// chaos CI job asserts.
#pragma once

#include <cstdint>

namespace emx::jobs {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic milliseconds since an arbitrary epoch.
  virtual std::int64_t now_ms() = 0;
  /// Blocks for `ms` (a fake clock may just advance itself).
  virtual void sleep_ms(std::int64_t ms) = 0;
};

/// The process-wide monotonic clock.
Clock& real_clock();

}  // namespace emx::jobs
