// Append-only, CRC-framed supervisor journal.
//
// The journal is the supervisor's only durable memory: one JSON line per
// job-state transition, fsync'd before the transition is acted on, so a
// SIGKILL'd supervisor re-invoked over the same output directory replays
// the journal and resumes exactly where the filesystem says it was —
// never where in-memory state claimed.
//
// Line format (formatted by hand, not via json::Value, so the CRC frame
// is under our control):
//
//   {"seq":N,"event":"...","job":"...",...,"crc":"xxxxxxxx"}\n
//
// The crc field is CRC-32 of every byte of the line before the
// `,"crc":"` marker. That framing distinguishes the two corruption
// cases a crash-tolerant log must treat differently:
//
//   * a torn final line (the write the crash interrupted) — dropped
//     with a warning; the supervisor redoes that transition;
//   * a damaged or tampered interior line — a hard error naming the
//     cell, because silently skipping it could resurrect a completed
//     job or double-count a retry.
//
// Duplicate terminal records for one job are tolerated only when they
// agree (same result CRC) — the benign replay case — and rejected
// loudly otherwise.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace emx::jobs {

/// One journal line, parsed. `fields` holds every member other than
/// seq/event/crc, as raw strings (numbers included), insertion-ordered.
/// `raw_fields` carries the same members JSON-encoded (strings keep
/// their quotes) so an entry can be re-emitted verbatim — what
/// compaction feeds back through format_line().
struct JournalEntry {
  std::uint64_t seq = 0;
  std::string event;
  std::vector<std::pair<std::string, std::string>> fields;
  std::vector<std::pair<std::string, std::string>> raw_fields;

  /// The named field, or "" when absent.
  std::string field(const std::string& key) const;
};

/// Formats one journal line (terminating newline included) from an
/// entry whose fields are already strings. String-typed values must be
/// pre-escaped by the caller if they can contain specials; job keys and
/// event names never do. `raw_fields` values are emitted verbatim, so
/// numbers stay numbers ("3") and strings carry their own quotes
/// ("\"sort-p4...\"").
std::string format_line(std::uint64_t seq, const std::string& event,
                        const std::vector<std::pair<std::string, std::string>>&
                            raw_fields);

class Journal {
 public:
  /// Opens `path` for appending (creating it if absent). Returns false
  /// with `err` when the directory refuses.
  bool open(const std::string& path, std::string& err);

  const std::string& path() const { return path_; }

  /// Appends one line and fsyncs before returning — the caller may act
  /// on the transition only after this returns true.
  bool append(const std::string& event,
              const std::vector<std::pair<std::string, std::string>>&
                  raw_fields,
              std::string& err);

  std::uint64_t next_seq() const { return next_seq_; }

  /// Loads a journal for replay. A torn final line is dropped (noted in
  /// `warning`); any other damage — interior CRC mismatch, non-monotone
  /// sequence numbers, malformed JSON body — fails with `err` naming
  /// the line and, when known, the job. A missing file loads as empty.
  static bool load(const std::string& path, std::vector<JournalEntry>& out,
                   std::string& warning, std::string& err);

  /// Rewrites `path` to hold exactly `keep`, re-sequenced from 0 and
  /// re-framed (each entry's raw_fields are re-emitted verbatim). The
  /// rewrite is atomic — a crash mid-compaction leaves either the old
  /// journal or the new one, never a blend — so the history a compacted
  /// journal drops is only ever the history its survivors make
  /// redundant. Call only once every job is terminal.
  static bool compact(const std::string& path,
                      const std::vector<JournalEntry>& keep, std::string& err);

 private:
  std::string path_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace emx::jobs
