#include "jobs/aggregate.hpp"

#include <cstdio>

#include "common/fsio.hpp"
#include "common/json.hpp"

namespace emx::jobs {

namespace {

json::Value header(const SweepSpec& spec) {
  char digest[16];
  std::snprintf(digest, sizeof digest, "%08x", spec.digest());
  json::Value v = json::Value::object();
  v.set("schema", json::Value::integer(1));
  v.set("sweep", json::Value::string(spec.name));
  v.set("spec_digest", json::Value::string(digest));
  return v;
}

bool publish(const std::string& path, const json::Value& v,
             std::string& err) {
  const std::string werr = fsio::atomic_write_file(path, v.dump(2) + "\n");
  if (!werr.empty()) {
    err = werr;
    return false;
  }
  return true;
}

}  // namespace

bool write_aggregate(const std::string& path, const SweepSpec& spec,
                     const std::vector<CellOutcome>& cells,
                     std::string& err) {
  json::Value root = header(spec);
  json::Value& list = root.set("cells", json::Value::array());
  for (const CellOutcome& cell : cells) {
    json::Value c = json::Value::object();
    c.set("key", json::Value::string(cell.key));
    const bool failed = cell.result_bytes.empty();
    // Deterministic verdict only: "cached"/"resumed:k" are scheduling
    // accidents and belong to the provenance file.
    c.set("status",
          json::Value::string(failed ? cell.status : std::string("ok")));
    if (failed) {
      c.set("result", json::Value());
    } else {
      std::string perr;
      json::Value result = json::Value::parse(cell.result_bytes, perr);
      if (!perr.empty()) {
        err = "cell " + cell.key + ": blessed result unparseable: " + perr;
        return false;
      }
      c.set("result", std::move(result));
    }
    list.push(std::move(c));
  }
  return publish(path, root, err);
}

bool write_provenance(const std::string& path, const SweepSpec& spec,
                      const std::vector<CellOutcome>& cells,
                      std::string& err) {
  json::Value root = header(spec);
  json::Value& list = root.set("cells", json::Value::array());
  for (const CellOutcome& cell : cells) {
    json::Value c = json::Value::object();
    c.set("key", json::Value::string(cell.key));
    c.set("status", json::Value::string(cell.status));
    c.set("attempts", json::Value::integer(cell.attempts));
    c.set("resumes", json::Value::integer(cell.resumes));
    list.push(std::move(c));
  }
  return publish(path, root, err);
}

}  // namespace emx::jobs
