// The crash-tolerant sweep supervisor.
//
// run_sweep() expands a SweepSpec into manifest-keyed jobs and drives
// them through a bounded ProcessPool of emx_run workers, journaling
// every state transition (fsync'd before it is acted on) so that a
// supervisor killed at any instant can be re-invoked over the same
// output directory and converge to the same aggregate — byte-identical,
// which is exactly what scripts/ci_sweep_chaos.sh asserts.
//
// Failure policy, keyed off emx_run's exit-code contract:
//
//   exit 0                     ok — result validated, blessed into cache
//   exit 1,2,3,4,6 (and 127+)  permanent: deterministic verdicts (wrong
//                              result, bad input, checker, simulated-
//                              cycle watchdog, static verify) that a
//                              retry would only reproduce
//   exit 5                     retry from scratch: the checkpoint chain
//                              itself is suspect, so clear it first
//   signal / wall timeout      retry with --resume from the newest
//                              checkpoint, exponential backoff between
//                              attempts
//
// Output directory layout:
//
//   journal.jsonl        append-only state log (jobs/journal.hpp)
//   cache/<key>.json     supervisor-blessed results; dedupes identical
//                        cells across invocations ("cached" provenance)
//   jobs/<key>/          per-job scratch: ck/ checkpoints, attempt
//                        stdout/stderr captures, unblessed result.json
//   aggregate.json       figure-ready cells, deterministic bytes
//   provenance.json      how each cell got there: ok | resumed:k |
//                        cached | failed:<reason>, attempt counts
//
// The aggregate/provenance split is deliberate: the aggregate carries
// only run *results* (deterministic by the simulator's resume
// guarantee), so chaos can be detected by `cmp`; everything scheduling-
// dependent — retries, resumes, cache hits — lives in the provenance
// file beside it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jobs/clock.hpp"
#include "jobs/process_pool.hpp"
#include "jobs/spec.hpp"

namespace emx::jobs {

struct SupervisorOptions {
  SweepSpec spec;
  std::string out_dir;
  std::string emx_run;  ///< path to the worker binary

  unsigned parallel = 2;     ///< worker process cap
  unsigned max_retries = 3;  ///< retries after the first attempt
  std::int64_t timeout_ms = 0;       ///< per-job wall clock; 0 = none
  std::int64_t backoff_ms = 250;     ///< first retry delay
  std::int64_t backoff_max_ms = 8000;
  std::uint64_t checkpoint_every = 100000;  ///< cycles; 0 disarms
  std::uint64_t cache_max_bytes = 0;  ///< result-cache LRU cap; 0 = none
  bool keep_checkpoints = false;  ///< keep jobs/<key>/ck after success
  bool quiet = false;
  Clock* clock = nullptr;  ///< nullptr = real_clock()

  /// Worker execution engine (emx_run --engine/--shards). An execution
  /// knob only: it is never folded into the manifest, the cell key or
  /// the result bytes — the engines are byte-identical by contract
  /// (scripts/ci_parallel_determinism.sh), so a sweep's aggregate must
  /// not depend on which engine ran it.
  std::string engine = "seq";  ///< "seq" | "par"
  std::uint32_t shards = 0;    ///< par: host threads; 0 = one per core
};

/// How one grid cell ended up.
struct CellOutcome {
  std::string key;
  std::string status;  ///< "ok" | "resumed:<k>" | "cached" | "failed:<why>"
  unsigned attempts = 0;
  unsigned resumes = 0;
  std::string result_bytes;  ///< blessed result JSON line; "" when failed
};

struct SweepOutcome {
  std::vector<CellOutcome> cells;  ///< expansion order
  std::size_t ok = 0;              ///< includes resumed and cached cells
  std::size_t failed = 0;
  std::string aggregate_path;
  std::string provenance_path;
};

/// Runs the sweep to completion. Returns the supervisor exit code:
/// 0 every cell ok, 1 some cells failed (aggregate still written, with
/// per-cell provenance), 2 setup refused (bad spec, unwritable output
/// directory, journal from a different sweep, damaged journal).
int run_sweep(const SupervisorOptions& opts, SweepOutcome& out,
              std::string& err);

// --- policy pieces, exposed for unit tests ---

enum class ExitClass {
  kOk,
  kPermanent,     ///< deterministic verdict; retrying reproduces it
  kRetryScratch,  ///< retry, but clear the checkpoint chain first
  kRetryResume,   ///< retry with --resume from the newest checkpoint
};

ExitClass classify_exit(const ExitStatus& es);

/// Stable reason token for journals/provenance: "checker", "watchdog",
/// "signal-9", "timeout", "exit-42", ...
std::string exit_reason(const ExitStatus& es);

/// attempt >= 1; base * 2^(attempt-1), clamped to [base, cap].
std::int64_t backoff_delay_ms(unsigned attempt, std::int64_t base,
                              std::int64_t cap);

/// Newest "<app>-c*.emxsnap" under `ck_dir` ("" when none). Crash dumps
/// ("crash-<app>.emxsnap") are never resume candidates.
std::string latest_checkpoint(const std::string& ck_dir,
                              const std::string& app);

/// The three-step result audit applied before a worker's exit-0 is
/// believed: the file must exist, parse as a JSON object, and carry an
/// embedded exit_code of 0. Returns "" with `bytes` filled on success,
/// else the retryable reason token ("no-result-file" |
/// "unparseable-result" | "result-reports-failure"). Shared with the
/// emx_serve daemon, which applies the same policy per job.
std::string audit_result(const std::string& result_path, std::string& bytes);

}  // namespace emx::jobs
