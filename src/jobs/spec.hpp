// Sweep specification: an (app × h × n × P × seed) grid expanded into
// manifest-keyed jobs.
//
// A SweepSpec is the declarative half of the supervisor — the grid the
// paper's Figures 6–9 sweep over, written as JSON (or assembled from
// emx_sweep's list flags). expand() turns it into concrete JobSpecs,
// each carrying a full snapshot::RunManifest (the same recipe a
// checkpoint stores) plus a stable cell key derived from the manifest
// bytes. Two invocations of the same spec therefore produce the same
// jobs in the same order with the same keys — which is what lets the
// journal, the result cache and the aggregate all converge after any
// number of crashes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "snapshot/manifest.hpp"

namespace emx::jobs {

/// One grid cell: the run recipe and its stable identity.
struct JobSpec {
  snapshot::RunManifest manifest;
  /// "app-pP-nN-hH-sS-xxxxxxxx": readable coordinates plus the CRC of
  /// the serialized manifest, so any config difference (network model,
  /// fault plan, ...) keys — and caches — separately.
  std::string key;
};

struct SweepSpec {
  std::string name = "sweep";

  // Grid axes. Empty threads/sizes adopt each app's registry defaults.
  std::vector<std::string> apps;
  std::vector<std::uint32_t> procs{16};
  std::vector<std::uint32_t> threads;
  std::vector<std::uint64_t> sizes_per_proc;
  std::vector<std::uint64_t> seeds{1};

  /// Knobs applied to every cell (network model, barrier, read service,
  /// iterations, watchdog, ...). The grid axes above override the
  /// corresponding fields per cell.
  snapshot::RunManifest base;

  /// Parses the JSON spec format (docs/JOBS.md). Returns false with a
  /// readable `err` on malformed JSON, unknown keys, or empty axes.
  static bool from_json(const std::string& text, SweepSpec& out,
                        std::string& err);
  static bool from_file(const std::string& path, SweepSpec& out,
                        std::string& err);

  /// Canonical JSON rendering of the spec (grid axes and the non-default
  /// base knobs). digest() is its CRC: the journal header records it so
  /// a re-invoked supervisor refuses to mix two different sweeps in one
  /// output directory.
  std::string canonical_json() const;
  std::uint32_t digest() const;

  /// Expands the grid in deterministic order (apps → procs → sizes →
  /// threads → seeds). Returns false with `err` naming the problem
  /// (unknown app, empty axis, duplicate cell).
  bool expand(std::vector<JobSpec>& out, std::string& err) const;
};

/// The stable cell key for a manifest (see JobSpec::key).
std::string job_key(const snapshot::RunManifest& m);

/// Applies one named knob (the same vocabulary SweepSpec's "base"
/// object accepts — network, barrier, read service, watchdog, fault
/// plan, ...) to `m`. Exposed for the emx_serve protocol, whose "run"
/// objects reuse the spec's knob names verbatim. Returns false with
/// `err` on an unknown knob or an ill-typed value.
bool apply_manifest_knob(const std::string& key, const json::Value& v,
                         snapshot::RunManifest& m, std::string& err);

/// emx_run argv tail reproducing `m` from a fresh default manifest —
/// the flags the supervisor passes to a worker. Only fields expressible
/// as emx_run flags are emitted; expand() rejects specs that stray
/// outside that set.
std::vector<std::string> worker_flags(const snapshot::RunManifest& m);

}  // namespace emx::jobs
