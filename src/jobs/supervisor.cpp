#include "jobs/supervisor.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include <unistd.h>

#include "common/fsio.hpp"
#include "common/json.hpp"
#include "common/serializer.hpp"
#include "jobs/aggregate.hpp"
#include "jobs/journal.hpp"
#include "jobs/result_cache.hpp"

namespace emx::jobs {

namespace fs = std::filesystem;

namespace {

std::string jstr(const std::string& s) {
  // Built with += rather than a chained + — the chain trips GCC 12's
  // -Wrestrict false positive at -O3 (same workaround as the test rule).
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  out += json::escape(s);
  out += '"';
  return out;
}

std::string crc_hex(std::uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", crc);
  return buf;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

struct CellState {
  JobSpec job;
  enum State { kReady, kRunning, kDone, kFailed } state = kReady;
  unsigned attempts = 0;  ///< worker starts so far
  unsigned resumes = 0;   ///< starts that passed --resume
  std::int64_t ready_at = 0;
  std::string resume_path;  ///< checkpoint for the next start; "" = fresh
  std::string status;
  std::string result_bytes;

  std::string dir;          ///< <out>/jobs/<key>
  std::string ck_dir;       ///< <out>/jobs/<key>/ck
  std::string result_path;  ///< <out>/jobs/<key>/result.json
};

/// Everything the scheduling loop needs in one place.
struct Sweep {
  const SupervisorOptions& opts;
  Clock& clock;
  Journal journal;
  ProcessPool pool;
  ResultCache cache;
  std::vector<CellState> cells;

  Sweep(const SupervisorOptions& o, Clock& c)
      : opts(o), clock(c), pool(c) {}

  void note(const std::string& line) {
    if (!opts.quiet) std::fprintf(stderr, "%s", line.c_str());
  }
};

void clear_checkpoints(const std::string& ck_dir) {
  std::error_code ec;
  fs::remove_all(ck_dir, ec);  // recreated by the worker's own probe
}

/// Starts the next attempt for `cell`. Journals first, forks second, so
/// a crash between the two at worst re-runs one attempt.
bool start_cell(Sweep& sw, std::size_t index, std::string& err) {
  CellState& cell = sw.cells[index];
  ++cell.attempts;
  const bool resuming = !cell.resume_path.empty();
  if (resuming) ++cell.resumes;

  if (!sw.journal.append(
          "start",
          {{"job", jstr(cell.job.key)},
           {"attempt", std::to_string(cell.attempts)},
           {"resume", resuming ? "1" : "0"}},
          err))
    return false;

  Command cmd;
  cmd.argv.push_back(sw.opts.emx_run);
  if (resuming) {
    // The checkpoint's manifest is the full recipe; flags left at their
    // defaults adopt it, so --resume needs no grid flags.
    cmd.argv.push_back("--resume=" + cell.resume_path);
  } else {
    const std::vector<std::string> flags = worker_flags(cell.job.manifest);
    cmd.argv.insert(cmd.argv.end(), flags.begin(), flags.end());
  }
  if (sw.opts.checkpoint_every > 0) {
    cmd.argv.push_back("--checkpoint-every=" +
                       std::to_string(sw.opts.checkpoint_every));
    cmd.argv.push_back("--checkpoint-dir=" + cell.ck_dir);
  }
  // The engine rides along on every attempt, resumes included: it is
  // not part of the checkpoint's manifest (execution knob), so a resumed
  // worker would otherwise silently fall back to the sequential loop.
  if (sw.opts.engine == "par") {
    cmd.argv.push_back("--engine=par");
    cmd.argv.push_back("--shards=" + std::to_string(sw.opts.shards));
  }
  cmd.argv.push_back("--result-json=" + cell.result_path);
  const std::string base =
      cell.dir + "/attempt-" + std::to_string(cell.attempts);
  cmd.stdout_path = base + ".stdout";
  cmd.stderr_path = base + ".stderr";

  std::string spawn_err;
  const pid_t pid =
      sw.pool.start(cmd, index, sw.opts.timeout_ms, spawn_err);
  if (pid < 0) {
    // Spawn failure is host pressure, not a verdict on the job: burn the
    // attempt, back off, retry like a killed worker.
    if (!sw.journal.append("fail",
                           {{"job", jstr(cell.job.key)},
                            {"attempt", std::to_string(cell.attempts)},
                            {"reason", jstr("spawn: " + spawn_err)}},
                           err))
      return false;
    cell.ready_at = sw.clock.now_ms() +
                    backoff_delay_ms(cell.attempts, sw.opts.backoff_ms,
                                     sw.opts.backoff_max_ms);
    cell.state = CellState::kReady;
    return true;
  }
  cell.state = CellState::kRunning;
  return true;
}

/// Marks `cell` done with blessed `bytes` already in the cache.
void finish_ok(Sweep& sw, CellState& cell, std::string bytes,
               const std::string& status) {
  cell.state = CellState::kDone;
  cell.status = status;
  cell.result_bytes = std::move(bytes);
  if (!sw.opts.keep_checkpoints) clear_checkpoints(cell.ck_dir);
  sw.note("emx_sweep: " + cell.job.key + ": " + cell.status + "\n");
}

bool give_up(Sweep& sw, CellState& cell, const std::string& reason,
             std::string& err) {
  if (!sw.journal.append(
          "give-up",
          {{"job", jstr(cell.job.key)}, {"reason", jstr(reason)}}, err))
    return false;
  cell.state = CellState::kFailed;
  cell.status = "failed:" + reason;
  sw.note("emx_sweep: " + cell.job.key + ": " + cell.status + "\n");
  return true;
}

bool schedule_retry(Sweep& sw, CellState& cell, const std::string& reason,
                    bool from_scratch, std::string& err) {
  if (!sw.journal.append("fail",
                         {{"job", jstr(cell.job.key)},
                          {"attempt", std::to_string(cell.attempts)},
                          {"reason", jstr(reason)}},
                         err))
    return false;
  if (from_scratch) {
    clear_checkpoints(cell.ck_dir);
    cell.resume_path.clear();
  } else {
    cell.resume_path =
        latest_checkpoint(cell.ck_dir, cell.job.manifest.app);
  }
  cell.ready_at =
      sw.clock.now_ms() + backoff_delay_ms(cell.attempts, sw.opts.backoff_ms,
                                           sw.opts.backoff_max_ms);
  cell.state = CellState::kReady;
  sw.note("emx_sweep: " + cell.job.key + ": retrying (" + reason + ")\n");
  return true;
}

/// A worker exited with 0: validate its result file and bless it into
/// the cache. Returns false only on journal/cache write errors.
bool handle_worker_ok(Sweep& sw, CellState& cell, std::string& err) {
  std::string bytes;
  const std::string bad = audit_result(cell.result_path, bytes);
  if (!bad.empty()) {
    // Exit 0 with a broken result means the run cannot be trusted end to
    // end — retry from scratch rather than resume into the same state.
    if (cell.attempts <= sw.opts.max_retries)
      return schedule_retry(sw, cell, bad, /*from_scratch=*/true, err);
    return give_up(sw, cell, bad, err);
  }

  const std::string crc = crc_hex(ser::crc32(bytes.data(), bytes.size()));
  if (!sw.journal.append(
          "done",
          {{"job", jstr(cell.job.key)}, {"result_crc", jstr(crc)}}, err))
    return false;
  const std::string werr = sw.cache.publish(cell.job.key, bytes);
  if (!werr.empty()) {
    err = werr;
    return false;
  }
  std::error_code ec;
  fs::remove(cell.result_path, ec);
  finish_ok(sw, cell, std::move(bytes),
            cell.resumes > 0 ? "resumed:" + std::to_string(cell.resumes)
                             : "ok");
  return true;
}

bool handle_exit(Sweep& sw, const ExitStatus& es, std::string& err) {
  CellState& cell = sw.cells[es.tag];
  const ExitClass cls = classify_exit(es);
  const std::string reason = exit_reason(es);
  switch (cls) {
    case ExitClass::kOk:
      return handle_worker_ok(sw, cell, err);
    case ExitClass::kPermanent:
      return give_up(sw, cell, reason, err);
    case ExitClass::kRetryScratch:
      if (cell.attempts <= sw.opts.max_retries)
        return schedule_retry(sw, cell, reason, /*from_scratch=*/true, err);
      return give_up(sw, cell, reason, err);
    case ExitClass::kRetryResume:
      if (cell.attempts <= sw.opts.max_retries)
        return schedule_retry(sw, cell, reason, /*from_scratch=*/false, err);
      return give_up(sw, cell, reason, err);
  }
  err = "unreachable exit class";
  return false;
}

/// Replays the journal into per-cell completion facts. Returns false
/// (with a cell-naming message) on conflicting duplicate completions.
bool replay_done(const std::vector<JournalEntry>& entries,
                 std::map<std::string, std::string>& done_crc,
                 std::string& err) {
  for (const JournalEntry& e : entries) {
    if (e.event != "done") continue;
    const std::string job = e.field("job");
    const std::string crc = e.field("result_crc");
    const auto it = done_crc.find(job);
    if (it == done_crc.end()) {
      done_crc.emplace(job, crc);
    } else if (it->second != crc) {
      err = "journal records two completions for cell " + job +
            " with different results (crc " + it->second + " vs " + crc +
            ") — refusing to pick one";
      return false;
    }
    // Same crc twice is the benign replay case: ignore.
  }
  return true;
}

}  // namespace

ExitClass classify_exit(const ExitStatus& es) {
  if (es.timed_out || es.signaled) return ExitClass::kRetryResume;
  if (es.code == 0) return ExitClass::kOk;
  if (es.code == 5) return ExitClass::kRetryScratch;
  return ExitClass::kPermanent;
}

std::string exit_reason(const ExitStatus& es) {
  if (es.timed_out) return "timeout";
  if (es.signaled) return "signal-" + std::to_string(es.sig);
  switch (es.code) {
    case 0:
      return "ok";
    case 1:
      return "wrong-result";
    case 2:
      return "bad-input";
    case 3:
      return "checker";
    case 4:
      return "watchdog";
    case 5:
      return "snapshot-divergence";
    case 6:
      return "verify";
    case 127:
      return "exec-failed";
    default:
      return "exit-" + std::to_string(es.code);
  }
}

std::int64_t backoff_delay_ms(unsigned attempt, std::int64_t base,
                              std::int64_t cap) {
  if (base <= 0) return 0;
  if (cap < base) cap = base;
  std::int64_t delay = base;
  for (unsigned i = 1; i < attempt; ++i) {
    delay *= 2;
    if (delay >= cap) return cap;
  }
  return std::min(delay, cap);
}

std::string audit_result(const std::string& result_path, std::string& bytes) {
  if (!read_file(result_path, bytes)) return "no-result-file";
  std::string perr;
  const json::Value v = json::Value::parse(bytes, perr);
  if (!perr.empty() || !v.is_object()) return "unparseable-result";
  if (const json::Value* ec = v.find("exit_code");
      ec == nullptr || ec->as_int(-1) != 0)
    return "result-reports-failure";
  return "";
}

std::string latest_checkpoint(const std::string& ck_dir,
                              const std::string& app) {
  const std::string prefix = app + "-c";
  const std::string suffix = ".emxsnap";
  std::string best;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(ck_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    // Cycle numbers are zero-padded to fixed width, so lexicographic
    // max is the newest checkpoint.
    if (name > best) best = name;
  }
  return best.empty() ? "" : ck_dir + "/" + best;
}

int run_sweep(const SupervisorOptions& opts, SweepOutcome& out,
              std::string& err) {
  Clock& clock = opts.clock != nullptr ? *opts.clock : real_clock();
  Sweep sw(opts, clock);

  std::vector<JobSpec> jobs;
  if (!opts.spec.expand(jobs, err)) return 2;
  if (opts.parallel == 0) {
    err = "--jobs must be >= 1";
    return 2;
  }
  if (::access(opts.emx_run.c_str(), X_OK) != 0) {
    err = "worker binary '" + opts.emx_run + "' is not executable";
    return 2;
  }
  for (const char* sub : {"", "/jobs"}) {
    const std::string derr = fsio::ensure_writable_dir(opts.out_dir + sub);
    if (!derr.empty()) {
      err = derr;
      return 2;
    }
  }
  if (!sw.cache.open(opts.out_dir + "/cache", opts.cache_max_bytes, err))
    return 2;

  // --- journal: load for replay, open for append, verify identity ---
  const std::string journal_path = opts.out_dir + "/journal.jsonl";
  std::vector<JournalEntry> entries;
  std::string warning;
  if (!Journal::load(journal_path, entries, warning, err)) return 2;
  if (!warning.empty())
    std::fprintf(stderr, "emx_sweep: warning: %s\n", warning.c_str());
  if (!sw.journal.open(journal_path, err)) return 2;

  const std::string digest = crc_hex(opts.spec.digest());
  if (entries.empty()) {
    if (!sw.journal.append("sweep",
                           {{"name", jstr(opts.spec.name)},
                            {"digest", jstr(digest)},
                            {"cells", std::to_string(jobs.size())}},
                           err))
      return 2;
  } else {
    if (entries.front().event != "sweep" ||
        entries.front().field("digest") != digest) {
      err = opts.out_dir + " holds journal state for sweep '" +
            entries.front().field("name") + "' (digest " +
            entries.front().field("digest") + "), not this sweep (digest " +
            digest + ") — use a fresh --out directory";
      return 2;
    }
  }
  std::map<std::string, std::string> done_crc;
  if (!replay_done(entries, done_crc, err)) return 2;

  // --- cells: adopt cached completions, rediscover checkpoints ---
  sw.cells.reserve(jobs.size());
  std::size_t pending = 0;
  for (JobSpec& job : jobs) {
    CellState cell;
    cell.dir = opts.out_dir + "/jobs/" + job.key;
    cell.ck_dir = cell.dir + "/ck";
    cell.result_path = cell.dir + "/result.json";
    cell.job = std::move(job);

    // Every cell of this sweep is pinned for the sweep's lifetime, so
    // the LRU cap can never evict a result this invocation references.
    sw.cache.pin(cell.job.key);

    const auto it = done_crc.find(cell.job.key);
    std::string bytes;
    if (it != done_crc.end() && sw.cache.lookup(cell.job.key, bytes) &&
        crc_hex(ser::crc32(bytes.data(), bytes.size())) == it->second) {
      cell.state = CellState::kDone;
      cell.status = "cached";
      cell.result_bytes = std::move(bytes);
    } else {
      if (it != done_crc.end())
        std::fprintf(stderr,
                     "emx_sweep: warning: %s completed in the journal but "
                     "its cache entry is missing or damaged — re-running\n",
                     cell.job.key.c_str());
      const std::string derr = fsio::ensure_writable_dir(cell.dir);
      if (!derr.empty()) {
        err = derr;
        return 2;
      }
      // A killed supervisor leaves checkpoints behind; the replacement
      // resumes from them instead of starting over.
      if (opts.checkpoint_every > 0)
        cell.resume_path =
            latest_checkpoint(cell.ck_dir, cell.job.manifest.app);
      ++pending;
    }
    sw.cells.push_back(std::move(cell));
  }

  // --- scheduling loop ---
  while (pending > 0) {
    bool progressed = false;
    const std::int64_t now = clock.now_ms();
    for (std::size_t i = 0; i < sw.cells.size(); ++i) {
      if (sw.pool.running() >= opts.parallel) break;
      CellState& cell = sw.cells[i];
      if (cell.state != CellState::kReady || cell.ready_at > now) continue;
      if (!start_cell(sw, i, err)) return 2;
      progressed = true;
    }

    std::vector<ExitStatus> exits;
    sw.pool.poll(exits);
    for (const ExitStatus& es : exits) {
      if (!handle_exit(sw, es, err)) return 2;
      CellState& cell = sw.cells[es.tag];
      if (cell.state == CellState::kDone || cell.state == CellState::kFailed)
        --pending;
      progressed = true;
    }
    if (!progressed) clock.sleep_ms(10);
  }

  // --- aggregate + provenance, then the outcome summary ---
  out = SweepOutcome{};
  for (const CellState& cell : sw.cells) {
    CellOutcome oc;
    oc.key = cell.job.key;
    oc.status = cell.status;
    oc.attempts = cell.attempts;
    oc.resumes = cell.resumes;
    oc.result_bytes = cell.result_bytes;
    if (cell.state == CellState::kFailed)
      ++out.failed;
    else
      ++out.ok;
    out.cells.push_back(std::move(oc));
  }
  out.aggregate_path = opts.out_dir + "/aggregate.json";
  out.provenance_path = opts.out_dir + "/provenance.json";
  if (!write_aggregate(out.aggregate_path, opts.spec, out.cells, err))
    return 2;
  if (!write_provenance(out.provenance_path, opts.spec, out.cells, err))
    return 2;

  // --- compact the journal: every cell is now terminal, so the attempt
  // history is redundant. Keep the sweep header plus one terminal
  // record per cell; the rewrite is atomic, so a crash mid-compaction
  // leaves either the full history or the compacted one — both replay
  // to the same state. Failure to compact is a warning, not an error:
  // the uncompacted journal is merely larger, never wrong.
  {
    std::vector<JournalEntry> keep;
    JournalEntry header;
    header.event = "sweep";
    header.raw_fields = {{"name", jstr(opts.spec.name)},
                         {"digest", jstr(digest)},
                         {"cells", std::to_string(sw.cells.size())}};
    keep.push_back(std::move(header));
    for (const CellState& cell : sw.cells) {
      JournalEntry e;
      if (cell.state == CellState::kDone) {
        e.event = "done";
        const std::string crc = crc_hex(
            ser::crc32(cell.result_bytes.data(), cell.result_bytes.size()));
        e.raw_fields = {{"job", jstr(cell.job.key)},
                        {"result_crc", jstr(crc)}};
      } else {
        e.event = "give-up";
        std::string reason = cell.status;
        if (reason.rfind("failed:", 0) == 0) reason = reason.substr(7);
        e.raw_fields = {{"job", jstr(cell.job.key)},
                        {"reason", jstr(reason)}};
      }
      keep.push_back(std::move(e));
    }
    std::string compact_err;
    if (!Journal::compact(journal_path, keep, compact_err))
      std::fprintf(stderr, "emx_sweep: warning: %s\n", compact_err.c_str());
  }

  return out.failed == 0 ? 0 : 1;
}

}  // namespace emx::jobs
