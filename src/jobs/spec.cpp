#include "jobs/spec.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "common/json.hpp"
#include "workloads/registry.hpp"

namespace emx::jobs {

namespace {

std::string crc_hex(std::uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", crc);
  return buf;
}

std::uint32_t manifest_crc(const snapshot::RunManifest& m) {
  ser::Serializer s;
  m.save(s);
  return s.crc();
}

std::string fmt_double(double v) {
  char buf[40];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

/// Copies every emx_run-flag-expressible field of `from` onto `onto`.
/// Shared by the unexpressible-knob check (copy defaults onto a cell,
/// expect a pure default manifest back) — keeping the field list in one
/// place so worker_flags() and the check cannot drift apart.
void copy_expressible(const snapshot::RunManifest& from,
                      snapshot::RunManifest& onto) {
  onto.app = from.app;
  onto.size_per_proc = from.size_per_proc;
  onto.threads = from.threads;
  onto.iterations = from.iterations;
  onto.seed = from.seed;
  onto.block_reads = from.block_reads;
  onto.local_phase = from.local_phase;
  onto.config.proc_count = from.config.proc_count;
  onto.config.network = from.config.network;
  onto.config.read_service = from.config.read_service;
  onto.config.barrier = from.config.barrier;
  onto.config.priority_replies = from.config.priority_replies;
  onto.config.switch_save_cycles = from.config.switch_save_cycles;
  onto.config.dma_service_cycles = from.config.dma_service_cycles;
  onto.config.dma_interval_cycles = from.config.dma_interval_cycles;
  onto.config.barrier_poll_interval = from.config.barrier_poll_interval;
  onto.config.watchdog_cycles = from.config.watchdog_cycles;
  onto.config.fault.seed = from.config.fault.seed;
  onto.config.fault.drop_rate = from.config.fault.drop_rate;
  onto.config.fault.duplicate_rate = from.config.fault.duplicate_rate;
  onto.config.fault.corrupt_rate = from.config.fault.corrupt_rate;
  onto.config.fault.jitter_max_cycles = from.config.fault.jitter_max_cycles;
  onto.config.fault.timeout_cycles = from.config.fault.timeout_cycles;
  onto.config.fault.max_retries = from.config.fault.max_retries;
  onto.config.fault.reliability = from.config.fault.reliability;
  onto.config.check = from.config.check;
}

bool read_string_list(const json::Value& v, std::vector<std::string>& out,
                      std::string& err, const char* what) {
  if (!v.is_array()) {
    err = std::string(what) + " must be an array of strings";
    return false;
  }
  out.clear();
  for (const auto& e : v.items()) {
    if (!e.is_string()) {
      err = std::string(what) + " must be an array of strings";
      return false;
    }
    out.push_back(e.as_string());
  }
  return true;
}

template <typename T>
bool read_uint_list(const json::Value& v, std::vector<T>& out,
                    std::string& err, const char* what) {
  if (!v.is_array()) {
    err = std::string(what) + " must be an array of non-negative integers";
    return false;
  }
  out.clear();
  for (const auto& e : v.items()) {
    if (!e.is_int() || e.as_int() < 0) {
      err = std::string(what) + " must be an array of non-negative integers";
      return false;
    }
    out.push_back(static_cast<T>(e.as_int()));
  }
  return true;
}

bool apply_base_knob(const std::string& key, const json::Value& v,
                     snapshot::RunManifest& base, std::string& err) {
  const auto want_string = [&](const char* a, const char* b,
                               bool& matched_first) {
    if (v.as_string() == a) {
      matched_first = true;
      return true;
    }
    if (v.as_string() == b) {
      matched_first = false;
      return true;
    }
    err = "base." + key + " must be \"" + a + "\" or \"" + b + "\"";
    return false;
  };
  const auto want_uint = [&](std::uint64_t& onto) {
    if (!v.is_int() || v.as_int() < 0) {
      err = "base." + key + " must be a non-negative integer";
      return false;
    }
    onto = static_cast<std::uint64_t>(v.as_int());
    return true;
  };
  const auto want_rate = [&](double& onto) {
    if (!v.is_number() || v.as_double() < 0 || v.as_double() > 1) {
      err = "base." + key + " must be a number in 0..1";
      return false;
    }
    onto = v.as_double();
    return true;
  };
  const auto want_bool = [&](bool& onto) {
    if (!v.is_bool()) {
      err = "base." + key + " must be true or false";
      return false;
    }
    onto = v.as_bool();
    return true;
  };

  bool first = false;
  std::uint64_t u = 0;
  if (key == "network") {
    if (!want_string("fast", "detailed", first)) return false;
    base.config.network = first ? NetworkModel::kFast : NetworkModel::kDetailed;
  } else if (key == "read-service") {
    if (!want_string("bypass", "em4", first)) return false;
    base.config.read_service =
        first ? ReadServiceMode::kBypassDma : ReadServiceMode::kExuThread;
  } else if (key == "barrier") {
    if (!want_string("central", "tree", first)) return false;
    base.config.barrier =
        first ? BarrierTopology::kCentral : BarrierTopology::kTree;
  } else if (key == "priority-replies") {
    if (!want_bool(base.config.priority_replies)) return false;
  } else if (key == "block-reads") {
    if (!want_bool(base.block_reads)) return false;
  } else if (key == "local-phase") {
    if (!want_bool(base.local_phase)) return false;
  } else if (key == "iterations") {
    if (!want_uint(u)) return false;
    base.iterations = static_cast<std::uint32_t>(u);
  } else if (key == "switch-save") {
    if (!want_uint(base.config.switch_save_cycles)) return false;
  } else if (key == "dma-service") {
    if (!want_uint(base.config.dma_service_cycles)) return false;
  } else if (key == "dma-interval") {
    if (!want_uint(base.config.dma_interval_cycles)) return false;
  } else if (key == "poll-interval") {
    if (!want_uint(base.config.barrier_poll_interval)) return false;
  } else if (key == "watchdog") {
    if (!want_uint(base.config.watchdog_cycles)) return false;
  } else if (key == "fault-drop-rate") {
    if (!want_rate(base.config.fault.drop_rate)) return false;
  } else if (key == "fault-dup-rate") {
    if (!want_rate(base.config.fault.duplicate_rate)) return false;
  } else if (key == "fault-corrupt-rate") {
    if (!want_rate(base.config.fault.corrupt_rate)) return false;
  } else if (key == "fault-jitter-max") {
    if (!want_uint(base.config.fault.jitter_max_cycles)) return false;
  } else if (key == "fault-seed") {
    if (!want_uint(base.config.fault.seed)) return false;
  } else if (key == "fault-timeout") {
    if (!want_uint(u) || u == 0) {
      if (err.empty()) err = "base.fault-timeout must be >= 1";
      return false;
    }
    base.config.fault.timeout_cycles = u;
  } else if (key == "fault-max-retries") {
    if (!want_uint(u) || u == 0) {
      if (err.empty()) err = "base.fault-max-retries must be >= 1";
      return false;
    }
    base.config.fault.max_retries = static_cast<std::uint32_t>(u);
  } else if (key == "fault-reliability") {
    if (!want_bool(base.config.fault.reliability)) return false;
  } else {
    err = "unknown base knob '" + key + "' (see docs/JOBS.md for the list)";
    return false;
  }
  return true;
}

}  // namespace

bool apply_manifest_knob(const std::string& key, const json::Value& v,
                         snapshot::RunManifest& m, std::string& err) {
  return apply_base_knob(key, v, m, err);
}

std::string job_key(const snapshot::RunManifest& m) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s-p%u-n%llu-h%u-s%llu-%s", m.app.c_str(),
                m.config.proc_count,
                static_cast<unsigned long long>(m.size_per_proc), m.threads,
                static_cast<unsigned long long>(m.seed),
                crc_hex(manifest_crc(m)).c_str());
  return buf;
}

std::vector<std::string> worker_flags(const snapshot::RunManifest& m) {
  const snapshot::RunManifest d;  // emx_run's defaults (flag parity tested)
  std::vector<std::string> out;
  const auto flag = [&out](const std::string& name, const std::string& v) {
    out.push_back("--" + name + "=" + v);
  };
  flag("app", m.app);
  flag("procs", std::to_string(m.config.proc_count));
  flag("size-per-proc", std::to_string(m.size_per_proc));
  flag("threads", std::to_string(m.threads));
  flag("seed", std::to_string(m.seed));
  flag("iterations", std::to_string(m.iterations));
  if (m.block_reads != d.block_reads) flag("block-reads", "true");
  if (m.local_phase != d.local_phase) flag("local-phase", "false");
  if (m.config.network != d.config.network) flag("network", "detailed");
  if (m.config.read_service != d.config.read_service)
    flag("read-service", "em4");
  if (m.config.barrier != d.config.barrier) flag("barrier", "tree");
  if (m.config.priority_replies != d.config.priority_replies)
    flag("priority-replies", "true");
  if (m.config.switch_save_cycles != d.config.switch_save_cycles)
    flag("switch-save", std::to_string(m.config.switch_save_cycles));
  if (m.config.dma_service_cycles != d.config.dma_service_cycles)
    flag("dma-service", std::to_string(m.config.dma_service_cycles));
  if (m.config.dma_interval_cycles != d.config.dma_interval_cycles)
    flag("dma-interval", std::to_string(m.config.dma_interval_cycles));
  if (m.config.barrier_poll_interval != d.config.barrier_poll_interval)
    flag("poll-interval", std::to_string(m.config.barrier_poll_interval));
  if (m.config.watchdog_cycles != d.config.watchdog_cycles)
    flag("watchdog", std::to_string(m.config.watchdog_cycles));
  const auto& f = m.config.fault;
  const auto& fd = d.config.fault;
  if (f.drop_rate != fd.drop_rate)
    flag("fault-drop-rate", fmt_double(f.drop_rate));
  if (f.duplicate_rate != fd.duplicate_rate)
    flag("fault-dup-rate", fmt_double(f.duplicate_rate));
  if (f.corrupt_rate != fd.corrupt_rate)
    flag("fault-corrupt-rate", fmt_double(f.corrupt_rate));
  if (f.jitter_max_cycles != fd.jitter_max_cycles)
    flag("fault-jitter-max", std::to_string(f.jitter_max_cycles));
  if (f.seed != fd.seed) flag("fault-seed", std::to_string(f.seed));
  if (f.timeout_cycles != fd.timeout_cycles)
    flag("fault-timeout", std::to_string(f.timeout_cycles));
  if (f.max_retries != fd.max_retries)
    flag("fault-max-retries", std::to_string(f.max_retries));
  if (f.reliability != fd.reliability) flag("fault-reliability", "false");
  const auto& c = m.config.check;
  if (c.memcheck || c.race || c.deadlock || c.lint) {
    std::string list;
    const auto add = [&list](bool on, const char* name) {
      if (!on) return;
      if (!list.empty()) list += ",";
      list += name;
    };
    add(c.memcheck, "memcheck");
    add(c.race, "race");
    add(c.deadlock, "deadlock");
    add(c.lint, "lint");
    flag("check", list);
  }
  return out;
}

bool SweepSpec::from_json(const std::string& text, SweepSpec& out,
                         std::string& err) {
  std::string parse_err;
  const json::Value root = json::Value::parse(text, parse_err);
  if (!parse_err.empty()) {
    err = "spec is not valid JSON: " + parse_err;
    return false;
  }
  if (!root.is_object()) {
    err = "spec must be a JSON object";
    return false;
  }
  SweepSpec spec;
  spec.base.iterations = 8;  // emx_run's --iterations default
  spec.base.seed = 1;
  for (const auto& [key, v] : root.members()) {
    if (key == "name") {
      if (!v.is_string() || v.as_string().empty()) {
        err = "name must be a non-empty string";
        return false;
      }
      spec.name = v.as_string();
    } else if (key == "grid") {
      if (!v.is_object()) {
        err = "grid must be an object";
        return false;
      }
      for (const auto& [axis, list] : v.members()) {
        if (axis == "apps") {
          if (!read_string_list(list, spec.apps, err, "grid.apps")) return false;
        } else if (axis == "procs") {
          if (!read_uint_list(list, spec.procs, err, "grid.procs")) return false;
        } else if (axis == "threads") {
          if (!read_uint_list(list, spec.threads, err, "grid.threads"))
            return false;
        } else if (axis == "sizes_per_proc") {
          if (!read_uint_list(list, spec.sizes_per_proc, err,
                              "grid.sizes_per_proc"))
            return false;
        } else if (axis == "seeds") {
          if (!read_uint_list(list, spec.seeds, err, "grid.seeds"))
            return false;
        } else {
          err = "unknown grid axis '" + axis +
                "' (want apps, procs, threads, sizes_per_proc, seeds)";
          return false;
        }
      }
    } else if (key == "base") {
      if (!v.is_object()) {
        err = "base must be an object";
        return false;
      }
      for (const auto& [knob, kv] : v.members())
        if (!apply_base_knob(knob, kv, spec.base, err)) return false;
    } else {
      err = "unknown spec key '" + key + "' (want name, grid, base)";
      return false;
    }
  }
  if (spec.apps.empty()) {
    err = "grid.apps must name at least one app";
    return false;
  }
  out = std::move(spec);
  return true;
}

bool SweepSpec::from_file(const std::string& path, SweepSpec& out,
                         std::string& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err = "cannot read spec file '" + path + "'";
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return from_json(ss.str(), out, err);
}

std::string SweepSpec::canonical_json() const {
  json::Value v = json::Value::object();
  v.set("name", json::Value::string(name));
  const auto strings = [](const std::vector<std::string>& xs) {
    json::Value a = json::Value::array();
    for (const auto& x : xs) a.push(json::Value::string(x));
    return a;
  };
  const auto ints = [](const auto& xs) {
    json::Value a = json::Value::array();
    for (const auto x : xs)
      a.push(json::Value::integer(static_cast<std::int64_t>(x)));
    return a;
  };
  v.set("apps", strings(apps));
  v.set("procs", ints(procs));
  v.set("threads", ints(threads));
  v.set("sizes_per_proc", ints(sizes_per_proc));
  v.set("seeds", ints(seeds));
  v.set("base_manifest_crc", json::Value::string(crc_hex(manifest_crc(base))));
  return v.dump();
}

std::uint32_t SweepSpec::digest() const {
  const std::string canon = canonical_json();
  return ser::crc32(canon.data(), canon.size());
}

bool SweepSpec::expand(std::vector<JobSpec>& out, std::string& err) const {
  out.clear();
  if (apps.empty()) {
    err = "sweep grid has no apps";
    return false;
  }
  if (procs.empty() || seeds.empty()) {
    err = "sweep grid has an empty procs or seeds axis";
    return false;
  }

  // The base manifest may only use knobs a worker command line can
  // reproduce — anything else would make the journal's recipe a lie.
  {
    snapshot::RunManifest defaults, scrubbed = base;
    copy_expressible(defaults, scrubbed);
    const std::string leftover = scrubbed.diff(defaults);
    if (!leftover.empty()) {
      err = "sweep base sets knobs emx_run flags cannot express:\n" + leftover;
      return false;
    }
  }

  std::set<std::string> seen;
  for (const std::string& app : apps) {
    const workloads::Spec* spec = workloads::Registry::instance().find(app);
    if (spec == nullptr) {
      err = workloads::unknown_app_message(app);
      return false;
    }
    const std::vector<std::uint64_t> sizes =
        sizes_per_proc.empty()
            ? std::vector<std::uint64_t>{spec->default_size_per_proc}
            : sizes_per_proc;
    const std::vector<std::uint32_t> hs =
        threads.empty() ? std::vector<std::uint32_t>{spec->default_threads}
                        : threads;
    for (const std::uint32_t p : procs) {
      for (const std::uint64_t n : sizes) {
        for (const std::uint32_t h : hs) {
          for (const std::uint64_t s : seeds) {
            if (p == 0 || n == 0 || h == 0) {
              err = "grid cells need procs, sizes and threads >= 1";
              return false;
            }
            JobSpec job;
            job.manifest = base;
            job.manifest.app = app;
            job.manifest.config.proc_count = p;
            job.manifest.size_per_proc = n;
            job.manifest.threads = h;
            job.manifest.seed = s;
            job.key = job_key(job.manifest);
            if (!seen.insert(job.key).second) {
              err = "duplicate grid cell " + job.key +
                    " (repeated axis value?)";
              return false;
            }
            out.push_back(std::move(job));
          }
        }
      }
    }
  }
  return true;
}

}  // namespace emx::jobs
