#include "jobs/result_cache.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>

#include "common/fsio.hpp"

namespace emx::jobs {

namespace fs = std::filesystem;

namespace {

constexpr const char kSuffix[] = ".json";

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

bool ResultCache::open(const std::string& dir, std::uint64_t max_bytes,
                       std::string& err) {
  const std::string derr = fsio::ensure_writable_dir(dir);
  if (!derr.empty()) {
    err = derr;
    return false;
  }
  dir_ = dir;
  max_bytes_ = max_bytes;
  total_bytes_ = 0;
  next_touch_ = 0;
  entries_.clear();

  // Seed recency from mtimes: oldest file = least recent. Name breaks
  // ties so the order is deterministic under coarse filesystem clocks.
  struct Seed {
    fs::file_time_type mtime;
    std::string key;
    std::uint64_t bytes;
  };
  std::vector<Seed> seeds;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() <= sizeof kSuffix - 1 ||
        name.compare(name.size() - (sizeof kSuffix - 1), sizeof kSuffix - 1,
                     kSuffix) != 0)
      continue;
    Seed s;
    s.key = name.substr(0, name.size() - (sizeof kSuffix - 1));
    s.mtime = entry.last_write_time(ec);
    s.bytes = static_cast<std::uint64_t>(entry.file_size(ec));
    seeds.push_back(std::move(s));
  }
  std::sort(seeds.begin(), seeds.end(), [](const Seed& a, const Seed& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.key < b.key;
  });
  for (const Seed& s : seeds) {
    Entry e;
    e.bytes = s.bytes;
    e.touch = next_touch_++;
    total_bytes_ += s.bytes;
    entries_.emplace(s.key, e);
  }
  return true;
}

std::string ResultCache::path_for(const std::string& key) const {
  return dir_ + "/" + key + kSuffix;
}

bool ResultCache::lookup(const std::string& key, std::string& bytes) {
  if (!read_file(path_for(key), bytes)) return false;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    // Published behind our back (e.g. by a previous incarnation after
    // our open() scan): adopt it.
    Entry e;
    e.bytes = bytes.size();
    it = entries_.emplace(key, e).first;
    total_bytes_ += e.bytes;
  }
  it->second.touch = next_touch_++;
  // Freshen the mtime so recency survives a restart (best-effort — a
  // failure here costs at worst one recompute later, never a result).
  ::utimensat(AT_FDCWD, path_for(key).c_str(), nullptr, 0);
  return true;
}

std::string ResultCache::publish(const std::string& key,
                                 const std::string& bytes) {
  const std::string werr = fsio::atomic_write_file(path_for(key), bytes);
  if (!werr.empty()) return "cache publish: " + werr;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    it = entries_.emplace(key, Entry{}).first;
  } else {
    total_bytes_ -= it->second.bytes;
  }
  it->second.bytes = bytes.size();
  it->second.touch = next_touch_++;
  total_bytes_ += bytes.size();
  evict_to_cap();
  return "";
}

void ResultCache::evict_to_cap() {
  if (max_bytes_ == 0) return;
  while (total_bytes_ > max_bytes_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (pinned_.count(it->first) != 0) continue;
      if (victim == entries_.end() ||
          it->second.touch < victim->second.touch)
        victim = it;
    }
    if (victim == entries_.end()) return;  // everything left is pinned
    std::error_code ec;
    fs::remove(path_for(victim->first), ec);
    total_bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    ++evictions_;
  }
}

std::vector<std::string> ResultCache::keys_lru() const {
  std::vector<std::pair<std::uint64_t, std::string>> order;
  order.reserve(entries_.size());
  for (const auto& [key, e] : entries_) order.emplace_back(e.touch, key);
  std::sort(order.begin(), order.end());
  std::vector<std::string> keys;
  keys.reserve(order.size());
  for (auto& [touch, key] : order) keys.push_back(std::move(key));
  return keys;
}

}  // namespace emx::jobs
