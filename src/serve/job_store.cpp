#include "serve/job_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/fsio.hpp"
#include "common/serializer.hpp"
#include "jobs/supervisor.hpp"  // latest_checkpoint

namespace emx::serve {

namespace {

std::string jstr(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  out += json::escape(s);
  out += '"';
  return out;
}

std::string crc_hex(std::uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", crc);
  return buf;
}

std::string bytes_crc(const std::string& bytes) {
  return crc_hex(ser::crc32(bytes.data(), bytes.size()));
}

std::uint64_t to_u64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

}  // namespace

bool JobStore::open(const std::string& out_dir,
                    std::uint64_t cache_max_bytes, std::string& err) {
  out_dir_ = out_dir;
  for (const char* sub : {"", "/jobs"}) {
    const std::string derr = fsio::ensure_writable_dir(out_dir + sub);
    if (!derr.empty()) {
      err = derr;
      return false;
    }
  }
  if (!cache_.open(out_dir + "/cache", cache_max_bytes, err)) return false;

  const std::string journal_path = out_dir + "/journal.jsonl";
  std::vector<jobs::JournalEntry> entries;
  std::string warning;
  if (!jobs::Journal::load(journal_path, entries, warning, err)) return false;
  if (!warning.empty())
    std::fprintf(stderr, "emx_serve: warning: %s\n", warning.c_str());
  if (!entries.empty() && entries.front().event != "serve") {
    err = journal_path + " is not an emx_serve journal (first event '" +
          entries.front().event + "') — use a fresh --out directory";
    return false;
  }
  if (!replay(entries, err)) return false;
  if (!journal_.open(journal_path, err)) return false;
  if (entries.empty()) {
    if (!journal_.append("serve",
                         {{"name", jstr("serve")}, {"version", "1"}}, err))
      return false;
  }
  return true;
}

Exec& JobStore::make_exec(const jobs::JobSpec& job) {
  Exec e;
  e.key = job.key;
  e.job = job;
  e.seq = next_seq_++;
  e.dir = out_dir_ + "/jobs/" + job.key;
  e.ck_dir = e.dir + "/ck";
  e.result_path = e.dir + "/result.json";
  e.progress_path = e.dir + "/progress.jsonl";
  // Failure surfaces at the first worker spawn, which the retry policy
  // already handles; no need for a second error path here.
  (void)fsio::ensure_writable_dir(e.dir);
  cache_.pin(e.key);
  return execs_.insert_or_assign(e.key, std::move(e)).first->second;
}

void JobStore::attach(Exec& e, JobRecord& job) {
  if (e.job_ids.empty()) e.tenant = job.tenant;
  e.job_ids.push_back(job.id);
}

bool JobStore::detach(const std::string& key, const std::string& id,
                      std::string* killed_key) {
  const auto it = execs_.find(key);
  if (it == execs_.end()) return false;
  Exec& e = it->second;
  e.job_ids.erase(std::remove(e.job_ids.begin(), e.job_ids.end(), id),
                  e.job_ids.end());
  if (!e.job_ids.empty()) return false;
  if (e.state == Exec::State::kDone || e.state == Exec::State::kFailed)
    return false;
  if (e.state == Exec::State::kRunning && killed_key != nullptr) {
    // A live worker holds this exec: the daemon must kill and reap it
    // before the record can go away.
    *killed_key = key;
    return true;
  }
  cache_.unpin(key);
  if (e.state == Exec::State::kRunning) tenants_.on_stop(e.tenant);
  execs_.erase(it);
  return false;
}

void JobStore::drop_exec(const std::string& key) {
  const auto it = execs_.find(key);
  if (it == execs_.end()) return;
  if (it->second.state == Exec::State::kRunning)
    tenants_.on_stop(it->second.tenant);
  cache_.unpin(key);
  execs_.erase(it);
}

void JobStore::finish_jobs(Exec& e, JobRecord::State state,
                           const std::string& status) {
  for (const std::string& id : e.job_ids) {
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) continue;
    JobRecord& job = it->second;
    job.state = state;
    job.status = status;
    if (state == JobRecord::State::kDone) job.result_bytes = e.result_bytes;
    tenants_.on_finish(job.tenant);
  }
  e.job_ids.clear();
  cache_.unpin(e.key);
}

int JobStore::effective_priority(const Exec& e) const {
  int best = kMinPriority;
  for (const std::string& id : e.job_ids) {
    const auto it = jobs_.find(id);
    if (it != jobs_.end() && it->second.priority > best)
      best = it->second.priority;
  }
  return best;
}

bool JobStore::all_terminal() const {
  for (const auto& [key, e] : execs_)
    if (e.state == Exec::State::kQueued || e.state == Exec::State::kRunning)
      return false;
  return true;
}

JobRecord* JobStore::find_job(const std::string& id) {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

Exec* JobStore::find_exec(const std::string& key) {
  const auto it = execs_.find(key);
  return it == execs_.end() ? nullptr : &it->second;
}

bool JobStore::submit(const Request& req, JobRecord*& job, std::string& err) {
  const std::string id = "j" + std::to_string(next_job_);

  // Decide the dedup path first (no side effects), then journal it,
  // then mutate — so the journal always leads the state it describes.
  Exec* live = find_exec(req.job.key);
  const bool attach_live =
      live != nullptr && (live->state == Exec::State::kQueued ||
                          live->state == Exec::State::kRunning);
  std::string cached_bytes;
  const bool cached =
      !attach_live && cache_.lookup(req.job.key, cached_bytes);

  if (!journal_.append("submit",
                       {{"id", jstr(id)},
                        {"tenant", jstr(req.tenant)},
                        {"priority", std::to_string(req.priority)},
                        {"key", jstr(req.job.key)},
                        {"run", req.raw_run}},
                       err))
    return false;
  if (cached &&
      !journal_.append(
          "cached",
          {{"id", jstr(id)}, {"result_crc", jstr(bytes_crc(cached_bytes))}},
          err))
    return false;

  ++next_job_;
  JobRecord rec;
  rec.id = id;
  rec.tenant = req.tenant;
  rec.priority = req.priority;
  rec.key = req.job.key;
  rec.raw_run = req.raw_run;
  tenants_.on_submit(req.tenant);
  JobRecord& stored = jobs_[id] = std::move(rec);

  if (cached) {
    stored.state = JobRecord::State::kDone;
    stored.status = "cached";
    stored.result_bytes = std::move(cached_bytes);
    tenants_.on_finish(stored.tenant);
  } else if (attach_live) {
    attach(*live, stored);
  } else {
    attach(make_exec(req.job), stored);
  }
  job = &stored;
  return true;
}

bool JobStore::cancel(const std::string& id, bool& found, bool& was_live,
                      std::string& killed_key, std::string& err) {
  found = false;
  was_live = false;
  killed_key.clear();
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return true;
  found = true;
  if (it->second.state != JobRecord::State::kLive) return true;
  if (!journal_.append("cancel", {{"id", jstr(id)}}, err)) return false;
  was_live = true;
  JobRecord& job = it->second;
  job.state = JobRecord::State::kCanceled;
  job.status = "canceled";
  tenants_.on_finish(job.tenant);
  detach(job.key, id, &killed_key);
  return true;
}

bool JobStore::record_start(Exec& e, bool resuming, std::string& err) {
  if (!journal_.append("start",
                       {{"key", jstr(e.key)},
                        {"attempt", std::to_string(e.attempts + 1)},
                        {"resume", resuming ? "1" : "0"}},
                       err))
    return false;
  ++e.attempts;
  if (resuming) ++e.resumes;
  e.state = Exec::State::kRunning;
  tenants_.on_start(e.tenant);
  return true;
}

bool JobStore::record_done(Exec& e, const std::string& bytes,
                           std::string& err) {
  if (!journal_.append("done",
                       {{"key", jstr(e.key)},
                        {"result_crc", jstr(bytes_crc(bytes))},
                        {"attempts", std::to_string(e.attempts)},
                        {"resumes", std::to_string(e.resumes)},
                        {"preempts", std::to_string(e.preempts)}},
                       err))
    return false;
  const std::string werr = cache_.publish(e.key, bytes);
  if (!werr.empty()) {
    err = werr;
    return false;
  }
  e.state = Exec::State::kDone;
  e.result_bytes = bytes;
  tenants_.on_stop(e.tenant);
  finish_jobs(e, JobRecord::State::kDone, e.success_status());
  return true;
}

bool JobStore::record_fail(Exec& e, const std::string& reason,
                           std::string& err) {
  if (!journal_.append("fail",
                       {{"key", jstr(e.key)},
                        {"attempt", std::to_string(e.attempts)},
                        {"reason", jstr(reason)}},
                       err))
    return false;
  e.state = Exec::State::kQueued;
  e.fail_reason = reason;
  tenants_.on_stop(e.tenant);
  return true;
}

bool JobStore::record_preempt(Exec& e, std::string& err) {
  if (!journal_.append("preempt",
                       {{"key", jstr(e.key)},
                        {"attempt", std::to_string(e.attempts)}},
                       err))
    return false;
  ++e.preempts;
  e.state = Exec::State::kQueued;
  e.preempt_pending = false;
  tenants_.on_stop(e.tenant);
  return true;
}

bool JobStore::record_give_up(Exec& e, const std::string& reason,
                              std::string& err) {
  if (!journal_.append(
          "give-up", {{"key", jstr(e.key)}, {"reason", jstr(reason)}}, err))
    return false;
  e.state = Exec::State::kFailed;
  e.fail_reason = reason;
  tenants_.on_stop(e.tenant);
  finish_jobs(e, JobRecord::State::kFailed, "failed:" + reason);
  return true;
}

bool JobStore::replay(const std::vector<jobs::JournalEntry>& entries,
                      std::string& err) {
  for (const jobs::JournalEntry& e : entries) {
    if (e.event == "serve") continue;

    if (e.event == "submit") {
      const std::string id = e.field("id");
      const std::string raw_run = e.field("run");
      std::string perr;
      const json::Value run = json::Value::parse(raw_run, perr);
      jobs::JobSpec spec;
      std::string rerr;
      if (!perr.empty() || !parse_run(run, spec, rerr)) {
        err = "journal replay: submit " + id + ": run object no longer "
              "parses (" + (perr.empty() ? rerr : perr) + ")";
        return false;
      }
      if (spec.key != e.field("key")) {
        err = "journal replay: submit " + id + " was keyed " +
              e.field("key") + " but the same run now keys " + spec.key +
              " — refusing to mix manifests; use a fresh --out directory";
        return false;
      }
      JobRecord rec;
      rec.id = id;
      rec.tenant = e.field("tenant");
      rec.priority = static_cast<int>(to_u64(e.field("priority")));
      rec.key = spec.key;
      rec.raw_run = raw_run;
      tenants_.on_submit(rec.tenant);
      JobRecord& stored = jobs_[id] = std::move(rec);
      next_job_ = std::max(next_job_, to_u64(id.substr(1)) + 1);

      Exec* live = find_exec(stored.key);
      if (live != nullptr && (live->state == Exec::State::kQueued ||
                              live->state == Exec::State::kRunning)) {
        attach(*live, stored);
      } else {
        // If a "cached" line follows it will detach again; creating the
        // exec eagerly keeps the replay single-pass.
        attach(make_exec(spec), stored);
      }
      continue;
    }

    if (e.event == "cached") {
      JobRecord* job = find_job(e.field("id"));
      if (job == nullptr) continue;
      job->state = JobRecord::State::kDone;
      job->status = "cached";
      std::string bytes;
      if (cache_.lookup(job->key, bytes) &&
          bytes_crc(bytes) == e.field("result_crc"))
        job->result_bytes = std::move(bytes);
      tenants_.on_finish(job->tenant);
      detach(job->key, job->id, nullptr);
      continue;
    }

    if (e.event == "cancel") {
      JobRecord* job = find_job(e.field("id"));
      if (job == nullptr || job->state != JobRecord::State::kLive) continue;
      job->state = JobRecord::State::kCanceled;
      job->status = "canceled";
      tenants_.on_finish(job->tenant);
      detach(job->key, job->id, nullptr);
      continue;
    }

    Exec* exec = find_exec(e.field("key"));
    if (exec == nullptr) {
      err = "journal replay: " + e.event + " for unknown exec " +
            e.field("key");
      return false;
    }
    if (e.event == "start") {
      exec->attempts = static_cast<unsigned>(to_u64(e.field("attempt")));
      if (e.field("resume") == "1") ++exec->resumes;
      exec->state = Exec::State::kRunning;
      tenants_.on_start(exec->tenant);
    } else if (e.event == "fail") {
      exec->state = Exec::State::kQueued;
      exec->fail_reason = e.field("reason");
      tenants_.on_stop(exec->tenant);
    } else if (e.event == "preempt") {
      ++exec->preempts;
      exec->state = Exec::State::kQueued;
      tenants_.on_stop(exec->tenant);
    } else if (e.event == "done") {
      if (!e.field("attempts").empty()) {
        exec->attempts = static_cast<unsigned>(to_u64(e.field("attempts")));
        exec->resumes = static_cast<unsigned>(to_u64(e.field("resumes")));
        exec->preempts = static_cast<unsigned>(to_u64(e.field("preempts")));
      }
      tenants_.on_stop(exec->tenant);
      std::string bytes;
      if (cache_.lookup(exec->key, bytes) &&
          bytes_crc(bytes) == e.field("result_crc")) {
        exec->state = Exec::State::kDone;
        exec->result_bytes = std::move(bytes);
        finish_jobs(*exec, JobRecord::State::kDone, exec->success_status());
      } else {
        // Completed per the journal but the blessing is gone (evicted
        // or damaged cache entry): the honest move is to re-run.
        std::fprintf(stderr,
                     "emx_serve: warning: %s completed in the journal but "
                     "its cache entry is missing or damaged — re-running\n",
                     exec->key.c_str());
        exec->state = Exec::State::kQueued;
      }
    } else if (e.event == "give-up") {
      exec->state = Exec::State::kFailed;
      exec->fail_reason = e.field("reason");
      tenants_.on_stop(exec->tenant);
      finish_jobs(*exec, JobRecord::State::kFailed,
                  "failed:" + exec->fail_reason);
    } else {
      err = "journal replay: unknown event '" + e.event + "'";
      return false;
    }
  }

  // Post-pass: nothing survives a restart as "running" — workers died
  // with the old daemon. Re-queue with the newest checkpoint on disk.
  for (auto& [key, exec] : execs_) {
    if (exec.state == Exec::State::kRunning) {
      exec.state = Exec::State::kQueued;
      tenants_.on_stop(exec.tenant);
    }
    if (exec.state == Exec::State::kQueued) {
      exec.resume_path =
          jobs::latest_checkpoint(exec.ck_dir, exec.job.manifest.app);
      exec.preempt_pending = false;
      exec.ready_at = 0;
      cache_.pin(key);
    }
  }
  return true;
}

bool JobStore::compact(std::string& err) {
  // Keep the durable facts (header, submits, terminal records) in their
  // original order; drop only the attempt history (start/fail/preempt),
  // whose every effect is subsumed by the "done" counters. Original
  // order is what makes the filtered journal replay exactly.
  std::vector<jobs::JournalEntry> entries;
  std::string warning;
  if (!jobs::Journal::load(journal_.path(), entries, warning, err))
    return false;
  std::vector<jobs::JournalEntry> keep;
  for (jobs::JournalEntry& e : entries) {
    if (e.event == "start" || e.event == "fail" || e.event == "preempt")
      continue;
    keep.push_back(std::move(e));
  }
  if (!jobs::Journal::compact(journal_.path(), keep, err)) return false;
  // Reopen so next_seq matches the rewritten file.
  return journal_.open(journal_.path(), err);
}

}  // namespace emx::serve
