// Per-tenant accounting for the emx_serve daemon.
//
// The daemon is multi-tenant in the smallest way that is still honest:
// every submit names a tenant, the table counts what each tenant has
// running and has ever submitted/finished, and the scheduler uses the
// running counts for fair-share admission — among queued work of equal
// priority, the tenant with the least running work goes first, so one
// chatty tenant cannot starve the rest at its own priority level.
// There is no authentication: a Unix socket's file permissions are the
// access control, and the tenant string is a scheduling label.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/json.hpp"

namespace emx::serve {

class TenantTable {
 public:
  void on_submit(const std::string& tenant) { ++stats_[tenant].submitted; }
  void on_start(const std::string& tenant) { ++stats_[tenant].running; }
  void on_stop(const std::string& tenant) {
    auto it = stats_.find(tenant);
    if (it != stats_.end() && it->second.running > 0) --it->second.running;
  }
  void on_finish(const std::string& tenant) { ++stats_[tenant].finished; }

  unsigned running(const std::string& tenant) const {
    const auto it = stats_.find(tenant);
    return it == stats_.end() ? 0 : it->second.running;
  }

  /// {"<tenant>":{"running":N,"submitted":N,"finished":N},...} for the
  /// `list` response; tenants in name order (std::map) so the line is
  /// deterministic.
  json::Value summary() const;

 private:
  struct Stats {
    unsigned running = 0;
    std::uint64_t submitted = 0;
    std::uint64_t finished = 0;
  };
  std::map<std::string, Stats> stats_;
};

}  // namespace emx::serve
