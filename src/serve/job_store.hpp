// Durable job/execution state for the emx_serve daemon.
//
// Two tables, one journal:
//
//   * JobRecord — what a client submitted: tenant, priority, the run
//     recipe, and its terminal fate. Jobs are what clients name (`j3`).
//   * Exec — a deduplicated unit of work, keyed by the manifest CRC
//     key. Several jobs with byte-identical recipes attach to one Exec;
//     its effective priority is the max over attached jobs, and its
//     result satisfies all of them at once.
//
// Every state transition is journaled (CRC-framed lines, fsync'd before
// the transition is acted on — the same discipline and framing as the
// sweep supervisor), so a SIGKILL'd daemon restarted over the same
// --out directory replays the journal and converges: done work stays
// done (validated against the result cache by CRC), running work
// re-queues with its newest checkpoint as the resume point, and job IDs
// keep counting from where they left off.
//
// Dedup order on submit is: live Exec first (attach), then result cache
// (answer immediately, provenance "cached"), then a fresh Exec. The
// journal records which path was taken, so replay needs no guessing.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "jobs/journal.hpp"
#include "jobs/result_cache.hpp"
#include "jobs/spec.hpp"
#include "serve/protocol.hpp"
#include "serve/tenant.hpp"

namespace emx::serve {

struct JobRecord {
  std::string id;  ///< "j<N>", monotone across daemon restarts
  std::string tenant;
  int priority = kMinPriority;
  std::string key;      ///< manifest key (names the Exec)
  std::string raw_run;  ///< canonical run-object JSON (journal replay)

  /// kLive means "see the Exec" — the job's externally visible state
  /// (queued vs running) is derived from it.
  enum class State { kLive, kDone, kFailed, kCanceled } state = State::kLive;
  std::string status;        ///< "" while live; "ok"|"resumed:k"|"cached"|
                             ///< "failed:<r>"|"canceled" once terminal
  std::string result_bytes;  ///< blessed result line once done
};

struct Exec {
  std::string key;
  jobs::JobSpec job;
  enum class State { kQueued, kRunning, kDone, kFailed } state = State::kQueued;
  std::vector<std::string> job_ids;  ///< attached live jobs
  std::uint64_t seq = 0;             ///< admission order
  std::string tenant;  ///< fair-share owner: tenant of the first attach

  unsigned attempts = 0;  ///< worker starts
  unsigned resumes = 0;   ///< starts that passed --resume
  unsigned preempts = 0;  ///< daemon preemption kills (free retries)
  std::string resume_path;
  std::int64_t ready_at = 0;  ///< backoff gate for the next start
  std::string result_bytes;
  std::string fail_reason;

  // Daemon-runtime only (never journaled): preemption handshake state.
  bool preempt_pending = false;
  std::int64_t preempt_deadline = 0;
  std::string preempt_ck_seen;  ///< newest checkpoint when SIGUSR1 was sent

  std::string dir;            ///< <out>/jobs/<key>
  std::string ck_dir;         ///< <out>/jobs/<key>/ck
  std::string result_path;    ///< <out>/jobs/<key>/result.json
  std::string progress_path;  ///< <out>/jobs/<key>/progress.jsonl

  /// Provenance token for a successful finish: "ok" or "resumed:<k>".
  std::string success_status() const {
    return resumes > 0 ? "resumed:" + std::to_string(resumes) : "ok";
  }
};

class JobStore {
 public:
  /// Prepares <out_dir>/{jobs,cache,journal.jsonl}, replays any
  /// existing journal (torn tail tolerated, interior damage refused)
  /// and opens the result cache with `cache_max_bytes` (0 = no cap).
  bool open(const std::string& out_dir, std::uint64_t cache_max_bytes,
            std::string& err);

  /// Admits one submit. On return `job` points at the (new) record —
  /// terminal already when the cache satisfied it. Returns false only
  /// on journal/cache write failure (daemon-fatal).
  bool submit(const Request& req, JobRecord*& job, std::string& err);

  /// Cancels a live job. `found`/`was_live` report what happened;
  /// `killed_key` is set to the Exec key when the cancel emptied a
  /// RUNNING exec — the daemon must kill that worker and then call
  /// drop_exec() once it is reaped. Returns false on journal failure.
  bool cancel(const std::string& id, bool& found, bool& was_live,
              std::string& killed_key, std::string& err);

  // --- exec transitions (journal first, mutate second) ---
  bool record_start(Exec& e, bool resuming, std::string& err);
  bool record_done(Exec& e, const std::string& bytes, std::string& err);
  bool record_fail(Exec& e, const std::string& reason, std::string& err);
  bool record_preempt(Exec& e, std::string& err);
  bool record_give_up(Exec& e, const std::string& reason, std::string& err);

  /// Forgets an exec whose last job was canceled (after any worker
  /// kill). No journal event: replaying submit+cancel converges to the
  /// same absence.
  void drop_exec(const std::string& key);

  JobRecord* find_job(const std::string& id);
  Exec* find_exec(const std::string& key);
  std::map<std::string, Exec>& execs() { return execs_; }
  const std::map<std::string, JobRecord>& jobs() const { return jobs_; }
  TenantTable& tenants() { return tenants_; }
  jobs::ResultCache& cache() { return cache_; }

  /// Max priority over the exec's attached live jobs (its scheduling
  /// priority); kMinPriority when none are attached.
  int effective_priority(const Exec& e) const;

  bool all_terminal() const;

  /// Rewrites the journal down to submits plus terminal facts — called
  /// on a clean drain, when the attempt history is all redundant.
  bool compact(std::string& err);

 private:
  bool replay(const std::vector<jobs::JournalEntry>& entries,
              std::string& err);
  void attach(Exec& e, JobRecord& job);
  /// Detaches `id`; erases the exec when that left it empty and
  /// non-terminal. Returns true when the erased exec was running.
  bool detach(const std::string& key, const std::string& id,
              std::string* killed_key);
  void finish_jobs(Exec& e, JobRecord::State state,
                   const std::string& status);
  Exec& make_exec(const jobs::JobSpec& job);

  std::string out_dir_;
  jobs::Journal journal_;
  jobs::ResultCache cache_;
  TenantTable tenants_;
  std::map<std::string, JobRecord> jobs_;
  std::map<std::string, Exec> execs_;
  std::uint64_t next_job_ = 1;
  std::uint64_t next_seq_ = 1;
};

}  // namespace emx::serve
