#include "serve/daemon.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "jobs/process_pool.hpp"
#include "jobs/supervisor.hpp"
#include "serve/job_store.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "snapshot/progress.hpp"

namespace emx::serve {

namespace fs = std::filesystem;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_stop(int) { g_stop = 1; }

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// One client connection: a byte-buffered, non-blocking line pump.
struct Conn {
  int fd = -1;
  std::string in;
  std::string out;
  bool watching = false;
  std::string watch_id;
  std::size_t watch_off = 0;  ///< consumed bytes of the progress file
  bool close_after_flush = false;
};

struct Daemon {
  const DaemonOptions& opts;
  jobs::Clock& clock;
  JobStore store;
  jobs::ProcessPool pool;
  std::vector<Conn> conns;
  std::map<std::uint64_t, std::string> tag_key;  ///< pool tag → exec key
  std::map<std::string, std::uint64_t> key_tag;
  std::uint64_t next_tag = 1;
  int listen_fd = -1;
  bool draining = false;

  Daemon(const DaemonOptions& o, jobs::Clock& c)
      : opts(o), clock(c), pool(c) {}

  void note(const std::string& line) {
    if (!opts.quiet) std::fprintf(stderr, "%s", line.c_str());
  }
};

int listen_unix(const std::string& path, std::string& err) {
  sockaddr_un addr{};
  if (path.empty()) {
    err = "--socket is required";
    return -1;
  }
  if (path.size() >= sizeof addr.sun_path) {
    err = "--socket path '" + path + "' exceeds the AF_UNIX limit (" +
          std::to_string(sizeof addr.sun_path - 1) + " bytes)";
    return -1;
  }
  // A stale socket file from a killed daemon would make bind() fail;
  // the journal, not the socket, is the daemon's identity.
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) {
    err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    err = "cannot listen on '" + path + "': " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

/// The externally visible state string for a job.
std::string job_state(Daemon& d, const JobRecord& job) {
  switch (job.state) {
    case JobRecord::State::kLive: {
      const Exec* e = d.store.find_exec(job.key);
      return (e != nullptr && e->state == Exec::State::kRunning) ? "running"
                                                                 : "queued";
    }
    case JobRecord::State::kDone:
      return "done";
    case JobRecord::State::kFailed:
      return "failed";
    case JobRecord::State::kCanceled:
      return "canceled";
  }
  return "unknown";
}

json::Value job_json(Daemon& d, const JobRecord& job, bool with_result) {
  json::Value v = json::Value::object();
  v.set("id", json::Value::string(job.id));
  v.set("tenant", json::Value::string(job.tenant));
  v.set("priority", json::Value::integer(job.priority));
  v.set("key", json::Value::string(job.key));
  const std::string state = job_state(d, job);
  v.set("state", json::Value::string(state));
  v.set("status", json::Value::string(
                      job.state == JobRecord::State::kLive ? state
                                                           : job.status));
  if (const Exec* e = d.store.find_exec(job.key);
      e != nullptr && job.state == JobRecord::State::kLive) {
    v.set("attempts", json::Value::integer(e->attempts));
    v.set("resumes", json::Value::integer(e->resumes));
    v.set("preempts", json::Value::integer(e->preempts));
  }
  if (with_result && job.state == JobRecord::State::kDone &&
      !job.result_bytes.empty()) {
    std::string perr;
    json::Value result = json::Value::parse(job.result_bytes, perr);
    if (perr.empty()) v.set("result", std::move(result));
  }
  return v;
}

/// Starts the next attempt of `e`. Journals first, forks second.
/// Returns false only on a journal write failure (daemon-fatal).
bool start_exec(Daemon& d, Exec& e, std::string& err) {
  const bool resuming = !e.resume_path.empty();
  if (!d.store.record_start(e, resuming, err)) return false;

  jobs::Command cmd;
  cmd.argv.push_back(d.opts.emx_run);
  if (resuming) {
    cmd.argv.push_back("--resume=" + e.resume_path);
  } else {
    const std::vector<std::string> flags = jobs::worker_flags(e.job.manifest);
    cmd.argv.insert(cmd.argv.end(), flags.begin(), flags.end());
  }
  if (d.opts.checkpoint_every > 0)
    cmd.argv.push_back("--checkpoint-every=" +
                       std::to_string(d.opts.checkpoint_every));
  // The checkpoint dir and signal arming ride along even when periodic
  // checkpoints are off: they are what make preemption recoverable.
  cmd.argv.push_back("--checkpoint-dir=" + e.ck_dir);
  cmd.argv.push_back("--checkpoint-on-signal=true");
  if (d.opts.progress_every > 0) {
    cmd.argv.push_back("--progress-every=" +
                       std::to_string(d.opts.progress_every));
    cmd.argv.push_back("--progress-file=" + e.progress_path);
  }
  // The engine rides along on every attempt, resumes included: it is
  // not part of the checkpoint's manifest (execution knob), so a
  // preempted-and-resumed worker would otherwise fall back to seq.
  if (d.opts.engine == "par") {
    cmd.argv.push_back("--engine=par");
    cmd.argv.push_back("--shards=" + std::to_string(d.opts.shards));
  }
  cmd.argv.push_back("--result-json=" + e.result_path);
  const std::string base = e.dir + "/attempt-" + std::to_string(e.attempts);
  cmd.stdout_path = base + ".stdout";
  cmd.stderr_path = base + ".stderr";

  const std::uint64_t tag = d.next_tag++;
  std::string spawn_err;
  const pid_t pid = d.pool.start(cmd, tag, d.opts.timeout_ms, spawn_err);
  if (pid < 0) {
    if (!d.store.record_fail(e, "spawn: " + spawn_err, err)) return false;
    e.ready_at = d.clock.now_ms() +
                 jobs::backoff_delay_ms(e.attempts - e.preempts,
                                        d.opts.backoff_ms,
                                        d.opts.backoff_max_ms);
    return true;
  }
  d.tag_key[tag] = e.key;
  d.key_tag[e.key] = tag;
  d.note("emx_serve: " + e.key + ": started (attempt " +
         std::to_string(e.attempts) + (resuming ? ", resume" : "") + ")\n");
  return true;
}

std::vector<ExecView> queued_views(Daemon& d, std::int64_t now) {
  std::vector<ExecView> views;
  for (auto& [key, e] : d.store.execs()) {
    if (e.state != Exec::State::kQueued || e.ready_at > now) continue;
    ExecView v;
    v.key = key;
    v.tenant = e.tenant;
    v.priority = d.store.effective_priority(e);
    v.seq = e.seq;
    views.push_back(std::move(v));
  }
  return views;
}

std::vector<ExecView> running_views(Daemon& d) {
  std::vector<ExecView> views;
  for (auto& [key, e] : d.store.execs()) {
    if (e.state != Exec::State::kRunning) continue;
    ExecView v;
    v.key = key;
    v.tenant = e.tenant;
    v.priority = d.store.effective_priority(e);
    v.seq = e.seq;
    views.push_back(std::move(v));
  }
  return views;
}

/// Admission + preemption for one loop turn. Returns false on a
/// daemon-fatal journal failure.
bool schedule(Daemon& d, std::string& err) {
  const std::int64_t now = d.clock.now_ms();

  while (d.pool.running() < d.opts.parallel) {
    const std::vector<ExecView> queued = queued_views(d, now);
    const std::size_t pick =
        pick_next(queued, d.store.tenants(), d.opts.max_per_tenant);
    if (pick == kNoPick) break;
    Exec* e = d.store.find_exec(queued[pick].key);
    if (e == nullptr) break;
    if (!start_exec(d, *e, err)) return false;
    if (e->state != Exec::State::kRunning) break;  // spawn failed: back off
  }

  // Every slot busy and work still queued: preempt strictly lower-
  // priority running work via checkpoint-on-demand, then (below) the
  // kill once a checkpoint lands or the grace expires.
  if (d.pool.running() >= d.opts.parallel) {
    const std::vector<ExecView> queued = queued_views(d, now);
    const std::size_t pick =
        pick_next(queued, d.store.tenants(), d.opts.max_per_tenant);
    if (pick != kNoPick) {
      const std::vector<ExecView> running = running_views(d);
      const std::size_t vic = pick_victim(running, queued[pick].priority);
      if (vic != kNoPick) {
        Exec* victim = d.store.find_exec(running[vic].key);
        if (victim != nullptr && !victim->preempt_pending) {
          victim->preempt_pending = true;
          victim->preempt_deadline = now + d.opts.preempt_grace_ms;
          victim->preempt_ck_seen =
              jobs::latest_checkpoint(victim->ck_dir,
                                      victim->job.manifest.app);
          const auto tag = d.key_tag.find(victim->key);
          if (tag != d.key_tag.end())
            d.pool.signal_child(tag->second, SIGUSR1);
          d.note("emx_serve: " + victim->key +
                 ": preempting for priority " +
                 std::to_string(queued[pick].priority) + " work\n");
        }
      }
    }
  }

  // Preemption handshakes in flight: SIGKILL once a fresh checkpoint
  // appeared, or the worker ran out of grace. The checkpoint write is
  // atomic, so killing a worker mid-write can never leave a torn file
  // under a checkpoint name — resume always sees an intact snapshot.
  for (auto& [key, e] : d.store.execs()) {
    if (e.state != Exec::State::kRunning || !e.preempt_pending) continue;
    const std::string ck =
        jobs::latest_checkpoint(e.ck_dir, e.job.manifest.app);
    const bool fresh = !ck.empty() && ck != e.preempt_ck_seen;
    if (fresh || d.clock.now_ms() >= e.preempt_deadline) {
      const auto tag = d.key_tag.find(key);
      if (tag != d.key_tag.end()) d.pool.kill_child(tag->second);
    }
  }
  return true;
}

/// One reaped worker. Mirrors the sweep supervisor's policy, with one
/// addition: a preemption kill re-queues at full retry credit — the
/// daemon did it on purpose, so it is not evidence against the job.
bool handle_exit(Daemon& d, const jobs::ExitStatus& es, std::string& err) {
  const auto it = d.tag_key.find(es.tag);
  if (it == d.tag_key.end()) return true;
  const std::string key = it->second;
  d.tag_key.erase(it);
  d.key_tag.erase(key);

  Exec* e = d.store.find_exec(key);
  if (e == nullptr || e->state != Exec::State::kRunning) return true;
  if (e->job_ids.empty()) {
    // Every submitter canceled while it ran; the kill was ours.
    d.store.drop_exec(key);
    return true;
  }

  const std::int64_t now = d.clock.now_ms();
  if (es.preempted) {
    if (!d.store.record_preempt(*e, err)) return false;
    e->resume_path = jobs::latest_checkpoint(e->ck_dir, e->job.manifest.app);
    e->ready_at = now;  // no backoff: nothing is wrong with the job
    d.note("emx_serve: " + key + ": preempted (resume " +
           (e->resume_path.empty() ? "from scratch" : "from checkpoint") +
           ")\n");
    return true;
  }

  const jobs::ExitClass cls = jobs::classify_exit(es);
  const std::string reason = jobs::exit_reason(es);
  const unsigned spent = e->attempts - e->preempts;  ///< non-preempt starts
  const auto backoff = [&] {
    e->ready_at = now + jobs::backoff_delay_ms(spent, d.opts.backoff_ms,
                                               d.opts.backoff_max_ms);
  };
  const auto retry_scratch = [&](const std::string& why) -> bool {
    std::error_code ec;
    fs::remove_all(e->ck_dir, ec);
    e->resume_path.clear();
    if (!d.store.record_fail(*e, why, err)) return false;
    backoff();
    d.note("emx_serve: " + key + ": retrying from scratch (" + why + ")\n");
    return true;
  };

  switch (cls) {
    case jobs::ExitClass::kOk: {
      std::string bytes;
      const std::string bad = jobs::audit_result(e->result_path, bytes);
      if (!bad.empty()) {
        if (spent <= d.opts.max_retries) return retry_scratch(bad);
        if (!d.store.record_give_up(*e, bad, err)) return false;
        return true;
      }
      if (!d.store.record_done(*e, bytes, err)) return false;
      std::error_code ec;
      fs::remove(e->result_path, ec);
      if (!d.opts.quiet) {
        d.note("emx_serve: " + key + ": " + e->success_status() + "\n");
      }
      return true;
    }
    case jobs::ExitClass::kPermanent:
      return d.store.record_give_up(*e, reason, err);
    case jobs::ExitClass::kRetryScratch:
      if (spent <= d.opts.max_retries) return retry_scratch(reason);
      return d.store.record_give_up(*e, reason, err);
    case jobs::ExitClass::kRetryResume:
      if (spent <= d.opts.max_retries) {
        e->resume_path =
            jobs::latest_checkpoint(e->ck_dir, e->job.manifest.app);
        if (!d.store.record_fail(*e, reason, err)) return false;
        backoff();
        d.note("emx_serve: " + key + ": retrying (" + reason + ")\n");
        return true;
      }
      return d.store.record_give_up(*e, reason, err);
  }
  err = "unreachable exit class";
  return false;
}

/// Streams any new progress records to a watching connection; emits the
/// "end" event and schedules the close once the job is terminal.
void pump_watch(Daemon& d, Conn& conn) {
  JobRecord* job = d.store.find_job(conn.watch_id);
  if (job == nullptr) {
    conn.out += error_line("unknown job id '" + conn.watch_id + "'");
    conn.watching = false;
    conn.close_after_flush = true;
    return;
  }
  if (job->state == JobRecord::State::kLive) {
    const Exec* e = d.store.find_exec(job->key);
    if (e == nullptr || d.opts.progress_every == 0) return;
    std::string buf;
    if (!read_file(e->progress_path, buf)) return;
    // A new attempt truncates the progress file; follow it back.
    if (buf.size() < conn.watch_off) conn.watch_off = 0;
    std::vector<snapshot::ProgressRecord> recs;
    std::string perr;
    conn.watch_off += snapshot::parse_progress(
        std::string_view(buf).substr(conn.watch_off), recs, perr);
    for (const snapshot::ProgressRecord& rec : recs) {
      json::Value v = json::Value::object();
      v.set("event", json::Value::string("progress"));
      v.set("id", json::Value::string(job->id));
      v.set("cycle",
            json::Value::integer(static_cast<std::int64_t>(rec.cycle)));
      v.set("live", json::Value::integer(
                        static_cast<std::int64_t>(rec.live_threads)));
      v.set("ckpts", json::Value::integer(
                         static_cast<std::int64_t>(rec.checkpoints)));
      conn.out += response_line(v);
    }
    return;
  }
  json::Value v = json::Value::object();
  v.set("event", json::Value::string("end"));
  v.set("job", job_json(d, *job, /*with_result=*/true));
  conn.out += response_line(v);
  conn.watching = false;
  conn.close_after_flush = true;
}

/// One parsed request line. Returns false on daemon-fatal errors only;
/// client mistakes are answered on the wire.
bool handle_request(Daemon& d, Conn& conn, const std::string& line,
                    std::string& err) {
  Request req;
  std::string perr;
  if (!parse_request(line, req, perr)) {
    conn.out += error_line(perr);
    return true;
  }
  switch (req.op) {
    case Request::Op::kSubmit: {
      if (d.draining) {
        conn.out += error_line("daemon is draining — not accepting jobs");
        return true;
      }
      JobRecord* job = nullptr;
      if (!d.store.submit(req, job, err)) return false;
      json::Value v = job_json(d, *job, /*with_result=*/true);
      v.set("ok", json::Value::boolean(true));
      conn.out += response_line(v);
      d.note("emx_serve: " + job->id + ": submitted " + job->key +
             " (tenant " + job->tenant + ", priority " +
             std::to_string(job->priority) + ") → " + job_state(d, *job) +
             "\n");
      return true;
    }
    case Request::Op::kStatus: {
      JobRecord* job = d.store.find_job(req.id);
      if (job == nullptr) {
        conn.out += error_line("unknown job id '" + req.id + "'");
        return true;
      }
      json::Value v = job_json(d, *job, /*with_result=*/true);
      v.set("ok", json::Value::boolean(true));
      conn.out += response_line(v);
      return true;
    }
    case Request::Op::kList: {
      json::Value v = json::Value::object();
      v.set("ok", json::Value::boolean(true));
      v.set("draining", json::Value::boolean(d.draining));
      json::Value arr = json::Value::array();
      for (const auto& [id, job] : d.store.jobs())
        arr.push(job_json(d, job, /*with_result=*/false));
      v.set("jobs", std::move(arr));
      v.set("tenants", d.store.tenants().summary());
      json::Value cache = json::Value::object();
      cache.set("bytes", json::Value::integer(static_cast<std::int64_t>(
                             d.store.cache().total_bytes())));
      cache.set("entries", json::Value::integer(static_cast<std::int64_t>(
                               d.store.cache().entries())));
      cache.set("evictions", json::Value::integer(static_cast<std::int64_t>(
                                 d.store.cache().evictions())));
      v.set("cache", std::move(cache));
      conn.out += response_line(v);
      return true;
    }
    case Request::Op::kCancel: {
      bool found = false, was_live = false;
      std::string killed_key;
      if (!d.store.cancel(req.id, found, was_live, killed_key, err))
        return false;
      if (!found) {
        conn.out += error_line("unknown job id '" + req.id + "'");
        return true;
      }
      if (!killed_key.empty()) {
        const auto tag = d.key_tag.find(killed_key);
        if (tag != d.key_tag.end()) d.pool.kill_child(tag->second);
      }
      json::Value v = json::Value::object();
      v.set("ok", json::Value::boolean(true));
      v.set("id", json::Value::string(req.id));
      v.set("canceled", json::Value::boolean(was_live));
      conn.out += response_line(v);
      return true;
    }
    case Request::Op::kWatch: {
      if (d.store.find_job(req.id) == nullptr) {
        conn.out += error_line("unknown job id '" + req.id + "'");
        return true;
      }
      conn.watching = true;
      conn.watch_id = req.id;
      conn.watch_off = 0;
      pump_watch(d, conn);  // terminal jobs answer immediately
      return true;
    }
    case Request::Op::kDrain: {
      d.draining = true;
      json::Value v = json::Value::object();
      v.set("ok", json::Value::boolean(true));
      v.set("draining", json::Value::boolean(true));
      conn.out += response_line(v);
      d.note("emx_serve: draining\n");
      return true;
    }
  }
  err = "unreachable op";
  return false;
}

void accept_conns(Daemon& d) {
  while (true) {
    const int fd = ::accept4(d.listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;
    Conn c;
    c.fd = fd;
    d.conns.push_back(std::move(c));
  }
}

bool pump_conns(Daemon& d, std::string& err) {
  for (Conn& conn : d.conns) {
    // Read whatever is there.
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
      if (n > 0) {
        conn.in.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) conn.close_after_flush = true;  // peer finished sending
      break;
    }
    // Handle complete lines.
    std::size_t nl;
    while ((nl = conn.in.find('\n')) != std::string::npos) {
      const std::string line = conn.in.substr(0, nl);
      conn.in.erase(0, nl + 1);
      if (line.empty()) continue;
      if (!handle_request(d, conn, line, err)) return false;
    }
  }

  for (Conn& conn : d.conns)
    if (conn.watching) pump_watch(d, conn);

  // Flush, then reap finished connections.
  for (Conn& conn : d.conns) {
    while (!conn.out.empty()) {
      const ssize_t n =
          ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        conn.close_after_flush = true;  // peer gone; drop the rest
        conn.out.clear();
        break;
      }
      conn.out.erase(0, static_cast<std::size_t>(n));
    }
  }
  d.conns.erase(
      std::remove_if(d.conns.begin(), d.conns.end(),
                     [](Conn& c) {
                       // A watcher stays open until its job ends.
                       if (c.close_after_flush && c.out.empty() &&
                           !c.watching) {
                         ::close(c.fd);
                         return true;
                       }
                       return false;
                     }),
      d.conns.end());
  return true;
}

}  // namespace

int run_daemon(const DaemonOptions& opts, std::string& err) {
  if (opts.parallel == 0) {
    err = "--jobs must be >= 1";
    return 2;
  }
  if (::access(opts.emx_run.c_str(), X_OK) != 0) {
    err = "worker binary '" + opts.emx_run + "' is not executable";
    return 2;
  }
  jobs::Clock& clock = opts.clock != nullptr ? *opts.clock : jobs::real_clock();
  Daemon d(opts, clock);
  if (!d.store.open(opts.out_dir, opts.cache_max_bytes, err)) return 2;
  d.listen_fd = listen_unix(opts.socket_path, err);
  if (d.listen_fd < 0) return 2;

  // A watcher's socket closing mid-write must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction sa {};
  sa.sa_handler = on_stop;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  g_stop = 0;

  d.note("emx_serve: listening on " + opts.socket_path + "\n");

  int code = 0;
  while (g_stop == 0) {
    accept_conns(d);
    if (!pump_conns(d, err) || !schedule(d, err)) {
      code = 2;
      break;
    }
    std::vector<jobs::ExitStatus> exits;
    d.pool.poll(exits);
    bool fatal = false;
    for (const jobs::ExitStatus& es : exits)
      if (!handle_exit(d, es, err)) {
        fatal = true;
        break;
      }
    if (fatal) {
      code = 2;
      break;
    }
    if (d.draining && d.store.all_terminal() && d.pool.running() == 0) {
      // Flush terminal watch events before leaving.
      if (!pump_conns(d, err)) code = 2;
      break;
    }
    clock.sleep_ms(5);
  }

  if (code == 0 && g_stop == 0 && d.draining) {
    std::string cerr2;
    if (!d.store.compact(cerr2))
      std::fprintf(stderr, "emx_serve: warning: %s\n", cerr2.c_str());
    d.note("emx_serve: drained\n");
  }
  for (Conn& c : d.conns) ::close(c.fd);
  ::close(d.listen_fd);
  ::unlink(opts.socket_path.c_str());
  return code;
}

}  // namespace emx::serve
