// Pure scheduling policy for the emx_serve daemon: who runs next, who
// gets preempted. No I/O, no clocks — just orderings over views of the
// execution table, so every decision is unit-testable in isolation and
// deterministic given the same inputs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/tenant.hpp"

namespace emx::serve {

/// What the policy needs to know about one execution (a deduplicated
/// unit of work; several jobs may be attached to it).
struct ExecView {
  std::string key;
  std::string tenant;
  int priority = 0;       ///< effective: max over attached live jobs
  std::uint64_t seq = 0;  ///< admission order (first submit wins)
};

constexpr std::size_t kNoPick = static_cast<std::size_t>(-1);

/// Index into `queued` of the next execution to start, or kNoPick.
/// Order: priority descending, then fair share (tenant with fewer
/// running executions first), then admission order. Tenants already at
/// `max_per_tenant` running executions are skipped (0 = no cap).
std::size_t pick_next(const std::vector<ExecView>& queued,
                      const TenantTable& tenants, unsigned max_per_tenant);

/// Index into `running` of the execution to preempt so work of
/// `priority` can run, or kNoPick when nothing running is strictly
/// lower-priority. Picks the lowest effective priority; among equals,
/// the youngest admission (least likely to have deep checkpoint state,
/// and deterministic either way).
std::size_t pick_victim(const std::vector<ExecView>& running, int priority);

}  // namespace emx::serve
