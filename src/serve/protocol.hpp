// The emx_serve wire protocol: newline-delimited JSON over a Unix
// socket.
//
// Every request is one JSON object on one line; every response is one
// JSON object on one line (except `watch`, which streams one line per
// progress record and ends with an "end" event). Keeping the framing
// this dumb is deliberate: the daemon's durability story already rests
// on line-oriented JSON (the journal), `nc`/scripts can speak it, and
// a torn request is just an unparseable line answered with an error.
//
// Requests:
//
//   {"op":"submit","tenant":"t","priority":0..9,"run":{...}}
//   {"op":"status","id":"j3"}
//   {"op":"list"}
//   {"op":"cancel","id":"j3"}
//   {"op":"watch","id":"j3"}
//   {"op":"drain"}
//
// The "run" object names the workload and its coordinates (`app`,
// `procs`, `threads`, `size_per_proc`, `seed`) plus any manifest knob
// from the sweep-spec "base" vocabulary (network, barrier, watchdog,
// fault plan, ... — see docs/JOBS.md). It is expanded through the same
// SweepSpec machinery emx_sweep uses, so a submitted run gets the same
// manifest-CRC key as the equivalent sweep cell — which is exactly what
// makes daemon results and sweep results dedupe against each other.
#pragma once

#include <string>

#include "common/json.hpp"
#include "jobs/spec.hpp"

namespace emx::serve {

constexpr int kMinPriority = 0;
constexpr int kMaxPriority = 9;

struct Request {
  enum class Op { kSubmit, kStatus, kList, kCancel, kWatch, kDrain };
  Op op = Op::kList;
  std::string tenant = "default";  ///< submit
  int priority = kMinPriority;     ///< submit; higher preempts lower
  std::string id;                  ///< status / cancel / watch
  jobs::JobSpec job;               ///< submit: expanded and keyed
  std::string raw_run;             ///< submit: canonical run-object JSON
};

/// Parses one request line. Returns false with a client-facing `err`.
bool parse_request(const std::string& line, Request& out, std::string& err);

/// Expands one "run" object into a fully keyed JobSpec (registry
/// defaults applied, manifest CRC computed). Shared between submit
/// parsing and journal-replay recovery, so a daemon restarted over its
/// journal re-derives exactly the key it journaled.
bool parse_run(const json::Value& run, jobs::JobSpec& out, std::string& err);

/// {"ok":false,"error":"..."} plus newline.
std::string error_line(const std::string& msg);

/// `v` dumped onto one line plus newline.
std::string response_line(const json::Value& v);

}  // namespace emx::serve
