// The emx_serve daemon: a long-lived, multi-tenant simulation-job
// server over a Unix-domain socket.
//
// One single-threaded event loop owns everything: accepting
// connections, parsing newline-delimited JSON requests
// (serve/protocol.hpp), admitting jobs through the fair-share scheduler
// (serve/scheduler.hpp), driving workers through the same ProcessPool
// and exit-code policy as emx_sweep, and streaming `watch` progress
// from the workers' CRC-framed progress files. Single-threaded is a
// feature: every decision is serialized against the journal write that
// records it, so the crash story stays the supervisor's — journal
// first, act second, converge on restart.
//
// Preemption is cooperative-then-forceful: when higher-priority work is
// queued and every slot is busy, the lowest-priority running worker is
// sent SIGUSR1 (checkpoint-on-demand); once a fresh checkpoint appears
// — or a grace deadline expires — the worker is SIGKILLed and its exec
// re-queued to resume from the newest checkpoint on disk. Checkpoint
// writes are atomic, so a kill racing the checkpoint write costs at
// most one interval of re-execution, never a torn resume point.
#pragma once

#include <cstdint>
#include <string>

#include "jobs/clock.hpp"

namespace emx::serve {

struct DaemonOptions {
  std::string socket_path;
  std::string out_dir;
  std::string emx_run;  ///< worker binary

  unsigned parallel = 2;        ///< worker slots
  unsigned max_retries = 3;     ///< non-preemption retries per exec
  unsigned max_per_tenant = 0;  ///< running execs per tenant; 0 = no cap
  std::int64_t timeout_ms = 0;  ///< per-attempt wall clock; 0 = none
  std::int64_t backoff_ms = 250;
  std::int64_t backoff_max_ms = 8000;
  std::int64_t preempt_grace_ms = 1000;  ///< checkpoint wait before SIGKILL
  std::uint64_t checkpoint_every = 100000;  ///< cycles; 0 disarms
  std::uint64_t progress_every = 50000;     ///< cycles; 0 disarms watch
  std::uint64_t cache_max_bytes = 0;        ///< result-cache cap; 0 = none
  bool quiet = false;
  jobs::Clock* clock = nullptr;  ///< nullptr = real_clock()

  /// Worker execution engine (emx_run --engine/--shards). Execution
  /// knob only — never part of a job's key, manifest or result bytes;
  /// results are byte-identical across engines by contract, so the
  /// result cache stays valid whichever engine filled it.
  std::string engine = "seq";  ///< "seq" | "par"
  std::uint32_t shards = 0;    ///< par: host threads; 0 = one per core
};

/// Runs the daemon until a `drain` request has been honored (all work
/// terminal) or SIGTERM/SIGINT arrives. Returns 0 on a clean exit, 2
/// when setup is refused (bad socket path, damaged journal, unwritable
/// output directory).
int run_daemon(const DaemonOptions& opts, std::string& err);

}  // namespace emx::serve
