#include "serve/tenant.hpp"

namespace emx::serve {

json::Value TenantTable::summary() const {
  json::Value v = json::Value::object();
  for (const auto& [tenant, s] : stats_) {
    json::Value t = json::Value::object();
    t.set("running", json::Value::integer(s.running));
    t.set("submitted",
          json::Value::integer(static_cast<std::int64_t>(s.submitted)));
    t.set("finished",
          json::Value::integer(static_cast<std::int64_t>(s.finished)));
    v.set(tenant, std::move(t));
  }
  return v;
}

}  // namespace emx::serve
