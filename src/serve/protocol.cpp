#include "serve/protocol.hpp"

namespace emx::serve {

namespace {

bool want_uint(const json::Value& v, std::uint64_t& onto, std::string& err,
               const char* what) {
  if (!v.is_int() || v.as_int() < 0) {
    err = std::string(what) + " must be a non-negative integer";
    return false;
  }
  onto = static_cast<std::uint64_t>(v.as_int());
  return true;
}

}  // namespace

bool parse_run(const json::Value& run, jobs::JobSpec& out, std::string& err) {
  if (!run.is_object()) {
    err = "run must be an object";
    return false;
  }
  // Build a one-cell sweep so expansion, registry defaults, validation
  // and the manifest-CRC key all come from the one proven code path.
  jobs::SweepSpec spec;
  spec.name = "serve";
  spec.procs.clear();
  spec.seeds.clear();
  // emx_run flag parity (the same defaults emx_sweep's flag path sets),
  // so a served run keys identically to the direct invocation.
  spec.base.iterations = 8;
  spec.base.seed = 1;
  for (const auto& [key, v] : run.members()) {
    std::uint64_t u = 0;
    if (key == "app") {
      if (!v.is_string() || v.as_string().empty()) {
        err = "run.app must be a non-empty string";
        return false;
      }
      spec.apps = {v.as_string()};
    } else if (key == "procs") {
      if (!want_uint(v, u, err, "run.procs")) return false;
      spec.procs = {static_cast<std::uint32_t>(u)};
    } else if (key == "threads") {
      if (!want_uint(v, u, err, "run.threads")) return false;
      spec.threads = {static_cast<std::uint32_t>(u)};
    } else if (key == "size_per_proc") {
      if (!want_uint(v, u, err, "run.size_per_proc")) return false;
      spec.sizes_per_proc = {u};
    } else if (key == "seed") {
      if (!want_uint(v, u, err, "run.seed")) return false;
      spec.seeds = {u};
    } else {
      if (!jobs::apply_manifest_knob(key, v, spec.base, err)) {
        // The knob applier speaks sweep-spec ("base.x", "base knob");
        // re-anchor the message to this protocol's field name.
        if (err.rfind("base.", 0) == 0) err = "run." + err.substr(5);
        if (err.rfind("unknown base knob", 0) == 0)
          err = "unknown run knob" + err.substr(17);
        return false;
      }
    }
  }
  if (spec.apps.empty()) {
    err = "run.app is required";
    return false;
  }
  if (spec.procs.empty()) spec.procs = {16};
  if (spec.seeds.empty()) spec.seeds = {1};

  std::vector<jobs::JobSpec> cells;
  if (!spec.expand(cells, err)) return false;
  out = std::move(cells.front());
  return true;
}

bool parse_request(const std::string& line, Request& out, std::string& err) {
  std::string perr;
  const json::Value v = json::Value::parse(line, perr);
  if (!perr.empty() || !v.is_object()) {
    err = "request is not a JSON object" +
          (perr.empty() ? "" : " (" + perr + ")");
    return false;
  }
  const json::Value* op = v.find("op");
  if (op == nullptr || !op->is_string()) {
    err = "request needs a string \"op\"";
    return false;
  }
  Request req;
  const std::string& name = op->as_string();
  if (name == "submit") {
    req.op = Request::Op::kSubmit;
    if (const json::Value* t = v.find("tenant"); t != nullptr) {
      if (!t->is_string() || t->as_string().empty()) {
        err = "tenant must be a non-empty string";
        return false;
      }
      req.tenant = t->as_string();
    }
    if (const json::Value* p = v.find("priority"); p != nullptr) {
      if (!p->is_int() || p->as_int() < kMinPriority ||
          p->as_int() > kMaxPriority) {
        err = "priority must be an integer in [" +
              std::to_string(kMinPriority) + ", " +
              std::to_string(kMaxPriority) + "]";
        return false;
      }
      req.priority = static_cast<int>(p->as_int());
    }
    const json::Value* run = v.find("run");
    if (run == nullptr) {
      err = "submit needs a \"run\" object";
      return false;
    }
    if (!parse_run(*run, req.job, err)) return false;
    req.raw_run = run->dump();
  } else if (name == "status" || name == "cancel" || name == "watch") {
    req.op = name == "status"   ? Request::Op::kStatus
             : name == "cancel" ? Request::Op::kCancel
                                : Request::Op::kWatch;
    const json::Value* id = v.find("id");
    if (id == nullptr || !id->is_string() || id->as_string().empty()) {
      err = name + " needs a string \"id\"";
      return false;
    }
    req.id = id->as_string();
  } else if (name == "list") {
    req.op = Request::Op::kList;
  } else if (name == "drain") {
    req.op = Request::Op::kDrain;
  } else {
    err = "unknown op '" + name +
          "' (want submit, status, list, cancel, watch, drain)";
    return false;
  }
  out = std::move(req);
  return true;
}

std::string error_line(const std::string& msg) {
  json::Value v = json::Value::object();
  v.set("ok", json::Value::boolean(false));
  v.set("error", json::Value::string(msg));
  return v.dump() + "\n";
}

std::string response_line(const json::Value& v) { return v.dump() + "\n"; }

}  // namespace emx::serve
