#include "serve/scheduler.hpp"

namespace emx::serve {

std::size_t pick_next(const std::vector<ExecView>& queued,
                      const TenantTable& tenants, unsigned max_per_tenant) {
  std::size_t best = kNoPick;
  unsigned best_share = 0;
  for (std::size_t i = 0; i < queued.size(); ++i) {
    const ExecView& e = queued[i];
    const unsigned share = tenants.running(e.tenant);
    if (max_per_tenant > 0 && share >= max_per_tenant) continue;
    if (best == kNoPick) {
      best = i;
      best_share = share;
      continue;
    }
    const ExecView& b = queued[best];
    if (e.priority != b.priority) {
      if (e.priority > b.priority) {
        best = i;
        best_share = share;
      }
    } else if (share != best_share) {
      if (share < best_share) {
        best = i;
        best_share = share;
      }
    } else if (e.seq < b.seq) {
      best = i;
      best_share = share;
    }
  }
  return best;
}

std::size_t pick_victim(const std::vector<ExecView>& running, int priority) {
  std::size_t victim = kNoPick;
  for (std::size_t i = 0; i < running.size(); ++i) {
    const ExecView& e = running[i];
    if (e.priority >= priority) continue;  // only strictly lower yields
    if (victim == kNoPick) {
      victim = i;
      continue;
    }
    const ExecView& v = running[victim];
    if (e.priority < v.priority ||
        (e.priority == v.priority && e.seq > v.seq))
      victim = i;
  }
  return victim;
}

}  // namespace emx::serve
