// Host-side worker pool used by the experiment runner to execute
// independent simulator configurations in parallel. Each task owns its
// whole Machine, so workers share nothing (CP.2/CP.3: no shared writable
// state beyond the queue itself).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace emx {

class ThreadPool {
 public:
  /// workers == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  /// Enqueues a task. Tasks must not throw; a throwing task aborts.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs fn(i) for i in [0, count) across the pool and waits for completion.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace emx
