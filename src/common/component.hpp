// The component architecture: every stateful unit of the simulated
// machine is an emx::Component with a stable name, and the Machine owns a
// ComponentRegistry listing all of them in a fixed order.
//
// Everything that used to hand-walk the machine's units now iterates the
// registry instead:
//   - snapshot capture/verify (one section per component, named by
//     component_name(), in registration order),
//   - record-replay digest frames (state_crc() per component),
//   - crash dumps (same sections as capture),
//   - watchdog stall diagnosis (describe_stall() per component),
//   - MachineReport aggregation (contribute() per component).
// Adding a subsystem means registering one component — not editing five
// scattered lists in lockstep.
//
// Registration rules (enforced by ComponentRegistry):
//   - names are unique and stable: they are snapshot section names, so
//     renaming a component is a snapshot-format change;
//   - registration order is the serialization order: append new
//     components at the end, never reorder existing ones;
//   - the registry is sealed once the Machine is fully constructed;
//     assert_covers() then panics on any stateful unit that was built
//     but never registered (the completeness tripwire).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serializer.hpp"

namespace emx {

struct MachineReport;  // core/instrumentation.hpp — implementers' .cpps
                       // include it; this header stays below core/.

/// One stateful unit of the simulated machine.
class Component {
 public:
  virtual ~Component() = default;

  /// Stable identity: used as the snapshot section name and in every
  /// diagnostic that points at this unit. Must never change once a
  /// golden snapshot contains it.
  virtual const char* component_name() const = 0;

  /// Appends this unit's complete simulation-visible state. Two machines
  /// in the same logical state must produce identical bytes — the resume
  /// path byte-compares captures, and record-replay CRCs them.
  virtual void save_state(ser::Serializer& s) const = 0;

  /// CRC-32 of save_state()'s bytes; record-replay frames call this per
  /// component. The default serializes into a scratch buffer — override
  /// only if a cheaper identical digest exists.
  virtual std::uint32_t state_crc() const {
    ser::Serializer s;
    save_state(s);
    return s.crc();
  }

  /// Appends human-readable lines (each ending in '\n') describing what
  /// this unit is doing/waiting on — the watchdog stall diagnosis and
  /// quiescence post-mortems are built from these. Default: nothing to
  /// say. `quiescent` tells the unit whether the event queue drained.
  virtual void describe_stall(std::string& out, bool quiescent) const {
    (void)out;
    (void)quiescent;
  }

  /// Folds this unit's statistics into the end-of-run report. Default:
  /// nothing to contribute.
  virtual void contribute(MachineReport& report) const { (void)report; }
};

/// Ordered, sealed list of every component in one machine. Owned by
/// Machine; non-owning pointers (the units live where they always did).
class ComponentRegistry {
 public:
  /// Registers `c` next in serialization order. Panics on duplicate
  /// names or registration after seal().
  void add(Component* c);

  /// Marks construction complete; further add() calls panic.
  void seal();
  bool sealed() const { return sealed_; }

  const std::vector<Component*>& items() const { return items_; }

  /// The component named `name`, or nullptr.
  Component* find(const std::string& name) const;

  /// Completeness tripwire: panics (with the missing names) unless every
  /// component in `expected` was registered. Machine construction passes
  /// the units it just built; a unit added to Machine but not registered
  /// fails here instead of silently dropping out of snapshots.
  void assert_covers(std::initializer_list<const Component*> expected) const;

 private:
  std::vector<Component*> items_;
  bool sealed_ = false;
};

}  // namespace emx
