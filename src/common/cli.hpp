// Tiny command-line flag parser for bench/example binaries.
//
// Supports --name=value, --name value, and boolean --name / --no-name.
// Unknown flags are an error (catches typos in sweep scripts).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace emx {

class CliFlags {
 public:
  /// Registers a flag with its default and help text; returns *this.
  CliFlags& define(const std::string& name, const std::string& default_value,
                   const std::string& help);

  /// Parses argv; calls std::exit(0) after printing help on --help,
  /// and std::exit(2) on malformed/unknown flags.
  void parse(int argc, const char* const* argv);

  std::string str(const std::string& name) const;
  std::int64_t integer(const std::string& name) const;
  double real(const std::string& name) const;
  bool boolean(const std::string& name) const;

  /// Comma-separated integer list ("1,2,4,8").
  std::vector<std::int64_t> int_list(const std::string& name) const;

  /// True when the user passed the flag on the command line (even with a
  /// value equal to the default). Drives resume/replay conflict checks:
  /// only *explicit* flags may contradict a snapshot's manifest.
  bool explicitly_set(const std::string& name) const;

  std::string help_text(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
    bool set_by_user = false;
  };
  const Flag& get(const std::string& name) const;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace emx
