#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/assert.hpp"

namespace emx {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  EMX_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  EMX_CHECK(row.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(row));
}

std::string Table::cell(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string Table::cell(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  auto emit_row = [&](const std::vector<std::string>& r) {
    std::string line;
    for (std::size_t c = 0; c < r.size(); ++c) {
      line += r[c];
      line.append(widths[c] - r[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = emit_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(c + 1 < widths.size() ? 2 : 0, ' ');
  }
  out += rule + "\n";
  for (const auto& r : rows_) out += emit_row(r);
  return out;
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) out += ',';
      out += csv_escape(r[c]);
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return out;
}

void Table::print(std::ostream& os) const { os << to_text(); }

}  // namespace emx
