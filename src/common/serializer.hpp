// Byte-level state-visitation primitives — the bottom of the component
// architecture.
//
// Serializer appends fixed-width little-endian fields to a growable byte
// buffer; Deserializer reads them back with sticky-error bounds checking
// (a truncated or corrupt snapshot must surface as a readable error, not
// an abort — snapshots cross process and machine boundaries). Every
// multi-byte integer is stored little-endian regardless of host order so
// snapshot files are portable; doubles travel as their IEEE-754 bit
// pattern.
//
// This header lives in common/ on purpose: every simulated component —
// down to the event queue and packet structs — implements
// `save_state(ser::Serializer&) const`, so the visitor types must sit
// below sim/, network/, proc/ and runtime/. The snapshot layer re-exports
// them under its traditional emx::snapshot:: names (see the alias block
// at the end); nothing outside src/snapshot/ should include a snapshot
// header to serialize state.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace emx::ser {

/// CRC-32 (IEEE 802.3 polynomial, reflected). `seed` chains incremental
/// computations: crc32(b, crc32(a)) == crc32(a ++ b). Implemented
/// slice-by-8 — the digest paths (trace oracle, record-replay frames)
/// run it inside the simulation hot loop.
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

class Serializer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Doubles travel as raw IEEE-754 bits: byte-exact, never re-rounded.
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view v) {
    u32(static_cast<std::uint32_t>(v.size()));
    bytes(v.data(), v.size());
  }
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::size_t size() const { return buf_.size(); }
  /// CRC of everything appended so far.
  std::uint32_t crc() const { return crc32(buf_.data(), buf_.size()); }
  void clear() { buf_.clear(); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  std::vector<std::uint8_t> buf_;
};

/// Sticky-error reader: the first out-of-bounds read sets ok() false and
/// every subsequent read returns zero, so decode paths can check once at
/// the end instead of after every field.
class Deserializer {
 public:
  Deserializer(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Deserializer(const std::vector<std::uint8_t>& buf)
      : Deserializer(buf.data(), buf.size()) {}

  std::uint8_t u8() { return take(); }
  std::uint16_t u16() { return read_le<std::uint16_t>(); }
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }
  bool boolean() { return u8() != 0; }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (n > remaining()) {
      ok_ = false;
      return {};
    }
    std::string out(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return out;
  }
  /// Reads `size` raw bytes into `out`; zero-fills on underrun.
  void bytes(void* out, std::size_t size) {
    if (size > remaining()) {
      ok_ = false;
      std::memset(out, 0, size);
      return;
    }
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
  }

  bool ok() const { return ok_; }
  std::size_t offset() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }
  /// True when every byte was consumed and no read overran.
  bool exhausted() const { return ok_ && pos_ == size_; }

 private:
  std::uint8_t take() {
    if (pos_ >= size_) {
      ok_ = false;
      return 0;
    }
    return data_[pos_++];
  }
  template <typename T>
  T read_le() {
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v = static_cast<T>(v | (static_cast<T>(take()) << (8 * i)));
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace emx::ser

// Compatibility re-export: the snapshot subsystem named these types first
// and its public API (SnapshotFile, manifests, tests) still spells them
// emx::ser::Serializer. The definitions moved down to common/ so
// lower layers can visit state without depending on src/snapshot/.
namespace emx::snapshot {
using ser::crc32;          // NOLINT(misc-unused-using-decls)
using ser::Deserializer;   // NOLINT(misc-unused-using-decls)
using ser::Serializer;     // NOLINT(misc-unused-using-decls)
}  // namespace emx::snapshot
