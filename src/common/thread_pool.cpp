#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace emx {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EMX_CHECK(!stop_, "submit after shutdown");
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace emx
