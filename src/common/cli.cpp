#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/assert.hpp"

namespace emx {

CliFlags& CliFlags::define(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  EMX_CHECK(!flags_.count(name), "duplicate flag: " + name);
  flags_[name] = Flag{default_value, default_value, help, false};
  order_.push_back(name);
  return *this;
}

const CliFlags::Flag& CliFlags::get(const std::string& name) const {
  auto it = flags_.find(name);
  EMX_CHECK(it != flags_.end(), "unknown flag queried: " + name);
  return it->second;
}

void CliFlags::parse(int argc, const char* const* argv) {
  auto fail = [&](const std::string& why) {
    std::fprintf(stderr, "error: %s\n%s", why.c_str(),
                 help_text(argv[0]).c_str());
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", help_text(argv[0]).c_str());
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) fail("positional arguments not supported: " + arg);
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else if (arg.rfind("no-", 0) == 0 && flags_.count(arg.substr(3))) {
      name = arg.substr(3);
      value = "false";
    } else if (flags_.count(arg) && (i + 1 >= argc ||
                                     std::string(argv[i + 1]).rfind("--", 0) == 0)) {
      name = arg;
      value = "true";  // bare boolean flag
    } else if (i + 1 < argc) {
      name = arg;
      value = argv[++i];
    } else {
      fail("flag needs a value: --" + arg);
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) fail("unknown flag: --" + name);
    it->second.value = value;
    it->second.set_by_user = true;
  }
}

bool CliFlags::explicitly_set(const std::string& name) const {
  return get(name).set_by_user;
}

std::string CliFlags::str(const std::string& name) const { return get(name).value; }

std::int64_t CliFlags::integer(const std::string& name) const {
  const auto& v = get(name).value;
  char* end = nullptr;
  const long long r = std::strtoll(v.c_str(), &end, 0);
  EMX_CHECK(end && *end == '\0' && !v.empty(), "flag --" + name + " is not an integer: " + v);
  return r;
}

double CliFlags::real(const std::string& name) const {
  const auto& v = get(name).value;
  char* end = nullptr;
  const double r = std::strtod(v.c_str(), &end);
  EMX_CHECK(end && *end == '\0' && !v.empty(), "flag --" + name + " is not a number: " + v);
  return r;
}

bool CliFlags::boolean(const std::string& name) const {
  const auto& v = get(name).value;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off" || v.empty()) return false;
  EMX_CHECK(false, "flag --" + name + " is not a boolean: " + v);
  return false;
}

std::vector<std::int64_t> CliFlags::int_list(const std::string& name) const {
  const auto& v = get(name).value;
  std::vector<std::int64_t> out;
  std::string cur;
  auto flush = [&] {
    if (cur.empty()) return;
    char* end = nullptr;
    const long long r = std::strtoll(cur.c_str(), &end, 0);
    EMX_CHECK(end && *end == '\0', "flag --" + name + " has a bad list element: " + cur);
    out.push_back(r);
    cur.clear();
  };
  for (char ch : v) {
    if (ch == ',') {
      flush();
    } else {
      cur += ch;
    }
  }
  flush();
  return out;
}

std::string CliFlags::help_text(const std::string& program) const {
  std::string out = "usage: " + program + " [--flag=value ...]\n";
  for (const auto& name : order_) {
    const auto& f = flags_.at(name);
    out += "  --" + name + " (default: " +
           (f.default_value.empty() ? "\"\"" : f.default_value) + ")\n      " +
           f.help + "\n";
  }
  return out;
}

}  // namespace emx
