#include "common/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace emx::json {

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& why) {
    if (error.empty())
      error = why + " at byte " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(const char* word, std::size_t len) {
    if (text.size() - pos < len || text.compare(pos, len, word) != 0)
      return fail(std::string("expected '") + word + "'");
    pos += len;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) return fail("truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (text.size() - pos < 4) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // BMP only (no surrogate pairing): encode as UTF-8.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos;
    if (consume('-')) {}
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos])))
      ++pos;
    bool is_double = false;
    if (pos < text.size() && text[pos] == '.') {
      is_double = true;
      ++pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      is_double = true;
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    const std::string token(text.substr(start, pos - start));
    if (token.empty() || token == "-") return fail("malformed number");
    errno = 0;
    if (!is_double) {
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        out = Value::integer(v);
        return true;
      }
      // Out of int64 range: fall through to double.
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    out = Value::real(d);
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting deeper than 64 levels");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out = Value::object();
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (!consume(':')) return fail("expected ':'");
        Value v;
        if (!parse_value(v, depth + 1)) return false;
        out.set(key, std::move(v));
        skip_ws();
        if (consume(',')) continue;
        if (consume('}')) return true;
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out = Value::array();
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        Value v;
        if (!parse_value(v, depth + 1)) return false;
        out.push(std::move(v));
        skip_ws();
        if (consume(',')) continue;
        if (consume(']')) return true;
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Value::string(std::move(s));
      return true;
    }
    if (c == 't') {
      if (!literal("true", 4)) return false;
      out = Value::boolean(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false", 5)) return false;
      out = Value::boolean(false);
      return true;
    }
    if (c == 'n') {
      if (!literal("null", 4)) return false;
      out = Value();
      return true;
    }
    return parse_number(out);
  }
};

void dump_value(const Value& v, int indent, int level, std::string& out);

void append_indent(int indent, int level, std::string& out) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent * level), ' ');
}

void dump_double(double d, std::string& out) {
  // Shortest representation that round-trips: try increasing precision.
  char buf[40];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  // JSON has no NaN/Inf; they cannot arise from our writers, but keep
  // the output parseable if one ever does.
  if (std::strchr(buf, 'n') != nullptr || std::strchr(buf, 'i') != nullptr)
    std::snprintf(buf, sizeof buf, "null");
  out += buf;
}

void dump_value(const Value& v, int indent, int level, std::string& out) {
  switch (v.kind()) {
    case Value::Kind::kNull: out += "null"; return;
    case Value::Kind::kBool: out += v.as_bool() ? "true" : "false"; return;
    case Value::Kind::kInt: out += std::to_string(v.as_int()); return;
    case Value::Kind::kDouble: dump_double(v.as_double(), out); return;
    case Value::Kind::kString:
      out.push_back('"');
      out += escape(v.as_string());
      out.push_back('"');
      return;
    case Value::Kind::kArray: {
      if (v.items().empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      bool first = true;
      for (const Value& e : v.items()) {
        if (!first) out.push_back(',');
        first = false;
        append_indent(indent, level + 1, out);
        dump_value(e, indent, level + 1, out);
      }
      append_indent(indent, level, out);
      out.push_back(']');
      return;
    }
    case Value::Kind::kObject: {
      if (v.members().empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, e] : v.members()) {
        if (!first) out.push_back(',');
        first = false;
        append_indent(indent, level + 1, out);
        out.push_back('"');
        out += escape(key);
        out += indent < 0 ? "\":" : "\": ";
        dump_value(e, indent, level + 1, out);
      }
      append_indent(indent, level, out);
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

Value Value::boolean(bool v) {
  Value r;
  r.kind_ = Kind::kBool;
  r.bool_ = v;
  return r;
}

Value Value::integer(std::int64_t v) {
  Value r;
  r.kind_ = Kind::kInt;
  r.int_ = v;
  return r;
}

Value Value::real(double v) {
  Value r;
  r.kind_ = Kind::kDouble;
  r.double_ = v;
  return r;
}

Value Value::string(std::string v) {
  Value r;
  r.kind_ = Kind::kString;
  r.string_ = std::move(v);
  return r;
}

Value Value::array() {
  Value r;
  r.kind_ = Kind::kArray;
  return r;
}

Value Value::object() {
  Value r;
  r.kind_ = Kind::kObject;
  return r;
}

bool Value::as_bool(bool fallback) const {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

std::int64_t Value::as_int(std::int64_t fallback) const {
  if (kind_ == Kind::kInt) return int_;
  if (kind_ == Kind::kDouble) return static_cast<std::int64_t>(double_);
  return fallback;
}

double Value::as_double(double fallback) const {
  if (kind_ == Kind::kDouble) return double_;
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  return fallback;
}

const std::string& Value::as_string() const {
  static const std::string empty;
  return kind_ == Kind::kString ? string_ : empty;
}

Value& Value::push(Value v) {
  items_.push_back(std::move(v));
  return items_.back();
}

Value& Value::set(const std::string& key, Value v) {
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  members_.emplace_back(key, std::move(v));
  return members_.back().second;
}

const Value* Value::find(const std::string& key) const {
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_value(*this, indent, 0, out);
  return out;
}

Value Value::parse(std::string_view text, std::string& error) {
  Parser p{text};
  Value v;
  if (!p.parse_value(v, 0)) {
    error = p.error;
    return Value();
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    error = "trailing bytes after the JSON value at byte " +
            std::to_string(p.pos);
    return Value();
  }
  error.clear();
  return v;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace emx::json
