#include "common/component.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"

namespace emx {

void ComponentRegistry::add(Component* c) {
  EMX_CHECK(c != nullptr, "ComponentRegistry::add: null component");
  EMX_CHECK(!sealed_, std::string("component '") + c->component_name() +
                          "' registered after the registry was sealed — "
                          "register every unit during Machine construction");
  for (const Component* existing : items_)
    EMX_CHECK(std::strcmp(existing->component_name(), c->component_name()) != 0,
              std::string("duplicate component name '") + c->component_name() +
                  "' — names are snapshot section names and must be unique");
  items_.push_back(c);
}

void ComponentRegistry::seal() { sealed_ = true; }

Component* ComponentRegistry::find(const std::string& name) const {
  const auto it =
      std::find_if(items_.begin(), items_.end(), [&name](Component* c) {
        return name == c->component_name();
      });
  return it == items_.end() ? nullptr : *it;
}

void ComponentRegistry::assert_covers(
    std::initializer_list<const Component*> expected) const {
  std::string missing;
  for (const Component* c : expected) {
    if (c == nullptr) continue;  // optional unit not built in this config
    if (std::find(items_.begin(), items_.end(), c) == items_.end()) {
      if (!missing.empty()) missing += ", ";
      missing += c->component_name();
    }
  }
  EMX_CHECK(missing.empty(),
            "stateful unit(s) built but never registered: " + missing +
                " — snapshots/replay/diagnosis would silently skip them");
}

}  // namespace emx
