// Crash-safe file-system primitives for the supervisor-side layers.
//
// Everything that persists run artifacts (snapshots, sweep results,
// journals) funnels through these helpers so the durability story is
// written once:
//
//   * atomic_write_file — write to a uniquely named temp file in the
//     destination directory, fsync the data, rename over the target,
//     then fsync the directory. A SIGKILL (or power cut) at any point
//     leaves either the old file or the new file under the final name,
//     never a truncated hybrid; concurrent writers to the same target
//     cannot interleave because every writer owns a distinct temp file.
//   * probe helpers — prove a directory or file path is creatable and
//     writable *before* a long run burns cycles, so path typos surface
//     as an immediate exit 2 instead of a lost night.
#pragma once

#include <string>

namespace emx::fsio {

/// Atomically replaces `path` with `bytes` (temp file + fsync + rename +
/// directory fsync). Returns "" on success, else a readable error that
/// names the path and the failing step. The temp file is always cleaned
/// up on failure; stale `*.emxtmp.*` files from a killed writer are
/// harmless (unique names, never matched by snapshot/result globs).
std::string atomic_write_file(const std::string& path, const void* data,
                              std::size_t size);
std::string atomic_write_file(const std::string& path,
                              const std::string& bytes);

/// Creates `dir` (and parents) if needed and proves it is writable by
/// creating and removing a probe file inside it. Returns "" on success.
std::string ensure_writable_dir(const std::string& dir);

/// Proves `path` can be created and written without disturbing existing
/// content (opens for append; a file created by the probe is removed
/// again). Returns "" on success.
std::string probe_writable_file(const std::string& path);

/// Appends `line` (which must include its trailing newline) to the file
/// descriptor-backed append-only file at `path`, fsync'ing the write.
/// Used by the sweep journal; open/creat is implicit per call so a
/// supervisor restart needs no handle state. Returns "" on success.
std::string append_line_fsync(const std::string& path,
                              const std::string& line);

}  // namespace emx::fsio
