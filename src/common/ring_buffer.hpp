// Bounded and unbounded FIFO queues used for the hardware packet buffers
// (IBU/OBU on-chip FIFOs are 8 packets deep; overflow spills to memory).
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "common/assert.hpp"

namespace emx {

/// Fixed-capacity circular FIFO. Models an on-chip hardware queue: pushes
/// beyond capacity are a programming error (callers must check full()).
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : slots_(capacity) {
    EMX_CHECK(capacity > 0, "ring buffer capacity must be positive");
  }

  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == slots_.size(); }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }

  void push(T value) {
    EMX_DCHECK(!full(), "push to full ring buffer");
    slots_[tail_] = std::move(value);
    tail_ = (tail_ + 1) % slots_.size();
    ++size_;
  }

  T pop() {
    EMX_DCHECK(!empty(), "pop from empty ring buffer");
    T value = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --size_;
    return value;
  }

  const T& front() const {
    EMX_DCHECK(!empty(), "front of empty ring buffer");
    return slots_[head_];
  }

  /// Element `i` positions behind the head (0 == front()), without
  /// popping — lets snapshot code walk the queue in FIFO order.
  const T& at(std::size_t i) const {
    EMX_DCHECK(i < size_, "ring buffer index out of range");
    return slots_[(head_ + i) % slots_.size()];
  }

 private:
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
};

/// On-chip FIFO with automatic spill to an unbounded "memory" backing
/// store, mirroring the EMC-Y Input Buffer Unit behaviour: if the on-chip
/// FIFO becomes full, packets are stored to the on-memory buffer and
/// restored to the on-chip FIFO as space frees up (paper §2.2).
template <typename T>
class SpillingFifo {
 public:
  explicit SpillingFifo(std::size_t on_chip_capacity)
      : on_chip_(on_chip_capacity) {}

  bool empty() const { return on_chip_.empty() && spill_.empty(); }
  std::size_t size() const { return on_chip_.size() + spill_.size(); }
  std::size_t spilled() const { return spill_.size(); }
  std::size_t peak_size() const { return peak_; }

  void push(T value) {
    if (!spill_.empty() || on_chip_.full()) {
      spill_.push_back(std::move(value));  // preserve global FIFO order
    } else {
      on_chip_.push(std::move(value));
    }
    peak_ = std::max(peak_, size());
  }

  T pop() {
    EMX_DCHECK(!empty(), "pop from empty spilling fifo");
    T value = on_chip_.pop();
    if (!spill_.empty()) {
      on_chip_.push(std::move(spill_.front()));
      spill_.pop_front();
    }
    return value;
  }

  const T& front() const { return on_chip_.front(); }

  /// Element `i` in global FIFO order (on-chip first, then spill),
  /// without popping — for snapshot serialization.
  const T& at(std::size_t i) const {
    EMX_DCHECK(i < size(), "spilling fifo index out of range");
    if (i < on_chip_.size()) return on_chip_.at(i);
    return spill_[i - on_chip_.size()];
  }

 private:
  RingBuffer<T> on_chip_;
  std::deque<T> spill_;
  std::size_t peak_ = 0;
};

}  // namespace emx
