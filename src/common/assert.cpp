#include "common/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace emx {

void panic(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[emx panic] %s:%d: %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace emx
