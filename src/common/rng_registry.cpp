#include "common/rng_registry.hpp"

#include "common/assert.hpp"

namespace emx::rng {

Rng& StreamRegistry::stream(const std::string& name, std::uint64_t seed) {
  auto it = streams_.find(name);
  if (it != streams_.end()) {
    EMX_CHECK(it->second.owned != nullptr,
              "rng stream name collides with an adopted engine");
    EMX_CHECK(it->second.seed == seed,
              "rng stream requested twice with different seeds");
    return *it->second.engine;
  }
  Entry entry;
  entry.owned = std::make_unique<Rng>(seed);
  entry.engine = entry.owned.get();
  entry.seed = seed;
  auto [pos, inserted] = streams_.emplace(name, std::move(entry));
  (void)inserted;
  return *pos->second.engine;
}

void StreamRegistry::adopt(const std::string& name, Rng* engine) {
  EMX_CHECK(engine != nullptr, "cannot adopt a null rng engine");
  Entry& entry = streams_[name];
  EMX_CHECK(entry.owned == nullptr,
            "rng stream name collides with an owned engine");
  entry.engine = engine;
}

std::vector<std::string> StreamRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(streams_.size());
  for (const auto& [name, entry] : streams_) out.push_back(name);
  return out;
}

void StreamRegistry::save(ser::Serializer& s) const {
  s.u32(static_cast<std::uint32_t>(streams_.size()));
  for (const auto& [name, entry] : streams_) {  // std::map: sorted by name
    s.str(name);
    for (std::uint64_t word : entry.engine->state()) s.u64(word);
  }
}

bool StreamRegistry::load(ser::Deserializer& d) {
  const std::uint32_t count = d.u32();
  if (count != streams_.size()) return false;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = d.str();
    std::array<std::uint64_t, 4> state;
    for (auto& word : state) word = d.u64();
    if (!d.ok()) return false;
    auto it = streams_.find(name);
    if (it == streams_.end()) return false;
    it->second.engine->set_state(state);
  }
  return d.ok();
}

}  // namespace emx::rng
