// rng::StreamRegistry — every pseudo-random stream of a run, by name.
//
// Before the snapshot subsystem, each consumer constructed its Rng ad
// hoc (the fault plan inside FaultyNetwork, each app's workload
// generator inside setup(), the bench harness in its sweep loops). A
// checkpoint must capture *all* of them or a restored run silently forks
// its randomness, so the Machine now owns one registry and every stream
// is either created through it (`stream(name, seed)`) or registered with
// it (`adopt(name, &engine)` for engines whose lifetime someone else
// owns). Names are stable identifiers ("workload.sort", "fault.plan");
// save() walks them in sorted order so the serialized form is
// deterministic, and load() restores each engine's xoshiro state by name.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/component.hpp"
#include "common/rng.hpp"
#include "common/serializer.hpp"

namespace emx::rng {

/// The "streams" component: its snapshot section pins every stream's
/// engine state so a restored run cannot silently fork its randomness.
class StreamRegistry final : public Component {
 public:
  StreamRegistry() = default;
  StreamRegistry(const StreamRegistry&) = delete;
  StreamRegistry& operator=(const StreamRegistry&) = delete;

  /// Returns the stream `name`, creating it seeded with `seed` on first
  /// use. A second caller asking for the same name must agree on the
  /// seed — two subsystems silently sharing a stream under one name is a
  /// bug the assert catches.
  Rng& stream(const std::string& name, std::uint64_t seed);

  /// Registers an externally-owned engine under `name` (e.g. the fault
  /// plan's, which lives inside FaultyNetwork). The engine must outlive
  /// the registry entry; re-adopting an existing name replaces the
  /// pointer (a Machine rebuild on the same registry).
  void adopt(const std::string& name, Rng* engine);

  bool contains(const std::string& name) const {
    return streams_.find(name) != streams_.end();
  }
  std::size_t count() const { return streams_.size(); }
  /// Registered names in sorted order (the serialization order).
  std::vector<std::string> names() const;

  /// Serializes every stream as (name, 4 state words), sorted by name.
  void save(ser::Serializer& s) const;

  /// Restores stream states by name. Streams in the snapshot but not in
  /// the registry (or vice versa) make this return false — the caller
  /// reports which run shape mismatch caused it via names().
  bool load(ser::Deserializer& d);

  // --- Component ---
  const char* component_name() const override { return "streams"; }
  void save_state(ser::Serializer& s) const override { save(s); }

 private:
  struct Entry {
    std::unique_ptr<Rng> owned;  ///< null for adopted streams
    Rng* engine = nullptr;       ///< always valid
    std::uint64_t seed = 0;      ///< creation seed (owned streams only)
  };

  std::map<std::string, Entry> streams_;  // ordered: deterministic save
};

}  // namespace emx::rng
