#include "common/stats.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace emx {

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  mean_ = (na * mean_ + nb * other.mean_) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

std::string RunningStat::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%llu mean=%.4g stddev=%.4g min=%.4g max=%.4g",
                static_cast<unsigned long long>(count_), mean(), stddev(),
                min(), max());
  return buf;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  EMX_CHECK(hi > lo && buckets > 0, "histogram range/bucket count invalid");
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  double frac = (x - lo_) / span;
  frac = std::clamp(frac, 0.0, 1.0);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::percentile(double p) const {
  if (total_ == 0) return lo_;
  const double target = p / 100.0 * static_cast<double>(total_);
  double seen = 0.0;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = seen + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double within = (target - seen) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + within * width;
    }
    seen = next;
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  const double bucket_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char head[64];
    std::snprintf(head, sizeof head, "%10.3g |", bucket_lo(i) + 0.5 * bucket_width);
    out += head;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out.append(bar, '#');
    char tail[32];
    std::snprintf(tail, sizeof tail, " %llu\n",
                  static_cast<unsigned long long>(counts_[i]));
    out += tail;
  }
  return out;
}

}  // namespace emx
