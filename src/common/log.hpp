// Minimal leveled logger. Single-writer per stream; the simulator itself is
// single-threaded, host-side sweep workers each log whole lines.
#pragma once

#include <sstream>
#include <string>

namespace emx {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& line);
}

/// Stream-style one-shot log statement: EMX_LOG(kInfo) << "x=" << x;
class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  ~LogStatement() { detail::log_line(level_, stream_.str()); }
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace emx

#define EMX_LOG(level)                                             \
  if (::emx::LogLevel::level < ::emx::log_level()) {               \
  } else                                                           \
    ::emx::LogStatement(::emx::LogLevel::level)
