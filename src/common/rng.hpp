// Deterministic pseudo-random generation (splitmix64 + xoshiro256**).
//
// All workload generation is seeded explicitly so every experiment is
// bit-reproducible across runs and platforms.
#pragma once

#include <array>
#include <cstdint>

#include "common/assert.hpp"

namespace emx {

/// splitmix64: used to expand a single seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xEA5EED5EEDull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) {
    EMX_DCHECK(bound > 0, "bounded(0)");
    // 128-bit multiply keeps the distribution exactly uniform enough for
    // workload generation (rejection step included).
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// The full xoshiro256** state, for checkpointing: restoring it with
  /// set_state() resumes the stream exactly where it left off.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& state) {
    for (std::size_t i = 0; i < 4; ++i) s_[i] = state[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace emx
