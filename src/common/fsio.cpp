#include "common/fsio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

namespace emx::fsio {

namespace {

std::string errno_text() { return std::strerror(errno); }

/// Directory part of `path` ("." when the path has no separator).
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Best-effort fsync of a directory so a rename is durable. Some file
/// systems refuse O_DIRECTORY fsync; that is not a correctness problem
/// for process-crash atomicity (the rename itself is atomic), only for
/// power-cut durability, so failures are swallowed.
void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

/// Monotonic per-process counter: with the pid it makes every temp file
/// name unique, so two writers racing on the same target (two retries of
/// one job, an orphaned worker beside its replacement) can never open —
/// and interleave bytes into — the same temp file. The fixed ".tmp"
/// suffix this replaces let exactly that happen: writer B would reopen
/// and truncate writer A's temp file, and A's still-open descriptor
/// kept writing into whichever file B eventually renamed into place.
std::atomic<std::uint64_t> g_tmp_counter{0};

}  // namespace

std::string atomic_write_file(const std::string& path, const void* data,
                              std::size_t size) {
  char suffix[64];
  std::snprintf(suffix, sizeof suffix, ".emxtmp.%ld.%llu",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(
                    g_tmp_counter.fetch_add(1, std::memory_order_relaxed)));
  const std::string tmp = path + suffix;

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0)
    return "cannot create temp file '" + tmp + "': " + errno_text();

  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, p + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = errno_text();
      ::close(fd);
      ::unlink(tmp.c_str());
      return "short write to '" + tmp + "': " + err;
    }
    done += static_cast<std::size_t>(n);
  }
  // The data must be on stable storage *before* the rename publishes the
  // name: rename-then-sync can surface a correctly named file full of
  // zeros after a crash, which is exactly the truncated-snapshot failure
  // this helper exists to rule out.
  if (::fsync(fd) != 0) {
    const std::string err = errno_text();
    ::close(fd);
    ::unlink(tmp.c_str());
    return "fsync of '" + tmp + "' failed: " + err;
  }
  if (::close(fd) != 0) {
    const std::string err = errno_text();
    ::unlink(tmp.c_str());
    return "close of '" + tmp + "' failed: " + err;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = errno_text();
    ::unlink(tmp.c_str());
    return "cannot rename '" + tmp + "' to '" + path + "': " + err;
  }
  fsync_dir(parent_dir(path));
  return "";
}

std::string atomic_write_file(const std::string& path,
                              const std::string& bytes) {
  return atomic_write_file(path, bytes.data(), bytes.size());
}

std::string ensure_writable_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return "cannot create directory '" + dir + "': " + ec.message();
  char name[64];
  std::snprintf(name, sizeof name, "/.emxprobe.%ld",
                static_cast<long>(::getpid()));
  const std::string probe = dir + name;
  const int fd = ::open(probe.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    return "directory '" + dir + "' is not writable: " + errno_text();
  ::close(fd);
  ::unlink(probe.c_str());
  return "";
}

std::string probe_writable_file(const std::string& path) {
  const bool existed = ::access(path.c_str(), F_OK) == 0;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0)
    return "cannot create or write '" + path + "': " + errno_text();
  ::close(fd);
  if (!existed) ::unlink(path.c_str());
  return "";
}

std::string append_line_fsync(const std::string& path,
                              const std::string& line) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return "cannot open '" + path + "' for append: " + errno_text();
  std::size_t done = 0;
  while (done < line.size()) {
    const ssize_t n = ::write(fd, line.data() + done, line.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = errno_text();
      ::close(fd);
      return "short append to '" + path + "': " + err;
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string err = errno_text();
    ::close(fd);
    return "fsync of '" + path + "' failed: " + err;
  }
  ::close(fd);
  return "";
}

}  // namespace emx::fsio
