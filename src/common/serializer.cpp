#include "common/serializer.hpp"

#include <array>
#include <bit>

namespace emx::ser {
namespace {

// Slice-by-8 CRC-32: eight derived lookup tables let the loop fold eight
// input bytes per iteration instead of one. Table 0 is the classic
// reflected table for polynomial 0xEDB88320; table k advances table k-1
// by one zero byte, so the combined XOR over all eight equals eight
// single-byte steps. Values are bit-identical to the bytewise algorithm
// for every input — the digest paths depend on that.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i)
    for (std::size_t k = 1; k < 8; ++k)
      t[k][i] = t[0][t[k - 1][i] & 0xFFu] ^ (t[k - 1][i] >> 8);
  return t;
}

constexpr auto kCrcTables = make_crc_tables();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  if constexpr (std::endian::native == std::endian::little) {
    const auto& t = kCrcTables;
    while (size >= 8) {
      std::uint32_t lo = 0;
      std::uint32_t hi = 0;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= c;
      c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
          t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
      p += 8;
      size -= 8;
    }
  }
  while (size-- != 0) c = kCrcTables[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace emx::ser
